package automdt

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus engine micro-benchmarks. Each figure benchmark runs
// the corresponding experiment (training is memoized per process, so the
// first iteration pays it once) and reports the headline metrics the
// paper's figure conveys via b.ReportMetric. The printable artifacts come
// from `go run automdt/cmd/automdt-bench`.
//
// Set AUTOMDT_MODE=paper for full-fidelity runs (the paper's 256-wide
// networks and 30000-episode budget; expect ~45 minutes of training per
// testbed).

import (
	"context"
	"os"
	"testing"
	"time"

	"automdt/internal/enginebench"
	"automdt/internal/experiments"
	"automdt/internal/metrics"
	"automdt/internal/rl"
	"automdt/internal/sim"
)

func benchMode() experiments.Mode {
	if os.Getenv("AUTOMDT_MODE") == "paper" {
		return experiments.Paper
	}
	return experiments.Quick
}

// reportCompare attaches the figure's headline numbers to the benchmark.
func reportCompare(b *testing.B, r *experiments.CompareResult) {
	b.Helper()
	b.ReportMetric(float64(r.Auto.Run.Ticks), "autoTCT_s")
	b.ReportMetric(float64(r.Marlin.Run.Ticks), "marlinTCT_s")
	b.ReportMetric(r.Auto.Run.AvgMbps, "autoMbps")
	b.ReportMetric(r.Marlin.Run.AvgMbps, "marlinMbps")
	b.ReportMetric(r.Auto.TimeToTarget, "autoReach_s")
	b.ReportMetric(r.Marlin.TimeToTarget, "marlinReach_s")
}

// BenchmarkFig3 regenerates Fig. 3: AutoMDT vs Marlin on the WAN
// (NCSA→TACC-like) testbed, 100×1 GB.
func BenchmarkFig3(b *testing.B) {
	var last *experiments.CompareResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchMode())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportCompare(b, last)
}

// BenchmarkFig4 regenerates the Fig. 4 training-curve comparison at a
// reduced episode budget (the full curves come from automdt-bench).
func BenchmarkFig4(b *testing.B) {
	tb := experiments.ReadBottleneck()
	var contLast, discLast float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4Budget(benchMode(), 120)
		if err != nil {
			b.Fatal(err)
		}
		n := len(r.Continuous.EpisodeRewards)
		contLast = metrics.Summarize(r.Continuous.EpisodeRewards[n-n/4:]).Mean
		n = len(r.Discrete.EpisodeRewards)
		discLast = metrics.Summarize(r.Discrete.EpisodeRewards[n-n/4:]).Mean
	}
	_ = tb
	b.ReportMetric(contLast, "contReward")
	b.ReportMetric(discLast, "discReward")
}

// BenchmarkFig5Read regenerates the read-bottleneck column of Fig. 5
// (caps 80/160/200 Mbps, optimum ⟨13,7,5⟩).
func BenchmarkFig5Read(b *testing.B) {
	var last *experiments.CompareResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5Read(benchMode())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportCompare(b, last)
}

// BenchmarkFig5Network regenerates the network-bottleneck column of
// Fig. 5 (caps 205/75/195 Mbps, optimum ⟨5,14,5⟩).
func BenchmarkFig5Network(b *testing.B) {
	var last *experiments.CompareResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5Network(benchMode())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportCompare(b, last)
}

// BenchmarkFig5Write regenerates the write-bottleneck column of Fig. 5
// (caps 200/150/70 Mbps, optimum ⟨5,7,15⟩).
func BenchmarkFig5Write(b *testing.B) {
	var last *experiments.CompareResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5Write(benchMode())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportCompare(b, last)
}

// BenchmarkTable1 regenerates Table I: Globus vs Marlin vs AutoMDT on
// large and mixed datasets over the WAN testbed.
func BenchmarkTable1(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchMode())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Rows[0].GlobusMbps, "largeGlobus")
	b.ReportMetric(last.Rows[0].MarlinMbps, "largeMarlin")
	b.ReportMetric(last.Rows[0].AutoMbps, "largeAuto")
	b.ReportMetric(last.Rows[1].GlobusMbps, "mixedGlobus")
	b.ReportMetric(last.Rows[1].MarlinMbps, "mixedMarlin")
	b.ReportMetric(last.Rows[1].AutoMbps, "mixedAuto")
}

// BenchmarkOfflineTraining measures the §V-A offline training pipeline
// (probe → fit simulator → PPO) in episodes per second.
func BenchmarkOfflineTraining(b *testing.B) {
	tb := experiments.ReadBottleneck()
	const episodes = 100
	for i := 0; i < b.N; i++ {
		_, err := experiments.TrainBudget(tb, benchMode(), int64(1000+i), episodes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(episodes)*float64(b.N)/b.Elapsed().Seconds(), "episodes/s")
}

// BenchmarkFineTune measures the §V-C online fine-tuning loop.
func BenchmarkFineTune(b *testing.B) {
	var last *experiments.FineTuneResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.FineTune(benchMode(), 20)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.BaseMeanThreads, "baseThreads")
	b.ReportMetric(last.TunedMeanThreads, "tunedThreads")
}

// BenchmarkAblationJoint regenerates the §III optimizer-architecture
// ablation (joint gradient descent vs Marlin vs the RL agent).
func BenchmarkAblationJoint(b *testing.B) {
	var last *experiments.AblationJointResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationJoint(benchMode())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AutoMbps, "autoMbps")
	b.ReportMetric(last.MarlinMbps, "marlinMbps")
	b.ReportMetric(last.JointMbps, "jointMbps")
}

// BenchmarkAblationK regenerates the §IV-B utility-penalty sweep.
func BenchmarkAblationK(b *testing.B) {
	var rows []experiments.KSweepRow
	for i := 0; i < b.N; i++ {
		rows = experiments.KSweep([]float64{1.001, 1.01, 1.02, 1.05, 1.2})
	}
	for _, r := range rows {
		if r.K == 1.02 {
			b.ReportMetric(float64(r.TotalThreads), "threads@k1.02")
			b.ReportMetric(r.Mbps, "mbps@k1.02")
		}
	}
}

// Engine micro-benchmarks: the same bodies back `automdt-bench -exp
// engine`, which emits the BENCH_engine.json artifact the CI bench job
// diffs against the committed baseline.

// BenchmarkEngineFrameEncode measures checksummed frame encoding through
// the vectored FrameWriter.
func BenchmarkEngineFrameEncode(b *testing.B) { enginebench.FrameEncode(b) }

// BenchmarkEngineFrameDecode measures frame decoding with arena-backed
// payload allocation.
func BenchmarkEngineFrameDecode(b *testing.B) { enginebench.FrameDecode(b) }

// BenchmarkEngineStagingHandoff measures the staging ownership transfer
// of one arena lease.
func BenchmarkEngineStagingHandoff(b *testing.B) { enginebench.StagingHandoff(b) }

// BenchmarkEngineArena measures the raw arena lease/release cycle.
func BenchmarkEngineArena(b *testing.B) { enginebench.ArenaGetRelease(b) }

// BenchmarkEngineLoopbackE2E measures the end-to-end chunk lifecycle at
// the quick (CI) dataset size with frame checksums on (the default).
func BenchmarkEngineLoopbackE2E(b *testing.B) { enginebench.LoopbackE2E(true, true)(b) }

// BenchmarkEngineLoopbackE2ENoCRC is the same lifecycle with integrity
// verification disabled, isolating the CRC-32C cost.
func BenchmarkEngineLoopbackE2ENoCRC(b *testing.B) { enginebench.LoopbackE2E(true, false)(b) }

// BenchmarkEngineLoopbackE2EKioCRC is the synthetic-store lifecycle
// with the kernel-assisted fast path pinned on and checksums kept:
// batched run reads, one CRC-32C pass per run, coalesced frames,
// vectored receiver flushes.
func BenchmarkEngineLoopbackE2EKioCRC(b *testing.B) { enginebench.LoopbackE2EKio(true, true)(b) }

// BenchmarkEngineLoopbackE2EDisk and ...E2EKio are the disk-backed
// portable/kernel-assisted pair behind the bench gate's KioSpeedup and
// KioSyscallRatio: real files at both ends, sendfile(2) on the sender
// and pwritev(2) on the receiver when kio is on.
func BenchmarkEngineLoopbackE2EDisk(b *testing.B) { enginebench.DiskLoopbackE2E("off")(b) }
func BenchmarkEngineLoopbackE2EKio(b *testing.B)  { enginebench.DiskLoopbackE2E("on")(b) }

// BenchmarkEngineLoopbackE2EFlight is the same lifecycle with the
// decision flight recorder enabled, isolating the stage-span cost.
func BenchmarkEngineLoopbackE2EFlight(b *testing.B) { enginebench.LoopbackE2EFlight(true)(b) }

// BenchmarkEngineLedgerTickV1 measures one steady-state probe-tick
// persist of the quick-scale session ledger as a schema-1 full-document
// rewrite (O(chunks) per tick).
func BenchmarkEngineLedgerTickV1(b *testing.B) { enginebench.LedgerPersistTick(false, true)(b) }

// BenchmarkEngineLedgerTickV2 is the same tick as schema-2 journal
// records (O(delta) per tick) — the ledger-scalability headline.
func BenchmarkEngineLedgerTickV2(b *testing.B) { enginebench.LedgerPersistTick(true, true)(b) }

// BenchmarkEngineLedgerReplay measures crash-recovery journal replay at
// the quick scenario scale (one commit record per chunk).
func BenchmarkEngineLedgerReplay(b *testing.B) { enginebench.LedgerJournalReplay(true)(b) }

// BenchmarkLoopbackEngine measures raw engine goodput over loopback TCP
// with no rate shaping (GC and syscall overhead are the ceiling here).
func BenchmarkLoopbackEngine(b *testing.B) {
	cfg := TransferConfig{
		ChunkBytes:     256 << 10,
		MaxThreads:     16,
		InitialThreads: 8,
		ProbeInterval:  100 * time.Millisecond,
	}
	m := LargeFiles(16, 4<<20) // 64 MB
	b.SetBytes(m.TotalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := NewSyntheticStore(), NewSyntheticStore()
		res, err := LoopbackTransfer(context.Background(), cfg, m, src, dst, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.AvgMbps, "goodputMbps")
		}
	}
}

// BenchmarkSimulatorStep measures the Algorithm 1 event loop at the
// paper's read-bottleneck operating point.
func BenchmarkSimulatorStep(b *testing.B) {
	s := sim.New(experiments.ReadBottleneck().Cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Step(13, 1, 7, 5)
	}
}

// BenchmarkPPOUpdate measures one Algorithm 2 episode (collect + update)
// against the simulator environment with the paper's full-size networks.
func BenchmarkPPOUpdate(b *testing.B) {
	tb := experiments.ReadBottleneck()
	agent, e := experiments.NewBenchAgent(tb, rl.NetConfig{}) // paper architecture
	cfg := rl.TrainConfig{Episodes: 1, StepsPerEpisode: 10, StagnantLimit: 1 << 30}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Train(e, cfg)
	}
}
