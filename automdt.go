// Package automdt is the public API of this AutoMDT implementation — a
// modular, reinforcement-learning-driven data transfer architecture
// reproducing "Modular Architecture for High-Performance and Low Overhead
// Data Transfers" (SC 2025).
//
// The system decouples a transfer into read, network, and write stages
// with independently sized worker pools, and jointly tunes the three
// concurrency values with a PPO agent trained offline against a
// lightweight I/O–network dynamics simulator.
//
// Typical use:
//
//	// 1. Profile the path with a short random-threads run.
//	profile, _ := automdt.Probe(runner, seed)
//
//	// 2. Train the agent offline against the fitted simulator
//	//    (~45 minutes at paper fidelity; seconds with small nets).
//	sys, _ := automdt.Train(profile, automdt.Options{})
//
//	// 3. Drive a real transfer with the trained controller.
//	res, _ := automdt.LoopbackTransfer(ctx, cfg, manifest, src, dst, sys.Controller())
//
// See examples/ for runnable programs and cmd/automdt-bench for the
// harness that regenerates the paper's tables and figures.
package automdt

import (
	"context"
	"math/rand"

	"automdt/internal/core"
	"automdt/internal/env"
	"automdt/internal/fsim"
	"automdt/internal/marlin"
	"automdt/internal/probe"
	"automdt/internal/rl"
	"automdt/internal/static"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

// Re-exported configuration and result types.
type (
	// TransferConfig parameterizes the live transfer engine.
	TransferConfig = transfer.Config
	// Shaping holds the emulated testbed rate caps (Mbps).
	Shaping = transfer.Shaping
	// TransferResult summarizes a completed transfer with traces.
	TransferResult = transfer.Result
	// TransferSession describes a negotiated resumable session (set
	// TransferConfig.SessionID; observe via TransferConfig.Hooks.OnSession).
	TransferSession = transfer.Session
	// SessionResult summarizes one session served by a multi-session
	// receiver endpoint (observe via Receiver.OnSessionDone).
	SessionResult = transfer.SessionResult
	// Manifest lists the files of a dataset.
	Manifest = workload.Manifest
	// File is one manifest entry.
	File = workload.File
	// Options configures offline training.
	Options = core.Options
	// System is a trained AutoMDT deployment.
	System = core.System
	// Profile is the result of the exploration and logging phase.
	Profile = probe.Profile
	// Controller decides concurrency from observed transfer state.
	Controller = env.Controller
	// State is the observed transfer state handed to controllers.
	State = env.State
	// Action is a concurrency tuple.
	Action = env.Action
	// Store is an offset-addressable file container.
	Store = fsim.Store
	// ProbeRunner executes one probe interval at a given concurrency.
	ProbeRunner = probe.Runner
	// ProbeOptions configures the exploration phase.
	ProbeOptions = probe.Options
	// NetConfig sizes the agent's policy and value networks.
	NetConfig = rl.NetConfig
	// TrainConfig parameterizes Algorithm 2.
	TrainConfig = rl.TrainConfig
)

// DefaultK is the paper's utility penalty base (1.02).
const DefaultK = env.DefaultK

// Probe runs the §IV-A exploration-and-logging phase against r (600
// one-second random-threads measurements, as in the paper) and returns
// the fitted profile.
func Probe(r ProbeRunner, seed int64) (*Profile, error) {
	return probe.Explore(r, rand.New(rand.NewSource(seed)), probe.Options{})
}

// ProbeWith is Probe with explicit options.
func ProbeWith(r ProbeRunner, seed int64, opts probe.Options) (*Profile, error) {
	return probe.Explore(r, rand.New(rand.NewSource(seed)), opts)
}

// Train fits the offline dynamics simulator to the profile and trains a
// PPO agent against it (Fig. 2 / Algorithm 2).
func Train(p *Profile, opts Options) (*System, error) { return core.Train(p, opts) }

// LoopbackTransfer runs a complete sender→receiver transfer in-process
// over loopback TCP — the quickest way to exercise the full engine.
func LoopbackTransfer(ctx context.Context, cfg TransferConfig, m Manifest,
	src, dst Store, ctrl Controller) (*TransferResult, error) {
	return transfer.Loopback(ctx, cfg, m, src, dst, ctrl)
}

// NewReceiver creates a destination-side endpoint writing into store.
// Call Listen, then Serve (multi-session, until the context ends) or
// ServeN (bounded session count — ServeN(ctx, 1) is a one-shot
// receiver).
func NewReceiver(cfg TransferConfig, store Store) *transfer.Receiver {
	return transfer.NewReceiver(cfg, store)
}

// NewSender creates a source-side engine reading from store under the
// given controller (nil keeps the initial concurrency fixed).
func NewSender(cfg TransferConfig, store Store, m Manifest, ctrl Controller) *transfer.Sender {
	return &transfer.Sender{Cfg: cfg, Store: store, Manifest: m, Controller: ctrl}
}

// NewSyntheticStore returns a store serving deterministic synthetic
// content, for testbed-style runs without disk.
func NewSyntheticStore() *fsim.SyntheticStore { return fsim.NewSyntheticStore() }

// NewDirStore returns a store over a real directory.
func NewDirStore(root string) (*fsim.DirStore, error) { return fsim.NewDirStore(root) }

// LargeFiles builds a count×size uniform dataset (the paper's Dataset A
// shape).
func LargeFiles(count int, size int64) Manifest { return workload.LargeFiles(count, size) }

// MixedFiles builds a log-uniform mixed dataset (the paper's Dataset B
// shape).
func MixedFiles(totalBytes, minSize, maxSize int64, seed int64) Manifest {
	return workload.Mixed(totalBytes, minSize, maxSize, rand.New(rand.NewSource(seed)))
}

// Marlin returns the Marlin baseline controller (three independent
// single-variable hill climbers).
func Marlin() Controller { return marlin.New() }

// Static returns the Globus-like fixed-concurrency monolithic baseline.
func Static(concurrency int) Controller { return static.New(concurrency) }
