// Command automdt-daemon is the multi-tenant transfer scheduler service:
// a long-running daemon that accepts transfer jobs over HTTP, queues them
// by priority, and runs them concurrently under a global per-stage worker
// budget split fair-share across active jobs (internal/sched).
//
// Start it with a host-wide budget:
//
//	automdt-daemon -addr :8080 -budget-read 32 -budget-net 32 -budget-write 32
//
// Submit, inspect, and cancel jobs:
//
//	curl -s localhost:8080/jobs -d '{"name":"nightly","priority":2,
//	    "dataset":{"kind":"large","count":64,"size_bytes":67108864}}'
//	curl -s localhost:8080/jobs          # list
//	curl -s localhost:8080/jobs/1        # one job
//	curl -s -X POST localhost:8080/jobs/1/cancel
//	curl -s localhost:8080/metrics       # text-format metrics
//
// The per-job optimizer is chosen with -optimizer: marlin (default,
// needs no training), static, or automdt with -model/-profile files
// written by automdt-train.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // handlers gated behind -pprof; see below
	"os"
	"os/signal"
	"syscall"
	"time"

	"automdt/internal/core"
	"automdt/internal/env"
	"automdt/internal/flight"
	"automdt/internal/marlin"
	"automdt/internal/probe"
	"automdt/internal/rl"
	"automdt/internal/sched"
	"automdt/internal/static"
	"automdt/internal/transfer"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	budgetRead := flag.Int("budget-read", 32, "global read worker budget")
	budgetConns := flag.Int("budget-conns", 16, "global data-connection budget")
	budgetNet := flag.Int("budget-net", 32, "global per-connection stream budget")
	budgetWrite := flag.Int("budget-write", 32, "global write worker budget")
	maxActive := flag.Int("max-active", 0, "max concurrent jobs (0 = min stage budget)")
	opt := flag.String("optimizer", "marlin", "per-job optimizer: marlin, static, automdt")
	endpoint := flag.Bool("endpoint", false, "run all jobs against one shared multi-session receiver endpoint instead of one private receiver per job")
	fleetSize := flag.Int("fleet", 0, "run jobs against a fleet of N receiver endpoints with consistent-hash placement and failover (implies -endpoint semantics; 0 = off)")
	maxSessions := flag.Int("max-sessions", 0, "shared endpoint admission cap (with -endpoint/-fleet; 0 = default 64)")
	writeBudget := flag.Float64("write-budget-mbps", 0, "per-endpoint write budget in Mbps, split max-min fair across its sessions (with -endpoint/-fleet; 0 = unarbitrated)")
	kioMode := flag.String("kio", "auto", "kernel-assisted I/O fast path for the endpoint receiver: auto, on, or off")
	cc := flag.Int("cc", 4, "static optimizer concurrency")
	model := flag.String("model", "", "automdt agent checkpoint (from automdt-train)")
	profilePath := flag.String("profile", "", "automdt probed profile JSON (from automdt-train)")
	maxThreads := flag.Int("maxthreads", 32, "per-stage concurrency bound for automdt")
	flightOn := flag.Bool("flight", false, "enable the decision flight recorder (dump at GET /debug/flight)")
	flightCap := flag.Int("flight-capacity", 0, "flight ring capacity per source (0 = default)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the HTTP listener")
	flag.Parse()

	if *flightOn {
		flight.Enable(*flightCap)
	}

	var newController func() env.Controller
	switch *opt {
	case "marlin":
		newController = func() env.Controller { return marlin.New() }
	case "static":
		newController = func() env.Controller { return static.New(*cc) }
	case "automdt":
		if *model == "" || *profilePath == "" {
			fatal(fmt.Errorf("automdt optimizer needs -model and -profile"))
		}
		pj, err := os.ReadFile(*profilePath)
		if err != nil {
			fatal(err)
		}
		var p probe.Profile
		if err := json.Unmarshal(pj, &p); err != nil {
			fatal(err)
		}
		f, err := os.Open(*model)
		if err != nil {
			fatal(err)
		}
		// Quick-mode training (the automdt-train default) uses the small
		// network; the checkpoint architecture must match.
		sys, err := core.LoadSystem(f, &p, core.Options{
			MaxThreads: *maxThreads,
			Net:        rl.NetConfig{Hidden: 32, PolicyBlocks: 1, ValueBlocks: 1},
		})
		f.Close()
		if err != nil {
			fatal(err)
		}
		// The mean-action controller is stateless, so one trained system
		// safely drives every concurrent job.
		newController = func() env.Controller { return sys.DeterministicController() }
	default:
		fatal(fmt.Errorf("unknown optimizer %q", *opt))
	}

	recvCfg := transfer.Config{MaxSessions: *maxSessions, KioMode: *kioMode, WriteBudgetMbps: *writeBudget}
	var runner sched.Runner = &sched.LoopbackRunner{}
	switch {
	case *fleetSize > 0:
		fr := &sched.FleetRunner{Size: *fleetSize, Receiver: recvCfg}
		defer fr.Close()
		runner = fr
	case *endpoint:
		er := &sched.EndpointRunner{Receiver: recvCfg}
		defer er.Close()
		runner = er
	}
	s, err := sched.New(sched.Config{
		Budget:        [env.StageCount]int{*budgetRead, *budgetConns, *budgetNet, *budgetWrite},
		MaxActive:     *maxActive,
		NewController: newController,
		Runner:        runner,
	})
	if err != nil {
		fatal(err)
	}
	switch r := runner.(type) {
	case *sched.FleetRunner:
		eps, err := r.Endpoints()
		if err != nil {
			fatal(err)
		}
		for _, ep := range eps {
			fmt.Printf("automdt-daemon: fleet endpoint %s serving data %s, control %s\n", ep.ID, ep.DataAddr, ep.CtrlAddr)
		}
	case *sched.EndpointRunner:
		data, ctrl, err := r.Addrs()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("automdt-daemon: shared endpoint serving data %s, control %s\n", data, ctrl)
	}

	handler := sched.NewHandler(s)
	if *pprofOn {
		// The pprof handlers register themselves on http.DefaultServeMux
		// at import; route /debug/pprof/ there and everything else to the
		// scheduler API, so profiling stays off unless asked for.
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("automdt-daemon: listening on %s (budget r/c/s/w = %d/%d/%d/%d, max active %d, optimizer %s)\n",
		*addr, *budgetRead, *budgetConns, *budgetNet, *budgetWrite, s.MaxActive(), *opt)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		s.Close()
		fatal(err)
	case got := <-sig:
		// Graceful shutdown: stop accepting, cancel in-flight jobs, wait
		// for workers.
		fmt.Printf("automdt-daemon: %v, shutting down\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		s.Close()
	}
}
