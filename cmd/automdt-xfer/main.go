// Command automdt-xfer runs a real sender/receiver transfer over TCP with
// a pluggable optimizer — the production phase of §IV-F.
//
// One-shot receiver (serves a single session, then exits):
//
//	automdt-xfer recv -data :9000 -ctrl :9001 -dir /staging/dst
//
// Multi-session endpoint (one listener pair serving a fleet of senders):
//
//	automdt-xfer serve -data :9000 -ctrl :9001 -dir /staging/dst \
//	    -sessions 0 -max-sessions 64
//
// -sessions N exits after N sessions finish; 0 serves until interrupted.
// Stale session ledgers in -dir older than -ledger-ttl are expired when
// the endpoint starts.
//
// Ledger inspection and offline compaction for a destination directory:
//
//	automdt-xfer ledger -dir /staging/dst                  # list sessions
//	automdt-xfer ledger -dir /staging/dst -session s-01    # one session
//	automdt-xfer ledger -dir /staging/dst -session s-01 -compact
//
// Sender (source DTN):
//
//	automdt-xfer send -data host:9000 -ctrl host:9001 \
//	    -files 100 -size 8388608 -optimizer marlin
//
// With -optimizer automdt, pass -model and -profile written by
// automdt-train. Use -dir on the sender to transfer a real directory
// instead of synthetic files.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"automdt/internal/core"
	"automdt/internal/env"
	"automdt/internal/flight"
	"automdt/internal/fsim"
	"automdt/internal/marlin"
	"automdt/internal/probe"
	"automdt/internal/rl"
	"automdt/internal/static"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "recv":
		recv(os.Args[2:])
	case "serve":
		serve(os.Args[2:])
	case "send":
		send(os.Args[2:])
	case "ledger":
		ledgerCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: automdt-xfer {recv|serve|send|ledger} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func engineConfig(fs *flag.FlagSet) *transfer.Config {
	cfg := &transfer.Config{}
	fs.IntVar(&cfg.ChunkBytes, "chunk", 256<<10, "chunk size in bytes")
	fs.Int64Var(&cfg.SenderBufBytes, "sendbuf", 64<<20, "sender staging bytes")
	fs.Int64Var(&cfg.ReceiverBufBytes, "recvbuf", 64<<20, "receiver staging bytes")
	fs.IntVar(&cfg.MaxThreads, "maxthreads", 32, "per-stage concurrency bound")
	fs.IntVar(&cfg.Conns, "conns", 0, "data connections to stripe chunks across (0 = one)")
	fs.DurationVar(&cfg.ProbeInterval, "interval", 250*time.Millisecond, "probe interval")
	fs.IntVar(&cfg.InitialThreads, "initial", 1, "initial concurrency")
	fs.BoolVar(&cfg.DisableChecksums, "no-checksums", false, "disable frame CRCs and end-to-end file verification")
	fs.StringVar(&cfg.KioMode, "kio", "auto", "kernel-assisted I/O fast path: auto, on, or off")
	fs.Float64Var(&cfg.Shaping.ReadPerThreadMbps, "cap-read", 0, "per-thread read cap (Mbps, 0=off)")
	fs.Float64Var(&cfg.Shaping.NetPerStreamMbps, "cap-net", 0, "per-stream network cap (Mbps, 0=off)")
	fs.Float64Var(&cfg.Shaping.WritePerThreadMbps, "cap-write", 0, "per-thread write cap (Mbps, 0=off)")
	fs.Float64Var(&cfg.Shaping.LinkMbps, "cap-link", 0, "aggregate link cap (Mbps, 0=off)")
	return cfg
}

// recvStore builds the destination store shared by recv and serve.
func recvStore(dir string, verify bool) fsim.Store {
	if dir != "" {
		ds, err := fsim.NewDirStore(dir)
		if err != nil {
			fatal(err)
		}
		return ds
	}
	ss := fsim.NewSyntheticStore()
	ss.Verify = verify
	return ss
}

func recv(args []string) {
	fs := flag.NewFlagSet("recv", flag.ExitOnError)
	data := fs.String("data", ":9000", "data listen address")
	ctrl := fs.String("ctrl", ":9001", "control listen address")
	dir := fs.String("dir", "", "destination directory (empty = synthetic sink)")
	verify := fs.Bool("verify", false, "verify synthetic content (synthetic sink only)")
	cfg := engineConfig(fs)
	fs.Parse(args)

	r := transfer.NewReceiver(*cfg, recvStore(*dir, *verify))
	if err := r.Listen(*data, *ctrl); err != nil {
		fatal(err)
	}
	fmt.Printf("receiving: data %s, control %s\n", r.DataAddr(), r.CtrlAddr())
	if err := r.ServeN(context.Background(), 1); err != nil {
		fatal(err)
	}
	fmt.Println("transfer complete")
}

// serve runs the multi-session endpoint: one listener pair serving up to
// -max-sessions concurrent senders, each with its own isolated session
// (staging, write pool, ledger).
func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	data := fs.String("data", ":9000", "data listen address")
	ctrl := fs.String("ctrl", ":9001", "control listen address")
	dir := fs.String("dir", "", "destination directory (empty = synthetic sink)")
	verify := fs.Bool("verify", false, "verify synthetic content (synthetic sink only)")
	sessions := fs.Int("sessions", 0, "exit after N sessions finish (0 = serve until interrupted)")
	cfg := engineConfig(fs)
	fs.IntVar(&cfg.MaxSessions, "max-sessions", 0, "concurrent-session admission cap (0 = default 64)")
	fs.Float64Var(&cfg.WriteBudgetMbps, "write-budget-mbps", 0, "endpoint write budget in Mbps, split max-min fair across active sessions (0 = unarbitrated)")
	fs.DurationVar(&cfg.LedgerTTL, "ledger-ttl", 0, "expire session ledgers older than this on start (0 = default 30 days, negative disables)")
	fs.Int64Var(&cfg.LedgerCompactBytes, "ledger-compact", 0, "fold a session's ledger journal into a fresh snapshot once it exceeds this many bytes (0 = default 1 MiB, negative disables)")
	fs.Parse(args)

	r := transfer.NewReceiver(*cfg, recvStore(*dir, *verify))
	r.OnSessionDone = func(res transfer.SessionResult) {
		if res.Err != nil {
			fmt.Printf("session %s (proto %d) failed: %v\n", res.SessionID, res.Proto, res.Err)
			return
		}
		fmt.Printf("session %s (proto %d) complete: %d bytes committed\n",
			res.SessionID, res.Proto, res.CommittedBytes)
	}
	if err := r.Listen(*data, *ctrl); err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving: data %s, control %s (cap %d sessions)\n",
		r.DataAddr(), r.CtrlAddr(), r.Cfg.MaxSessions)
	var err error
	if *sessions > 0 {
		err = r.ServeN(ctx, *sessions)
	} else {
		err = r.Serve(ctx)
	}
	if err != nil && ctx.Err() == nil {
		fatal(err)
	}
	fmt.Println("endpoint shut down")
}

func send(args []string) {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	data := fs.String("data", "127.0.0.1:9000", "receiver data address")
	ctrl := fs.String("ctrl", "127.0.0.1:9001", "receiver control address")
	dir := fs.String("dir", "", "source directory (empty = synthetic files)")
	files := fs.Int("files", 16, "synthetic file count")
	size := fs.Int64("size", 8<<20, "synthetic file size in bytes")
	opt := fs.String("optimizer", "static", "optimizer: static, marlin, automdt, none")
	cc := fs.Int("cc", 4, "static concurrency")
	model := fs.String("model", "", "automdt agent checkpoint (from automdt-train)")
	profilePath := fs.String("profile", "", "automdt probed profile JSON (from automdt-train)")
	flightPath := fs.String("flight", "", "record the decision flight trace and dump it to this file after the run (\"-\" for stdout; analyze with flightdump)")
	cfg := engineConfig(fs)
	fs.StringVar(&cfg.SessionID, "session", "", "resumable session id (re-run with the same id to resume; receiver needs -dir)")
	fs.Parse(args)
	if *flightPath != "" {
		flight.Enable(0)
	}

	var store fsim.Store
	var manifest workload.Manifest
	if *dir != "" {
		ds, err := fsim.NewDirStore(*dir)
		if err != nil {
			fatal(err)
		}
		store = ds
		m, err := manifestFromDir(*dir)
		if err != nil {
			fatal(err)
		}
		manifest = m
	} else {
		store = fsim.NewSyntheticStore()
		manifest = workload.LargeFiles(*files, *size)
	}

	var controller env.Controller
	switch *opt {
	case "none":
	case "static":
		controller = static.New(*cc)
	case "marlin":
		controller = marlin.New()
	case "automdt":
		if *model == "" || *profilePath == "" {
			fatal(fmt.Errorf("automdt optimizer needs -model and -profile"))
		}
		pj, err := os.ReadFile(*profilePath)
		if err != nil {
			fatal(err)
		}
		var p probe.Profile
		if err := json.Unmarshal(pj, &p); err != nil {
			fatal(err)
		}
		f, err := os.Open(*model)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// The checkpoint architecture must match; quick-mode training
		// (the automdt-train default) uses the small network.
		sys, err := core.LoadSystem(f, &p, core.Options{
			MaxThreads: cfg.MaxThreads,
			Net:        rl.NetConfig{Hidden: 32, PolicyBlocks: 1, ValueBlocks: 1},
		})
		if err != nil {
			fatal(err)
		}
		controller = sys.Controller()
	default:
		fatal(fmt.Errorf("unknown optimizer %q", *opt))
	}

	s := &transfer.Sender{Cfg: *cfg, Store: store, Manifest: manifest, Controller: controller}
	fmt.Printf("sending %d files (%d bytes) via %s optimizer...\n",
		len(manifest), manifest.TotalBytes(), *opt)
	res, err := s.Run(context.Background(), *data, *ctrl)
	if *flightPath != "" {
		// Dump even on failure: an aborted run's trace is exactly when the
		// decision record matters.
		if derr := flight.Default().WriteTrace(*flightPath); derr != nil {
			fmt.Fprintln(os.Stderr, derr)
		} else if *flightPath != "-" {
			fmt.Printf("flight trace written to %s\n", *flightPath)
		}
	}
	if err != nil {
		fatal(err)
	}
	if res.Resumed {
		fmt.Printf("resumed session %s: skipped %d committed bytes\n", res.SessionID, res.SkippedBytes)
	}
	fmt.Printf("done: %d bytes in %v (%.0f Mbps)\n", res.Bytes, res.Duration.Round(time.Millisecond), res.AvgMbps)
}

// ledgerCmd inspects and maintains the session ledgers of a resumable
// destination directory. Without -session it lists every persisted
// session; with one it prints the session's full state (snapshot +
// journal folded together); with -compact it folds the journal into a
// fresh binary snapshot and truncates it — the offline counterpart of
// the receiver's automatic compaction, useful before archiving a
// destination or after a crash left a long journal behind.
func ledgerCmd(args []string) {
	fs := flag.NewFlagSet("ledger", flag.ExitOnError)
	dir := fs.String("dir", "", "destination directory holding .automdt session state (required)")
	session := fs.String("session", "", "session id to inspect (empty = list all)")
	compact := fs.Bool("compact", false, "fold the session's journal into a fresh snapshot (needs -session)")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("ledger: -dir is required"))
	}
	if *compact && *session == "" {
		fatal(fmt.Errorf("ledger: -compact needs -session"))
	}
	ds, err := fsim.NewDirStore(*dir)
	if err != nil {
		fatal(err)
	}

	// loadState reads a session's document once and folds in its
	// journal, returning the decoded state plus the raw sizes (one read
	// per file — a 4M-chunk snapshot is ~16 MB, not worth reading twice).
	loadState := func(session string) (l *transfer.Ledger, schema, rawLen, journalLen int, err error) {
		raw, err := ds.LoadLedger(session)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		l, err = transfer.DecodeLedger(raw)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		journal, _ := ds.LoadJournal(session)
		l.ReplayJournal(journal)
		return l, transfer.LedgerSchema(raw), len(raw), len(journal), nil
	}

	if *session == "" {
		infos, err := ds.ListLedgers()
		if err != nil {
			fatal(err)
		}
		if len(infos) == 0 {
			fmt.Println("no session ledgers")
			return
		}
		fmt.Printf("%-24s %-7s %10s %14s %14s %8s\n", "session", "schema", "age", "committed", "total", "files")
		for _, info := range infos {
			l, schema, _, _, err := loadState(info.Session)
			if err != nil {
				fmt.Printf("%-24s unreadable: %v\n", info.Session, err)
				continue
			}
			var total int64
			for _, f := range l.Files {
				total += f.Size
			}
			fmt.Printf("%-24s %-7d %10s %14d %14d %8d\n",
				info.Session, schema, info.Age.Round(time.Second),
				l.CommittedBytes(), total, len(l.Files))
		}
		return
	}

	l, schema, rawLen, journalLen, err := loadState(*session)
	if err != nil {
		fatal(fmt.Errorf("ledger: load %s: %w", *session, err))
	}
	var total int64
	for _, f := range l.Files {
		total += f.Size
	}
	fmt.Printf("session:      %s\n", l.SessionID)
	fmt.Printf("schema:       %d\n", schema)
	fmt.Printf("chunk bytes:  %d\n", l.ChunkBytes)
	fmt.Printf("checksums:    %v\n", l.HasSums)
	fmt.Printf("files:        %d\n", len(l.Files))
	fmt.Printf("committed:    %d / %d bytes (%.1f%%), %d chunks\n",
		l.CommittedBytes(), total, 100*float64(l.CommittedBytes())/max(float64(total), 1), l.CommittedChunks())
	fmt.Printf("snapshot:     %d bytes\n", rawLen)
	fmt.Printf("journal:      %d bytes\n", journalLen)
	if !*compact {
		return
	}
	snap := l.EncodeV2()
	if err := ds.SaveLedger(*session, snap); err != nil {
		fatal(err)
	}
	if err := ds.ResetJournal(*session); err != nil {
		fatal(err)
	}
	fmt.Printf("compacted:    %d journal bytes folded into a %d-byte snapshot\n", journalLen, len(snap))
}

// manifestFromDir lists regular files under root, relative to it,
// skipping the .automdt control-plane sidecar directory (a directory
// that once served as a resumable destination must not ship its
// ledgers).
func manifestFromDir(root string) (workload.Manifest, error) {
	var m workload.Manifest
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == ".automdt" {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		m = append(m, workload.File{Name: rel, Size: info.Size()})
		return nil
	})
	return m, err
}
