// Command flightdump analyzes a decision flight trace: the JSON written
// by `automdt-xfer send -flight`, `automdt-bench -flight`, or fetched
// from a daemon's GET /debug/flight.
//
//	flightdump trace.json            # per-source regret summary + top moments
//	flightdump -top 20 trace.json
//	flightdump -source sched:arbiter trace.json
//	flightdump -json trace.json      # filtered events back out as JSON
//	curl -s localhost:8080/debug/flight | flightdump -
//
// The per-source summary ranks controllers by cumulative counterfactual
// regret; the moments view names the individual decisions that cost the
// most, which is where "fleet P99 was bad" turns into "the arbiter
// starved job 7".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"automdt/internal/flight"
)

func main() {
	top := flag.Int("top", 10, "how many top-regret moments to show")
	source := flag.String("source", "", "restrict to one source (e.g. sched:arbiter)")
	kind := flag.String("kind", "", "restrict to one event kind (decision, admission, rebalance, cap)")
	asJSON := flag.Bool("json", false, "emit the filtered events as JSON instead of the report")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flightdump [-top N] [-source S] [-kind K] [-json] <trace.json | ->")
		os.Exit(2)
	}

	var rd io.Reader = os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rd = f
	}
	trace, err := flight.ReadTrace(rd)
	if err != nil {
		fatal(err)
	}
	if *source != "" || *kind != "" {
		kept := trace.Events[:0]
		for _, ev := range trace.Events {
			if (*source == "" || ev.Source == *source) && (*kind == "" || ev.Kind == *kind) {
				kept = append(kept, ev)
			}
		}
		trace.Events = kept
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(trace); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(flight.Render(trace, *top))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
