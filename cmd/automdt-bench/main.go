// Command automdt-bench regenerates the paper's evaluation artifacts
// (Fig. 3, Fig. 4, Fig. 5, Table I, and the ablations) against the
// emulated testbeds.
//
// Usage:
//
//	automdt-bench -exp all                 # everything, quick fidelity
//	automdt-bench -exp fig3 -mode paper    # one experiment, full fidelity
//	automdt-bench -exp engine -bench-json BENCH_engine.json \
//	    -baseline bench/BENCH_baseline.json   # CI regression gate
//
// Experiments: fig3, fig4, fig5-read, fig5-network, fig5-write, table1,
// finetune, adaptation, ablation-joint, ablation-k, engine, chaos, all.
//
// The engine experiment runs the transfer-engine micro-benchmark suite
// (frame encode/decode, staging hand-off, arena lease cycle, loopback
// end-to-end) and, with -bench-json, writes a machine-readable report.
// With -baseline it exits non-zero when throughput drops or allocs/op
// rise by more than -bench-tolerance against the baseline report.
//
// The chaos experiment runs the adversarial scenario matrix over the
// live loopback engine: `-exp chaos -quick` is the PR-blocking 3×3
// sub-matrix, `-exp chaos -full` the nightly robustness battery. Each
// cell must complete byte-correct or fail cleanly and resume cheaply;
// -chaos-json writes the per-cell aggregate report (BENCH_chaos.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"automdt/internal/enginebench"
	"automdt/internal/experiments"
	"automdt/internal/flight"
	"automdt/internal/metrics"
	"automdt/internal/wire"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	modeStr := flag.String("mode", "quick", "fidelity: quick or paper")
	csvDir := flag.String("csv", "", "directory to write per-experiment trace CSVs (optional)")
	metricsPath := flag.String("metrics", "", "file to write a text-format metrics snapshot of the run (optional)")
	benchJSON := flag.String("bench-json", "", "file to write the engine benchmark report (engine experiment)")
	baseline := flag.String("baseline", "", "baseline report to gate the engine benchmarks against")
	benchTol := flag.Float64("bench-tolerance", 0.20, "allowed fractional regression before the baseline gate fails")
	kioMode := flag.String("kio", "auto", "kernel-assisted I/O gates in the engine experiment: auto (arm where the platform supports kio), on (require; fails where unsupported), off (skip)")
	kioFloor := flag.Float64("kio-speedup-floor", 1.15, "minimum loopback_e2e_kio / loopback_e2e goodput ratio (0 disables)")
	kioSysCeil := flag.Float64("kio-syscall-ratio", 0.5, "maximum loopback_e2e_kio / loopback_e2e syscalls/op ratio (0 disables)")
	flightTol := flag.Float64("flight-overhead-tolerance", 0.05, "allowed fractional loopback_e2e slowdown with the flight recorder on, measured within the run (0 disables the check)")
	flightPath := flag.String("flight", "", "enable the decision flight recorder for the run and dump the trace to this file (\"-\" for stdout; analyze with flightdump)")
	chaosQuick := flag.Bool("quick", false, "chaos experiment: run the PR-blocking 3×3 sub-matrix (the default)")
	chaosFull := flag.Bool("full", false, "chaos experiment: run the full nightly robustness battery")
	chaosJSON := flag.String("chaos-json", "", "file to write the chaos matrix per-cell report (chaos experiment)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the chaos matrix fault schedules")
	flag.Parse()

	if *chaosQuick && *chaosFull {
		fmt.Fprintln(os.Stderr, "-quick and -full are mutually exclusive")
		os.Exit(2)
	}

	if *flightPath != "" {
		flight.Enable(0)
	}

	mode := experiments.Quick
	if *modeStr == "paper" {
		mode = experiments.Paper
	}

	// snap accumulates headline numbers in the same text format the
	// scheduler daemon serves at /metrics.
	var snap metrics.Snapshot

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fmt.Printf("\n########## %s ##########\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		snap.Add("bench_duration_seconds", elapsed.Seconds(), metrics.L("exp", name))
		fmt.Printf("[%s took %v]\n", name, elapsed.Round(time.Millisecond))
	}
	recordCompare := func(name string, r *experiments.CompareResult) {
		snap.Add("bench_avg_mbps", r.Auto.Run.AvgMbps,
			metrics.L("exp", name), metrics.L("optimizer", "automdt"))
		snap.Add("bench_avg_mbps", r.Marlin.Run.AvgMbps,
			metrics.L("exp", name), metrics.L("optimizer", "marlin"))
		// TimeToTarget is -1 when the target was never reached; skip the
		// sample rather than export the sentinel as a duration.
		if r.Auto.TimeToTarget >= 0 {
			snap.Add("bench_time_to_target_seconds", r.Auto.TimeToTarget,
				metrics.L("exp", name), metrics.L("optimizer", "automdt"))
		}
		if r.Marlin.TimeToTarget >= 0 {
			snap.Add("bench_time_to_target_seconds", r.Marlin.TimeToTarget,
				metrics.L("exp", name), metrics.L("optimizer", "marlin"))
		}
	}

	writeCSV := func(name string, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		path := *csvDir + "/" + name + ".csv"
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Printf("[wrote %s]\n", path)
	}
	compareCSV := func(name string, r *experiments.CompareResult) {
		writeCSV(name+"-automdt", r.Auto.Run.Rec.CSV())
		writeCSV(name+"-marlin", r.Marlin.Run.Rec.CSV())
	}

	run("fig3", func() error {
		r, err := experiments.Fig3(mode)
		if err != nil {
			return err
		}
		experiments.PrintCompare(os.Stdout, r)
		compareCSV("fig3", r)
		recordCompare("fig3", r)
		return nil
	})
	run("fig4", func() error {
		r, err := experiments.Fig4(mode)
		if err != nil {
			return err
		}
		experiments.PrintFig4(os.Stdout, r)
		return nil
	})
	for name, f := range map[string]func(experiments.Mode) (*experiments.CompareResult, error){
		"fig5-read":    experiments.Fig5Read,
		"fig5-network": experiments.Fig5Network,
		"fig5-write":   experiments.Fig5Write,
	} {
		name, f := name, f
		run(name, func() error {
			r, err := f(mode)
			if err != nil {
				return err
			}
			experiments.PrintCompare(os.Stdout, r)
			compareCSV(name, r)
			recordCompare(name, r)
			return nil
		})
	}
	run("table1", func() error {
		r, err := experiments.Table1(mode)
		if err != nil {
			return err
		}
		experiments.PrintTable1(os.Stdout, r)
		for _, row := range r.Rows {
			ds := metrics.L("dataset", row.Dataset)
			snap.Add("bench_table1_mbps", row.GlobusMbps, ds, metrics.L("optimizer", "globus"))
			snap.Add("bench_table1_mbps", row.MarlinMbps, ds, metrics.L("optimizer", "marlin"))
			snap.Add("bench_table1_mbps", row.AutoMbps, ds, metrics.L("optimizer", "automdt"))
		}
		return nil
	})
	run("finetune", func() error {
		r, err := experiments.FineTune(mode, 120)
		if err != nil {
			return err
		}
		fmt.Printf("offline model:    %.1f mean total threads at %.0f Mbps\n",
			r.BaseMeanThreads, r.BaseMbps)
		fmt.Printf("fine-tuned model: %.1f mean total threads at %.0f Mbps\n",
			r.TunedMeanThreads, r.TunedMbps)
		fmt.Printf("concurrency change: %+.1f%% at %+.1f%% speed\n",
			100*(r.TunedMeanThreads-r.BaseMeanThreads)/r.BaseMeanThreads,
			100*(r.TunedMbps-r.BaseMbps)/r.BaseMbps)
		return nil
	})
	run("ablation-joint", func() error {
		r, err := experiments.AblationJoint(mode)
		if err != nil {
			return err
		}
		fmt.Printf("AutoMDT  %7.0f Mbps\nMarlin   %7.0f Mbps\nJoint-GD %7.0f Mbps (stuck below 90%% of AutoMDT: %v)\n",
			r.AutoMbps, r.MarlinMbps, r.JointMbps, r.JointStuck)
		return nil
	})
	run("adaptation", func() error {
		r, err := experiments.Adaptation(mode)
		if err != nil {
			return err
		}
		experiments.PrintAdaptation(os.Stdout, r)
		return nil
	})
	run("ablation-k", func() error {
		rows := experiments.KSweep([]float64{1.001, 1.005, 1.01, 1.02, 1.05, 1.1, 1.2})
		fmt.Printf("%-8s %-14s %-8s %s\n", "k", "best ⟨r,n,w⟩", "threads", "Mbps")
		for _, r := range rows {
			fmt.Printf("%-8.3f %-14v %-8d %.0f\n", r.K, r.BestThreads, r.TotalThreads, r.Mbps)
		}
		return nil
	})
	run("engine", func() error {
		rep := enginebench.Run(mode == experiments.Quick)
		fmt.Printf("%-22s %14s %12s %12s %12s %14s %12s\n", "benchmark", "ns/op", "MB/s", "allocs/op", "B/op", "persist B/op", "syscalls/op")
		for _, r := range rep.Results {
			mbs, pb, sys := "-", "-", "-"
			if r.MBPerSec > 0 {
				mbs = fmt.Sprintf("%.1f", r.MBPerSec)
			}
			if r.PersistedBytesPerOp > 0 {
				pb = fmt.Sprintf("%.0f", r.PersistedBytesPerOp)
			}
			if r.SyscallsPerOp > 0 {
				sys = fmt.Sprintf("%.0f", r.SyscallsPerOp)
			}
			fmt.Printf("%-22s %14.0f %12s %12.0f %12.0f %14s %12s\n", r.Name, r.NsPerOp, mbs, r.AllocsPerOp, r.BytesPerOp, pb, sys)
			snap.Add("bench_engine_ns_per_op", r.NsPerOp, metrics.L("bench", r.Name))
			snap.Add("bench_engine_allocs_per_op", r.AllocsPerOp, metrics.L("bench", r.Name))
			if r.MBPerSec > 0 {
				snap.Add("bench_engine_mb_per_s", r.MBPerSec, metrics.L("bench", r.Name))
			}
			if r.PersistedBytesPerOp > 0 {
				snap.Add("bench_engine_persisted_bytes_per_op", r.PersistedBytesPerOp, metrics.L("bench", r.Name))
			}
			if r.SyscallsPerOp > 0 {
				snap.Add("bench_engine_syscalls_per_op", r.SyscallsPerOp, metrics.L("bench", r.Name))
			}
		}
		// Kernel-assisted fast-path gates: the kio loopback must beat the
		// portable one by the configured goodput floor and spend at most
		// the configured fraction of its data-plane ops. "auto" arms them
		// only where the platform carries the fast path ("on" demands it;
		// elsewhere kio runs are byte-identical portable runs and the
		// ratios hover at 1.0 by construction).
		gateKio := *kioMode == "on" || (*kioMode == "auto" && wire.KioAvailable())
		if gateKio {
			if ratio, ok := enginebench.KioSpeedup(rep); ok {
				if *kioFloor > 0 && ratio < *kioFloor {
					// One pairing carries scheduling noise; re-measure
					// before failing the run on it.
					fmt.Printf("[kio goodput %.2fx below the %.2fx floor; re-measuring]\n", ratio, *kioFloor)
					if re, ok2 := enginebench.MeasureKioSpeedup(2); ok2 && re > ratio {
						ratio = re
					}
				}
				fmt.Printf("[kio fast-path goodput: %.2fx portable]\n", ratio)
				snap.Add("bench_engine_kio_speedup", ratio)
				if *kioFloor > 0 && ratio < *kioFloor {
					return fmt.Errorf("kio loopback goodput %.2fx of portable, below the %.2fx floor", ratio, *kioFloor)
				}
			} else if *kioMode == "on" {
				return fmt.Errorf("kio gates required (-kio=on) but the kio scenarios are missing from the report")
			}
			if ratio, ok := enginebench.KioSyscallRatio(rep); ok {
				fmt.Printf("[kio fast-path syscalls/op: %.2fx portable]\n", ratio)
				snap.Add("bench_engine_kio_syscall_ratio", ratio)
				if *kioSysCeil > 0 && ratio > *kioSysCeil {
					return fmt.Errorf("kio loopback spent %.2fx the portable syscalls/op, above the %.2f ceiling", ratio, *kioSysCeil)
				}
			}
		}
		if ratio, ok := enginebench.MultiConnSpeedup(rep); ok {
			if ratio < 1-*benchTol {
				// One pairing carries scheduling noise; re-measure
				// before failing the run on it.
				fmt.Printf("[multi-conn goodput %.2fx below tolerance; re-measuring]\n", ratio)
				if re, ok2 := enginebench.MeasureMultiConnSpeedup(mode == experiments.Quick, 2); ok2 && re > ratio {
					ratio = re
				}
			}
			fmt.Printf("[multi-conn striping goodput: %.2fx single-connection]\n", ratio)
			snap.Add("bench_engine_multiconn_speedup", ratio)
			if ratio < 1-*benchTol {
				return fmt.Errorf("striped data plane goodput %.2fx of single-connection, below the %.0f%% tolerance",
					ratio, *benchTol*100)
			}
		}
		if frac, ok := enginebench.FlightOverhead(rep); ok {
			if *flightTol > 0 && frac > *flightTol {
				// A single pairing carries several percent of scheduling
				// noise; re-measure before failing the run on it.
				fmt.Printf("[flight recorder overhead %+.1f%% above tolerance; re-measuring]\n", 100*frac)
				if re, ok2 := enginebench.MeasureFlightOverhead(mode == experiments.Quick, 2); ok2 && re < frac {
					frac = re
				}
			}
			fmt.Printf("[flight recorder overhead on loopback_e2e: %+.1f%%]\n", 100*frac)
			snap.Add("bench_engine_flight_overhead_frac", frac)
			if *flightTol > 0 && frac > *flightTol {
				return fmt.Errorf("flight recorder overhead %.1f%% exceeds %.0f%% on loopback_e2e",
					100*frac, *flightTol*100)
			}
		}
		if *benchJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("[wrote %s]\n", *benchJSON)
		}
		if *baseline != "" {
			data, err := os.ReadFile(*baseline)
			if err != nil {
				return fmt.Errorf("read baseline: %w", err)
			}
			var base enginebench.Report
			if err := json.Unmarshal(data, &base); err != nil {
				return fmt.Errorf("parse baseline: %w", err)
			}
			if base.Quick != rep.Quick {
				// loopback_e2e allocs/op scales with the dataset size, so
				// cross-fidelity comparison would report bogus regressions.
				return fmt.Errorf("baseline fidelity (quick=%v) differs from this run (quick=%v); regenerate the baseline or use a matching -mode",
					base.Quick, rep.Quick)
			}
			if !enginebench.ThroughputComparable(base, rep) {
				fmt.Printf("[baseline CPU differs (%q vs %q): gating allocs/op only]\n", base.CPU, rep.CPU)
			}
			regs := enginebench.Compare(base, rep, *benchTol)
			for _, reg := range regs {
				fmt.Fprintf(os.Stderr, "REGRESSION %s\n", reg)
			}
			if len(regs) > 0 {
				return fmt.Errorf("engine benchmarks regressed beyond %.0f%% against %s",
					*benchTol*100, *baseline)
			}
			fmt.Printf("[baseline gate passed: %s, tolerance %.0f%%]\n", *baseline, *benchTol*100)
		}
		return nil
	})

	run("chaos", func() error {
		matrix := experiments.QuickChaosMatrix(*chaosSeed)
		matrixMode := "quick"
		if *chaosFull {
			matrix = experiments.FullChaosMatrix(*chaosSeed)
			matrixMode = "full"
		}
		rep := experiments.RunChaosMatrix(context.Background(), matrix, matrixMode, os.Stdout)
		experiments.PrintChaosReport(os.Stdout, rep)
		for _, c := range rep.Cells {
			cell := metrics.L("cell", c.Cell)
			if c.GoodputMbps > 0 {
				snap.Add("bench_chaos_goodput_mbps", c.GoodputMbps, cell)
			}
			snap.Add("bench_chaos_attempts", float64(c.Attempts), cell)
			snap.Add("bench_chaos_replan_events", float64(c.ReplanEvents), cell)
			snap.Add("bench_chaos_resent_bytes", float64(c.ResentBytes+c.ResentCommitted), cell)
			snap.Add("bench_chaos_ledger_bytes", float64(c.LedgerBytes), cell)
		}
		if *chaosJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*chaosJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("[wrote %s]\n", *chaosJSON)
		}
		if !rep.Pass {
			failed := 0
			for _, c := range rep.Cells {
				if !c.Pass {
					failed++
				}
			}
			return fmt.Errorf("chaos matrix failed: %d of %d cells broke their invariant", failed, len(rep.Cells))
		}
		return nil
	})

	if *metricsPath != "" {
		if err := os.WriteFile(*metricsPath, []byte(snap.Text()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s]\n", *metricsPath)
	}
	if *flightPath != "" {
		if err := flight.Default().WriteTrace(*flightPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *flightPath != "-" {
			fmt.Printf("[wrote %s]\n", *flightPath)
		}
	}
}
