// Command automdt-train runs AutoMDT's offline pipeline (Fig. 2):
// exploration and logging against an emulated testbed, simulator fitting,
// and PPO training, then writes the agent checkpoint and the probed
// profile to disk for automdt-xfer to load.
//
// Usage:
//
//	automdt-train -testbed wan -out model.ckpt -profile profile.json
//	automdt-train -testbed read -mode paper   # full 256-wide training
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"automdt/internal/experiments"
)

func main() {
	testbed := flag.String("testbed", "read", "emulated testbed: read, network, write, conns, wan")
	modeStr := flag.String("mode", "quick", "fidelity: quick or paper")
	out := flag.String("out", "automdt-model.ckpt", "agent checkpoint output path")
	profileOut := flag.String("profile", "automdt-profile.json", "probed profile output path")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	tbs := map[string]experiments.Testbed{
		"read":    experiments.ReadBottleneck(),
		"network": experiments.NetworkBottleneck(),
		"write":   experiments.WriteBottleneck(),
		"conns":   experiments.ConnsBottleneck(),
		"wan":     experiments.Wan(),
	}
	tb, ok := tbs[*testbed]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown testbed %q (want read, network, write, conns, or wan)\n", *testbed)
		os.Exit(2)
	}
	mode := experiments.Quick
	if *modeStr == "paper" {
		mode = experiments.Paper
	}

	fmt.Printf("probing and training on %s (mode=%s)...\n", tb.Name, *modeStr)
	start := time.Now()
	sys, err := experiments.TrainedSystem(tb, mode, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dur := time.Since(start)

	fmt.Printf("profile: %s\n", sys.Profile)
	if tr := sys.TrainResult; tr != nil {
		fmt.Printf("training: %d episodes in %v (converged=%v at episode %d, best reward %.0f)\n",
			tr.Episodes, dur.Round(time.Second), tr.Converged, tr.ConvergedAt, tr.BestReward)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := sys.SaveAgent(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	pj, err := json.MarshalIndent(sys.Profile, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*profileOut, pj, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s and %s\n", *out, *profileOut)
}
