package automdt

import (
	"context"
	"testing"
	"time"

	"automdt/internal/probe"
	"automdt/internal/sim"
)

// The facade's end-to-end happy path: probe an emulated path, train a
// tiny agent, and run a live loopback transfer under its control.
func TestFacadePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	path := sim.Config{
		TPT:            [3]float64{200, 100, 250},
		Bandwidth:      [3]float64{800, 800, 800},
		SenderBufCap:   400,
		ReceiverBufCap: 400,
		ChunkMb:        8,
	}
	prof, err := ProbeWith(probe.SimRunner{Sim: sim.New(path)}, 5,
		ProbeOptions{Steps: 200, MaxThreads: 16})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Train(prof, Options{
		MaxThreads: 16,
		Net:        NetConfig{Hidden: 32, PolicyBlocks: 1, ValueBlocks: 1},
		Train: TrainConfig{
			Episodes: 400, LR: 1e-3, UpdateEpochs: 4,
			StagnantLimit: 1 << 30, EntropyCoef: 0.01,
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := TransferConfig{
		ChunkBytes:     128 << 10,
		MaxThreads:     16,
		InitialThreads: 1,
		ProbeInterval:  80 * time.Millisecond,
		Shaping: Shaping{
			ReadPerThreadMbps:  200,
			NetPerStreamMbps:   100,
			WritePerThreadMbps: 250,
			LinkMbps:           800,
		},
	}
	src := NewSyntheticStore()
	dst := NewSyntheticStore()
	dst.Verify = true
	m := LargeFiles(8, 2<<20)
	res, err := LoopbackTransfer(context.Background(), cfg, m, src, dst, sys.Controller())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != m.TotalBytes() {
		t.Fatalf("bytes=%d", res.Bytes)
	}
	if len(dst.Errors()) != 0 {
		t.Fatalf("corruption: %v", dst.Errors()[0])
	}
	if res.Controller != "automdt" {
		t.Fatalf("controller %q", res.Controller)
	}
}

func TestFacadeBaselines(t *testing.T) {
	if Marlin().Name() != "marlin" {
		t.Fatal("marlin factory broken")
	}
	if Static(4).Name() != "static" {
		t.Fatal("static factory broken")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	m := LargeFiles(3, 100)
	if len(m) != 3 || m.TotalBytes() != 300 {
		t.Fatalf("LargeFiles: %v", m)
	}
	mix := MixedFiles(1<<20, 1<<10, 64<<10, 1)
	if mix.TotalBytes() != 1<<20 {
		t.Fatalf("MixedFiles total %d", mix.TotalBytes())
	}
}

func TestFacadeStores(t *testing.T) {
	s := NewSyntheticStore()
	r, err := s.Open("x", 100)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	d, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.Create("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
}
