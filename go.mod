module automdt

go 1.24
