package automdt

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// docFiles returns the repo's markdown documentation set: README.md and
// everything under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("docs/ directory missing: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	return files
}

// TestDocsLinks verifies every relative link in README.md and docs/*.md
// resolves to a file or directory in the repo — the link check CI's docs
// job runs. External URLs, pure anchors, and GitHub-site-relative paths
// that escape the repo (the CI badge) are skipped.
func TestDocsLinks(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop the anchor
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			abs, err := filepath.Abs(resolved)
			if err != nil || !strings.HasPrefix(abs, root+string(filepath.Separator)) {
				continue // escapes the repo: a GitHub-site-relative link
			}
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", file, m[1], err)
			}
		}
	}
}

// TestDocsLinkedFromReadme pins the documentation contract: the three
// docs-subsystem pages exist and the README links to each of them.
func TestDocsLinkedFromReadme(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"ARCHITECTURE.md", "PROTOCOL.md", "OPERATIONS.md"} {
		path := filepath.Join("docs", doc)
		if _, err := os.Stat(path); err != nil {
			t.Errorf("required doc missing: %v", err)
			continue
		}
		if !strings.Contains(string(readme), "docs/"+doc) {
			t.Errorf("README.md does not link to docs/%s", doc)
		}
	}
}
