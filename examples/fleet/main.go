// Fleet: drive two hundred transfer sessions through the scheduler
// daemon against a THREE-endpoint receiver fleet, then kill one endpoint
// mid-run and watch the fleet absorb it. Sessions are placed on
// endpoints by a consistent-hash ring with bounded loads, endpoint
// liveness comes from a heartbeat registry, and every endpoint shares
// one destination store — so when ep-2 dies, the sessions it was serving
// are retried by the scheduler, placed on a live sibling, and resume
// from the ledger the victim persisted in the shared store instead of
// re-sending from byte zero.
//
// The example starts the daemon in-process on an ephemeral port, submits
// every job over real HTTP, kills an endpoint once the run is warm,
// polls until the fleet drains, and prints the per-state tally, the
// /v1/fleet membership document, the fleet's re-place decisions from the
// flight recorder, and the automdt_fleet_* gauges from /metrics.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"automdt/internal/env"
	"automdt/internal/flight"
	"automdt/internal/marlin"
	"automdt/internal/sched"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

const (
	jobs      = 200
	endpoints = 3
)

func main() {
	flight.Enable(1024) // record the fleet's place/re-place decisions

	fleet := &sched.FleetRunner{
		Size:     endpoints,
		Verify:   true,
		Receiver: transfer.Config{MaxSessions: 96},
	}
	defer fleet.Close()

	s, err := sched.New(sched.Config{
		Budget:        [env.StageCount]int{32, 24, 32, 32},
		MaxActive:     24,
		NewController: func() env.Controller { return marlin.New() },
		Runner:        fleet,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	eps, err := fleet.Endpoints()
	if err != nil {
		log.Fatal(err)
	}
	for _, ep := range eps {
		fmt.Printf("fleet endpoint %s: data %s, control %s\n", ep.ID, ep.DataAddr, ep.CtrlAddr)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: sched.NewHandler(s)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon listening on %s\n\n", base)

	// Two hundred sessions — enough that every endpoint hosts dozens
	// over the run and the mid-burst kill is guaranteed to orphan some.
	submit := func(i int) {
		// Early jobs carry more files so sessions are still mid-transfer
		// when the kill lands; the tail stays light so the run drains.
		count := 2
		if i < jobs*3/5 {
			count = 6
		}
		req := sched.SubmitRequest{
			Name:            fmt.Sprintf("sess-%03d", i),
			Priority:        1 + i%3,
			MaxRetries:      3,
			ProbeIntervalMs: 25,
			Dataset:         workload.Spec{Kind: "large", Count: count, SizeBytes: 2 << 20},
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	poll := func() (done, failed int, list []sched.JobStatus) {
		resp, err := http.Get(base + "/v1/jobs")
		if err != nil {
			log.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		for _, st := range list {
			switch st.State {
			case "done":
				done++
			case "failed", "canceled":
				failed++
			}
		}
		return done, failed, list
	}

	// The fault injector runs alongside the submission burst: as soon as
	// the victim endpoint demonstrably hosts a handful of in-flight
	// sessions, it is killed outright — its serve loop dies, its
	// sessions abort, and its heartbeats stop, so the registry declares
	// it dead one TTL later. Victim sessions fail over: the scheduler's
	// retry re-places them on a live sibling, which resumes from the
	// ledger in the shared store. The watcher reads the fleet's status
	// directly because an HTTP poll can lag seconds behind on a
	// saturated box.
	start := time.Now()
	victim := eps[endpoints-1].ID
	killed := make(chan int, 1)
	go func() {
		// The budget arbiter keeps only a handful of jobs in flight at
		// once, so "a couple of sessions on the victim" is already a
		// representative mid-run load.
		deadline := time.Now().Add(20 * time.Second)
		hosted := 0
		for hosted < 2 && time.Now().Before(deadline) {
			for _, ep := range fleet.Status().Endpoints {
				if ep.ID == victim {
					hosted = ep.Sessions
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
		if err := fleet.KillEndpoint(victim); err != nil {
			log.Fatal(err)
		}
		killed <- hosted
	}()

	for i := 0; i < jobs; i++ {
		submit(i)
	}
	fmt.Printf("submitted %d jobs across %d endpoints\n", jobs, endpoints)
	fmt.Printf("killed endpoint %s with %d sessions in flight\n", victim, <-killed)

	var list []sched.JobStatus
	for {
		done, failed, l := poll()
		if done+failed == jobs {
			list = l
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	tally := map[string]int{}
	resumes, skipped := 0, int64(0)
	for _, st := range list {
		tally[st.State]++
		resumes += st.Resumes
		skipped += st.SkippedBytes
	}
	fmt.Printf("\nall %d jobs drained in %v: %v\n", jobs, time.Since(start).Round(time.Millisecond), tally)
	fmt.Printf("failover resumes: %d sessions skipped %.1f MiB of already-committed bytes\n",
		resumes, float64(skipped)/(1<<20))

	// The fleet's own account of what happened: membership with the dead
	// victim, placement and failover counters.
	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		log.Fatal(err)
	}
	var fs sched.FleetStatus
	json.NewDecoder(resp.Body).Decode(&fs)
	resp.Body.Close()
	doc, _ := json.MarshalIndent(fs, "", "  ")
	fmt.Printf("\nGET /v1/fleet:\n%s\n", doc)

	replaces := 0
	for _, ev := range flight.Default().Dump(sched.FleetSource, 0) {
		if ev.Kind == flight.KindReplace {
			replaces++
		}
	}
	fmt.Printf("\nflight recorder: %d re-place decisions under source %q\n", replaces, sched.FleetSource)

	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	fmt.Println("\nfleet gauges:")
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "automdt_fleet_") {
			fmt.Println(line)
		}
	}

	if failed := tally["failed"] + tally["canceled"]; failed > 0 {
		log.Fatalf("%d of %d sessions did not complete", failed, jobs)
	}
	if !fs.Endpoints[endpoints-1].Live {
		fmt.Printf("\nendpoint %s is dead, %d live siblings carried the fleet home\n", victim, fs.Size-1)
	}
}
