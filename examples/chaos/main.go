// Chaos: a three-cell slice of the adversarial scenario matrix, run
// in-process. Each cell composes one fault axis with a live loopback
// transfer — a Markov-modulated jittery link, a flaky destination disk
// (periodic write failures and short writes), and a hostile peer that
// cuts a data connection mid-transfer — and each must satisfy the same
// invariant the nightly robustness battery enforces: complete
// byte-correct, or fail cleanly and resume re-sending almost nothing.
// The program prints the per-cell aggregate table (goodput, attempts,
// re-plan events, fault-detection latency) that BENCH_chaos.json
// collects at full scale.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"automdt/internal/chaos"
	"automdt/internal/experiments"
	"automdt/internal/workload"
)

func main() {
	load := experiments.ChaosLoad{
		Name: "mixed-8mb",
		Spec: workload.Spec{Kind: "mixed", TotalBytes: 8 << 20,
			MinBytes: 64 << 10, MaxBytes: 1 << 20, Seed: 5},
	}
	total := int64(8 << 20)

	jittery := chaos.LinkModel{
		Name: "jittery",
		States: []chaos.LinkState{
			{Name: "calm", BandwidthMbps: 600, JitterMs: 0.2},
			{Name: "rough", BandwidthMbps: 150, JitterMs: 2},
		},
		Trans:  [][]float64{{0.8, 0.2}, {0.5, 0.5}},
		StepMs: 50,
	}

	matrix := experiments.ChaosMatrix{
		Name: "demo",
		Seed: 7,
		Cells: []experiments.ChaosCell{
			{
				Name: "jittery/none/none/" + load.Name,
				Link: jittery, Load: load,
			},
			{
				Name: "clean/flaky/none/" + load.Name,
				Disk: chaos.DiskFault{Name: "flaky", FailEveryN: 53, ShortEveryN: 71},
				Load: load,
			},
			{
				Name: "clean/none/kill-conn/" + load.Name,
				Peer: chaos.PeerFault{Name: "kill-conn",
					KillDataAfterBytes: total / 3, KillCount: 1},
				Load: load, MinReplans: 1,
			},
		},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fmt.Println("=== Adversarial mini-matrix: 3 fault axes, one invariant ===")
	rep := experiments.RunChaosMatrix(ctx, matrix, "demo", os.Stdout)
	fmt.Println()
	experiments.PrintChaosReport(os.Stdout, rep)

	for _, c := range rep.Cells {
		if c.Peer != "none" && c.ReplanEvents > 0 {
			fmt.Printf("\nkill cell %q: %d re-plan event(s), fault detected in %.0fms, recovered in %.0fms\n",
				c.Cell, c.ReplanEvents, c.DetectMs, c.RecoverMs)
		}
	}
	if !rep.Pass {
		log.Fatal("chaos demo: a cell broke its invariant")
	}
}
