// Offline training walkthrough: the Fig. 2 pipeline in slow motion.
// Probes an emulated testbed with the random-threads run, fits the
// dynamics simulator, trains the PPO agent, and prints the learning
// curve, the convergence bookkeeping of Algorithm 2, and the final
// policy's behaviour at a few states.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"automdt"
	"automdt/internal/env"
	"automdt/internal/metrics"
	"automdt/internal/probe"
	"automdt/internal/sim"
)

func main() {
	// Emulated testbed: network is the bottleneck (75 Mbps per stream on
	// a 1 Gbps link → 14 streams needed; read/write need ~5).
	testbed := sim.Config{
		TPT:            [3]float64{205, 75, 195},
		Bandwidth:      [3]float64{1000, 1000, 1000},
		SenderBufCap:   500,
		ReceiverBufCap: 500,
		ChunkMb:        8,
	}

	// Exploration and logging (§IV-A).
	prof, err := automdt.ProbeWith(probe.SimRunner{Sim: sim.New(testbed)}, 11,
		automdt.ProbeOptions{Steps: 300, MaxThreads: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("probe phase:")
	fmt.Printf("  bandwidths  B = [%.0f %.0f %.0f] Mbps\n", prof.B[0], prof.B[1], prof.B[2])
	fmt.Printf("  per-thread  TPT = [%.1f %.1f %.1f] Mbps\n", prof.TPT[0], prof.TPT[1], prof.TPT[2])
	fmt.Printf("  bottleneck  b = %.0f Mbps, n* = %v, Rmax = %.0f\n",
		prof.Bottleneck, prof.NStar, prof.Rmax)

	// Offline PPO training (Algorithm 2) against the fitted simulator.
	fmt.Println("\ntraining (Algorithm 2)...")
	sys, err := automdt.Train(prof, automdt.Options{
		MaxThreads: 20,
		Net:        automdt.NetConfig{Hidden: 32, PolicyBlocks: 1, ValueBlocks: 1},
		Train: automdt.TrainConfig{
			Episodes: 1500, LR: 1e-3, UpdateEpochs: 4,
			StagnantLimit: 300, EntropyCoef: 0.01,
		},
		Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := sys.TrainResult
	fmt.Printf("  episodes run: %d (cap %d)\n", tr.Episodes, 1500)
	fmt.Printf("  converged: %v (90%% of Rmax first reached at episode %d)\n",
		tr.Converged, tr.ConvergedAt)
	fmt.Printf("  best episode reward: %.0f (theoretical max %.0f)\n",
		tr.BestReward, 10*prof.Rmax)
	fmt.Println("\n  learning curve (mean episode reward per 10% block):")
	n := len(tr.EpisodeRewards)
	for i := 0; i < 10 && n >= 10; i++ {
		block := tr.EpisodeRewards[i*n/10 : (i+1)*n/10]
		fmt.Printf("    %3d%%  %8.0f\n", (i+1)*10, metrics.Summarize(block).Mean)
	}

	// Inspect the learned policy: what does it do at an empty-buffer
	// state versus a congested one?
	fmt.Println("\nlearned policy behaviour:")
	e := env.NewSimEnv(sim.New(testbed), rand.New(rand.NewSource(3)))
	e.MaxThreadsN = 20
	ctrl := sys.Controller()
	for _, tc := range []struct {
		name  string
		state env.State
	}{
		{"cold start (buffers empty)", env.State{
			N:          [env.StageCount]int{1, 1, 1, 1},
			Throughput: env.ThroughputVec(200, 75, 75),
			SenderFree: 500, ReceiverFree: 500}},
		{"sender staging full", env.State{
			N:          [env.StageCount]int{10, 1, 5, 5},
			Throughput: env.ThroughputVec(400, 375, 375),
			SenderFree: 0, ReceiverFree: 300}},
	} {
		act := ctrl.Decide(tc.state)
		fmt.Printf("  %-28s → n = %v\n", tc.name, act.N)
	}
	fmt.Printf("\n(optimal for this testbed: %v)\n", prof.NStar)
}
