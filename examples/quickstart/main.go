// Quickstart: run a complete modular transfer in-process over loopback
// TCP — synthetic source, synthetic verified sink, Marlin optimizer —
// and print the per-stage traces it recorded.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"automdt"
)

func main() {
	// 32 MB of synthetic data in 8 files.
	manifest := automdt.LargeFiles(8, 4<<20)

	cfg := automdt.TransferConfig{
		ChunkBytes:     256 << 10,
		MaxThreads:     16,
		InitialThreads: 1,
		ProbeInterval:  100 * time.Millisecond,
		// Emulate a constrained path: 400 Mbps link, 60 Mbps per network
		// stream, 100/120 Mbps per read/write thread.
		Shaping: automdt.Shaping{
			ReadPerThreadMbps:  100,
			NetPerStreamMbps:   60,
			WritePerThreadMbps: 120,
			LinkMbps:           400,
		},
	}

	src := automdt.NewSyntheticStore()
	dst := automdt.NewSyntheticStore()
	dst.Verify = true // check every byte that lands

	res, err := automdt.LoopbackTransfer(context.Background(), cfg, manifest,
		src, dst, automdt.Marlin())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transferred %d bytes in %v (%.0f Mbps) using %s\n",
		res.Bytes, res.Duration.Round(time.Millisecond), res.AvgMbps, res.Controller)
	if errs := dst.Errors(); len(errs) > 0 {
		log.Fatalf("integrity check failed: %v", errs[0])
	}
	fmt.Println("integrity check passed")

	fmt.Println("\nper-tick concurrency (read/network/write):")
	cr := res.Recorder.Series("cc_read").Points()
	cn := res.Recorder.Series("cc_net").Points()
	cw := res.Recorder.Series("cc_write").Points()
	for i := range cr {
		fmt.Printf("  t=%5.2fs  %2.0f %2.0f %2.0f\n", cr[i].T, cr[i].V, cn[i].V, cw[i].V)
	}
}
