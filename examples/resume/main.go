// Resume: failure injection against a resumable session. Phase 1 starts
// a disk-backed transfer over a throttled loopback link and kills the
// receiver once the session's chunk ledger shows ~40% committed —
// emulating a DTN process dying mid-dataset. Phase 2 restarts the
// receiver against the same directory and the same session: the Welcome
// handshake advertises the persisted ledger, the sender plans only the
// missing ranges, and the run completes having re-sent almost nothing.
// The program verifies every destination byte and prints the ledger
// economics (committed, skipped, re-sent) plus the automdt_resume_*
// counters.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"automdt"
	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/transfer"
)

const session = "resume-demo"

func main() {
	dir, err := os.MkdirTemp("", "automdt-resume-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	manifest := automdt.LargeFiles(4, 4<<20) // 16 MiB
	total := manifest.TotalBytes()
	src := automdt.NewSyntheticStore()

	cfg := automdt.TransferConfig{
		ChunkBytes:     256 << 10,
		InitialThreads: 4,
		MaxThreads:     8,
		ProbeInterval:  25 * time.Millisecond,
		SessionID:      session,
		// Throttle so the kill lands mid-flight.
		Shaping: automdt.Shaping{LinkMbps: 400},
	}

	// ---- Phase 1: transfer, then kill the receiver mid-dataset. ----
	dst1, err := automdt.NewDirStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	rctx, kill := context.WithCancel(context.Background())
	recv := automdt.NewReceiver(cfg, dst1)
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	recvErr := make(chan error, 1)
	go func() { recvErr <- recv.Serve(rctx) }()

	go func() {
		// Watch the persisted ledger and pull the plug at ~40%.
		for {
			if l, err := transfer.LoadSessionLedger(dst1, session); err == nil && l.CommittedBytes() > 2*total/5 {
				fmt.Printf("phase 1: killing receiver at %d / %d bytes committed\n",
					l.CommittedBytes(), total)
				kill()
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	send := automdt.NewSender(cfg, src, manifest, nil)
	if _, err := send.Run(context.Background(), recv.DataAddr(), recv.CtrlAddr()); err != nil {
		fmt.Printf("phase 1: sender failed as injected: %v\n", err)
	}
	<-recvErr
	kill()

	// ---- Phase 2: restart both ends; the session resumes. ----
	dst2, err := automdt.NewDirStore(dir) // fresh store value = fresh process
	if err != nil {
		log.Fatal(err)
	}
	// Snapshot + journal folded together — what the next attempt trusts.
	l, err := transfer.LoadSessionLedger(dst2, session)
	if err != nil {
		log.Fatal("no persisted ledger to resume from: ", err)
	}
	committed := l.CommittedBytes()
	fmt.Printf("phase 2: ledger survives restart with %d bytes (%.0f%%) committed\n",
		committed, 100*float64(committed)/float64(total))

	cfg2 := cfg
	cfg2.Shaping = automdt.Shaping{} // full speed for the remainder
	res, err := automdt.LoopbackTransfer(context.Background(), cfg2, manifest, src, dst2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: resumed session %s in %v — skipped %d bytes, re-sent %d of %d\n",
		res.SessionID, res.Duration.Round(time.Millisecond),
		res.SkippedBytes, res.WireBytes, total)
	if !res.Resumed || res.SkippedBytes != committed {
		log.Fatalf("resume did not honour the ledger: %+v", res)
	}

	// Verify every byte that landed on disk.
	for _, f := range manifest {
		got, err := os.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			log.Fatal(err)
		}
		want := make([]byte, f.Size)
		fsim.FillContent(f.Name, 0, want)
		if !bytes.Equal(got, want) {
			log.Fatalf("%s corrupt after resume", f.Name)
		}
	}
	fmt.Println("integrity check passed: every destination byte matches the source")
	fmt.Printf("\nresume counters:\n%s", metrics.ResumeSnapshot().Text())
}
