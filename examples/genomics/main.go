// Genomics scenario: a sequencing lab ships a mixed dataset (many small
// index files plus multi-gigabyte read archives — the paper's motivating
// workload) to a compute facility across an emulated WAN. The example
// runs the full AutoMDT pipeline: probe the path, train the PPO agent
// offline against the fitted simulator, then drive the live engine with
// the trained controller and compare against a Globus-like static
// configuration.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"automdt"
	"automdt/internal/probe"
	"automdt/internal/sim"
)

// The emulated lab→facility path: 800 Mbps end to end, per-stream
// network throttle of 100 Mbps (8 streams to saturate), storage threads
// at 200/250 Mbps.
var path = sim.Config{
	TPT:            [3]float64{200, 100, 250},
	Bandwidth:      [3]float64{800, 800, 800},
	SenderBufCap:   400,
	ReceiverBufCap: 400,
	ChunkMb:        8,
}

func main() {
	// ~64 MB mixed dataset: 64 KB index files up to 8 MB archives.
	manifest := automdt.MixedFiles(64<<20, 64<<10, 8<<20, 42)
	fmt.Printf("dataset: %d files, %d bytes\n", len(manifest), manifest.TotalBytes())

	// 1. Exploration and logging (§IV-A): a random-threads run against
	// the path model (on a real deployment this runs on the live DTNs).
	prof, err := automdt.ProbeWith(probe.SimRunner{Sim: sim.New(path)}, 7,
		automdt.ProbeOptions{Steps: 300, MaxThreads: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probed: %s\n", prof)

	// 2. Offline PPO training against the fitted simulator (Fig. 2).
	// Small networks keep this example fast; see -mode paper in
	// cmd/automdt-train for the full architecture.
	fmt.Println("training agent offline...")
	sys, err := automdt.Train(prof, automdt.Options{
		MaxThreads:    16,
		SenderBufMb:   path.SenderBufCap,
		ReceiverBufMb: path.ReceiverBufCap,
		Net:           automdt.NetConfig{Hidden: 32, PolicyBlocks: 1, ValueBlocks: 1},
		Train: automdt.TrainConfig{
			Episodes: 1200, LR: 1e-3, UpdateEpochs: 4,
			StagnantLimit: 300, EntropyCoef: 0.01,
		},
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d episodes, best reward %.0f\n",
		sys.TrainResult.Episodes, sys.TrainResult.BestReward)

	// 3. Production transfers over the live engine, shaped to the path.
	cfg := automdt.TransferConfig{
		ChunkBytes:       256 << 10,
		MaxThreads:       16,
		InitialThreads:   1,
		ProbeInterval:    100 * time.Millisecond,
		SenderBufBytes:   50 << 20, // 400 Mb staging
		ReceiverBufBytes: 50 << 20,
		Shaping: automdt.Shaping{
			ReadPerThreadMbps:  path.TPT[0],
			NetPerStreamMbps:   path.TPT[1],
			WritePerThreadMbps: path.TPT[2],
			LinkMbps:           path.Bandwidth[1],
			ReadAggMbps:        path.Bandwidth[0],
			WriteAggMbps:       path.Bandwidth[2],
		},
	}

	run := func(name string, ctrl automdt.Controller) {
		src := automdt.NewSyntheticStore()
		dst := automdt.NewSyntheticStore()
		dst.Verify = true
		res, err := automdt.LoopbackTransfer(context.Background(), cfg, manifest, src, dst, ctrl)
		if err != nil {
			log.Fatal(err)
		}
		if errs := dst.Errors(); len(errs) > 0 {
			log.Fatalf("%s: corruption: %v", name, errs[0])
		}
		fmt.Printf("%-18s %8v  %7.0f Mbps\n", name, res.Duration.Round(10*time.Millisecond), res.AvgMbps)
	}

	fmt.Println("\noptimizer           duration     goodput")
	run("AutoMDT", sys.Controller())
	run("Globus-like (cc=4)", automdt.Static(4))
}
