// Bottleneck scenario (the live-engine analogue of Fig. 5): a sysadmin
// throttles per-stream rates so the read stage is the bottleneck, and
// three optimizers race on the same shaped loopback path. The example
// prints each optimizer's concurrency trajectory so you can watch the
// modular architecture give the bottleneck stage more threads than the
// others — the core claim of the paper's §III.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"automdt"
)

func main() {
	// Read-bottleneck shaping (scaled from the paper's §V-B-1 scenario):
	// per-thread caps 80/160/200 Mbps on a 1 Gbps link. Optimal
	// concurrency is ~13 read / ~7 network / ~5 write.
	cfg := automdt.TransferConfig{
		ChunkBytes:     128 << 10,
		MaxThreads:     20,
		InitialThreads: 1,
		ProbeInterval:  100 * time.Millisecond,
		Shaping: automdt.Shaping{
			ReadPerThreadMbps:  80,
			NetPerStreamMbps:   160,
			WritePerThreadMbps: 200,
			LinkMbps:           1000,
		},
	}
	manifest := automdt.LargeFiles(16, 4<<20) // 64 MB

	for _, tc := range []struct {
		name string
		ctrl automdt.Controller
	}{
		{"Marlin (modular, independent)", automdt.Marlin()},
		{"Static cc=4 (monolithic)", automdt.Static(4)},
	} {
		src := automdt.NewSyntheticStore()
		dst := automdt.NewSyntheticStore()
		dst.Verify = true
		res, err := automdt.LoopbackTransfer(context.Background(), cfg, manifest, src, dst, tc.ctrl)
		if err != nil {
			log.Fatal(err)
		}
		if errs := dst.Errors(); len(errs) > 0 {
			log.Fatalf("corruption: %v", errs[0])
		}
		fmt.Printf("\n%s: %v (%.0f Mbps)\n", tc.name, res.Duration.Round(10*time.Millisecond), res.AvgMbps)
		fmt.Println("  t(s)   n_read n_net n_write   read/net/write Mbps")
		cr := res.Recorder.Series("cc_read").Points()
		cn := res.Recorder.Series("cc_net").Points()
		cw := res.Recorder.Series("cc_write").Points()
		tr := res.Recorder.Series("thr_read").Points()
		tn := res.Recorder.Series("thr_net").Points()
		tw := res.Recorder.Series("thr_write").Points()
		for i := 0; i < len(cr); i += 2 {
			fmt.Printf("  %5.1f   %4.0f %5.0f %6.0f      %4.0f/%4.0f/%4.0f\n",
				cr[i].T, cr[i].V, cn[i].V, cw[i].V, tr[i].V, tn[i].V, tw[i].V)
		}
	}
}
