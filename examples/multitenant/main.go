// Multitenant: drive twelve simultaneous transfer jobs through the
// scheduler daemon — all of them landing on ONE shared multi-session
// receiver endpoint. The daemon's HTTP API (the same one
// cmd/automdt-daemon serves) accepts a burst of jobs at three priority
// levels; the global budget arbiter splits a 24/24/24 worker budget
// fair-share across whatever is running, while the endpoint's single
// listener pair demultiplexes every tenant's data connections into
// isolated sessions (own staging buffer, write pool, and ledger each).
//
// The example starts the daemon in-process on an ephemeral port, submits
// every job over real HTTP, polls until the fleet drains, and prints the
// final per-job table plus the endpoint's automdt_endpoint_* gauges from
// the daemon's /metrics text.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"automdt/internal/env"
	"automdt/internal/marlin"
	"automdt/internal/sched"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

const jobs = 12

func main() {
	// One shared destination endpoint for the whole tenant fleet: every
	// job runs as a sender session against this receiver, verified
	// against the deterministic synthetic content.
	endpoint := &sched.EndpointRunner{
		Receiver: transfer.Config{MaxSessions: jobs},
		Verify:   true,
	}
	defer endpoint.Close()

	s, err := sched.New(sched.Config{
		// Host-wide worker budget per stage dimension ⟨read, conns,
		// streams, write⟩. With 12 greedy tenants active, fair-share hands
		// each a slice and the summed concurrency never exceeds the budget
		// in any dimension.
		Budget:        [env.StageCount]int{24, 12, 24, 24},
		MaxActive:     jobs,
		NewController: func() env.Controller { return marlin.New() },
		Runner:        endpoint,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	dataAddr, ctrlAddr, err := endpoint.Addrs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared endpoint: data %s, control %s\n", dataAddr, ctrlAddr)

	// Serve the daemon API on an ephemeral loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: sched.NewHandler(s)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon listening on %s\n", base)

	// Submit a burst of 12 tenants: interactive (priority 3), batch
	// (priority 2), and background (priority 1), mixing dataset shapes.
	start := time.Now()
	for i := 0; i < jobs; i++ {
		req := sched.SubmitRequest{
			Name:            fmt.Sprintf("tenant-%02d", i),
			Priority:        1 + i%3,
			MaxRetries:      1,
			ProbeIntervalMs: 25,
			MaxThreads:      24,
		}
		if i%2 == 0 {
			req.Dataset = workload.Spec{Kind: "large", Count: 4, SizeBytes: 1 << 20}
		} else {
			req.Dataset = workload.Spec{
				Kind: "mixed", TotalBytes: 4 << 20,
				MinBytes: 64 << 10, MaxBytes: 1 << 20, Seed: int64(i),
			}
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var st sched.JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		fmt.Printf("submitted job %2d %s priority=%d %6.1f MiB\n",
			st.ID, st.Name, st.Priority, float64(st.TotalBytes)/(1<<20))
	}

	// Poll the list endpoint until every job is terminal.
	var list []sched.JobStatus
	for {
		resp, err := http.Get(base + "/jobs")
		if err != nil {
			log.Fatal(err)
		}
		list = list[:0]
		json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		pending := 0
		for _, st := range list {
			if st.State == "queued" || st.State == "running" {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("\nall %d jobs drained through one endpoint in %v\n\n",
		jobs, time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-12s %-10s %-9s %-8s %-10s %s\n",
		"job", "state", "priority", "attempts", "seconds", "avg Mbps")
	failed := 0
	for _, st := range list {
		fmt.Printf("%-12s %-10s %-9d %-8d %-10.2f %.0f\n",
			st.Name, st.State, st.Priority, st.Attempts, st.Seconds, st.AvgMbps)
		if st.State != "done" {
			failed++
		}
	}
	if failed > 0 {
		log.Fatalf("%d of %d tenants did not complete", failed, jobs)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()

	// The endpoint gauges prove the multi-session story: every tenant was
	// admitted by, and completed against, the same receiver.
	fmt.Println("\nshared-endpoint gauges:")
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "automdt_endpoint_") {
			fmt.Println(line)
		}
	}
}
