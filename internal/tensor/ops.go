package tensor

import (
	"fmt"
	"math"
)

// MatMul computes a @ b for rank-2 tensors of shapes (m,k) and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%d,%d)@(%d,%d)", m, k, k2, n))
	}
	data := make([]float64, m*n)
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		or := data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			br := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				or[j] += av * br[j]
			}
		}
	}
	var out *Tensor
	out = child(data, []int{m, n}, func() {
		g := out.Grad
		if needsTape(a) {
			ga := a.ensureGrad()
			// dA = dOut @ B^T
			for i := 0; i < m; i++ {
				gr := g[i*n : (i+1)*n]
				gar := ga[i*k : (i+1)*k]
				for p := 0; p < k; p++ {
					br := b.Data[p*n : (p+1)*n]
					s := 0.0
					for j := 0; j < n; j++ {
						s += gr[j] * br[j]
					}
					gar[p] += s
				}
			}
		}
		if needsTape(b) {
			gb := b.ensureGrad()
			// dB = A^T @ dOut
			for p := 0; p < k; p++ {
				gbr := gb[p*n : (p+1)*n]
				for i := 0; i < m; i++ {
					av := a.Data[i*k+p]
					if av == 0 {
						continue
					}
					gr := g[i*n : (i+1)*n]
					for j := 0; j < n; j++ {
						gbr[j] += av * gr[j]
					}
				}
			}
		}
	}, a, b)
	return out
}

// broadcastIndex maps a flat output index to an index into a tensor with
// the given shape, supporting three cases: identical shape, a row vector
// (D) broadcast across (B,D), and a scalar broadcast everywhere.
func broadcastStride(outCols int, in *Tensor) func(i int) int {
	switch {
	case len(in.Data) == 1:
		return func(int) int { return 0 }
	case in.Rank() <= 1 || in.shape[0] == 1:
		d := in.Cols()
		if d != outCols {
			panic(fmt.Sprintf("tensor: cannot broadcast %v across %d columns", in.shape, outCols))
		}
		return func(i int) int { return i % d }
	default:
		return func(i int) int { return i }
	}
}

// binary applies an elementwise binary op with limited broadcasting
// (same shape, (B,D)·(D), or (·)·scalar). fwd computes the value; bwdA and
// bwdB return the local gradients dOut/dA and dOut/dB at each element.
func binary(a, b *Tensor, fwd func(x, y float64) float64, bwdA, bwdB func(x, y float64) float64) *Tensor {
	big, small := a, b
	if len(b.Data) > len(a.Data) {
		big, small = b, a
	}
	if !sameShape(a, b) && len(small.Data) != 1 && small.Cols() != big.Cols() {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.shape, b.shape))
	}
	ia := broadcastStride(big.Cols(), a)
	ib := broadcastStride(big.Cols(), b)
	data := make([]float64, len(big.Data))
	for i := range data {
		data[i] = fwd(a.Data[ia(i)], b.Data[ib(i)])
	}
	var out *Tensor
	out = child(data, big.shape, func() {
		g := out.Grad
		if needsTape(a) {
			ga := a.ensureGrad()
			for i := range g {
				ga[ia(i)] += g[i] * bwdA(a.Data[ia(i)], b.Data[ib(i)])
			}
		}
		if needsTape(b) {
			gb := b.ensureGrad()
			for i := range g {
				gb[ib(i)] += g[i] * bwdB(a.Data[ia(i)], b.Data[ib(i)])
			}
		}
	}, a, b)
	return out
}

// Add returns a + b with broadcasting.
func Add(a, b *Tensor) *Tensor {
	return binary(a, b,
		func(x, y float64) float64 { return x + y },
		func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return 1 })
}

// Sub returns a - b with broadcasting.
func Sub(a, b *Tensor) *Tensor {
	return binary(a, b,
		func(x, y float64) float64 { return x - y },
		func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return -1 })
}

// Mul returns the elementwise product a * b with broadcasting.
func Mul(a, b *Tensor) *Tensor {
	return binary(a, b,
		func(x, y float64) float64 { return x * y },
		func(x, y float64) float64 { return y },
		func(x, y float64) float64 { return x })
}

// Div returns the elementwise quotient a / b with broadcasting.
func Div(a, b *Tensor) *Tensor {
	return binary(a, b,
		func(x, y float64) float64 { return x / y },
		func(x, y float64) float64 { return 1 / y },
		func(x, y float64) float64 { return -x / (y * y) })
}

// Min returns the elementwise minimum of a and b. Gradient flows to the
// smaller operand (to a on ties).
func Min(a, b *Tensor) *Tensor {
	return binary(a, b,
		math.Min,
		func(x, y float64) float64 {
			if x <= y {
				return 1
			}
			return 0
		},
		func(x, y float64) float64 {
			if x <= y {
				return 0
			}
			return 1
		})
}

// Max returns the elementwise maximum of a and b. Gradient flows to the
// larger operand (to a on ties).
func Max(a, b *Tensor) *Tensor {
	return binary(a, b,
		math.Max,
		func(x, y float64) float64 {
			if x >= y {
				return 1
			}
			return 0
		},
		func(x, y float64) float64 {
			if x >= y {
				return 0
			}
			return 1
		})
}

// unary applies an elementwise op; bwd returns dOut/dIn given (in, out).
func unary(a *Tensor, fwd func(x float64) float64, bwd func(x, y float64) float64) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		data[i] = fwd(v)
	}
	var out *Tensor
	out = child(data, a.shape, func() {
		ga := a.ensureGrad()
		for i, g := range out.Grad {
			ga[i] += g * bwd(a.Data[i], out.Data[i])
		}
	}, a)
	return out
}

// Tanh applies the hyperbolic tangent elementwise.
func Tanh(a *Tensor) *Tensor {
	return unary(a, math.Tanh, func(x, y float64) float64 { return 1 - y*y })
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor {
	return unary(a,
		func(x float64) float64 { return math.Max(0, x) },
		func(x, y float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// Exp applies e^x elementwise.
func Exp(a *Tensor) *Tensor {
	return unary(a, math.Exp, func(x, y float64) float64 { return y })
}

// Log applies the natural logarithm elementwise.
func Log(a *Tensor) *Tensor {
	return unary(a, math.Log, func(x, y float64) float64 { return 1 / x })
}

// Square returns x² elementwise.
func Square(a *Tensor) *Tensor {
	return unary(a,
		func(x float64) float64 { return x * x },
		func(x, y float64) float64 { return 2 * x })
}

// Neg returns -x elementwise.
func Neg(a *Tensor) *Tensor {
	return unary(a,
		func(x float64) float64 { return -x },
		func(x, y float64) float64 { return -1 })
}

// Scale returns s*x elementwise for a constant s.
func Scale(a *Tensor, s float64) *Tensor {
	return unary(a,
		func(x float64) float64 { return s * x },
		func(x, y float64) float64 { return s })
}

// AddScalar returns x + s elementwise for a constant s.
func AddScalar(a *Tensor, s float64) *Tensor {
	return unary(a,
		func(x float64) float64 { return x + s },
		func(x, y float64) float64 { return 1 })
}

// Clamp limits every element to [lo, hi]. The gradient is passed through
// inside the range and zeroed outside (straight-through at the bounds).
func Clamp(a *Tensor, lo, hi float64) *Tensor {
	return unary(a,
		func(x float64) float64 { return math.Max(lo, math.Min(hi, x)) },
		func(x, y float64) float64 {
			if x < lo || x > hi {
				return 0
			}
			return 1
		})
}

// Sum reduces all elements to a rank-0 tensor.
func Sum(a *Tensor) *Tensor {
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	var out *Tensor
	out = child([]float64{s}, nil, func() {
		g := out.Grad[0]
		ga := a.ensureGrad()
		for i := range ga {
			ga[i] += g
		}
	}, a)
	return out
}

// Mean reduces all elements to their average as a rank-0 tensor.
func Mean(a *Tensor) *Tensor {
	n := float64(len(a.Data))
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	var out *Tensor
	out = child([]float64{s / n}, nil, func() {
		g := out.Grad[0] / n
		ga := a.ensureGrad()
		for i := range ga {
			ga[i] += g
		}
	}, a)
	return out
}

// SumRows reduces a rank-2 tensor (B,D) to a rank-2 tensor (B,1) by
// summing each row.
func SumRows(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: SumRows requires rank 2")
	}
	b, d := a.shape[0], a.shape[1]
	data := make([]float64, b)
	for i := 0; i < b; i++ {
		s := 0.0
		for j := 0; j < d; j++ {
			s += a.Data[i*d+j]
		}
		data[i] = s
	}
	var out *Tensor
	out = child(data, []int{b, 1}, func() {
		ga := a.ensureGrad()
		for i := 0; i < b; i++ {
			g := out.Grad[i]
			for j := 0; j < d; j++ {
				ga[i*d+j] += g
			}
		}
	}, a)
	return out
}

// LayerNorm normalizes each row of x to zero mean and unit variance over
// the last dimension, then applies the learned elementwise gain and bias:
// y = gain*(x-mean)/sqrt(var+eps) + bias. gain and bias must be rank-1
// tensors of length equal to x's trailing dimension.
func LayerNorm(x, gain, bias *Tensor, eps float64) *Tensor {
	if x.Rank() != 2 {
		panic("tensor: LayerNorm requires rank-2 input")
	}
	b, d := x.shape[0], x.shape[1]
	if gain.Len() != d || bias.Len() != d {
		panic("tensor: LayerNorm gain/bias length must equal input columns")
	}
	data := make([]float64, b*d)
	xhat := make([]float64, b*d)
	invStd := make([]float64, b)
	for i := 0; i < b; i++ {
		row := x.Data[i*d : (i+1)*d]
		m := 0.0
		for _, v := range row {
			m += v
		}
		m /= float64(d)
		v := 0.0
		for _, u := range row {
			dv := u - m
			v += dv * dv
		}
		v /= float64(d)
		is := 1 / math.Sqrt(v+eps)
		invStd[i] = is
		for j, u := range row {
			h := (u - m) * is
			xhat[i*d+j] = h
			data[i*d+j] = gain.Data[j]*h + bias.Data[j]
		}
	}
	var out *Tensor
	out = child(data, []int{b, d}, func() {
		g := out.Grad
		if needsTape(gain) {
			gg := gain.ensureGrad()
			for i := 0; i < b; i++ {
				for j := 0; j < d; j++ {
					gg[j] += g[i*d+j] * xhat[i*d+j]
				}
			}
		}
		if needsTape(bias) {
			gb := bias.ensureGrad()
			for i := 0; i < b; i++ {
				for j := 0; j < d; j++ {
					gb[j] += g[i*d+j]
				}
			}
		}
		if needsTape(x) {
			gx := x.ensureGrad()
			for i := 0; i < b; i++ {
				// dxhat_j = g_j * gain_j
				var sumDxhat, sumDxhatXhat float64
				for j := 0; j < d; j++ {
					dxh := g[i*d+j] * gain.Data[j]
					sumDxhat += dxh
					sumDxhatXhat += dxh * xhat[i*d+j]
				}
				c := invStd[i] / float64(d)
				for j := 0; j < d; j++ {
					dxh := g[i*d+j] * gain.Data[j]
					gx[i*d+j] += c * (float64(d)*dxh - sumDxhat - xhat[i*d+j]*sumDxhatXhat)
				}
			}
		}
	}, x, gain, bias)
	return out
}

// LogSoftmax computes log(softmax(x)) over each row of a rank-2 tensor.
func LogSoftmax(x *Tensor) *Tensor {
	if x.Rank() != 2 {
		panic("tensor: LogSoftmax requires rank 2")
	}
	b, d := x.shape[0], x.shape[1]
	data := make([]float64, b*d)
	for i := 0; i < b; i++ {
		row := x.Data[i*d : (i+1)*d]
		m := math.Inf(-1)
		for _, v := range row {
			m = math.Max(m, v)
		}
		lse := 0.0
		for _, v := range row {
			lse += math.Exp(v - m)
		}
		lse = m + math.Log(lse)
		for j, v := range row {
			data[i*d+j] = v - lse
		}
	}
	var out *Tensor
	out = child(data, []int{b, d}, func() {
		gx := x.ensureGrad()
		for i := 0; i < b; i++ {
			gsum := 0.0
			for j := 0; j < d; j++ {
				gsum += out.Grad[i*d+j]
			}
			for j := 0; j < d; j++ {
				p := math.Exp(out.Data[i*d+j])
				gx[i*d+j] += out.Grad[i*d+j] - p*gsum
			}
		}
	}, x)
	return out
}

// GatherCols selects one column per row: out[i] = x[i, idx[i]], producing
// a rank-2 (B,1) tensor. Used for categorical log-probabilities.
func GatherCols(x *Tensor, idx []int) *Tensor {
	if x.Rank() != 2 {
		panic("tensor: GatherCols requires rank 2")
	}
	b, d := x.shape[0], x.shape[1]
	if len(idx) != b {
		panic("tensor: GatherCols index length must equal rows")
	}
	data := make([]float64, b)
	for i, j := range idx {
		if j < 0 || j >= d {
			panic(fmt.Sprintf("tensor: GatherCols index %d out of range [0,%d)", j, d))
		}
		data[i] = x.Data[i*d+j]
	}
	var out *Tensor
	out = child(data, []int{b, 1}, func() {
		gx := x.ensureGrad()
		for i, j := range idx {
			gx[i*d+j] += out.Grad[i]
		}
	}, x)
	return out
}

// Concat stacks rank-2 tensors with equal row counts side by side
// (along columns).
func Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of nothing")
	}
	b := ts[0].Rows()
	total := 0
	for _, t := range ts {
		if t.Rank() != 2 || t.Rows() != b {
			panic("tensor: Concat requires rank-2 tensors with equal rows")
		}
		total += t.Cols()
	}
	data := make([]float64, b*total)
	off := 0
	for _, t := range ts {
		d := t.Cols()
		for i := 0; i < b; i++ {
			copy(data[i*total+off:i*total+off+d], t.Data[i*d:(i+1)*d])
		}
		off += d
	}
	var out *Tensor
	out = child(data, []int{b, total}, func() {
		off := 0
		for _, t := range ts {
			d := t.Cols()
			if needsTape(t) {
				gt := t.ensureGrad()
				for i := 0; i < b; i++ {
					for j := 0; j < d; j++ {
						gt[i*d+j] += out.Grad[i*total+off+j]
					}
				}
			}
			off += d
		}
	}, ts...)
	return out
}
