package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data/shape")
		}
	}()
	New([]float64{1, 2, 3}, 2, 2)
}

func TestBasicAccessors(t *testing.T) {
	m := New([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if m.Rank() != 2 || m.Rows() != 2 || m.Cols() != 3 || m.Len() != 6 {
		t.Fatalf("unexpected dims: rank=%d rows=%d cols=%d len=%d", m.Rank(), m.Rows(), m.Cols(), m.Len())
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2)=%v want 6", m.At(1, 2))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatalf("Set failed: %v", m.At(0, 1))
	}
	s := Scalar(3.5)
	if s.Rank() != 0 || s.Item() != 3.5 {
		t.Fatalf("scalar broken: rank=%d item=%v", s.Rank(), s.Item())
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCloneIndependence(t *testing.T) {
	a := New([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares data")
	}
}

func TestMatMulValues(t *testing.T) {
	a := New([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := New([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d]=%v want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(Zeros(2, 3), Zeros(2, 3))
}

func TestBroadcastAddRowVector(t *testing.T) {
	x := New([]float64{1, 2, 3, 4}, 2, 2)
	b := New([]float64{10, 20}, 2)
	y := Add(x, b)
	want := []float64{11, 22, 13, 24}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("broadcast add[%d]=%v want %v", i, y.Data[i], w)
		}
	}
}

func TestBroadcastScalar(t *testing.T) {
	x := New([]float64{1, 2, 3}, 3)
	y := Mul(x, Scalar(2))
	for i, w := range []float64{2, 4, 6} {
		if y.Data[i] != w {
			t.Fatalf("scalar mul[%d]=%v want %v", i, y.Data[i], w)
		}
	}
	// scalar on the left
	z := Sub(Scalar(10), x)
	for i, w := range []float64{9, 8, 7} {
		if z.Data[i] != w {
			t.Fatalf("scalar sub[%d]=%v want %v", i, z.Data[i], w)
		}
	}
}

func TestReductions(t *testing.T) {
	x := New([]float64{1, 2, 3, 4}, 2, 2)
	if got := Sum(x).Item(); got != 10 {
		t.Fatalf("Sum=%v", got)
	}
	if got := Mean(x).Item(); got != 2.5 {
		t.Fatalf("Mean=%v", got)
	}
	r := SumRows(x)
	if r.Rows() != 2 || r.Data[0] != 3 || r.Data[1] != 7 {
		t.Fatalf("SumRows=%v", r.Data)
	}
}

func TestClampValues(t *testing.T) {
	x := New([]float64{-2, -0.5, 0.5, 2}, 4)
	y := Clamp(x, -1, 1)
	want := []float64{-1, -0.5, 0.5, 1}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("Clamp[%d]=%v want %v", i, y.Data[i], w)
		}
	}
}

func TestMinMaxValues(t *testing.T) {
	a := New([]float64{1, 5}, 2)
	b := New([]float64{3, 2}, 2)
	mn, mx := Min(a, b), Max(a, b)
	if mn.Data[0] != 1 || mn.Data[1] != 2 || mx.Data[0] != 3 || mx.Data[1] != 5 {
		t.Fatalf("min=%v max=%v", mn.Data, mx.Data)
	}
}

func TestLogSoftmaxRowsSumToOne(t *testing.T) {
	x := New([]float64{1, 2, 3, -1, 0, 1000}, 2, 3)
	y := LogSoftmax(x)
	for i := 0; i < 2; i++ {
		s := 0.0
		for j := 0; j < 3; j++ {
			s += math.Exp(y.At(i, j))
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d softmax sums to %v", i, s)
		}
	}
}

func TestGatherCols(t *testing.T) {
	x := New([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	g := GatherCols(x, []int{2, 0})
	if g.Data[0] != 3 || g.Data[1] != 4 {
		t.Fatalf("GatherCols=%v", g.Data)
	}
}

func TestConcat(t *testing.T) {
	a := New([]float64{1, 2, 3, 4}, 2, 2)
	b := New([]float64{5, 6}, 2, 1)
	c := Concat(a, b)
	want := []float64{1, 2, 5, 3, 4, 6}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("Concat[%d]=%v want %v", i, c.Data[i], w)
		}
	}
}

func TestDetachStopsGradient(t *testing.T) {
	x := New([]float64{2}, 1).Param()
	y := Mul(x.Detach(), x) // only the second factor should receive grad
	Sum(y).Backward()
	if x.Grad[0] != 2 {
		t.Fatalf("detach leaked gradient: got %v want 2", x.Grad[0])
	}
}

// numGrad computes the finite-difference gradient of f with respect to
// x's elements.
func numGrad(f func() float64, x *Tensor) []float64 {
	const h = 1e-6
	g := make([]float64, len(x.Data))
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		fp := f()
		x.Data[i] = orig - h
		fm := f()
		x.Data[i] = orig
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

func checkGrad(t *testing.T, name string, f func() *Tensor, params ...*Tensor) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	out := f()
	out.Backward()
	for pi, p := range params {
		want := numGrad(func() float64 { return f().Item() }, p)
		for i := range want {
			got := 0.0
			if p.Grad != nil {
				got = p.Grad[i]
			}
			if math.Abs(got-want[i]) > 1e-4*(1+math.Abs(want[i])) {
				t.Fatalf("%s: param %d grad[%d]=%g want %g", name, pi, i, got, want[i])
			}
		}
	}
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 3, 4).Param()
	b := randTensor(rng, 4, 2).Param()
	checkGrad(t, "matmul", func() *Tensor { return Sum(MatMul(a, b)) }, a, b)
}

func TestGradBroadcastOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randTensor(rng, 3, 4).Param()
	b := randTensor(rng, 4).Param()
	checkGrad(t, "add", func() *Tensor { return Sum(Add(x, b)) }, x, b)
	checkGrad(t, "sub", func() *Tensor { return Sum(Sub(x, b)) }, x, b)
	checkGrad(t, "mul", func() *Tensor { return Sum(Mul(x, b)) }, x, b)
	// keep divisor away from zero
	d := Full(0, 4).Param()
	for i := range d.Data {
		d.Data[i] = 1.5 + rng.Float64()
	}
	checkGrad(t, "div", func() *Tensor { return Sum(Div(x, d)) }, x, d)
}

func TestGradUnaryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randTensor(rng, 2, 5).Param()
	checkGrad(t, "tanh", func() *Tensor { return Sum(Tanh(x)) }, x)
	checkGrad(t, "square", func() *Tensor { return Sum(Square(x)) }, x)
	checkGrad(t, "neg", func() *Tensor { return Sum(Neg(x)) }, x)
	checkGrad(t, "scale", func() *Tensor { return Sum(Scale(x, 2.5)) }, x)
	checkGrad(t, "addscalar", func() *Tensor { return Sum(AddScalar(x, -1.25)) }, x)
	checkGrad(t, "exp", func() *Tensor { return Sum(Exp(x)) }, x)
	checkGrad(t, "mean", func() *Tensor { return Mean(Square(x)) }, x)

	// positive input for log
	p := Zeros(2, 5).Param()
	for i := range p.Data {
		p.Data[i] = 0.5 + rng.Float64()
	}
	checkGrad(t, "log", func() *Tensor { return Sum(Log(p)) }, p)

	// relu and clamp away from kinks
	k := Zeros(2, 5).Param()
	for i := range k.Data {
		k.Data[i] = rng.NormFloat64()
		if math.Abs(k.Data[i]) < 0.05 {
			k.Data[i] = 0.3
		}
	}
	checkGrad(t, "relu", func() *Tensor { return Sum(ReLU(k)) }, k)
	checkGrad(t, "clamp", func() *Tensor { return Sum(Clamp(k, -0.8, 0.8)) }, k)
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 3, 6).Param()
	g := randTensor(rng, 6).Param()
	b := randTensor(rng, 6).Param()
	checkGrad(t, "layernorm", func() *Tensor {
		return Sum(Square(LayerNorm(x, g, b, 1e-5)))
	}, x, g, b)
}

func TestGradLogSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randTensor(rng, 3, 4).Param()
	checkGrad(t, "logsoftmax", func() *Tensor {
		return Sum(Square(LogSoftmax(x)))
	}, x)
}

func TestGradGatherConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randTensor(rng, 3, 4).Param()
	y := randTensor(rng, 3, 2).Param()
	checkGrad(t, "gather", func() *Tensor {
		return Sum(Square(GatherCols(x, []int{1, 3, 0})))
	}, x)
	checkGrad(t, "concat", func() *Tensor {
		return Sum(Square(Concat(x, y)))
	}, x, y)
}

func TestGradMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randTensor(rng, 4).Param()
	b := randTensor(rng, 4).Param()
	// Separate values so finite differences don't cross the kink.
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) < 0.05 {
			b.Data[i] += 0.5
		}
	}
	checkGrad(t, "min", func() *Tensor { return Sum(Min(a, b)) }, a, b)
	checkGrad(t, "max", func() *Tensor { return Sum(Max(a, b)) }, a, b)
}

func TestGradSharedSubexpression(t *testing.T) {
	// y = x*x + x used twice; gradient should accumulate: dy/dx = 2x + 1.
	x := New([]float64{3}, 1).Param()
	y := Add(Mul(x, x), x)
	Sum(y).Backward()
	if math.Abs(x.Grad[0]-7) > 1e-12 {
		t.Fatalf("shared-subexpression grad=%v want 7", x.Grad[0])
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zeros(2, 2).Backward()
}

// Property: matmul distributes over addition, (A+B)@C == A@C + B@C.
func TestQuickMatMulDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b, c := randTensor(r, m, k), randTensor(r, m, k), randTensor(r, k, n)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		for i := range lhs.Data {
			if math.Abs(lhs.Data[i]-rhs.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum(a)+Sum(b) == Sum(Add(a,b)) for same-shape tensors.
func TestQuickSumLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		a, b := randTensor(r, n), randTensor(r, n)
		return math.Abs(Sum(Add(a, b)).Item()-(Sum(a).Item()+Sum(b).Item())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: LayerNorm output rows have ~zero mean and ~unit variance with
// identity gain/zero bias.
func TestQuickLayerNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bN, d := 1+r.Intn(4), 2+r.Intn(8)
		x := randTensor(r, bN, d)
		// Scale rows so variance is non-trivial.
		for i := range x.Data {
			x.Data[i] = x.Data[i]*3 + 1
		}
		y := LayerNorm(x, Full(1, d), Zeros(d), 1e-8)
		for i := 0; i < bN; i++ {
			m, v := 0.0, 0.0
			for j := 0; j < d; j++ {
				m += y.At(i, j)
			}
			m /= float64(d)
			for j := 0; j < d; j++ {
				dv := y.At(i, j) - m
				v += dv * dv
			}
			v /= float64(d)
			if math.Abs(m) > 1e-6 || math.Abs(v-1) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
