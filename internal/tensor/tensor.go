// Package tensor implements a small dense float64 tensor library with
// reverse-mode automatic differentiation.
//
// It provides exactly the operations needed by AutoMDT's PPO agent
// (internal/rl): matrix multiplication, broadcast arithmetic, tanh, ReLU,
// layer normalization, log-softmax, Gaussian log-probability building
// blocks, clipping, and reductions. Tensors are row-major and at most
// rank 2; scalars are rank-0 tensors with a single element.
//
// Autograd is tape-based: every differentiable operation records its
// parents and a backward closure on the output tensor. Calling
// (*Tensor).Backward on a scalar output performs a topological sort of the
// recorded graph and accumulates gradients into the Grad slices of all
// tensors created with requiresGrad set (parameters) or reached through
// differentiable ops.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float64 tensor of rank 0, 1, or 2.
type Tensor struct {
	// Data holds the elements in row-major order.
	Data []float64
	// Grad accumulates the gradient of the loss with respect to this
	// tensor. It is allocated lazily on the backward pass and is nil for
	// tensors that do not require gradients.
	Grad []float64

	shape        []int
	requiresGrad bool
	parents      []*Tensor
	backward     func()
}

// New creates a tensor with the given shape from data. The data slice is
// used directly (not copied); len(data) must equal the product of the
// shape dimensions.
func New(data []float64, shape ...int) *Tensor {
	n := numElems(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// Zeros creates a zero-filled tensor with the given shape.
func Zeros(shape ...int) *Tensor {
	return New(make([]float64, numElems(shape)), shape...)
}

// Full creates a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Scalar creates a rank-0 tensor holding v.
func Scalar(v float64) *Tensor { return New([]float64{v}) }

// FromRows creates a rank-2 tensor from a slice of equal-length rows.
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 {
		return Zeros(0, 0)
	}
	c := len(rows[0])
	data := make([]float64, 0, len(rows)*c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("tensor: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(r)))
		}
		data = append(data, r...)
	}
	return New(data, len(rows), c)
}

// Param marks the tensor as requiring gradient accumulation and returns it.
// Use for trainable parameters.
func (t *Tensor) Param() *Tensor {
	t.requiresGrad = true
	return t
}

// RequiresGrad reports whether gradients are accumulated for this tensor.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rows returns the number of rows of a rank-2 tensor, or 1 for lower ranks.
func (t *Tensor) Rows() int {
	if len(t.shape) == 2 {
		return t.shape[0]
	}
	return 1
}

// Cols returns the trailing dimension, or 1 for a scalar.
func (t *Tensor) Cols() int {
	if len(t.shape) == 0 {
		return 1
	}
	return t.shape[len(t.shape)-1]
}

// At returns the element at row i, column j of a rank-2 tensor.
func (t *Tensor) At(i, j int) float64 {
	if len(t.shape) != 2 {
		panic("tensor: At requires rank 2")
	}
	return t.Data[i*t.shape[1]+j]
}

// Set assigns the element at row i, column j of a rank-2 tensor.
func (t *Tensor) Set(i, j int, v float64) {
	if len(t.shape) != 2 {
		panic("tensor: Set requires rank 2")
	}
	t.Data[i*t.shape[1]+j] = v
}

// Item returns the single element of a one-element tensor.
func (t *Tensor) Item() float64 {
	if len(t.Data) != 1 {
		panic(fmt.Sprintf("tensor: Item on tensor with %d elements", len(t.Data)))
	}
	return t.Data[0]
}

// Clone returns a deep copy of the tensor's data and shape. The clone is
// detached from the autograd graph and does not require gradients.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.Data))
	copy(d, t.Data)
	return New(d, t.shape...)
}

// Detach returns a view of the tensor's data that is disconnected from the
// autograd graph. The underlying data slice is shared.
func (t *Tensor) Detach() *Tensor {
	return &Tensor{Data: t.Data, shape: t.shape}
}

// ZeroGrad clears the accumulated gradient, if any.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

func (t *Tensor) ensureGrad() []float64 {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
	return t.Grad
}

// needsTape reports whether an op over the given inputs must be recorded.
func needsTape(ins ...*Tensor) bool {
	for _, in := range ins {
		if in.requiresGrad || in.backward != nil || len(in.parents) > 0 {
			return true
		}
	}
	return false
}

// child builds an op output tensor, wiring parents and backward when any
// input participates in the autograd graph.
func child(data []float64, shape []int, back func(), ins ...*Tensor) *Tensor {
	out := New(data, shape...)
	if needsTape(ins...) {
		out.parents = append([]*Tensor(nil), ins...)
		out.backward = back
	}
	return out
}

// Backward computes gradients of t with respect to every tensor in its
// graph. t must hold a single element (a scalar loss).
func (t *Tensor) Backward() {
	if len(t.Data) != 1 {
		panic("tensor: Backward requires a single-element tensor")
	}
	// Topological order via iterative DFS.
	var order []*Tensor
	visited := make(map[*Tensor]bool)
	type frame struct {
		t    *Tensor
		next int
	}
	stack := []frame{{t: t}}
	visited[t] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.t.parents) {
			p := f.t.parents[f.next]
			f.next++
			if !visited[p] {
				visited[p] = true
				stack = append(stack, frame{t: p})
			}
			continue
		}
		order = append(order, f.t)
		stack = stack[:len(stack)-1]
	}
	// Seed and propagate in reverse topological order (outputs first).
	t.ensureGrad()[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backward != nil {
			n.backward()
		}
	}
}

// String renders the tensor for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v ", t.shape)
	if len(t.Data) <= 16 {
		fmt.Fprintf(&b, "%.4g", t.Data)
	} else {
		fmt.Fprintf(&b, "[%.4g %.4g ... %.4g]", t.Data[0], t.Data[1], t.Data[len(t.Data)-1])
	}
	return b.String()
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// tensor.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func numElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func sameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}
