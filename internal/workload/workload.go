// Package workload generates the transfer datasets used in the paper's
// evaluation: uniform large-file sets (1000×1 GB in the paper, scaled
// down here) and mixed datasets of log-uniformly distributed file sizes
// between 100 KB and 2 GB (§V).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// File describes one file to transfer.
type File struct {
	Name string
	Size int64
}

// Manifest is an ordered list of files.
type Manifest []File

// TotalBytes sums the file sizes.
func (m Manifest) TotalBytes() int64 {
	var n int64
	for _, f := range m {
		n += f.Size
	}
	return n
}

// LargeFiles builds the paper's "Dataset A" shape: count files of equal
// size (the paper uses 1000 × 1 GB; benchmarks scale this down).
func LargeFiles(count int, size int64) Manifest {
	m := make(Manifest, count)
	for i := range m {
		m[i] = File{Name: fmt.Sprintf("large-%04d.dat", i), Size: size}
	}
	return m
}

// Mixed builds the paper's "Dataset B" shape: files with log-uniform
// sizes in [minSize, maxSize] until totalBytes is reached (the paper uses
// 1 TB of 100 KB–2 GB files). The final file is truncated to land exactly
// on totalBytes. rng makes the draw reproducible.
func Mixed(totalBytes, minSize, maxSize int64, rng *rand.Rand) Manifest {
	if minSize <= 0 || maxSize < minSize || totalBytes <= 0 {
		panic(fmt.Sprintf("workload: invalid Mixed parameters total=%d min=%d max=%d",
			totalBytes, minSize, maxSize))
	}
	var m Manifest
	var acc int64
	logMin, logMax := math.Log(float64(minSize)), math.Log(float64(maxSize))
	for acc < totalBytes {
		sz := int64(math.Exp(logMin + rng.Float64()*(logMax-logMin)))
		if sz < 1 {
			sz = 1
		}
		if acc+sz > totalBytes {
			sz = totalBytes - acc
		}
		m = append(m, File{Name: fmt.Sprintf("mixed-%05d.dat", len(m)), Size: sz})
		acc += sz
	}
	return m
}

// Scale returns a copy of the manifest with every size multiplied by
// factor (rounded down, minimum 1 byte). Used to shrink paper-scale
// datasets to benchmark-scale ones while preserving the distribution
// shape.
func (m Manifest) Scale(factor float64) Manifest {
	out := make(Manifest, len(m))
	for i, f := range m {
		sz := int64(float64(f.Size) * factor)
		if sz < 1 {
			sz = 1
		}
		out[i] = File{Name: f.Name, Size: sz}
	}
	return out
}
