// Package workload generates the transfer datasets used in the paper's
// evaluation: uniform large-file sets (1000×1 GB in the paper, scaled
// down here) and mixed datasets of log-uniformly distributed file sizes
// between 100 KB and 2 GB (§V).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// File describes one file to transfer.
type File struct {
	Name string
	Size int64
}

// Manifest is an ordered list of files.
type Manifest []File

// TotalBytes sums the file sizes.
func (m Manifest) TotalBytes() int64 {
	var n int64
	for _, f := range m {
		n += f.Size
	}
	return n
}

// LargeFiles builds the paper's "Dataset A" shape: count files of equal
// size (the paper uses 1000 × 1 GB; benchmarks scale this down).
func LargeFiles(count int, size int64) Manifest {
	m := make(Manifest, count)
	for i := range m {
		m[i] = File{Name: fmt.Sprintf("large-%04d.dat", i), Size: size}
	}
	return m
}

// Mixed builds the paper's "Dataset B" shape: files with log-uniform
// sizes in [minSize, maxSize] until totalBytes is reached (the paper uses
// 1 TB of 100 KB–2 GB files). The final file is truncated to land exactly
// on totalBytes. rng makes the draw reproducible.
func Mixed(totalBytes, minSize, maxSize int64, rng *rand.Rand) Manifest {
	if minSize <= 0 || maxSize < minSize || totalBytes <= 0 {
		panic(fmt.Sprintf("workload: invalid Mixed parameters total=%d min=%d max=%d",
			totalBytes, minSize, maxSize))
	}
	var m Manifest
	var acc int64
	logMin, logMax := math.Log(float64(minSize)), math.Log(float64(maxSize))
	for acc < totalBytes {
		sz := int64(math.Exp(logMin + rng.Float64()*(logMax-logMin)))
		if sz < 1 {
			sz = 1
		}
		if acc+sz > totalBytes {
			sz = totalBytes - acc
		}
		m = append(m, File{Name: fmt.Sprintf("mixed-%05d.dat", len(m)), Size: sz})
		acc += sz
	}
	return m
}

// DeepTree builds a pathological deep-directory dataset: count files of
// size bytes each, spread along a directory chain depth levels deep
// (file i lands at depth 1 + i mod depth). Path length, not data volume,
// is the stressor — manifest encoding, per-file control-plane state, and
// any store that maps names to paths all see the worst case.
func DeepTree(count, depth int, size int64) Manifest {
	if depth < 1 {
		depth = 1
	}
	// prefixes[d] is the directory chain d levels deep ("" at the root).
	prefixes := make([]string, depth+1)
	for d := 1; d <= depth; d++ {
		prefixes[d] = fmt.Sprintf("%sd%02d/", prefixes[d-1], d-1)
	}
	m := make(Manifest, count)
	for i := range m {
		m[i] = File{Name: fmt.Sprintf("%stree-%05d.dat", prefixes[i%depth+1], i), Size: size}
	}
	return m
}

// Spec is a declarative, JSON-friendly dataset description — the wire
// counterpart of Manifest used by the scheduler daemon's submit API. Kind
// selects the generator: "large" (Count equal files of SizeBytes, the
// paper's Dataset A shape), "mixed" (log-uniform sizes in
// [MinBytes, MaxBytes] totalling TotalBytes, the Dataset B shape), or
// "tree" (Count files of SizeBytes spread over a directory chain Depth
// levels deep — the adversarial metadata-heavy shape the chaos matrix
// uses alongside its 10⁵-tiny-files and one-huge-file cells).
type Spec struct {
	Kind       string `json:"kind"`
	Count      int    `json:"count,omitempty"`
	SizeBytes  int64  `json:"size_bytes,omitempty"`
	TotalBytes int64  `json:"total_bytes,omitempty"`
	MinBytes   int64  `json:"min_bytes,omitempty"`
	MaxBytes   int64  `json:"max_bytes,omitempty"`
	Depth      int    `json:"depth,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
}

// MaxSpecFiles bounds the number of files a Spec may describe. Specs
// arrive over the daemon's submit API, so Build must not let one request
// allocate an unbounded manifest.
const MaxSpecFiles = 1 << 20

// Validate reports whether the spec describes a buildable dataset.
func (s Spec) Validate() error {
	switch s.Kind {
	case "large":
		if s.Count <= 0 || s.SizeBytes <= 0 {
			return fmt.Errorf("workload: large spec needs count>0 and size_bytes>0, got count=%d size=%d",
				s.Count, s.SizeBytes)
		}
		if s.Count > MaxSpecFiles {
			return fmt.Errorf("workload: large spec count %d exceeds the %d-file limit", s.Count, MaxSpecFiles)
		}
		if s.SizeBytes > math.MaxInt64/int64(s.Count) {
			return fmt.Errorf("workload: large spec count %d × size %d overflows", s.Count, s.SizeBytes)
		}
	case "mixed":
		if s.TotalBytes <= 0 || s.MinBytes <= 0 || s.MaxBytes < s.MinBytes {
			return fmt.Errorf("workload: mixed spec needs total_bytes>0 and 0<min_bytes<=max_bytes, got total=%d min=%d max=%d",
				s.TotalBytes, s.MinBytes, s.MaxBytes)
		}
		// Worst case every drawn file is MinBytes, so total/min bounds
		// the manifest length.
		if s.TotalBytes/s.MinBytes > MaxSpecFiles {
			return fmt.Errorf("workload: mixed spec could emit %d files (total/min), exceeding the %d-file limit",
				s.TotalBytes/s.MinBytes, MaxSpecFiles)
		}
	case "tree":
		if s.Count <= 0 || s.SizeBytes <= 0 {
			return fmt.Errorf("workload: tree spec needs count>0 and size_bytes>0, got count=%d size=%d",
				s.Count, s.SizeBytes)
		}
		if s.Count > MaxSpecFiles {
			return fmt.Errorf("workload: tree spec count %d exceeds the %d-file limit", s.Count, MaxSpecFiles)
		}
		// Each level adds a "dNN/" segment; bound depth so the longest
		// name stays well under common PATH_MAX-style limits.
		if s.Depth > 512 {
			return fmt.Errorf("workload: tree spec depth %d exceeds the 512-level limit", s.Depth)
		}
	default:
		return fmt.Errorf("workload: unknown dataset kind %q (want \"large\", \"mixed\", or \"tree\")", s.Kind)
	}
	return nil
}

// Build materializes the manifest the spec describes.
func (s Spec) Build() (Manifest, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case "large":
		return LargeFiles(s.Count, s.SizeBytes), nil
	case "tree":
		return DeepTree(s.Count, s.Depth, s.SizeBytes), nil
	default: // "mixed", already validated
		return Mixed(s.TotalBytes, s.MinBytes, s.MaxBytes, rand.New(rand.NewSource(s.Seed))), nil
	}
}

// Scale returns a copy of the manifest with every size multiplied by
// factor (rounded down, minimum 1 byte). Used to shrink paper-scale
// datasets to benchmark-scale ones while preserving the distribution
// shape.
func (m Manifest) Scale(factor float64) Manifest {
	out := make(Manifest, len(m))
	for i, f := range m {
		sz := int64(float64(f.Size) * factor)
		if sz < 1 {
			sz = 1
		}
		out[i] = File{Name: f.Name, Size: sz}
	}
	return out
}
