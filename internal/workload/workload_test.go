package workload

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLargeFiles(t *testing.T) {
	m := LargeFiles(10, 1<<20)
	if len(m) != 10 {
		t.Fatalf("len=%d", len(m))
	}
	if m.TotalBytes() != 10<<20 {
		t.Fatalf("total=%d", m.TotalBytes())
	}
	seen := map[string]bool{}
	for _, f := range m {
		if f.Size != 1<<20 {
			t.Fatalf("size=%d", f.Size)
		}
		if seen[f.Name] {
			t.Fatalf("duplicate name %q", f.Name)
		}
		seen[f.Name] = true
	}
}

func TestMixedExactTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Mixed(10<<20, 100<<10, 2<<20, rng)
	if m.TotalBytes() != 10<<20 {
		t.Fatalf("total=%d want %d", m.TotalBytes(), 10<<20)
	}
	for i, f := range m[:len(m)-1] { // last file may be truncated
		if f.Size < 100<<10 || f.Size > 2<<20 {
			t.Fatalf("file %d size %d outside [100KiB, 2MiB]", i, f.Size)
		}
	}
}

func TestMixedSizeSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Mixed(100<<20, 100<<10, 2<<20, rng)
	small, large := 0, 0
	for _, f := range m {
		if f.Size < 512<<10 {
			small++
		}
		if f.Size > 1<<20 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("log-uniform draw degenerate: small=%d large=%d of %d", small, large, len(m))
	}
}

func TestMixedPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mixed(100, 0, 10, rand.New(rand.NewSource(3)))
}

func TestScale(t *testing.T) {
	m := Manifest{{Name: "a", Size: 1000}, {Name: "b", Size: 10}}
	s := m.Scale(0.001)
	if s[0].Size != 1 || s[1].Size != 1 {
		t.Fatalf("scaled sizes %d %d", s[0].Size, s[1].Size)
	}
	if m[0].Size != 1000 {
		t.Fatal("Scale mutated the original")
	}
}

func TestSpecBuildLarge(t *testing.T) {
	m, err := Spec{Kind: "large", Count: 4, SizeBytes: 1 << 20}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 4 || m.TotalBytes() != 4<<20 {
		t.Fatalf("len=%d total=%d", len(m), m.TotalBytes())
	}
}

func TestSpecBuildMixedDeterministic(t *testing.T) {
	spec := Spec{Kind: "mixed", TotalBytes: 4 << 20, MinBytes: 64 << 10, MaxBytes: 1 << 20, Seed: 7}
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := spec.Build()
	if len(a) != len(b) || a.TotalBytes() != 4<<20 {
		t.Fatalf("not deterministic or wrong total: %d vs %d files, total=%d",
			len(a), len(b), a.TotalBytes())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("file %d differs across builds: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	bad := []Spec{
		{Kind: "huge"},
		{Kind: "large", Count: 0, SizeBytes: 1},
		{Kind: "large", Count: 1, SizeBytes: 0},
		{Kind: "mixed", TotalBytes: 0, MinBytes: 1, MaxBytes: 2},
		{Kind: "mixed", TotalBytes: 10, MinBytes: 5, MaxBytes: 2},
		// Resource-exhaustion guards: file-count limits and overflow.
		{Kind: "large", Count: MaxSpecFiles + 1, SizeBytes: 1},
		{Kind: "large", Count: 1 << 30, SizeBytes: 1 << 40},
		{Kind: "mixed", TotalBytes: 1 << 40, MinBytes: 1, MaxBytes: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) unexpectedly valid", i, s)
		}
		if _, err := s.Build(); err == nil {
			t.Errorf("spec %d (%+v) unexpectedly built", i, s)
		}
	}
}

// Property: Mixed always hits the exact requested total and never emits
// zero-size files.
func TestQuickMixedInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int64(1<<20 + rng.Intn(10<<20))
		m := Mixed(total, 64<<10, 1<<20, rng)
		if m.TotalBytes() != total {
			return false
		}
		for _, f := range m {
			if f.Size <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepTreeSpec(t *testing.T) {
	s := Spec{Kind: "tree", Count: 10, Depth: 4, SizeBytes: 128}
	m, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 10 || m.TotalBytes() != 1280 {
		t.Fatalf("tree manifest: %d files, %d bytes", len(m), m.TotalBytes())
	}
	names := map[string]bool{}
	maxDepth := 0
	for _, f := range m {
		if names[f.Name] {
			t.Fatalf("duplicate name %q", f.Name)
		}
		names[f.Name] = true
		d := strings.Count(f.Name, "/")
		if d > maxDepth {
			maxDepth = d
		}
		if d < 1 {
			t.Fatalf("file %q not inside the tree", f.Name)
		}
	}
	if maxDepth != 4 {
		t.Fatalf("max depth %d, want 4", maxDepth)
	}

	for _, bad := range []Spec{
		{Kind: "tree"},
		{Kind: "tree", Count: 1, SizeBytes: 1, Depth: 10_000},
		{Kind: "tree", Count: MaxSpecFiles + 1, SizeBytes: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v unexpectedly valid", bad)
		}
	}
	// Depth 0 defaults to a single level rather than failing.
	if m := DeepTree(3, 0, 1); len(m) != 3 || strings.Count(m[0].Name, "/") != 1 {
		t.Fatalf("DeepTree depth-0 default: %v", m)
	}
}
