package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLargeFiles(t *testing.T) {
	m := LargeFiles(10, 1<<20)
	if len(m) != 10 {
		t.Fatalf("len=%d", len(m))
	}
	if m.TotalBytes() != 10<<20 {
		t.Fatalf("total=%d", m.TotalBytes())
	}
	seen := map[string]bool{}
	for _, f := range m {
		if f.Size != 1<<20 {
			t.Fatalf("size=%d", f.Size)
		}
		if seen[f.Name] {
			t.Fatalf("duplicate name %q", f.Name)
		}
		seen[f.Name] = true
	}
}

func TestMixedExactTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Mixed(10<<20, 100<<10, 2<<20, rng)
	if m.TotalBytes() != 10<<20 {
		t.Fatalf("total=%d want %d", m.TotalBytes(), 10<<20)
	}
	for i, f := range m[:len(m)-1] { // last file may be truncated
		if f.Size < 100<<10 || f.Size > 2<<20 {
			t.Fatalf("file %d size %d outside [100KiB, 2MiB]", i, f.Size)
		}
	}
}

func TestMixedSizeSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Mixed(100<<20, 100<<10, 2<<20, rng)
	small, large := 0, 0
	for _, f := range m {
		if f.Size < 512<<10 {
			small++
		}
		if f.Size > 1<<20 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("log-uniform draw degenerate: small=%d large=%d of %d", small, large, len(m))
	}
}

func TestMixedPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mixed(100, 0, 10, rand.New(rand.NewSource(3)))
}

func TestScale(t *testing.T) {
	m := Manifest{{Name: "a", Size: 1000}, {Name: "b", Size: 10}}
	s := m.Scale(0.001)
	if s[0].Size != 1 || s[1].Size != 1 {
		t.Fatalf("scaled sizes %d %d", s[0].Size, s[1].Size)
	}
	if m[0].Size != 1000 {
		t.Fatal("Scale mutated the original")
	}
}

// Property: Mixed always hits the exact requested total and never emits
// zero-size files.
func TestQuickMixedInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int64(1<<20 + rng.Intn(10<<20))
		m := Mixed(total, 64<<10, 1<<20, rng)
		if m.TotalBytes() != total {
			return false
		}
		for _, f := range m {
			if f.Size <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
