package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"automdt/internal/core"
	"automdt/internal/env"
	"automdt/internal/marlin"
	"automdt/internal/metrics"
	"automdt/internal/probe"
	"automdt/internal/rl"
	"automdt/internal/sim"
	"automdt/internal/static"
)

// TraceResult pairs a named optimizer with its simulated-transfer traces.
type TraceResult struct {
	Name string
	Run  *core.SimTransferResult
	// TimeToTarget is the first simulated second at which the named
	// stage's concurrency reached the scenario target, or -1.
	TimeToTarget float64
}

// CompareResult is one head-to-head figure experiment (Fig. 3 or one
// Fig. 5 column).
type CompareResult struct {
	Testbed Testbed
	// TargetStage indexes the bottleneck stage whose concurrency
	// convergence the paper reports (0=read, 1=network, 2=write).
	TargetStage sim.Stage
	// Target is the optimal concurrency of the bottleneck stage.
	Target int
	Auto   TraceResult
	Marlin TraceResult
}

// runCompare trains AutoMDT on tb and races it against Marlin on a
// dataset of totalMb.
func runCompare(tb Testbed, mode Mode, seed int64, totalMb float64, target sim.Stage) (*CompareResult, error) {
	sys, err := TrainedSystem(tb, mode, seed)
	if err != nil {
		return nil, err
	}
	targetN := tb.TargetN(target)
	run := func(name string, ctrl env.Controller) TraceResult {
		st := &core.SimTransfer{
			Cfg:        tb.Cfg,
			Controller: ctrl,
			TotalMb:    totalMb,
			MaxTicks:   3600,
			MaxThreads: tb.MaxThreads,
		}
		r := st.Run()
		series := map[sim.Stage]string{
			sim.Read: "cc_read", sim.Network: "cc_net", sim.Write: "cc_write",
		}[target]
		return TraceResult{
			Name:         name,
			Run:          r,
			TimeToTarget: r.Rec.Series(series).TimeToReach(float64(targetN)),
		}
	}
	res := &CompareResult{
		Testbed:     tb,
		TargetStage: target,
		Target:      targetN,
		Auto:        run("AutoMDT", sys.DeterministicController()),
		Marlin:      run("Marlin", paperMarlin()),
	}
	return res, nil
}

// Fig3 reproduces the NCSA→TACC comparison of Fig. 3: 100×1 GB
// (= 800,000 Mb) on the WAN testbed, AutoMDT vs Marlin concurrency and
// throughput traces plus transfer completion times.
func Fig3(mode Mode) (*CompareResult, error) {
	return runCompare(Wan(), mode, 1, 800_000, sim.Network)
}

// Fig5Read, Fig5Network, and Fig5Write reproduce the three bottleneck
// columns of Fig. 5 (4 GB datasets keep simulated durations near the
// paper's 100–250 s horizons).
func Fig5Read(mode Mode) (*CompareResult, error) {
	return runCompare(ReadBottleneck(), mode, 2, 32_000, sim.Read)
}

// Fig5Network is the network-bottleneck column of Fig. 5.
func Fig5Network(mode Mode) (*CompareResult, error) {
	return runCompare(NetworkBottleneck(), mode, 3, 32_000, sim.Network)
}

// Fig5Write is the write-bottleneck column of Fig. 5.
func Fig5Write(mode Mode) (*CompareResult, error) {
	return runCompare(WriteBottleneck(), mode, 4, 32_000, sim.Write)
}

// Fig4Result holds the two training curves of Fig. 4.
type Fig4Result struct {
	Continuous *rl.TrainResult
	Discrete   *rl.TrainResult
	// Rmax is the per-episode theoretical maximum reward.
	Rmax float64
}

// Fig4 reproduces the action-space ablation: PPO with a continuous
// Gaussian action space converges; the discrete variant does not.
func Fig4(mode Mode) (*Fig4Result, error) {
	tb := ReadBottleneck()
	net := rl.NetConfig{Hidden: 32, PolicyBlocks: 1, ValueBlocks: 1, MaxActions: tb.MaxThreads}
	tc := rl.TrainConfig{
		Episodes:      1500,
		LR:            1e-3,
		UpdateEpochs:  4,
		StagnantLimit: 1 << 30,
		EntropyCoef:   0.1, // the paper's entropy bonus
	}
	if mode == Paper {
		net = rl.NetConfig{MaxActions: tb.MaxThreads}
		tc = rl.TrainConfig{Episodes: 30000}
	}

	newEnv := func(seed int64) *env.SimEnv {
		cfg := tb.Cfg
		cfg.Jitter = 0.05
		cfg.Rand = rand.New(rand.NewSource(seed))
		e := env.NewSimEnv(sim.New(cfg), rand.New(rand.NewSource(seed+1)))
		e.MaxThreadsN = tb.MaxThreads
		return e
	}
	rmax := env.TheoreticalMaxReward(tb.Bottleneck, tb.NStar, env.DefaultK)
	tc.Rmax = rmax

	cont := rl.NewAgent(net, 10)
	contRes := cont.Train(newEnv(20), tc)

	disc := rl.NewDiscreteAgent(net, 11)
	discRes := disc.Train(newEnv(30), tc)

	return &Fig4Result{Continuous: contRes, Discrete: discRes, Rmax: rmax}, nil
}

// Fig4Budget is Fig4 with an explicit episode budget, used by the
// benchmark harness to bound runtime. The full-budget curves come from
// Fig4.
func Fig4Budget(mode Mode, episodes int) (*Fig4Result, error) {
	tb := ReadBottleneck()
	net := rl.NetConfig{Hidden: 32, PolicyBlocks: 1, ValueBlocks: 1, MaxActions: tb.MaxThreads}
	if mode == Paper {
		net = rl.NetConfig{MaxActions: tb.MaxThreads}
	}
	tc := rl.TrainConfig{
		Episodes:      episodes,
		LR:            1e-3,
		UpdateEpochs:  4,
		StagnantLimit: 1 << 30,
	}
	newEnv := func(seed int64) *env.SimEnv {
		e := env.NewSimEnv(sim.New(tb.Cfg), rand.New(rand.NewSource(seed)))
		e.MaxThreadsN = tb.MaxThreads
		return e
	}
	rmax := env.TheoreticalMaxReward(tb.Bottleneck, tb.NStar, env.DefaultK)
	tc.Rmax = rmax
	cont := rl.NewAgent(net, 10)
	contRes := cont.Train(newEnv(20), tc)
	disc := rl.NewDiscreteAgent(net, 11)
	discRes := disc.Train(newEnv(30), tc)
	return &Fig4Result{Continuous: contRes, Discrete: discRes, Rmax: rmax}, nil
}

// TrainBudget runs the offline pipeline on tb with a fixed episode
// budget (no caching), for timing the §V-A training cost.
func TrainBudget(tb Testbed, mode Mode, seed int64, episodes int) (*core.System, error) {
	opts := trainOpts(tb, mode, seed)
	opts.Train.Episodes = episodes
	opts.Train.StagnantLimit = 1 << 30
	return core.ProbeAndTrain(
		probeRunnerFor(tb),
		rand.New(rand.NewSource(seed)),
		probe.Options{Steps: 100, MaxThreads: tb.MaxThreads},
		opts,
	)
}

// NewBenchAgent builds a PPO agent with the given architecture plus a
// matching simulator environment, for micro-benchmarks.
func NewBenchAgent(tb Testbed, net rl.NetConfig) (*rl.Agent, env.Environment) {
	e := env.NewSimEnv(sim.New(tb.Cfg), rand.New(rand.NewSource(7)))
	e.MaxThreadsN = tb.MaxThreads
	return rl.NewAgent(net, 8), e
}

// Table1Row is one dataset row of Table I.
type Table1Row struct {
	Dataset     string
	GlobusMbps  float64
	MarlinMbps  float64
	AutoMbps    float64
	PaperGlobus float64
	PaperMarlin float64
	PaperAuto   float64
}

// Table1Result holds both rows of Table I.
type Table1Result struct {
	Rows []Table1Row
}

// mixedPenalty models the per-file overhead (open/close, sub-chunk tails)
// that separates the paper's mixed dataset from its large dataset: the
// paper's measured mixed/large ratios are 0.64 (Globus), 0.76 (Marlin),
// and 0.71 (AutoMDT); we apply a single 0.72 factor to per-thread rates.
const mixedPenalty = 0.72

// Table1 reproduces the end-to-end comparison: Globus (static monolithic
// concurrency 4), Marlin, and AutoMDT on large (Dataset A) and mixed
// (Dataset B) 1 TB workloads over the WAN testbed. Dataset volume is
// scaled to totalMb to keep runtimes sane; throughput is volume/time, so
// the comparison is scale-free once past convergence transients.
func Table1(mode Mode) (*Table1Result, error) {
	tb := Wan()
	sys, err := TrainedSystem(tb, mode, 1)
	if err != nil {
		return nil, err
	}
	const totalMb = 1_600_000 // 200 GB-equivalent; long enough to amortize ramp-up

	measure := func(cfg sim.Config, ctrl env.Controller) float64 {
		st := &core.SimTransfer{
			Cfg:        cfg,
			Controller: ctrl,
			TotalMb:    totalMb,
			MaxTicks:   7200,
			MaxThreads: tb.MaxThreads,
		}
		return st.Run().AvgMbps
	}
	// Per-file overhead shaves both per-thread rates and the achievable
	// aggregate goodput (headers, open/close, sub-chunk tails).
	mixedCfg := tb.Cfg
	for i := range mixedCfg.TPT {
		mixedCfg.TPT[i] *= mixedPenalty
		mixedCfg.Bandwidth[i] *= mixedPenalty
	}

	res := &Table1Result{}
	res.Rows = append(res.Rows, Table1Row{
		Dataset:     "A (Large)",
		GlobusMbps:  measure(tb.Cfg, static.New(4)),
		MarlinMbps:  measure(tb.Cfg, paperMarlin()),
		AutoMbps:    measure(tb.Cfg, sys.DeterministicController()),
		PaperGlobus: 3652.2, PaperMarlin: 18066.8, PaperAuto: 23988.0,
	})
	res.Rows = append(res.Rows, Table1Row{
		Dataset:     "B (Mixed)",
		GlobusMbps:  measure(mixedCfg, static.New(4)),
		MarlinMbps:  measure(mixedCfg, paperMarlin()),
		AutoMbps:    measure(mixedCfg, sys.DeterministicController()),
		PaperGlobus: 2325.9, PaperMarlin: 13721.5, PaperAuto: 16915.8,
	})
	return res, nil
}

// FineTuneResult reports the §V-C online fine-tuning experiment.
type FineTuneResult struct {
	// BaseMeanThreads and TunedMeanThreads are the average total
	// concurrency (n_r+n_n+n_w) used at steady state.
	BaseMeanThreads  float64
	TunedMeanThreads float64
	// BaseMbps and TunedMbps are the steady-state transfer rates.
	BaseMbps  float64
	TunedMbps float64
}

// FineTune reproduces §V-C: take the offline-trained model, fine-tune it
// online (against the ground-truth dynamics), and compare concurrency
// usage at equal speed. The paper measured ≈1% fewer threads and declared
// the gain negligible.
func FineTune(mode Mode, episodes int) (*FineTuneResult, error) {
	tb := ReadBottleneck()
	sys, err := TrainedSystem(tb, mode, 5)
	if err != nil {
		return nil, err
	}
	eval := func(ctrl env.Controller) (meanThreads, mbps float64) {
		st := &core.SimTransfer{
			Cfg:        tb.Cfg,
			Controller: ctrl,
			TotalMb:    24_000,
			MaxTicks:   3600,
			MaxThreads: tb.MaxThreads,
		}
		r := st.Run()
		var tot []float64
		cr := r.Rec.Series("cc_read").Values()
		cn := r.Rec.Series("cc_net").Values()
		cw := r.Rec.Series("cc_write").Values()
		for i := range cr {
			tot = append(tot, cr[i]+cn[i]+cw[i])
		}
		// Skip the convergence transient (first quarter).
		tail := tot[len(tot)/4:]
		return metrics.Summarize(tail).Mean, r.AvgMbps
	}
	res := &FineTuneResult{}
	res.BaseMeanThreads, res.BaseMbps = eval(sys.DeterministicController())

	e := env.NewSimEnv(sim.New(tb.Cfg), rand.New(rand.NewSource(99)))
	e.MaxThreadsN = tb.MaxThreads
	sys.FineTune(e, episodes)
	res.TunedMeanThreads, res.TunedMbps = eval(sys.DeterministicController())
	return res, nil
}

// AblationJointResult compares the three optimizer architectures of the
// §III motivation on the same testbed.
type AblationJointResult struct {
	Testbed Testbed
	// Mbps maps optimizer name to achieved end-to-end rate.
	AutoMbps   float64
	MarlinMbps float64
	JointMbps  float64
	// JointStuck reports whether joint gradient descent plateaued well
	// below the RL optimum (the paper's "never recovers" failure).
	JointStuck bool
}

// AblationJoint reproduces the §III failure analysis on the WAN testbed
// (where the optimum needs 20 network streams): joint multivariate
// gradient descent freezes in its early read-favoring local optimum,
// Marlin's independent optimizers limp along unstably, and the RL agent
// converges.
func AblationJoint(mode Mode) (*AblationJointResult, error) {
	tb := Wan()
	sys, err := TrainedSystem(tb, mode, 1)
	if err != nil {
		return nil, err
	}
	run := func(ctrl env.Controller) float64 {
		st := &core.SimTransfer{
			Cfg:        tb.Cfg,
			Controller: ctrl,
			TotalMb:    800_000,
			MaxTicks:   3600,
			MaxThreads: tb.MaxThreads,
		}
		return st.Run().AvgMbps
	}
	res := &AblationJointResult{
		Testbed:    tb,
		AutoMbps:   run(sys.DeterministicController()),
		MarlinMbps: run(paperMarlin()),
		JointMbps:  run(marlin.NewJointGD()),
	}
	res.JointStuck = res.JointMbps < 0.9*res.AutoMbps
	return res, nil
}

// KSweepRow is one line of the §IV-B utility-penalty sweep.
type KSweepRow struct {
	K float64
	// BestThreads is the utility-maximizing stage tuple.
	BestThreads env.Action
	// TotalThreads is the paper's resource count n_r + n_n + n_w, with
	// n_n the total network workers (conns·streams).
	TotalThreads int
	Mbps         float64
}

// KSweep reproduces the paper's k selection (§IV-B): for each penalty
// base, find the utility-maximizing concurrency tuple on the simulator
// and report the resource/throughput trade-off. Small k buys marginal
// throughput with many extra threads; large k sacrifices throughput;
// k≈1.02 sits at the knee.
//
// Single-coordinate hill climbing stalls on this objective (the §III
// local optimum: no stage improves alone), so the search walks the
// balanced-pipeline frontier — tuples nᵢ = ⌈T/TPTᵢ⌉ for target rates T up
// to the bottleneck — plus each tuple's single-stage neighbours.
func KSweep(ks []float64) []KSweepRow {
	tb := ReadBottleneck()

	// Build the candidate set once: balanced-pipeline tuples at one data
	// connection (this testbed has no per-connection ceiling, so extra
	// sockets only cost utility) plus single-dimension neighbours.
	var candidates []env.Action
	seen := map[env.Action]bool{}
	add := func(c env.Action) {
		c = c.Clamp(tb.MaxThreads)
		if !seen[c] {
			seen[c] = true
			candidates = append(candidates, c)
		}
	}
	for T := 40.0; T <= tb.Bottleneck+1; T += 40 {
		c := env.ActionOf(
			int(math.Ceil(T/tb.Cfg.TPT[0])),
			1,
			int(math.Ceil(T/tb.Cfg.TPT[1])),
			int(math.Ceil(T/tb.Cfg.TPT[2])),
		)
		add(c)
		for i := env.Stage(0); i < env.StageCount; i++ {
			for _, d := range []int{-1, +1} {
				n := c
				n.N[i] += d
				add(n)
			}
		}
	}
	rates := make([]env.StageVec, len(candidates)) // steady-state throughputs
	for i, c := range candidates {
		rates[i] = evalThroughputs(tb, c)
	}

	rows := make([]KSweepRow, 0, len(ks))
	for _, k := range ks {
		bestI, bestU := 0, math.Inf(-1)
		for i, c := range candidates {
			if u := env.Utility(rates[i], c, k); u > bestU {
				bestI, bestU = i, u
			}
		}
		best := candidates[bestI]
		rows = append(rows, KSweepRow{
			K:            k,
			BestThreads:  best,
			TotalThreads: best.N[env.StageRead] + best.NetWorkers() + best.N[env.StageWrite],
			Mbps:         rates[bestI][env.StageWrite],
		})
	}
	return rows
}

// evalThroughputs returns the steady-state stage rates at the tuple.
func evalThroughputs(tb Testbed, a env.Action) env.StageVec {
	s := sim.New(tb.Cfg)
	var r sim.Result
	for i := 0; i < 10; i++ {
		r = s.Step(a.N[env.StageRead], a.N[env.StageConns], a.N[env.StageStreams], a.N[env.StageWrite])
	}
	return env.ThroughputVec(r.Throughput[sim.Read], r.Throughput[sim.Network], r.Throughput[sim.Write])
}

// PrintCompare renders a CompareResult as the text analogue of a figure
// column: convergence times, completion times, and the concurrency trace.
func PrintCompare(w io.Writer, c *CompareResult) {
	fmt.Fprintf(w, "== %s (target: %s concurrency %d) ==\n",
		c.Testbed.Name, c.TargetStage, c.Target)
	for _, t := range []TraceResult{c.Auto, c.Marlin} {
		fmt.Fprintf(w, "%-8s  TCT %4d s   avg %7.0f Mbps   reach n*=%d at t=%s\n",
			t.Name, t.Run.Ticks, t.Run.AvgMbps, c.Target, fmtTime(t.TimeToTarget))
	}
	speedup := float64(c.Marlin.Run.Ticks) / math.Max(1, float64(c.Auto.Run.Ticks))
	fmt.Fprintf(w, "Marlin/AutoMDT completion-time ratio: %.2fx\n", speedup)
	fmt.Fprintln(w, "\nAutoMDT concurrency trace (t, n_r, n_n, n_w) every 10 s:")
	printTrace(w, c.Auto)
	fmt.Fprintln(w, "Marlin concurrency trace (t, n_r, n_n, n_w) every 10 s:")
	printTrace(w, c.Marlin)
}

func printTrace(w io.Writer, t TraceResult) {
	cr := t.Run.Rec.Series("cc_read").Points()
	cn := t.Run.Rec.Series("cc_net").Points()
	cw := t.Run.Rec.Series("cc_write").Points()
	for i := 0; i < len(cr); i += 10 {
		fmt.Fprintf(w, "  t=%4.0f  %2.0f %2.0f %2.0f\n", cr[i].T, cr[i].V, cn[i].V, cw[i].V)
	}
}

func fmtTime(t float64) string {
	if t < 0 {
		return "never"
	}
	return fmt.Sprintf("%.0fs", t)
}

// PrintTable1 renders Table I with the paper's reference numbers.
func PrintTable1(w io.Writer, t *Table1Result) {
	fmt.Fprintln(w, "== Table I: end-to-end transfer speed (Mbps) ==")
	fmt.Fprintf(w, "%-10s  %22s  %22s  %22s\n", "Dataset", "Globus (meas/paper)", "Marlin (meas/paper)", "AutoMDT (meas/paper)")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10s  %10.0f /%9.1f  %10.0f /%9.1f  %10.0f /%9.1f\n",
			r.Dataset, r.GlobusMbps, r.PaperGlobus, r.MarlinMbps, r.PaperMarlin, r.AutoMbps, r.PaperAuto)
	}
}

// PrintFig4 renders the two learning curves as block means.
func PrintFig4(w io.Writer, f *Fig4Result) {
	fmt.Fprintln(w, "== Fig. 4: PPO reward by action space (block means) ==")
	blocks := func(rs []float64) []float64 {
		n := 10
		if len(rs) < n {
			n = len(rs)
		}
		out := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			lo, hi := i*len(rs)/n, (i+1)*len(rs)/n
			out = append(out, metrics.Summarize(rs[lo:hi]).Mean)
		}
		return out
	}
	fmt.Fprintf(w, "episode-max reward (10·Rmax): %.0f\n", 10*f.Rmax)
	fmt.Fprintf(w, "continuous: ")
	for _, v := range blocks(f.Continuous.EpisodeRewards) {
		fmt.Fprintf(w, "%7.0f", v)
	}
	fmt.Fprintf(w, "\ndiscrete:   ")
	for _, v := range blocks(f.Discrete.EpisodeRewards) {
		fmt.Fprintf(w, "%7.0f", v)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "continuous converged at episode %d (%v); discrete converged: %v\n",
		f.Continuous.ConvergedAt, f.Continuous.ConvergedAt >= 0, f.Discrete.ConvergedAt >= 0)
}
