package experiments

// The adversarial scenario matrix: declarative cells composing the
// internal/chaos fault axes (Markov link model, flaky destination disk,
// hostile peer) with a workload shape, executed over the live loopback
// engine with seeded determinism. Each cell checks one invariant —
// every transfer either completes byte-correct or fails cleanly and
// resumes re-sending <10% of already-committed bytes, with no goroutine
// or arena-lease leaks — and contributes per-cell aggregates (goodput,
// re-sent bytes, ledger bytes persisted, controller convergence,
// detection/recovery latencies) to a BENCH_chaos.json report. Surfaced
// by `automdt-bench -exp chaos -quick|-full` and the nightly CI
// robustness battery.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"automdt/internal/chaos"
	"automdt/internal/enginebench"
	"automdt/internal/env"
	"automdt/internal/flight"
	"automdt/internal/fsim"
	"automdt/internal/marlin"
	"automdt/internal/sched"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

// ChaosLoad names a workload shape used as a matrix axis.
type ChaosLoad struct {
	Name string        `json:"name"`
	Spec workload.Spec `json:"spec"`
}

// ChaosCell is one scenario: the composition of one value from each
// fault axis with a workload, plus the cell's expectations.
type ChaosCell struct {
	Name string          `json:"name"`
	Link chaos.LinkModel `json:"link"`
	Disk chaos.DiskFault `json:"disk"`
	Peer chaos.PeerFault `json:"peer"`
	Load ChaosLoad       `json:"load"`
	// WantFail marks a cell whose faults make completion impossible
	// (e.g. an ENOSPC budget below the dataset size); it passes by
	// failing cleanly on every attempt while keeping the ledger loadable.
	WantFail bool `json:"want_fail,omitempty"`
	// MinReplans asserts targeted-recovery activity: the cell fails
	// unless at least this many re-plan events land in the flight trace.
	MinReplans int `json:"min_replans,omitempty"`
	// Fleet runs the cell against a receiver fleet of this many endpoints
	// driven by the scheduler, and the injected adversary becomes a
	// WHOLE-endpoint kill: once a session is demonstrably mid-transfer,
	// its endpoint dies and every session it hosted must fail over to a
	// live sibling (resuming through the shared store's ledger). The Disk
	// and Peer axes are ignored for fleet cells — the endpoint kill IS
	// the peer fault. 0 keeps the classic single-receiver loopback cell.
	Fleet int `json:"fleet,omitempty"`
	// MinReplaces asserts failover activity on a fleet cell: the cell
	// fails unless at least this many re-place events for its sessions
	// land in the fleet flight trace.
	MinReplaces int `json:"min_replaces,omitempty"`
	// MaxAttempts bounds the run/resume loop (default 8).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Timeout bounds the cell's wall clock (default 60s).
	Timeout time.Duration `json:"-"`
	// Seed drives every random stream in the cell (derived from the
	// matrix seed and cell name when zero).
	Seed int64 `json:"seed"`
}

// ChaosCellResult is one cell's outcome and aggregates.
type ChaosCellResult struct {
	Cell string `json:"cell"`
	Link string `json:"link"`
	Disk string `json:"disk"`
	Peer string `json:"peer"`
	Load string `json:"load"`
	Seed int64  `json:"seed"`

	Pass    bool   `json:"pass"`
	Failure string `json:"failure,omitempty"`

	Completed  bool    `json:"completed"`
	WantFail   bool    `json:"want_fail,omitempty"`
	Attempts   int     `json:"attempts"`
	DurationMs float64 `json:"duration_ms"`

	// Aggregates.
	BytesTotal      int64   `json:"bytes_total"`
	GoodputMbps     float64 `json:"goodput_mbps,omitempty"`
	WireBytes       int64   `json:"wire_bytes,omitempty"`
	ResentBytes     int64   `json:"resent_bytes,omitempty"`
	ResentCommitted int64   `json:"resent_committed_bytes,omitempty"`
	LedgerBytes     int64   `json:"ledger_bytes,omitempty"`
	ReplanEvents    int     `json:"replan_events,omitempty"`
	ReplaceEvents   int     `json:"replace_events,omitempty"`
	Failovers       int64   `json:"failovers,omitempty"`
	LinkKills       int64   `json:"link_kills,omitempty"`
	PeerKills       int     `json:"peer_kills,omitempty"`
	BitFlips        int64   `json:"bit_flips,omitempty"`
	DiskFaults      int64   `json:"disk_faults,omitempty"`
	ConvergenceMs   float64 `json:"convergence_ms,omitempty"`
	DetectMs        float64 `json:"detect_ms,omitempty"`
	RecoverMs       float64 `json:"recover_ms,omitempty"`
}

// ChaosReport is the BENCH_chaos.json document.
type ChaosReport struct {
	Schema int                  `json:"schema"`
	Host   enginebench.HostInfo `json:"host"`
	Mode   string               `json:"mode"`
	Seed   int64                `json:"seed"`
	Pass   bool                 `json:"pass"`
	Cells  []ChaosCellResult    `json:"cells"`
}

// ChaosMatrix is a named set of cells plus the seed their per-cell
// streams derive from.
type ChaosMatrix struct {
	Name  string
	Seed  int64
	Cells []ChaosCell
}

// CrossChaosCells builds the cross-product of the axes. A disk whose
// ENOSPC budget cannot hold the dataset (plus ledger headroom) makes the
// cell a WantFail cell; a peer that kills or partitions makes the cell
// assert at least one re-plan event.
func CrossChaosCells(links []chaos.LinkModel, disks []chaos.DiskFault,
	peers []chaos.PeerFault, loads []ChaosLoad) []ChaosCell {
	var cells []ChaosCell
	for _, ld := range loads {
		m, err := ld.Spec.Build()
		total := int64(0)
		if err == nil {
			total = m.TotalBytes()
		}
		for _, ln := range links {
			for _, d := range disks {
				for _, p := range peers {
					cell := ChaosCell{
						Name: strings.Join([]string{axisName(ln.Name), axisName(d.Name),
							axisName(p.Name), axisName(ld.Name)}, "/"),
						Link: ln, Disk: d, Peer: p, Load: ld,
					}
					if d.CapacityBytes > 0 && d.CapacityBytes < total*3/2 {
						cell.WantFail = true
					}
					if !cell.WantFail && (p.KillDataAfterBytes > 0 || p.PartitionAfterBytes > 0) {
						cell.MinReplans = 1
					}
					cells = append(cells, cell)
				}
			}
		}
	}
	return cells
}

func axisName(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// chaosSessionID derives a valid, unique session id from a cell name.
func chaosSessionID(cell string, seed int64) string {
	h := fnv.New64a()
	io.WriteString(h, cell) //nolint:errcheck
	id := fmt.Sprintf("chaos-%x-%x", h.Sum64(), uint64(seed))
	if !fsim.ValidSessionID(id) {
		panic("chaos: derived session id invalid: " + id)
	}
	return id
}

// cellSeed derives a cell's seed from the matrix seed and cell name, so
// every cell replays independently of matrix order.
func cellSeed(matrixSeed int64, cell string) int64 {
	h := fnv.New64a()
	io.WriteString(h, cell) //nolint:errcheck
	return matrixSeed ^ int64(h.Sum64())
}

// RunChaosCell executes one cell: run the transfer under the cell's
// faults, resuming after clean failures, then judge the invariant.
// Fleet cells (Fleet > 0) take the whole-endpoint-kill path instead.
func RunChaosCell(ctx context.Context, c ChaosCell) ChaosCellResult {
	if c.Fleet > 0 {
		return runFleetChaosCell(ctx, c)
	}
	res := ChaosCellResult{
		Cell: c.Name, Link: axisName(c.Link.Name), Disk: axisName(c.Disk.Name),
		Peer: axisName(c.Peer.Name), Load: axisName(c.Load.Name),
		Seed: c.Seed, WantFail: c.WantFail,
	}
	fail := func(format string, args ...any) ChaosCellResult {
		res.Pass = false
		res.Failure = fmt.Sprintf(format, args...)
		return res
	}

	manifest, err := c.Load.Spec.Build()
	if err != nil {
		return fail("bad workload spec: %v", err)
	}
	total := manifest.TotalBytes()
	res.BytesTotal = total

	src := fsim.NewSyntheticStore()
	dstInner := fsim.NewSyntheticStore()
	dstInner.Verify = true
	dst, err := chaos.NewFlakyStore(dstInner, c.Disk, c.Seed+1)
	if err != nil {
		return fail("flaky store: %v", err)
	}
	link, err := chaos.NewLink(c.Link, c.Seed+2)
	if err != nil {
		return fail("link model: %v", err)
	}
	peer := chaos.NewPeer(c.Peer, c.Seed+3)

	if !flight.Active() {
		flight.Enable(512)
		defer flight.Default().Disable()
	}

	arena := transfer.NewArena(64 << 20)
	sid := chaosSessionID(c.Name, c.Seed)
	cfg := transfer.Config{
		ChunkBytes:       64 << 10,
		SenderBufBytes:   8 << 20,
		ReceiverBufBytes: 8 << 20,
		MaxThreads:       16,
		ProbeInterval:    50 * time.Millisecond,
		InitialThreads:   2,
		Conns:            3,
		SessionID:        sid,
		Arena:            arena,
		WrapConn: func(kind string, cn net.Conn) net.Conn {
			cn = peer.WrapConn(kind, cn)
			if kind == "data" {
				cn = link.WrapConn(cn)
			}
			return cn
		},
	}

	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 8
	}
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	goroutinesBefore := runtime.NumGoroutine()
	start := time.Now()
	var final *transfer.Result
	var committedBefore int64
	var attemptEnds []time.Time
	var lastErr error
	for attempt := 1; attempt <= maxAttempts && cctx.Err() == nil; attempt++ {
		res.Attempts = attempt
		committedBefore = 0
		if l, lerr := transfer.LoadSessionLedger(dst, sid); lerr == nil {
			committedBefore = l.CommittedBytes()
		}
		r, rerr := transfer.Loopback(cctx, cfg, manifest, src, dst, marlin.New())
		attemptEnds = append(attemptEnds, time.Now())
		if rerr == nil {
			final = r
			break
		}
		lastErr = rerr
		// Let a partition heal and the loopback listener free its port.
		select {
		case <-cctx.Done():
		case <-time.After(60 * time.Millisecond):
		}
	}
	end := time.Now()
	res.DurationMs = float64(end.Sub(start)) / float64(time.Millisecond)
	res.LedgerBytes = dst.LedgerBytes()
	res.DiskFaults = dst.Faults()
	res.LinkKills = link.Kills()
	res.PeerKills = peer.Kills()
	res.BitFlips = peer.Flips()

	replans := flight.Default().Dump("sender:"+sid, 0)
	var replanTimes []time.Time
	for _, ev := range replans {
		if ev.Kind == flight.KindReplan {
			replanTimes = append(replanTimes, time.Unix(0, ev.UnixNano))
		}
	}
	res.ReplanEvents = len(replanTimes)
	res.ConvergenceMs = chaosConvergenceMs(flight.Default().Dump("ctrl:"+sid, 0))
	res.DetectMs, res.RecoverMs = chaosLatencies(peer.Injections(), replanTimes, attemptEnds, final != nil, end)

	if final != nil {
		res.Completed = true
		res.GoodputMbps = final.AvgMbps
		res.WireBytes = final.WireBytes
		res.ResentBytes = final.ResentBytes
		// Bytes the resumed attempt sent a first time (wire minus in-attempt
		// recovery re-sends) beyond what was still outstanding: that excess
		// is committed data the resume failed to skip. In-attempt re-plans
		// of chunks that never committed are recovery, not waste.
		if over := (final.WireBytes - final.ResentBytes) - (total - committedBefore); over > 0 {
			res.ResentCommitted = over
		}
	}

	// Judge the invariant.
	if verrs := dstInner.Errors(); len(verrs) > 0 {
		return fail("destination corruption: %v", verrs[0])
	}
	if c.WantFail {
		if final != nil {
			return fail("expected clean failure but the transfer completed")
		}
		if cctx.Err() != nil && lastErr == nil {
			return fail("timed out without a clean failure")
		}
		if _, lerr := transfer.LoadSessionLedger(dst, sid); lerr != nil && !errors.Is(lerr, os.ErrNotExist) {
			return fail("ledger unloadable after clean failure: %v", lerr)
		}
	} else {
		if final == nil {
			if cctx.Err() != nil {
				return fail("cell timed out after %d attempts (last error: %v)", res.Attempts, lastErr)
			}
			return fail("did not complete in %d attempts: %v", res.Attempts, lastErr)
		}
		if res.ResentCommitted > total/10 {
			return fail("resume re-sent %d committed bytes (>10%% of %d)", res.ResentCommitted, total)
		}
	}
	if res.ReplanEvents < c.MinReplans {
		return fail("expected ≥%d re-plan events in the flight trace, saw %d", c.MinReplans, res.ReplanEvents)
	}

	// Leak checks: the dedicated arena must drain its leases and the
	// goroutine count must settle back to the pre-cell level.
	if leaked, inUse := arenaSettles(arena); !leaked {
		return fail("arena lease leak: %d bytes still leased", inUse)
	}
	if !goroutinesSettle(goroutinesBefore + 2) {
		return fail("goroutine leak: %d before, %d after settle", goroutinesBefore, runtime.NumGoroutine())
	}

	res.Pass = true
	return res
}

// runFleetChaosCell executes a fleet cell: the scheduler drives a batch
// of concurrent sessions against a receiver fleet through the cell's
// chaos link, one whole endpoint is killed once a session it hosts is
// demonstrably mid-transfer, and the judge demands byte-correct
// completion on the surviving siblings, re-place evidence in the fleet
// flight trace, <10% committed-byte re-send on the resumed victims, and
// settled arena leases and goroutines.
func runFleetChaosCell(ctx context.Context, c ChaosCell) ChaosCellResult {
	res := ChaosCellResult{
		Cell: c.Name, Link: axisName(c.Link.Name), Disk: axisName(c.Disk.Name),
		Peer: "kill-endpoint", Load: axisName(c.Load.Name), Seed: c.Seed,
	}
	fail := func(format string, args ...any) ChaosCellResult {
		res.Pass = false
		res.Failure = fmt.Sprintf(format, args...)
		return res
	}

	manifest, err := c.Load.Spec.Build()
	if err != nil {
		return fail("bad workload spec: %v", err)
	}
	const jobs = 4
	perJob := manifest.TotalBytes()
	res.BytesTotal = perJob * jobs

	link, err := chaos.NewLink(c.Link, c.Seed+2)
	if err != nil {
		return fail("link model: %v", err)
	}

	if !flight.Active() {
		flight.Enable(512)
		defer flight.Default().Disable()
	}

	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	goroutinesBefore := runtime.NumGoroutine()
	arena := transfer.NewArena(256 << 20)
	store := fsim.NewSyntheticStore()
	store.Verify = true
	fr := &sched.FleetRunner{
		Size:     c.Fleet,
		Store:    store,
		Receiver: transfer.Config{Arena: arena},
		// A short beat so the kill surfaces quickly, with TTL headroom so
		// a loaded sibling's stalled heartbeat doesn't flap the registry.
		HeartbeatEvery: 20 * time.Millisecond,
		HeartbeatTTL:   200 * time.Millisecond,
	}
	s, err := sched.New(sched.Config{
		Budget:    [env.StageCount]int{16, 16, 16, 16},
		MaxActive: jobs,
		Runner:    fr,
	})
	if err != nil {
		fr.Close()
		return fail("scheduler: %v", err)
	}
	closeAll := func() {
		s.Close()
		fr.Close()
	}

	// All jobs share the manifest (name-derived synthetic content agrees
	// by construction) but get distinct scheduler-assigned sessions, so
	// their ledgers never collide in the shared store.
	start := time.Now()
	ids := make([]int64, jobs)
	for i := range ids {
		id, serr := s.Submit(sched.JobSpec{
			Name:     "chaos-fleet",
			Manifest: manifest,
			// The lossy link can kill every data connection of an unlucky
			// attempt outright (on top of the endpoint kill each victim
			// spends one retry on), so the striped sender and the retry
			// headroom match the single-receiver cells' attempt budget.
			MaxRetries: 8,
			Transfer: transfer.Config{
				ChunkBytes:     64 << 10,
				InitialThreads: 2,
				MaxThreads:     4,
				Conns:          3,
				ProbeInterval:  25 * time.Millisecond,
				Arena:          arena,
				Shaping:        transfer.Shaping{LinkMbps: 60},
				WrapConn: func(kind string, cn net.Conn) net.Conn {
					if kind == "data" {
						cn = link.WrapConn(cn)
					}
					return cn
				},
			},
		})
		if serr != nil {
			closeAll()
			return fail("submit: %v", serr)
		}
		ids[i] = id
	}

	// Kill the endpoint hosting a session that is demonstrably
	// mid-transfer; the window's upper bound keeps the victim from
	// finishing in the gap between selection and kill.
	var victim string
	for victim == "" {
		if cctx.Err() != nil {
			closeAll()
			return fail("no session reached mid-transfer progress before the cell timeout")
		}
		for _, id := range ids {
			st, serr := s.Status(id)
			if serr != nil {
				continue
			}
			if st.State == "running" && st.CommittedBytes >= perJob/8 && st.CommittedBytes < perJob/2 {
				if ep := fr.EndpointOf(st.SessionID); ep != "" {
					victim = ep
					break
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	committedBefore := make(map[int64]int64)
	for _, id := range ids {
		st, serr := s.Status(id)
		if serr == nil && st.State == "running" && st.CommittedBytes < perJob &&
			fr.EndpointOf(st.SessionID) == victim {
			committedBefore[id] = st.CommittedBytes
		}
	}
	killAt := time.Now()
	if kerr := fr.KillEndpoint(victim); kerr != nil {
		closeAll()
		return fail("kill endpoint %s: %v", victim, kerr)
	}
	res.PeerKills = 1

	if derr := s.Drain(cctx); derr != nil {
		closeAll()
		return fail("drain after endpoint kill: %v", derr)
	}
	end := time.Now()
	res.DurationMs = float64(end.Sub(start)) / float64(time.Millisecond)
	res.LinkKills = link.Kills()
	res.Attempts = 1

	sessions := make(map[int64]string, jobs)
	for _, id := range ids {
		st, serr := s.Status(id)
		if serr != nil {
			closeAll()
			return fail("job %d status: %v", id, serr)
		}
		if st.State != "done" {
			closeAll()
			return fail("job %d state %s after drain (%s)", id, st.State, st.Error)
		}
		sessions[id] = st.SessionID
		if st.Attempts > res.Attempts {
			res.Attempts = st.Attempts
		}
	}
	res.Completed = true
	if sec := end.Sub(start).Seconds(); sec > 0 {
		res.GoodputMbps = float64(res.BytesTotal) * 8 / 1e6 / sec
	}

	// Flight evidence, filtered to this cell's sessions: the fleet flight
	// source is process-global and earlier cells also write to it.
	mine := func(note string) bool {
		for _, sid := range sessions {
			if sid != "" && strings.Contains(note, "session="+sid+" ") {
				return true
			}
		}
		return false
	}
	var replaceTimes []time.Time
	for _, ev := range flight.Default().Dump(sched.FleetSource, 0) {
		if ev.Kind == flight.KindReplace && mine(ev.Note) {
			replaceTimes = append(replaceTimes, time.Unix(0, ev.UnixNano))
		}
	}
	res.ReplaceEvents = len(replaceTimes)
	for _, sid := range sessions {
		for _, ev := range flight.Default().Dump("sender:"+sid, 0) {
			if ev.Kind == flight.KindReplan {
				res.ReplanEvents++
			}
		}
	}
	for _, t := range replaceTimes {
		if !t.Before(killAt) {
			d := float64(t.Sub(killAt)) / float64(time.Millisecond)
			if res.DetectMs == 0 || d < res.DetectMs {
				res.DetectMs = d
			}
		}
	}
	res.RecoverMs = float64(end.Sub(killAt)) / float64(time.Millisecond)
	res.Failovers = fr.Status().Failovers

	// Committed bytes a resumed victim failed to inherit through the
	// shared store's ledger: the failover analogue of ResentCommitted.
	var beforeTotal int64
	for id, before := range committedBefore {
		st, serr := s.Status(id)
		if serr != nil || st.Resumes < 1 || before == 0 {
			continue
		}
		beforeTotal += before
		if over := before - st.SkippedBytes; over > 0 {
			res.ResentCommitted += over
		}
	}

	// Judge: teardown first so leak checks see the settled picture.
	closeAll()
	if verrs := store.Errors(); len(verrs) > 0 {
		return fail("destination corruption: %v", verrs[0])
	}
	if res.ReplaceEvents < c.MinReplaces {
		return fail("expected ≥%d re-place events in the fleet flight trace, saw %d", c.MinReplaces, res.ReplaceEvents)
	}
	if res.Failovers < int64(c.MinReplaces) {
		return fail("fleet failover counter %d under the %d floor", res.Failovers, c.MinReplaces)
	}
	if beforeTotal > 0 && res.ResentCommitted > beforeTotal/10 {
		return fail("failover re-sent %d of %d pre-kill committed bytes (>10%%)", res.ResentCommitted, beforeTotal)
	}
	if leaked, inUse := arenaSettles(arena); !leaked {
		return fail("arena lease leak: %d bytes still leased", inUse)
	}
	if !goroutinesSettle(goroutinesBefore + 2) {
		return fail("goroutine leak: %d before, %d after settle", goroutinesBefore, runtime.NumGoroutine())
	}

	res.Pass = true
	return res
}

// chaosConvergenceMs derives controller convergence from the cell's
// decision trace: the time from the first decision to the last one that
// still differed from the final concurrency tuple (0 with ≤1 decisions).
func chaosConvergenceMs(events []flight.Event) float64 {
	var decisions []flight.Event
	for _, ev := range events {
		if ev.Kind == flight.KindDecision {
			decisions = append(decisions, ev)
		}
	}
	if len(decisions) < 2 {
		return 0
	}
	finalN := decisions[len(decisions)-1].Chosen.N
	last := -1
	for i, ev := range decisions {
		if ev.Chosen.N != finalN {
			last = i
		}
	}
	if last < 0 {
		return 0
	}
	return float64(decisions[last].UnixNano-decisions[0].UnixNano) / float64(time.Millisecond)
}

// chaosLatencies derives fault-handling latencies from the first peer
// injection: detection is the gap to the first re-plan event (or to the
// end of the attempt the injection landed in, when the whole attempt
// failed instead), recovery the gap to final completion.
func chaosLatencies(injections, replans []time.Time, attemptEnds []time.Time,
	completed bool, end time.Time) (detectMs, recoverMs float64) {
	if len(injections) == 0 {
		return 0, 0
	}
	inj := injections[0]
	for _, t := range replans {
		if !t.Before(inj) {
			detectMs = float64(t.Sub(inj)) / float64(time.Millisecond)
			break
		}
	}
	if detectMs == 0 {
		for _, t := range attemptEnds {
			if !t.Before(inj) {
				detectMs = float64(t.Sub(inj)) / float64(time.Millisecond)
				break
			}
		}
	}
	if completed {
		recoverMs = float64(end.Sub(inj)) / float64(time.Millisecond)
	}
	return detectMs, recoverMs
}

// arenaSettles waits for the arena's leased bytes to drain (receiver
// commit workers release asynchronously after the run returns).
func arenaSettles(a *transfer.Arena) (ok bool, inUse int64) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		inUse = a.Stats().InUseBytes
		if inUse == 0 {
			return true, 0
		}
		if time.Now().After(deadline) {
			return false, inUse
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// goroutinesSettle waits for the goroutine count to drop to max.
func goroutinesSettle(max int) bool {
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= max {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// RunChaosMatrix executes every cell sequentially (cells share the
// process-wide flight recorder and the goroutine-leak baseline, so
// parallel cells would blur each other's forensics) and assembles the
// report. log, when non-nil, receives one line per completed cell.
func RunChaosMatrix(ctx context.Context, m ChaosMatrix, mode string, log io.Writer) ChaosReport {
	rep := ChaosReport{
		Schema: 1,
		Host:   enginebench.Host(),
		Mode:   mode,
		Seed:   m.Seed,
		Pass:   true,
	}
	if !flight.Active() {
		flight.Enable(512)
		defer flight.Default().Disable()
	}
	for _, c := range m.Cells {
		if c.Seed == 0 {
			c.Seed = cellSeed(m.Seed, c.Name)
		}
		r := RunChaosCell(ctx, c)
		rep.Cells = append(rep.Cells, r)
		if !r.Pass {
			rep.Pass = false
		}
		if log != nil {
			status := "PASS"
			if !r.Pass {
				status = "FAIL " + r.Failure
			}
			fmt.Fprintf(log, "chaos %-44s %6.0fms attempts=%d replans=%d %s\n",
				r.Cell, r.DurationMs, r.Attempts, r.ReplanEvents, status)
		}
		if ctx.Err() != nil {
			rep.Pass = false
			break
		}
	}
	return rep
}

// PrintChaosReport renders the per-cell aggregate table.
func PrintChaosReport(w io.Writer, rep ChaosReport) {
	fmt.Fprintf(w, "Adversarial scenario matrix (%s, seed %d) — %d cells\n", rep.Mode, rep.Seed, len(rep.Cells))
	fmt.Fprintf(w, "%-44s %-6s %-8s %-9s %-9s %-9s %-8s %-8s %-8s\n",
		"cell (link/disk/peer/load)", "pass", "attempts", "goodput", "resent", "ledger", "replans", "detect", "converge")
	for _, c := range rep.Cells {
		pass := "ok"
		if !c.Pass {
			pass = "FAIL"
		}
		fmt.Fprintf(w, "%-44s %-6s %-8d %7.1fMb %7.2f%% %7.1fK %-8d %6.0fms %6.0fms\n",
			c.Cell, pass, c.Attempts, c.GoodputMbps,
			100*float64(c.ResentCommitted+c.ResentBytes)/float64(max64(c.BytesTotal, 1)),
			float64(c.LedgerBytes)/1024, c.ReplanEvents, c.DetectMs, c.ConvergenceMs)
		if c.Failure != "" {
			fmt.Fprintf(w, "    ↳ %s\n", c.Failure)
		}
	}
	verdict := "PASS"
	if !rep.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "matrix verdict: %s\n", verdict)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- Standard axes -----------------------------------------------------

// ChaosLinkAxes returns the link-model axis: clean, a jittery
// Markov-modulated link, and a lossy one whose bad state drops whole
// connections.
func ChaosLinkAxes() []chaos.LinkModel {
	return []chaos.LinkModel{
		{Name: "clean"},
		{
			Name: "jittery",
			States: []chaos.LinkState{
				{Name: "calm", BandwidthMbps: 800, JitterMs: 0.2},
				{Name: "rough", BandwidthMbps: 200, JitterMs: 2},
			},
			Trans:  [][]float64{{0.8, 0.2}, {0.5, 0.5}},
			StepMs: 50,
		},
		{
			Name: "lossy",
			// The good state drops too (short quick-mode runs may never
			// leave it); the bad state merely drops harder.
			States: []chaos.LinkState{
				{Name: "good", BandwidthMbps: 800, DropPerMB: 0.2},
				{Name: "bad", BandwidthMbps: 400, JitterMs: 1, DropPerMB: 0.6},
			},
			Trans:  [][]float64{{0.7, 0.3}, {0.6, 0.4}},
			StepMs: 50,
		},
	}
}

// ChaosDiskAxes returns the destination-disk axis for the full matrix.
func ChaosDiskAxes() []chaos.DiskFault {
	return []chaos.DiskFault{
		{},
		{Name: "slow", WriteDelayMs: 0.1},
		{Name: "flaky", FailEveryN: 97, ShortEveryN: 131},
	}
}

// ChaosPeerAxes returns the hostile-peer axis for the full matrix.
// total sizes the kill/partition trigger points mid-transfer.
func ChaosPeerAxes(total int64) []chaos.PeerFault {
	return []chaos.PeerFault{
		{},
		{Name: "kill-conn", KillDataAfterBytes: total / 3, KillCount: 1},
		{Name: "partition", PartitionAfterBytes: total / 2, PartitionMs: 150},
		{Name: "corrupt", FlipPerMB: 0.5},
	}
}

// quickChaosLoad is the small mixed dataset every quick cell transfers.
func quickChaosLoad() ChaosLoad {
	return ChaosLoad{
		Name: "mixed-4mb",
		Spec: workload.Spec{Kind: "mixed", TotalBytes: 4 << 20, MinBytes: 32 << 10, MaxBytes: 512 << 10, Seed: 11},
	}
}

// QuickChaosMatrix is the PR-blocking 3×3 sub-matrix: three link models
// crossed with three adversaries (benign, flaky disk, connection-killing
// peer) over a small mixed dataset. Runs well under a minute.
func QuickChaosMatrix(seed int64) ChaosMatrix {
	load := quickChaosLoad()
	total := int64(4 << 20)
	adversaries := []struct {
		disk chaos.DiskFault
		peer chaos.PeerFault
	}{
		{},
		{disk: chaos.DiskFault{Name: "flaky", FailEveryN: 97, ShortEveryN: 131}},
		{peer: chaos.PeerFault{Name: "kill-conn", KillDataAfterBytes: total / 3, KillCount: 1}},
	}
	var cells []ChaosCell
	for _, ln := range ChaosLinkAxes() {
		for _, adv := range adversaries {
			cell := ChaosCell{
				Name: strings.Join([]string{axisName(ln.Name), axisName(adv.disk.Name),
					axisName(adv.peer.Name), load.Name}, "/"),
				Link: ln, Disk: adv.disk, Peer: adv.peer, Load: load,
			}
			if adv.peer.KillDataAfterBytes > 0 {
				cell.MinReplans = 1
			}
			cells = append(cells, cell)
		}
	}
	// Fleet cell: a whole-endpoint kill under the lossy link. The failover
	// path — re-place on a live sibling, ledger handoff through the shared
	// store — runs inside the PR-blocking battery, not just the sched
	// package's own tests.
	for _, ln := range ChaosLinkAxes() {
		if ln.Name != "lossy" {
			continue
		}
		cells = append(cells, ChaosCell{
			Name:        strings.Join([]string{ln.Name, "none", "kill-endpoint", load.Name}, "/"),
			Link:        ln,
			Load:        load,
			Fleet:       3,
			MinReplaces: 1,
		})
	}
	return ChaosMatrix{Name: "quick", Seed: seed, Cells: cells}
}

// FullChaosMatrix is the nightly battery: the full cross-product of the
// standard axes over the mixed dataset, an ENOSPC clean-failure column,
// and a pathological-workload sweep (many tiny files, one huge file, a
// deep tree) against the benign and connection-killing adversaries.
func FullChaosMatrix(seed int64) ChaosMatrix {
	load := ChaosLoad{
		Name: "mixed-16mb",
		Spec: workload.Spec{Kind: "mixed", TotalBytes: 16 << 20, MinBytes: 32 << 10, MaxBytes: 1 << 20, Seed: 11},
	}
	total := int64(16 << 20)
	cells := CrossChaosCells(ChaosLinkAxes(), ChaosDiskAxes(), ChaosPeerAxes(total), []ChaosLoad{load})
	// Attempts are cheap (~100-300ms each) next to the 60s cell timeout,
	// and the heavier fault mixes — a corrupting peer re-rolls its flip
	// dice on every re-plan — legitimately need the fail/resume loop more
	// than the default 8 times on an unlucky walk.
	for i := range cells {
		cells[i].MaxAttempts = 20
	}

	// ENOSPC column: the budget cannot hold the dataset, so every cell
	// must fail cleanly with a loadable ledger (CrossChaosCells marks
	// them WantFail).
	cells = append(cells, CrossChaosCells(
		[]chaos.LinkModel{{Name: "clean"}},
		[]chaos.DiskFault{{Name: "enospc", CapacityBytes: total / 2}},
		[]chaos.PeerFault{{}},
		[]ChaosLoad{load})...)

	// Pathological manifests: metadata-heavy shapes under a benign and a
	// connection-killing adversary.
	pathological := []ChaosLoad{
		{Name: "tiny-100k", Spec: workload.Spec{Kind: "large", Count: 100_000, SizeBytes: 64}},
		{Name: "huge-one", Spec: workload.Spec{Kind: "large", Count: 1, SizeBytes: 192 << 20}},
		{Name: "deep-tree", Spec: workload.Spec{Kind: "tree", Count: 2000, Depth: 128, SizeBytes: 4 << 10}},
	}
	for _, ld := range pathological {
		m, err := ld.Spec.Build()
		if err != nil {
			continue
		}
		ltotal := m.TotalBytes()
		peers := []chaos.PeerFault{
			{},
			{Name: "kill-conn", KillDataAfterBytes: ltotal / 3, KillCount: 1},
		}
		sub := CrossChaosCells([]chaos.LinkModel{{Name: "clean"}},
			[]chaos.DiskFault{{}}, peers, []ChaosLoad{ld})
		for i := range sub {
			sub[i].Timeout = 5 * time.Minute
			sub[i].MaxAttempts = 10
		}
		cells = append(cells, sub...)
	}
	return ChaosMatrix{Name: "full", Seed: seed, Cells: cells}
}
