package experiments

import (
	"math"
	"os"
	"strings"
	"testing"

	"automdt/internal/core"
	"automdt/internal/env"
	"automdt/internal/sim"
)

// Mode for tests honours AUTOMDT_MODE=paper for full-fidelity runs.
func testMode() Mode {
	if os.Getenv("AUTOMDT_MODE") == "paper" {
		return Paper
	}
	return Quick
}

func TestTestbedConfigsValid(t *testing.T) {
	for _, tb := range []Testbed{ReadBottleneck(), NetworkBottleneck(), WriteBottleneck(), ConnsBottleneck(), Wan()} {
		if err := tb.Cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", tb.Name, err)
		}
		// NStar must (nearly) saturate the bottleneck on each physical
		// stage: n·TPT ≥ 95% of it (the paper rounds n* = b/TPT, e.g.
		// 1000/195 → 5), with the network stage also bounded by the
		// per-connection ceiling when one is configured.
		for _, st := range []sim.Stage{sim.Read, sim.Network, sim.Write} {
			n := tb.TargetN(st)
			cap := float64(n) * tb.Cfg.TPT[st]
			if st == sim.Network && tb.Cfg.ConnMbps > 0 {
				connCap := tb.Cfg.ConnMbps * float64(tb.NStar.N[env.StageConns])
				if connCap < cap {
					cap = connCap
				}
			}
			if cap < tb.Bottleneck*0.95 {
				t.Fatalf("%s stage %v: n*·rate = %.0f < bottleneck %.0f", tb.Name, st, cap, tb.Bottleneck)
			}
		}
		for i, n := range tb.NStar.N {
			if n > tb.MaxThreads {
				t.Fatalf("%s dim %d: n*=%d exceeds MaxThreads %d", tb.Name, i, n, tb.MaxThreads)
			}
		}
	}
}

func TestFig5ReadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment skipped in -short mode")
	}
	res, err := Fig5Read(testMode())
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: AutoMDT completes the transfer, faster than Marlin.
	if !res.Auto.Run.Completed {
		t.Fatal("AutoMDT did not complete")
	}
	if res.Marlin.Run.Completed && res.Marlin.Run.Ticks < res.Auto.Run.Ticks {
		t.Fatalf("Marlin (%d s) beat AutoMDT (%d s): wrong shape", res.Marlin.Run.Ticks, res.Auto.Run.Ticks)
	}
	// AutoMDT reaches the target concurrency and does so before Marlin
	// (the paper's 6 s vs 29 s claim, loosely).
	if res.Auto.TimeToTarget < 0 {
		t.Fatal("AutoMDT never reached target read concurrency")
	}
	if res.Marlin.TimeToTarget >= 0 && res.Marlin.TimeToTarget < res.Auto.TimeToTarget {
		t.Fatalf("Marlin reached target first (%.0f s vs %.0f s)", res.Marlin.TimeToTarget, res.Auto.TimeToTarget)
	}
}

func TestKSweepShape(t *testing.T) {
	rows := KSweep([]float64{1.001, 1.02, 1.2})
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// More aggressive penalty → no more total threads.
	if rows[0].TotalThreads < rows[1].TotalThreads || rows[1].TotalThreads < rows[2].TotalThreads {
		t.Fatalf("thread counts not monotone in k: %d %d %d",
			rows[0].TotalThreads, rows[1].TotalThreads, rows[2].TotalThreads)
	}
	// k=1.02 keeps ≥85% of the gentle-k throughput with fewer threads.
	if rows[1].Mbps < 0.85*rows[0].Mbps {
		t.Fatalf("k=1.02 throughput %v too far below k=1.001's %v", rows[1].Mbps, rows[0].Mbps)
	}
	// Harsh penalty costs meaningful throughput (the trade-off exists).
	if rows[2].Mbps > rows[0].Mbps {
		t.Fatalf("k=1.2 should not beat k=1.001 (%v vs %v)", rows[2].Mbps, rows[0].Mbps)
	}
}

func TestAblationJointShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment skipped in -short mode")
	}
	res, err := AblationJoint(testMode())
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoMbps < res.JointMbps {
		t.Fatalf("joint GD (%v) outperformed AutoMDT (%v): wrong shape", res.JointMbps, res.AutoMbps)
	}
	if math.IsNaN(res.MarlinMbps) {
		t.Fatal("marlin result NaN")
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment skipped in -short mode")
	}
	res, err := Fig5Read(testMode())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	PrintCompare(&b, res)
	out := b.String()
	for _, want := range []string{"AutoMDT", "Marlin", "TCT", "concurrency trace"} {
		if !strings.Contains(out, want) {
			t.Fatalf("PrintCompare output missing %q:\n%s", want, out)
		}
	}
}

func TestTrainedSystemCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment skipped in -short mode")
	}
	tb := ReadBottleneck()
	a, err := TrainedSystem(tb, testMode(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainedSystem(tb, testMode(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("TrainedSystem not cached")
	}
}

func TestCompareTargetStageSeries(t *testing.T) {
	// Smoke-check stage→series mapping used by runCompare.
	for _, st := range []sim.Stage{sim.Read, sim.Network, sim.Write} {
		name := map[sim.Stage]string{
			sim.Read: "cc_read", sim.Network: "cc_net", sim.Write: "cc_write",
		}[st]
		if name == "" {
			t.Fatalf("no series for stage %v", st)
		}
	}
}

// The conns-bottleneck testbed caps each data connection at 100 Mbps, so
// throughput scales with the conns dimension, not streams: the trained
// policy must discover multi-connection striping (n_c well above 1) and
// approach the 1 Gbps link. This is the acceptance check for the conns
// dimension being a first-class controller knob.
func TestTrainConvergesOnConnsBottleneck(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow; skipped with -short")
	}
	tb := ConnsBottleneck()
	sys, err := TrainedSystem(tb, testMode(), 2)
	if err != nil {
		t.Fatal(err)
	}
	st := &core.SimTransfer{
		Cfg:        tb.Cfg,
		Controller: sys.DeterministicController(),
		TotalMb:    1e12,
		MaxTicks:   120,
		MaxThreads: tb.MaxThreads,
	}
	r := st.Run()
	window := func(name string) float64 {
		pts := r.Rec.Series(name).Points()
		var sum float64
		var n int
		for _, p := range pts {
			if p.T > 60 { // steady state
				sum += p.V
				n++
			}
		}
		if n == 0 {
			t.Fatalf("series %s empty after t=60", name)
		}
		return sum / float64(n)
	}
	conns := window("cc_conns")
	e2e := window("thr_e2e")
	if conns < 4 {
		t.Fatalf("policy holds %.1f data connections at steady state; the 100 Mbps per-conn cap needs many (n*_c=%d)",
			conns, tb.NStar.N[env.StageConns])
	}
	if e2e < 0.75*tb.Bottleneck {
		t.Fatalf("steady-state goodput %.0f Mbps, want ≥75%% of the %.0f Mbps link", e2e, tb.Bottleneck)
	}
	// A single-connection policy tops out at ConnMbps·n_s... clamped by
	// the per-conn ceiling: confirm the testbed actually punishes conns=1
	// so the assertion above is meaningful.
	one := &core.SimTransfer{
		Cfg:        tb.Cfg,
		Controller: staticCC(1),
		TotalMb:    1e12,
		MaxTicks:   40,
		MaxThreads: tb.MaxThreads,
	}
	ro := one.Run()
	pts := ro.Rec.Series("thr_e2e").Points()
	var oneMbps float64
	for _, p := range pts {
		if p.V > oneMbps {
			oneMbps = p.V
		}
	}
	if oneMbps > 150 {
		t.Fatalf("one-connection baseline reached %.0f Mbps; the per-conn cap is not binding", oneMbps)
	}
	if e2e < 3*oneMbps {
		t.Fatalf("trained policy (%.0f Mbps) not clearly above the one-conn ceiling (%.0f Mbps)", e2e, oneMbps)
	}
}
