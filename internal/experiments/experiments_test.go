package experiments

import (
	"math"
	"os"
	"strings"
	"testing"

	"automdt/internal/sim"
)

// Mode for tests honours AUTOMDT_MODE=paper for full-fidelity runs.
func testMode() Mode {
	if os.Getenv("AUTOMDT_MODE") == "paper" {
		return Paper
	}
	return Quick
}

func TestTestbedConfigsValid(t *testing.T) {
	for _, tb := range []Testbed{ReadBottleneck(), NetworkBottleneck(), WriteBottleneck(), Wan()} {
		if err := tb.Cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", tb.Name, err)
		}
		// NStar must (nearly) saturate the bottleneck: nᵢ·TPTᵢ ≥ 95% of it
		// (the paper rounds n* = b/TPT, e.g. 1000/195 → 5).
		for i := 0; i < 3; i++ {
			if got := float64(tb.NStar[i]) * tb.Cfg.TPT[i]; got < tb.Bottleneck*0.95 {
				t.Fatalf("%s stage %d: n*·TPT = %.0f < bottleneck %.0f", tb.Name, i, got, tb.Bottleneck)
			}
			if tb.NStar[i] > tb.MaxThreads {
				t.Fatalf("%s stage %d: n*=%d exceeds MaxThreads %d", tb.Name, i, tb.NStar[i], tb.MaxThreads)
			}
		}
	}
}

func TestFig5ReadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment skipped in -short mode")
	}
	res, err := Fig5Read(testMode())
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: AutoMDT completes the transfer, faster than Marlin.
	if !res.Auto.Run.Completed {
		t.Fatal("AutoMDT did not complete")
	}
	if res.Marlin.Run.Completed && res.Marlin.Run.Ticks < res.Auto.Run.Ticks {
		t.Fatalf("Marlin (%d s) beat AutoMDT (%d s): wrong shape", res.Marlin.Run.Ticks, res.Auto.Run.Ticks)
	}
	// AutoMDT reaches the target concurrency and does so before Marlin
	// (the paper's 6 s vs 29 s claim, loosely).
	if res.Auto.TimeToTarget < 0 {
		t.Fatal("AutoMDT never reached target read concurrency")
	}
	if res.Marlin.TimeToTarget >= 0 && res.Marlin.TimeToTarget < res.Auto.TimeToTarget {
		t.Fatalf("Marlin reached target first (%.0f s vs %.0f s)", res.Marlin.TimeToTarget, res.Auto.TimeToTarget)
	}
}

func TestKSweepShape(t *testing.T) {
	rows := KSweep([]float64{1.001, 1.02, 1.2})
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// More aggressive penalty → no more total threads.
	if rows[0].TotalThreads < rows[1].TotalThreads || rows[1].TotalThreads < rows[2].TotalThreads {
		t.Fatalf("thread counts not monotone in k: %d %d %d",
			rows[0].TotalThreads, rows[1].TotalThreads, rows[2].TotalThreads)
	}
	// k=1.02 keeps ≥85% of the gentle-k throughput with fewer threads.
	if rows[1].Mbps < 0.85*rows[0].Mbps {
		t.Fatalf("k=1.02 throughput %v too far below k=1.001's %v", rows[1].Mbps, rows[0].Mbps)
	}
	// Harsh penalty costs meaningful throughput (the trade-off exists).
	if rows[2].Mbps > rows[0].Mbps {
		t.Fatalf("k=1.2 should not beat k=1.001 (%v vs %v)", rows[2].Mbps, rows[0].Mbps)
	}
}

func TestAblationJointShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment skipped in -short mode")
	}
	res, err := AblationJoint(testMode())
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoMbps < res.JointMbps {
		t.Fatalf("joint GD (%v) outperformed AutoMDT (%v): wrong shape", res.JointMbps, res.AutoMbps)
	}
	if math.IsNaN(res.MarlinMbps) {
		t.Fatal("marlin result NaN")
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment skipped in -short mode")
	}
	res, err := Fig5Read(testMode())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	PrintCompare(&b, res)
	out := b.String()
	for _, want := range []string{"AutoMDT", "Marlin", "TCT", "concurrency trace"} {
		if !strings.Contains(out, want) {
			t.Fatalf("PrintCompare output missing %q:\n%s", want, out)
		}
	}
}

func TestTrainedSystemCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment skipped in -short mode")
	}
	tb := ReadBottleneck()
	a, err := TrainedSystem(tb, testMode(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainedSystem(tb, testMode(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("TrainedSystem not cached")
	}
}

func TestCompareTargetStageSeries(t *testing.T) {
	// Smoke-check stage→series mapping used by runCompare.
	for _, st := range []sim.Stage{sim.Read, sim.Network, sim.Write} {
		name := map[sim.Stage]string{
			sim.Read: "cc_read", sim.Network: "cc_net", sim.Write: "cc_write",
		}[st]
		if name == "" {
			t.Fatalf("no series for stage %v", st)
		}
	}
}
