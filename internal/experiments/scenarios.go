// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) against the emulated testbeds described in DESIGN.md:
// Fig. 3 (AutoMDT vs Marlin on the NCSA→TACC-like link), Fig. 4
// (continuous vs discrete action-space training curves), Fig. 5 (the
// three bottleneck scenarios), Table I (end-to-end speed vs Globus and
// Marlin), plus the §V-C fine-tuning experiment and the §III/§IV-B
// ablations.
package experiments

import (
	"math/rand"
	"sync"

	"automdt/internal/core"
	"automdt/internal/env"
	"automdt/internal/marlin"
	"automdt/internal/probe"
	"automdt/internal/rl"
	"automdt/internal/sim"
	"automdt/internal/static"
)

// Mode selects experiment fidelity.
type Mode int

const (
	// Quick uses small networks and short training so the whole suite
	// runs in seconds-to-minutes; the figures keep their shape.
	Quick Mode = iota
	// Paper uses the paper's architecture (256-wide residual networks)
	// and episode budgets (tens of thousands); expect the ~45-minute
	// training times the paper reports.
	Paper
)

// Testbed is one emulated end-to-end path with a known optimal solution.
type Testbed struct {
	Name string
	// Cfg is the ground-truth dynamics (per-stream caps in Mbps,
	// aggregate bandwidths, staging capacities in Mb).
	Cfg sim.Config
	// MaxThreads bounds per-stage concurrency.
	MaxThreads int
	// NStar is the analytically optimal stage tuple ⟨read, conns,
	// streams-per-conn, write⟩. Testbeds without a per-connection ceiling
	// optimize at one connection — extra sockets cost utility without
	// buying throughput.
	NStar env.Action
	// Bottleneck is the end-to-end capacity in Mbps.
	Bottleneck float64
}

// TargetN returns the optimal concurrency the figure experiments track
// for a physical stage: thread counts for read and write, total network
// workers (conns·streams) for the network stage.
func (tb Testbed) TargetN(st sim.Stage) int {
	switch st {
	case sim.Read:
		return tb.NStar.N[env.StageRead]
	case sim.Write:
		return tb.NStar.N[env.StageWrite]
	default:
		return tb.NStar.NetWorkers()
	}
}

// ReadBottleneck is the §V-B-1 scenario: read threads throttled to
// 80 Mbps, network 160, write 200, on a 1 Gbps link → optimum ⟨13,7,5⟩.
func ReadBottleneck() Testbed {
	return Testbed{
		Name: "read-bottleneck",
		Cfg: sim.Config{
			TPT:            [3]float64{80, 160, 200},
			Bandwidth:      [3]float64{1000, 1000, 1000},
			SenderBufCap:   500,
			ReceiverBufCap: 500,
			ChunkMb:        8,
		},
		MaxThreads: 20,
		NStar:      env.ActionOf(13, 1, 7, 5),
		Bottleneck: 1000,
	}
}

// NetworkBottleneck throttles streams to 205/75/195 Mbps → optimum
// ⟨5,14,5⟩.
func NetworkBottleneck() Testbed {
	return Testbed{
		Name: "network-bottleneck",
		Cfg: sim.Config{
			TPT:            [3]float64{205, 75, 195},
			Bandwidth:      [3]float64{1000, 1000, 1000},
			SenderBufCap:   500,
			ReceiverBufCap: 500,
			ChunkMb:        8,
		},
		MaxThreads: 20,
		NStar:      env.ActionOf(5, 1, 14, 5),
		Bottleneck: 1000,
	}
}

// WriteBottleneck throttles streams to 200/150/70 Mbps → optimum ⟨5,7,15⟩.
func WriteBottleneck() Testbed {
	return Testbed{
		Name: "write-bottleneck",
		Cfg: sim.Config{
			TPT:            [3]float64{200, 150, 70},
			Bandwidth:      [3]float64{1000, 1000, 1000},
			SenderBufCap:   500,
			ReceiverBufCap: 500,
			ChunkMb:        8,
		},
		MaxThreads: 20,
		NStar:      env.ActionOf(5, 1, 7, 15),
		Bottleneck: 1000,
	}
}

// ConnsBottleneck caps each data connection at 100 Mbps on a 1 Gbps
// path: saturating it takes ten parallel connections (one stream each —
// per-stream throttling at 150 Mbps never binds below the connection
// ceiling), the scenario where the conns dimension, not the stream
// count, is the lever the controller must find → optimum ⟨5,10,1,5⟩.
func ConnsBottleneck() Testbed {
	return Testbed{
		Name: "conns-bottleneck",
		Cfg: sim.Config{
			TPT:            [3]float64{200, 150, 200},
			Bandwidth:      [3]float64{1000, 1000, 1000},
			ConnMbps:       100,
			SenderBufCap:   500,
			ReceiverBufCap: 500,
			ChunkMb:        8,
		},
		MaxThreads: 20,
		NStar:      env.ActionOf(5, 10, 1, 5),
		Bottleneck: 1000,
	}
}

// Wan is the NCSA→TACC-like high-bandwidth path used for Fig. 3 and
// Table I: a 25 Gbps link with per-stream network throttling at 1 Gbps
// (so ~25 network streams saturate it) and faster per-thread I/O.
func Wan() Testbed {
	return Testbed{
		Name: "wan-ncsa-tacc",
		Cfg: sim.Config{
			TPT:            [3]float64{2800, 1250, 2400},
			Bandwidth:      [3]float64{26000, 25000, 26000},
			SenderBufCap:   12000,
			ReceiverBufCap: 12000,
			ChunkMb:        64,
		},
		MaxThreads: 32,
		NStar:      env.ActionOf(9, 1, 20, 11),
		Bottleneck: 25000,
	}
}

// trainOpts returns the core pipeline options for the given fidelity.
func trainOpts(tb Testbed, mode Mode, seed int64) core.Options {
	opts := core.Options{
		MaxThreads:    tb.MaxThreads,
		SenderBufMb:   tb.Cfg.SenderBufCap,
		ReceiverBufMb: tb.Cfg.ReceiverBufCap,
		Seed:          seed,
		// Degrade stage rates by up to 70% on random episodes so the
		// policy learns re-expansion under slowed conditions (the
		// Adaptation experiment cuts network per-stream rate ~3×).
		RateDrift: 0.7,
	}
	switch mode {
	case Paper:
		// Paper architecture and budget (Algorithm 2 defaults).
		opts.Train = rl.TrainConfig{}
	default:
		opts.Net = rl.NetConfig{Hidden: 32, PolicyBlocks: 1, ValueBlocks: 1}
		opts.Train = rl.TrainConfig{
			Episodes:      3000,
			LR:            1e-3,
			UpdateEpochs:  4,
			StagnantLimit: 300,
			// The paper's 0.1 entropy bonus anneals over tens of
			// thousands of episodes; with Quick budgets a smaller bonus
			// lets the action noise shrink in time.
			EntropyCoef: 0.01,
			OOBPenalty:  1.0,
		}
	}
	return opts
}

// paperMarlin builds the Marlin baseline calibrated to its published
// behaviour: each configuration held for 2 one-second ticks (Marlin needs
// a few seconds of stable metrics per measurement), conservative steps,
// and a 3% utility-noise floor. On the WAN testbed this lands within a
// few percent of the paper's measured Marlin throughput.
func paperMarlin() *marlin.Optimizer {
	m := marlin.New()
	m.Hold = 2
	m.MaxStep = 2
	m.Tol = 0.03
	return m
}

// staticCC returns the fixed-concurrency monolithic baseline.
func staticCC(n int) env.Controller { return static.New(n) }

// probeRunnerFor returns a probe runner over a fresh ground-truth
// simulator of the testbed.
func probeRunnerFor(tb Testbed) probe.Runner {
	return probe.SimRunner{Sim: sim.New(tb.Cfg)}
}

// trainCache memoizes trained systems per (testbed, mode, seed) so the
// bench suite trains each scenario once per process.
var trainCache sync.Map

// TrainedSystem probes the testbed and trains an AutoMDT agent for it,
// caching the result.
func TrainedSystem(tb Testbed, mode Mode, seed int64) (*core.System, error) {
	type key struct {
		name string
		mode Mode
		seed int64
	}
	k := key{tb.Name, mode, seed}
	if v, ok := trainCache.Load(k); ok {
		return v.(*core.System), nil
	}
	rng := rand.New(rand.NewSource(seed))
	probeSteps := 300
	if mode == Paper {
		probeSteps = 600 // the paper's 10-minute random-threads run
	}
	sys, err := core.ProbeAndTrain(
		probeRunnerFor(tb),
		rng,
		probe.Options{Steps: probeSteps, MaxThreads: tb.MaxThreads},
		trainOpts(tb, mode, seed),
	)
	if err != nil {
		return nil, err
	}
	trainCache.Store(k, sys)
	return sys, nil
}
