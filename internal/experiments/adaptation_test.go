package experiments

import (
	"strings"
	"testing"
)

func TestAdaptationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment skipped in -short mode")
	}
	res, err := Adaptation(testMode())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	byName := map[string]AdaptationRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	auto, static := byName["AutoMDT"], byName["Static cc=13"]

	// The static configuration must lose throughput and never recover.
	if static.PostMbps >= 0.8*static.PreMbps {
		t.Fatalf("static should be degraded: pre %v post %v", static.PreMbps, static.PostMbps)
	}
	if static.RecoverySeconds >= 0 {
		t.Fatal("static configuration cannot recover but did")
	}
	// AutoMDT must recover and end up clearly above the static baseline.
	if auto.RecoverySeconds < 0 {
		t.Fatal("AutoMDT never recovered")
	}
	if auto.PostMbps <= static.PostMbps {
		t.Fatalf("AutoMDT post-change %v not above static %v", auto.PostMbps, static.PostMbps)
	}

	var b strings.Builder
	PrintAdaptation(&b, res)
	if !strings.Contains(b.String(), "AutoMDT") {
		t.Fatal("printer output incomplete")
	}
}
