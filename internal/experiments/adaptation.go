package experiments

import (
	"fmt"
	"io"

	"automdt/internal/core"
	"automdt/internal/env"
	"automdt/internal/metrics"
	"automdt/internal/sim"
)

// AdaptationResult reports the mid-transfer condition-change experiment
// supporting the paper's claim that the agent "adapts quickly to changing
// system and network conditions".
type AdaptationResult struct {
	Testbed Testbed
	// ChangeAt is the simulated second at which the network stage's
	// per-stream rate is cut (background traffic arrives).
	ChangeAt int
	// Rows, one per optimizer.
	Rows []AdaptationRow
}

// AdaptationRow is one optimizer's adaptation metrics.
type AdaptationRow struct {
	Name string
	// PreMbps is the mean end-to-end rate in the stable window before
	// the change.
	PreMbps float64
	// PostMbps is the mean end-to-end rate after the change, once
	// recovered.
	PostMbps float64
	// RecoverySeconds is the time from the change until the end-to-end
	// rate first reaches 85% of the new achievable bottleneck, or -1.
	RecoverySeconds float64
	// NetConcurrencyDelta is the change in network concurrency from the
	// pre-change to the post-change steady state (the adaptation the
	// modular architecture should make: more streams when each gets
	// slower).
	NetConcurrencyDelta float64
}

// Adaptation cuts the per-stream network rate from 160 to 50 Mbps
// mid-transfer on the read-bottleneck testbed and measures how each
// optimizer re-converges. After the change the network stage needs 20
// streams to approach the link; a fixed configuration is stuck at 650
// Mbps.
func Adaptation(mode Mode) (*AdaptationResult, error) {
	tb := ReadBottleneck()
	sys, err := TrainedSystem(tb, mode, 2)
	if err != nil {
		return nil, err
	}
	const changeAt = 60
	const horizon = 240

	run := func(name string, ctrl env.Controller) AdaptationRow {
		st := &core.SimTransfer{
			Cfg:        tb.Cfg,
			Controller: ctrl,
			TotalMb:    1e12, // open-ended; the horizon bounds the run
			MaxTicks:   horizon,
			MaxThreads: tb.MaxThreads,
			OnTick: func(tick int, s *sim.Simulator) {
				if tick == changeAt {
					// Heavy background traffic cuts each network stream's
					// share from 160 to 50 Mbps: 20 streams (the per-stage
					// bound) are now needed to approach the 1 Gbps link,
					// so any optimizer holding ~13 streams loses a third
					// of its throughput until it re-converges.
					s.SetTPT(sim.Network, 50)
				}
			},
		}
		r := st.Run()
		e2e := r.Rec.Series("thr_e2e").Points()
		ccNet := r.Rec.Series("cc_net").Points()

		window := func(pts []metrics.Point, lo, hi int) []float64 {
			var out []float64
			for _, p := range pts {
				if p.T > float64(lo) && p.T <= float64(hi) {
					out = append(out, p.V)
				}
			}
			return out
		}
		row := AdaptationRow{Name: name}
		row.PreMbps = metrics.Summarize(window(e2e, changeAt-30, changeAt)).Mean
		row.PostMbps = metrics.Summarize(window(e2e, horizon-60, horizon)).Mean
		// New achievable bottleneck is unchanged (read at 1000 Mbps cap is
		// still the binding constraint if the optimizer raises n_n), so
		// recovery target is 85% of the pre-change rate.
		target := 0.85 * row.PreMbps
		row.RecoverySeconds = -1
		for _, p := range e2e {
			if p.T > float64(changeAt)+1 && p.V >= target {
				row.RecoverySeconds = p.T - float64(changeAt)
				break
			}
		}
		pre := metrics.Summarize(window(ccNet, changeAt-30, changeAt)).Mean
		post := metrics.Summarize(window(ccNet, horizon-60, horizon)).Mean
		row.NetConcurrencyDelta = post - pre
		return row
	}

	res := &AdaptationResult{Testbed: tb, ChangeAt: changeAt}
	res.Rows = append(res.Rows,
		run("AutoMDT", sys.DeterministicController()),
		run("Marlin", paperMarlin()),
		run("Static cc=13", staticCC(13)),
	)
	return res, nil
}

// PrintAdaptation renders the adaptation experiment.
func PrintAdaptation(w io.Writer, a *AdaptationResult) {
	fmt.Fprintf(w, "== Adaptation: network per-stream rate cut 160→50 Mbps at t=%d s ==\n", a.ChangeAt)
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s\n", "optimizer", "preMbps", "postMbps", "recover_s", "Δn_net")
	for _, r := range a.Rows {
		rec := "never"
		if r.RecoverySeconds >= 0 {
			rec = fmt.Sprintf("%.0f", r.RecoverySeconds)
		}
		fmt.Fprintf(w, "%-14s %10.0f %10.0f %10s %+10.1f\n",
			r.Name, r.PreMbps, r.PostMbps, rec, r.NetConcurrencyDelta)
	}
}
