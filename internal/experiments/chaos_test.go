package experiments

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"automdt/internal/chaos"
)

// TestQuickChaosMatrix is the PR-blocking robustness gate: the 3×3
// quick sub-matrix must pass every cell invariant, and the
// connection-kill cells must demonstrably exercise the protocol ≥3
// targeted re-plan path (re-plan events in the flight trace — enforced
// per cell via MinReplans, asserted again here for the matrix).
func TestQuickChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix needs live loopback transfers")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	m := QuickChaosMatrix(1)
	if len(m.Cells) < 9 {
		t.Fatalf("quick matrix has %d cells, want ≥9", len(m.Cells))
	}
	rep := RunChaosMatrix(ctx, m, "quick", io.Discard)
	if len(rep.Cells) != len(m.Cells) {
		t.Fatalf("ran %d of %d cells", len(rep.Cells), len(m.Cells))
	}
	killCells, killReplans, fleetCells, fleetReplaces := 0, 0, 0, 0
	for _, c := range rep.Cells {
		if !c.Pass {
			t.Errorf("cell %s failed: %s", c.Cell, c.Failure)
		}
		if c.Peer == "kill-conn" {
			killCells++
			killReplans += c.ReplanEvents
			if c.DetectMs <= 0 {
				t.Errorf("cell %s: no detection latency despite an injected kill", c.Cell)
			}
		}
		if c.Peer == "kill-endpoint" {
			fleetCells++
			fleetReplaces += c.ReplaceEvents
			if c.Failovers < 1 {
				t.Errorf("cell %s: no fleet failovers despite a whole-endpoint kill", c.Cell)
			}
		}
	}
	if killCells == 0 {
		t.Fatal("quick matrix has no kill-conn cells")
	}
	if killReplans == 0 {
		t.Fatal("kill-conn cells produced no re-plan events in the flight trace")
	}
	if fleetCells == 0 {
		t.Fatal("quick matrix has no whole-endpoint-kill fleet cells")
	}
	if fleetReplaces == 0 {
		t.Fatal("fleet cells produced no re-place events in the fleet flight trace")
	}
	var sb strings.Builder
	PrintChaosReport(&sb, rep)
	if !strings.Contains(sb.String(), "matrix verdict: PASS") {
		t.Fatalf("report rendering disagrees with results:\n%s", sb.String())
	}
}

// TestChaosCellWantFailENOSPC pins the clean-failure arm of the
// invariant: a destination whose ENOSPC budget cannot hold the dataset
// must fail every attempt cleanly and leave a loadable ledger.
func TestChaosCellWantFailENOSPC(t *testing.T) {
	if testing.Short() {
		t.Skip("needs live loopback transfers")
	}
	cell := ChaosCell{
		Name: "clean/enospc/none/mixed-4mb",
		Disk: chaos.DiskFault{Name: "enospc", CapacityBytes: 2 << 20},
		Load: quickChaosLoad(),
		Seed: 7, WantFail: true, MaxAttempts: 3, Timeout: time.Minute,
	}
	res := RunChaosCell(context.Background(), cell)
	if !res.Pass {
		t.Fatalf("ENOSPC cell failed its invariant: %s", res.Failure)
	}
	if res.Completed {
		t.Fatal("transfer completed past an impossible byte budget")
	}
	if res.DiskFaults == 0 {
		t.Fatal("no disk faults were injected")
	}
}

// TestCrossChaosCellsDerivations pins the matrix constructor's derived
// expectations: ENOSPC budgets under the dataset size become WantFail
// cells, kill/partition peers demand re-plan evidence.
func TestCrossChaosCellsDerivations(t *testing.T) {
	load := quickChaosLoad()
	cells := CrossChaosCells(
		[]chaos.LinkModel{{Name: "clean"}},
		[]chaos.DiskFault{{}, {Name: "enospc", CapacityBytes: 1 << 20}},
		[]chaos.PeerFault{{}, {Name: "kill-conn", KillDataAfterBytes: 1 << 20}},
		[]ChaosLoad{load})
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	byName := map[string]ChaosCell{}
	for _, c := range cells {
		byName[c.Name] = c
	}
	if c := byName["clean/enospc/none/mixed-4mb"]; !c.WantFail {
		t.Error("under-capacity ENOSPC cell not marked WantFail")
	}
	if c := byName["clean/none/kill-conn/mixed-4mb"]; c.MinReplans < 1 {
		t.Error("kill cell does not demand re-plan evidence")
	}
	if c := byName["clean/enospc/kill-conn/mixed-4mb"]; c.MinReplans != 0 {
		t.Error("WantFail cell must not demand re-plan evidence")
	}
	// Distinct cells get distinct seeds and session ids.
	s1 := cellSeed(1, cells[0].Name)
	s2 := cellSeed(1, cells[1].Name)
	if s1 == s2 {
		t.Error("cell seeds collide")
	}
	if chaosSessionID(cells[0].Name, s1) == chaosSessionID(cells[1].Name, s2) {
		t.Error("session ids collide")
	}
}
