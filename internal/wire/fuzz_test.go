package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func fuzzAlloc(n int) []byte { return make([]byte, n) }

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must
// never panic, never allocate beyond MaxChunk for a corrupt length, and
// anything it accepts must re-encode and re-decode to the same frame.
func FuzzReadFrame(f *testing.F) {
	// Valid frames, plain and checksummed.
	var plain, summed bytes.Buffer
	WriteFrame(&plain, Frame{FileID: 3, Offset: 512, Data: []byte("hello wire")})
	WriteFrame(&summed, Frame{FileID: 9, Offset: 1 << 40, Data: []byte("check me"), Checksum: true})
	f.Add(plain.Bytes())
	f.Add(summed.Bytes())
	// End-of-stream marker, truncated header, truncated payload, and a
	// header claiming an absurd length.
	var end bytes.Buffer
	WriteEnd(&end)
	f.Add(end.Bytes())
	f.Add(plain.Bytes()[:FrameHeaderSize-2])
	f.Add(plain.Bytes()[:FrameHeaderSize+3])
	huge := make([]byte, FrameHeaderSize)
	binary.BigEndian.PutUint32(huge[12:16], MaxChunk+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var alloced int
		alloc := func(n int) []byte {
			alloced = n
			return make([]byte, n)
		}
		got, err := ReadFrame(bytes.NewReader(data), alloc)
		if alloced > MaxChunk {
			t.Fatalf("decoder allocated %d > MaxChunk for corrupt input", alloced)
		}
		if err != nil {
			return
		}
		// Accepted frame: the round trip must be lossless.
		var re bytes.Buffer
		if err := WriteFrame(&re, got); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		back, err := ReadFrame(bytes.NewReader(re.Bytes()), fuzzAlloc)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if back.FileID != got.FileID || back.Offset != got.Offset ||
			back.Checksum != got.Checksum || !bytes.Equal(back.Data, got.Data) {
			t.Fatalf("round trip mismatch: %+v != %+v", back, got)
		}
	})
}

// FuzzFrameRoundTrip drives the encoder with arbitrary frame fields and
// checks the decoder recovers them exactly — and that flipping any
// payload bit of a checksummed frame is always rejected.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint32(0), int64(0), []byte(nil), false, uint16(0))
	f.Add(uint32(12), int64(1<<30), []byte("payload bytes"), true, uint16(3))
	f.Add(EndStream-1, int64(-1), bytes.Repeat([]byte{0xAA}, 300), true, uint16(299))

	f.Fuzz(func(t *testing.T, fileID uint32, offset int64, payload []byte, checksum bool, flip uint16) {
		if fileID == EndStream {
			fileID = 0 // reserved marker, not an encodable data frame
		}
		in := Frame{FileID: fileID, Offset: offset, Data: payload, Checksum: checksum}
		var buf bytes.Buffer
		var fw FrameWriter
		if err := fw.Write(&buf, in); err != nil {
			t.Fatalf("encode: %v", err)
		}
		encoded := buf.Bytes()

		var fr FrameReader
		out, err := fr.Read(bytes.NewReader(encoded), fuzzAlloc)
		if err != nil {
			t.Fatalf("decode of valid frame: %v", err)
		}
		if out.FileID != in.FileID || out.Offset != in.Offset || out.Checksum != in.Checksum {
			t.Fatalf("header mismatch: %+v != %+v", out, in)
		}
		if !bytes.Equal(out.Data, in.Data) {
			t.Fatal("payload mismatch")
		}

		// Every truncation of a data frame must error, never hang or
		// fabricate a frame (except the empty prefix, which is a clean
		// EOF at a frame boundary).
		if _, err := ReadFrame(bytes.NewReader(encoded[:len(encoded)/2]), fuzzAlloc); err == nil && len(encoded) >= 2 {
			t.Fatal("truncated frame decoded without error")
		}

		// Checksummed payload corruption must be detected, whichever
		// byte is hit.
		if checksum && len(payload) > 0 {
			corrupt := bytes.Clone(encoded)
			corrupt[FrameHeaderSize+int(flip)%len(payload)] ^= 0x01
			if _, err := ReadFrame(bytes.NewReader(corrupt), fuzzAlloc); err == nil {
				t.Fatal("corrupted checksummed payload accepted")
			}
		}
	})
}

// FuzzReadFrame must treat a clean close at a frame boundary as EOF so
// pipelines can distinguish "done" from "corrupt".
func TestReadFrameCleanEOFContract(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil), fuzzAlloc); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	var end bytes.Buffer
	WriteEnd(&end)
	if _, err := ReadFrame(bytes.NewReader(end.Bytes()), fuzzAlloc); !errors.Is(err, io.EOF) {
		t.Fatalf("end marker: %v, want io.EOF", err)
	}
}
