// Package wire defines the on-the-wire protocol between the sender and
// receiver DTN processes: a binary chunk framing for the parallel data
// connections, and a gob-encoded control channel (the "RPC channel" of
// §IV-D-1) carrying the session handshake, the receiver's
// staging-buffer occupancy reports, and the sender's write-concurrency
// commands.
//
// The control channel is versioned (see ProtoVersion). Generation 0 is
// the original one-shot Hello-then-statuses exchange; generation 1 adds
// resumable sessions (the Welcome advertises the receiver's chunk
// ledger, FileSum/SumsDone stream end-to-end file CRCs); generation 2
// adds multi-session endpoints (the Welcome carries a DataToken that
// every data connection echoes in a fixed preamble, letting one receiver
// demultiplex the data streams of many concurrent sessions). Receivers
// negotiate down, so newer receivers serve older senders.
//
// Data frames are length-prefixed chunks with optional CRC-32C payload
// checksums; FrameReader and FrameWriter are the allocation-free hot
// path (vectored header+payload writes, persistent header scratch). The
// crc.go file supplies the GF(2) CRC combine used to fold per-chunk sums
// into whole-file checksums without a second pass over the data.
//
// docs/PROTOCOL.md specifies every message, frame layout, and the
// negotiation rules in full.
package wire
