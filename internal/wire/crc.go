package wire

import "hash/crc32"

// castagnoliPoly is the reflected CRC-32C polynomial, matching the
// crc32.Castagnoli table the frame codec uses.
const castagnoliPoly = 0x82F63B78

// PayloadCRC returns the CRC-32C of p — the same digest the frame codec
// writes into checksummed headers. Exposed so the engine can record
// per-chunk sums in the session ledger without re-deriving the table.
func PayloadCRC(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// gf2MatrixTimes multiplies the 32×32 GF(2) matrix mat by the column
// vector vec.
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i++ {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		vec >>= 1
	}
	return sum
}

// gf2MatrixSquare sets square = mat·mat.
func gf2MatrixSquare(square, mat *[32]uint32) {
	for i := range square {
		square[i] = gf2MatrixTimes(mat, mat[i])
	}
}

// CRCOperator is the GF(2) matrix advancing a CRC-32C through a fixed
// number of zero bytes. Build one with MakeCRCOperator and reuse it to
// fold many same-length chunks — rebuilding the matrix per chunk costs
// ~40 matrix squarings each time, while applying a prebuilt operator is
// 32 conditional xors.
type CRCOperator [32]uint32

// MakeCRCOperator returns the operator for n zero bytes.
func MakeCRCOperator(n int64) CRCOperator {
	var even, odd, out [32]uint32

	// odd = operator matrix for one zero bit.
	odd[0] = castagnoliPoly
	row := uint32(1)
	for i := 1; i < 32; i++ {
		odd[i] = row
		row <<= 1
	}
	// Identity, in case n has no set bits (n <= 0).
	row = 1
	for i := 0; i < 32; i++ {
		out[i] = row
		row <<= 1
	}
	if n <= 0 {
		return out
	}
	// even = two zero bits, odd = four.
	gf2MatrixSquare(&even, &odd)
	gf2MatrixSquare(&odd, &even)

	// Compose the operators for the set bits of n, in zero *bytes*:
	// each iteration squares (starting at 8 bits = 1 byte).
	cur := &odd
	next := &even
	first := true
	for n > 0 {
		gf2MatrixSquare(next, cur)
		cur, next = next, cur
		if n&1 != 0 {
			if first {
				out = *cur
				first = false
			} else {
				var composed [32]uint32
				for i := 0; i < 32; i++ {
					composed[i] = gf2MatrixTimes(cur, out[i])
				}
				out = composed
			}
		}
		n >>= 1
	}
	return out
}

// Apply advances crc through the operator's zero-byte span.
func (op *CRCOperator) Apply(crc uint32) uint32 {
	return gf2MatrixTimes((*[32]uint32)(op), crc)
}

// CombineCRC returns CRC(A||B) given crcA = CRC(A), crcB = CRC(B), and
// lenB = len(B), without touching the data (the zlib crc32_combine
// construction: advance crcA through lenB zero bytes, then xor in crcB).
// It lets both transfer ends derive a whole-file CRC from per-chunk CRCs
// accumulated out of order, so end-to-end file verification costs no
// second pass over the data. To fold many same-length chunks, prefer
// FoldChunkCRCs, which builds the zero-byte operator once.
func CombineCRC(crcA, crcB uint32, lenB int64) uint32 {
	if lenB <= 0 {
		return crcA
	}
	op := MakeCRCOperator(lenB)
	return op.Apply(crcA) ^ crcB
}

// BatchCRC appends to dst the per-chunk CRC-32C sums of p tiled into
// chunk-sized pieces (the last piece may be short) and returns the
// extended slice. The kio read path hashes a whole contiguous run of
// chunks in one call — one pass over one buffer with the hardware
// CRC-32C kernel, instead of one PayloadCRC call per chunk — and the
// per-piece sums still feed the session ledger and FileSum fold
// unchanged.
func BatchCRC(dst []uint32, p []byte, chunk int) []uint32 {
	if chunk <= 0 {
		if len(p) == 0 {
			return dst
		}
		return append(dst, crc32.Checksum(p, castagnoli))
	}
	for len(p) > 0 {
		n := chunk
		if n > len(p) {
			n = len(p)
		}
		dst = append(dst, crc32.Checksum(p[:n], castagnoli))
		p = p[n:]
	}
	return dst
}

// FoldChunkCRCs combines per-chunk CRC-32C sums — chunkBytes-sized
// chunks tiling total bytes, the last one possibly short — into the
// whole-buffer CRC. This is the shared fold behind the sender's FileSum
// announcements and the receiver ledger's commit-time verification.
func FoldChunkCRCs(sums []uint32, chunkBytes, total int64) uint32 {
	if len(sums) == 0 {
		return 0
	}
	crc := sums[0]
	if len(sums) == 1 {
		return crc
	}
	full := MakeCRCOperator(chunkBytes)
	for i := 1; i < len(sums); i++ {
		clen := total - int64(i)*chunkBytes
		if clen >= chunkBytes {
			crc = full.Apply(crc) ^ sums[i]
		} else {
			crc = CombineCRC(crc, sums[i], clen) // odd tail: one-off operator
		}
	}
	return crc
}
