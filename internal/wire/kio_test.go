package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// BatchCRC hashes a contiguous run in one pass; the per-piece sums must
// match chunk-at-a-time PayloadCRC calls exactly, and folding them must
// reproduce the whole-run CRC, or the kio read path would announce file
// sums the portable receiver rejects.
func TestBatchCRCMatchesPerChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, total := range []int{0, 1, 64, 100, 256, 1000, 64<<10 + 13} {
		const chunk = 256
		p := make([]byte, total)
		rng.Read(p)

		sums := BatchCRC(nil, p, chunk)
		var want []uint32
		for off := 0; off < total; off += chunk {
			end := off + chunk
			if end > total {
				end = total
			}
			want = append(want, PayloadCRC(p[off:end]))
		}
		if len(sums) != len(want) {
			t.Fatalf("total=%d: %d sums, want %d", total, len(sums), len(want))
		}
		for i := range want {
			if sums[i] != want[i] {
				t.Fatalf("total=%d: sum[%d]=%08x, want %08x", total, i, sums[i], want[i])
			}
		}
		if total > 0 {
			if got, want := FoldChunkCRCs(sums, chunk, int64(total)), PayloadCRC(p); got != want {
				t.Fatalf("total=%d: folded CRC %08x, want whole-run %08x", total, got, want)
			}
		}
	}

	// chunk<=0 degenerates to one whole-buffer sum.
	p := []byte("degenerate")
	if sums := BatchCRC(nil, p, 0); len(sums) != 1 || sums[0] != PayloadCRC(p) {
		t.Fatalf("chunk=0 sums %v", sums)
	}
	if sums := BatchCRC(nil, nil, 0); sums != nil {
		t.Fatalf("empty payload produced sums %v", sums)
	}
}

// WriteBatch is an optimization, not a format: a batched write must put
// the exact bytes on the wire that sequential Write calls would, for any
// mix of plain, checksummed, and empty-payload frames.
func TestWriteBatchByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	payload := func(n int) []byte {
		p := make([]byte, n)
		rng.Read(p)
		return p
	}
	frames := []Frame{
		{FileID: 1, Offset: 0, Data: payload(64 << 10)},
		{FileID: 1, Offset: 64 << 10, Data: payload(100)},
		{FileID: 2, Offset: 0, Data: nil}, // empty file announcement
		{FileID: 3, Offset: 0, Data: payload(512), Checksum: true},
	}
	// Precomputed-sum variant of the checksummed frame.
	frames = append(frames, Frame{
		FileID: 3, Offset: 512, Data: payload(512),
		Checksum: true, Sum: 0, SumKnown: false,
	})
	frames[4].Sum = PayloadCRC(frames[4].Data)
	frames[4].SumKnown = true

	var fw FrameWriter
	var batched, sequential bytes.Buffer
	if err := fw.WriteBatch(&batched, frames); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := fw.Write(&sequential, f); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(batched.Bytes(), sequential.Bytes()) {
		t.Fatalf("batched write differs from sequential (%d vs %d bytes)",
			batched.Len(), sequential.Len())
	}

	// The batch must re-read cleanly frame by frame.
	var reader FrameReader
	alloc := func(n int) []byte { return make([]byte, n) }
	for i := range frames {
		got, err := reader.Read(&batched, alloc)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.FileID != frames[i].FileID || got.Offset != frames[i].Offset ||
			!bytes.Equal(got.Data, frames[i].Data) {
			t.Fatalf("frame %d round-trip mismatch", i)
		}
	}

	// Degenerate batches: empty is a no-op, singleton equals Write.
	var empty bytes.Buffer
	if err := fw.WriteBatch(&empty, nil); err != nil || empty.Len() != 0 {
		t.Fatalf("empty batch wrote %d bytes, err %v", empty.Len(), err)
	}
	var one, oneSeq bytes.Buffer
	if err := fw.WriteBatch(&one, frames[:1]); err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(&oneSeq, frames[0]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), oneSeq.Bytes()) {
		t.Fatal("singleton batch differs from Write")
	}
}

// A kio header announces a kernel-owned payload the sender streams
// separately; on the wire it must be indistinguishable from the header
// of an equivalent userspace frame, so a portable receiver needs no
// special case.
func TestKioHeaderMatchesPlainFrameHeader(t *testing.T) {
	var kio, plain [FrameHeaderSize]byte
	data := make([]byte, 999)
	if err := EncodeKioHeader(&kio, 42, 1<<30, len(data)); err != nil {
		t.Fatal(err)
	}
	if err := EncodeHeader(&plain, Frame{FileID: 42, Offset: 1 << 30, Data: data}); err != nil {
		t.Fatal(err)
	}
	if kio != plain {
		t.Fatalf("kio header % x differs from plain header % x", kio, plain)
	}
	if err := EncodeKioHeader(&kio, 1, 0, MaxChunk+1); err == nil {
		t.Fatal("oversize kio header accepted")
	}
}
