package wire

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
)

// pipePair returns two control channels over an in-memory pipe, closed on
// test cleanup.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

// roundTrip writes f through the frame codec and reads it back.
func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf, func(n int) []byte { return make([]byte, n) })
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCombineCRCMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 64; trial++ {
		n := 1 + rng.Intn(1<<14)
		data := make([]byte, n)
		rng.Read(data)
		split := rng.Intn(n + 1)
		a, b := data[:split], data[split:]
		got := CombineCRC(PayloadCRC(a), PayloadCRC(b), int64(len(b)))
		if want := PayloadCRC(data); got != want {
			t.Fatalf("trial %d (n=%d split=%d): combined %#x want %#x", trial, n, split, got, want)
		}
	}
}

func TestCombineCRCEmptyTail(t *testing.T) {
	crc := PayloadCRC([]byte("payload"))
	if got := CombineCRC(crc, 0, 0); got != crc {
		t.Fatalf("empty tail changed crc: %#x want %#x", got, crc)
	}
}

// Property: folding a buffer chunk-by-chunk through CombineCRC equals the
// one-shot CRC — exactly how the engine derives whole-file sums from the
// per-chunk sums in a session ledger.
func TestCombineCRCChunkFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 100<<10)
	rng.Read(data)
	for _, chunk := range []int{1, 977, 4 << 10, 64 << 10, len(data)} {
		var crc uint32
		first := true
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			part := PayloadCRC(data[off:end])
			if first {
				crc, first = part, false
			} else {
				crc = CombineCRC(crc, part, int64(end-off))
			}
		}
		if want := PayloadCRC(data); crc != want {
			t.Fatalf("chunk=%d: folded %#x want %#x", chunk, crc, want)
		}
	}
}

// The resumable-session handshake messages must survive the gob channel,
// including ledger bitmaps and per-file sums.
func TestControlChannelSessionMessages(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		a.Send(Message{Hello: &Hello{
			ProtoVersion: ProtoVersion,
			SessionID:    "sess-1",
			Checksums:    true,
			Files:        []FileInfo{{Name: "x", Size: 1 << 20}},
			ChunkBytes:   64 << 10,
		}})
		a.Send(Message{Welcome: &Welcome{
			ProtoVersion: ProtoVersion,
			SessionID:    "sess-1",
			ChunkBytes:   64 << 10,
			Ledger: []FileState{{
				FileID: 0, CommittedBytes: 128 << 10, Bitmap: []uint64{0b11},
			}},
		}})
		a.Send(Message{FileSum: &FileSum{FileID: 0, CRC: 0xDEADBEEF}})
		a.Send(Message{SumsDone: &SumsDone{Files: 1}})
	}()
	m, err := b.Recv()
	if err != nil || m.Hello == nil || m.Hello.SessionID != "sess-1" ||
		m.Hello.ProtoVersion != ProtoVersion || !m.Hello.Checksums {
		t.Fatalf("hello: %+v err=%v", m, err)
	}
	m, err = b.Recv()
	if err != nil || m.Welcome == nil || len(m.Welcome.Ledger) != 1 ||
		m.Welcome.Ledger[0].Bitmap[0] != 0b11 ||
		m.Welcome.Ledger[0].CommittedBytes != 128<<10 {
		t.Fatalf("welcome: %+v err=%v", m, err)
	}
	m, err = b.Recv()
	if err != nil || m.FileSum == nil || m.FileSum.CRC != 0xDEADBEEF {
		t.Fatalf("filesum: %+v err=%v", m, err)
	}
	m, err = b.Recv()
	if err != nil || m.SumsDone == nil || m.SumsDone.Files != 1 {
		t.Fatalf("sumsdone: %+v err=%v", m, err)
	}
}

// A checksummed frame written with a precomputed Sum must be identical to
// one whose CRC the encoder derives itself, and reads must surface the
// verified sum.
func TestFramePrecomputedSum(t *testing.T) {
	payload := []byte("ledger chunk payload")
	var direct, precomp [FrameHeaderSize]byte
	if err := EncodeHeader(&direct, Frame{FileID: 1, Data: payload, Checksum: true}); err != nil {
		t.Fatal(err)
	}
	f := Frame{FileID: 1, Data: payload, Checksum: true, Sum: PayloadCRC(payload), SumKnown: true}
	if err := EncodeHeader(&precomp, f); err != nil {
		t.Fatal(err)
	}
	if direct != precomp {
		t.Fatalf("precomputed sum encoded differently:\n%x\n%x", direct, precomp)
	}
	out := roundTrip(t, f)
	if !out.SumKnown || out.Sum != PayloadCRC(payload) {
		t.Fatalf("read did not surface verified sum: %+v", out)
	}
}
