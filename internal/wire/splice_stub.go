//go:build !linux

package wire

// Portable stubs for the kernel-assisted I/O fast path. Non-Linux
// builds compile them in place of splice_linux.go; every call reports
// ErrKioUnsupported and the engine takes the portable path, which is
// byte-for-byte identical on the wire.

import "syscall"

// KioAvailable reports whether this build carries the kernel-assisted
// I/O fast path. Always false off Linux.
func KioAvailable() bool { return false }

// SendfilePayload is unavailable on this platform.
func SendfilePayload(dst syscall.Conn, src syscall.Conn, off int64, n int) error {
	return ErrKioUnsupported
}

// Pwritev is unavailable on this platform.
func Pwritev(dst syscall.Conn, bufs [][]byte, off int64) (int64, error) {
	return 0, ErrKioUnsupported
}
