package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"
)

func alloc(n int) []byte { return make([]byte, n) }

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{FileID: 7, Offset: 123456789, Data: []byte("hello chunk")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if out.FileID != in.FileID || out.Offset != in.Offset || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestEmptyPayloadFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{FileID: 1, Offset: 0}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Data) != 0 {
		t.Fatalf("expected empty payload, got %d bytes", len(f.Data))
	}
}

func TestEndStreamMarker(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnd(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(&buf, alloc)
	if err != io.EOF {
		t.Fatalf("want io.EOF on end marker, got %v", err)
	}
}

func TestCleanEOFAtBoundary(t *testing.T) {
	_, err := ReadFrame(bytes.NewReader(nil), alloc)
	if err != io.EOF {
		t.Fatalf("want io.EOF on empty stream, got %v", err)
	}
}

func TestTruncatedHeaderIsError(t *testing.T) {
	_, err := ReadFrame(bytes.NewReader([]byte{1, 2, 3}), alloc)
	if err == nil || err == io.EOF {
		t.Fatalf("truncated header should be a hard error, got %v", err)
	}
}

func TestTruncatedPayloadIsError(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{FileID: 1, Data: []byte("abcdef")})
	trunc := buf.Bytes()[:buf.Len()-3]
	_, err := ReadFrame(bytes.NewReader(trunc), alloc)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated payload should be a hard error, got %v", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var hdr [FrameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], 1)
	binary.BigEndian.PutUint32(hdr[12:16], MaxChunk+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]), alloc)
	if err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestControlChannelMessages(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	go func() {
		ca.Send(Message{Hello: &Hello{
			Files:      []FileInfo{{Name: "x", Size: 10}},
			ChunkBytes: 1024,
			MaxWriters: 8,
		}})
		ca.Send(Message{SetWriters: &SetWriters{N: 5}})
		ca.Send(Message{Status: &Status{WrittenBytes: 10, Done: true}})
	}()

	m1, err := cb.Recv()
	if err != nil || m1.Hello == nil || m1.Hello.Files[0].Name != "x" {
		t.Fatalf("hello: %+v err=%v", m1, err)
	}
	m2, err := cb.Recv()
	if err != nil || m2.SetWriters == nil || m2.SetWriters.N != 5 {
		t.Fatalf("setwriters: %+v err=%v", m2, err)
	}
	m3, err := cb.Recv()
	if err != nil || m3.Status == nil || !m3.Status.Done {
		t.Fatalf("status: %+v err=%v", m3, err)
	}
}

func TestControlChannelBidirectional(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	errCh := make(chan error, 1)
	go func() {
		if err := cb.Send(Message{Status: &Status{WrittenBytes: 1}}); err != nil {
			errCh <- err
			return
		}
		_, err := cb.Recv()
		errCh <- err
	}()
	if _, err := ca.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := ca.Send(Message{SetWriters: &SetWriters{N: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestChecksummedFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{FileID: 3, Offset: 42, Data: []byte("checksummed payload"), Checksum: true}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Checksum || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{FileID: 3, Data: []byte("payload here"), Checksum: true})
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // flip a payload bit
	_, err := ReadFrame(bytes.NewReader(raw), alloc)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestUnchecksummedFrameSkipsVerification(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{FileID: 1, Data: []byte("plain")})
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // corrupt: must pass (no checksum requested)
	f, err := ReadFrame(bytes.NewReader(raw), alloc)
	if err != nil || f.Checksum {
		t.Fatalf("plain frame mishandled: %+v err=%v", f, err)
	}
}

func TestWriteFrameRejectsOversizePayload(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, Frame{FileID: 1, Data: make([]byte, MaxChunk+1)})
	if err == nil {
		t.Fatal("oversize payload accepted on write")
	}
}

// Property: any frame round-trips exactly.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(id uint32, off int64, payload []byte) bool {
		if id == EndStream {
			id = 0
		}
		if off < 0 {
			off = -off
		}
		if len(payload) > MaxChunk {
			payload = payload[:MaxChunk]
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{FileID: id, Offset: off, Data: payload}); err != nil {
			return false
		}
		out, err := ReadFrame(&buf, alloc)
		if err != nil {
			return false
		}
		return out.FileID == id && out.Offset == off && bytes.Equal(out.Data, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
