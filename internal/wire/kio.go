package wire

// Kernel-assisted I/O (kio) support shared across platforms: the
// capability error the stubs return, and the process-wide data-plane
// operation counter behind the enginebench syscalls_per_op metric.

import (
	"errors"
	"sync/atomic"
)

// ErrKioUnsupported reports that the kernel-assisted I/O fast path
// (sendfile/pwritev) is not available — either the platform has no
// implementation (non-Linux builds) or the file/socket involved does not
// expose a raw descriptor. Callers fall back to the portable path.
var ErrKioUnsupported = errors.New("wire: kernel-assisted I/O unsupported")

// ioOps counts data-plane I/O operations: every socket read, vectored
// frame write, store ReadAt/WriteAt, sendfile and pwritev call on the
// hot path bumps it by one. It is a strace-free would-be-syscall
// counter — self-instrumented at the call sites the engine owns, so it
// is exact, cheap, and works under `go test` — feeding the enginebench
// syscalls_per_op metric and its kio-vs-portable regression gate.
var ioOps atomic.Int64

// CountIOOps records n data-plane I/O operations.
func CountIOOps(n int64) { ioOps.Add(n) }

// IOOps returns the process-lifetime data-plane operation count.
// Benchmarks snapshot it before and after a scenario and report the
// delta per op.
func IOOps() int64 { return ioOps.Load() }
