//go:build linux

package wire

// Linux kernel-assisted I/O: sendfile(2) moves an on-disk payload range
// file→socket without the bytes ever entering userspace, and pwritev(2)
// flushes a batch of adjacent received chunks with one positioned
// vectored write. Both work on the raw descriptors behind *os.File and
// *net.TCPConn via syscall.RawConn, so no new dependencies are needed
// and the portable path stays byte-for-byte untouched.

import (
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"syscall"
	"unsafe"
)

// KioAvailable reports whether this build carries the kernel-assisted
// I/O fast path. True on Linux; individual files or sockets may still
// opt out at runtime (ErrKioUnsupported) when they expose no raw
// descriptor.
func KioAvailable() bool { return true }

// SendfilePayload streams n bytes of src starting at offset off into the
// socket dst using sendfile(2). The source file's own offset is never
// touched (sendfile takes an explicit position pointer), so concurrent
// ReadAt readers on the same *os.File stay correct. Returns
// ErrKioUnsupported when either end hides its descriptor, and the
// kernel's error verbatim when sendfile itself refuses (EINVAL on
// unsupported filesystems, for example) so callers can fall back.
func SendfilePayload(dst syscall.Conn, src syscall.Conn, off int64, n int) error {
	rawDst, err := dst.SyscallConn()
	if err != nil {
		return ErrKioUnsupported
	}
	rawSrc, err := src.SyscallConn()
	if err != nil {
		return ErrKioUnsupported
	}
	pos := off
	remain := n
	var opErr error
	// RawConn.Write re-invokes the callback each time the socket polls
	// writable, so the callback sends until EAGAIN (false: wait again) or
	// the range is drained (true: done).
	werr := rawDst.Write(func(dfd uintptr) bool {
		cerr := rawSrc.Control(func(sfd uintptr) {
			for remain > 0 {
				sent, serr := syscall.Sendfile(int(dfd), int(sfd), &pos, remain)
				if sent > 0 {
					remain -= sent
					CountIOOps(1)
				}
				switch serr {
				case nil:
					if sent == 0 && remain > 0 {
						opErr = fmt.Errorf("wire: sendfile: %w", io.ErrUnexpectedEOF)
						return
					}
				case syscall.EINTR:
					// retry
				case syscall.EAGAIN:
					opErr = syscall.EAGAIN
					return
				default:
					opErr = serr
					return
				}
			}
			opErr = nil
		})
		if cerr != nil {
			opErr = cerr
			return true
		}
		if opErr == syscall.EAGAIN {
			opErr = nil
			return false // socket buffer full: wait for writability
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return opErr
}

// Pwritev writes bufs to dst starting at file offset off with pwritev(2)
// — one positioned vectored write per batch of coalesced chunks instead
// of one pwrite per chunk. Partial writes advance through the vector
// until every byte lands. Returns the byte count written and
// ErrKioUnsupported when dst hides its descriptor.
func Pwritev(dst syscall.Conn, bufs [][]byte, off int64) (int64, error) {
	raw, err := dst.SyscallConn()
	if err != nil {
		return 0, ErrKioUnsupported
	}
	iovs := make([]syscall.Iovec, 0, len(bufs))
	var total int64
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		iov := syscall.Iovec{Base: &b[0]}
		iov.SetLen(len(b))
		iovs = append(iovs, iov)
		total += int64(len(b))
	}
	if len(iovs) == 0 {
		return 0, nil
	}
	var written int64
	var opErr error
	cerr := raw.Control(func(fd uintptr) {
		pos := off
		for len(iovs) > 0 {
			n, perr := pwritev(fd, iovs, pos)
			if n > 0 {
				CountIOOps(1)
				written += n
				pos += n
				// Skip fully written iovecs; trim a partially written one.
				for n > 0 && len(iovs) > 0 {
					l := int64(iovs[0].Len)
					if n >= l {
						n -= l
						iovs = iovs[1:]
						continue
					}
					iovs[0].Base = (*byte)(unsafe.Pointer(uintptr(unsafe.Pointer(iovs[0].Base)) + uintptr(n)))
					iovs[0].SetLen(int(l - n))
					n = 0
				}
				continue
			}
			if perr == syscall.EINTR {
				continue
			}
			if perr == nil {
				perr = io.ErrShortWrite
			}
			opErr = fmt.Errorf("wire: pwritev: %w", perr)
			return
		}
	})
	runtime.KeepAlive(bufs)
	if cerr != nil {
		return written, cerr
	}
	return written, opErr
}

// pwritev issues the raw syscall. The kernel splits the file position
// across two registers sized to the platform word (lo carries the whole
// offset on 64-bit).
func pwritev(fd uintptr, iovs []syscall.Iovec, off int64) (int64, error) {
	lo := uintptr(off) & (1<<bits.UintSize - 1)
	hi := uintptr(uint64(off) >> (bits.UintSize - 1) >> 1)
	n, _, e := syscall.Syscall6(syscall.SYS_PWRITEV, fd,
		uintptr(unsafe.Pointer(&iovs[0])), uintptr(len(iovs)), lo, hi, 0)
	if e != 0 {
		return 0, e
	}
	return int64(n), nil
}
