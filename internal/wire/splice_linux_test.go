//go:build linux

package wire

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server *net.TCPConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		server = c.(*net.TCPConn)
		done <- nil
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		c.Close()
		t.Fatal(err)
	}
	client = c.(*net.TCPConn)
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// SendfilePayload must deliver an exact mid-file range into the socket —
// large enough here to force multiple sendfile calls through socket
// buffer backpressure — without moving the *os.File's own offset.
func TestSendfilePayloadRange(t *testing.T) {
	content := make([]byte, 4<<20)
	rand.New(rand.NewSource(3)).Read(content)
	path := filepath.Join(t.TempDir(), "src")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	client, server := tcpPair(t)
	const off, n = 4096 + 13, 2<<20 + 7
	recvErr := make(chan error, 1)
	got := make([]byte, n)
	go func() {
		_, err := io.ReadFull(server, got)
		recvErr <- err
	}()
	if err := SendfilePayload(client, f, off, n); err != nil {
		t.Fatalf("sendfile: %v", err)
	}
	if err := <-recvErr; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content[off:off+n]) {
		t.Fatal("sendfile range differs from source")
	}
	// The explicit-position form must leave the file's cursor alone, or
	// concurrent readers of the shared descriptor would skip bytes.
	if pos, err := f.Seek(0, io.SeekCurrent); err != nil || pos != 0 {
		t.Fatalf("file offset moved to %d (err %v)", pos, err)
	}
}

// Pwritev must land a batch of buffers contiguously at the requested
// offset, skipping empty slices, and count one data-plane op per
// syscall rather than per buffer.
func TestPwritevBatch(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "dst"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rng := rand.New(rand.NewSource(5))
	bufs := make([][]byte, 0, 6)
	var want []byte
	for _, n := range []int{64 << 10, 0, 100, 64 << 10, 1, 8192} {
		b := make([]byte, n)
		rng.Read(b)
		bufs = append(bufs, b)
		want = append(want, b...)
	}
	const off = 12345
	before := IOOps()
	written, err := Pwritev(f, bufs, off)
	if err != nil {
		t.Fatalf("pwritev: %v", err)
	}
	if written != int64(len(want)) {
		t.Fatalf("wrote %d bytes, want %d", written, len(want))
	}
	if ops := IOOps() - before; ops < 1 || ops > int64(len(bufs)) {
		t.Fatalf("pwritev counted %d ops for %d buffers", ops, len(bufs))
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pwritev content differs from buffers")
	}
	// All-empty batches are a no-op, not a zero-length syscall.
	if n, err := Pwritev(f, [][]byte{nil, {}}, 0); n != 0 || err != nil {
		t.Fatalf("empty batch wrote %d, err %v", n, err)
	}
}

// A destination that hides its descriptor must get the capability error,
// not a crash or a silent no-op — that error is what routes callers back
// to the portable path.
func TestPwritevUnsupportedDestination(t *testing.T) {
	if _, err := Pwritev(noRawConn{}, [][]byte{{1}}, 0); err != ErrKioUnsupported {
		t.Fatalf("err = %v, want ErrKioUnsupported", err)
	}
}

type noRawConn struct{}

func (noRawConn) SyscallConn() (syscall.RawConn, error) { return nil, os.ErrInvalid }
