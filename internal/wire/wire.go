package wire

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
)

// ProtoVersion is the control-channel protocol generation this build
// speaks. Version 0 is the original one-shot handshake (Hello, then
// statuses). Version 1 adds resumable sessions: the receiver answers
// Hello with a Welcome carrying its chunk ledger, and the sender streams
// per-file end-to-end CRCs (FileSum) for commit-time verification.
// Version 2 adds multi-session endpoints: the Welcome carries a random
// per-session DataToken, and every data connection opens with a fixed
// preamble (PreambleMagic + the decoded token) so one receiver can
// demultiplex the data streams of many concurrent sessions. The receiver
// negotiates down — a v2 receiver serves v1 and v0 senders, whose
// un-preambled data connections route to the endpoint's single legacy
// session slot — but compatibility is one-way: a v1+ sender waits for a
// Welcome that a v0 receiver will never send, so receivers must be
// upgraded before senders. Version 3 adds mid-transfer ledger pulls
// (LedgerPull/LedgerState): a sender striping one session across many
// data connections asks for the receiver's committed state when one of
// them dies, and re-plans only the chunks that never landed instead of
// failing the attempt. docs/PROTOCOL.md specifies all generations.
const ProtoVersion = 3

// DataTokenBytes is the decoded length of a session's data-routing token
// (Welcome.DataToken is its hex encoding).
const DataTokenBytes = 16

// PreambleBytes is the encoded size of the protocol ≥ 2 data-connection
// preamble: PreambleMagic followed by the decoded DataToken.
const PreambleBytes = 4 + DataTokenBytes

// PreambleMagic opens every protocol ≥ 2 data connection. The first byte
// is ≥ 0x80 on purpose: read as a big-endian frame header it would name
// file id ≥ 0xAD000000 (~2.9 billion files), which no v1 manifest can
// reach, so a receiver can tell a preambled connection from a legacy
// frame stream by its first four bytes alone.
var PreambleMagic = [4]byte{0xAD, 'M', 'T', '2'}

// NewDataToken returns a fresh random session data token, hex-encoded as
// carried in a Welcome.
func NewDataToken() string {
	var b [DataTokenBytes]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		panic(fmt.Sprintf("wire: data token entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// WriteDataPreamble writes the protocol ≥ 2 data-connection preamble:
// the magic plus the decoded token. Senders call it once per data
// connection, before the first frame.
func WriteDataPreamble(w io.Writer, token string) error {
	raw, err := hex.DecodeString(token)
	if err != nil || len(raw) != DataTokenBytes {
		return fmt.Errorf("wire: malformed data token %q", token)
	}
	var buf [PreambleBytes]byte
	copy(buf[:4], PreambleMagic[:])
	copy(buf[4:], raw)
	_, err = w.Write(buf[:])
	return err
}

// EndStream is the FileID value marking the end of a data connection.
const EndStream = ^uint32(0)

// MaxChunk bounds the payload length of a single frame (16 MiB), guarding
// decoders against corrupt headers.
const MaxChunk = 16 << 20

// FrameHeaderSize is the encoded size of a frame header: file id, offset,
// length, and a CRC-32C of the payload.
const FrameHeaderSize = 4 + 8 + 4 + 4

// lengthChecksummed flags a length field whose frame carries a payload
// checksum. The bit keeps checksummed and plain senders wire-compatible.
const lengthChecksummed = uint32(1 << 31)

// castagnoli is the CRC-32C table (the polynomial used by iSCSI and ext4,
// with hardware support on modern CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one chunk of file data on a data connection.
type Frame struct {
	FileID uint32
	Offset int64
	Data   []byte
	// Checksum, when true on write, adds a CRC-32C over the payload that
	// the receiver verifies (end-to-end integrity, as Globus offers).
	Checksum bool
	// Sum is the payload CRC-32C. On write it is used instead of a fresh
	// computation when SumKnown is set (the read stage already hashed the
	// chunk for the session ledger); on a verified checksummed read it is
	// filled with the payload CRC so the commit path can reuse it.
	Sum uint32
	// SumKnown reports whether Sum holds a valid payload CRC.
	SumKnown bool
}

// EncodeHeader encodes f's header (including the payload CRC when
// f.Checksum is set) into hdr.
func EncodeHeader(hdr *[FrameHeaderSize]byte, f Frame) error {
	if len(f.Data) > MaxChunk {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", len(f.Data), MaxChunk)
	}
	binary.BigEndian.PutUint32(hdr[0:4], f.FileID)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(f.Offset))
	length := uint32(len(f.Data))
	if f.Checksum {
		length |= lengthChecksummed
		sum := f.Sum
		if !f.SumKnown {
			sum = crc32.Checksum(f.Data, castagnoli)
		}
		binary.BigEndian.PutUint32(hdr[16:20], sum)
	} else {
		binary.BigEndian.PutUint32(hdr[16:20], 0)
	}
	binary.BigEndian.PutUint32(hdr[12:16], length)
	return nil
}

// EncodeKioHeader encodes a plain (unchecksummed) frame header for a
// payload of n bytes that never enters userspace: the kernel-I/O sender
// writes this header from userspace and then sendfile(2)s the payload
// straight from the source file into the socket.
func EncodeKioHeader(hdr *[FrameHeaderSize]byte, fileID uint32, off int64, n int) error {
	if n < 0 || n > MaxChunk {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxChunk)
	}
	binary.BigEndian.PutUint32(hdr[0:4], fileID)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(off))
	binary.BigEndian.PutUint32(hdr[12:16], uint32(n))
	binary.BigEndian.PutUint32(hdr[16:20], 0)
	return nil
}

// frameWriterPool and frameReaderPool back the one-shot WriteFrame and
// ReadFrame helpers so their header scratch is reused instead of
// escaping to the heap on every call (control paths, recovery resends,
// and tests all go through the one-shot forms).
var frameWriterPool = sync.Pool{New: func() any { return new(FrameWriter) }}

var frameReaderPool = sync.Pool{New: func() any { return new(FrameReader) }}

// WriteFrame writes one frame to w. For the hot path prefer a FrameWriter,
// which reuses its scratch and issues vectored header+payload writes; the
// one-shot form borrows a pooled writer so it allocates nothing either.
func WriteFrame(w io.Writer, f Frame) error {
	fw := frameWriterPool.Get().(*FrameWriter)
	err := fw.Write(w, f)
	frameWriterPool.Put(fw)
	return err
}

// WriteEnd writes the end-of-stream marker to w.
func WriteEnd(w io.Writer) error {
	return WriteFrame(w, Frame{FileID: EndStream})
}

// FrameWriter writes frames with zero per-frame allocations: the header
// scratch and the vectored-write buffer list persist across calls, and
// header+payload go out in a single writev when the destination is a
// *net.TCPConn (any io.Writer implementing net.buffersWriter). Not safe
// for concurrent use; each network worker owns one.
type FrameWriter struct {
	hdr [FrameHeaderSize]byte
	// arr backs the net.Buffers view. WriteTo consumes the vecs slice
	// header as it drains, so vecs is re-derived from arr on every call
	// instead of appended to (append on the consumed slice would
	// reallocate per frame).
	arr  [2][]byte
	vecs net.Buffers
	// Batch scratch: one persistent header block per frame slot and the
	// iovec list backing a multi-frame writev (WriteBatch).
	hdrs []*[FrameHeaderSize]byte
	barr [][]byte
}

// Write writes one frame to w.
func (fw *FrameWriter) Write(w io.Writer, f Frame) error {
	if err := EncodeHeader(&fw.hdr, f); err != nil {
		return err
	}
	CountIOOps(1)
	if len(f.Data) == 0 {
		_, err := w.Write(fw.hdr[:])
		return err
	}
	fw.arr[0], fw.arr[1] = fw.hdr[:], f.Data
	fw.vecs = net.Buffers(fw.arr[:])
	_, err := fw.vecs.WriteTo(w)
	fw.arr[1] = nil // drop the payload reference; the arena owns it
	return err
}

// WriteBatch writes a batch of frames to w as one vectored write: all
// headers are encoded into persistent per-slot scratch and the
// header/payload iovecs go out in a single writev when w is a
// *net.TCPConn. One batch costs one data-plane operation regardless of
// frame count, which is where the kio sender's syscalls-per-op win on
// checksummed (non-sendfile) traffic comes from.
func (fw *FrameWriter) WriteBatch(w io.Writer, frames []Frame) error {
	if len(frames) == 0 {
		return nil
	}
	if len(frames) == 1 {
		return fw.Write(w, frames[0])
	}
	for len(fw.hdrs) < len(frames) {
		fw.hdrs = append(fw.hdrs, new([FrameHeaderSize]byte))
	}
	fw.barr = fw.barr[:0]
	for i := range frames {
		if err := EncodeHeader(fw.hdrs[i], frames[i]); err != nil {
			return err
		}
		fw.barr = append(fw.barr, fw.hdrs[i][:])
		if len(frames[i].Data) > 0 {
			fw.barr = append(fw.barr, frames[i].Data)
		}
	}
	fw.vecs = net.Buffers(fw.barr)
	CountIOOps(1)
	_, err := fw.vecs.WriteTo(w)
	for i := range fw.barr {
		fw.barr[i] = nil // drop payload references; the arena owns them
	}
	fw.barr = fw.barr[:0]
	return err
}

// WriteEnd writes the end-of-stream marker to w.
func (fw *FrameWriter) WriteEnd(w io.Writer) error {
	return fw.Write(w, Frame{FileID: EndStream})
}

// WriteKioHeader writes a plain header for a kernel-owned payload of n
// bytes using the writer's persistent scratch; the caller streams the
// payload itself (SendfilePayload) immediately after.
func (fw *FrameWriter) WriteKioHeader(w io.Writer, fileID uint32, off int64, n int) error {
	if err := EncodeKioHeader(&fw.hdr, fileID, off, n); err != nil {
		return err
	}
	CountIOOps(1)
	_, err := w.Write(fw.hdr[:])
	return err
}

// ReadFrame reads one frame from r into a buffer obtained from alloc
// (which must return a slice of at least the requested length). It
// returns io.EOF (wrapped) only on a clean end-of-stream marker or a
// closed connection at a frame boundary. Frames written with Checksum
// set are verified; mismatches are hard errors. For the hot path prefer
// a FrameReader, whose header scratch persists across calls; the
// one-shot form borrows a pooled reader so it allocates nothing either.
func ReadFrame(r io.Reader, alloc func(n int) []byte) (Frame, error) {
	fr := frameReaderPool.Get().(*FrameReader)
	f, err := fr.Read(r, alloc)
	frameReaderPool.Put(fr)
	return f, err
}

// FrameReader reads frames with a persistent header scratch (the local
// header array in a plain function escapes into the io.ReadFull call and
// costs one heap allocation per frame). Not safe for concurrent use;
// each connection reader owns one.
type FrameReader struct {
	hdr [FrameHeaderSize]byte
}

// Read reads one frame from r; see ReadFrame.
func (fr *FrameReader) Read(r io.Reader, alloc func(n int) []byte) (Frame, error) {
	hdr := &fr.hdr
	CountIOOps(1)
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("wire: read frame header: %w", err)
	}
	f := Frame{
		FileID: binary.BigEndian.Uint32(hdr[0:4]),
		Offset: int64(binary.BigEndian.Uint64(hdr[4:12])),
	}
	length := binary.BigEndian.Uint32(hdr[12:16])
	if f.FileID == EndStream {
		return f, io.EOF
	}
	f.Checksum = length&lengthChecksummed != 0
	n := length &^ lengthChecksummed
	want := binary.BigEndian.Uint32(hdr[16:20])
	if n > MaxChunk {
		return Frame{}, fmt.Errorf("wire: frame length %d exceeds limit %d", n, MaxChunk)
	}
	if n > 0 {
		f.Data = alloc(int(n))[:n]
		CountIOOps(1)
		if _, err := io.ReadFull(r, f.Data); err != nil {
			return Frame{}, fmt.Errorf("wire: read frame payload: %w", err)
		}
	}
	if f.Checksum {
		if got := crc32.Checksum(f.Data, castagnoli); got != want {
			return Frame{}, fmt.Errorf("wire: checksum mismatch on file %d offset %d: %#x != %#x",
				f.FileID, f.Offset, got, want)
		}
		f.Sum, f.SumKnown = want, true
	}
	return f, nil
}

// FileInfo describes one manifest entry on the control channel.
type FileInfo struct {
	Name string
	Size int64
}

// Hello is the sender's opening message on the control channel.
type Hello struct {
	Files          []FileInfo
	ChunkBytes     int
	MaxWriters     int
	InitialWriters int
	// ReceiverBufBytes requests a staging capacity; zero keeps the
	// receiver default.
	ReceiverBufBytes int64
	// ProtoVersion is the sender's protocol generation (zero for legacy
	// senders, whose gob encoding omits the field entirely).
	ProtoVersion int
	// SessionID names the resumable session to create or resume. Empty
	// means a one-shot transfer: the receiver neither persists nor
	// consults a ledger.
	SessionID string
	// Checksums announces that data frames carry payload CRCs and that
	// the session records per-chunk sums in its ledger for end-to-end
	// file verification.
	Checksums bool
	// Kio advertises the sender's kernel-assisted I/O capability
	// (advisory; gob omits it for older builds, which decode as false).
	Kio bool
}

// FileState is one file's ledger entry advertised in a Welcome: which
// chunks the receiver has already committed to the destination store.
type FileState struct {
	FileID uint32
	// CommittedBytes is the payload volume already safe at the receiver.
	CommittedBytes int64
	// Bitmap marks committed chunks, LSB-first (chunk i is bit i%64 of
	// word i/64). Nil when nothing is committed.
	Bitmap []uint64
}

// Welcome is the receiver's reply to a protocol ≥ 1 Hello: the
// negotiated version, the authoritative session identity, and the chunk
// ledger from which the sender plans only the missing ranges.
type Welcome struct {
	ProtoVersion int
	SessionID    string
	// ChunkBytes is the session's chunk size; a resumed ledger pins it.
	ChunkBytes int
	// Ledger lists per-file committed state. Empty for fresh sessions.
	Ledger []FileState
	// DataToken (protocol ≥ 2) is the hex-encoded routing token the
	// sender must echo in every data-connection preamble so the endpoint
	// can demultiplex concurrent sessions. Empty below protocol 2.
	DataToken string
	// Kio reports that this receiver accepts kernel-assisted-I/O frame
	// geometry: data frames whose payload spans several adjacent chunks
	// of one file (the receiver splits them back into per-chunk ledger
	// commits). A sender coalesces frames only after seeing it; absent
	// (older receivers, or -kio=off) every frame stays one chunk and the
	// wire is byte-for-byte the portable stream.
	Kio bool
}

// FileSum carries the sender's end-to-end CRC-32C of one fully read
// file, combined from per-chunk sums. The receiver verifies it against
// its own combined ledger sums when the file commits.
type FileSum struct {
	FileID uint32
	CRC    uint32
}

// SumsDone tells the receiver no further FileSum messages will follow
// (every file the sender will verify has been announced). Files is how
// many FileSum messages were sent in total; the receiver uses it to
// finish commit-time verification before reporting completion.
type SumsDone struct {
	Files int
}

// SetWriters commands the receiver to resize its write pool (the
// production-phase concurrency reassignment of §IV-F).
type SetWriters struct {
	N int
}

// LedgerPull asks the receiver for its current chunk ledger mid-transfer
// (protocol ≥ 3). A sender that loses one of its striped data
// connections pulls the committed state and re-sends only the lost
// chunks. Seq matches the request to its LedgerState reply.
type LedgerPull struct {
	Seq uint64
}

// LedgerState is the receiver's reply to a LedgerPull: the same per-file
// committed-chunk states a Welcome advertises, but taken mid-transfer.
type LedgerState struct {
	Seq    uint64
	Ledger []FileState
}

// Status is the receiver's periodic report: written bytes, staging
// occupancy, and write throughput — the sender-side agent's view of the
// far end.
type Status struct {
	WrittenBytes int64
	BufUsed      int64
	BufFree      int64
	WriteMbps    float64
	Writers      int
	Done         bool
	// CommittedBytes is the ledger-committed payload volume, including
	// ranges inherited from previous attempts of a resumed session —
	// the per-job resume progress the daemon exposes.
	CommittedBytes int64
	// Error carries a fatal receiver-side failure description.
	Error string
}

// Message is the control-channel envelope; exactly one field is non-nil.
type Message struct {
	Hello       *Hello
	Welcome     *Welcome
	SetWriters  *SetWriters
	FileSum     *FileSum
	SumsDone    *SumsDone
	Status      *Status
	LedgerPull  *LedgerPull
	LedgerState *LedgerState
}

// Conn wraps a control connection with gob encoding in both directions.
type Conn struct {
	enc *gob.Encoder
	dec *gob.Decoder
	c   io.Closer
}

// NewConn wraps rw as a control channel.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw), c: rw}
}

// Send writes one control message.
func (c *Conn) Send(m Message) error { return c.enc.Encode(&m) }

// Recv reads the next control message.
func (c *Conn) Recv() (Message, error) {
	var m Message
	err := c.dec.Decode(&m)
	return m, err
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }
