// Package probe implements AutoMDT's exploration and logging phase
// (§IV-A): a short "random-threads" run against the real transfer path
// that records per-stage throughputs every second, from which it derives
// the per-unit throughput TPTᵢ and aggregate bandwidth Bᵢ of each
// controller dimension ⟨read, conns, streams, write⟩, the end-to-end
// bottleneck b, the concurrency tuple n*ᵢ needed to reach it, and the
// theoretical maximum reward Rmax used as the offline-training
// convergence criterion.
package probe

import (
	"fmt"
	"math"
	"math/rand"

	"automdt/internal/env"
	"automdt/internal/sim"
)

// Runner executes one measurement interval at the given concurrency
// tuple and reports the three physical stage throughputs in Mbps. The
// live transfer engine and the simulator both satisfy this.
type Runner interface {
	Probe(a env.Action) (read, network, write float64)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(a env.Action) (read, network, write float64)

// Probe implements Runner.
func (f RunnerFunc) Probe(a env.Action) (read, network, write float64) { return f(a) }

// SimRunner adapts a *sim.Simulator to the Runner interface.
type SimRunner struct{ Sim *sim.Simulator }

// Probe implements Runner.
func (s SimRunner) Probe(a env.Action) (read, network, write float64) {
	r := s.Sim.Step(a.N[env.StageRead], a.N[env.StageConns], a.N[env.StageStreams], a.N[env.StageWrite])
	return r.Throughput[sim.Read], r.Throughput[sim.Network], r.Throughput[sim.Write]
}

// Sample is one logged second of the exploration run.
type Sample struct {
	Action     env.Action
	Throughput env.StageVec
}

// Profile is the distilled result of the exploration phase, indexed by
// the named stage dimensions of env.Stage.
type Profile struct {
	// B is the observed aggregate bandwidth of each dimension (max Tᵢ),
	// Mbps; the conns and streams entries both carry the network maximum.
	B env.StageVec
	// TPT is the observed per-unit throughput of each dimension, Mbps:
	// per read thread, per data connection, per network stream, and per
	// write thread.
	TPT env.StageVec
	// Bottleneck is b = min over the physical stage bandwidths.
	Bottleneck float64
	// NStar holds the concurrency tuple needed to reach the bottleneck
	// assuming near-linear scaling: n*ᵢ = ceil(b / TPTᵢ), with the
	// streams dimension divided across the n*_c connections.
	NStar env.Action
	// Rmax is the theoretical maximum utility for penalty base k.
	Rmax float64
	// K is the penalty base Rmax was computed with.
	K float64
	// Samples holds the raw log for diagnostics.
	Samples []Sample
}

// Options configure an exploration run.
type Options struct {
	// Steps is the number of one-second measurements. The paper uses a
	// 10-minute run (600). Defaults to 600.
	Steps int
	// MaxThreads bounds the random concurrency values. Defaults to 32.
	MaxThreads int
	// K is the utility penalty base. Defaults to env.DefaultK.
	K float64
	// KeepSamples retains the raw log in the Profile.
	KeepSamples bool
}

func (o Options) withDefaults() Options {
	if o.Steps <= 0 {
		o.Steps = 600
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 32
	}
	if o.K <= 0 {
		o.K = env.DefaultK
	}
	return o
}

// Explore performs the random-threads run against r and derives a
// Profile. rng drives the random concurrency choices.
func Explore(r Runner, rng *rand.Rand, opts Options) (*Profile, error) {
	opts = opts.withDefaults()
	p := &Profile{K: opts.K}
	for step := 0; step < opts.Steps; step++ {
		var a env.Action
		for i := range a.N {
			a.N[i] = 1 + rng.Intn(opts.MaxThreads)
		}
		tr, tn, tw := r.Probe(a)
		s := Sample{Action: a, Throughput: env.ThroughputVec(tr, tn, tw)}
		if opts.KeepSamples {
			p.Samples = append(p.Samples, s)
		}
		// Per-unit rates: reads and writes per thread, the network rate
		// per connection (conns dimension) and per stream (streams
		// dimension, n_c·n_s total streams).
		units := [env.StageCount]float64{
			env.StageRead:    float64(a.N[env.StageRead]),
			env.StageConns:   float64(a.N[env.StageConns]),
			env.StageStreams: float64(a.NetWorkers()),
			env.StageWrite:   float64(a.N[env.StageWrite]),
		}
		for i := env.Stage(0); i < env.StageCount; i++ {
			if s.Throughput[i] > p.B[i] {
				p.B[i] = s.Throughput[i]
			}
			if tpt := s.Throughput[i] / units[i]; tpt > p.TPT[i] {
				p.TPT[i] = tpt
			}
		}
	}
	for i := env.Stage(0); i < env.StageCount; i++ {
		if p.B[i] <= 0 || p.TPT[i] <= 0 {
			return nil, fmt.Errorf("probe: stage %v observed no throughput; cannot profile", i)
		}
	}
	p.Bottleneck = p.B[env.StageRead]
	for i := env.StageConns; i < env.StageCount; i++ {
		p.Bottleneck = math.Min(p.Bottleneck, p.B[i])
	}
	nFor := func(i env.Stage) int {
		n := int(math.Ceil(p.Bottleneck / p.TPT[i]))
		if n < 1 {
			n = 1
		}
		return n
	}
	p.NStar.N[env.StageRead] = nFor(env.StageRead)
	p.NStar.N[env.StageConns] = nFor(env.StageConns)
	p.NStar.N[env.StageWrite] = nFor(env.StageWrite)
	// The streams dimension is per connection: spread the total stream
	// requirement across the optimal connection count.
	totalStreams := nFor(env.StageStreams)
	perConn := (totalStreams + p.NStar.N[env.StageConns] - 1) / p.NStar.N[env.StageConns]
	if perConn < 1 {
		perConn = 1
	}
	p.NStar.N[env.StageStreams] = perConn
	p.Rmax = env.TheoreticalMaxReward(p.Bottleneck, p.NStar, opts.K)
	return p, nil
}

// SimConfig builds a training-simulator configuration approximating the
// probed system (the "Configure Simulator Environment" arrow in Fig. 2):
// the per-stream network TPT and per-connection ceiling both come from
// the probe. Buffer capacities come from the caller, since the probe
// cannot see them.
func (p *Profile) SimConfig(senderBufCap, receiverBufCap float64) sim.Config {
	return sim.Config{
		TPT: [3]float64{
			p.TPT[env.StageRead], p.TPT[env.StageStreams], p.TPT[env.StageWrite]},
		Bandwidth: [3]float64{
			p.B[env.StageRead], p.B[env.StageConns], p.B[env.StageWrite]},
		ConnMbps:       p.TPT[env.StageConns],
		SenderBufCap:   senderBufCap,
		ReceiverBufCap: receiverBufCap,
	}
}

// String summarizes the profile.
func (p *Profile) String() string {
	return fmt.Sprintf(
		"profile{B=[%.0f %.0f %.0f %.0f] Mbps, TPT=[%.1f %.1f %.1f %.1f] Mbps, b=%.0f, n*=[%d %d %d %d], Rmax=%.0f}",
		p.B[0], p.B[1], p.B[2], p.B[3], p.TPT[0], p.TPT[1], p.TPT[2], p.TPT[3],
		p.Bottleneck, p.NStar.N[0], p.NStar.N[1], p.NStar.N[2], p.NStar.N[3], p.Rmax)
}
