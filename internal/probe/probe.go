// Package probe implements AutoMDT's exploration and logging phase
// (§IV-A): a short "random-threads" run against the real transfer path
// that records per-stage throughputs every second, from which it derives
// the per-thread throughput TPTᵢ and aggregate bandwidth Bᵢ of each stage,
// the end-to-end bottleneck b = min(B_r, B_n, B_w), the thread counts
// n*ᵢ = b / TPTᵢ needed to reach it, and the theoretical maximum reward
// Rmax used as the offline-training convergence criterion.
package probe

import (
	"fmt"
	"math"
	"math/rand"

	"automdt/internal/env"
	"automdt/internal/sim"
)

// Runner executes one measurement interval at the given concurrency and
// reports the per-stage throughputs in Mbps. The live transfer engine and
// the simulator both satisfy this.
type Runner interface {
	Probe(nr, nn, nw int) (tr, tn, tw float64)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(nr, nn, nw int) (tr, tn, tw float64)

// Probe implements Runner.
func (f RunnerFunc) Probe(nr, nn, nw int) (tr, tn, tw float64) { return f(nr, nn, nw) }

// SimRunner adapts a *sim.Simulator to the Runner interface.
type SimRunner struct{ Sim *sim.Simulator }

// Probe implements Runner.
func (s SimRunner) Probe(nr, nn, nw int) (tr, tn, tw float64) {
	r := s.Sim.Step(nr, nn, nw)
	return r.Throughput[sim.Read], r.Throughput[sim.Network], r.Throughput[sim.Write]
}

// Sample is one logged second of the exploration run.
type Sample struct {
	Threads    [3]int
	Throughput [3]float64
}

// Profile is the distilled result of the exploration phase.
type Profile struct {
	// B is the observed aggregate bandwidth of each stage (max Tᵢ), Mbps.
	B [3]float64
	// TPT is the observed per-thread throughput of each stage
	// (max Tᵢ/nᵢ), Mbps.
	TPT [3]float64
	// Bottleneck is b = min(B_r, B_n, B_w).
	Bottleneck float64
	// NStar holds the thread counts needed to reach the bottleneck
	// assuming near-linear scaling: n*ᵢ = ceil(b / TPTᵢ).
	NStar [3]int
	// Rmax is the theoretical maximum utility for penalty base k.
	Rmax float64
	// K is the penalty base Rmax was computed with.
	K float64
	// Samples holds the raw log for diagnostics.
	Samples []Sample
}

// Options configure an exploration run.
type Options struct {
	// Steps is the number of one-second measurements. The paper uses a
	// 10-minute run (600). Defaults to 600.
	Steps int
	// MaxThreads bounds the random thread counts. Defaults to 32.
	MaxThreads int
	// K is the utility penalty base. Defaults to env.DefaultK.
	K float64
	// KeepSamples retains the raw log in the Profile.
	KeepSamples bool
}

func (o Options) withDefaults() Options {
	if o.Steps <= 0 {
		o.Steps = 600
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 32
	}
	if o.K <= 0 {
		o.K = env.DefaultK
	}
	return o
}

// Explore performs the random-threads run against r and derives a
// Profile. rng drives the random concurrency choices.
func Explore(r Runner, rng *rand.Rand, opts Options) (*Profile, error) {
	opts = opts.withDefaults()
	p := &Profile{K: opts.K}
	for step := 0; step < opts.Steps; step++ {
		nr := 1 + rng.Intn(opts.MaxThreads)
		nn := 1 + rng.Intn(opts.MaxThreads)
		nw := 1 + rng.Intn(opts.MaxThreads)
		tr, tn, tw := r.Probe(nr, nn, nw)
		s := Sample{Threads: [3]int{nr, nn, nw}, Throughput: [3]float64{tr, tn, tw}}
		if opts.KeepSamples {
			p.Samples = append(p.Samples, s)
		}
		for i := 0; i < 3; i++ {
			if s.Throughput[i] > p.B[i] {
				p.B[i] = s.Throughput[i]
			}
			if tpt := s.Throughput[i] / float64(s.Threads[i]); tpt > p.TPT[i] {
				p.TPT[i] = tpt
			}
		}
	}
	for i := 0; i < 3; i++ {
		if p.B[i] <= 0 || p.TPT[i] <= 0 {
			return nil, fmt.Errorf("probe: stage %v observed no throughput; cannot profile", sim.Stage(i))
		}
	}
	p.Bottleneck = math.Min(p.B[0], math.Min(p.B[1], p.B[2]))
	for i := 0; i < 3; i++ {
		p.NStar[i] = int(math.Ceil(p.Bottleneck / p.TPT[i]))
		if p.NStar[i] < 1 {
			p.NStar[i] = 1
		}
	}
	p.Rmax = env.TheoreticalMaxReward(p.Bottleneck, p.NStar, opts.K)
	return p, nil
}

// SimConfig builds a training-simulator configuration approximating the
// probed system (the "Configure Simulator Environment" arrow in Fig. 2).
// Buffer capacities come from the caller, since the probe cannot see them.
func (p *Profile) SimConfig(senderBufCap, receiverBufCap float64) sim.Config {
	return sim.Config{
		TPT:            p.TPT,
		Bandwidth:      p.B,
		SenderBufCap:   senderBufCap,
		ReceiverBufCap: receiverBufCap,
	}
}

// String summarizes the profile.
func (p *Profile) String() string {
	return fmt.Sprintf(
		"profile{B=[%.0f %.0f %.0f] Mbps, TPT=[%.1f %.1f %.1f] Mbps, b=%.0f, n*=[%d %d %d], Rmax=%.0f}",
		p.B[0], p.B[1], p.B[2], p.TPT[0], p.TPT[1], p.TPT[2],
		p.Bottleneck, p.NStar[0], p.NStar[1], p.NStar[2], p.Rmax)
}
