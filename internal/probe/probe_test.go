package probe

import (
	"math"
	"math/rand"
	"testing"

	"automdt/internal/env"
	"automdt/internal/sim"
)

func readBottleneckSim() *sim.Simulator {
	// Paper §V-B-1 read-bottleneck scenario: 80/160/200 Mbps per stream,
	// 1 Gbps link → b=1000, n*=[13, 7, 5].
	return sim.New(sim.Config{
		TPT:            [3]float64{80, 160, 200},
		Bandwidth:      [3]float64{1000, 1000, 1000},
		SenderBufCap:   2000,
		ReceiverBufCap: 2000,
		ChunkMb:        8,
	})
}

func TestExploreRecoversKnownProfile(t *testing.T) {
	p, err := Explore(SimRunner{Sim: readBottleneckSim()}, rand.New(rand.NewSource(7)), Options{Steps: 400})
	if err != nil {
		t.Fatal(err)
	}
	// TPT estimates: a single-stage thread only reaches full TPT when the
	// stage is unconstrained; random probing gets close.
	if math.Abs(p.TPT[env.StageRead]-80) > 12 {
		t.Fatalf("TPT read=%v want ≈80", p.TPT[env.StageRead])
	}
	if p.Bottleneck < 850 || p.Bottleneck > 1050 {
		t.Fatalf("bottleneck=%v want ≈1000", p.Bottleneck)
	}
	if n := p.NStar.N[env.StageRead]; n < 11 || n > 15 {
		t.Fatalf("n*_r=%d want ≈13", n)
	}
	if n := p.NStar.N[env.StageWrite]; n < 4 || n > 7 {
		t.Fatalf("n*_w=%d want ≈5", n)
	}
	if n := p.NStar.NetWorkers(); n < 6 || n > 9 {
		t.Fatalf("n*_net=%d want ≈7", n)
	}
	if p.Rmax <= 0 {
		t.Fatalf("Rmax=%v", p.Rmax)
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestExploreErrorsOnDeadStage(t *testing.T) {
	dead := RunnerFunc(func(env.Action) (float64, float64, float64) {
		return 100, 0, 100 // network never moves data
	})
	if _, err := Explore(dead, rand.New(rand.NewSource(1)), Options{Steps: 10}); err == nil {
		t.Fatal("expected error for dead stage")
	}
}

func TestExploreKeepSamples(t *testing.T) {
	p, err := Explore(SimRunner{Sim: readBottleneckSim()}, rand.New(rand.NewSource(2)),
		Options{Steps: 25, KeepSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) != 25 {
		t.Fatalf("kept %d samples want 25", len(p.Samples))
	}
	p2, err := Explore(SimRunner{Sim: readBottleneckSim()}, rand.New(rand.NewSource(2)),
		Options{Steps: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Samples) != 0 {
		t.Fatal("samples kept without KeepSamples")
	}
}

func TestSimConfigRoundTrip(t *testing.T) {
	p, err := Explore(SimRunner{Sim: readBottleneckSim()}, rand.New(rand.NewSource(3)), Options{Steps: 300})
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.SimConfig(500, 500)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("probed config invalid: %v", err)
	}
	// A simulator built from the probed profile should behave like the
	// original near the optimum.
	s := sim.New(cfg)
	var last sim.Result
	for i := 0; i < 10; i++ {
		last = s.Step(p.NStar.N[env.StageRead], p.NStar.N[env.StageConns],
			p.NStar.N[env.StageStreams], p.NStar.N[env.StageWrite])
	}
	if last.Throughput[sim.Write] < 0.75*p.Bottleneck {
		t.Fatalf("rebuilt simulator reaches %v, bottleneck %v", last.Throughput[sim.Write], p.Bottleneck)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Steps != 600 || o.MaxThreads != 32 || o.K <= 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestNStarAtLeastOne(t *testing.T) {
	// A fat per-thread rate makes b/TPT < 1; NStar must clamp to 1.
	fast := RunnerFunc(func(env.Action) (float64, float64, float64) {
		return 1000, 1000, 1000
	})
	p, err := Explore(fast, rand.New(rand.NewSource(4)), Options{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range p.NStar.N {
		if n < 1 {
			t.Fatalf("NStar[%d]=%d", i, n)
		}
	}
}
