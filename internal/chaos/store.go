package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"syscall"
	"time"

	"automdt/internal/fsim"
)

// ErrInjectedDiskFault marks a data write that the flaky store failed on
// purpose (transient fault or short write). ErrDiskFull (ENOSPC) is
// reported via syscall.ENOSPC wrapping so errors.Is(err, syscall.ENOSPC)
// holds, the same way a real filesystem surfaces it.
var ErrInjectedDiskFault = fmt.Errorf("chaos: injected disk fault")

// DiskFault declares destination-disk pathology for one scenario cell.
// The zero value injects nothing.
type DiskFault struct {
	Name string `json:"name"`
	// WriteDelayMs is a fixed latency added to every data write,
	// emulating a slow (cold HDD / contended) destination.
	WriteDelayMs float64 `json:"write_delay_ms,omitempty"`
	// FailEveryN makes every Nth data write fail transiently without
	// committing any bytes (0 = never).
	FailEveryN int `json:"fail_every_n,omitempty"`
	// ShortEveryN makes every Nth data write commit only a random
	// prefix and return an error with the short count (0 = never).
	ShortEveryN int `json:"short_every_n,omitempty"`
	// CapacityBytes is a hard byte budget shared by data and ledger
	// writes; once spent, further writes fail with ENOSPC (0 = unlimited).
	CapacityBytes int64 `json:"capacity_bytes,omitempty"`
}

// Clean reports whether the fault injects nothing.
func (f DiskFault) Clean() bool {
	return f.WriteDelayMs == 0 && f.FailEveryN == 0 && f.ShortEveryN == 0 && f.CapacityBytes == 0
}

// fullStore is what FlakyStore requires of the store it decorates: the
// data plane plus every optional capability the transfer engine probes
// for. Both fsim.SyntheticStore and fsim.DirStore qualify, so resume
// semantics stay observable under the injected faults.
type fullStore interface {
	fsim.Store
	fsim.Stater
	fsim.LedgerStore
	fsim.LedgerAppender
	fsim.LedgerLister
}

// FlakyStore decorates an fsim store with DiskFault pathology and counts
// the bytes the underlying store durably accepted, split into data vs
// ledger/journal — the source of the matrix's ledger-bytes aggregate.
// Faults never lie about success: an injected failure commits at most
// the prefix it reports, and ledger saves/appends fail atomically
// (nothing committed), so any ledger that loads is a valid prefix of
// what the receiver acknowledged.
type FlakyStore struct {
	inner fullStore
	fault DiskFault
	sleep func(time.Duration)

	mu        sync.Mutex
	rng       *rand.Rand
	writes    int64 // data writes attempted, for the EveryN counters
	remaining int64 // capacity left; only meaningful if capped
	capped    bool

	dataBytes   int64
	ledgerBytes int64
	faults      int64
}

// NewFlakyStore decorates inner with f, drawing short-write prefixes
// from a stream seeded with seed. inner must implement every fsim
// capability (SyntheticStore and DirStore both do).
func NewFlakyStore(inner fsim.Store, f DiskFault, seed int64) (*FlakyStore, error) {
	fs, ok := inner.(fullStore)
	if !ok {
		return nil, fmt.Errorf("chaos: store %T lacks ledger capabilities; wrap a SyntheticStore or DirStore", inner)
	}
	return &FlakyStore{
		inner:     fs,
		fault:     f,
		sleep:     time.Sleep,
		rng:       rand.New(rand.NewSource(seed)),
		remaining: f.CapacityBytes,
		capped:    f.CapacityBytes > 0,
	}, nil
}

// SetSleep replaces the delay implementation (tests only).
func (s *FlakyStore) SetSleep(sleep func(time.Duration)) { s.sleep = sleep }

// DataBytes reports data bytes the underlying store durably accepted.
func (s *FlakyStore) DataBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataBytes
}

// LedgerBytes reports ledger+journal bytes durably accepted.
func (s *FlakyStore) LedgerBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledgerBytes
}

// Faults reports how many injected failures the store has served.
func (s *FlakyStore) Faults() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// planWrite decides one data write's fate: how many of n bytes to
// commit, and the error to return alongside. It also spends capacity
// for the committed prefix.
func (s *FlakyStore) planWrite(n int) (commit int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	if s.fault.FailEveryN > 0 && s.writes%int64(s.fault.FailEveryN) == 0 {
		s.faults++
		return 0, ErrInjectedDiskFault
	}
	commit = n
	if s.fault.ShortEveryN > 0 && s.writes%int64(s.fault.ShortEveryN) == 0 {
		s.faults++
		commit = s.rng.Intn(n)
		err = fmt.Errorf("chaos: injected short write (%d of %d): %w", commit, n, ErrInjectedDiskFault)
	}
	if s.capped && int64(commit) > s.remaining {
		s.faults++
		commit = int(s.remaining)
		err = fmt.Errorf("chaos: destination full after %d more bytes: %w", commit, syscall.ENOSPC)
	}
	s.remaining -= int64(commit)
	return commit, err
}

// spendLedger spends capacity for an all-or-nothing ledger write.
func (s *FlakyStore) spendLedger(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capped && int64(n) > s.remaining {
		s.faults++
		return fmt.Errorf("chaos: no space for %d-byte ledger write: %w", n, syscall.ENOSPC)
	}
	s.remaining -= int64(n)
	s.ledgerBytes += int64(n)
	return nil
}

func (s *FlakyStore) creditData(n int) {
	s.mu.Lock()
	s.dataBytes += int64(n)
	s.mu.Unlock()
}

// refundLedger returns capacity/accounting for a ledger write the inner
// store rejected after we had already spent it.
func (s *FlakyStore) refundLedger(n int) {
	s.mu.Lock()
	s.remaining += int64(n)
	s.ledgerBytes -= int64(n)
	s.mu.Unlock()
}

func (s *FlakyStore) Open(name string, size int64) (fsim.FileReader, error) {
	return s.inner.Open(name, size)
}

func (s *FlakyStore) Create(name string, size int64) (fsim.FileWriter, error) {
	w, err := s.inner.Create(name, size)
	if err != nil {
		return nil, err
	}
	return &flakyWriter{inner: w, store: s}, nil
}

func (s *FlakyStore) Stat(name string) (int64, error) { return s.inner.Stat(name) }

func (s *FlakyStore) SaveLedger(session string, data []byte) error {
	if err := s.spendLedger(len(data)); err != nil {
		return err
	}
	if err := s.inner.SaveLedger(session, data); err != nil {
		s.refundLedger(len(data))
		return err
	}
	return nil
}

func (s *FlakyStore) LoadLedger(session string) ([]byte, error) {
	return s.inner.LoadLedger(session)
}

func (s *FlakyStore) RemoveLedger(session string) error {
	return s.inner.RemoveLedger(session)
}

func (s *FlakyStore) AppendLedger(session string, data []byte) error {
	if err := s.spendLedger(len(data)); err != nil {
		return err
	}
	if err := s.inner.AppendLedger(session, data); err != nil {
		s.refundLedger(len(data))
		return err
	}
	return nil
}

func (s *FlakyStore) LoadJournal(session string) ([]byte, error) {
	return s.inner.LoadJournal(session)
}

func (s *FlakyStore) ResetJournal(session string) error {
	return s.inner.ResetJournal(session)
}

func (s *FlakyStore) ListLedgers() ([]fsim.LedgerInfo, error) {
	return s.inner.ListLedgers()
}

// flakyWriter applies the store's data-write pathology to one file.
type flakyWriter struct {
	inner fsim.FileWriter
	store *FlakyStore
}

func (w *flakyWriter) WriteAt(p []byte, off int64) (int, error) {
	if d := w.store.fault.WriteDelayMs; d > 0 {
		w.store.sleep(time.Duration(d * float64(time.Millisecond)))
	}
	if len(p) == 0 {
		return w.inner.WriteAt(p, off)
	}
	commit, ferr := w.store.planWrite(len(p))
	n := 0
	if commit > 0 {
		var err error
		n, err = w.inner.WriteAt(p[:commit], off)
		if n > 0 {
			w.store.creditData(n)
		}
		if err != nil {
			return n, err
		}
	}
	if ferr != nil {
		return n, ferr
	}
	return n, nil
}

func (w *flakyWriter) Close() error { return w.inner.Close() }
