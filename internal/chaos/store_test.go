package chaos

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"automdt/internal/fsim"
)

func newFlaky(t *testing.T, f DiskFault) (*FlakyStore, *fsim.SyntheticStore) {
	t.Helper()
	inner := fsim.NewSyntheticStore()
	inner.Verify = true
	s, err := NewFlakyStore(inner, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSleep(func(time.Duration) {})
	return s, inner
}

func TestFlakyStoreCleanPassthrough(t *testing.T) {
	s, inner := newFlaky(t, DiskFault{})
	w, err := s.Create("f", 1024)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	fsim.FillContent("f", 0, buf)
	if n, err := w.WriteAt(buf, 0); n != 1024 || err != nil {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.DataBytes(); got != 1024 {
		t.Fatalf("DataBytes = %d, want 1024", got)
	}
	if inner.TotalWritten() != 1024 {
		t.Fatalf("inner TotalWritten = %d", inner.TotalWritten())
	}
}

func TestFlakyStoreFailEveryN(t *testing.T) {
	s, _ := newFlaky(t, DiskFault{FailEveryN: 3})
	w, _ := s.Create("f", 1<<20)
	buf := make([]byte, 100)
	var fails int
	for i := 0; i < 9; i++ {
		fsim.FillContent("f", int64(i)*100, buf)
		n, err := w.WriteAt(buf, int64(i)*100)
		if err != nil {
			if !errors.Is(err, ErrInjectedDiskFault) || n != 0 {
				t.Fatalf("write %d: n=%d err=%v", i, n, err)
			}
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("%d injected failures over 9 writes with FailEveryN=3", fails)
	}
	if got := s.DataBytes(); got != 600 {
		t.Fatalf("DataBytes = %d, want 600", got)
	}
}

func TestFlakyStoreShortWriteCommitsReportedPrefix(t *testing.T) {
	s, inner := newFlaky(t, DiskFault{ShortEveryN: 1})
	w, _ := s.Create("f", 1<<20)
	buf := make([]byte, 4096)
	fsim.FillContent("f", 0, buf)
	n, err := w.WriteAt(buf, 0)
	if err == nil || !errors.Is(err, ErrInjectedDiskFault) {
		t.Fatalf("short write returned err=%v", err)
	}
	if n >= len(buf) {
		t.Fatalf("short write reported full count %d", n)
	}
	// Verify=true means a wrong byte would have errored; committed size
	// must match the reported count exactly.
	if got := inner.WrittenBytes("f"); got != int64(n) {
		t.Fatalf("inner committed %d bytes, wrapper reported %d", got, n)
	}
	if errs := inner.Errors(); len(errs) != 0 {
		t.Fatalf("content verification failures: %v", errs)
	}
}

func TestFlakyStoreENOSPCBudgetSharedWithLedger(t *testing.T) {
	s, _ := newFlaky(t, DiskFault{CapacityBytes: 1000})
	w, _ := s.Create("f", 1<<20)
	buf := make([]byte, 600)
	fsim.FillContent("f", 0, buf)
	if n, err := w.WriteAt(buf, 0); n != 600 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	if err := s.SaveLedger("sess", make([]byte, 300)); err != nil {
		t.Fatalf("ledger within budget: %v", err)
	}
	// 100 bytes left: data write commits a 100-byte prefix then ENOSPC.
	fsim.FillContent("f", 600, buf)
	n, err := w.WriteAt(buf, 600)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over-budget write: n=%d err=%v, want ENOSPC", n, err)
	}
	if n != 100 {
		t.Fatalf("over-budget write committed %d, want the 100 remaining", n)
	}
	// Ledger writes past the budget fail atomically: nothing committed,
	// the previous ledger still loads.
	if err := s.AppendLedger("sess", make([]byte, 50)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ledger append past budget: %v, want ENOSPC", err)
	}
	if got, err := s.LoadLedger("sess"); err != nil || len(got) != 300 {
		t.Fatalf("prior ledger after ENOSPC: %d bytes, err=%v", len(got), err)
	}
	if j, err := s.LoadJournal("sess"); err != nil || len(j) != 0 {
		t.Fatalf("journal after failed append: %d bytes, err=%v", len(j), err)
	}
	if got := s.LedgerBytes(); got != 300 {
		t.Fatalf("LedgerBytes = %d, want 300", got)
	}
	if got := s.DataBytes(); got != 700 {
		t.Fatalf("DataBytes = %d, want 700", got)
	}
	if s.Faults() == 0 {
		t.Fatal("no faults counted")
	}
}

func TestFlakyStoreForwardsLedgerCapabilities(t *testing.T) {
	s, _ := newFlaky(t, DiskFault{})
	var store fsim.Store = s
	if _, ok := store.(fsim.Stater); !ok {
		t.Fatal("FlakyStore lost Stater")
	}
	if _, ok := store.(fsim.LedgerStore); !ok {
		t.Fatal("FlakyStore lost LedgerStore")
	}
	if _, ok := store.(fsim.LedgerAppender); !ok {
		t.Fatal("FlakyStore lost LedgerAppender")
	}
	if _, ok := store.(fsim.LedgerLister); !ok {
		t.Fatal("FlakyStore lost LedgerLister")
	}
	if err := s.SaveLedger("a", []byte("xy")); err != nil {
		t.Fatal(err)
	}
	ls, err := s.ListLedgers()
	if err != nil || len(ls) != 1 || ls[0].Session != "a" {
		t.Fatalf("ListLedgers = %v, %v", ls, err)
	}
	if err := s.RemoveLedger("a"); err != nil {
		t.Fatal(err)
	}
}

func TestFlakyStoreRejectsBareStore(t *testing.T) {
	if _, err := NewFlakyStore(bareStore{}, DiskFault{}, 1); err == nil {
		t.Fatal("bare store accepted")
	}
}

type bareStore struct{}

func (bareStore) Open(string, int64) (fsim.FileReader, error)   { return nil, errors.New("no") }
func (bareStore) Create(string, int64) (fsim.FileWriter, error) { return nil, errors.New("no") }
