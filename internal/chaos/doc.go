// Package chaos is the fault-injection toolkit behind the adversarial
// scenario matrix (`automdt-bench -exp chaos` and the nightly CI
// robustness battery). It supplies the mechanisms; the declarative
// scenario matrix that composes them into cells lives in
// internal/experiments.
//
// Three fault families, one per seam the transfer engine already
// exposes:
//
//   - Link: a Markov-modulated link model (per-state bandwidth, jitter,
//     and whole-connection loss, driven by a state-transition matrix)
//     applied as a net.Conn wrapper at the wire seam via
//     transfer.Config.WrapConn. The wrapper only delays writes or kills
//     whole connections — it never corrupts, reorders, or duplicates the
//     bytes it delivers (FuzzChaosConn holds it to that contract), so
//     every failure it induces is one the engine must recover from
//     without integrity machinery noticing anything.
//
//   - FlakyStore: an fsim.Store decorator injecting destination-disk
//     pathology — per-write latency, periodic write errors, short
//     writes, and a hard ENOSPC byte budget shared by data and ledger
//     writes — while forwarding the ledger capabilities (LedgerStore,
//     LedgerAppender, Stater, LedgerLister) so resume semantics stay
//     observable under the faults. It also counts data and ledger bytes
//     durably accepted, which is where the matrix's ledger-bytes
//     aggregate comes from.
//
//   - Peer: a hostile middlebox riding the same WrapConn seam, with
//     data and control roles sharing one state. It bit-flips forwarded
//     data frames, kills a single data connection after a byte budget
//     (exercising the protocol ≥3 targeted re-plan path), or partitions
//     the whole session mid-transfer and heals after a hold-down.
//
// Every component takes an explicit seed and draws from its own
// math/rand stream, so a scenario cell replays the same fault schedule
// run to run. Timing-dependent interleavings (where a kill lands
// relative to the probe tick) still vary; the decisions do not.
package chaos
