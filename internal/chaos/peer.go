package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrPeerKilled marks a write on a connection the hostile peer cut, and
// ErrPeerPartitioned a write attempted while the session is partitioned.
var (
	ErrPeerKilled      = errors.New("chaos: peer killed connection (injected)")
	ErrPeerPartitioned = errors.New("chaos: network partition (injected)")
)

// PeerFault declares a hostile middlebox for one scenario cell. The
// zero value injects nothing.
type PeerFault struct {
	Name string `json:"name"`
	// FlipPerMB is the probability, per data megabyte forwarded, of
	// flipping one random bit in the forwarded copy. With wire checksums
	// on, every flip must surface as a CRC/decode failure, never as
	// corrupt bytes on disk.
	FlipPerMB float64 `json:"flip_per_mb,omitempty"`
	// KillDataAfterBytes cuts one data connection each time the
	// forwarded data-byte count crosses another multiple of this budget
	// (0 = never), up to KillCount kills. This is the targeted fault the
	// protocol ≥3 re-plan path exists for.
	KillDataAfterBytes int64 `json:"kill_data_after_bytes,omitempty"`
	// KillCount bounds the kills (default 1 when KillDataAfterBytes > 0).
	KillCount int `json:"kill_count,omitempty"`
	// PartitionAfterBytes severs every connection — control plane
	// included — once total forwarded bytes cross it (0 = never).
	PartitionAfterBytes int64 `json:"partition_after_bytes,omitempty"`
	// PartitionMs is how long the partition holds before healing
	// (default 200 ms).
	PartitionMs int `json:"partition_ms,omitempty"`
}

// Clean reports whether the fault injects nothing.
func (f PeerFault) Clean() bool {
	return f.FlipPerMB == 0 && f.KillDataAfterBytes == 0 && f.PartitionAfterBytes == 0
}

// Peer is a live hostile middlebox sharing one state across a session's
// connections. It rides the same transfer.Config.WrapConn seam as Link;
// the kind passed to WrapConn ("ctrl" or "data") selects the role, so
// corruption and kills target the data plane while a partition takes
// down the control plane too.
type Peer struct {
	fault PeerFault
	now   func() time.Time

	mu          sync.Mutex
	rng         *rand.Rand
	dataBytes   int64
	totalBytes  int64
	kills       int
	flips       int64
	partitioned bool // partition triggered (stays true after heal)
	healAt      time.Time
	conns       map[*peerConn]struct{}
	injections  []time.Time // wall time of each kill/partition, for detection latency
}

// NewPeer builds a hostile peer drawing corruption offsets from a
// stream seeded with seed.
func NewPeer(f PeerFault, seed int64) *Peer {
	return &Peer{
		fault: f,
		now:   time.Now,
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[*peerConn]struct{}),
	}
}

// Kills reports how many data connections the peer has cut (the
// partition is counted separately).
func (p *Peer) Kills() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kills
}

// Flips reports how many bit flips the peer has injected.
func (p *Peer) Flips() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flips
}

// Injections returns the wall time of each kill/partition injected so
// far, for detection/recovery latency aggregates.
func (p *Peer) Injections() []time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]time.Time(nil), p.injections...)
}

// WrapConn wraps one dialed connection. kind is the transfer engine's
// connection role: "ctrl" or "data".
func (p *Peer) WrapConn(kind string, c net.Conn) net.Conn {
	if p == nil || p.fault.Clean() {
		return c
	}
	pc := &peerConn{Conn: c, peer: p, data: kind == "data"}
	p.mu.Lock()
	p.conns[pc] = struct{}{}
	p.mu.Unlock()
	return pc
}

// plan makes one write's decisions under the shared state: whether the
// session is (still) partitioned, whether to flip a bit (and where),
// and whether this write kills its connection. Connections to sever on
// partition entry are returned so the caller can close them outside the
// lock.
func (p *Peer) plan(c *peerConn, n int) (verdict peerVerdict, sever []*peerConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.fault

	p.totalBytes += int64(n)
	if c.data {
		p.dataBytes += int64(n)
	}

	if f.PartitionAfterBytes > 0 && !p.partitioned && p.totalBytes >= f.PartitionAfterBytes {
		hold := time.Duration(f.PartitionMs) * time.Millisecond
		if hold <= 0 {
			hold = 200 * time.Millisecond
		}
		p.partitioned = true
		p.healAt = p.now().Add(hold)
		p.injections = append(p.injections, p.now())
		for pc := range p.conns {
			sever = append(sever, pc)
		}
		p.conns = make(map[*peerConn]struct{})
		verdict.blocked = true
		return verdict, sever
	}
	if p.partitioned && p.now().Before(p.healAt) {
		verdict.blocked = true
		return verdict, nil
	}

	if c.data {
		kc := f.KillCount
		if kc <= 0 {
			kc = 1
		}
		if f.KillDataAfterBytes > 0 && p.kills < kc &&
			p.dataBytes >= f.KillDataAfterBytes*int64(p.kills+1) {
			p.kills++
			p.injections = append(p.injections, p.now())
			verdict.kill = true
			verdict.killOff = p.rng.Intn(n)
			delete(p.conns, c)
			return verdict, nil
		}
		if f.FlipPerMB > 0 && p.rng.Float64() < f.FlipPerMB*float64(n)/(1<<20) {
			p.flips++
			verdict.flip = true
			verdict.flipBit = p.rng.Intn(n * 8)
		}
	}
	return verdict, nil
}

func (p *Peer) drop(c *peerConn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

type peerVerdict struct {
	blocked bool
	kill    bool
	killOff int
	flip    bool
	flipBit int
}

// peerConn is one connection through the Peer. Like linkConn it acts
// only on writes; unlike linkConn it is allowed to corrupt them.
type peerConn struct {
	net.Conn
	peer *Peer
	data bool

	mu   sync.Mutex
	dead bool
}

func (c *peerConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, ErrPeerKilled
	}
	if len(p) == 0 {
		return c.Conn.Write(p)
	}
	v, sever := c.peer.plan(c, len(p))
	if len(sever) > 0 {
		for _, pc := range sever {
			pc.kill()
		}
		return 0, ErrPeerPartitioned
	}
	if v.blocked {
		c.kill()
		return 0, ErrPeerPartitioned
	}
	if v.kill {
		n, _ := c.Conn.Write(p[:v.killOff])
		c.kill()
		return n, ErrPeerKilled
	}
	if v.flip {
		buf := make([]byte, len(p))
		copy(buf, p)
		buf[v.flipBit/8] ^= 1 << (v.flipBit % 8)
		return c.Conn.Write(buf)
	}
	return c.Conn.Write(p)
}

// kill marks the connection dead and closes the underlying socket.
func (c *peerConn) kill() {
	c.mu.Lock()
	already := c.dead
	c.dead = true
	c.mu.Unlock()
	if !already {
		c.Conn.Close()
	}
}

func (c *peerConn) Close() error {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	c.peer.drop(c)
	return c.Conn.Close()
}
