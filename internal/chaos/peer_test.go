package chaos

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

func TestPeerCleanPassthrough(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	p := NewPeer(PeerFault{}, 1)
	if got := p.WrapConn("data", c1); got != c1 {
		t.Fatal("clean peer did not return the conn unchanged")
	}
	var nilPeer *Peer
	if got := nilPeer.WrapConn("data", c1); got != c1 {
		t.Fatal("nil peer did not return the conn unchanged")
	}
}

func TestPeerFlipsExactlyOneBit(t *testing.T) {
	p := NewPeer(PeerFault{FlipPerMB: 1 << 20}, 3) // certain flip per byte
	c1, c2 := net.Pipe()
	w := p.WrapConn("data", c1)
	sink := drain(c2)
	msg := make([]byte, 512)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	orig := append([]byte(nil), msg...)
	n, err := w.Write(msg)
	if n != len(msg) || err != nil {
		t.Fatalf("corrupting write: n=%d err=%v", n, err)
	}
	w.Close()
	<-sink.done
	if !bytes.Equal(msg, orig) {
		t.Fatal("peer mutated the caller's buffer")
	}
	got := sink.buf.Bytes()
	if len(got) != len(msg) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(msg))
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^msg[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits differ, want exactly 1", diff)
	}
	if p.Flips() != 1 {
		t.Fatalf("Flips() = %d", p.Flips())
	}
}

func TestPeerKillsDataConnOnBudget(t *testing.T) {
	p := NewPeer(PeerFault{KillDataAfterBytes: 1000}, 5)
	c1, c2 := net.Pipe()
	w := p.WrapConn("data", c1)
	sink := drain(c2)
	buf := make([]byte, 600)
	if n, err := w.Write(buf); n != 600 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err := w.Write(buf) // crosses the 1000-byte budget
	if !errors.Is(err, ErrPeerKilled) {
		t.Fatalf("budget-crossing write: n=%d err=%v, want ErrPeerKilled", n, err)
	}
	<-sink.done
	if got := sink.buf.Len(); got != 600+n {
		t.Fatalf("delivered %d bytes, want %d", got, 600+n)
	}
	if p.Kills() != 1 {
		t.Fatalf("Kills() = %d, want 1", p.Kills())
	}
	if len(p.Injections()) != 1 {
		t.Fatalf("Injections() = %v, want one timestamp", p.Injections())
	}

	// The kill is targeted: a fresh connection through the same peer
	// still works (KillCount defaults to 1).
	c3, c4 := net.Pipe()
	w2 := p.WrapConn("data", c3)
	sink2 := drain(c4)
	if n, err := w2.Write(buf); n != 600 || err != nil {
		t.Fatalf("post-kill write on fresh conn: n=%d err=%v", n, err)
	}
	w2.Close()
	<-sink2.done
}

func TestPeerPartitionSeversEverythingThenHeals(t *testing.T) {
	p := NewPeer(PeerFault{PartitionAfterBytes: 100, PartitionMs: 50}, 9)
	now := time.Unix(0, 0)
	p.now = func() time.Time { return now }

	d1, d2 := net.Pipe()
	k1, k2 := net.Pipe()
	data := p.WrapConn("data", d1)
	ctrl := p.WrapConn("ctrl", k1)
	dsink, csink := drain(d2), drain(k2)

	buf := make([]byte, 200)
	if _, err := data.Write(buf); !errors.Is(err, ErrPeerPartitioned) {
		t.Fatalf("partition trigger: %v, want ErrPeerPartitioned", err)
	}
	// Both registered conns were severed, control plane included.
	<-dsink.done
	<-csink.done
	if _, err := ctrl.Write([]byte("x")); !errors.Is(err, ErrPeerKilled) {
		t.Fatalf("severed ctrl conn write: %v, want ErrPeerKilled", err)
	}

	// While partitioned, new connections die on first write too.
	n1, n2 := net.Pipe()
	nconn := p.WrapConn("data", n1)
	nsink := drain(n2)
	if _, err := nconn.Write(buf); !errors.Is(err, ErrPeerPartitioned) {
		t.Fatalf("write during partition: %v", err)
	}
	<-nsink.done

	// After the hold-down the partition heals and traffic flows again.
	now = now.Add(60 * time.Millisecond)
	h1, h2 := net.Pipe()
	hconn := p.WrapConn("data", h1)
	hsink := drain(h2)
	if n, err := hconn.Write(buf); n != len(buf) || err != nil {
		t.Fatalf("post-heal write: n=%d err=%v", n, err)
	}
	hconn.Close()
	<-hsink.done
	if len(p.Injections()) != 1 {
		t.Fatalf("Injections() recorded %d events, want 1", len(p.Injections()))
	}
}
