package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"automdt/internal/rate"
)

// ErrLinkDown marks a write that failed because the Markov link killed
// the connection carrying it. The transfer engine treats it like any
// other connection death: retire the socket, re-plan its chunks.
var ErrLinkDown = errors.New("chaos: link dropped connection (injected)")

// LinkState is one regime of a Markov-modulated link.
type LinkState struct {
	Name string `json:"name"`
	// BandwidthMbps caps the aggregate rate forwarded across every
	// connection sharing the link while this state holds (0 = unshaped).
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`
	// JitterMs is the mean of the exponentially-distributed extra delay
	// added to each write (0 = none).
	JitterMs float64 `json:"jitter_ms,omitempty"`
	// DropPerMB is the probability, per megabyte forwarded, that the
	// connection carrying the write is killed outright. Whole-connection
	// loss is the only loss the wrapper injects — bytes it does deliver
	// are never altered.
	DropPerMB float64 `json:"drop_per_mb,omitempty"`
}

// LinkModel is a declarative Markov-modulated link: named impairment
// states and a transition matrix walked on a fixed cadence, the standard
// formalism for channels whose impairment regime drifts over time.
type LinkModel struct {
	Name   string      `json:"name"`
	States []LinkState `json:"states"`
	// Trans[i][j] is the probability of stepping from state i to state
	// j; each row must sum to 1 (±1e-6). Omitted with a single state.
	Trans [][]float64 `json:"trans,omitempty"`
	// StepMs is the state-advance cadence (default 100 ms).
	StepMs int `json:"step_ms,omitempty"`
}

// Clean reports whether the model injects nothing (no states).
func (m LinkModel) Clean() bool { return len(m.States) == 0 }

// Validate checks the state/transition geometry.
func (m LinkModel) Validate() error {
	if m.Clean() {
		return nil
	}
	if len(m.States) > 1 || m.Trans != nil {
		if len(m.Trans) != len(m.States) {
			return fmt.Errorf("chaos: link %q has %d states but %d transition rows",
				m.Name, len(m.States), len(m.Trans))
		}
		for i, row := range m.Trans {
			if len(row) != len(m.States) {
				return fmt.Errorf("chaos: link %q transition row %d has %d entries, want %d",
					m.Name, i, len(row), len(m.States))
			}
			sum := 0.0
			for _, p := range row {
				if p < 0 {
					return fmt.Errorf("chaos: link %q transition row %d has a negative probability", m.Name, i)
				}
				sum += p
			}
			if sum < 1-1e-6 || sum > 1+1e-6 {
				return fmt.Errorf("chaos: link %q transition row %d sums to %g, want 1", m.Name, i, sum)
			}
		}
	}
	return nil
}

// Link is a live Markov-modulated link shared by every connection of a
// session: one state walk, one aggregate bandwidth bucket. Wrap each
// dialed connection with WrapConn (transfer.Config.WrapConn is the
// seam). Safe for concurrent use.
type Link struct {
	model LinkModel
	step  time.Duration
	lim   *rate.Limiter

	// now and sleep are injectable so tests and the fuzz harness can run
	// the state walk and jitter without wall-clock delays.
	now   func() time.Time
	sleep func(time.Duration)

	mu       sync.Mutex
	rng      *rand.Rand
	state    int
	lastStep time.Time
	kills    int64
}

// NewLink starts a link at the model's first state, drawing every
// decision (state walk, jitter, drops) from a stream seeded with seed.
func NewLink(m LinkModel, seed int64) (*Link, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	step := time.Duration(m.StepMs) * time.Millisecond
	if step <= 0 {
		step = 100 * time.Millisecond
	}
	l := &Link{
		model: m,
		step:  step,
		lim:   rate.Unlimited(),
		now:   time.Now,
		sleep: time.Sleep,
		rng:   rand.New(rand.NewSource(seed)),
	}
	l.lastStep = l.now()
	if !m.Clean() {
		l.applyState(0)
	}
	return l, nil
}

// SetClock replaces the link's time sources (tests and fuzzing only).
func (l *Link) SetClock(now func() time.Time, sleep func(time.Duration)) {
	l.mu.Lock()
	l.now = now
	l.sleep = sleep
	l.lastStep = now()
	l.mu.Unlock()
}

// Kills reports how many connections the link has dropped so far.
func (l *Link) Kills() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.kills
}

// State returns the current state's name ("" for a clean link).
func (l *Link) State() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.model.Clean() {
		return ""
	}
	l.advance()
	return l.model.States[l.state].Name
}

// applyState points the shared bandwidth bucket at state i's cap. Burst
// is 20 ms of tokens so a downshifted state throttles promptly. Caller
// holds mu (or is the constructor).
func (l *Link) applyState(i int) {
	l.state = i
	bps := l.model.States[i].BandwidthMbps * 1e6 / 8
	l.lim.SetRateBurst(bps, bps*0.02)
}

// advance walks the transition matrix for every step elapsed since the
// last walk. Caller holds mu.
func (l *Link) advance() {
	if l.model.Clean() || len(l.model.Trans) == 0 {
		return
	}
	now := l.now()
	for !l.lastStep.Add(l.step).After(now) {
		l.lastStep = l.lastStep.Add(l.step)
		roll, acc := l.rng.Float64(), 0.0
		next := l.state
		for j, p := range l.model.Trans[l.state] {
			acc += p
			if roll < acc {
				next = j
				break
			}
		}
		if next != l.state {
			l.applyState(next)
		}
	}
}

// plan makes one write's fault decisions under the current state:
// jitter to add, and whether (and after how many forwarded bytes) to
// kill the connection.
func (l *Link) plan(n int) (delay time.Duration, kill bool, killOff int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.model.Clean() {
		return 0, false, 0
	}
	l.advance()
	st := l.model.States[l.state]
	if st.JitterMs > 0 {
		delay = time.Duration(l.rng.ExpFloat64() * st.JitterMs * float64(time.Millisecond))
	}
	if st.DropPerMB > 0 && l.rng.Float64() < st.DropPerMB*float64(n)/(1<<20) {
		kill, killOff = true, l.rng.Intn(n)
		l.kills++
	}
	return delay, kill, killOff
}

// WrapConn wraps a dialed connection with the link's impairments. Only
// writes are shaped: on loopback the data volume flows through the
// sender's writes, and leaving reads untouched keeps the wrapper
// byte-transparent in both directions.
func (l *Link) WrapConn(c net.Conn) net.Conn {
	if l == nil || l.model.Clean() {
		return c
	}
	return &linkConn{Conn: c, link: l}
}

// linkConn is one connection riding a Link. It delays or kills; it
// never alters, reorders, or duplicates the bytes it forwards
// (FuzzChaosConn enforces exactly this).
type linkConn struct {
	net.Conn
	link *Link

	mu   sync.Mutex
	dead bool
}

func (c *linkConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, ErrLinkDown
	}
	if len(p) == 0 {
		return c.Conn.Write(p)
	}
	delay, kill, killOff := c.link.plan(len(p))
	if delay > 0 {
		c.link.sleep(delay)
	}
	// The shared bucket paces the aggregate link; Background is safe
	// because the wait is bounded by the state's rate and the engine
	// closes the underlying conn on cancellation, failing the next write.
	if err := c.link.lim.WaitN(context.Background(), len(p)); err != nil {
		return 0, err
	}
	if kill {
		n, _ := c.Conn.Write(p[:killOff])
		c.mu.Lock()
		c.dead = true
		c.mu.Unlock()
		c.Conn.Close()
		return n, ErrLinkDown
	}
	return c.Conn.Write(p)
}

func (c *linkConn) Close() error {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	return c.Conn.Close()
}
