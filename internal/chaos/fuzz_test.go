package chaos

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// FuzzChaosConn holds the link wrapper to its transparency contract:
// whatever model and write schedule the fuzzer invents, the bytes that
// come out of a chaos-wrapped connection are an exact prefix of the
// bytes written into it — never corrupted, reordered, or duplicated —
// and the prefix length is exactly the sum of the write counts the
// wrapper reported. Faults may only delay writes or kill the whole
// connection.
func FuzzChaosConn(f *testing.F) {
	f.Add(int64(1), uint8(1), uint16(100), uint16(50), []byte{8, 1, 16, 4, 32})
	f.Add(int64(42), uint8(3), uint16(0), uint16(1000), []byte{255, 255, 0, 7, 7, 7, 1})
	f.Add(int64(-9), uint8(2), uint16(5000), uint16(65535), []byte{1})
	f.Fuzz(func(t *testing.T, seed int64, nstates uint8, jitterX100 uint16, dropX100 uint16, schedule []byte) {
		ns := int(nstates)%4 + 1
		m := LinkModel{Name: "fuzz"}
		for i := 0; i < ns; i++ {
			// Vary the per-state fault intensity off the fuzzed base so
			// multi-state models exercise different regimes. Bandwidth is
			// left unshaped: the limiter's timing is not under test and
			// must not slow the fuzzer.
			m.States = append(m.States, LinkState{
				Name:      string(rune('a' + i)),
				JitterMs:  float64(jitterX100) / 100 * float64(i),
				DropPerMB: float64(dropX100) / 100 * float64(i+1),
			})
			row := make([]float64, ns)
			for j := range row {
				row[j] = 1 / float64(ns)
			}
			m.Trans = append(m.Trans, row)
		}
		l, err := NewLink(m, seed)
		if err != nil {
			t.Fatalf("fuzz-built model invalid: %v", err)
		}
		clk := &fakeClock{t: time.Unix(0, 0)}
		l.SetClock(clk.now, func(time.Duration) {}) // jitter decided, never slept
		c1, c2 := net.Pipe()
		w := l.WrapConn(c1)
		sink := drain(c2)

		var golden bytes.Buffer // every byte handed to the wrapper, in order
		acked := 0              // bytes the wrapper reported written
		var ctr uint64
		for i, sz := range schedule {
			clk.advance(time.Duration(sz) * 7 * time.Millisecond)
			n := (int(sz)%300 + 1) * 17 // 17..5117 bytes
			msg := make([]byte, n)
			for off := 0; off+8 <= n; off += 8 {
				binary.LittleEndian.PutUint64(msg[off:], ctr)
				ctr++
			}
			msg[n-1] = byte(i)
			golden.Write(msg)
			wn, werr := w.Write(msg)
			if wn > n {
				t.Fatalf("write %d reported %d > %d bytes", i, wn, n)
			}
			acked += wn
			if werr != nil {
				if !errors.Is(werr, ErrLinkDown) {
					t.Fatalf("write %d: unexpected error %v", i, werr)
				}
				if wn == n {
					t.Fatalf("write %d reported full delivery alongside ErrLinkDown", i)
				}
				break
			}
			if wn != n {
				t.Fatalf("write %d: short count %d without error", i, wn)
			}
		}
		w.Close()
		<-sink.done

		got := sink.buf.Bytes()
		if len(got) != acked {
			t.Fatalf("delivered %d bytes, wrapper acked %d", len(got), acked)
		}
		want := golden.Bytes()
		if len(got) > len(want) {
			t.Fatalf("delivered %d bytes, only %d were ever written (duplication)", len(got), len(want))
		}
		if !bytes.Equal(got, want[:len(got)]) {
			t.Fatal("delivered bytes are not an exact prefix of the written stream")
		}
	})
}

// FuzzChaosConn's sink must also hold when reads and writes interleave
// through a real buffered transport; a quick non-fuzz sanity check that
// the helper plumbing above (pipe + drain) is itself transparent.
func TestDrainPlumbingTransparent(t *testing.T) {
	c1, c2 := net.Pipe()
	sink := drain(c2)
	want := []byte("plumbing check")
	if _, err := c1.Write(want); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	<-sink.done
	if !bytes.Equal(sink.buf.Bytes(), want) {
		t.Fatal("drain altered bytes")
	}
}
