package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeClock advances only when told to, so link tests never sleep.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLinkModelValidate(t *testing.T) {
	ok := LinkModel{Name: "two", States: []LinkState{{Name: "a"}, {Name: "b"}},
		Trans: [][]float64{{0.5, 0.5}, {1, 0}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	if err := (LinkModel{}).Validate(); err != nil {
		t.Fatalf("clean model rejected: %v", err)
	}
	bad := []LinkModel{
		{States: []LinkState{{}, {}}, Trans: [][]float64{{1, 0}}},             // wrong row count
		{States: []LinkState{{}, {}}, Trans: [][]float64{{1}, {0, 1}}},        // ragged row
		{States: []LinkState{{}, {}}, Trans: [][]float64{{2, -1}, {0, 1}}},    // negative
		{States: []LinkState{{}, {}}, Trans: [][]float64{{0.5, 0.4}, {0, 1}}}, // row sum != 1
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestLinkCleanPassthrough(t *testing.T) {
	l, err := NewLink(LinkModel{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := l.WrapConn(c1); got != c1 {
		t.Fatal("clean link did not return the conn unchanged")
	}
	var nilLink *Link
	if got := nilLink.WrapConn(c1); got != c1 {
		t.Fatal("nil link did not return the conn unchanged")
	}
}

func TestLinkDeterministicDecisions(t *testing.T) {
	m := LinkModel{
		Name: "lossy",
		States: []LinkState{
			{Name: "good", JitterMs: 1, DropPerMB: 2},
			{Name: "bad", JitterMs: 10, DropPerMB: 50},
		},
		Trans: [][]float64{{0.7, 0.3}, {0.4, 0.6}},
	}
	mk := func() *Link {
		l, err := NewLink(m, 42)
		if err != nil {
			t.Fatal(err)
		}
		clk := &fakeClock{t: time.Unix(0, 0)}
		l.SetClock(clk.now, func(time.Duration) {})
		return l
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		da, ka, oa := a.plan(64 << 10)
		db, kb, ob := b.plan(64 << 10)
		if da != db || ka != kb || oa != ob {
			t.Fatalf("plan %d diverged: (%v %v %v) vs (%v %v %v)", i, da, ka, oa, db, kb, ob)
		}
	}
}

func TestLinkStateWalk(t *testing.T) {
	m := LinkModel{
		Name: "pingpong",
		States: []LinkState{
			{Name: "a", BandwidthMbps: 80},
			{Name: "b", BandwidthMbps: 8},
		},
		// Deterministic alternation: every step flips state.
		Trans:  [][]float64{{0, 1}, {1, 0}},
		StepMs: 100,
	}
	l, err := NewLink(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(0, 0)}
	l.SetClock(clk.now, func(time.Duration) {})
	if got := l.State(); got != "a" {
		t.Fatalf("initial state %q, want a", got)
	}
	clk.advance(100 * time.Millisecond)
	if got := l.State(); got != "b" {
		t.Fatalf("after one step state %q, want b", got)
	}
	if r := l.lim.Rate(); r != 8*1e6/8 {
		t.Fatalf("state b bandwidth bucket rate %v, want 1e6", r)
	}
	clk.advance(300 * time.Millisecond) // three more steps: b->a->b->a
	if got := l.State(); got != "a" {
		t.Fatalf("after four steps state %q, want a", got)
	}
}

// pipeSink reads everything c2 delivers into a buffer.
type pipeSink struct {
	buf  bytes.Buffer
	done chan struct{}
}

func drain(c net.Conn) *pipeSink {
	s := &pipeSink{done: make(chan struct{})}
	go func() {
		defer close(s.done)
		io.Copy(&s.buf, c) //nolint:errcheck
	}()
	return s
}

func TestLinkKillDeliversExactPrefix(t *testing.T) {
	m := LinkModel{
		Name:   "killer",
		States: []LinkState{{Name: "deadly", DropPerMB: 1 << 20}}, // certain kill per byte
	}
	l, err := NewLink(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	l.SetClock((&fakeClock{t: time.Unix(0, 0)}).now, func(time.Duration) {})
	c1, c2 := net.Pipe()
	w := l.WrapConn(c1)
	sink := drain(c2)

	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(i)
	}
	n, werr := w.Write(msg)
	if !errors.Is(werr, ErrLinkDown) {
		t.Fatalf("write under certain kill: n=%d err=%v, want ErrLinkDown", n, werr)
	}
	if n >= len(msg) {
		t.Fatalf("killed write reported full delivery (%d)", n)
	}
	<-sink.done // wrapper closed the conn on kill
	if got := sink.buf.Bytes(); !bytes.Equal(got, msg[:n]) {
		t.Fatalf("delivered %d bytes, not the exact reported prefix of %d", len(got), n)
	}
	if _, err := w.Write(msg); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("write after kill: %v, want ErrLinkDown", err)
	}
	if l.Kills() != 1 {
		t.Fatalf("Kills() = %d, want 1", l.Kills())
	}
}
