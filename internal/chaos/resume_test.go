package chaos_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"testing"
	"time"

	"automdt/internal/chaos"
	"automdt/internal/fsim"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

// TestResumeAfterDiskFaults is the resume property of the cell
// invariant, pinned directly against the engine: a receiver whose store
// fails writes (ENOSPC budgets, short writes, injected errors) must,
// whenever an attempt fails, leave a ledger the next attempt can load —
// and once the byte budget opens up, the resumed run must re-send fewer
// than 10% of the bytes that had already committed.
func TestResumeAfterDiskFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("needs live loopback transfers")
	}
	faults := []chaos.DiskFault{
		{Name: "enospc", CapacityBytes: 1 << 20},
		{Name: "flaky", FailEveryN: 11, ShortEveryN: 7},
		{Name: "enospc-short", CapacityBytes: 2 << 20, ShortEveryN: 5},
	}
	for _, df := range faults {
		t.Run(df.Name, func(t *testing.T) { resumeUnderFault(t, df) })
	}
}

func resumeUnderFault(t *testing.T, df chaos.DiskFault) {
	rng := rand.New(rand.NewSource(43))
	manifest := workload.Mixed(3<<20, 32<<10, 256<<10, rng)
	total := manifest.TotalBytes()
	sid := "chaos-resume-" + df.Name

	src := fsim.NewSyntheticStore()
	inner := fsim.NewSyntheticStore()
	inner.Verify = true
	dst, err := chaos.NewFlakyStore(inner, df, 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg := transfer.Config{
		ChunkBytes:     64 << 10,
		MaxThreads:     8,
		ProbeInterval:  50 * time.Millisecond,
		InitialThreads: 2,
		Conns:          2,
		SessionID:      sid,
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Phase 1: run attempts under the fault until one fails. Every failed
	// attempt must leave a loadable ledger (or none at all — a crash
	// before the first commit persists nothing, which resume handles).
	var failed bool
	for attempt := 0; attempt < 6 && ctx.Err() == nil; attempt++ {
		_, rerr := transfer.Loopback(ctx, cfg, manifest, src, dst, nil)
		if rerr == nil {
			continue
		}
		failed = true
		if _, lerr := transfer.LoadSessionLedger(dst, sid); lerr != nil && !errors.Is(lerr, os.ErrNotExist) {
			t.Fatalf("attempt %d failed (%v) and left an unloadable ledger: %v", attempt, rerr, lerr)
		}
	}
	if !failed {
		t.Fatalf("no attempt failed under fault %+v; the fault axis is not biting", df)
	}
	for _, verr := range inner.Errors() {
		t.Fatalf("destination corruption under %s: %v", df.Name, verr)
	}

	// Phase 2: lift the byte budget and resume. The committed prefix must
	// be skipped — the resumed run may re-send at most 10% of it.
	committed := int64(0)
	if l, lerr := transfer.LoadSessionLedger(dst, sid); lerr == nil {
		committed = l.CommittedBytes()
	}
	relaxed, err := chaos.NewFlakyStore(inner, chaos.DiskFault{}, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := transfer.Loopback(ctx, cfg, manifest, src, relaxed, nil)
	if rerr != nil {
		t.Fatalf("resume with the fault lifted failed: %v", rerr)
	}
	firstSends := res.WireBytes - res.ResentBytes
	if over := firstSends - (total - committed); over > committed/10 {
		t.Fatalf("resume re-sent %d of %d committed bytes (wire %d, recovery %d)",
			over, committed, res.WireBytes, res.ResentBytes)
	}
	for _, verr := range inner.Errors() {
		t.Fatalf("destination corruption after resume: %v", verr)
	}
	if inner.TotalWritten() < total {
		t.Fatalf("destination saw %d of %d bytes", inner.TotalWritten(), total)
	}
}
