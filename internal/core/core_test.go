package core

import (
	"bytes"
	"math/rand"
	"testing"

	"automdt/internal/env"
	"automdt/internal/marlin"
	"automdt/internal/probe"
	"automdt/internal/rl"
	"automdt/internal/sim"
	"automdt/internal/static"
	"automdt/internal/tensor"
)

// readBottleneck is the paper's §V-B-1 read-bottleneck testbed.
func readBottleneck() sim.Config {
	return sim.Config{
		TPT:            [3]float64{80, 160, 200},
		Bandwidth:      [3]float64{1000, 1000, 1000},
		SenderBufCap:   500,
		ReceiverBufCap: 500,
		ChunkMb:        8,
	}
}

// fastOpts keeps training quick for tests.
func fastOpts() Options {
	return Options{
		MaxThreads: 16,
		Net:        rl.NetConfig{Hidden: 32, PolicyBlocks: 1, ValueBlocks: 1},
		Train: rl.TrainConfig{
			Episodes:      500,
			LR:            1e-3,
			UpdateEpochs:  4,
			StagnantLimit: 1 << 30,
		},
		Seed: 9,
	}
}

func probeTestbed(t *testing.T) *probe.Profile {
	t.Helper()
	p, err := probe.Explore(probe.SimRunner{Sim: sim.New(readBottleneck())},
		rand.New(rand.NewSource(5)), probe.Options{Steps: 300, MaxThreads: 16})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.K != env.DefaultK || o.MaxThreads != 32 || o.SenderBufMb != 500 || o.Seed != 1 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestTrainPipelineProducesWorkingController(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	p := probeTestbed(t)
	sys, err := Train(p, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sys.TrainResult == nil || sys.TrainResult.Episodes == 0 {
		t.Fatal("no training happened")
	}

	// Drive a simulated transfer with the trained controller and compare
	// with the static Globus-like baseline: AutoMDT must finish faster.
	run := func(ctrl env.Controller) *SimTransferResult {
		st := &SimTransfer{
			Cfg:        readBottleneck(),
			Controller: ctrl,
			TotalMb:    8000, // 1 GB at 8 bits/byte
			MaxTicks:   600,
			MaxThreads: 16,
		}
		return st.Run()
	}
	auto := run(sys.Controller())
	if !auto.Completed {
		t.Fatalf("AutoMDT did not complete: wrote %.0f of 8000 Mb in %d s", auto.WrittenMb, auto.Ticks)
	}
	stat := run(static.New(4))
	if stat.Completed && stat.Ticks <= auto.Ticks {
		t.Fatalf("AutoMDT (%d s) not faster than static-4 (%d s)", auto.Ticks, stat.Ticks)
	}
	// AutoMDT should reach ≥60%% of the 1000 Mbps bottleneck on average.
	if auto.AvgMbps < 600 {
		t.Fatalf("AutoMDT average %v Mbps too low", auto.AvgMbps)
	}
}

func TestProbeAndTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	opts := fastOpts()
	opts.Train.Episodes = 50
	sys, err := ProbeAndTrain(probe.SimRunner{Sim: sim.New(readBottleneck())},
		rand.New(rand.NewSource(6)), probe.Options{Steps: 100, MaxThreads: 16}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Profile == nil || sys.Agent == nil {
		t.Fatal("incomplete system")
	}
}

func TestSaveLoadSystemRoundTrip(t *testing.T) {
	p := probeTestbed(t)
	opts := fastOpts()
	opts.Train.Episodes = 20
	sys, err := Train(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveAgent(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSystem(&buf, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	states := tensor.Zeros(2, env.StateDim)
	m1, _ := sys.Agent.Policy.MeanStd(states)
	m2, _ := restored.Agent.Policy.MeanStd(states)
	for i := range m1.Data {
		if m1.Data[i] != m2.Data[i] {
			t.Fatal("restored agent differs")
		}
	}
}

func TestLoadSystemArchMismatch(t *testing.T) {
	p := probeTestbed(t)
	opts := fastOpts()
	opts.Train.Episodes = 5
	sys, err := Train(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sys.SaveAgent(&buf)
	bad := opts
	bad.Net.Hidden = 64
	if _, err := LoadSystem(&buf, p, bad); err == nil {
		t.Fatal("expected architecture mismatch error")
	}
}

func TestSimTransferFixedThreadsCompletes(t *testing.T) {
	st := &SimTransfer{
		Cfg:            readBottleneck(),
		TotalMb:        2000,
		InitialThreads: 13, // enough read threads to saturate
		MaxTicks:       100,
	}
	// With fixed 13/13/13 (no controller) the bottleneck is saturated.
	res := st.Run()
	if !res.Completed {
		t.Fatalf("fixed-thread transfer incomplete: %.0f Mb in %d s", res.WrittenMb, res.Ticks)
	}
	if res.AvgMbps < 600 || res.AvgMbps > 1100 {
		t.Fatalf("AvgMbps=%v implausible for 1 Gbps link", res.AvgMbps)
	}
	for _, name := range []string{"cc_read", "thr_write", "thr_e2e"} {
		if res.Rec.Series(name).Len() != res.Ticks {
			t.Fatalf("series %s has %d points want %d", name, res.Rec.Series(name).Len(), res.Ticks)
		}
	}
}

func TestSimTransferRespectsMaxTicks(t *testing.T) {
	st := &SimTransfer{
		Cfg:            readBottleneck(),
		TotalMb:        1e12,
		InitialThreads: 1,
		MaxTicks:       7,
	}
	res := st.Run()
	if res.Completed || res.Ticks != 7 {
		t.Fatalf("ticks=%d completed=%v", res.Ticks, res.Completed)
	}
}

func TestSimTransferWithMarlin(t *testing.T) {
	st := &SimTransfer{
		Cfg:        readBottleneck(),
		Controller: marlin.New(),
		TotalMb:    4000,
		MaxTicks:   600,
		MaxThreads: 16,
	}
	res := st.Run()
	if !res.Completed {
		t.Fatalf("marlin transfer incomplete: %.0f Mb in %d s", res.WrittenMb, res.Ticks)
	}
	// Marlin starts at 1 and must climb.
	cc := res.Rec.Series("cc_read").Values()
	if cc[0] != 1 {
		t.Fatalf("initial concurrency %v", cc[0])
	}
	climbed := false
	for _, v := range cc {
		if v >= 4 {
			climbed = true
			break
		}
	}
	if !climbed {
		t.Fatal("marlin never climbed concurrency")
	}
}

func TestSimTransferOnTickHook(t *testing.T) {
	var ticks []int
	st := &SimTransfer{
		Cfg:            readBottleneck(),
		TotalMb:        1e12,
		InitialThreads: 13,
		MaxTicks:       5,
		OnTick: func(tick int, s *sim.Simulator) {
			ticks = append(ticks, tick)
			if tick == 3 {
				s.SetTPT(sim.Read, 8) // throttle reads hard
			}
		},
	}
	res := st.Run()
	if len(ticks) != 5 || ticks[0] != 1 || ticks[4] != 5 {
		t.Fatalf("OnTick sequence %v", ticks)
	}
	thr := res.Rec.Series("thr_read").Values()
	if thr[4] >= thr[1] {
		t.Fatalf("mid-run throttle had no effect: %v", thr)
	}
}

func TestDeterministicControllerIsStable(t *testing.T) {
	p := probeTestbed(t)
	opts := fastOpts()
	opts.Train.Episodes = 30
	sys, err := Train(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := sys.DeterministicController()
	s := env.State{N: [env.StageCount]int{5, 1, 5, 5}, Throughput: env.ThroughputVec(400, 400, 400),
		SenderFree: 250, ReceiverFree: 250}
	first := ctrl.Decide(s)
	for i := 0; i < 5; i++ {
		if got := ctrl.Decide(s); got != first {
			t.Fatalf("deterministic controller varied: %v vs %v", got, first)
		}
	}
	if ctrl.Name() != "automdt" {
		t.Fatalf("name %q", ctrl.Name())
	}
}

func TestFineTuneRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	p := probeTestbed(t)
	opts := fastOpts()
	opts.Train.Episodes = 60
	sys, err := Train(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Fine-tune against the ground-truth simulator (the "online" phase).
	e := env.NewSimEnv(sim.New(readBottleneck()), rand.New(rand.NewSource(77)))
	e.MaxThreadsN = 16
	res := sys.FineTune(e, 30)
	if res.Episodes != 30 {
		t.Fatalf("fine-tune ran %d episodes want 30", res.Episodes)
	}
}
