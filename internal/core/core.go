// Package core assembles AutoMDT end to end, implementing the workflow of
// Fig. 2: explore and log the real environment (internal/probe), configure
// the offline dynamics simulator from the measured profile (internal/sim),
// train the PPO agent against it (internal/rl), and deploy the trained
// agent as an env.Controller that drives the live modular transfer engine
// (internal/transfer) in the production phase of §IV-F.
package core

import (
	"fmt"
	"io"
	"math/rand"

	"automdt/internal/env"
	"automdt/internal/probe"
	"automdt/internal/rl"
	"automdt/internal/sim"
)

// Options configures the offline training pipeline.
type Options struct {
	// K is the utility penalty base (default env.DefaultK = 1.02).
	K float64
	// MaxThreads bounds each stage's concurrency (default 32).
	MaxThreads int
	// SenderBufMb and ReceiverBufMb are the staging capacities, in
	// megabits, used to configure the training simulator (default 500).
	SenderBufMb   float64
	ReceiverBufMb float64
	// Net sizes the agent networks; zero values use the paper
	// architecture (256-wide, 3+2 residual blocks).
	Net rl.NetConfig
	// Train parameterizes Algorithm 2; zero values use paper defaults
	// (30000 episode cap, 10 steps/episode, early stop at 90% Rmax +
	// 1000 stagnant episodes). Rmax and RewardScale are filled in from
	// the probe profile automatically.
	Train rl.TrainConfig
	// Jitter roughens the training simulator's task rates (default 0.05).
	Jitter float64
	// RateDrift, when positive, degrades each stage's per-task rate by up
	// to this fraction on random training episodes (see env.SimEnv), so
	// the policy learns to re-expand concurrency under slowed conditions.
	RateDrift float64
	// Seed drives all randomness (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = env.DefaultK
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 32
	}
	if o.SenderBufMb <= 0 {
		o.SenderBufMb = 500
	}
	if o.ReceiverBufMb <= 0 {
		o.ReceiverBufMb = 500
	}
	if o.Jitter == 0 {
		o.Jitter = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// System is a trained AutoMDT deployment: the probed profile, the trained
// agent, and everything needed to drive a production transfer.
type System struct {
	Profile *probe.Profile
	Agent   *rl.Agent
	// TrainResult holds the offline learning curve (nil for systems
	// restored from a checkpoint).
	TrainResult *rl.TrainResult
	Opts        Options
}

// Train builds the offline training simulator from a probed profile and
// trains a PPO agent on it (the "Configure Simulator Environment" and
// "Train PPO Agent" boxes of Fig. 2).
func Train(p *probe.Profile, opts Options) (*System, error) {
	opts = opts.withDefaults()
	cfg := p.SimConfig(opts.SenderBufMb, opts.ReceiverBufMb)
	cfg.Jitter = opts.Jitter
	cfg.Rand = rand.New(rand.NewSource(opts.Seed + 101))
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: probed simulator config: %w", err)
	}
	e := env.NewSimEnv(sim.New(cfg), rand.New(rand.NewSource(opts.Seed+202)))
	e.K = opts.K
	e.MaxThreadsN = opts.MaxThreads
	e.RateDrift = opts.RateDrift

	agent := rl.NewAgent(opts.Net, opts.Seed+303)
	tc := opts.Train
	if tc.Rmax == 0 {
		tc.Rmax = p.Rmax
	}
	if tc.Seed == 0 {
		tc.Seed = opts.Seed + 404
	}
	res := agent.Train(e, tc)
	agent.RestoreBest()
	return &System{Profile: p, Agent: agent, TrainResult: res, Opts: opts}, nil
}

// ProbeAndTrain runs the full offline pipeline: exploration and logging
// against r, then simulator-based training.
func ProbeAndTrain(r probe.Runner, rng *rand.Rand, popts probe.Options, opts Options) (*System, error) {
	opts = opts.withDefaults()
	if popts.K == 0 {
		popts.K = opts.K
	}
	if popts.MaxThreads == 0 {
		popts.MaxThreads = opts.MaxThreads
	}
	p, err := probe.Explore(r, rng, popts)
	if err != nil {
		return nil, err
	}
	return Train(p, opts)
}

// SaveAgent checkpoints the trained agent.
func (s *System) SaveAgent(w io.Writer) error { return s.Agent.Save(w) }

// LoadSystem restores a System from a checkpoint plus the profile it was
// trained for. opts.Net must match the architecture used at training time.
func LoadSystem(r io.Reader, p *probe.Profile, opts Options) (*System, error) {
	opts = opts.withDefaults()
	agent := rl.NewAgent(opts.Net, opts.Seed+303)
	if err := agent.Load(r); err != nil {
		return nil, err
	}
	return &System{Profile: p, Agent: agent, Opts: opts}, nil
}

// Controller returns the production-phase controller (§IV-F): each probe
// interval it normalizes the engine state with the probed scales, samples
// the policy, rounds, clamps, and reassigns the concurrency tuple.
func (s *System) Controller() env.Controller {
	return &agentController{
		agent:      s.Agent,
		maxThreads: s.Opts.MaxThreads,
		rateScale:  s.Profile.Bottleneck,
		bufScale:   s.Opts.SenderBufMb,
	}
}

// DeterministicController is Controller with mean actions instead of
// Gaussian samples: the behaviour of a fully annealed policy, without
// residual exploration noise. Recommended for production transfers from
// short training budgets.
func (s *System) DeterministicController() env.Controller {
	return &agentController{
		agent:         s.Agent,
		maxThreads:    s.Opts.MaxThreads,
		rateScale:     s.Profile.Bottleneck,
		bufScale:      s.Opts.SenderBufMb,
		deterministic: true,
	}
}

type agentController struct {
	agent         *rl.Agent
	maxThreads    int
	rateScale     float64
	bufScale      float64
	deterministic bool
}

func (c *agentController) Name() string { return "automdt" }

func (c *agentController) Decide(st env.State) env.Action {
	vec := st.Vector(c.maxThreads, c.rateScale, c.bufScale)
	if c.deterministic {
		return c.agent.ActMean(vec, c.maxThreads)
	}
	return c.agent.ActVec(vec, c.maxThreads)
}

// ScoredAlternatives implements env.AlternativeScorer: the policy mean —
// what a fully annealed agent would have done — plus holding the current
// tuple. For a sampling controller the gap between sample and mean is
// the exploration noise the flight recorder's regret makes visible; a
// deterministic controller contributes only the hold candidate.
func (c *agentController) ScoredAlternatives(st env.State) []env.ScoredAction {
	k := env.DefaultK
	out := []env.ScoredAction{{
		Action: env.Action{N: st.N},
		Score:  env.Utility(st.Throughput, env.Action{N: st.N}, k),
		Label:  "hold",
	}}
	if !c.deterministic {
		mean := c.agent.ActMean(st.Vector(c.maxThreads, c.rateScale, c.bufScale), c.maxThreads)
		out = append(out, env.ScoredAction{
			Action: mean,
			Score:  env.Utility(st.Throughput, mean, k),
			Label:  "mean",
		})
	}
	return out
}

// FineTune continues PPO training online against e for the given number
// of episodes (the §V-C experiment; the paper found ≈1% concurrency
// improvement and excluded it from the final design).
func (s *System) FineTune(e env.Environment, episodes int) *rl.TrainResult {
	tc := s.Opts.Train
	tc.Episodes = episodes
	tc.StagnantLimit = 1 << 30 // no early stop during fine-tuning
	if tc.Rmax == 0 {
		tc.Rmax = s.Profile.Rmax
	}
	res := s.Agent.Train(e, tc)
	s.Agent.RestoreBest()
	return res
}
