package core

import (
	"automdt/internal/env"
	"automdt/internal/flight"
	"automdt/internal/metrics"
	"automdt/internal/sim"
)

// SimTransfer describes a finite transfer executed against the
// event-driven dynamics simulator under a pluggable controller. It is the
// deterministic, instant-turnaround counterpart of the live loopback
// engine, and is what regenerates the paper's figure traces (Fig. 3 and
// Fig. 5) without waiting out real seconds.
type SimTransfer struct {
	// Cfg is the ground-truth testbed (per-stream caps, bandwidths,
	// staging capacities).
	Cfg sim.Config
	// Controller drives the concurrency tuple each simulated second.
	Controller env.Controller
	// TotalMb is the dataset volume in megabits.
	TotalMb float64
	// MaxTicks caps the simulated duration in seconds (default 3600).
	MaxTicks int
	// InitialThreads is the starting concurrency (default 1).
	InitialThreads int
	// MaxThreads clamps controller decisions (default 32).
	MaxThreads int
	// OnTick, if non-nil, runs before each simulated second with the
	// 1-based tick index and the live simulator — the hook used to
	// inject mid-transfer condition changes (background traffic,
	// re-throttles) for adaptation experiments.
	OnTick func(tick int, s *sim.Simulator)
}

// SimTransferResult reports a simulated transfer.
type SimTransferResult struct {
	// Rec holds per-second traces: cc_read, cc_conns, cc_streams,
	// cc_write, cc_net (total network workers, conns·streams), thr_read,
	// thr_net, thr_write, thr_e2e.
	Rec *metrics.Recorder
	// Ticks is the simulated duration in seconds.
	Ticks int
	// Completed reports whether TotalMb was fully written within
	// MaxTicks.
	Completed bool
	// AvgMbps is the end-to-end goodput (TotalMb / Ticks) when
	// completed, or written/Ticks otherwise.
	AvgMbps float64
	// WrittenMb is the volume flushed to the destination store.
	WrittenMb float64
}

// Run executes the simulated transfer.
func (st *SimTransfer) Run() *SimTransferResult {
	maxTicks := st.MaxTicks
	if maxTicks <= 0 {
		maxTicks = 3600
	}
	maxThreads := st.MaxThreads
	if maxThreads <= 0 {
		maxThreads = 32
	}
	n := st.InitialThreads
	if n <= 0 {
		n = 1
	}
	// One data connection carrying n streams reproduces the legacy
	// single-socket starting point; the controller grows conns from there.
	act := env.ActionOf(n, 1, n, n)

	controller := st.Controller
	if controller != nil && flight.Active() {
		// Simulated runs trace like live ones, under a "sim:" source so a
		// dump distinguishes rehearsal decisions from production ones.
		controller = flight.WrapController(controller, flight.Default(), "sim:"+controller.Name(), env.DefaultK, 0)
	}

	s := sim.New(st.Cfg)
	rec := metrics.NewRecorder()
	written := 0.0
	ticks := 0
	for ticks < maxTicks && written < st.TotalMb {
		if st.OnTick != nil {
			st.OnTick(ticks+1, s)
		}
		res := s.Step(act.N[env.StageRead], act.N[env.StageConns], act.N[env.StageStreams], act.N[env.StageWrite])
		ticks++
		written += res.Throughput[sim.Write]
		t := float64(ticks)
		rec.Series("cc_read").Record(t, float64(act.N[env.StageRead]))
		rec.Series("cc_conns").Record(t, float64(act.N[env.StageConns]))
		rec.Series("cc_streams").Record(t, float64(act.N[env.StageStreams]))
		rec.Series("cc_net").Record(t, float64(act.NetWorkers()))
		rec.Series("cc_write").Record(t, float64(act.N[env.StageWrite]))
		rec.Series("thr_read").Record(t, res.Throughput[sim.Read])
		rec.Series("thr_net").Record(t, res.Throughput[sim.Network])
		rec.Series("thr_write").Record(t, res.Throughput[sim.Write])
		rec.Series("thr_e2e").Record(t, res.Throughput[sim.Write])

		if controller != nil {
			state := env.State{
				N: act.N,
				Throughput: env.ThroughputVec(
					res.Throughput[sim.Read], res.Throughput[sim.Network], res.Throughput[sim.Write]),
				SenderFree:   res.SenderBufFree,
				ReceiverFree: res.ReceiverBufFree,
			}
			act = controller.Decide(state).Clamp(maxThreads)
		}
	}
	out := &SimTransferResult{
		Rec:       rec,
		Ticks:     ticks,
		Completed: written >= st.TotalMb,
		WrittenMb: written,
	}
	if ticks > 0 {
		out.AvgMbps = written / float64(ticks)
	}
	return out
}
