// Package enginebench is the transfer-engine micro-benchmark suite
// behind `automdt-bench -exp engine` and the CI bench gate. The same
// benchmark bodies back the `go test -bench Engine` benchmarks in the
// repo root and the machine-readable BENCH_engine.json artifact that CI
// uploads and diffs against the committed baseline.
package enginebench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"automdt/internal/flight"
	"automdt/internal/fsim"
	"automdt/internal/transfer"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

// chunkBytes is the frame payload size used by the micro-benchmarks,
// matching the engine's default chunk size.
const chunkBytes = 256 << 10

// FrameEncode measures FrameWriter throughput (checksummed, the
// worst case) into a discard sink.
func FrameEncode(b *testing.B) {
	payload := make([]byte, chunkBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	var fw wire.FrameWriter
	f := wire.Frame{FileID: 7, Offset: 1 << 20, Data: payload, Checksum: true}
	b.SetBytes(chunkBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fw.Write(io.Discard, f); err != nil {
			b.Fatal(err)
		}
	}
}

// FrameDecode measures FrameReader throughput with arena-backed payload
// allocation, round-tripping a checksummed frame.
func FrameDecode(b *testing.B) {
	payload := make([]byte, chunkBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, wire.Frame{FileID: 7, Offset: 64, Data: payload, Checksum: true}); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	arena := transfer.NewArena(64 << 20)
	var pending *transfer.Buf
	alloc := func(n int) []byte {
		pending = arena.Get(n)
		return pending.Bytes()
	}
	var fr wire.FrameReader
	r := bytes.NewReader(encoded)
	b.SetBytes(chunkBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(encoded)
		f, err := fr.Read(r, alloc)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Data) != chunkBytes {
			b.Fatalf("decoded %d bytes", len(f.Data))
		}
		pending.Release()
	}
}

// StagingHandoff measures the bounded-buffer ownership hand-off: one
// arena lease staged and drained per iteration.
func StagingHandoff(b *testing.B) {
	arena := transfer.NewArena(64 << 20)
	s := transfer.NewStaging(8 << 20)
	b.SetBytes(chunkBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := arena.Get(chunkBytes)
		if !s.Put(transfer.Chunk{FileID: 1, Offset: int64(i), Data: buf.Bytes(), Buf: buf}) {
			b.Fatal("staging closed")
		}
		c, ok, _ := s.TryGet()
		if !ok {
			b.Fatal("staged chunk missing")
		}
		c.Release()
	}
}

// ArenaGetRelease measures the raw lease/release cycle at a mixed
// full-chunk and tail-chunk size pattern.
func ArenaGetRelease(b *testing.B) {
	arena := transfer.NewArena(64 << 20)
	sizes := [4]int{chunkBytes, chunkBytes, chunkBytes, 9 << 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := arena.Get(sizes[i&3])
		buf.Release()
	}
}

// loopbackE2E is the shared end-to-end loopback body: the whole
// sender→wire→receiver→staging→writer chunk lifecycle over loopback TCP
// with no rate shaping, reported in MB/s, allocs/op, and syscalls/op
// (the wire.IOOps data-plane counter delta — reads, frame writes, frame
// reads, store writes — per end-to-end op; strace-free, so it runs
// everywhere CI does). checksums toggles the wire frame CRC-32C and the
// ledger/file verification built on it; kio pins the kernel-assisted
// fast path on or off so the two paths gate independently.
func loopbackE2E(quick, checksums bool, kio string) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := transfer.Config{
			ChunkBytes:       chunkBytes,
			MaxThreads:       16,
			InitialThreads:   8,
			ProbeInterval:    100 * time.Millisecond,
			DisableChecksums: !checksums,
			KioMode:          kio,
		}
		m := workload.LargeFiles(16, 4<<20) // 64 MB
		if quick {
			m = workload.LargeFiles(8, 2<<20) // 16 MB
			cfg.InitialThreads = 4
		}
		b.SetBytes(m.TotalBytes())
		b.ReportAllocs()
		b.ResetTimer()
		ops := wire.IOOps()
		for i := 0; i < b.N; i++ {
			src, dst := fsim.NewSyntheticStore(), fsim.NewSyntheticStore()
			if _, err := transfer.Loopback(context.Background(), cfg, m, src, dst, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(wire.IOOps()-ops)/float64(b.N), "syscalls/op")
	}
}

// LoopbackE2E measures the portable per-chunk data plane (KioMode
// "off"), so its baseline numbers stay meaningful on every platform and
// the kio scenarios below have a same-run denominator. checksums
// toggles the integrity machinery (on is the engine default).
func LoopbackE2E(quick, checksums bool) func(b *testing.B) {
	return loopbackE2E(quick, checksums, "off")
}

// LoopbackE2EKio is the same dataset and lifecycle with the
// kernel-assisted fast path pinned on: batched run reads, one CRC-32C
// pass per run, coalesced multi-chunk frames on the wire, vectored
// batched receiver flushes. Paired with LoopbackE2E in the same report
// by KioSpeedup and KioSyscallRatio.
func LoopbackE2EKio(quick, checksums bool) func(b *testing.B) {
	return loopbackE2E(quick, checksums, "on")
}

// DiskLoopbackE2E is the loopback lifecycle over real files at both
// ends — a DirStore source materialized once outside the timer and a
// fresh DirStore destination per op — with integrity checksums off, the
// configuration where the sender may hand unmodified on-disk ranges to
// sendfile(2) and the receiver lands batches with pwritev(2). kio "on"
// engages that whole kernel-assisted path; "off" is its portable twin
// moving identical bytes through identical stores, so the KioSpeedup
// and KioSyscallRatio pairings isolate exactly the fast path. Always
// the full 64 MB dataset, quick mode included: the 16 MB quick set is
// dominated by per-op session setup, which would bury the data-plane
// difference the pairing exists to measure.
func DiskLoopbackE2E(kio string) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := transfer.Config{
			ChunkBytes:       chunkBytes,
			MaxThreads:       16,
			InitialThreads:   8,
			ProbeInterval:    100 * time.Millisecond,
			DisableChecksums: true,
			KioMode:          kio,
		}
		m := workload.LargeFiles(16, 4<<20) // 64 MB
		srcDir, err := os.MkdirTemp("", "enginebench-src-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(srcDir)
		src, err := fsim.NewDirStore(srcDir)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, chunkBytes)
		for _, f := range m {
			w, err := src.Create(f.Name, f.Size)
			if err != nil {
				b.Fatal(err)
			}
			for off := int64(0); off < f.Size; off += chunkBytes {
				n := int64(chunkBytes)
				if f.Size-off < n {
					n = f.Size - off
				}
				fsim.FillContent(f.Name, off, buf[:n])
				if _, err := w.WriteAt(buf[:n], off); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(m.TotalBytes())
		b.ReportAllocs()
		b.ResetTimer()
		ops := wire.IOOps()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dstDir, err := os.MkdirTemp("", "enginebench-dst-")
			if err != nil {
				b.Fatal(err)
			}
			dst, derr := fsim.NewDirStore(dstDir)
			b.StartTimer()
			if derr == nil {
				_, derr = transfer.Loopback(context.Background(), cfg, m, src, dst, nil)
			}
			b.StopTimer()
			os.RemoveAll(dstDir)
			if derr != nil {
				b.Fatal(derr)
			}
			b.StartTimer()
		}
		b.StopTimer()
		b.ReportMetric(float64(wire.IOOps()-ops)/float64(b.N), "syscalls/op")
	}
}

// LoopbackE2EMultiConn is the striped data plane end to end: the same
// dataset and chunk lifecycle as LoopbackE2E, with the sender striping
// chunks across conns parallel data connections into one receiver
// fan-in. Gated against the baseline like every scenario; the CI gate
// additionally holds MultiConnSpeedup to ≥ 1 within a run's noise —
// striping must never cost goodput over a loopback where it cannot win
// much either.
func LoopbackE2EMultiConn(quick bool, conns int) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := transfer.Config{
			ChunkBytes:     chunkBytes,
			MaxThreads:     16,
			InitialThreads: 8,
			ProbeInterval:  100 * time.Millisecond,
			Conns:          conns,
			// Pinned portable so MultiConnSpeedup pairs against
			// loopback_e2e with striping as the only variable.
			KioMode: "off",
		}
		m := workload.LargeFiles(16, 4<<20) // 64 MB
		if quick {
			m = workload.LargeFiles(8, 2<<20) // 16 MB
			cfg.InitialThreads = 4
		}
		b.SetBytes(m.TotalBytes())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, dst := fsim.NewSyntheticStore(), fsim.NewSyntheticStore()
			if _, err := transfer.Loopback(context.Background(), cfg, m, src, dst, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// MultiConnSpeedup returns the striped-over-single goodput ratio within
// one report: multiconn_MB/s ÷ plain_MB/s (1.0 = parity; loopback has no
// per-connection ceiling so parity, not a win, is the expectation). ok
// is false when either scenario is missing. Same machine, same run — no
// ThroughputComparable caveat applies.
func MultiConnSpeedup(rep Report) (ratio float64, ok bool) {
	var plain, multi float64
	for _, r := range rep.Results {
		switch r.Name {
		case "loopback_e2e":
			plain = r.MBPerSec
		case "loopback_e2e_multiconn":
			multi = r.MBPerSec
		}
	}
	if plain <= 0 || multi <= 0 {
		return 0, false
	}
	return multi / plain, true
}

// KioSpeedup returns the kernel-assisted-over-portable goodput ratio
// within one report: loopback_e2e_kio MB/s ÷ loopback_e2e_disk MB/s —
// identical datasets, identical DirStores, the fast path the only
// variable. The fast path must earn its complexity (the CI gate holds
// it to a floor on Linux). ok is false when either scenario is missing.
// Same machine, same run — no ThroughputComparable caveat applies.
func KioSpeedup(rep Report) (ratio float64, ok bool) {
	var plain, kio float64
	for _, r := range rep.Results {
		switch r.Name {
		case "loopback_e2e_disk":
			plain = r.MBPerSec
		case "loopback_e2e_kio":
			kio = r.MBPerSec
		}
	}
	if plain <= 0 || kio <= 0 {
		return 0, false
	}
	return kio / plain, true
}

// KioSyscallRatio returns kio syscalls/op ÷ portable syscalls/op over
// the same disk-backed pairing — the headline economy of the batched
// data plane, which the CI gate holds to ≤ 0.5. Counter-based and
// deterministic, so unlike MB/s it needs no same-hardware caveat. ok is
// false when either scenario is missing or unmeasured.
func KioSyscallRatio(rep Report) (ratio float64, ok bool) {
	var plain, kio float64
	for _, r := range rep.Results {
		switch r.Name {
		case "loopback_e2e_disk":
			plain = r.SyscallsPerOp
		case "loopback_e2e_kio":
			kio = r.SyscallsPerOp
		}
	}
	if plain <= 0 || kio <= 0 {
		return 0, false
	}
	return kio / plain, true
}

// LoopbackE2EFlight is LoopbackE2E(quick, true) with the process-wide
// decision flight recorder enabled for the duration: the same dataset,
// config, and chunk lifecycle, plus a stage-span histogram observation
// at every read/net/write seam. Gated against the baseline like every
// scenario, and compared against loopback_e2e within the same report by
// FlightOverhead — the recorder-on cost must stay marginal, and the
// recorder-off cost of the instrumentation (one atomic load per seam)
// is asserted by loopback_e2e itself staying within its baseline.
func LoopbackE2EFlight(quick bool) func(b *testing.B) {
	inner := LoopbackE2E(quick, true)
	return func(b *testing.B) {
		flight.Enable(0)
		defer func() {
			flight.Disable()
			flight.Default().Reset()
		}()
		inner(b)
	}
}

// FlightOverhead returns the fractional throughput cost of the enabled
// recorder measured within one report: 1 − flight_MB/s ÷ plain_MB/s
// (negative when the flight run happened to be faster). ok is false when
// either scenario is missing. Same machine, same run — no
// ThroughputComparable caveat applies.
func FlightOverhead(rep Report) (frac float64, ok bool) {
	var plain, withFlight float64
	for _, r := range rep.Results {
		switch r.Name {
		case "loopback_e2e":
			plain = r.MBPerSec
		case "loopback_e2e_flight":
			withFlight = r.MBPerSec
		}
	}
	if plain <= 0 || withFlight <= 0 {
		return 0, false
	}
	return 1 - withFlight/plain, true
}

// MeasureMultiConnSpeedup re-runs the single-connection and striped
// loopback scenarios back to back `rounds` times and returns the
// largest goodput ratio observed. Noise (or another scenario's dirty
// pages still writing back) only deflates a pairing, so the maximum
// over a few fresh pairs is a sound lower bound on the real ratio.
// Callers use this to confirm a suspicious MultiConnSpeedup reading
// before failing a run on it.
func MeasureMultiConnSpeedup(quick bool, rounds int) (ratio float64, ok bool) {
	loopBytes := int64(64 << 20)
	if quick {
		loopBytes = 16 << 20
	}
	var best float64
	for i := 0; i < rounds; i++ {
		plain := toResult("loopback_e2e", loopBytes, testing.Benchmark(LoopbackE2E(quick, true)))
		multi := toResult("loopback_e2e_multiconn", loopBytes, testing.Benchmark(LoopbackE2EMultiConn(quick, 4)))
		if plain.MBPerSec <= 0 || multi.MBPerSec <= 0 {
			continue
		}
		if r := multi.MBPerSec / plain.MBPerSec; r > best {
			best = r
		}
	}
	if best <= 0 {
		return 0, false
	}
	return best, true
}

// MeasureFlightOverhead re-runs the plain and flight-enabled loopback
// scenarios back to back `rounds` times and returns the smallest
// fractional overhead observed. One pair of ~1 s benchmark runs carries
// several percent of scheduling noise — enough to cross a 5% gate in
// either direction — but noise only inflates a pairing, never deflates
// every pairing, so the minimum over a few pairs is a sound upper bound
// on the real cost. Callers use this to confirm a suspicious
// FlightOverhead reading before failing a run on it.
func MeasureFlightOverhead(quick bool, rounds int) (frac float64, ok bool) {
	loopBytes := int64(64 << 20)
	if quick {
		loopBytes = 16 << 20
	}
	best := math.Inf(1)
	for i := 0; i < rounds; i++ {
		plain := toResult("loopback_e2e", loopBytes, testing.Benchmark(LoopbackE2E(quick, true)))
		fl := toResult("loopback_e2e_flight", loopBytes, testing.Benchmark(LoopbackE2EFlight(quick)))
		if plain.MBPerSec <= 0 || fl.MBPerSec <= 0 {
			continue
		}
		if f := 1 - fl.MBPerSec/plain.MBPerSec; f < best {
			best = f
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// MeasureKioSpeedup re-runs the portable and kio loopback scenarios
// back to back `rounds` times and returns the largest goodput ratio
// observed. Scheduling noise deflates a single pairing by several
// percent — enough to cross a speedup floor — but it only ever deflates,
// so the maximum over a few pairs is a sound lower bound on the real
// win. Callers use this to confirm a suspicious KioSpeedup reading
// before failing a run on it.
func MeasureKioSpeedup(rounds int) (ratio float64, ok bool) {
	const loopBytes = int64(64 << 20) // the disk pair is always full-size
	var best float64
	for i := 0; i < rounds; i++ {
		plain := toResult("loopback_e2e_disk", loopBytes, testing.Benchmark(DiskLoopbackE2E("off")))
		kio := toResult("loopback_e2e_kio", loopBytes, testing.Benchmark(DiskLoopbackE2E("on")))
		if plain.MBPerSec <= 0 || kio.MBPerSec <= 0 {
			continue
		}
		if r := kio.MBPerSec / plain.MBPerSec; r > best {
			best = r
		}
	}
	if best <= 0 {
		return 0, false
	}
	return best, true
}

// Ledger scenario sizing: the paper's headline dataset — 1000×1 GB at
// 256 KiB chunks — is a 4M-chunk session ledger. Full mode benches that
// directly; quick (CI) mode uses a quarter-million chunks, still big
// enough that O(chunks)-per-tick persistence and O(delta) journaling
// differ by orders of magnitude.
const (
	ledgerChunksPerFile = 4096 // 1 GiB per file at 256 KiB chunks
	ledgerTickChunks    = 1024 // ≈256 MB freshly committed per probe tick
)

func ledgerBenchChunks(quick bool) int {
	if quick {
		return 256 << 10
	}
	return 4 << 20
}

func ledgerBenchManifest(chunks int) workload.Manifest {
	return workload.LargeFiles(chunks/ledgerChunksPerFile, ledgerChunksPerFile*int64(chunkBytes))
}

// LedgerPersistTick measures one steady-state probe-tick persist of a
// fully-built session ledger: ledgerTickChunks chunks turn over per
// tick, and the tick serializes either the whole schema-1 JSON document
// (v1, O(chunks)) or just the delta as schema-2 journal records (v2,
// O(delta)). The persisted bytes per tick are reported as
// persistbytes/op — the number the CI gate holds the ≥10× v1→v2 win to.
func LedgerPersistTick(v2, quick bool) func(b *testing.B) {
	return func(b *testing.B) {
		chunks := ledgerBenchChunks(quick)
		m := ledgerBenchManifest(chunks)
		l := transfer.NewLedger("bench-ledger", chunkBytes, m, true)
		cb := int64(chunkBytes)
		for g := 0; g < chunks; g++ {
			l.Commit(uint32(g/ledgerChunksPerFile), int64(g%ledgerChunksPerFile)*cb, chunkBytes, uint32(g))
		}
		l.AppendSince() // drain the setup delta
		var persisted int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := i * ledgerTickChunks % chunks
			for j := 0; j < ledgerTickChunks; j++ {
				g := (start + j) % chunks
				fid := uint32(g / ledgerChunksPerFile)
				off := int64(g%ledgerChunksPerFile) * cb
				l.Invalidate(fid, off, cb)
				l.Commit(fid, off, chunkBytes, uint32(g))
			}
			if v2 {
				persisted += int64(len(l.AppendSince()))
			} else {
				data, err := l.Encode()
				if err != nil {
					b.Fatal(err)
				}
				persisted += int64(len(data))
				l.AppendSince() // v1 has no journal; the delta is discarded
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(persisted)/float64(b.N), "persistbytes/op")
	}
}

// LedgerJournalReplay measures recovering a session from its persisted
// v2 state: decode an empty snapshot, then replay a journal carrying
// one commit record per chunk — the worst-case crash-recovery load for
// the scenario size. MB/s is journal bytes replayed per second.
func LedgerJournalReplay(quick bool) func(b *testing.B) {
	return func(b *testing.B) {
		chunks := ledgerBenchChunks(quick)
		m := ledgerBenchManifest(chunks)
		l := transfer.NewLedger("bench-replay", chunkBytes, m, true)
		snap := l.EncodeV2()
		journal := l.JournalHeader()
		cb := int64(chunkBytes)
		for g := 0; g < chunks; g++ {
			l.Commit(uint32(g/ledgerChunksPerFile), int64(g%ledgerChunksPerFile)*cb, chunkBytes, uint32(g))
		}
		journal = append(journal, l.AppendSince()...)
		b.SetBytes(int64(len(journal)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base, err := transfer.DecodeLedger(snap)
			if err != nil {
				b.Fatal(err)
			}
			if applied := base.ReplayJournal(journal); applied != chunks {
				b.Fatalf("replayed %d of %d records", applied, chunks)
			}
		}
	}
}

// Result is one benchmark's headline numbers.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// PersistedBytesPerOp is how many ledger bytes one persist tick
	// wrote (the ledger scenario's headline: v2 must stay ≥10× under
	// v1). Hardware-independent, so the baseline gate always arms.
	PersistedBytesPerOp float64 `json:"persisted_bytes_per_op,omitempty"`
	// SyscallsPerOp is the wire.IOOps data-plane counter delta per op —
	// every read, frame write, frame read, sendfile/pwritev call, and
	// store write the engine issued, counted in-process (strace-free).
	// Counter-based and hardware-independent, so the baseline gate
	// always arms; the kio scenarios' headline economy.
	SyscallsPerOp float64 `json:"syscalls_per_op,omitempty"`
}

// Report is the BENCH_engine.json document.
type Report struct {
	Schema  int      `json:"schema"`
	Go      string   `json:"go"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	CPU     string   `json:"cpu,omitempty"`
	Cores   int      `json:"cores,omitempty"`
	Quick   bool     `json:"quick"`
	Results []Result `json:"benchmarks"`
}

// HostInfo identifies the machine a benchmark-style report came from,
// shared by BENCH_engine.json and the chaos matrix's BENCH_chaos.json
// so their gates can tell comparable hosts apart the same way.
type HostInfo struct {
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu,omitempty"`
	Cores  int    `json:"cores,omitempty"`
}

// Host snapshots the current machine's identity for report headers.
func Host() HostInfo {
	return HostInfo{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPU:    cpuModel(),
		Cores:  runtime.NumCPU(),
	}
}

// cpuModel best-effort identifies the host CPU (linux only); empty when
// unknown. Throughput numbers are only comparable between identical
// CPUs, so Compare keys its MB/s gate on this.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// ThroughputComparable reports whether two reports' MB/s numbers came
// from the same hardware and can be gated against each other. The CPU
// model string alone is not enough — hypervisors mask it to a generic
// name ("Intel(R) Xeon(R) Processor @ 2.10GHz") shared by very
// different machines — so the logical core count must match too.
func ThroughputComparable(base, cur Report) bool {
	return base.CPU != "" && base.CPU == cur.CPU &&
		base.Cores > 0 && base.Cores == cur.Cores &&
		base.GOOS == cur.GOOS && base.GOARCH == cur.GOARCH
}

// toResult converts a testing.BenchmarkResult.
func toResult(name string, bytesPerOp int64, r testing.BenchmarkResult) Result {
	res := Result{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
	if bytesPerOp > 0 && r.T > 0 {
		res.MBPerSec = float64(bytesPerOp) * float64(r.N) / r.T.Seconds() / 1e6
	}
	if v, ok := r.Extra["persistbytes/op"]; ok {
		res.PersistedBytesPerOp = v
	}
	if v, ok := r.Extra["syscalls/op"]; ok {
		res.SyscallsPerOp = v
	}
	return res
}

// Run executes the engine suite and assembles the report. quick keeps
// the end-to-end dataset small enough for CI.
func Run(quick bool) Report {
	loopBytes := int64(64 << 20)
	if quick {
		loopBytes = 16 << 20
	}
	h := Host()
	rep := Report{
		Schema: 1,
		Go:     h.Go,
		GOOS:   h.GOOS,
		GOARCH: h.GOARCH,
		CPU:    h.CPU,
		Cores:  h.Cores,
		Quick:  quick,
	}
	rep.Results = append(rep.Results,
		toResult("frame_encode", chunkBytes, testing.Benchmark(FrameEncode)),
		toResult("frame_decode", chunkBytes, testing.Benchmark(FrameDecode)),
		toResult("staging_handoff", chunkBytes, testing.Benchmark(StagingHandoff)),
		toResult("arena_get_release", 0, testing.Benchmark(ArenaGetRelease)),
		// Checksums on (the default) and off, so the gate tracks the
		// CRC-32C cost of the integrity/resume machinery.
		toResult("loopback_e2e", loopBytes, testing.Benchmark(LoopbackE2E(quick, true))),
		toResult("loopback_e2e_nocrc", loopBytes, testing.Benchmark(LoopbackE2E(quick, false))),
		// Striped data plane: 4 data connections fanning into one
		// receiver, vs the single-connection loopback_e2e above
		// (MultiConnSpeedup pairs them within the report).
		toResult("loopback_e2e_multiconn", loopBytes, testing.Benchmark(LoopbackE2EMultiConn(quick, 4))),
		toResult("loopback_e2e_flight", loopBytes, testing.Benchmark(LoopbackE2EFlight(quick))),
		// Ledger scenario (4M chunks full, 256k quick): the per-tick
		// persist cost of schema 1 (full JSON document) vs schema 2
		// (journal delta), and the crash-recovery journal replay.
		toResult("ledger_tick_v1", 0, testing.Benchmark(LedgerPersistTick(false, quick))),
		toResult("ledger_tick_v2", 0, testing.Benchmark(LedgerPersistTick(true, quick))),
		toResult("ledger_replay_v2", 0, testing.Benchmark(LedgerJournalReplay(quick))),
		// Real files at both ends, portable vs kernel-assisted —
		// KioSpeedup/KioSyscallRatio pair these two within the report.
		// Always the full 64 MB dataset (see DiskLoopbackE2E). They run
		// LAST: the dirty pages their on-disk transfers leave behind
		// have background writeback stealing CPU for a while, which
		// would depress any paired ratio measured in their wake
		// (MultiConnSpeedup and FlightOverhead both pair against the
		// loopback_e2e reading above).
		toResult("loopback_e2e_disk", 64<<20, testing.Benchmark(DiskLoopbackE2E("off"))),
		toResult("loopback_e2e_kio", 64<<20, testing.Benchmark(DiskLoopbackE2E("on"))),
	)
	return rep
}

// Regression describes one gate violation.
type Regression struct {
	Bench  string
	Metric string
	Base   float64
	Cur    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regressed %.4g → %.4g (%.1f%%)",
		r.Bench, r.Metric, r.Base, r.Cur, 100*(r.Cur/r.Base-1))
}

// Compare gates cur against base: a benchmark regresses when its
// throughput drops by more than tol (fraction, e.g. 0.20) or its
// allocs/op rise by more than tol. Allocation counts are
// hardware-independent and always gated, with a small absolute slack so
// single-digit scheduling jitter on near-zero-alloc benchmarks cannot
// trip the gate. MB/s is only meaningful against a baseline measured on
// the same CPU, so the throughput gate arms only when
// ThroughputComparable holds — a baseline committed from one machine
// cannot flag a differently-sized CI runner as a regression. Benchmarks
// present in only one report are ignored (suite evolution is not a
// regression).
// diskBound names scenarios whose absolute goodput rides the machine's
// page-cache and writeback state and swings far beyond any useful
// tolerance run to run. Their throughput is gated by the same-run
// KioSpeedup pairing instead (in-run ratios cancel the machine state);
// their deterministic metrics — allocs and syscalls per op — still gate
// against the baseline below.
var diskBound = map[string]bool{
	"loopback_e2e_disk": true,
	"loopback_e2e_kio":  true,
}

func Compare(base, cur Report, tol float64) []Regression {
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	gateThroughput := ThroughputComparable(base, cur)
	var regs []Regression
	for _, c := range cur.Results {
		b, ok := baseBy[c.Name]
		if !ok {
			continue
		}
		if gateThroughput && !diskBound[c.Name] && b.MBPerSec > 0 && c.MBPerSec < b.MBPerSec*(1-tol) {
			regs = append(regs, Regression{c.Name, "mb_per_s", b.MBPerSec, c.MBPerSec})
		}
		allocGate := b.AllocsPerOp*(1+tol) + 4
		if c.AllocsPerOp > allocGate {
			regs = append(regs, Regression{c.Name, "allocs_per_op", b.AllocsPerOp, c.AllocsPerOp})
		}
		// Persisted bytes per tick are deterministic (encoding size, not
		// speed), so like allocs they gate on every runner. The absolute
		// slack absorbs varint-width jitter on near-empty deltas.
		persistGate := b.PersistedBytesPerOp*(1+tol) + 64
		if b.PersistedBytesPerOp > 0 && c.PersistedBytesPerOp > persistGate {
			regs = append(regs, Regression{c.Name, "persisted_bytes_per_op", b.PersistedBytesPerOp, c.PersistedBytesPerOp})
		}
		// The data-plane op counter is deterministic modulo batching
		// jitter (partial drains at stage boundaries), so like allocs it
		// gates on every runner with a small absolute slack.
		sysGate := b.SyscallsPerOp*(1+tol) + 16
		if b.SyscallsPerOp > 0 && c.SyscallsPerOp > sysGate {
			regs = append(regs, Regression{c.Name, "syscalls_per_op", b.SyscallsPerOp, c.SyscallsPerOp})
		}
	}
	return regs
}
