package enginebench

import (
	"encoding/json"
	"strings"
	"testing"

	"automdt/internal/transfer"
)

func report(results ...Result) Report {
	// Same CPU/core-count/platform on both sides so the throughput gate
	// arms.
	return Report{Schema: 1, GOOS: "linux", GOARCH: "amd64", CPU: "test-cpu", Cores: 8, Results: results}
}

func TestCompareThroughputGate(t *testing.T) {
	base := report(Result{Name: "loopback_e2e", MBPerSec: 500, AllocsPerOp: 1000})
	ok := report(Result{Name: "loopback_e2e", MBPerSec: 401, AllocsPerOp: 1000})
	if regs := Compare(base, ok, 0.20); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}
	bad := report(Result{Name: "loopback_e2e", MBPerSec: 399, AllocsPerOp: 1000})
	regs := Compare(base, bad, 0.20)
	if len(regs) != 1 || regs[0].Metric != "mb_per_s" {
		t.Fatalf("regression not caught: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "loopback_e2e") {
		t.Fatalf("unhelpful message: %s", regs[0])
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := report(Result{Name: "frame_encode", AllocsPerOp: 0})
	// Near-zero-alloc benchmarks get absolute slack: 4 allocs of jitter
	// must pass, a real leak must not.
	if regs := Compare(base, report(Result{Name: "frame_encode", AllocsPerOp: 4}), 0.20); len(regs) != 0 {
		t.Fatalf("jitter flagged: %v", regs)
	}
	if regs := Compare(base, report(Result{Name: "frame_encode", AllocsPerOp: 5}), 0.20); len(regs) != 1 {
		t.Fatalf("alloc regression not caught: %v", regs)
	}
	big := report(Result{Name: "loopback_e2e", AllocsPerOp: 1000})
	if regs := Compare(big, report(Result{Name: "loopback_e2e", AllocsPerOp: 1300}), 0.20); len(regs) != 1 {
		t.Fatalf("20%%+ alloc growth not caught: %v", regs)
	}
}

func TestCompareThroughputNeedsSameCPU(t *testing.T) {
	base := report(Result{Name: "loopback_e2e", MBPerSec: 5000, AllocsPerOp: 100})
	cur := report(Result{Name: "loopback_e2e", MBPerSec: 100, AllocsPerOp: 100})
	cur.CPU = "a different runner"
	// A 50× throughput gap across different hardware is not a
	// regression — but an alloc jump still is.
	if regs := Compare(base, cur, 0.20); len(regs) != 0 {
		t.Fatalf("cross-hardware throughput flagged: %v", regs)
	}
	cur.Results[0].AllocsPerOp = 200
	if regs := Compare(base, cur, 0.20); len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("alloc gate must stay armed across hardware: %v", regs)
	}
	unknown := report(Result{Name: "x", MBPerSec: 1})
	unknown.CPU = ""
	if ThroughputComparable(unknown, unknown) {
		t.Fatal("unknown CPUs must not be considered comparable")
	}
	// Hypervisors mask the model name to a shared generic string, so an
	// identical CPU string with a different core count (a differently
	// sized runner) must not arm the throughput gate either.
	smaller := report(Result{Name: "x", MBPerSec: 1})
	smaller.Cores = 2
	if ThroughputComparable(report(), smaller) {
		t.Fatal("same masked CPU string with different core counts must not be comparable")
	}
}

func TestCompareIgnoresSuiteEvolution(t *testing.T) {
	base := report(Result{Name: "old_bench", MBPerSec: 100})
	cur := report(Result{Name: "new_bench", MBPerSec: 1})
	if regs := Compare(base, cur, 0.20); len(regs) != 0 {
		t.Fatalf("disjoint suites flagged: %v", regs)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	in := Report{Schema: 1, Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64", Quick: true,
		Results: []Result{{Name: "x", NsPerOp: 12.5, MBPerSec: 900, AllocsPerOp: 3, BytesPerOp: 128}}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0] != in.Results[0] || out.Go != in.Go {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

// Smoke: the micro-benchmarks run and produce sane reports (each
// testing.Benchmark call costs ~1 s of benchtime, so skip under -short).
func TestMicroBenchmarksRun(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke is slow; skipped with -short")
	}
	for name, fn := range map[string]func(*testing.B){
		"frame_encode":      FrameEncode,
		"frame_decode":      FrameDecode,
		"staging_handoff":   StagingHandoff,
		"arena_get_release": ArenaGetRelease,
	} {
		r := testing.Benchmark(fn)
		if r.N < 1 || r.T <= 0 {
			t.Fatalf("%s did not run: %+v", name, r)
		}
	}
}

func TestFlightOverhead(t *testing.T) {
	rep := report(
		Result{Name: "loopback_e2e", MBPerSec: 500},
		Result{Name: "loopback_e2e_flight", MBPerSec: 475},
	)
	frac, ok := FlightOverhead(rep)
	if !ok || frac < 0.049 || frac > 0.051 {
		t.Fatalf("FlightOverhead=%v ok=%v, want 0.05", frac, ok)
	}
	// Flight run faster than plain (jitter): negative overhead, still ok.
	rep.Results[1].MBPerSec = 510
	if frac, ok := FlightOverhead(rep); !ok || frac >= 0 {
		t.Fatalf("faster flight run: frac=%v ok=%v", frac, ok)
	}
	// Missing scenario: not ok.
	if _, ok := FlightOverhead(report(Result{Name: "loopback_e2e", MBPerSec: 500})); ok {
		t.Fatal("missing flight scenario reported ok")
	}
}

func TestComparePersistedBytesGate(t *testing.T) {
	base := report(Result{Name: "ledger_tick_v2", PersistedBytesPerOp: 10000})
	if regs := Compare(base, report(Result{Name: "ledger_tick_v2", PersistedBytesPerOp: 11900}), 0.20); len(regs) != 0 {
		t.Fatalf("within-tolerance persist growth flagged: %v", regs)
	}
	regs := Compare(base, report(Result{Name: "ledger_tick_v2", PersistedBytesPerOp: 12200}), 0.20)
	if len(regs) != 1 || regs[0].Metric != "persisted_bytes_per_op" {
		t.Fatalf("persist regression not caught: %v", regs)
	}
	// Benchmarks without the metric (everything but the ledger ticks)
	// must not arm the gate.
	if regs := Compare(report(Result{Name: "frame_encode"}), report(Result{Name: "frame_encode", PersistedBytesPerOp: 5}), 0.20); len(regs) != 0 {
		t.Fatalf("metric-less benchmark armed the persist gate: %v", regs)
	}
}

// The ledger scenario's acceptance criterion, shrunk to test speed: at
// steady state a v2 probe tick persists at least 10× fewer bytes than
// the v1 full-document rewrite of the same session.
func TestLedgerTickDeltaIsTenthOfDocument(t *testing.T) {
	const chunks = 64 << 10 // 16 files of the scenario's 4096-chunk shape
	m := ledgerBenchManifest(chunks)
	l := transfer.NewLedger("tick-ratio", chunkBytes, m, true)
	cb := int64(chunkBytes)
	for g := 0; g < chunks; g++ {
		l.Commit(uint32(g/ledgerChunksPerFile), int64(g%ledgerChunksPerFile)*cb, chunkBytes, uint32(g))
	}
	l.AppendSince()
	// One steady-state tick's worth of fresh commits.
	for j := 0; j < ledgerTickChunks; j++ {
		fid := uint32(j / ledgerChunksPerFile)
		off := int64(j%ledgerChunksPerFile) * cb
		l.Invalidate(fid, off, cb)
		l.Commit(fid, off, chunkBytes, uint32(j))
	}
	doc, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	delta := l.AppendSince()
	if len(delta) == 0 || len(doc) < 10*len(delta) {
		t.Fatalf("v1 tick writes %d bytes, v2 tick %d: want ≥10× reduction", len(doc), len(delta))
	}
	t.Logf("v1 tick %d B, v2 tick %d B (%.0f×) at %d chunks", len(doc), len(delta), float64(len(doc))/float64(len(delta)), chunks)
}

func TestMultiConnSpeedup(t *testing.T) {
	rep := report(
		Result{Name: "loopback_e2e", MBPerSec: 500},
		Result{Name: "loopback_e2e_multiconn", MBPerSec: 525},
	)
	ratio, ok := MultiConnSpeedup(rep)
	if !ok || ratio < 1.049 || ratio > 1.051 {
		t.Fatalf("MultiConnSpeedup=%v ok=%v, want 1.05", ratio, ok)
	}
	// Missing scenario: not ok.
	if _, ok := MultiConnSpeedup(report(Result{Name: "loopback_e2e", MBPerSec: 500})); ok {
		t.Fatal("missing multiconn scenario reported ok")
	}
}

// The striped scenario runs end to end and does not cost goodput over a
// loopback (parity within noise; striping cannot win where there is no
// per-connection ceiling).
func TestMultiConnScenarioParity(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke is slow; skipped with -short")
	}
	plain := toResult("loopback_e2e", 16<<20, testing.Benchmark(LoopbackE2E(true, true)))
	multi := toResult("loopback_e2e_multiconn", 16<<20, testing.Benchmark(LoopbackE2EMultiConn(true, 4)))
	if plain.MBPerSec <= 0 || multi.MBPerSec <= 0 {
		t.Fatalf("scenario did not run: plain=%v multi=%v", plain.MBPerSec, multi.MBPerSec)
	}
	if multi.MBPerSec < 0.5*plain.MBPerSec {
		t.Fatalf("striped goodput %.0f MB/s far below single-conn %.0f MB/s", multi.MBPerSec, plain.MBPerSec)
	}
}
