// Package fsim provides the storage substrate for the transfer engine:
// offset-addressable file stores with deterministic synthetic content
// (so terabyte-shaped datasets need no disk) and adapters over real
// directories. Stores hand out per-open readers/writers; rate shaping is
// applied by the engine, which owns the per-thread and aggregate
// limiters.
//
// The two implementations are SyntheticStore (content derived from
// (file name, offset) — nothing stored, optional write verification)
// and DirStore (real files under a root directory, pre-sized so
// concurrent WriteAt calls cannot race on extension).
//
// Optional capabilities extend the base Store interface for the
// resumable-session control plane: Stater reports file sizes so a
// resume can detect a vanished or truncated destination; LedgerStore
// persists per-session chunk ledgers (DirStore keeps each session's
// state in its own <root>/.automdt/<session>/ directory — a binary
// snapshot plus journal, or a legacy JSON document); LedgerAppender
// adds the fsync'd append-only journal so a probe tick persists only
// the delta since the last one; LedgerLister enumerates persisted
// ledgers with ages so a long-lived endpoint can expire sessions that
// were abandoned rather than resumed. Session names are constrained by
// ValidSessionID so they are safe as keys on any backend.
package fsim
