package fsim

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func TestSyntheticContentDeterministic(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	FillContent("f.dat", 100, a)
	FillContent("f.dat", 100, b)
	if !bytes.Equal(a, b) {
		t.Fatal("content not deterministic")
	}
	FillContent("other.dat", 100, b)
	if bytes.Equal(a, b) {
		t.Fatal("different files should have different content")
	}
}

func TestSyntheticContentOffsetConsistency(t *testing.T) {
	// Reading [0,128) must equal reading [0,64)+[64,128).
	whole := make([]byte, 128)
	FillContent("x", 0, whole)
	lo := make([]byte, 64)
	hi := make([]byte, 64)
	FillContent("x", 0, lo)
	FillContent("x", 64, hi)
	if !bytes.Equal(whole[:64], lo) || !bytes.Equal(whole[64:], hi) {
		t.Fatal("offset-addressed content inconsistent")
	}
}

func TestSyntheticReaderBounds(t *testing.T) {
	s := NewSyntheticStore()
	r, err := s.Open("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 60)
	if n, err := r.ReadAt(buf, 0); n != 60 || err != nil {
		t.Fatalf("full read n=%d err=%v", n, err)
	}
	// Tail read returns short count + EOF.
	if n, err := r.ReadAt(buf, 80); n != 20 || err != io.EOF {
		t.Fatalf("tail read n=%d err=%v", n, err)
	}
	if _, err := r.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("past-end read err=%v", err)
	}
	if _, err := r.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset should error")
	}
}

func TestSyntheticWriterVerifyAcceptsCorrectContent(t *testing.T) {
	s := NewSyntheticStore()
	s.Verify = true
	w, err := s.Create("v.dat", 1000)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000)
	FillContent("v.dat", 0, buf)
	if _, err := w.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if s.WrittenBytes("v.dat") != 1000 {
		t.Fatalf("written=%d", s.WrittenBytes("v.dat"))
	}
	if len(s.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", s.Errors())
	}
}

func TestSyntheticWriterVerifyCatchesCorruption(t *testing.T) {
	s := NewSyntheticStore()
	s.Verify = true
	w, _ := s.Create("v.dat", 100)
	buf := make([]byte, 100)
	FillContent("v.dat", 0, buf)
	buf[50] ^= 0xFF
	if _, err := w.WriteAt(buf, 0); err == nil {
		t.Fatal("corruption not detected")
	}
	if len(s.Errors()) == 0 {
		t.Fatal("error not recorded")
	}
}

func TestSyntheticWriterBounds(t *testing.T) {
	s := NewSyntheticStore()
	w, _ := s.Create("b.dat", 10)
	if _, err := w.WriteAt(make([]byte, 20), 0); err == nil {
		t.Fatal("oversized write should error")
	}
	if _, err := w.WriteAt(make([]byte, 5), 8); err == nil {
		t.Fatal("overhanging write should error")
	}
}

func TestTotalWritten(t *testing.T) {
	s := NewSyntheticStore()
	w1, _ := s.Create("a", 100)
	w2, _ := s.Create("b", 100)
	w1.WriteAt(make([]byte, 40), 0)
	w2.WriteAt(make([]byte, 25), 0)
	if s.TotalWritten() != 65 {
		t.Fatalf("TotalWritten=%d", s.TotalWritten())
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := ds.Create("sub/f.bin", 128)
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 128)
	FillContent("f", 0, content)
	if _, err := w.WriteAt(content[64:], 64); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt(content[:64], 0); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, err := ds.Open("sub/f.bin", 128)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, 128)
	if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("round trip mismatch")
	}
}

func TestDirStorePreSizesFiles(t *testing.T) {
	dir := t.TempDir()
	ds, _ := NewDirStore(dir)
	w, err := ds.Create("f.bin", 4096)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	fi, err := os.Stat(filepath.Join(dir, "f.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 4096 {
		t.Fatalf("pre-sized to %d want 4096", fi.Size())
	}
}

func TestDirStoreRejectsEscapes(t *testing.T) {
	dir := t.TempDir()
	ds, _ := NewDirStore(dir)
	for _, name := range []string{"../evil", "/abs/path", "a/../../evil"} {
		if _, err := ds.Open(name, 1); err == nil {
			t.Fatalf("path %q should be rejected", name)
		}
	}
}

// Property: synthetic reader output always matches FillContent at any
// offset/length.
func TestQuickReaderMatchesFill(t *testing.T) {
	s := NewSyntheticStore()
	f := func(off uint16, n uint8) bool {
		size := int64(1 << 16)
		r, _ := s.Open("q.dat", size)
		defer r.Close()
		length := int(n)%128 + 1
		o := int64(off) % (size - 200)
		got := make([]byte, length)
		want := make([]byte, length)
		if _, err := r.ReadAt(got, o); err != nil {
			return false
		}
		FillContent("q.dat", o, want)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidSessionID(t *testing.T) {
	for _, ok := range []string{"job-7-a1b2c3", "Sess_01.resume", "x"} {
		if !ValidSessionID(ok) {
			t.Errorf("%q rejected", ok)
		}
	}
	long := make([]byte, 129)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, "a b", "s\x00", string(long)} {
		if ValidSessionID(bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestDirStoreStat(t *testing.T) {
	ds, _ := NewDirStore(t.TempDir())
	if _, err := ds.Stat("missing.bin"); !os.IsNotExist(err) {
		t.Fatalf("want not-exist, got %v", err)
	}
	w, err := ds.Create("f.bin", 4096)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	size, err := ds.Stat("f.bin")
	if err != nil || size != 4096 {
		t.Fatalf("Stat=%d err=%v", size, err)
	}
}

func TestDirStoreLedgerRoundTrip(t *testing.T) {
	ds, _ := NewDirStore(t.TempDir())
	if _, err := ds.LoadLedger("sess"); err == nil {
		t.Fatal("missing ledger loaded")
	}
	doc := []byte(`{"schema":1}`)
	if err := ds.SaveLedger("sess", doc); err != nil {
		t.Fatal(err)
	}
	got, err := ds.LoadLedger("sess")
	if err != nil || !bytes.Equal(got, doc) {
		t.Fatalf("load=%q err=%v", got, err)
	}
	// Overwrite must be atomic-rename clean.
	doc2 := []byte(`{"schema":1,"files":[]}`)
	if err := ds.SaveLedger("sess", doc2); err != nil {
		t.Fatal(err)
	}
	if got, _ := ds.LoadLedger("sess"); !bytes.Equal(got, doc2) {
		t.Fatalf("overwrite lost: %q", got)
	}
	if err := ds.RemoveLedger("sess"); err != nil {
		t.Fatal(err)
	}
	if err := ds.RemoveLedger("sess"); err != nil {
		t.Fatalf("double remove should be benign: %v", err)
	}
	if _, err := ds.LoadLedger("sess"); err == nil {
		t.Fatal("removed ledger still loads")
	}
	// Hostile session ids must never touch the filesystem.
	if err := ds.SaveLedger("../escape", doc); err == nil {
		t.Fatal("path-escaping session id accepted")
	}
}

func TestSyntheticStoreStatAndLedger(t *testing.T) {
	s := NewSyntheticStore()
	if _, err := s.Stat("f"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want not-exist, got %v", err)
	}
	w, _ := s.Create("f", 512)
	w.Close()
	if size, err := s.Stat("f"); err != nil || size != 512 {
		t.Fatalf("Stat=%d err=%v", size, err)
	}
	if err := s.SaveLedger("sess", []byte("doc")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.LoadLedger("sess"); err != nil || string(got) != "doc" {
		t.Fatalf("load=%q err=%v", got, err)
	}
	s.RemoveLedger("sess")
	if _, err := s.LoadLedger("sess"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want not-exist after remove, got %v", err)
	}
}

// SaveLedger routes documents by content: JSON to ledger.json, binary
// snapshots to ledger.bin — and a binary save migrates a JSON session
// in place (the old document and the legacy flat sidecar are removed).
func TestDirStoreSaveRoutesByContentAndMigrates(t *testing.T) {
	root := t.TempDir()
	ds, _ := NewDirStore(root)
	jsonDoc := []byte(`{"schema":1}`)
	binDoc := []byte{0xAD, 'L', 'S', '2', 9, 9, 9}
	if err := ds.SaveLedger("sess", jsonDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, ".automdt", "sess", "ledger.json")); err != nil {
		t.Fatalf("JSON document not at ledger.json: %v", err)
	}
	// A legacy flat sidecar from an even older build is lying around.
	flat := filepath.Join(root, ".automdt", "sess.ledger")
	if err := os.WriteFile(flat, jsonDoc, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveLedger("sess", binDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, ".automdt", "sess", "ledger.bin")); err != nil {
		t.Fatalf("binary document not at ledger.bin: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, ".automdt", "sess", "ledger.json")); !os.IsNotExist(err) {
		t.Fatal("migration left the JSON document behind")
	}
	if _, err := os.Stat(flat); !os.IsNotExist(err) {
		t.Fatal("migration left the legacy flat sidecar behind")
	}
	if got, err := ds.LoadLedger("sess"); err != nil || !bytes.Equal(got, binDoc) {
		t.Fatalf("load=%v err=%v", got, err)
	}
}

// The append-only journal: appends accumulate in order and survive
// independently of the snapshot; reset discards them; remove clears the
// whole session including the journal.
func TestDirStoreJournalAppendResetRemove(t *testing.T) {
	root := t.TempDir()
	ds, _ := NewDirStore(root)
	if j, err := ds.LoadJournal("sess"); err != nil || j != nil {
		t.Fatalf("missing journal should load empty: %v %v", j, err)
	}
	if err := ds.AppendLedger("sess", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := ds.AppendLedger("sess", []byte("def")); err != nil {
		t.Fatal(err)
	}
	if j, err := ds.LoadJournal("sess"); err != nil || string(j) != "abcdef" {
		t.Fatalf("journal=%q err=%v", j, err)
	}
	if err := ds.ResetJournal("sess"); err != nil {
		t.Fatal(err)
	}
	if j, err := ds.LoadJournal("sess"); err != nil || len(j) != 0 {
		t.Fatalf("journal after reset=%q err=%v", j, err)
	}
	if err := ds.AppendLedger("sess", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveLedger("sess", []byte{0xAD, 'L', 'S', '2'}); err != nil {
		t.Fatal(err)
	}
	if err := ds.RemoveLedger("sess"); err != nil {
		t.Fatal(err)
	}
	if j, _ := ds.LoadJournal("sess"); len(j) != 0 {
		t.Fatalf("journal survived RemoveLedger: %q", j)
	}
	if entries, err := os.ReadDir(filepath.Join(root, ".automdt")); err == nil && len(entries) != 0 {
		t.Fatalf("session residue after remove: %v", entries)
	}
	if err := ds.AppendLedger("../escape", []byte("x")); err == nil {
		t.Fatal("path-escaping session id accepted by AppendLedger")
	}
}

// ListLedgers enumerates sessions in every layout (binary, JSON,
// journal-only age refresh, legacy flat).
func TestDirStoreListLedgersNewLayout(t *testing.T) {
	root := t.TempDir()
	ds, _ := NewDirStore(root)
	if err := ds.SaveLedger("bin-sess", []byte{0xAD, 'L', 'S', '2'}); err != nil {
		t.Fatal(err)
	}
	if err := ds.AppendLedger("bin-sess", []byte("recs")); err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveLedger("json-sess", []byte(`{"schema":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, ".automdt", "flat-sess.ledger"), []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := ds.ListLedgers()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, info := range infos {
		got[info.Session] = true
		if info.Age < 0 || info.Age > time.Minute {
			t.Fatalf("%s: implausible age %v", info.Session, info.Age)
		}
	}
	for _, want := range []string{"bin-sess", "json-sess", "flat-sess"} {
		if !got[want] {
			t.Fatalf("ListLedgers missed %s: %v", want, infos)
		}
	}
}

// The synthetic store's journal mirrors the DirStore semantics in
// memory.
func TestSyntheticStoreJournal(t *testing.T) {
	s := NewSyntheticStore()
	if j, err := s.LoadJournal("sess"); err != nil || len(j) != 0 {
		t.Fatalf("missing journal should load empty: %v %v", j, err)
	}
	s.AppendLedger("sess", []byte("ab"))
	s.AppendLedger("sess", []byte("cd"))
	if j, _ := s.LoadJournal("sess"); string(j) != "abcd" {
		t.Fatalf("journal=%q", j)
	}
	if err := s.AppendLedger("../bad", nil); err == nil {
		t.Fatal("invalid session accepted")
	}
	s.ResetJournal("sess")
	if j, _ := s.LoadJournal("sess"); len(j) != 0 {
		t.Fatalf("journal after reset=%q", j)
	}
	s.AppendLedger("sess", []byte("zz"))
	s.RemoveLedger("sess")
	if j, _ := s.LoadJournal("sess"); len(j) != 0 {
		t.Fatalf("journal survived remove: %q", j)
	}
}
