// Package rate implements token-bucket rate limiting used to emulate
// per-thread I/O caps, per-stream network throttles, and aggregate link
// bandwidth in the AutoMDT emulated testbed (the paper throttles per-TCP
// stream rates exactly this way to build its bottleneck scenarios, §V-B-1).
package rate

import (
	"context"
	"math"
	"sync"
	"time"
)

// Limiter is a token-bucket rate limiter measured in bytes per second.
// A zero or negative rate means unlimited. Limiter is safe for
// concurrent use.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64 // bucket capacity in bytes
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

// NewLimiter creates a limiter that admits bytesPerSec bytes per second
// with the given burst capacity. If burst <= 0 it defaults to one second's
// worth of tokens (or 64 KiB, whichever is larger).
func NewLimiter(bytesPerSec float64, burst float64) *Limiter {
	if burst <= 0 {
		burst = math.Max(bytesPerSec, 64<<10)
	}
	l := &Limiter{rate: bytesPerSec, burst: burst, now: time.Now}
	l.tokens = burst
	l.last = l.now()
	return l
}

// Unlimited returns a limiter that never delays.
func Unlimited() *Limiter { return NewLimiter(0, 1) }

// SetClock replaces the limiter's time source. Intended for tests.
func (l *Limiter) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
	l.last = now()
}

// SetRate changes the refill rate at runtime (e.g. to emulate background
// traffic changing available bandwidth mid-transfer).
func (l *Limiter) SetRate(bytesPerSec float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advance()
	l.rate = bytesPerSec
	if l.rate > 0 && l.burst < l.rate/10 {
		l.burst = l.rate / 10
	}
}

// SetRateBurst changes the refill rate and resets the bucket capacity,
// dropping any banked tokens above the new burst. Unlike SetRate (which
// only ever grows burst) this lets a caller snap the limiter into a
// strictly slower regime — e.g. a Markov link model downshifting state —
// without a stale full bucket letting one large burst through first.
// A burst <= 0 defaults as in NewLimiter.
func (l *Limiter) SetRateBurst(bytesPerSec, burst float64) {
	if burst <= 0 {
		burst = math.Max(bytesPerSec, 64<<10)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advance()
	l.rate = bytesPerSec
	l.burst = burst
	if l.tokens > burst {
		l.tokens = burst
	}
}

// Rate returns the current refill rate in bytes per second (0 = unlimited).
func (l *Limiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// advance refills tokens for elapsed time. Caller must hold mu.
func (l *Limiter) advance() {
	now := l.now()
	elapsed := now.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.tokens = math.Min(l.burst, l.tokens+elapsed*l.rate)
		l.last = now
	}
}

// reserve consumes n tokens and returns how long the caller must wait
// before proceeding. Tokens may go negative (debt), which naturally
// serializes heavy callers.
func (l *Limiter) reserve(n int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate <= 0 || n <= 0 {
		return 0
	}
	l.advance()
	l.tokens -= float64(n)
	if l.tokens >= 0 {
		return 0
	}
	return time.Duration(-l.tokens / l.rate * float64(time.Second))
}

// WaitN blocks until n bytes may proceed or ctx is cancelled.
func (l *Limiter) WaitN(ctx context.Context, n int) error {
	d := l.reserve(n)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// AllowN reports whether n bytes may proceed immediately, consuming the
// tokens if so.
func (l *Limiter) AllowN(n int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate <= 0 || n <= 0 {
		return true
	}
	l.advance()
	if l.tokens >= float64(n) {
		l.tokens -= float64(n)
		return true
	}
	return false
}
