package rate

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestUnlimitedNeverDelays(t *testing.T) {
	l := Unlimited()
	for i := 0; i < 100; i++ {
		if d := l.reserve(1 << 30); d != 0 {
			t.Fatalf("unlimited limiter delayed %v", d)
		}
	}
}

func TestAllowNWithinBurst(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(1000, 1000)
	l.SetClock(clk.now)
	if !l.AllowN(1000) {
		t.Fatal("full burst should be allowed")
	}
	if l.AllowN(1) {
		t.Fatal("bucket should be empty")
	}
	clk.advance(500 * time.Millisecond)
	if !l.AllowN(500) {
		t.Fatal("refill after 0.5s should allow 500")
	}
}

func TestReserveDebtDelay(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(1000, 1000)
	l.SetClock(clk.now)
	if d := l.reserve(1000); d != 0 {
		t.Fatalf("burst take delayed %v", d)
	}
	// 500 bytes of debt at 1000 B/s → 0.5 s wait.
	if d := l.reserve(500); d != 500*time.Millisecond {
		t.Fatalf("debt delay = %v want 500ms", d)
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(1000, 1000)
	l.SetClock(clk.now)
	l.AllowN(1000) // drain
	l.SetRate(2000)
	clk.advance(250 * time.Millisecond)
	if !l.AllowN(500) {
		t.Fatal("after rate change, 0.25s at 2000 B/s should refill 500")
	}
	if l.Rate() != 2000 {
		t.Fatalf("Rate()=%v", l.Rate())
	}
}

func TestWaitNContextCancel(t *testing.T) {
	l := NewLimiter(1, 1) // 1 byte/sec: second call would wait ~forever
	l.AllowN(1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.WaitN(ctx, 1000); err == nil {
		t.Fatal("expected context deadline error")
	}
}

func TestWaitNImmediateWhenTokensAvailable(t *testing.T) {
	l := NewLimiter(1e9, 1e9)
	start := time.Now()
	if err := l.WaitN(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("WaitN delayed despite available tokens")
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	l := NewLimiter(1e12, 1e12)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.AllowN(10)
				l.reserve(10)
			}
		}()
	}
	wg.Wait()
}

// Sustained throughput over fake time should approximate the configured
// rate regardless of request sizes.
func TestSustainedRateApproximation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(1_000_000, 100_000) // 1 MB/s, 100 KB burst
	l.SetClock(clk.now)
	granted := 0
	for step := 0; step < 1000; step++ {
		clk.advance(10 * time.Millisecond) // total 10 s
		for l.AllowN(8192) {
			granted += 8192
		}
	}
	want := 10_000_000.0
	if ratio := float64(granted) / want; ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("granted %d bytes over 10s at 1MB/s (ratio %v)", granted, ratio)
	}
}

// SetRateBurst must drop banked tokens above the new burst so a
// downshift takes effect immediately instead of after one stale burst.
func TestSetRateBurstDropsBankedTokens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := NewLimiter(10_000_000, 10_000_000) // full 10 MB bucket
	l.SetClock(clk.now)
	l.SetRateBurst(100_000, 10_000) // snap to 100 KB/s, 10 KB bucket
	if l.Rate() != 100_000 {
		t.Fatalf("rate = %v, want 100000", l.Rate())
	}
	if l.AllowN(20_000) {
		t.Fatal("AllowN(20000) granted from a bucket capped at 10000")
	}
	if !l.AllowN(10_000) {
		t.Fatal("AllowN(10000) denied despite a full (new) bucket")
	}
	// Refill obeys the new rate: 50 ms at 100 KB/s banks 5 KB.
	clk.advance(50 * time.Millisecond)
	if l.AllowN(6_000) {
		t.Fatal("AllowN(6000) granted after only 5 KB refill")
	}
	if !l.AllowN(5_000) {
		t.Fatal("AllowN(5000) denied after 5 KB refill")
	}
	// Unlimited via SetRateBurst(0, ...) never delays.
	l.SetRateBurst(0, 1)
	if !l.AllowN(1 << 30) {
		t.Fatal("unlimited limiter denied")
	}
}
