// Package sched is the transfer-job scheduler behind cmd/automdt-daemon:
// it turns the single-transfer AutoMDT engine into a multi-tenant
// service. Jobs (manifest + destination + priority) are queued by
// priority and run concurrently, each driven by its own controller,
// while a global budget arbiter splits the host's per-stage worker
// budget ⟨read, net, write⟩ across the active jobs — fair-share weighted
// by priority, rebalanced whenever a job starts or finishes, and
// enforced through env.BudgetCap so no controller can exceed its slice.
//
// Job lifecycle: Queued → Running → Done | Failed | Cancelled, with
// bounded retries. Every job's attempts share one session ID, so a
// retried attempt resumes the interrupted transfer from its chunk ledger
// instead of restarting from byte zero.
//
// Attempts execute through a pluggable Runner. LoopbackRunner spawns a
// private in-process receiver per job; EndpointRunner instead points the
// whole fleet at ONE shared multi-session receiver endpoint — the
// deployed-DTN shape, where the destination's admission cap and the
// scheduler's budget bound load together. NewHandler exposes the
// scheduler over HTTP (submit/status/cancel/list plus a /metrics text
// snapshot).
//
// docs/OPERATIONS.md is the operator's guide: the HTTP API reference,
// the /metrics field glossary, and resume/retry semantics.
package sched
