package sched

import (
	"context"
	"strings"
	"testing"
	"time"

	"automdt/internal/env"
	"automdt/internal/workload"
)

// Jobs scheduled through an EndpointRunner all land on one shared
// multi-session receiver, complete there, and surface the endpoint's
// gauges through the scheduler snapshot.
func TestEndpointRunnerSharesOneReceiver(t *testing.T) {
	er := &EndpointRunner{Verify: true}
	defer er.Close()
	s, err := New(Config{
		Budget:    [env.StageCount]int{8, 8, 8, 8},
		MaxActive: 4,
		Runner:    er,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const jobs = 4
	ids := make([]int64, jobs)
	for i := range ids {
		id, err := s.Submit(JobSpec{
			Name:     "tenant",
			Manifest: workload.LargeFiles(2, 512<<10),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("job %d: state %s (%s)", id, st.State, st.Error)
		}
	}

	// Every session went through the one shared endpoint, and its gauges
	// ride the scheduler's /metrics snapshot.
	text := s.Snapshot().Text()
	if !strings.Contains(text, `automdt_endpoint_sessions_total{event="completed"} 4`) {
		t.Fatalf("endpoint gauges missing or wrong in scheduler snapshot:\n%s", text)
	}

	// A DestDir job cannot target a shared endpoint.
	id, err := s.Submit(JobSpec{
		Name:     "bad",
		Manifest: workload.LargeFiles(1, 64<<10),
		DestDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || !strings.Contains(st.Error, "DestDir") {
		t.Fatalf("DestDir job against shared endpoint: state=%s err=%q", st.State, st.Error)
	}
}
