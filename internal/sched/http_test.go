package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"automdt/internal/env"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

// dataset is shorthand for a uniform large-file workload.Spec.
func dataset(count int, size int64) workload.Spec {
	return workload.Spec{Kind: "large", Count: count, SizeBytes: size}
}

func newTestServer(t *testing.T, cfg Config) (*Scheduler, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHTTPSubmitStatusMetrics(t *testing.T) {
	_, srv := newTestServer(t, Config{Budget: [env.StageCount]int{8, 8, 8, 8}})

	req := SubmitRequest{
		Name:            "api-job",
		Priority:        2,
		Dataset:         dataset(2, 256<<10),
		ProbeIntervalMs: 10,
	}
	resp := postJSON(t, srv.URL+"/jobs", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.ID != 1 || st.Priority != 2 || st.TotalBytes != 512<<10 {
		t.Fatalf("submit response = %+v", st)
	}
	if st.SessionID == "" {
		t.Fatalf("no resume session assigned: %+v", st)
	}

	waitFor(t, "job done via API", func() bool {
		r, err := http.Get(fmt.Sprintf("%s/jobs/%d", srv.URL, st.ID))
		if err != nil {
			return false
		}
		return decodeStatus(t, r).State == "done"
	})

	r, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(list) != 1 || list[0].Name != "api-job" {
		t.Fatalf("list = %+v", list)
	}

	r, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	r.Body.Close()
	txt := buf.String()
	for _, want := range []string{
		`automdt_sched_jobs{state="done"} 1`,
		`automdt_sched_budget{stage="read"} 8`,
		`automdt_job_avg_mbps{job="1"}`,
		`automdt_resume_sessions_total`,
		`automdt_resume_bytes_skipped_total`,
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("metrics missing %q:\n%s", want, txt)
		}
	}
}

func TestHTTPCancel(t *testing.T) {
	block := make(chan struct{})
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		select {
		case <-block:
			return &transfer.Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, srv := newTestServer(t, Config{Budget: [env.StageCount]int{2, 2, 2, 2}, Runner: runner})
	defer close(block)

	st := decodeStatus(t, postJSON(t, srv.URL+"/jobs", SubmitRequest{
		Name: "doomed", Dataset: dataset(1, 1024),
	}))
	resp := postJSON(t, fmt.Sprintf("%s/jobs/%d/cancel", srv.URL, st.ID), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "cancelled" {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	// Cancelling again conflicts.
	resp = postJSON(t, fmt.Sprintf("%s/jobs/%d/cancel", srv.URL, st.ID), nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel status = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{Budget: [env.StageCount]int{1, 1, 1, 1}})

	// Unknown job.
	r, err := http.Get(srv.URL + "/jobs/99")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", r.StatusCode)
	}
	r.Body.Close()

	// Bad dataset.
	resp := postJSON(t, srv.URL+"/jobs", SubmitRequest{Name: "bad"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dataset status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed id.
	r, err = http.Get(srv.URL + "/jobs/banana")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id status = %d", r.StatusCode)
	}
	r.Body.Close()

	// Health.
	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", r.StatusCode)
	}
	r.Body.Close()
}

// TestV1RouteAliases checks the versioned API surface: every route is
// reachable under /v1/ and at its legacy unprefixed path, and both
// spellings hit the same scheduler.
func TestV1RouteAliases(t *testing.T) {
	_, srv := newTestServer(t, Config{Budget: [env.StageCount]int{8, 8, 8, 8}})

	// Submit through the versioned path, with the striping knob set.
	resp := postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{
		Name:    "v1-job",
		Dataset: dataset(1, 1<<20),
		Conns:   3,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs status %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)

	// Read it back through both spellings; they must agree on identity.
	for _, path := range []string{
		fmt.Sprintf("/v1/jobs/%d", st.ID),
		fmt.Sprintf("/jobs/%d", st.ID),
	} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		got := decodeStatus(t, r)
		if got.ID != st.ID || got.Name != "v1-job" {
			t.Fatalf("GET %s returned %+v", path, got)
		}
	}

	for _, path := range []string{"/v1/healthz", "/v1/metrics", "/v1/jobs", "/v1/debug/flight"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", path, r.StatusCode)
		}
	}

	// Cancel through the versioned path.
	r, err := http.NewRequest(http.MethodDelete, srv.URL+fmt.Sprintf("/v1/jobs/%d", st.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(r)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK && dresp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE /v1/jobs/%d status %d", st.ID, dresp.StatusCode)
	}
}

func TestHTTPFleetStatus(t *testing.T) {
	fr := &FleetRunner{Size: 2, Verify: true}
	t.Cleanup(fr.Close)
	_, srv := newTestServer(t, Config{
		Budget: [env.StageCount]int{8, 8, 8, 8},
		Runner: fr,
	})

	resp, err := http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/fleet status %d", resp.StatusCode)
	}
	var st FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Size != 2 || len(st.Endpoints) != 2 {
		t.Fatalf("fleet status = %+v, want 2 endpoints", st)
	}
	for _, ep := range st.Endpoints {
		if !ep.Live || ep.DataAddr == "" || ep.CtrlAddr == "" {
			t.Fatalf("endpoint not live or unaddressed: %+v", ep)
		}
	}

	// A non-fleet runner answers 404, on both route spellings.
	_, plain := newTestServer(t, Config{Budget: [env.StageCount]int{8, 8, 8, 8}})
	for _, path := range []string{"/v1/fleet", "/fleet"} {
		r, err := http.Get(plain.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on non-fleet runner: status %d, want 404", path, r.StatusCode)
		}
	}
}
