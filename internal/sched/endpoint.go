package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"automdt/internal/env"
	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/transfer"
)

// EndpointRunner executes every job attempt as a sender against ONE
// shared multi-session receiver endpoint, instead of spawning a private
// receiver per job the way LoopbackRunner does. This is the deployed-DTN
// shape: a fleet of senders (the daemon's jobs) all target the same
// destination endpoint, whose single listener pair demultiplexes their
// sessions, and whose admission cap — not just the scheduler's budget —
// bounds destination-side load. The endpoint starts lazily on the first
// job and is shut down by Close.
//
// All sessions share Store as their destination, so job manifests must
// not write conflicting content to the same file names (synthetic
// content is name-derived, so same-named synthetic files agree by
// construction; real datasets should namespace per tenant). Jobs
// carrying a DestDir are rejected: a shared endpoint has one fixed
// destination store.
type EndpointRunner struct {
	// Receiver parameterizes the shared endpoint engine — notably
	// MaxSessions (admission cap) and LedgerTTL (stale-session GC).
	Receiver transfer.Config
	// Store is the shared destination. nil uses one synthetic sink for
	// the endpoint's whole lifetime (resumes work across attempts because
	// the sink, and therefore its in-memory ledgers, outlives any job).
	Store fsim.Store
	// Verify makes the default synthetic sink check written bytes against
	// the expected deterministic content.
	Verify bool

	mu       sync.Mutex
	recv     *transfer.Receiver
	cancel   context.CancelFunc
	started  bool
	startErr error
	done     chan struct{}
}

// start lazily listens and serves the endpoint. Caller holds mu.
func (e *EndpointRunner) start() (*transfer.Receiver, error) {
	if e.started {
		return e.recv, e.startErr
	}
	e.started = true
	if e.Store == nil {
		ss := fsim.NewSyntheticStore()
		ss.Verify = e.Verify
		e.Store = ss
	}
	recv := transfer.NewReceiver(e.Receiver, e.Store)
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		e.startErr = err
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	e.recv, e.cancel = recv, cancel
	e.done = make(chan struct{})
	go func() {
		defer close(e.done)
		recv.Serve(ctx)
	}()
	return recv, nil
}

// Addrs returns the endpoint's data and control addresses, starting it
// if necessary — what a daemon prints so external senders can target the
// shared endpoint directly.
func (e *EndpointRunner) Addrs() (data, ctrl string, err error) {
	e.mu.Lock()
	recv, err := e.start()
	e.mu.Unlock()
	if err != nil {
		return "", "", err
	}
	return recv.DataAddr(), recv.CtrlAddr(), nil
}

// Run implements Runner: one sender session against the shared endpoint.
func (e *EndpointRunner) Run(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
	if spec.DestDir != "" {
		return nil, errors.New("sched: endpoint runner has a fixed shared destination; DestDir is not supported")
	}
	e.mu.Lock()
	recv, err := e.start()
	e.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("sched: start shared endpoint: %w", err)
	}
	src := fsim.NewSyntheticStore()
	send := &transfer.Sender{Cfg: spec.Transfer, Store: src, Manifest: spec.Manifest, Controller: ctrl}
	return send.Run(ctx, recv.DataAddr(), recv.CtrlAddr())
}

// Snapshot exports the shared endpoint's automdt_endpoint_* gauges; the
// scheduler merges them into /metrics.
func (e *EndpointRunner) Snapshot() metrics.Snapshot {
	e.mu.Lock()
	recv := e.recv
	e.mu.Unlock()
	if recv == nil {
		return metrics.Snapshot{}
	}
	return recv.MetricsSnapshot()
}

// Close shuts the shared endpoint down and waits for its sessions to
// tear down. Safe to call before any job ran.
func (e *EndpointRunner) Close() {
	e.mu.Lock()
	cancel, done := e.cancel, e.done
	e.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}
