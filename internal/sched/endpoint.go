package sched

import (
	"context"
	"errors"
	"sync"

	"automdt/internal/env"
	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/transfer"
)

// EndpointRunner executes every job attempt as a sender against ONE
// shared multi-session receiver endpoint, instead of spawning a private
// receiver per job the way LoopbackRunner does. This is the deployed-DTN
// shape: a fleet of senders (the daemon's jobs) all target the same
// destination endpoint, whose single listener pair demultiplexes their
// sessions, and whose admission cap — not just the scheduler's budget —
// bounds destination-side load. The endpoint starts lazily on the first
// job and is shut down by Close.
//
// Since the receiver-fleet work it is a thin veneer over a Size-1
// FleetRunner: same engine, same snapshot series, plus the fleet
// control-plane gauges. Scale past one endpoint by using FleetRunner
// directly.
//
// All sessions share Store as their destination, so job manifests must
// not write conflicting content to the same file names (synthetic
// content is name-derived, so same-named synthetic files agree by
// construction; real datasets should namespace per tenant). Jobs
// carrying a DestDir are rejected: a shared endpoint has one fixed
// destination store.
type EndpointRunner struct {
	// Receiver parameterizes the shared endpoint engine — notably
	// MaxSessions (admission cap) and LedgerTTL (stale-session GC).
	Receiver transfer.Config
	// Store is the shared destination. nil uses one synthetic sink for
	// the endpoint's whole lifetime (resumes work across attempts because
	// the sink, and therefore its in-memory ledgers, outlives any job).
	Store fsim.Store
	// Verify makes the default synthetic sink check written bytes against
	// the expected deterministic content.
	Verify bool

	once  sync.Once
	fleet *FleetRunner
}

// runner resolves the backing single-endpoint fleet.
func (e *EndpointRunner) runner() *FleetRunner {
	e.once.Do(func() {
		e.fleet = &FleetRunner{Size: 1, Receiver: e.Receiver, Store: e.Store, Verify: e.Verify}
	})
	return e.fleet
}

// Addrs returns the endpoint's data and control addresses, starting it
// if necessary — what a daemon prints so external senders can target the
// shared endpoint directly.
func (e *EndpointRunner) Addrs() (data, ctrl string, err error) {
	return e.runner().Addrs()
}

// Run implements Runner: one sender session against the shared endpoint.
func (e *EndpointRunner) Run(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
	if spec.DestDir != "" {
		return nil, errors.New("sched: endpoint runner has a fixed shared destination; DestDir is not supported")
	}
	return e.runner().Run(ctx, spec, ctrl)
}

// Snapshot exports the shared endpoint's automdt_endpoint_* gauges (and
// the fleet control-plane's automdt_fleet_* gauges); the scheduler
// merges them into /metrics.
func (e *EndpointRunner) Snapshot() metrics.Snapshot {
	return e.runner().Snapshot()
}

// Status reports the backing single-endpoint fleet's membership and
// placement counters — what GET /v1/fleet serves.
func (e *EndpointRunner) Status() FleetStatus {
	return e.runner().Status()
}

// Close shuts the shared endpoint down and waits for its sessions to
// tear down. Safe to call before any job ran.
func (e *EndpointRunner) Close() {
	e.runner().Close()
}
