package sched

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"automdt/internal/env"
	"automdt/internal/flight"
)

// ArbiterSource is the flight-recorder source for the scheduler's own
// decisions: admissions and budget rebalances.
const ArbiterSource = "sched:arbiter"

// CapSource is the flight-recorder source for budget-cap clamp events —
// the moments a controller wanted more workers than its arbiter share
// allowed, the direct evidence trail for "the arbiter starved job N".
const CapSource = "sched:cap"

// allocScore is the arbiter's counterfactual objective: weighted
// proportional fairness Σⱼ Σ_stage wⱼ·log(shareⱼ). It rewards both total
// allocation and priority-proportional splits, so "give everything to
// one job" and "ignore priorities" both score visibly worse than the
// largest-remainder split when they are worse, and no better when they
// are not.
func allocScore(shares [][env.StageCount]int, weights []int) float64 {
	u := 0.0
	for j, sh := range shares {
		w := float64(weights[j])
		for _, n := range sh {
			if n < 1 {
				n = 1
			}
			u += w * math.Log(float64(n))
		}
	}
	return u
}

// allocFor builds a per-job allocation by applying split to every stage
// budget.
func allocFor(budget [env.StageCount]int, weights []int, split func(total int, weights []int) []int) [][env.StageCount]int {
	shares := make([][env.StageCount]int, len(weights))
	for stage := 0; stage < int(env.StageCount); stage++ {
		st := split(budget[stage], weights)
		for j := range shares {
			shares[j][stage] = st[j]
		}
	}
	return shares
}

// equalSplit is fairShare with priorities ignored.
func equalSplit(total int, weights []int) []int {
	eq := make([]int, len(weights))
	for i := range eq {
		eq[i] = 1
	}
	return fairShare(total, eq)
}

// greedySplit gives the highest-weight job everything above the
// one-worker floor the others keep.
func greedySplit(total int, weights []int) []int {
	shares := make([]int, len(weights))
	best := 0
	for i, w := range weights {
		shares[i] = 1
		if w > weights[best] {
			best = i
		}
	}
	if rest := total - len(weights) + 1; rest > shares[best] {
		shares[best] = rest
	}
	return shares
}

// recordRebalance logs one arbiter allocation as a flight decision: the
// chosen priority-fair split scored against the two allocation policies
// it implicitly rejected. ids/weights/alloc describe the active set in
// ascending-ID order. Caller holds s.mu; the caller has already checked
// flight.Active.
func (s *Scheduler) recordRebalance(ids []int64, weights []int, alloc map[int64][env.StageCount]int) {
	chosenShares := make([][env.StageCount]int, len(ids))
	var note strings.Builder
	for i, id := range ids {
		chosenShares[i] = alloc[id]
		if i > 0 {
			note.WriteByte(' ')
		}
		fmt.Fprintf(&note, "job%d=%v", id, alloc[id])
	}
	chosen := allocScore(chosenShares, weights)
	alts := []flight.Alt{
		{Label: "equal-split", Score: allocScore(allocFor(s.cfg.Budget, weights, equalSplit), weights)},
		{Label: "priority-greedy", Score: allocScore(allocFor(s.cfg.Budget, weights, greedySplit), weights)},
	}
	best := chosen
	for _, a := range alts {
		if a.Score > best {
			best = a.Score
		}
	}
	s.flightCum += best - chosen
	flight.Record(flight.Event{
		UnixNano:  time.Now().UnixNano(),
		Source:    ArbiterSource,
		Kind:      flight.KindRebalance,
		N:         s.cfg.Budget,
		Chosen:    flight.Alt{Label: "priority-fair", Score: chosen},
		Alts:      alts,
		Regret:    best - chosen,
		CumRegret: s.flightCum,
		Note:      note.String(),
	})
}

// recordAdmission logs one job start: the admitted job against the
// candidates still queued (priority-scored), plus its queue wait, which
// also feeds the queue_wait histogram. Caller holds s.mu and has checked
// flight.Active.
func (s *Scheduler) recordAdmission(job *Job, wait time.Duration) {
	chosen := flight.Alt{Label: fmt.Sprintf("job%d", job.ID), Score: float64(job.Spec.Priority)}
	var alts []flight.Alt
	best := chosen.Score
	for _, q := range s.queue {
		if q.state != Queued {
			continue
		}
		alts = append(alts, flight.Alt{Label: fmt.Sprintf("job%d", q.ID), Score: float64(q.Spec.Priority)})
		if float64(q.Spec.Priority) > best {
			best = float64(q.Spec.Priority)
		}
	}
	sort.SliceStable(alts, func(i, j int) bool { return alts[i].Score > alts[j].Score })
	if len(alts) > flight.DefaultTopK {
		alts = alts[:flight.DefaultTopK]
	}
	s.flightCum += best - chosen.Score
	flight.Record(flight.Event{
		UnixNano:  time.Now().UnixNano(),
		Source:    ArbiterSource,
		Kind:      flight.KindAdmission,
		Chosen:    chosen,
		Alts:      alts,
		Regret:    best - chosen.Score,
		CumRegret: s.flightCum,
		Note: fmt.Sprintf("job=%d name=%q attempt=%d wait=%.3fs",
			job.ID, job.Spec.Name, job.attempts, wait.Seconds()),
	})
}

// capClampHook builds the env.BudgetCap OnClamp callback for one job:
// every time the budget binds it records a cap event whose regret is the
// one-step utility the clamp cost (U at the wanted tuple minus U at the
// granted one, at observed throughput). Runs on the transfer probe
// goroutine; it takes no scheduler locks.
func capClampHook(job *Job) func(st env.State, wanted, got env.Action, caps [env.StageCount]int) {
	id, session := job.ID, job.session
	return func(st env.State, wanted, got env.Action, caps [env.StageCount]int) {
		if !flight.Active() {
			return
		}
		uWant := flight.Utility(st, wanted, env.DefaultK)
		uGot := flight.Utility(st, got, env.DefaultK)
		regret := uWant - uGot
		if regret < 0 {
			regret = 0
		}
		flight.Record(flight.Event{
			UnixNano:   time.Now().UnixNano(),
			Source:     CapSource,
			Kind:       flight.KindCap,
			N:          st.N,
			Throughput: st.Throughput,
			Chosen:     flight.Alt{N: got.N, Score: uGot},
			Alts:       []flight.Alt{{N: wanted.N, Score: uWant, Label: "uncapped"}},
			Regret:     regret,
			Note:       fmt.Sprintf("job=%d session=%s cap=%v", id, session, caps),
		})
	}
}
