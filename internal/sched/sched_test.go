package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"automdt/internal/env"
	"automdt/internal/fsim"
	"automdt/internal/static"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

func TestFairShare(t *testing.T) {
	cases := []struct {
		total   int
		weights []int
		want    []int
	}{
		{12, []int{1, 1, 1}, []int{4, 4, 4}},
		{12, []int{2, 1, 1}, []int{6, 3, 3}},
		{12, []int{2, 1}, []int{8, 4}},
		{3, []int{5, 1, 1}, []int{1, 1, 1}},        // floor: one worker each
		{4, []int{10, 1, 1, 1}, []int{1, 1, 1, 1}}, // nothing left beyond floors
		{16, []int{1}, []int{16}},
		{7, []int{1, 1}, []int{4, 3}}, // remainder goes to the older job
		{10, []int{0, -2}, []int{5, 5}},
		{0, nil, nil},
	}
	for _, c := range cases {
		got := fairShare(c.total, c.weights)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("fairShare(%d, %v) = %v, want %v", c.total, c.weights, got, c.want)
		}
		sum := 0
		for _, v := range got {
			sum += v
		}
		if len(c.weights) > 0 && len(c.weights) <= c.total && sum > c.total {
			t.Errorf("fairShare(%d, %v) oversubscribed: sum=%d", c.total, c.weights, sum)
		}
	}
}

// manifest1 is a tiny single-file manifest for fake-runner jobs.
func manifest1() workload.Manifest { return workload.LargeFiles(1, 1024) }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// allocRecorder captures every arbiter allocation.
type allocRecorder struct {
	mu     sync.Mutex
	allocs []map[int64][env.StageCount]int
}

func (a *allocRecorder) record(m map[int64][env.StageCount]int) {
	cp := make(map[int64][env.StageCount]int, len(m))
	for k, v := range m {
		cp[k] = v
	}
	a.mu.Lock()
	a.allocs = append(a.allocs, cp)
	a.mu.Unlock()
}

func (a *allocRecorder) snapshot() []map[int64][env.StageCount]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]map[int64][env.StageCount]int(nil), a.allocs...)
}

func TestPriorityOrdering(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		started <- spec.Name
		select {
		case <-release:
			return &transfer.Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, err := New(Config{Budget: [env.StageCount]int{1, 1, 1, 1}, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.MaxActive() != 1 {
		t.Fatalf("MaxActive = %d, want 1 (clamped to min budget)", s.MaxActive())
	}

	submit := func(name string, pri int) {
		t.Helper()
		if _, err := s.Submit(JobSpec{Name: name, Manifest: manifest1(), Priority: pri}); err != nil {
			t.Fatal(err)
		}
	}
	submit("first", 1)
	if got := <-started; got != "first" {
		t.Fatalf("first started job = %q", got)
	}
	// Queue three more while "first" occupies the only slot.
	submit("low", 1)
	submit("high", 5)
	submit("mid", 2)
	close(release) // completions now cascade one at a time

	var order []string
	for i := 0; i < 3; i++ {
		order = append(order, <-started)
	}
	want := []string{"high", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("start order = %v, want %v", order, want)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceOnCompletion(t *testing.T) {
	rec := &allocRecorder{}
	releases := map[string]chan struct{}{
		"heavy": make(chan struct{}),
		"a":     make(chan struct{}),
		"b":     make(chan struct{}),
	}
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		select {
		case <-releases[spec.Name]:
			return &transfer.Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, err := New(Config{
		Budget:      [env.StageCount]int{12, 12, 12, 12},
		MaxActive:   3,
		Runner:      runner,
		onRebalance: rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id := map[string]int64{}
	for _, j := range []struct {
		name string
		pri  int
	}{{"heavy", 2}, {"a", 1}, {"b", 1}} {
		jid, err := s.Submit(JobSpec{Name: j.name, Manifest: manifest1(), Priority: j.pri})
		if err != nil {
			t.Fatal(err)
		}
		id[j.name] = jid
	}

	var full map[int64][env.StageCount]int
	waitFor(t, "all three jobs allocated", func() bool {
		for _, a := range rec.snapshot() {
			if len(a) == 3 {
				full = a
				return true
			}
		}
		return false
	})
	if full[id["heavy"]] != [env.StageCount]int{6, 6, 6, 6} {
		t.Errorf("heavy share = %v, want [6 6 6]", full[id["heavy"]])
	}
	if full[id["a"]] != [env.StageCount]int{3, 3, 3, 3} || full[id["b"]] != [env.StageCount]int{3, 3, 3, 3} {
		t.Errorf("light shares = %v, %v, want [3 3 3] each", full[id["a"]], full[id["b"]])
	}

	// Completing "a" must rebalance its slice onto the survivors.
	close(releases["a"])
	waitFor(t, "rebalance to two jobs", func() bool {
		for _, a := range rec.snapshot() {
			if len(a) == 2 && a[id["heavy"]] == [env.StageCount]int{8, 8, 8, 8} && a[id["b"]] == [env.StageCount]int{4, 4, 4, 4} {
				return true
			}
		}
		return false
	})
	close(releases["heavy"])
	close(releases["b"])
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCancelReleasesBudget(t *testing.T) {
	rec := &allocRecorder{}
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s, err := New(Config{
		Budget:      [env.StageCount]int{8, 8, 8, 8},
		MaxActive:   2,
		Runner:      runner,
		onRebalance: rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id1, _ := s.Submit(JobSpec{Name: "victim", Manifest: manifest1()})
	id2, _ := s.Submit(JobSpec{Name: "survivor", Manifest: manifest1()})
	waitFor(t, "both running with split budget", func() bool {
		for _, a := range rec.snapshot() {
			if len(a) == 2 && a[id1] == [env.StageCount]int{4, 4, 4, 4} {
				return true
			}
		}
		return false
	})

	if err := s.Cancel(id1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id1)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "cancelled" {
		t.Fatalf("victim state = %s, want cancelled", st.State)
	}
	waitFor(t, "survivor inherits full budget", func() bool {
		for _, a := range rec.snapshot() {
			if len(a) == 1 && a[id2] == [env.StageCount]int{8, 8, 8, 8} {
				return true
			}
		}
		return false
	})
	if err := s.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx, id2); err != nil {
		t.Fatal(err)
	}
	// Cancelling a terminal job is an error.
	if err := s.Cancel(id1); err == nil {
		t.Fatal("cancelling a cancelled job should fail")
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	release := make(chan struct{})
	var ran sync.Map
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		ran.Store(spec.Name, true)
		select {
		case <-release:
			return &transfer.Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, err := New(Config{Budget: [env.StageCount]int{1, 1, 1, 1}, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Submit(JobSpec{Name: "running", Manifest: manifest1()})
	qid, _ := s.Submit(JobSpec{Name: "queued", Manifest: manifest1()})
	if err := s.Cancel(qid); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status(qid)
	if st.State != "cancelled" {
		t.Fatalf("queued job state = %s, want cancelled", st.State)
	}
	close(release)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := ran.Load("queued"); ok {
		t.Fatal("cancelled queued job still ran")
	}
}

func TestRetryThenFail(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	boom := errors.New("boom")
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		mu.Lock()
		attempts++
		mu.Unlock()
		return nil, boom
	})
	s, err := New(Config{Budget: [env.StageCount]int{2, 2, 2, 2}, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id, _ := s.Submit(JobSpec{Name: "flaky", Manifest: manifest1(), MaxRetries: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", st.Attempts)
	}
	mu.Lock()
	got := attempts
	mu.Unlock()
	if got != 3 {
		t.Fatalf("runner invoked %d times, want 3", got)
	}
	if !strings.Contains(st.Error, "boom") {
		t.Fatalf("status error = %q, want the last attempt's error", st.Error)
	}
	txt := s.Snapshot().Text()
	for _, want := range []string{
		"automdt_sched_retries_total 2",
		`automdt_sched_jobs{state="failed"} 1`,
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("metrics missing %q:\n%s", want, txt)
		}
	}
}

func TestRetryThenSucceed(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n < 2 {
			return nil, errors.New("transient")
		}
		return &transfer.Result{Bytes: 1024, AvgMbps: 10}, nil
	})
	s, err := New(Config{Budget: [env.StageCount]int{2, 2, 2, 2}, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, _ := s.Submit(JobSpec{Name: "eventually", Manifest: manifest1(), MaxRetries: 3})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Attempts != 2 || st.Error != "" {
		t.Fatalf("status = %+v, want done after 2 attempts with no error", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{Budget: [env.StageCount]int{1, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Name: "empty"}); err == nil {
		t.Fatal("empty manifest accepted")
	}
	s.Close()
	if _, err := s.Submit(JobSpec{Name: "late", Manifest: manifest1()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if _, err := New(Config{Budget: [env.StageCount]int{1, 0, 0, 1}}); err == nil {
		t.Fatal("zero stage budget accepted")
	}
}

// TestHugePriorityNoOverflow guards the arbiter against weight sums
// overflowing int: two near-MaxInt priorities must clamp, not panic or
// oversubscribe.
func TestHugePriorityNoOverflow(t *testing.T) {
	rec := &allocRecorder{}
	release := make(chan struct{})
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		select {
		case <-release:
			return &transfer.Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, err := New(Config{Budget: [env.StageCount]int{8, 8, 8, 8}, MaxActive: 2, Runner: runner, onRebalance: rec.record})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{
			Name: fmt.Sprintf("huge-%d", i), Manifest: manifest1(),
			Priority: int(^uint(0) >> 2), // far beyond MaxPriority
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "both huge-priority jobs allocated", func() bool {
		for _, a := range rec.snapshot() {
			if len(a) == 2 {
				for _, sh := range a {
					if sh != [env.StageCount]int{4, 4, 4, 4} {
						t.Fatalf("unequal clamped-weight shares: %v", a)
					}
				}
				return true
			}
		}
		return false
	})
	close(release)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fairShare(24, []int{1 << 62, 1 << 62, 1}) == nil {
		t.Fatal("fairShare returned nil for huge weights")
	}
}

// TestHistoryEviction verifies terminal jobs beyond the history cap are
// evicted so a long-running scheduler stays bounded.
func TestHistoryEviction(t *testing.T) {
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		return &transfer.Result{Bytes: 1}, nil
	})
	s, err := New(Config{Budget: [env.StageCount]int{2, 2, 2, 2}, Runner: runner, History: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var last int64
	for i := 0; i < 5; i++ {
		id, err := s.Submit(JobSpec{Name: fmt.Sprintf("j%d", i), Manifest: manifest1()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
		last = id
	}
	list := s.List()
	if len(list) != 2 {
		t.Fatalf("retained %d jobs, want 2 (history cap)", len(list))
	}
	if list[len(list)-1].ID != last {
		t.Fatalf("newest job %d missing from history: %+v", last, list)
	}
	if _, err := s.Status(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("evicted job Status err = %v, want ErrNotFound", err)
	}
}

// TestGlobalBudgetCompliance is the acceptance test: ten concurrent
// loopback transfer jobs, each driven by a greedy controller that wants
// 32 workers per stage, scheduled under a global budget of 16 per stage.
// Every arbiter allocation must keep the summed per-job caps within the
// budget, with all ten jobs simultaneously active at some point.
func TestGlobalBudgetCompliance(t *testing.T) {
	const jobs = 10
	budget := [env.StageCount]int{16, 16, 16, 16}
	rec := &allocRecorder{}
	s, err := New(Config{
		Budget:        budget,
		MaxActive:     jobs,
		NewController: func() env.Controller { return static.New(32) },
		Runner:        &LoopbackRunner{},
		onRebalance:   rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < jobs; i++ {
		_, err := s.Submit(JobSpec{
			Name:     fmt.Sprintf("tenant-%02d", i),
			Manifest: workload.LargeFiles(2, 2<<20),
			Priority: 1 + i%3,
			Transfer: transfer.Config{
				ProbeInterval: 20 * time.Millisecond,
				MaxThreads:    32,
				Shaping:       transfer.Shaping{LinkMbps: 300},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	for _, st := range s.List() {
		if st.State != "done" {
			t.Errorf("job %d (%s) state = %s (%s), want done", st.ID, st.Name, st.State, st.Error)
		}
	}

	allocs := rec.snapshot()
	sawAllActive := false
	for _, alloc := range allocs {
		if len(alloc) == jobs {
			sawAllActive = true
		}
		var sums [env.StageCount]int
		for id, share := range alloc {
			for stage := 0; stage < 3; stage++ {
				if share[stage] < 1 {
					t.Fatalf("job %d starved at stage %d: alloc %v", id, stage, alloc)
				}
				sums[stage] += share[stage]
			}
		}
		for stage := 0; stage < 3; stage++ {
			if sums[stage] > budget[stage] {
				t.Fatalf("stage %d oversubscribed: allocated %d > budget %d in %v",
					stage, sums[stage], budget[stage], alloc)
			}
		}
	}
	if !sawAllActive {
		t.Fatalf("never observed all %d jobs active; allocation sizes seen: %v",
			jobs, func() (ls []int) {
				for _, a := range allocs {
					ls = append(ls, len(a))
				}
				return
			}())
	}
}

// The arena capacity must follow the admitted job set: grow to cover
// active jobs' staging demand on rebalance, and return to the baseline
// once the jobs finish.
func TestArenaCapacityFollowsActiveJobs(t *testing.T) {
	const base = 1 << 20
	arena := transfer.NewArena(base)
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		// Every job must see the shared arena injected into its config.
		if spec.Transfer.Arena != arena {
			t.Error("job config missing the scheduler's shared arena")
		}
		started <- struct{}{}
		select {
		case <-release:
			return &transfer.Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, err := New(Config{Budget: [env.StageCount]int{8, 8, 8, 8}, MaxActive: 2, Runner: runner, Arena: arena})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	xfer := transfer.Config{SenderBufBytes: 8 << 20, ReceiverBufBytes: 8 << 20,
		ChunkBytes: 64 << 10, MaxThreads: 4}
	perJob := arenaDemand(JobSpec{Transfer: xfer})
	if perJob != 16<<20+2*4*(64<<10) {
		t.Fatalf("arenaDemand = %d", perJob)
	}

	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{Name: "j", Manifest: manifest1(), Transfer: xfer}); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	<-started
	waitFor(t, "capacity covers both active jobs", func() bool {
		return arena.Capacity() == 2*perJob
	})

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "capacity back to baseline when idle", func() bool {
		return arena.Capacity() == base
	})

	if snap := s.Snapshot().Text(); !strings.Contains(snap, "automdt_arena_capacity_bytes") {
		t.Fatalf("scheduler snapshot missing arena gauges:\n%s", snap)
	}
}

// budgetDirStore wraps a DirStore destination whose writes start failing
// after a byte budget — a disk that fills up mid-transfer.
type budgetDirStore struct {
	*fsim.DirStore
	mu     sync.Mutex
	budget int64
}

func (b *budgetDirStore) Create(name string, size int64) (fsim.FileWriter, error) {
	w, err := b.DirStore.Create(name, size)
	if err != nil {
		return nil, err
	}
	return &budgetWriter{inner: w, store: b}, nil
}

type budgetWriter struct {
	inner fsim.FileWriter
	store *budgetDirStore
}

func (w *budgetWriter) WriteAt(p []byte, off int64) (int, error) {
	w.store.mu.Lock()
	fit := w.store.budget
	if fit > int64(len(p)) {
		fit = int64(len(p))
	}
	w.store.budget -= fit
	w.store.mu.Unlock()
	if fit < int64(len(p)) {
		// A real disk that fills mid-write shorts the write: the bytes
		// that fit are on disk and the caller learns how many.
		n, err := w.inner.WriteAt(p[:fit], off)
		if err != nil {
			return n, err
		}
		return n, errors.New("disk full (injected)")
	}
	return w.inner.WriteAt(p, off)
}

func (w *budgetWriter) Close() error { return w.inner.Close() }

// A failed attempt must resume its session on retry: same session ID,
// ledger-committed ranges skipped, and the job reporting resume progress
// through the daemon status.
func TestRetryResumesSession(t *testing.T) {
	dir := t.TempDir()
	var attempts atomic.Int64
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
		n := attempts.Add(1)
		src := fsim.NewSyntheticStore()
		ds, err := fsim.NewDirStore(dir)
		if err != nil {
			return nil, err
		}
		var dst fsim.Store = ds
		if n == 1 {
			// First attempt: the destination fills up after 256 KiB.
			dst = &budgetDirStore{DirStore: ds, budget: 256 << 10}
		}
		return transfer.Loopback(ctx, spec.Transfer, spec.Manifest, src, dst, ctrl)
	})
	s, err := New(Config{Budget: [env.StageCount]int{4, 4, 4, 4}, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	m := workload.LargeFiles(2, 1<<20) // 2 MiB, fails ~12% in
	id, err := s.Submit(JobSpec{
		Name:       "resumable",
		Manifest:   m,
		MaxRetries: 2,
		Transfer: transfer.Config{
			ChunkBytes:     64 << 10,
			ProbeInterval:  25 * time.Millisecond,
			InitialThreads: 2,
			MaxThreads:     4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job ended %s (err=%q)", st.State, st.Error)
	}
	if st.Attempts != 2 {
		t.Fatalf("attempts=%d want 2", st.Attempts)
	}
	if st.SessionID == "" {
		t.Fatal("job has no session id")
	}
	if st.Resumes < 1 {
		t.Fatalf("retry did not resume (resumes=%d)", st.Resumes)
	}
	if st.SkippedBytes <= 0 {
		t.Fatalf("resume skipped nothing (skipped=%d)", st.SkippedBytes)
	}
	if st.CommittedBytes != m.TotalBytes() {
		t.Fatalf("committed=%d want %d", st.CommittedBytes, m.TotalBytes())
	}
	// The resume counters must be visible on the daemon metrics page.
	var found bool
	for _, smp := range s.Snapshot().Samples() {
		if smp.Name == "automdt_resume_sessions_total" && smp.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("automdt_resume_sessions_total missing from scheduler snapshot")
	}
}

// Sessionful jobs without a DestDir must also resume on retry: the
// loopback runner reuses the synthetic sink (and its in-memory ledger)
// across attempts of the same session.
func TestLoopbackRunnerReusesSinkAcrossAttempts(t *testing.T) {
	r := &LoopbackRunner{}
	const session = "sink-reuse"
	spec := JobSpec{
		Manifest: workload.LargeFiles(4, 1<<20),
		Transfer: transfer.Config{
			SessionID:      session,
			ChunkBytes:     64 << 10,
			InitialThreads: 2,
			MaxThreads:     4,
			ProbeInterval:  25 * time.Millisecond,
			Shaping:        transfer.Shaping{LinkMbps: 200},
		},
	}
	sink := r.sink(session) // the store attempt 1 will write into
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if l, err := transfer.LoadSessionLedger(sink, session); err == nil && l.CommittedBytes() > 0 {
				cancel() // kill attempt 1 mid-flight
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		cancel()
	}()
	if _, err := r.Run(ctx, spec, nil); err == nil {
		t.Fatal("cancelled attempt succeeded")
	}
	cancel()

	spec2 := spec
	spec2.Transfer.Shaping = transfer.Shaping{}
	res, err := r.Run(context.Background(), spec2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.SkippedBytes <= 0 {
		t.Fatalf("synthetic-sink retry did not resume: %+v", res)
	}
	// Completion must evict the cached sink.
	r.mu.Lock()
	_, still := r.sinks[session]
	r.mu.Unlock()
	if still {
		t.Fatal("completed session's sink not evicted")
	}
}
