package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"sync"

	"automdt/internal/env"
	"automdt/internal/flight"
	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

// JobState is a job's position in the lifecycle state machine.
type JobState int

const (
	Queued JobState = iota
	Running
	Done
	Failed
	Cancelled
)

// String returns the lowercase state name used in the API and metrics.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// jobStates lists every state, for metrics export.
var jobStates = []JobState{Queued, Running, Done, Failed, Cancelled}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("sched: no such job")

// ErrCancelled is recorded as a cancelled job's error.
var ErrCancelled = errors.New("sched: job cancelled")

// MaxPriority caps fair-share weights. Submit clamps into [1,
// MaxPriority] so weight sums can never overflow in the arbiter no
// matter what a client sends.
const MaxPriority = 1 << 20

// DefaultHistory is how many terminal jobs are retained (and exported in
// List/Snapshot) before the oldest are evicted.
const DefaultHistory = 1024

// JobSpec describes one transfer job.
type JobSpec struct {
	// Name is a human-readable tag echoed in statuses and metrics.
	Name string
	// Manifest lists the files to move. Required.
	Manifest workload.Manifest
	// Priority is the fair-share weight (≥1; default 1). A priority-3 job
	// holds three times the budget slice of a priority-1 job while both
	// are active.
	Priority int
	// MaxRetries is how many times a failed attempt is re-queued before
	// the job is marked Failed. 0 means a single attempt.
	MaxRetries int
	// Transfer parameterizes the engine for this job. Job-scoped hooks in
	// Transfer.Hooks are preserved; the scheduler chains its own.
	Transfer transfer.Config
	// DestDir, for the loopback runner, is the directory to write into;
	// empty means a synthetic sink (no disk).
	DestDir string
}

// Job is the scheduler's record of one submitted transfer. All mutable
// fields are guarded by the scheduler's lock; read them through Status.
type Job struct {
	ID   int64
	Spec JobSpec

	state     JobState
	attempts  int
	share     [env.StageCount]int
	cap       *env.BudgetCap
	cancelJob context.CancelFunc
	cancelled bool
	err       error
	result    *transfer.Result
	last      env.State
	ticks     int64
	submitted time.Time
	queuedAt  time.Time // last (re-)enqueue, for queue-wait accounting
	started   time.Time
	finished  time.Time
	done      chan struct{}

	// session is the transfer session identity every attempt shares —
	// what turns a retry into a resume instead of a restart.
	session string
	// resumes counts attempts that actually picked up committed ranges
	// from a previous attempt's ledger.
	resumes int
	// skipped is the byte volume the latest attempt inherited from the
	// ledger (not re-sent); committed is the receiver-reported committed
	// progress, updated every probe tick.
	skipped   int64
	committed int64
	// totalBytes caches Spec.Manifest.TotalBytes() at Submit so the run
	// queue can order jobs by committed fraction without walking the
	// manifest on every heap comparison.
	totalBytes int64
}

// JobStatus is an immutable snapshot of a job, JSON-shaped for the
// daemon API.
type JobStatus struct {
	ID         int64               `json:"id"`
	Name       string              `json:"name"`
	State      string              `json:"state"`
	Priority   int                 `json:"priority"`
	Attempts   int                 `json:"attempts"`
	Share      [env.StageCount]int `json:"share"`
	Threads    [env.StageCount]int `json:"threads"`
	Throughput env.StageVec        `json:"throughput_mbps"`
	TotalBytes int64               `json:"total_bytes"`
	AvgMbps    float64             `json:"avg_mbps,omitempty"`
	Seconds    float64             `json:"duration_sec,omitempty"`
	Error      string              `json:"error,omitempty"`
	Submitted  time.Time           `json:"submitted_at"`
	Started    time.Time           `json:"started_at,omitzero"`
	Finished   time.Time           `json:"finished_at,omitzero"`
	// Resume progress: every attempt of a job shares SessionID, so a
	// retry resumes from the chunk ledger instead of restarting.
	// CommittedBytes is the receiver-reported committed volume (live
	// while running, including ranges inherited from earlier attempts);
	// SkippedBytes is what the latest attempt did not have to re-send;
	// Resumes counts attempts that picked up a prior ledger.
	SessionID      string `json:"session_id,omitempty"`
	Resumes        int    `json:"resumes"`
	SkippedBytes   int64  `json:"skipped_bytes"`
	CommittedBytes int64  `json:"committed_bytes"`
}

// Runner executes one attempt of a job under the given (budget-capped)
// controller, honouring ctx cancellation.
type Runner interface {
	Run(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error)
}

// RunnerFunc adapts a function to Runner.
type RunnerFunc func(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
	return f(ctx, spec, ctrl)
}

// LoopbackRunner runs each job as an in-process sender→receiver transfer
// over 127.0.0.1 TCP: synthetic source content, destination a real
// directory when DestDir is set, else a synthetic sink. Synthetic sinks
// are cached per session so a retry resumes from the previous attempt's
// in-memory ledger the same way DestDir jobs resume from disk.
type LoopbackRunner struct {
	// Verify makes synthetic sinks check written bytes against the
	// expected deterministic content.
	Verify bool

	mu    sync.Mutex
	sinks map[string]*fsim.SyntheticStore
}

// maxCachedSinks bounds the per-session sink cache: sinks of sessions
// that never complete (jobs that exhaust retries or are cancelled)
// would otherwise accumulate for the life of the daemon.
const maxCachedSinks = 128

// sink returns the destination store for a sessionful synthetic job,
// reusing the store across attempts of the same session.
func (r *LoopbackRunner) sink(session string) *fsim.SyntheticStore {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sinks[session]; ok {
		return s
	}
	s := fsim.NewSyntheticStore()
	s.Verify = r.Verify
	if session != "" {
		if r.sinks == nil {
			r.sinks = make(map[string]*fsim.SyntheticStore)
		}
		// Evict arbitrary stale entries at the cap — losing one only
		// costs a dead session its resume, never correctness.
		for k := range r.sinks {
			if len(r.sinks) < maxCachedSinks {
				break
			}
			delete(r.sinks, k)
		}
		r.sinks[session] = s
	}
	return s
}

// Run implements Runner.
func (r *LoopbackRunner) Run(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
	src := fsim.NewSyntheticStore()
	session := spec.Transfer.SessionID
	var dst fsim.Store
	if spec.DestDir != "" {
		d, err := fsim.NewDirStore(spec.DestDir)
		if err != nil {
			return nil, err
		}
		dst = d
	} else {
		dst = r.sink(session)
	}
	res, err := transfer.Loopback(ctx, spec.Transfer, spec.Manifest, src, dst, ctrl)
	if err == nil && session != "" && spec.DestDir == "" {
		// The session completed; drop the cached sink.
		r.mu.Lock()
		delete(r.sinks, session)
		r.mu.Unlock()
	}
	return res, err
}

// Config parameterizes a Scheduler.
type Config struct {
	// Budget is the host-wide worker budget per stage dimension ⟨read,
	// conns, streams-per-conn, write⟩. Every component must be ≥ 1. The
	// arbiter guarantees the summed per-job caps never exceed it.
	Budget [env.StageCount]int
	// MaxActive caps concurrently running jobs. It is clamped to the
	// smallest stage budget so every active job can hold at least one
	// worker per stage; 0 means that clamp alone.
	MaxActive int
	// NewController builds each job's optimizer (wrapped in an
	// env.BudgetCap by the scheduler). nil holds jobs at their initial
	// concurrency, still budget-capped.
	NewController func() env.Controller
	// Runner executes job attempts. Default: &LoopbackRunner{}.
	Runner Runner
	// History is how many terminal jobs to retain for List/Status/
	// Snapshot before evicting the oldest (the daemon would otherwise
	// grow without bound). 0 means DefaultHistory.
	History int
	// Arena is the shared chunk-buffer arena injected into every job
	// whose transfer config doesn't bring its own. nil uses the
	// process-wide transfer.Default() arena. On every rebalance the
	// scheduler resizes the arena's retained-memory bound to cover the
	// staging demand of the admitted job set (never below the arena's
	// capacity at scheduler creation), so buffer memory follows
	// admission the same way worker budgets do.
	Arena *transfer.Arena

	// onRebalance, when set by tests, observes every arbiter allocation
	// (jobID → per-stage share). Called with the scheduler lock held.
	onRebalance func(map[int64][env.StageCount]int)
}

// Scheduler queues and runs transfer jobs under a global budget.
type Scheduler struct {
	cfg       Config
	maxActive int
	history   int
	arena     *transfer.Arena
	arenaBase int64 // idle-state arena capacity; demand grows it

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	nextID  int64
	jobs    map[int64]*Job
	order   []*Job
	queue   jobQueue
	active  map[int64]*Job
	retries int64
	// flightCum accumulates the arbiter's flight-recorder regret across
	// admission and rebalance events.
	flightCum float64
}

// New validates cfg and returns a running (initially idle) scheduler.
func New(cfg Config) (*Scheduler, error) {
	minBudget := cfg.Budget[0]
	for _, b := range cfg.Budget {
		if b < 1 {
			return nil, fmt.Errorf("sched: every stage budget must be ≥ 1, got %v", cfg.Budget)
		}
		if b < minBudget {
			minBudget = b
		}
	}
	if cfg.Runner == nil {
		cfg.Runner = &LoopbackRunner{}
	}
	maxActive := cfg.MaxActive
	if maxActive <= 0 || maxActive > minBudget {
		maxActive = minBudget
	}
	history := cfg.History
	if history <= 0 {
		history = DefaultHistory
	}
	arena := cfg.Arena
	if arena == nil {
		arena = transfer.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Scheduler{
		cfg:       cfg,
		maxActive: maxActive,
		history:   history,
		arena:     arena,
		arenaBase: arena.Capacity(),
		ctx:       ctx,
		cancel:    cancel,
		jobs:      make(map[int64]*Job),
		active:    make(map[int64]*Job),
	}, nil
}

// Arena returns the scheduler's shared buffer arena.
func (s *Scheduler) Arena() *transfer.Arena { return s.arena }

// arenaDemand estimates one job's peak buffer footprint: both staging
// buffers plus a chunk in flight per worker on each end.
func arenaDemand(spec JobSpec) int64 {
	cfg := spec.Transfer.WithDefaults()
	return cfg.SenderBufBytes + cfg.ReceiverBufBytes +
		2*int64(cfg.MaxThreads)*int64(cfg.ChunkBytes)
}

// Budget returns the configured per-stage budget.
func (s *Scheduler) Budget() [env.StageCount]int { return s.cfg.Budget }

// MaxActive returns the effective concurrent-job cap.
func (s *Scheduler) MaxActive() int { return s.maxActive }

// Submit queues a job and returns its ID. The job starts as soon as a
// slot is free.
func (s *Scheduler) Submit(spec JobSpec) (int64, error) {
	if len(spec.Manifest) == 0 {
		return 0, errors.New("sched: job manifest is empty")
	}
	if spec.Priority <= 0 {
		spec.Priority = 1
	}
	if spec.Priority > MaxPriority {
		spec.Priority = MaxPriority
	}
	if spec.MaxRetries < 0 {
		spec.MaxRetries = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.nextID++
	session := spec.Transfer.SessionID
	if session == "" {
		session = fmt.Sprintf("job%d-%s", s.nextID, transfer.NewSessionID())
	}
	now := time.Now()
	job := &Job{
		ID:         s.nextID,
		Spec:       spec,
		state:      Queued,
		submitted:  now,
		queuedAt:   now,
		done:       make(chan struct{}),
		session:    session,
		totalBytes: spec.Manifest.TotalBytes(),
	}
	// Every attempt carries the session ID, so the retry path resumes
	// the interrupted session rather than re-queueing a fresh transfer.
	job.Spec.Transfer.SessionID = session
	s.jobs[job.ID] = job
	s.order = append(s.order, job)
	heap.Push(&s.queue, job)
	s.schedule()
	return job.ID, nil
}

// schedule starts queued jobs while slots are free, then rebalances the
// budget. Caller holds mu.
func (s *Scheduler) schedule() {
	if s.closed {
		return
	}
	for len(s.active) < s.maxActive && s.queue.Len() > 0 {
		job := heap.Pop(&s.queue).(*Job)
		if job.state != Queued {
			continue // cancelled while queued
		}
		s.start(job)
	}
	s.rebalance()
}

// start moves a queued job to Running and launches its worker. Caller
// holds mu.
func (s *Scheduler) start(job *Job) {
	job.state = Running
	job.attempts++
	if job.started.IsZero() {
		job.started = time.Now()
	}
	if job.Spec.Transfer.Arena == nil {
		job.Spec.Transfer.Arena = s.arena
	}
	var inner env.Controller
	if s.cfg.NewController != nil {
		inner = s.cfg.NewController()
	}
	job.cap = env.NewBudgetCap(inner, [env.StageCount]int{1, 1, 1, 1})
	job.cap.OnClamp(capClampHook(job))
	if flight.Active() {
		wait := time.Since(job.queuedAt)
		flight.Default().ObserveStage(flight.StageQueueWait, wait.Seconds())
		s.recordAdmission(job, wait)
	}
	ctx, cancel := context.WithCancel(s.ctx)
	job.cancelJob = cancel
	s.active[job.ID] = job
	s.wg.Add(1)
	go s.runJob(ctx, job)
}

// runJob executes one attempt and routes the outcome through finish.
func (s *Scheduler) runJob(ctx context.Context, job *Job) {
	defer s.wg.Done()
	spec := job.Spec
	userTick := spec.Transfer.Hooks.OnTick
	spec.Transfer.Hooks.OnTick = func(st env.State) {
		s.mu.Lock()
		job.last = st
		job.ticks++
		s.mu.Unlock()
		if userTick != nil {
			userTick(st)
		}
	}
	userSession := spec.Transfer.Hooks.OnSession
	spec.Transfer.Hooks.OnSession = func(sess transfer.Session) {
		s.mu.Lock()
		job.skipped = sess.SkippedBytes
		job.committed = sess.SkippedBytes
		if sess.Resumed {
			job.resumes++
		}
		s.mu.Unlock()
		if userSession != nil {
			userSession(sess)
		}
	}
	userProgress := spec.Transfer.Hooks.OnProgress
	spec.Transfer.Hooks.OnProgress = func(committed, total int64) {
		s.mu.Lock()
		if committed > job.committed {
			job.committed = committed
		}
		s.mu.Unlock()
		if userProgress != nil {
			userProgress(committed, total)
		}
	}
	res, err := s.cfg.Runner.Run(ctx, spec, job.cap)
	s.finish(job, res, err)
}

// finish records an attempt's outcome, re-queues retryable failures,
// releases the job's budget slice, and starts waiting work.
func (s *Scheduler) finish(job *Job, res *transfer.Result, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.active, job.ID)
	job.cancelJob()
	switch {
	case err == nil:
		job.state = Done
		job.result = res
		job.err = nil
	case job.cancelled || s.ctx.Err() != nil:
		job.state = Cancelled
		job.err = ErrCancelled
	default:
		job.err = err
		if job.attempts <= job.Spec.MaxRetries {
			job.state = Queued
			job.queuedAt = time.Now()
			s.retries++
			heap.Push(&s.queue, job)
		} else {
			job.state = Failed
		}
	}
	if job.state.Terminal() {
		job.finished = time.Now()
		close(job.done)
		s.evictLocked()
	}
	s.schedule()
}

// evictLocked drops the oldest terminal jobs beyond the history cap so a
// long-running daemon's memory and /metrics cardinality stay bounded.
// Evicted jobs disappear from Status/List/Snapshot. Caller holds mu.
func (s *Scheduler) evictLocked() {
	excess := -s.history
	for _, j := range s.order {
		if j.state.Terminal() {
			excess++
		}
	}
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if excess > 0 && j.state.Terminal() {
			delete(s.jobs, j.ID)
			excess--
			continue
		}
		kept = append(kept, j)
	}
	// Let the tail entries be collected.
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = kept
}

// rebalance splits the per-stage budget across active jobs by priority
// weight and pushes the new caps into each job's BudgetCap. Caller holds
// mu. The invariant asserted by tests: for every stage, the assigned
// shares sum to at most the stage budget.
func (s *Scheduler) rebalance() {
	alloc := make(map[int64][env.StageCount]int, len(s.active))
	if len(s.active) > 0 {
		ids := make([]int64, 0, len(s.active))
		for id := range s.active {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		weights := make([]int, len(ids))
		for i, id := range ids {
			weights[i] = s.active[id].Spec.Priority
		}
		for stage := 0; stage < int(env.StageCount); stage++ {
			shares := fairShare(s.cfg.Budget[stage], weights)
			for i, id := range ids {
				a := alloc[id]
				a[stage] = shares[i]
				alloc[id] = a
			}
		}
		for id, sh := range alloc {
			job := s.active[id]
			job.share = sh
			job.cap.SetCap(sh)
		}
		if flight.Active() {
			s.recordRebalance(ids, weights, alloc)
		}
	}
	// Arena capacity tracks the admitted job set: grow to cover the
	// active jobs' staging demand, fall back to the idle baseline when
	// the set shrinks (excess pooled buffers shed lazily on release).
	// Jobs that brought their own dedicated arena don't lease from the
	// shared one, so they don't count against its capacity.
	demand := s.arenaBase
	var sum int64
	for _, job := range s.active {
		if job.Spec.Transfer.Arena == s.arena {
			sum += arenaDemand(job.Spec)
		}
	}
	if sum > demand {
		demand = sum
	}
	s.arena.SetCapacity(demand)
	if s.cfg.onRebalance != nil {
		s.cfg.onRebalance(alloc)
	}
}

// Cancel cancels a queued or running job. Cancelling a running job
// cancels its transfer context; the job reaches Cancelled once its
// worker returns (wait on Wait).
func (s *Scheduler) Cancel(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch job.state {
	case Queued:
		job.cancelled = true
		job.state = Cancelled
		job.err = ErrCancelled
		job.finished = time.Now()
		close(job.done)
		s.evictLocked()
		return nil
	case Running:
		job.cancelled = true
		job.cancelJob()
		return nil
	default:
		return fmt.Errorf("sched: job %d already %s", id, job.state)
	}
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (s *Scheduler) Wait(ctx context.Context, id int64) (JobStatus, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	select {
	case <-job.done:
		return s.Status(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Drain blocks until every submitted job is terminal or ctx expires.
func (s *Scheduler) Drain(ctx context.Context) error {
	for {
		s.mu.Lock()
		var pending chan struct{}
		for _, job := range s.order {
			if !job.state.Terminal() {
				pending = job.done
				break
			}
		}
		s.mu.Unlock()
		if pending == nil {
			return nil
		}
		select {
		case <-pending:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Runner returns the configured job runner, letting API layers probe
// its optional capabilities (e.g. the fleet status surface).
func (s *Scheduler) Runner() Runner { return s.cfg.Runner }

// Close stops the scheduler: queued jobs are cancelled, running
// transfers' contexts are cancelled, and Close blocks until all workers
// return. Submit fails with ErrClosed afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for s.queue.Len() > 0 {
			job := heap.Pop(&s.queue).(*Job)
			if job.state != Queued {
				continue
			}
			job.cancelled = true
			job.state = Cancelled
			job.err = ErrCancelled
			job.finished = time.Now()
			close(job.done)
		}
		for _, job := range s.active {
			job.cancelled = true
		}
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// statusLocked snapshots a job. Caller holds mu.
func (s *Scheduler) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:             job.ID,
		Name:           job.Spec.Name,
		State:          job.state.String(),
		Priority:       job.Spec.Priority,
		Attempts:       job.attempts,
		Share:          job.share,
		Threads:        job.last.N,
		Throughput:     job.last.Throughput,
		TotalBytes:     job.Spec.Manifest.TotalBytes(),
		Submitted:      job.submitted,
		Started:        job.started,
		Finished:       job.finished,
		SessionID:      job.session,
		Resumes:        job.resumes,
		SkippedBytes:   job.skipped,
		CommittedBytes: job.committed,
	}
	if job.result != nil {
		st.AvgMbps = job.result.AvgMbps
		st.Seconds = job.result.Duration.Seconds()
		if job.state == Done {
			st.CommittedBytes = st.TotalBytes
		}
	}
	if job.err != nil {
		st.Error = job.err.Error()
	}
	return st
}

// Status snapshots one job.
func (s *Scheduler) Status(id int64) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return s.statusLocked(job), nil
}

// List snapshots all jobs in submission order.
func (s *Scheduler) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, len(s.order))
	for i, job := range s.order {
		out[i] = s.statusLocked(job)
	}
	return out
}

// stageNames are the budget dimension labels, taken from the env stage
// enum so metrics and the API never drift from the action space.
var stageNames = env.StageNames()

// Snapshot exports the scheduler's state as a metrics snapshot: global
// budget and job counts, plus per-active-job shares, observed threads and
// throughputs, and per-completed-job results.
func (s *Scheduler) Snapshot() metrics.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var snap metrics.Snapshot
	for i, name := range stageNames {
		snap.Add("automdt_sched_budget", float64(s.cfg.Budget[i]), metrics.L("stage", name))
	}
	counts := make(map[JobState]int)
	var bytesDone int64
	for _, job := range s.order {
		counts[job.state]++
		if job.state == Done {
			// Dataset volume, not the final attempt's planned bytes — a
			// resumed job's last Result covers only the post-skip
			// remainder, and the counter must not depend on crash timing.
			bytesDone += job.Spec.Manifest.TotalBytes()
		}
	}
	for _, st := range jobStates {
		snap.Add("automdt_sched_jobs", float64(counts[st]), metrics.L("state", st.String()))
	}
	snap.Add("automdt_sched_submitted_total", float64(len(s.order)))
	snap.Add("automdt_sched_retries_total", float64(s.retries))
	snap.Add("automdt_sched_bytes_done_total", float64(bytesDone))
	snap.Merge(s.arena.Snapshot())
	snap.Merge(metrics.ResumeSnapshot())
	snap.Merge(flight.Default().MetricsSnapshot())
	// A runner that fronts shared infrastructure (the EndpointRunner's
	// multi-session receiver) exports its own gauges.
	if rs, ok := s.cfg.Runner.(interface{ Snapshot() metrics.Snapshot }); ok {
		snap.Merge(rs.Snapshot())
	}
	for _, job := range s.order {
		id := metrics.L("job", strconv.FormatInt(job.ID, 10))
		switch job.state {
		case Running:
			for i, name := range stageNames {
				stage := metrics.L("stage", name)
				snap.Add("automdt_job_share", float64(job.share[i]), id, stage)
				snap.Add("automdt_job_threads", float64(job.last.N[i]), id, stage)
				snap.Add("automdt_job_throughput_mbps", job.last.Throughput[i], id, stage)
			}
			snap.Add("automdt_job_committed_bytes", float64(job.committed), id)
			snap.Add("automdt_job_resume_skipped_bytes", float64(job.skipped), id)
		case Done:
			if job.result != nil {
				snap.Add("automdt_job_avg_mbps", job.result.AvgMbps, id)
				snap.Add("automdt_job_bytes", float64(job.Spec.Manifest.TotalBytes()), id)
			}
		}
	}
	return snap
}
