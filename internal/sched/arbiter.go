package sched

import "sort"

// fairShare splits total worker slots among jobs proportionally to their
// priority weights using the largest-remainder method, with two
// invariants the scheduler's budget arbiter relies on:
//
//   - every job receives at least 1 slot (a live transfer cannot run a
//     stage with zero workers), and
//   - the shares sum to exactly min(total, ...) — never more than total —
//     provided len(weights) <= total, which admission control guarantees.
//
// Weights below 1 count as 1. Ties in fractional remainder break toward
// the earlier (older) job, keeping allocations deterministic.
func fairShare(total int, weights []int) []int {
	n := len(weights)
	if n == 0 {
		return nil
	}
	shares := make([]int, n)
	for i := range shares {
		shares[i] = 1
	}
	rem := total - n
	if rem <= 0 {
		return shares
	}

	wts := make([]int, n)
	sumW := 0
	for i, w := range weights {
		// Clamp into [1, MaxPriority]: Submit already enforces this, but
		// the arbiter must not overflow sumW for any caller.
		if w < 1 {
			w = 1
		}
		if w > MaxPriority {
			w = MaxPriority
		}
		wts[i] = w
		sumW += w
	}

	fracs := make([]float64, n)
	used := 0
	for i, w := range wts {
		ideal := float64(rem) * float64(w) / float64(sumW)
		base := int(ideal)
		shares[i] += base
		fracs[i] = ideal - float64(base)
		used += base
	}

	left := rem - used
	if left <= 0 {
		return shares
	}
	if left > n {
		// Unreachable with exact arithmetic; guards the top-up loop
		// against ever indexing past idx.
		left = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return fracs[idx[a]] > fracs[idx[b]]
	})
	for i := 0; i < left; i++ {
		shares[idx[i]]++
	}
	return shares
}
