package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"automdt/internal/env"
	"automdt/internal/fleet"
	"automdt/internal/flight"
	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/transfer"
)

// FleetSource is the flight-recorder source for fleet placement events.
const FleetSource = "sched:fleet"

// FleetRunner executes every job attempt as a sender against a FLEET of
// multi-session receiver endpoints instead of EndpointRunner's single
// one. Sessions are placed on endpoints by a consistent-hash ring with
// bounded loads (internal/fleet.Ring), endpoint liveness comes from a
// heartbeat registry (internal/fleet.Registry), and every endpoint
// shares one destination Store — which is what makes failover work: when
// an endpoint dies mid-transfer, the scheduler's ordinary retry re-runs
// the job with the same session ID, placement lands it on a live
// sibling, and the sibling finds the victim's binary ledger in the
// shared store, so the resumed session re-sends only the uncommitted
// tail.
//
// Job manifests must not write conflicting content to the same file
// names (synthetic content is name-derived, so same-named synthetic
// files agree by construction). Jobs carrying a DestDir are rejected:
// the fleet has one fixed destination store.
type FleetRunner struct {
	// Size is the number of endpoints to spawn (≤ 0 means 1).
	Size int
	// Receiver parameterizes every endpoint engine — notably MaxSessions
	// (per-endpoint admission cap) and WriteBudgetMbps (per-endpoint
	// write-stage fairness budget).
	Receiver transfer.Config
	// Store is the shared destination all endpoints serve. nil uses one
	// synthetic sink for the fleet's whole lifetime; because every
	// endpoint shares it, session ledgers are visible fleet-wide and
	// resumes work across endpoints.
	Store fsim.Store
	// Verify makes the default synthetic sink check written bytes
	// against the expected deterministic content.
	Verify bool
	// HeartbeatEvery is the endpoint heartbeat period (default 50 ms);
	// HeartbeatTTL is the registry liveness horizon (default 3×
	// HeartbeatEvery). An endpoint that dies turns registry-dead one TTL
	// after its last beat.
	HeartbeatEvery time.Duration
	HeartbeatTTL   time.Duration
	// Replicas and LoadFactor tune the placement ring; zero values take
	// the fleet package defaults (128 vnodes, c = 1.25).
	Replicas   int
	LoadFactor float64

	mu       sync.Mutex
	started  bool
	startErr error
	reg      *fleet.Registry
	ring     *fleet.Ring
	ringSeen int64 // registry epoch the ring last synced to
	eps      map[string]*fleetEndpoint
	order    []string // endpoint ids in spawn order
	sess     map[string]*sessTrack

	placements int64
	failovers  int64
}

// fleetEndpoint is one spawned receiver endpoint.
type fleetEndpoint struct {
	id     string
	recv   *transfer.Receiver
	cancel context.CancelFunc
	done   chan struct{} // closed when Serve returns (all sessions torn down)
}

// dead reports whether the endpoint's serve loop has fully exited.
func (ep *fleetEndpoint) dead() bool {
	select {
	case <-ep.done:
		return true
	default:
		return false
	}
}

// sessTrack remembers which endpoint last served a session and lets a
// failover retry wait for the previous attempt's receiver-side teardown
// (which persists the ledger) before the sibling loads it.
type sessTrack struct {
	epID string
	done chan struct{}
	once sync.Once
}

func (t *sessTrack) finish() { t.once.Do(func() { close(t.done) }) }

// start spawns the fleet lazily. Caller holds mu.
func (f *FleetRunner) start() error {
	if f.started {
		return f.startErr
	}
	f.started = true
	size := f.Size
	if size <= 0 {
		size = 1
	}
	every := f.HeartbeatEvery
	if every <= 0 {
		every = 50 * time.Millisecond
	}
	ttl := f.HeartbeatTTL
	if ttl <= 0 {
		ttl = 3 * every
	}
	if f.Store == nil {
		ss := fsim.NewSyntheticStore()
		ss.Verify = f.Verify
		f.Store = ss
	}
	f.reg = fleet.NewRegistry(ttl)
	f.ring = fleet.NewRing(f.Replicas, f.LoadFactor)
	f.eps = make(map[string]*fleetEndpoint, size)
	f.sess = make(map[string]*sessTrack)
	for i := 0; i < size; i++ {
		id := fmt.Sprintf("ep-%d", i)
		if err := f.spawn(id, every); err != nil {
			f.startErr = err
			return err
		}
	}
	f.ringSeen = -1 // force the first sync
	return nil
}

// spawn boots one endpoint: listen, serve, register, heartbeat. Caller
// holds mu.
func (f *FleetRunner) spawn(id string, every time.Duration) error {
	recv := transfer.NewReceiver(f.Receiver, f.Store)
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return fmt.Errorf("sched: fleet endpoint %s listen: %w", id, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ep := &fleetEndpoint{id: id, recv: recv, cancel: cancel, done: make(chan struct{})}
	recv.OnSessionDone = func(res transfer.SessionResult) { f.sessionDone(id, res) }
	f.eps[id] = ep
	f.order = append(f.order, id)
	f.reg.Register(fleet.EndpointInfo{ID: id, DataAddr: recv.DataAddr(), CtrlAddr: recv.CtrlAddr()})
	go func() {
		defer close(ep.done)
		recv.Serve(ctx)
	}()
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ep.done:
				return
			case <-t.C:
				f.reg.Heartbeat(id) //nolint:errcheck
			}
		}
	}()
	return nil
}

// sessionDone is every endpoint's OnSessionDone hook: it releases the
// failover barrier for the attempt that just tore down. The epID guard
// keeps a late callback from a previous endpoint from releasing the
// current attempt's barrier.
func (f *FleetRunner) sessionDone(epID string, res transfer.SessionResult) {
	f.mu.Lock()
	tr := f.sess[res.SessionID]
	f.mu.Unlock()
	if tr != nil && tr.epID == epID {
		tr.finish()
	}
}

// syncRingLocked reconciles ring membership with registry liveness when
// the membership epoch moved. Caller holds mu.
func (f *FleetRunner) syncRingLocked() {
	epoch := f.reg.Epoch()
	if epoch == f.ringSeen {
		return
	}
	f.ringSeen = epoch
	live := make(map[string]bool)
	for _, info := range f.reg.Live() {
		live[info.ID] = true
	}
	for _, id := range f.ring.Members() {
		if !live[id] {
			f.ring.Remove(id)
		}
	}
	for id := range live {
		f.ring.Add(id)
	}
}

// place acquires a live endpoint for the session. The registry drives
// membership; the in-process dead() check additionally catches endpoints
// whose serve loop exited but whose heartbeat TTL has not lapsed yet, so
// a retry never routes to a corpse just because the registry is a
// heartbeat behind.
func (f *FleetRunner) place(session string) (*fleetEndpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncRingLocked()
	for {
		id, err := f.ring.Acquire(session)
		if err != nil {
			// A heartbeat flap (an overloaded endpoint missing its TTL,
			// then reviving) can transiently drain the registry-driven
			// ring even though endpoints are demonstrably alive in this
			// process. Routing to nothing while live endpoints exist is
			// strictly worse than routing past a stale registry view, so
			// fall back to in-process ground truth before failing.
			revived := false
			for eid, ep := range f.eps {
				if !ep.dead() {
					f.ring.Add(eid)
					revived = true
				}
			}
			if !revived {
				return nil, fmt.Errorf("sched: fleet placement for session %s: %w", session, err)
			}
			continue
		}
		ep := f.eps[id]
		if ep == nil || ep.dead() {
			f.ring.Release(id)
			f.ring.Remove(id)
			continue
		}
		f.placements++
		return ep, nil
	}
}

// Run implements Runner: place the session on a live endpoint, wait out
// the previous attempt's teardown if placement moved (failover), and run
// one sender session against the chosen endpoint.
func (f *FleetRunner) Run(ctx context.Context, spec JobSpec, ctrl env.Controller) (*transfer.Result, error) {
	if spec.DestDir != "" {
		return nil, errors.New("sched: fleet runner has a fixed shared destination; DestDir is not supported")
	}
	f.mu.Lock()
	err := f.start()
	f.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("sched: start fleet: %w", err)
	}
	session := spec.Transfer.SessionID
	ep, err := f.place(session)
	if err != nil {
		return nil, err
	}
	defer f.ring.Release(ep.id)

	f.mu.Lock()
	prev := f.sess[session]
	var prevEp *fleetEndpoint
	if prev != nil {
		prevEp = f.eps[prev.epID]
	}
	moved := prev != nil && prev.epID != ep.id
	if moved {
		f.failovers++
	}
	f.mu.Unlock()

	if moved {
		// Failover barrier: the sibling must not load the ledger while
		// the victim's session teardown is still persisting it. Teardown
		// ends either with the session's OnSessionDone or with the whole
		// endpoint's serve loop exiting; the cap covers attempts that
		// died sender-side before the receiver ever admitted them.
		var prevDone chan struct{}
		if prevEp != nil {
			prevDone = prevEp.done
		}
		cap := time.NewTimer(3 * time.Second)
		select {
		case <-prev.done:
		case <-prevDone:
		case <-cap.C:
		case <-ctx.Done():
			cap.Stop()
			return nil, ctx.Err()
		}
		cap.Stop()
	}
	if flight.Active() {
		if moved {
			flight.Record(flight.Event{
				UnixNano: time.Now().UnixNano(),
				Source:   FleetSource,
				Kind:     flight.KindReplace,
				Chosen:   flight.Alt{Label: ep.id},
				Alts:     []flight.Alt{{Label: prev.epID, Score: -1}},
				Note:     fmt.Sprintf("session=%s victim=%s successor=%s", session, prev.epID, ep.id),
			})
		} else if prev == nil {
			flight.Record(flight.Event{
				UnixNano: time.Now().UnixNano(),
				Source:   FleetSource,
				Kind:     flight.KindPlace,
				Chosen:   flight.Alt{Label: ep.id},
				Note:     fmt.Sprintf("session=%s endpoint=%s", session, ep.id),
			})
		}
	}

	f.mu.Lock()
	f.sess[session] = &sessTrack{epID: ep.id, done: make(chan struct{})}
	f.mu.Unlock()

	src := fsim.NewSyntheticStore()
	send := &transfer.Sender{Cfg: spec.Transfer, Store: src, Manifest: spec.Manifest, Controller: ctrl}
	return send.Run(ctx, ep.recv.DataAddr(), ep.recv.CtrlAddr())
}

// Addrs returns the FIRST endpoint's data and control addresses,
// starting the fleet if necessary — the single-endpoint compatibility
// surface the daemon prints for external senders.
func (f *FleetRunner) Addrs() (data, ctrl string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.start(); err != nil {
		return "", "", err
	}
	ep := f.eps[f.order[0]]
	return ep.recv.DataAddr(), ep.recv.CtrlAddr(), nil
}

// Endpoints returns every endpoint's registration info in spawn order,
// starting the fleet if necessary.
func (f *FleetRunner) Endpoints() ([]fleet.EndpointInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.start(); err != nil {
		return nil, err
	}
	out := make([]fleet.EndpointInfo, 0, len(f.order))
	for _, id := range f.order {
		ep := f.eps[id]
		out = append(out, fleet.EndpointInfo{ID: id, DataAddr: ep.recv.DataAddr(), CtrlAddr: ep.recv.CtrlAddr()})
	}
	return out, nil
}

// EndpointOf reports which endpoint last served the session ("" if the
// session is unknown).
func (f *FleetRunner) EndpointOf(session string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if tr := f.sess[session]; tr != nil {
		return tr.epID
	}
	return ""
}

// KillEndpoint cancels one endpoint's serve loop and waits for its
// teardown — the fault the failover battery injects. The endpoint stays
// registered, so its registry liveness decays through the genuine
// missed-heartbeat path rather than an explicit deregister.
func (f *FleetRunner) KillEndpoint(id string) error {
	f.mu.Lock()
	ep := f.eps[id]
	f.mu.Unlock()
	if ep == nil {
		return fmt.Errorf("sched: fleet has no endpoint %q", id)
	}
	ep.cancel()
	<-ep.done
	return nil
}

// EndpointStatus is one endpoint's row in FleetStatus.
type EndpointStatus struct {
	fleet.EndpointInfo
	Live     bool `json:"live"`
	Sessions int  `json:"sessions"`
}

// FleetStatus is the /v1/fleet response: membership, liveness, and
// placement counters.
type FleetStatus struct {
	Size       int              `json:"size"`
	Epoch      int64            `json:"epoch"`
	Placements int64            `json:"placements"`
	Failovers  int64            `json:"failovers"`
	Endpoints  []EndpointStatus `json:"endpoints"`
}

// Status reports fleet membership and placement counters, starting the
// fleet if necessary.
func (f *FleetRunner) Status() FleetStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.start(); err != nil {
		return FleetStatus{}
	}
	live := make(map[string]bool)
	for _, info := range f.reg.Live() {
		live[info.ID] = true
	}
	loads := f.ring.Loads()
	st := FleetStatus{
		Size:       len(f.order),
		Epoch:      f.reg.Epoch(),
		Placements: f.placements,
		Failovers:  f.failovers,
	}
	for _, id := range f.order {
		ep := f.eps[id]
		st.Endpoints = append(st.Endpoints, EndpointStatus{
			EndpointInfo: fleet.EndpointInfo{ID: id, DataAddr: ep.recv.DataAddr(), CtrlAddr: ep.recv.CtrlAddr()},
			Live:         live[id] && !ep.dead(),
			Sessions:     loads[id],
		})
	}
	return st
}

// Snapshot exports the fleet gauges (automdt_fleet_*) plus every
// endpoint's automdt_endpoint_* gauges. A single-endpoint fleet emits
// the receiver samples unlabeled — the exact series EndpointRunner
// always exported — while a real fleet adds an endpoint label so
// per-endpoint series don't collide.
func (f *FleetRunner) Snapshot() metrics.Snapshot {
	f.mu.Lock()
	if !f.started || f.startErr != nil {
		f.mu.Unlock()
		return metrics.Snapshot{}
	}
	eps := make([]*fleetEndpoint, 0, len(f.order))
	for _, id := range f.order {
		eps = append(eps, f.eps[id])
	}
	placements, failovers := f.placements, f.failovers
	reg, ring := f.reg, f.ring
	f.mu.Unlock()

	var snap metrics.Snapshot
	snap.Merge(reg.Snapshot())
	snap.Add("automdt_fleet_placements_total", float64(placements))
	snap.Add("automdt_fleet_failovers_total", float64(failovers))
	loads := ring.Loads()
	ids := make([]string, 0, len(loads))
	for id := range loads {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		snap.Add("automdt_fleet_endpoint_sessions_active", float64(loads[id]), metrics.L("endpoint", id))
	}
	for _, ep := range eps {
		rs := ep.recv.MetricsSnapshot()
		if len(eps) == 1 {
			snap.Merge(rs)
			continue
		}
		for _, s := range rs.Samples() {
			labels := make([]metrics.Label, 0, len(s.Labels)+1)
			labels = append(labels, s.Labels...)
			labels = append(labels, metrics.L("endpoint", ep.id))
			snap.Add(s.Name, s.Value, labels...)
		}
	}
	return snap
}

// Close shuts every endpoint down and waits for their sessions to tear
// down. Safe to call before any job ran.
func (f *FleetRunner) Close() {
	f.mu.Lock()
	eps := make([]*fleetEndpoint, 0, len(f.order))
	for _, id := range f.order {
		eps = append(eps, f.eps[id])
	}
	f.mu.Unlock()
	for _, ep := range eps {
		ep.cancel()
	}
	for _, ep := range eps {
		<-ep.done
	}
}
