package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"automdt/internal/env"
	"automdt/internal/flight"
	"automdt/internal/static"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

// TestFlightEndToEnd runs loopback jobs under a scheduler with the flight
// recorder enabled and asserts, through the HTTP surface, that the trace
// holds the full decision record: arbiter admissions and rebalances,
// per-session controller decisions with scored alternatives, and the
// stage/queue-wait histograms on /metrics.
func TestFlightEndToEnd(t *testing.T) {
	// The recorder is process-global (like the transfer arena), so tests
	// must restore the disabled default for the rest of the package.
	flight.Enable(0)
	t.Cleanup(func() {
		flight.Disable()
		flight.Default().Reset()
	})

	s, err := New(Config{
		Budget:        [env.StageCount]int{8, 8, 8, 8},
		MaxActive:     2,
		NewController: func() env.Controller { return static.New(32) },
		Runner:        &LoopbackRunner{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// Three jobs through two slots: the third queues, so its admission
	// carries a measurable queue wait and the admissions of the first two
	// see it as a scored alternative.
	for i := 0; i < 3; i++ {
		_, err := s.Submit(JobSpec{
			Name:     fmt.Sprintf("fl-%d", i),
			Manifest: workload.LargeFiles(2, 2<<20),
			Priority: 1 + i,
			Transfer: transfer.Config{
				ProbeInterval: 15 * time.Millisecond,
				MaxThreads:    32,
				Shaping:       transfer.Shaping{LinkMbps: 300},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	get := func(url string) flight.Trace {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", url, resp.Status)
		}
		var tr flight.Trace
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	trace := get(srv.URL + "/debug/flight")
	if !trace.Enabled {
		t.Fatal("trace reports recorder disabled")
	}
	kinds := map[string]int{}
	ctrlDecisions := 0
	for _, ev := range trace.Events {
		kinds[ev.Kind]++
		switch ev.Kind {
		case flight.KindAdmission, flight.KindRebalance:
			if ev.Source != ArbiterSource {
				t.Fatalf("%s event from source %q, want %q", ev.Kind, ev.Source, ArbiterSource)
			}
		case flight.KindDecision:
			if !strings.HasPrefix(ev.Source, "ctrl:") {
				continue
			}
			ctrlDecisions++
			if len(ev.Alts) == 0 {
				t.Fatalf("controller decision without alternatives: %+v", ev)
			}
			if ev.Regret < 0 {
				t.Fatalf("negative regret: %+v", ev)
			}
			if ev.Chosen.N == [env.StageCount]int{} {
				t.Fatalf("controller decision without a chosen tuple: %+v", ev)
			}
		}
	}
	if kinds[flight.KindAdmission] != 3 {
		t.Fatalf("admissions=%d, want 3 (one per job): kinds=%v", kinds[flight.KindAdmission], kinds)
	}
	if kinds[flight.KindRebalance] == 0 {
		t.Fatalf("no rebalance events: kinds=%v", kinds)
	}
	if ctrlDecisions == 0 {
		t.Fatalf("no controller decision events; sources=%v kinds=%v", trace.Sources, kinds)
	}

	// Source filter: only arbiter events come back, and the source list
	// still names every source.
	arb := get(srv.URL + "/debug/flight?source=" + ArbiterSource)
	if len(arb.Events) == 0 {
		t.Fatal("source filter returned nothing")
	}
	for _, ev := range arb.Events {
		if ev.Source != ArbiterSource {
			t.Fatalf("source filter leaked %q", ev.Source)
		}
	}
	if len(arb.Sources) < 2 {
		t.Fatalf("sources list=%v, want arbiter plus controller sources", arb.Sources)
	}

	// Since filter cuts the head of the arbiter's sequence.
	mid := arb.Events[len(arb.Events)/2].Seq
	tail := get(fmt.Sprintf("%s/debug/flight?source=%s&since=%d", srv.URL, ArbiterSource, mid))
	if len(tail.Events) >= len(arb.Events) || len(tail.Events) == 0 {
		t.Fatalf("since=%d returned %d of %d events", mid, len(tail.Events), len(arb.Events))
	}
	if tail.Events[0].Seq != mid {
		t.Fatalf("since=%d first Seq=%d", mid, tail.Events[0].Seq)
	}

	// A malformed since is a 400, not a silent full dump.
	resp, err := http.Get(srv.URL + "/debug/flight?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: %s, want 400", resp.Status)
	}

	// The scheduler metrics page carries the recorder gauges and the
	// stage histograms the loopback run populated.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metricsText := string(raw)
	for _, want := range []string{
		"automdt_flight_enabled 1",
		"automdt_flight_events_total",
		"automdt_stage_queue_wait_seconds_count",
		`automdt_stage_read_seconds{quantile="0.99"}`,
		`automdt_stage_write_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The trace renders into the flightdump report with per-source regret.
	report := flight.Render(trace, 5)
	if !strings.Contains(report, ArbiterSource) || !strings.Contains(report, "per-source regret:") {
		t.Fatalf("render missing arbiter summary:\n%s", report)
	}
}
