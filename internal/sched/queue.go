package sched

// jobQueue is a max-heap of queued jobs ordered by descending priority,
// then by descending committed fraction — a resumed job that is 90% done
// finishes (and frees its ledger, budget share, and the user's attention)
// before one that has barely started — and FIFO (ascending job ID) as the
// final tie-break. Jobs cancelled while queued stay in the heap and are
// skipped lazily at pop time, which keeps Cancel O(1).
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }

// fraction is the job's committed share of its dataset, using the total
// cached at Submit. Guarded by the scheduler's lock, like every heap op.
func fraction(j *Job) float64 {
	if j.totalBytes <= 0 {
		return 0
	}
	return float64(j.committed) / float64(j.totalBytes)
}

func (q jobQueue) Less(i, j int) bool {
	if q[i].Spec.Priority != q[j].Spec.Priority {
		return q[i].Spec.Priority > q[j].Spec.Priority
	}
	if fi, fj := fraction(q[i]), fraction(q[j]); fi != fj {
		return fi > fj
	}
	return q[i].ID < q[j].ID
}

func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *jobQueue) Push(x any) { *q = append(*q, x.(*Job)) }

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	job := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return job
}
