package sched

// jobQueue is a max-heap of queued jobs ordered by descending priority,
// FIFO (ascending job ID) among equal priorities. Jobs cancelled while
// queued stay in the heap and are skipped lazily at pop time, which keeps
// Cancel O(1).
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].Spec.Priority != q[j].Spec.Priority {
		return q[i].Spec.Priority > q[j].Spec.Priority
	}
	return q[i].ID < q[j].ID
}

func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *jobQueue) Push(x any) { *q = append(*q, x.(*Job)) }

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	job := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return job
}
