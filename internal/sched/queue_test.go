package sched

import (
	"container/heap"
	"testing"
)

// Three resumed jobs at 10%, 50%, and 90% committed and equal priority
// must pop nearest-completion first: finishing the 90% job frees its
// ledger and budget share soonest.
func TestQueueOrdersByCommittedFraction(t *testing.T) {
	mk := func(id int64, committed, total int64) *Job {
		return &Job{ID: id, committed: committed, totalBytes: total}
	}
	q := jobQueue{
		mk(1, 10<<20, 100<<20), // 10%
		mk(2, 50<<20, 100<<20), // 50%
		mk(3, 90<<20, 100<<20), // 90%
	}
	heap.Init(&q)
	var got []int64
	for q.Len() > 0 {
		got = append(got, heap.Pop(&q).(*Job).ID)
	}
	want := []int64{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// Priority still dominates: a low-priority job about to finish must not
// jump a high-priority fresh one. Equal fractions fall back to FIFO.
func TestQueuePriorityBeatsFractionAndFIFOTieBreak(t *testing.T) {
	hi := &Job{ID: 5, totalBytes: 1 << 20}
	hi.Spec.Priority = 2
	lo := &Job{ID: 1, committed: 1<<20 - 1, totalBytes: 1 << 20}
	lo.Spec.Priority = 1
	q := jobQueue{lo, hi}
	heap.Init(&q)
	if id := heap.Pop(&q).(*Job).ID; id != 5 {
		t.Fatalf("priority lost to fraction: popped job %d", id)
	}

	a := &Job{ID: 7, committed: 512, totalBytes: 1024}
	b := &Job{ID: 8, committed: 512, totalBytes: 1024}
	a.Spec.Priority, b.Spec.Priority = 1, 1
	q = jobQueue{b, a}
	heap.Init(&q)
	if id := heap.Pop(&q).(*Job).ID; id != 7 {
		t.Fatalf("equal fractions did not fall back to FIFO: popped job %d", id)
	}

	// A job with no manifest bytes (defensive: Submit rejects these)
	// counts as 0% rather than dividing by zero.
	z := &Job{ID: 9}
	z.Spec.Priority = 1
	if f := fraction(z); f != 0 {
		t.Fatalf("zero-total fraction = %v, want 0", f)
	}
}
