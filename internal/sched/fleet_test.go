package sched

import (
	"context"
	"strings"
	"testing"
	"time"

	"automdt/internal/env"
	"automdt/internal/fsim"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

// TestFleetRunnerSpreadsSessions drives jobs through a 3-endpoint fleet
// and asserts the control-plane surface: sessions complete, placement
// gauges appear endpoint-labeled, and Status reports the membership.
func TestFleetRunnerSpreadsSessions(t *testing.T) {
	fr := &FleetRunner{Size: 3, Verify: true}
	defer fr.Close()
	s, err := New(Config{
		Budget:    [env.StageCount]int{16, 16, 16, 16},
		MaxActive: 8,
		Runner:    fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const jobs = 12
	ids := make([]int64, jobs)
	for i := range ids {
		id, err := s.Submit(JobSpec{Name: "spread", Manifest: workload.LargeFiles(2, 256<<10)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("job %d: state %s (%s)", id, st.State, st.Error)
		}
	}

	st := fr.Status()
	if st.Size != 3 || len(st.Endpoints) != 3 {
		t.Fatalf("fleet status size = %d endpoints = %d, want 3", st.Size, len(st.Endpoints))
	}
	for _, ep := range st.Endpoints {
		if !ep.Live {
			t.Fatalf("endpoint %s not live in healthy fleet: %+v", ep.ID, st)
		}
	}
	if st.Placements < jobs {
		t.Fatalf("placements = %d, want ≥ %d", st.Placements, jobs)
	}
	if st.Failovers != 0 {
		t.Fatalf("failovers = %d in healthy fleet", st.Failovers)
	}

	text := s.Snapshot().Text()
	for _, want := range []string{
		`automdt_fleet_endpoints{state="live"} 3`,
		"automdt_fleet_placements_total",
		"automdt_fleet_failovers_total 0",
		`automdt_endpoint_sessions_total{event="completed",endpoint="ep-`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scheduler snapshot missing %q:\n%s", want, text)
		}
	}
}

// TestFleetFailoverResumesOnSibling is the fleet failover e2e: three
// endpoints, a batch of in-flight transfers, one endpoint killed
// mid-transfer. Every victim session must complete on a sibling
// byte-correct, re-sending less than 10% of the bytes it had committed
// before the kill (the sibling inherits the victim's ledger through the
// shared store), with zero arena-lease leaks.
func TestFleetFailoverResumesOnSibling(t *testing.T) {
	arena := transfer.NewArena(512 << 20)
	store := fsim.NewSyntheticStore()
	store.Verify = true
	fr := &FleetRunner{
		Size:     3,
		Store:    store,
		Receiver: transfer.Config{Arena: arena},
		// A short beat so the kill surfaces quickly, but a generous TTL:
		// under the race detector a healthy endpoint's heartbeat
		// goroutine can stall past a tight TTL and flap the registry.
		HeartbeatEvery: 20 * time.Millisecond,
		HeartbeatTTL:   200 * time.Millisecond,
	}
	s, err := New(Config{
		Budget:    [env.StageCount]int{16, 16, 16, 16},
		MaxActive: 8,
		Runner:    fr,
	})
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 6
	const fileBytes = 2 << 20
	const filesPer = 4
	const totalPer = int64(filesPer * fileBytes)
	ids := make([]int64, jobs)
	for i := range ids {
		id, err := s.Submit(JobSpec{
			Name:       "victim-batch",
			Manifest:   workload.LargeFiles(filesPer, fileBytes),
			MaxRetries: 4,
			Transfer: transfer.Config{
				ChunkBytes:     128 << 10,
				InitialThreads: 2,
				MaxThreads:     4,
				ProbeInterval:  25 * time.Millisecond,
				Arena:          arena,
				Shaping:        transfer.Shaping{LinkMbps: 80},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	// Wait for real progress, then pick the endpoint serving a session
	// that is demonstrably mid-transfer as the victim.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var victim string
	deadline := time.Now().Add(30 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			t.Fatal("no session reached mid-transfer progress before deadline")
		}
		for _, id := range ids {
			st, err := s.Status(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State == "running" && st.CommittedBytes >= totalPer/8 && st.CommittedBytes < totalPer/2 {
				if ep := fr.EndpointOf(st.SessionID); ep != "" {
					victim = ep
					break
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Record what every victim-hosted session had committed before the
	// kill: the resume assertion is measured against this floor.
	committedBefore := make(map[int64]int64)
	for _, id := range ids {
		st, _ := s.Status(id)
		if st.State == "running" && st.CommittedBytes < totalPer &&
			fr.EndpointOf(st.SessionID) == victim {
			committedBefore[id] = st.CommittedBytes
		}
	}
	if len(committedBefore) == 0 {
		t.Fatalf("victim %s hosts no running sessions", victim)
	}
	if err := fr.KillEndpoint(victim); err != nil {
		t.Fatal(err)
	}

	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("job %d: state %s (%s)", id, st.State, st.Error)
		}
	}

	// Victim sessions resumed on a live sibling, inheriting ≥90% of what
	// they had committed before the kill (<10% re-sent). A victim job
	// can legitimately dodge the failover by finishing in the window
	// between the progress sample and the kill (Resumes stays 0 and it
	// never moves); the resumed ones carry the assertions, and at least
	// one must exist for the test to have exercised anything.
	resumed := 0
	for id, before := range committedBefore {
		st, _ := s.Status(id)
		if st.Resumes < 1 {
			continue
		}
		resumed++
		if ep := fr.EndpointOf(st.SessionID); ep == victim || ep == "" {
			t.Errorf("victim job %d finished on %q, want a live sibling of %s", id, ep, victim)
		}
		if before > 0 {
			floor := before - before/10
			if st.SkippedBytes < floor {
				t.Errorf("victim job %d: inherited %d of %d pre-kill committed bytes, want ≥ %d (<10%% re-sent)",
					id, st.SkippedBytes, before, floor)
			}
		}
	}
	if resumed == 0 {
		for id, before := range committedBefore {
			st, _ := s.Status(id)
			t.Logf("victim job %d: before=%d state=%s attempts=%d resumes=%d skipped=%d committed=%d endpoint=%s err=%q",
				id, before, st.State, st.Attempts, st.Resumes, st.SkippedBytes, st.CommittedBytes,
				fr.EndpointOf(st.SessionID), st.Error)
		}
		t.Fatal("no victim session resumed: the kill landed after every victim session finished")
	}

	if st := fr.Status(); st.Failovers < 1 {
		t.Fatalf("fleet failovers = %d, want ≥ 1", st.Failovers)
	}

	// The registry marks the victim dead once its heartbeat TTL lapses,
	// and a momentarily stalled sibling can flap; poll for the settled
	// picture — victim dead, both siblings live — rather than racing the
	// sweep.
	gaugeDeadline := time.Now().Add(5 * time.Second)
	for {
		st := fr.Status()
		liveCount := 0
		victimLive := false
		for _, ep := range st.Endpoints {
			if ep.Live {
				liveCount++
				if ep.ID == victim {
					victimLive = true
				}
			}
		}
		text := s.Snapshot().Text()
		if !victimLive && liveCount == 2 &&
			strings.Contains(text, `automdt_fleet_endpoints{state="dead"} 1`) &&
			strings.Contains(text, "automdt_fleet_failovers_total") &&
			strings.Contains(text, "automdt_fleet_heartbeat_expirations_total") {
			break
		}
		if time.Now().After(gaugeDeadline) {
			t.Fatalf("fleet never settled at 2 live + 1 dead (victim %s): %+v\n%s", victim, st, text)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Byte-correctness and leak discipline: the shared verified store saw
	// no bad writes, and every arena lease is back after teardown.
	s.Close()
	fr.Close()
	if errs := store.Errors(); len(errs) > 0 {
		t.Fatalf("shared store verification errors: %v", errs)
	}
	if inUse := arena.Stats().InUseBytes; inUse != 0 {
		t.Fatalf("arena leaks %d bytes after fleet teardown", inUse)
	}
}

// TestFleetWriteBudgetFairness is the fairness regression: a two-endpoint
// fleet with a per-endpoint write budget serves one greedy high-priority
// high-thread session alongside meek single-thread siblings. The
// arbiter's equal split must keep every meek session's goodput above a
// floor — without it the greedy session's thread count would decide the
// division of the write stage.
func TestFleetWriteBudgetFairness(t *testing.T) {
	fr := &FleetRunner{
		Size:     2,
		Verify:   true,
		Receiver: transfer.Config{WriteBudgetMbps: 200},
	}
	defer fr.Close()
	s, err := New(Config{
		Budget:    [env.StageCount]int{32, 32, 32, 32},
		MaxActive: 8,
		Runner:    fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	greedy, err := s.Submit(JobSpec{
		Name:     "greedy",
		Priority: 8,
		Manifest: workload.LargeFiles(4, 4<<20),
		Transfer: transfer.Config{InitialThreads: 8, MaxThreads: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	const meeks = 6
	meekIDs := make([]int64, meeks)
	for i := range meekIDs {
		id, err := s.Submit(JobSpec{
			Name:     "meek",
			Priority: 1,
			Manifest: workload.LargeFiles(1, 2<<20),
			Transfer: transfer.Config{InitialThreads: 1, MaxThreads: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		meekIDs[i] = id
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	gst, err := s.Status(greedy)
	if err != nil {
		t.Fatal(err)
	}
	if gst.State != "done" {
		t.Fatalf("greedy job: state %s (%s)", gst.State, gst.Error)
	}
	// The floor is deliberately conservative: with a 200 Mbps per-endpoint
	// budget and at most 5 colocated sessions (the ring's bounded load),
	// the equal split guarantees ≥ 40 Mbps per session; 10 Mbps of
	// measured goodput leaves 4× margin for handshake and probe overhead.
	const floorMbps = 10.0
	for _, id := range meekIDs {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("meek job %d: state %s (%s)", id, st.State, st.Error)
		}
		if st.AvgMbps < floorMbps {
			t.Errorf("meek job %d goodput %.1f Mbps under the %g Mbps floor (greedy session starved it)",
				id, st.AvgMbps, floorMbps)
		}
	}

	text := s.Snapshot().Text()
	if !strings.Contains(text, "automdt_endpoint_write_budget_mbps") {
		t.Fatalf("snapshot missing write-budget gauges:\n%s", text)
	}
}
