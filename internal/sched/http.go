package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"automdt/internal/flight"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

// SubmitRequest is the JSON body of POST /jobs.
type SubmitRequest struct {
	Name       string `json:"name"`
	Priority   int    `json:"priority,omitempty"`
	MaxRetries int    `json:"max_retries,omitempty"`
	// Dataset declares the files to transfer.
	Dataset workload.Spec `json:"dataset"`
	// DestDir writes into a real directory; empty uses a synthetic sink.
	DestDir string `json:"dest_dir,omitempty"`
	// Engine knobs (zero values take transfer.Config defaults).
	ChunkBytes      int `json:"chunk_bytes,omitempty"`
	MaxThreads      int `json:"max_threads,omitempty"`
	InitialThreads  int `json:"initial_threads,omitempty"`
	ProbeIntervalMs int `json:"probe_interval_ms,omitempty"`
	// Conns is the number of parallel data connections the job's sender
	// opens (the striping width); 0 means one.
	Conns int `json:"conns,omitempty"`
	// DisableChecksums turns off frame CRCs and end-to-end file
	// verification (on by default).
	DisableChecksums bool `json:"disable_checksums,omitempty"`
}

// spec converts the request into a JobSpec.
func (r SubmitRequest) spec() (JobSpec, error) {
	m, err := r.Dataset.Build()
	if err != nil {
		return JobSpec{}, err
	}
	return JobSpec{
		Name:       r.Name,
		Manifest:   m,
		Priority:   r.Priority,
		MaxRetries: r.MaxRetries,
		DestDir:    r.DestDir,
		Transfer: transfer.Config{
			ChunkBytes:       r.ChunkBytes,
			MaxThreads:       r.MaxThreads,
			InitialThreads:   r.InitialThreads,
			ProbeInterval:    time.Duration(r.ProbeIntervalMs) * time.Millisecond,
			DisableChecksums: r.DisableChecksums,
			Conns:            r.Conns,
		},
	}, nil
}

// NewHandler exposes a Scheduler over HTTP. The stable, versioned
// surface lives under /v1/ (see docs/OPERATIONS.md for the stability
// contract); every route is also registered at its historical unprefixed
// path as a deprecated alias so pre-v1 clients keep working:
//
//	POST   /v1/jobs             submit a SubmitRequest, returns the JobStatus
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        one job's status
//	POST   /v1/jobs/{id}/cancel cancel a queued or running job
//	DELETE /v1/jobs/{id}        same as cancel
//	GET    /v1/fleet            receiver-fleet membership and placement counters
//	GET    /v1/debug/flight     decision flight-recorder dump
//	GET    /v1/metrics          text-format metrics snapshot
//	GET    /v1/healthz          liveness probe
//
// GET /fleet answers 404 when the scheduler's runner is not a fleet
// (e.g. the per-job loopback runner).
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()

	// handle registers one route under /v1/ and at the legacy unprefixed
	// path. pattern is "METHOD /path".
	handle := func(pattern string, h http.HandlerFunc) {
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			panic("sched: bad route pattern " + pattern)
		}
		mux.HandleFunc(method+" /v1"+path, h)
		mux.HandleFunc(pattern, h)
	}

	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	jobID := func(w http.ResponseWriter, r *http.Request) (int64, bool) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
			return 0, false
		}
		return id, true
	}
	cancel := func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		if err := s.Cancel(id); err != nil {
			code := http.StatusConflict
			if errors.Is(err, ErrNotFound) {
				code = http.StatusNotFound
			}
			writeErr(w, code, err)
			return
		}
		st, _ := s.Status(id)
		writeJSON(w, http.StatusOK, st)
	}

	handle("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		// A submit body is a small JSON document; bound it so no client
		// can stream the daemon out of memory.
		r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		spec, err := req.spec()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrClosed) {
				code = http.StatusServiceUnavailable
			}
			writeErr(w, code, err)
			return
		}
		st, _ := s.Status(id)
		writeJSON(w, http.StatusCreated, st)
	})
	handle("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	handle("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		st, err := s.Status(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	handle("POST /jobs/{id}/cancel", cancel)
	handle("DELETE /jobs/{id}", cancel)
	handle("GET /fleet", func(w http.ResponseWriter, r *http.Request) {
		type fleetStatuser interface{ Status() FleetStatus }
		fs, ok := s.Runner().(fleetStatuser)
		if !ok {
			writeErr(w, http.StatusNotFound, errors.New("scheduler runner is not a receiver fleet"))
			return
		}
		writeJSON(w, http.StatusOK, fs.Status())
	})
	handle("GET /debug/flight", func(w http.ResponseWriter, r *http.Request) {
		var since uint64
		if v := r.URL.Query().Get("since"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since %q", v))
				return
			}
			since = n
		}
		writeJSON(w, http.StatusOK, flight.Default().DumpFile(r.URL.Query().Get("source"), since))
	})
	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Write([]byte(snap.Text()))
	})
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}
