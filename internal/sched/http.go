package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"automdt/internal/flight"
	"automdt/internal/transfer"
	"automdt/internal/workload"
)

// SubmitRequest is the JSON body of POST /jobs.
type SubmitRequest struct {
	Name       string `json:"name"`
	Priority   int    `json:"priority,omitempty"`
	MaxRetries int    `json:"max_retries,omitempty"`
	// Dataset declares the files to transfer.
	Dataset workload.Spec `json:"dataset"`
	// DestDir writes into a real directory; empty uses a synthetic sink.
	DestDir string `json:"dest_dir,omitempty"`
	// Engine knobs (zero values take transfer.Config defaults).
	ChunkBytes      int `json:"chunk_bytes,omitempty"`
	MaxThreads      int `json:"max_threads,omitempty"`
	InitialThreads  int `json:"initial_threads,omitempty"`
	ProbeIntervalMs int `json:"probe_interval_ms,omitempty"`
	// DisableChecksums turns off frame CRCs and end-to-end file
	// verification (on by default).
	DisableChecksums bool `json:"disable_checksums,omitempty"`
}

// spec converts the request into a JobSpec.
func (r SubmitRequest) spec() (JobSpec, error) {
	m, err := r.Dataset.Build()
	if err != nil {
		return JobSpec{}, err
	}
	return JobSpec{
		Name:       r.Name,
		Manifest:   m,
		Priority:   r.Priority,
		MaxRetries: r.MaxRetries,
		DestDir:    r.DestDir,
		Transfer: transfer.Config{
			ChunkBytes:       r.ChunkBytes,
			MaxThreads:       r.MaxThreads,
			InitialThreads:   r.InitialThreads,
			ProbeInterval:    time.Duration(r.ProbeIntervalMs) * time.Millisecond,
			DisableChecksums: r.DisableChecksums,
		},
	}, nil
}

// NewHandler exposes a Scheduler over HTTP:
//
//	POST   /jobs             submit a SubmitRequest, returns the JobStatus
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        one job's status
//	POST   /jobs/{id}/cancel cancel a queued or running job
//	DELETE /jobs/{id}        same as cancel
//	GET    /metrics          text-format metrics snapshot
//	GET    /healthz          liveness probe
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	jobID := func(w http.ResponseWriter, r *http.Request) (int64, bool) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
			return 0, false
		}
		return id, true
	}
	cancel := func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		if err := s.Cancel(id); err != nil {
			code := http.StatusConflict
			if errors.Is(err, ErrNotFound) {
				code = http.StatusNotFound
			}
			writeErr(w, code, err)
			return
		}
		st, _ := s.Status(id)
		writeJSON(w, http.StatusOK, st)
	}

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		// A submit body is a small JSON document; bound it so no client
		// can stream the daemon out of memory.
		r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		spec, err := req.spec()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrClosed) {
				code = http.StatusServiceUnavailable
			}
			writeErr(w, code, err)
			return
		}
		st, _ := s.Status(id)
		writeJSON(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		st, err := s.Status(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", cancel)
	mux.HandleFunc("DELETE /jobs/{id}", cancel)
	mux.HandleFunc("GET /debug/flight", func(w http.ResponseWriter, r *http.Request) {
		var since uint64
		if v := r.URL.Query().Get("since"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since %q", v))
				return
			}
			since = n
		}
		writeJSON(w, http.StatusOK, flight.Default().DumpFile(r.URL.Query().Get("source"), since))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Write([]byte(snap.Text()))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}
