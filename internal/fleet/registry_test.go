package fleet

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestRegistry(ttl time.Duration) (*Registry, *fakeClock) {
	g := NewRegistry(ttl)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	g.SetClock(clk.now)
	return g, clk
}

func liveIDs(g *Registry) []string {
	infos := g.Live()
	ids := make([]string, len(infos))
	for i, in := range infos {
		ids[i] = in.ID
	}
	return ids
}

func TestRegistryLivenessLifecycle(t *testing.T) {
	g, clk := newTestRegistry(time.Second)

	if err := g.Register(EndpointInfo{ID: "ep-0", DataAddr: "d0", CtrlAddr: "c0"}); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(EndpointInfo{ID: "ep-1", DataAddr: "d1", CtrlAddr: "c1"}); err != nil {
		t.Fatal(err)
	}
	if got := liveIDs(g); strings.Join(got, ",") != "ep-0,ep-1" {
		t.Fatalf("live after register = %v", got)
	}

	// Within TTL: heartbeats keep both live.
	clk.advance(600 * time.Millisecond)
	if err := g.Heartbeat("ep-0"); err != nil {
		t.Fatal(err)
	}
	clk.advance(600 * time.Millisecond)
	// ep-1's last beat (register) is now 1.2s old → dead; ep-0 still live.
	if got := liveIDs(g); strings.Join(got, ",") != "ep-0" {
		t.Fatalf("live after ep-1 TTL lapse = %v", got)
	}

	// Revive on heartbeat without re-registering.
	if err := g.Heartbeat("ep-1"); err != nil {
		t.Fatalf("heartbeat from dead-but-registered endpoint: %v", err)
	}
	if got := liveIDs(g); strings.Join(got, ",") != "ep-0,ep-1" {
		t.Fatalf("live after revival = %v", got)
	}

	// Deregister removes outright; further heartbeats are rejected.
	g.Deregister("ep-1")
	if err := g.Heartbeat("ep-1"); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("heartbeat after deregister err = %v, want ErrUnknownEndpoint", err)
	}
	if got := liveIDs(g); strings.Join(got, ",") != "ep-0" {
		t.Fatalf("live after deregister = %v", got)
	}
}

func TestRegistryEpochBumpsOnTransitions(t *testing.T) {
	g, clk := newTestRegistry(time.Second)

	e0 := g.Epoch()
	g.Register(EndpointInfo{ID: "ep-0"})
	e1 := g.Epoch()
	if e1 <= e0 {
		t.Fatalf("register did not bump epoch: %d → %d", e0, e1)
	}

	// No transition → epoch stable (ring resync can be skipped).
	clk.advance(300 * time.Millisecond)
	g.Heartbeat("ep-0")
	if e := g.Epoch(); e != e1 {
		t.Fatalf("live-endpoint heartbeat bumped epoch: %d → %d", e1, e)
	}

	// TTL death bumps.
	clk.advance(2 * time.Second)
	e2 := g.Epoch()
	if e2 <= e1 {
		t.Fatalf("TTL death did not bump epoch: %d → %d", e1, e2)
	}
	// Revival bumps again.
	g.Heartbeat("ep-0")
	e3 := g.Epoch()
	if e3 <= e2 {
		t.Fatalf("revival did not bump epoch: %d → %d", e2, e3)
	}
	// Deregister bumps.
	g.Deregister("ep-0")
	if e := g.Epoch(); e <= e3 {
		t.Fatalf("deregister did not bump epoch: %d → %d", e3, e)
	}
}

func TestRegistryValidationAndSnapshot(t *testing.T) {
	g, clk := newTestRegistry(time.Second)
	if err := g.Register(EndpointInfo{}); err == nil {
		t.Fatal("Register with empty ID succeeded")
	}
	if err := g.Heartbeat("ghost"); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("unknown heartbeat err = %v", err)
	}

	g.Register(EndpointInfo{ID: "ep-0"})
	g.Register(EndpointInfo{ID: "ep-1"})
	clk.advance(500 * time.Millisecond)
	g.Heartbeat("ep-0")
	clk.advance(700 * time.Millisecond) // ep-1 lapses

	snap := g.Snapshot()
	want := map[string]float64{
		"automdt_fleet_endpoints{state=\"live\"}":   1,
		"automdt_fleet_endpoints{state=\"dead\"}":   1,
		"automdt_fleet_heartbeat_expirations_total": 1,
	}
	got := make(map[string]float64)
	for _, s := range snap.Samples() {
		key := s.Name
		for _, l := range s.Labels {
			key += "{" + l.Key + "=\"" + l.Value + "\"}"
		}
		got[key] = s.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("snapshot %s = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
	if got["automdt_fleet_membership_epoch"] <= 0 {
		t.Errorf("membership epoch gauge missing or zero: %v", got)
	}
}

func TestRegistryDefaultTTL(t *testing.T) {
	if got := NewRegistry(0).TTL(); got != DefaultTTL {
		t.Fatalf("TTL() = %v, want %v", got, DefaultTTL)
	}
}
