package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"automdt/internal/metrics"
)

// DefaultTTL is the heartbeat liveness horizon when a Registry is built
// with a non-positive TTL.
const DefaultTTL = 3 * time.Second

// ErrUnknownEndpoint is returned by Heartbeat for an id that never
// registered (or was deregistered); the endpoint must Register first.
var ErrUnknownEndpoint = errors.New("fleet: unknown endpoint")

// EndpointInfo is what an endpoint publishes when it registers.
type EndpointInfo struct {
	// ID names the endpoint; unique within the fleet.
	ID string `json:"id"`
	// DataAddr and CtrlAddr are the receiver's listener addresses.
	DataAddr string `json:"data_addr"`
	CtrlAddr string `json:"ctrl_addr"`
}

// member is the registry's record of one endpoint.
type member struct {
	info     EndpointInfo
	lastBeat time.Time
	live     bool
}

// Registry tracks fleet membership and heartbeat liveness.
//
// Liveness rules (see docs/FLEET.md):
//   - Register makes an endpoint live and counts as its first heartbeat.
//   - An endpoint stays live while its last heartbeat is within the TTL.
//   - When the TTL lapses the endpoint turns dead on the next sweep (any
//     Live/Epoch/Snapshot call sweeps); it stays registered, so a later
//     heartbeat revives it — a stalled-but-recovered endpoint rejoins
//     without re-registering.
//   - Deregister removes the endpoint outright; heartbeats from it then
//     fail with ErrUnknownEndpoint until it registers again.
//
// Every liveness transition (register, death, revival, deregister) bumps
// the membership epoch, which placement layers watch to resync their
// rings. Safe for concurrent use.
type Registry struct {
	ttl time.Duration

	mu      sync.Mutex
	now     func() time.Time
	members map[string]*member
	epoch   int64
	expired int64 // death transitions, for metrics
}

// NewRegistry builds a registry with the given heartbeat TTL (≤ 0 takes
// DefaultTTL).
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Registry{ttl: ttl, now: time.Now, members: make(map[string]*member)}
}

// TTL returns the heartbeat liveness horizon.
func (g *Registry) TTL() time.Duration { return g.ttl }

// SetClock injects a time source for tests.
func (g *Registry) SetClock(now func() time.Time) {
	g.mu.Lock()
	g.now = now
	g.mu.Unlock()
}

// Register adds (or re-adds) an endpoint as live, counting as its first
// heartbeat.
func (g *Registry) Register(info EndpointInfo) error {
	if info.ID == "" {
		return errors.New("fleet: endpoint id must be non-empty")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members[info.ID] = &member{info: info, lastBeat: g.now(), live: true}
	g.epoch++
	return nil
}

// Deregister removes an endpoint permanently (deliberate decommission,
// as opposed to a missed-heartbeat death).
func (g *Registry) Deregister(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[id]; ok {
		delete(g.members, id)
		g.epoch++
	}
}

// Heartbeat records a liveness beat. A dead-but-registered endpoint
// revives (epoch bump); an unknown endpoint must Register first.
func (g *Registry) Heartbeat(id string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.members[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, id)
	}
	m.lastBeat = g.now()
	if !m.live {
		m.live = true
		g.epoch++
	}
	return nil
}

// sweepLocked applies the TTL rule: members whose last beat is older
// than TTL turn dead. Caller holds mu.
func (g *Registry) sweepLocked() {
	cutoff := g.now().Add(-g.ttl)
	for _, m := range g.members {
		if m.live && m.lastBeat.Before(cutoff) {
			m.live = false
			g.expired++
			g.epoch++
		}
	}
}

// Live returns the live endpoints, sorted by ID, after applying the TTL
// sweep.
func (g *Registry) Live() []EndpointInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sweepLocked()
	out := make([]EndpointInfo, 0, len(g.members))
	for _, m := range g.members {
		if m.live {
			out = append(out, m.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Epoch returns the membership epoch after applying the TTL sweep. Two
// equal epochs bracket an interval with no membership or liveness
// change.
func (g *Registry) Epoch() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sweepLocked()
	return g.epoch
}

// Snapshot exports the registry's gauges under the automdt_fleet_*
// prefix.
func (g *Registry) Snapshot() metrics.Snapshot {
	g.mu.Lock()
	g.sweepLocked()
	live, dead := 0, 0
	for _, m := range g.members {
		if m.live {
			live++
		} else {
			dead++
		}
	}
	epoch, expired := g.epoch, g.expired
	g.mu.Unlock()

	var snap metrics.Snapshot
	snap.Add("automdt_fleet_endpoints", float64(live), metrics.L("state", "live"))
	snap.Add("automdt_fleet_endpoints", float64(dead), metrics.L("state", "dead"))
	snap.Add("automdt_fleet_membership_epoch", float64(epoch))
	snap.Add("automdt_fleet_heartbeat_expirations_total", float64(expired))
	return snap
}
