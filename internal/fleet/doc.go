// Package fleet is the receiver-fleet control plane: the small,
// shared-nothing coordination layer that lets many multi-session
// receiver endpoints (internal/transfer.Receiver) serve one logical
// destination.
//
// It has three pieces, each independently testable:
//
//   - Ring: consistent-hash session→endpoint placement with bounded
//     loads. Every endpoint projects a fixed set of virtual nodes onto a
//     64-bit hash ring; a session is placed on the first live endpoint at
//     or after its own hash, skipping endpoints already carrying more
//     than c× the mean session load (c defaults to 1.25). Membership
//     changes therefore remap only ≈1/n of the sessions, and no endpoint
//     can be herded far past its fair share.
//
//   - Registry: endpoint membership and heartbeat liveness. An endpoint
//     registers its data/control addresses and heartbeats periodically;
//     it is live while its last heartbeat is within the TTL, turns dead
//     when the TTL lapses, and revives on the next heartbeat. Every
//     liveness transition bumps the membership epoch so placement layers
//     know when to resync their rings.
//
//   - WriteArbiter semantics live receiver-side (see
//     transfer.Config.WriteBudgetMbps): each endpoint splits its write
//     budget max-min fair across its active sessions so one greedy
//     session cannot starve siblings on the shared disks.
//
// The daemon-side composition — spawning N endpoints, heartbeating them,
// routing jobs through the ring, and resuming a dead endpoint's sessions
// on a sibling via the portable binary ledger — is sched.FleetRunner.
// docs/FLEET.md describes the placement ring, the liveness rules, and
// the failover sequence.
package fleet
