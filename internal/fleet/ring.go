package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"
)

// ErrNoEndpoints is returned by placement when the ring has no members.
var ErrNoEndpoints = errors.New("fleet: no live endpoints")

const (
	// DefaultReplicas is the virtual-node count each endpoint projects
	// onto the ring. More replicas smooth the balance (deviation shrinks
	// roughly with 1/√replicas) at the cost of a larger sorted point set.
	DefaultReplicas = 128
	// DefaultLoadFactor is the bounded-load factor c: placement skips an
	// endpoint whose session load has reached ⌈c·(total+1)/n⌉. 1.25 keeps
	// the worst endpoint within 25% of the mean while preserving most of
	// plain consistent hashing's remap minimality.
	DefaultLoadFactor = 1.25
)

// Ring is a consistent-hash placement ring with bounded loads (the
// "consistent hashing with bounded loads" construction): sessions map to
// the first endpoint clockwise of their hash whose current load is below
// the bound. With all loads equal (or untracked) it degenerates to plain
// consistent hashing, which is what makes membership changes remap only
// ≈1/n of the keys. Safe for concurrent use.
type Ring struct {
	replicas int
	c        float64

	mu     sync.RWMutex
	points []ringPoint // sorted by hash
	load   map[string]int
	total  int
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing creates an empty ring. replicas ≤ 0 and c < 1 take the
// defaults.
func NewRing(replicas int, c float64) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if c < 1 {
		c = DefaultLoadFactor
	}
	return &Ring{replicas: replicas, c: c, load: make(map[string]int)}
}

// hashKey maps a string onto the ring's 64-bit hash space. Raw FNV-1a
// mixes too weakly for the short, near-identical vnode strings
// ("ep-3#41" vs "ep-3#42") — adjacent inputs land on clustered ring
// positions and the balance collapses — so the digest is pushed through
// a murmur3-style 64-bit finalizer for full avalanche.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s) //nolint:errcheck
	return fmix64(h.Sum64())
}

func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts an endpoint (idempotent). Its virtual nodes derive from
// the endpoint id alone, so the same membership set always yields the
// same ring regardless of insertion order.
func (r *Ring) Add(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.load[id]; ok {
		return
	}
	r.load[id] = 0
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", id, i)), id: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes an endpoint and its virtual nodes. Sessions it was
// carrying stop counting toward the ring's total load (their Release
// becomes a no-op).
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	carried, ok := r.load[id]
	if !ok {
		return
	}
	r.total -= carried
	delete(r.load, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the endpoint ids, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.load))
	for id := range r.load {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Loads returns a copy of the per-endpoint session loads.
func (r *Ring) Loads() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.load))
	for id, n := range r.load {
		out[id] = n
	}
	return out
}

// placeLocked walks the ring from the key's hash and returns the first
// endpoint under the load bound. Caller holds mu (read or write).
func (r *Ring) placeLocked(key string) (string, error) {
	n := len(r.load)
	if n == 0 {
		return "", ErrNoEndpoints
	}
	limit := int(math.Ceil(r.c * float64(r.total+1) / float64(n)))
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var first string
	for k := 0; k < len(r.points); k++ {
		p := r.points[(start+k)%len(r.points)]
		if first == "" {
			first = p.id
		}
		if r.load[p.id] < limit {
			return p.id, nil
		}
	}
	// Unreachable while c ≥ 1 (if every endpoint were at the limit the
	// total would exceed itself), kept as a defensive fallback.
	return first, nil
}

// Place returns the endpoint the key maps to without taking a load slot.
// With no outstanding Acquires this is plain consistent hashing: the
// answer changes only when membership changes.
func (r *Ring) Place(key string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.placeLocked(key)
}

// Acquire places the key and counts one session against the chosen
// endpoint's load until Release. The load is what the bounded-load walk
// consults, so concurrent sessions spread instead of herding onto one
// hot endpoint.
func (r *Ring) Acquire(key string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, err := r.placeLocked(key)
	if err != nil {
		return "", err
	}
	r.load[id]++
	r.total++
	return id, nil
}

// Release returns one session slot to the endpoint. Releasing an
// endpoint that has left the ring (or has no outstanding load) is a
// no-op.
func (r *Ring) Release(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.load[id]; ok && n > 0 {
		r.load[id]--
		r.total--
	}
}
