package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// ringSeed fixes the key population so the property tests are
// reproducible runs of the same placement instance, not flaky samples.
const ringSeed = 47

func genKeys(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sess-%d-%x", i, rng.Uint64())
	}
	return keys
}

func epID(i int) string { return fmt.Sprintf("ep-%d", i) }

func buildRing(n int) *Ring {
	r := NewRing(0, 0)
	for i := 0; i < n; i++ {
		r.Add(epID(i))
	}
	return r
}

// TestRingBalance places a large key population on fleets of 3–16
// endpoints and asserts every endpoint's share stays within tolerance of
// the mean. With 128 virtual nodes per endpoint the arc-length variance
// keeps plain consistent hashing within roughly ±30% of fair; the
// tolerance band below is deliberately wider than that but far tighter
// than the pathological single-hash-per-endpoint ring.
func TestRingBalance(t *testing.T) {
	const keysN = 20000
	keys := genKeys(ringSeed, keysN)
	for _, n := range []int{3, 4, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			r := buildRing(n)
			counts := make(map[string]int, n)
			for _, k := range keys {
				id, err := r.Place(k)
				if err != nil {
					t.Fatalf("Place(%q): %v", k, err)
				}
				counts[id]++
			}
			mean := float64(keysN) / float64(n)
			for i := 0; i < n; i++ {
				c := counts[epID(i)]
				ratio := float64(c) / mean
				if ratio < 0.55 || ratio > 1.55 {
					t.Errorf("endpoint %s holds %d keys (%.2f× mean %.0f), outside [0.55, 1.55]",
						epID(i), c, ratio, mean)
				}
			}
		})
	}
}

// TestRingRemapOnMembershipChange asserts the consistency property: when
// an endpoint joins, at most ≈1/(n+1)+ε of keys move and every mover
// lands on the newcomer; when an endpoint leaves, at most ≈1/n+ε move
// and every mover originates from the departed endpoint. Keys untouched
// by the change must not move at all — that is what makes a fleet-wide
// membership event cheap.
func TestRingRemapOnMembershipChange(t *testing.T) {
	const keysN = 20000
	const eps = 0.05
	keys := genKeys(ringSeed+1, keysN)
	for _, n := range []int{3, 4, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			r := buildRing(n)
			before := make(map[string]string, keysN)
			for _, k := range keys {
				id, _ := r.Place(k)
				before[k] = id
			}

			// Join: ep-new enters; movers must all move to it.
			r.Add("ep-new")
			moved := 0
			for _, k := range keys {
				id, _ := r.Place(k)
				if id != before[k] {
					moved++
					if id != "ep-new" {
						t.Fatalf("join: key %q moved %s→%s, not to the joining endpoint", k, before[k], id)
					}
				}
			}
			maxFrac := 1.0/float64(n+1) + eps
			if frac := float64(moved) / keysN; frac > maxFrac {
				t.Errorf("join: %.3f of keys remapped, want ≤ %.3f", frac, maxFrac)
			}
			r.Remove("ep-new")

			// Leave: ep-0 departs; movers must all originate from it.
			r.Remove(epID(0))
			moved = 0
			for _, k := range keys {
				id, _ := r.Place(k)
				if id != before[k] {
					moved++
					if before[k] != epID(0) {
						t.Fatalf("leave: key %q moved %s→%s but its endpoint did not leave", k, before[k], id)
					}
				}
			}
			maxFrac = 1.0/float64(n) + eps
			if frac := float64(moved) / keysN; frac > maxFrac {
				t.Errorf("leave: %.3f of keys remapped, want ≤ %.3f", frac, maxFrac)
			}
		})
	}
}

// TestRingBoundedLoad acquires a session slot per key and asserts no
// endpoint ends above the bounded-load limit ⌈c·K/n⌉ — the guarantee
// that placement cannot herd sessions onto one hot endpoint even when
// the hash distribution would.
func TestRingBoundedLoad(t *testing.T) {
	const keysN = 2000
	keys := genKeys(ringSeed+2, keysN)
	for _, n := range []int{3, 8, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			r := buildRing(n)
			for _, k := range keys {
				if _, err := r.Acquire(k); err != nil {
					t.Fatalf("Acquire(%q): %v", k, err)
				}
			}
			limit := int(math.Ceil(DefaultLoadFactor * float64(keysN) / float64(n)))
			total := 0
			for id, load := range r.Loads() {
				total += load
				if load > limit {
					t.Errorf("endpoint %s carries %d sessions, above bounded-load limit %d", id, load, limit)
				}
			}
			if total != keysN {
				t.Fatalf("total load %d, want %d", total, keysN)
			}
		})
	}
}

// TestRingReleaseAndEmpty covers the bookkeeping edges: release returns
// capacity, releasing a departed or idle endpoint is a no-op, and an
// empty ring refuses placement.
func TestRingReleaseAndEmpty(t *testing.T) {
	r := NewRing(8, 1.25)
	if _, err := r.Place("sess"); err != ErrNoEndpoints {
		t.Fatalf("empty ring Place err = %v, want ErrNoEndpoints", err)
	}
	r.Add("a")
	r.Add("a") // idempotent
	if got := len(r.Members()); got != 1 {
		t.Fatalf("Members() after duplicate Add = %d, want 1", got)
	}
	id, err := r.Acquire("sess")
	if err != nil || id != "a" {
		t.Fatalf("Acquire = %q, %v", id, err)
	}
	r.Release("a")
	r.Release("a") // idle: no-op
	if r.Loads()["a"] != 0 {
		t.Fatalf("load after over-release = %d, want 0", r.Loads()["a"])
	}
	r.Remove("a")
	r.Release("a") // departed: no-op
	if _, err := r.Place("sess"); err != ErrNoEndpoints {
		t.Fatalf("Place after Remove err = %v, want ErrNoEndpoints", err)
	}
}

// TestRingPlacementDeterministic asserts the ring is a pure function of
// its membership set: insertion order must not matter, or failover
// re-placement on different daemons would disagree.
func TestRingPlacementDeterministic(t *testing.T) {
	keys := genKeys(ringSeed+3, 500)
	a := NewRing(0, 0)
	b := NewRing(0, 0)
	for i := 0; i < 5; i++ {
		a.Add(epID(i))
	}
	for i := 4; i >= 0; i-- {
		b.Add(epID(i))
	}
	for _, k := range keys {
		pa, _ := a.Place(k)
		pb, _ := b.Place(k)
		if pa != pb {
			t.Fatalf("placement differs by insertion order for %q: %s vs %s", k, pa, pb)
		}
	}
}
