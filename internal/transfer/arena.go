package transfer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"automdt/internal/metrics"
)

// Arena is a size-classed, capacity-bounded pool of reference-counted
// buffers — the single allocation point of the transfer hot path. A chunk
// buffer is acquired once when the read stage pulls data from the source
// store (or when the receiver pulls a frame off the wire), handed through
// the staging buffer by ownership transfer, and released back here only
// after the frame hits the wire (sender side) or the disk write commits
// (receiver side). Steady-state transfers therefore run with zero
// per-chunk allocations.
//
// The capacity bound is soft: when the arena footprint (leased + pooled
// bytes) would exceed the configured capacity, Get still succeeds — a
// transfer must never deadlock on pool pressure — but hands out an
// untracked buffer that is garbage-collected on release instead of being
// retained. Shrinking the capacity below the current footprint likewise
// sheds buffers lazily as they are released. Under concurrent Get the
// footprint can transiently overshoot by at most one class size per
// caller; occupancy gauges are for observability, not hard accounting.
type Arena struct {
	capBytes atomic.Int64

	// inUse counts bytes of pooled-class buffers currently leased out;
	// pooled counts bytes sitting in free lists. Footprint = inUse+pooled.
	inUse  atomic.Int64
	pooled atomic.Int64

	// hits: Get served from a free list. misses: Get allocated a new
	// tracked buffer. overflow: Get handed out an untracked buffer
	// (capacity pressure or oversize request).
	hits, misses, overflow atomic.Int64

	classes []arenaClass
}

// arenaClass is one size class: a LIFO free list of released buffers.
type arenaClass struct {
	size int64
	mu   sync.Mutex
	free []*Buf
}

// arenaClassSizes are the per-class buffer sizes, ascending. The ladder
// covers the tail chunks of any ChunkBytes setting up to wire.MaxChunk:
// a 256 KiB chunk pipeline with a 9 KiB tail leases from the 16 KiB
// class instead of allocating, which is exactly the tail-chunk leak the
// old per-stage sync.Pool had.
var arenaClassSizes = []int64{
	4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// DefaultArenaBytes is the capacity of the process-wide default arena:
// enough for the default 64 MiB sender + 64 MiB receiver staging of a
// couple of concurrent loopback transfers.
const DefaultArenaBytes = 512 << 20

var defaultArena = NewArena(DefaultArenaBytes)

// Default returns the process-wide arena used when Config.Arena is nil.
// Sharing one arena across transfers is what makes back-to-back runs
// (and the scheduler daemon's job churn) allocation-free after warmup.
func Default() *Arena { return defaultArena }

// NewArena creates an arena bounded to capBytes of retained buffer
// memory.
func NewArena(capBytes int64) *Arena {
	a := &Arena{classes: make([]arenaClass, len(arenaClassSizes))}
	for i, s := range arenaClassSizes {
		a.classes[i].size = s
	}
	a.capBytes.Store(capBytes)
	return a
}

// classFor returns the index of the smallest class holding n bytes, or
// -1 when n exceeds the largest class.
func (a *Arena) classFor(n int) int {
	for i := range a.classes {
		if int64(n) <= a.classes[i].size {
			return i
		}
	}
	return -1
}

// Get leases a buffer of length n with reference count 1. It never
// blocks and never fails; over capacity it falls back to an untracked
// allocation.
func (a *Arena) Get(n int) *Buf {
	ci := a.classFor(n)
	if ci < 0 {
		a.overflow.Add(1)
		b := &Buf{full: make([]byte, n), n: n}
		b.refs.Store(1)
		return b
	}
	c := &a.classes[ci]
	c.mu.Lock()
	var b *Buf
	if last := len(c.free) - 1; last >= 0 {
		b = c.free[last]
		c.free[last] = nil
		c.free = c.free[:last]
	}
	c.mu.Unlock()
	if b != nil {
		a.hits.Add(1)
		a.pooled.Add(-c.size)
		a.inUse.Add(c.size)
		b.n = n
		b.refs.Store(1)
		return b
	}
	if a.inUse.Load()+a.pooled.Load()+c.size > a.capBytes.Load() {
		a.overflow.Add(1)
		b := &Buf{full: make([]byte, c.size), n: n}
		b.refs.Store(1)
		return b
	}
	a.misses.Add(1)
	a.inUse.Add(c.size)
	b = &Buf{arena: a, class: ci, full: make([]byte, c.size), n: n}
	b.refs.Store(1)
	return b
}

// put returns a fully released tracked buffer to its free list, or drops
// it when the arena is over capacity (lazy shed after a SetCapacity
// shrink).
func (a *Arena) put(b *Buf) {
	c := &a.classes[b.class]
	a.inUse.Add(-c.size)
	if a.inUse.Load()+a.pooled.Load()+c.size > a.capBytes.Load() {
		return // shed: let the GC reclaim it
	}
	a.pooled.Add(c.size)
	c.mu.Lock()
	c.free = append(c.free, b)
	c.mu.Unlock()
}

// SetCapacity rebounds the retained-memory budget. The scheduler calls
// this on every rebalance so arena memory follows the admitted job set.
// Shrinking does not free pooled buffers eagerly; they are shed as they
// cycle through Release.
func (a *Arena) SetCapacity(capBytes int64) {
	if capBytes < 0 {
		capBytes = 0
	}
	a.capBytes.Store(capBytes)
}

// Capacity returns the current retained-memory bound.
func (a *Arena) Capacity() int64 { return a.capBytes.Load() }

// Trim discards every pooled free-list buffer, handing the memory back
// to the GC. Retention across transfers is the arena's point — the
// daemon and back-to-back benchmarks rely on it — but an embedder that
// runs one transfer in a long-lived process can Trim afterwards instead
// of carrying the pooled footprint to process exit. Leased buffers are
// unaffected.
func (a *Arena) Trim() {
	for i := range a.classes {
		c := &a.classes[i]
		c.mu.Lock()
		n := len(c.free)
		for j := range c.free {
			c.free[j] = nil
		}
		c.free = c.free[:0]
		c.mu.Unlock()
		a.pooled.Add(-int64(n) * c.size)
	}
}

// ArenaStats is a point-in-time occupancy snapshot.
type ArenaStats struct {
	CapBytes    int64
	InUseBytes  int64
	PooledBytes int64
	Hits        int64
	Misses      int64
	Overflow    int64
}

// Stats snapshots the arena's occupancy and traffic counters.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		CapBytes:    a.capBytes.Load(),
		InUseBytes:  a.inUse.Load(),
		PooledBytes: a.pooled.Load(),
		Hits:        a.hits.Load(),
		Misses:      a.misses.Load(),
		Overflow:    a.overflow.Load(),
	}
}

// Snapshot exports the arena occupancy in the shared metrics text format
// (the daemon merges this into its /metrics page).
func (a *Arena) Snapshot() metrics.Snapshot {
	st := a.Stats()
	var snap metrics.Snapshot
	snap.Add("automdt_arena_capacity_bytes", float64(st.CapBytes))
	snap.Add("automdt_arena_bytes", float64(st.InUseBytes), metrics.L("state", "in_use"))
	snap.Add("automdt_arena_bytes", float64(st.PooledBytes), metrics.L("state", "pooled"))
	snap.Add("automdt_arena_gets_total", float64(st.Hits), metrics.L("kind", "hit"))
	snap.Add("automdt_arena_gets_total", float64(st.Misses), metrics.L("kind", "miss"))
	snap.Add("automdt_arena_gets_total", float64(st.Overflow), metrics.L("kind", "overflow"))
	return snap
}

// Buf is a reference-counted buffer leased from an Arena. The holder of
// the last reference returns it to the arena with Release; Retain adds a
// reference when a stage needs to hold the payload past its hand-off.
// An untracked Buf (over-capacity or oversize) has a nil arena and is
// simply dropped to the GC on final release.
type Buf struct {
	arena *Arena
	class int
	full  []byte
	n     int
	refs  atomic.Int32
}

// Bytes returns the leased payload slice. The slice must not be used
// after the final Release.
func (b *Buf) Bytes() []byte { return b.full[:b.n] }

// Len returns the payload length.
func (b *Buf) Len() int { return b.n }

// Retain adds a reference.
func (b *Buf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic(fmt.Sprintf("transfer: Retain on released Buf (refs=%d)", b.refs.Load()))
	}
}

// Release drops one reference, returning the buffer to its arena when
// the count reaches zero. Releasing below zero panics: it means two
// stages both thought they owned the chunk.
func (b *Buf) Release() {
	switch r := b.refs.Add(-1); {
	case r == 0:
		if b.arena != nil {
			b.arena.put(b)
		}
	case r < 0:
		panic(fmt.Sprintf("transfer: Buf over-released (refs=%d)", r))
	}
}
