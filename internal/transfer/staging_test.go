package transfer

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStagingFIFO(t *testing.T) {
	s := NewStaging(1 << 20)
	for i := 0; i < 5; i++ {
		if !s.Put(Chunk{FileID: uint32(i), Data: make([]byte, 10)}) {
			t.Fatal("Put failed")
		}
	}
	for i := 0; i < 5; i++ {
		c, ok := s.Get()
		if !ok || c.FileID != uint32(i) {
			t.Fatalf("Get %d: ok=%v id=%d", i, ok, c.FileID)
		}
	}
	if s.Len() != 0 || s.Used() != 0 {
		t.Fatalf("len=%d used=%d", s.Len(), s.Used())
	}
}

func TestStagingAccounting(t *testing.T) {
	s := NewStaging(100)
	s.Put(Chunk{Data: make([]byte, 30)})
	s.Put(Chunk{Data: make([]byte, 50)})
	if s.Used() != 80 || s.Free() != 20 || s.Cap() != 100 {
		t.Fatalf("used=%d free=%d cap=%d", s.Used(), s.Free(), s.Cap())
	}
}

func TestStagingBlocksWhenFull(t *testing.T) {
	s := NewStaging(100)
	s.Put(Chunk{Data: make([]byte, 100)})
	var progressed atomic.Bool
	go func() {
		s.Put(Chunk{Data: make([]byte, 50)})
		progressed.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if progressed.Load() {
		t.Fatal("Put should block while full")
	}
	s.Get() // free space
	for i := 0; i < 100 && !progressed.Load(); i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if !progressed.Load() {
		t.Fatal("Put did not unblock after space freed")
	}
}

func TestStagingOversizedChunkAdmittedWhenEmpty(t *testing.T) {
	s := NewStaging(10)
	done := make(chan bool, 1)
	go func() { done <- s.Put(Chunk{Data: make([]byte, 100)}) }()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("oversized Put failed")
		}
	case <-time.After(time.Second):
		t.Fatal("oversized Put deadlocked on empty buffer")
	}
}

func TestStagingCloseDrains(t *testing.T) {
	s := NewStaging(1000)
	s.Put(Chunk{FileID: 1, Data: make([]byte, 10)})
	s.Close()
	if s.Put(Chunk{Data: make([]byte, 1)}) {
		t.Fatal("Put after Close should fail")
	}
	if c, ok := s.Get(); !ok || c.FileID != 1 {
		t.Fatal("Get should drain remaining chunks after Close")
	}
	if _, ok := s.Get(); ok {
		t.Fatal("Get on drained closed buffer should report false")
	}
}

func TestStagingCloseWakesBlockedGetters(t *testing.T) {
	s := NewStaging(100)
	done := make(chan struct{})
	go func() {
		s.Get()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("blocked Get not woken by Close")
	}
}

func TestTryGet(t *testing.T) {
	s := NewStaging(100)
	if _, ok, closed := s.TryGet(); ok || closed {
		t.Fatal("TryGet on empty open buffer should be (!ok, !closed)")
	}
	s.Put(Chunk{FileID: 3, Data: make([]byte, 5)})
	c, ok, _ := s.TryGet()
	if !ok || c.FileID != 3 {
		t.Fatalf("TryGet ok=%v id=%d", ok, c.FileID)
	}
	s.Close()
	if _, ok, closed := s.TryGet(); ok || !closed {
		t.Fatal("TryGet on closed drained buffer should report closed")
	}
}

func TestStagingConcurrentProducersConsumers(t *testing.T) {
	s := NewStaging(64 << 10)
	const producers, perProducer = 4, 200
	var produced, consumed atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if s.Put(Chunk{Data: make([]byte, 1024)}) {
					produced.Add(1)
				}
			}
		}()
	}
	var cwg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				_, ok := s.Get()
				if !ok {
					return
				}
				consumed.Add(1)
			}
		}()
	}
	wg.Wait()
	s.Close()
	cwg.Wait()
	if produced.Load() != producers*perProducer || consumed.Load() != produced.Load() {
		t.Fatalf("produced=%d consumed=%d", produced.Load(), consumed.Load())
	}
}

func TestPoolResize(t *testing.T) {
	var active atomic.Int64
	p := NewPool(func(stop <-chan struct{}, id int) {
		active.Add(1)
		defer active.Add(-1)
		<-stop
	})
	p.Resize(5)
	if p.Size() != 5 {
		t.Fatalf("Size=%d", p.Size())
	}
	waitFor(t, func() bool { return active.Load() == 5 })
	p.Resize(2)
	waitFor(t, func() bool { return active.Load() == 2 })
	p.Resize(7)
	waitFor(t, func() bool { return active.Load() == 7 })
	p.Shutdown()
	waitFor(t, func() bool { return active.Load() == 0 })
	if p.Size() != 0 {
		t.Fatalf("Size after shutdown=%d", p.Size())
	}
}

func TestPoolResizeNegativeClamps(t *testing.T) {
	p := NewPool(func(stop <-chan struct{}, id int) { <-stop })
	p.Resize(-1)
	if p.Size() != 0 {
		t.Fatalf("Size=%d", p.Size())
	}
	p.Shutdown()
}

func TestPoolWorkerIDsAreSlots(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	p := NewPool(func(stop <-chan struct{}, id int) {
		mu.Lock()
		seen[id]++
		mu.Unlock()
		<-stop
	})
	p.Resize(3)
	p.Resize(1)
	p.Resize(3) // slots 1,2 restarted
	p.Shutdown()
	mu.Lock()
	defer mu.Unlock()
	if seen[0] != 1 || seen[1] != 2 || seen[2] != 2 {
		t.Fatalf("slot reuse wrong: %v", seen)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
