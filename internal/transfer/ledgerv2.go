package transfer

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"

	"automdt/internal/fsim"
	"automdt/internal/wire"
)

// Ledger schema 2 is the binary snapshot + append-only journal encoding
// that replaces full-document JSON rewrites for large sessions (the
// paper's 1000×1 GB / 4M-chunk scenario). A probe tick appends only the
// commits and invalidations since the last tick (Ledger.AppendSince);
// the snapshot is rewritten only at compaction. The two files are
// paired by a random generation id: a journal is replayed only over the
// snapshot carrying the same generation, so a crash anywhere between a
// compaction's snapshot rename and its journal truncate can never
// resurrect state the snapshot already folded in or apply records to
// the wrong base.
//
// Snapshot layout (integers big-endian, uvarints per encoding/binary):
//
//	0   4   magic 0xAD 'L' 'S' '2'
//	4   1   schema (2)
//	5   8   generation id
//	    -   uvarint session length + session bytes
//	    -   uvarint chunk bytes
//	    -   1 flag byte (bit0: per-chunk CRCs recorded)
//	    -   uvarint file count, then per file:
//	          uvarint name length + name bytes
//	          uvarint file size
//	          uvarint bitmap word count W (0 = nothing committed)
//	          W×8 bitmap words, LSB-first chunk order
//	          popcount(bitmap)×4 packed CRC-32C sums, ascending chunk
//	          index (only when the flag byte records sums and W > 0)
//	end 4   CRC-32C of every preceding byte
//
// Journal layout: a 12-byte header (magic 0xAD 'L' 'J' '2' + the
// paired snapshot's generation id) followed by self-delimiting records,
// each trailed by the CRC-32C of its own bytes:
//
//	commit:     0x01, uvarint file id, uvarint chunk index, 4-byte sum
//	invalidate: 0x02, uvarint file id, uvarint first chunk, uvarint count
//
// A torn or corrupt record fails its CRC and truncates replay at the
// last valid record — later bytes are never trusted.

// ledgerMagicV2 opens a schema-2 snapshot; the first byte is ≥ 0x80 so
// no JSON document (or file name) can collide with it.
var ledgerMagicV2 = [4]byte{0xAD, 'L', 'S', '2'}

// journalMagic opens a schema-2 journal.
var journalMagic = [4]byte{0xAD, 'L', 'J', '2'}

// journalHeaderLen is the journal's fixed header: magic + generation.
const journalHeaderLen = 12

const (
	jKindCommit     = 0x01
	jKindInvalidate = 0x02
)

// journalRecordMax bounds one encoded record: kind byte, up to three
// 5-byte uvarints, and the 4-byte sum and record CRC.
const journalRecordMax = 1 + 3*5 + 4 + 4

// LedgerSchema reports which persisted ledger schema data carries: 2
// for a binary snapshot, 1 for a JSON document, 0 for neither.
func LedgerSchema(data []byte) int {
	if len(data) >= 4 && [4]byte(data[0:4]) == ledgerMagicV2 {
		return 2
	}
	if len(data) > 0 && data[0] == '{' {
		return 1
	}
	return 0
}

// newGen returns a fresh random snapshot generation id.
func newGen() uint64 {
	var b [8]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		panic(fmt.Sprintf("transfer: ledger generation entropy: %v", err))
	}
	return binary.BigEndian.Uint64(b[:])
}

// EncodeV2 serializes the ledger as a schema-2 binary snapshot under a
// fresh generation id. Journal records appended after this call (via
// JournalHeader + AppendSince) extend this snapshot; any journal
// carrying an older generation is dead the moment the snapshot lands.
func (l *Ledger) EncodeV2() []byte {
	gen := newGen()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gen = gen

	est := 64 + len(l.SessionID)
	for _, f := range l.Files {
		est += 32 + len(f.Name) + 8*len(f.Bitmap)
		if l.HasSums {
			est += 4 * len(f.Sums)
		}
	}
	buf := make([]byte, 0, est)
	buf = append(buf, ledgerMagicV2[:]...)
	buf = append(buf, 2)
	buf = binary.BigEndian.AppendUint64(buf, gen)
	buf = binary.AppendUvarint(buf, uint64(len(l.SessionID)))
	buf = append(buf, l.SessionID...)
	buf = binary.AppendUvarint(buf, uint64(l.ChunkBytes))
	var flags byte
	if l.HasSums {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(l.Files)))
	for _, f := range l.Files {
		buf = binary.AppendUvarint(buf, uint64(len(f.Name)))
		buf = append(buf, f.Name...)
		buf = binary.AppendUvarint(buf, uint64(f.Size))
		buf = binary.AppendUvarint(buf, uint64(len(f.Bitmap)))
		for _, w := range f.Bitmap {
			buf = binary.BigEndian.AppendUint64(buf, w)
		}
		if l.HasSums && f.Bitmap != nil {
			n := l.chunks(f.Size)
			for i := 0; i < n; i++ {
				if bitSet(f.Bitmap, i) {
					buf = binary.BigEndian.AppendUint32(buf, f.Sums[i])
				}
			}
		}
	}
	return binary.BigEndian.AppendUint32(buf, wire.PayloadCRC(buf))
}

// JournalHeader returns the 12-byte header opening a journal that
// extends the most recent EncodeV2 snapshot of this ledger.
func (l *Ledger) JournalHeader() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := make([]byte, 0, journalHeaderLen)
	buf = append(buf, journalMagic[:]...)
	return binary.BigEndian.AppendUint64(buf, l.gen)
}

// appendJournalRecord encodes one ledger mutation, trailed by the
// CRC-32C of the record's own bytes so a torn append is detectable.
func appendJournalRecord(dst []byte, op ledgerOp) []byte {
	start := len(dst)
	if op.commit {
		dst = append(dst, jKindCommit)
		dst = binary.AppendUvarint(dst, uint64(op.file))
		dst = binary.AppendUvarint(dst, uint64(op.lo))
		dst = binary.BigEndian.AppendUint32(dst, op.sum)
	} else {
		dst = append(dst, jKindInvalidate)
		dst = binary.AppendUvarint(dst, uint64(op.file))
		dst = binary.AppendUvarint(dst, uint64(op.lo))
		dst = binary.AppendUvarint(dst, uint64(op.hi-op.lo))
	}
	return binary.BigEndian.AppendUint32(dst, wire.PayloadCRC(dst[start:]))
}

// cursor is a bounds-checked byte reader for the v2 decoders. Every
// read fails cleanly at the end of input so corrupt or truncated
// documents error instead of panicking.
type cursor struct {
	data []byte
	off  int
	err  error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = errors.New("transfer: truncated ledger document")
	}
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.data) || c.off+n < c.off {
		c.fail()
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) byte() byte {
	b := c.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) remaining() int { return len(c.data) - c.off }

// decodeLedgerV2 parses a schema-2 snapshot, recomputing committed byte
// counts from the bitmaps exactly like the JSON decoder. The trailing
// whole-document CRC is verified first, so a corrupt snapshot errors
// before any of its content is trusted.
func decodeLedgerV2(data []byte) (*Ledger, error) {
	if len(data) < 4+1+8+4 {
		return nil, errors.New("transfer: ledger snapshot too short")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if binary.BigEndian.Uint32(trailer) != wire.PayloadCRC(body) {
		return nil, errors.New("transfer: ledger snapshot CRC mismatch")
	}
	c := &cursor{data: body}
	c.bytes(4) // magic, already sniffed
	if schema := c.byte(); schema != 2 {
		return nil, fmt.Errorf("transfer: ledger schema %d (want 2)", schema)
	}
	gen := binary.BigEndian.Uint64(c.bytes(8))
	session := string(c.bytes(int(c.uvarint())))
	chunkBytes := c.uvarint()
	if c.err == nil && (chunkBytes == 0 || chunkBytes > 1<<40) {
		return nil, errors.New("transfer: ledger has no chunk size")
	}
	flags := c.byte()
	hasSums := flags&1 != 0
	nFiles := c.uvarint()
	if c.err == nil && nFiles > uint64(c.remaining()) {
		// Each file costs at least one byte; anything claiming more is
		// corrupt, and this bound caps the Files allocation.
		c.fail()
	}
	if c.err != nil {
		return nil, c.err
	}
	l := &Ledger{
		SessionID:  session,
		ChunkBytes: int(chunkBytes),
		HasSums:    hasSums,
		Files:      make([]*FileLedger, 0, nFiles),
		gen:        gen,
	}
	for fi := uint64(0); fi < nFiles; fi++ {
		f := &FileLedger{Name: string(c.bytes(int(c.uvarint())))}
		f.Size = int64(c.uvarint())
		if f.Size < 0 {
			c.fail()
		}
		words := c.uvarint()
		if c.err != nil {
			return nil, c.err
		}
		n := l.chunks(f.Size)
		if words > 0 {
			if words != uint64((n+63)/64) || int(words)*8 > c.remaining() {
				return nil, fmt.Errorf("transfer: ledger file %q has inconsistent geometry", f.Name)
			}
			f.Bitmap = make([]uint64, words)
			raw := c.bytes(int(words) * 8)
			for i := range f.Bitmap {
				f.Bitmap[i] = binary.BigEndian.Uint64(raw[i*8:])
			}
			if rem := n % 64; rem != 0 {
				f.Bitmap[words-1] &= (1 << rem) - 1
			}
			set := 0
			for _, w := range f.Bitmap {
				set += bits.OnesCount64(w)
			}
			if hasSums {
				if set*4 > c.remaining() {
					return nil, fmt.Errorf("transfer: ledger file %q has truncated sums", f.Name)
				}
				f.Sums = make([]uint32, n)
				raw := c.bytes(set * 4)
				j := 0
				for i := 0; i < n; i++ {
					if bitSet(f.Bitmap, i) {
						f.Sums[i] = binary.BigEndian.Uint32(raw[j*4:])
						j++
					}
				}
			}
			for i := 0; i < n; i++ {
				if bitSet(f.Bitmap, i) {
					f.Committed += l.chunkLen(f.Size, i)
				}
			}
		}
		l.Files = append(l.Files, f)
		l.committed += f.Committed
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.remaining() != 0 {
		return nil, errors.New("transfer: trailing bytes after ledger snapshot")
	}
	return l, nil
}

// LoadSessionLedger reads a session's persisted state from the store:
// the ledger document (either schema), plus — when the store keeps an
// append-only journal — the journal records folded in. This is the
// read side of the snapshot+journal layout; every consumer (resume,
// inspection tooling, tests) should load through it rather than
// decoding the document alone, which can be a whole compaction interval
// stale.
func LoadSessionLedger(store fsim.LedgerStore, session string) (*Ledger, error) {
	data, err := store.LoadLedger(session)
	if err != nil {
		return nil, err
	}
	l, err := DecodeLedger(data)
	if err != nil {
		return nil, err
	}
	if la, ok := store.(fsim.LedgerAppender); ok {
		if j, jerr := la.LoadJournal(session); jerr == nil {
			l.ReplayJournal(j)
		}
	}
	return l, nil
}

// ReplayJournal applies journal records to the ledger, which must be
// the decoded snapshot the journal extends: a journal carrying a
// different generation id (a compaction's leftovers, or no journal at
// all) is ignored entirely. Replay stops at the first torn, truncated,
// or corrupt record — everything after the last valid record is
// discarded, never guessed at — and re-applying records the snapshot
// already folded in is harmless (a duplicate commit or invalidation is
// a no-op). It returns how many records were applied.
func (l *Ledger) ReplayJournal(journal []byte) int {
	if len(journal) < journalHeaderLen || [4]byte(journal[0:4]) != journalMagic {
		return 0
	}
	l.mu.Lock()
	gen := l.gen
	l.mu.Unlock()
	if binary.BigEndian.Uint64(journal[4:12]) != gen {
		return 0
	}
	c := &cursor{data: journal, off: journalHeaderLen}
	cb := int64(l.ChunkBytes)
	applied := 0
	for c.remaining() > 0 {
		start := c.off
		kind := c.byte()
		file := c.uvarint()
		var lo, count uint64
		var sum uint32
		switch kind {
		case jKindCommit:
			lo = c.uvarint()
			raw := c.bytes(4)
			if c.err != nil {
				return applied
			}
			sum = binary.BigEndian.Uint32(raw)
		case jKindInvalidate:
			lo = c.uvarint()
			count = c.uvarint()
		default:
			return applied
		}
		crcRaw := c.bytes(4)
		if c.err != nil {
			return applied
		}
		if binary.BigEndian.Uint32(crcRaw) != wire.PayloadCRC(journal[start:c.off-4]) {
			return applied
		}
		if file > 1<<31 || lo > 1<<31 || count > 1<<31 {
			return applied // a forged record that slipped past its CRC
		}
		switch kind {
		case jKindCommit:
			off := int64(lo) * cb
			if int(file) < len(l.Files) && off < l.Files[file].Size {
				l.Commit(uint32(file), off, int(l.chunkLen(l.Files[file].Size, int(lo))), sum)
			}
		case jKindInvalidate:
			l.Invalidate(uint32(file), int64(lo)*cb, int64(count)*cb)
		}
		applied++
	}
	return applied
}
