package transfer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"automdt/internal/workload"
)

// Property: for any manifest and chunk size, the chunker emits
// non-overlapping, in-order chunks that exactly tile every file.
func TestQuickChunkerTilesManifest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var m workload.Manifest
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			m = append(m, workload.File{
				Name: "f",
				Size: int64(rng.Intn(1 << 16)), // includes zero-size files
			})
		}
		chunkSize := 1 + rng.Intn(8192)
		c := newChunker(m, chunkSize, nil)
		offsets := make([]int64, len(m))
		var chunks int64
		for {
			id, off, sz, ok := c.next()
			if !ok {
				break
			}
			chunks++
			if sz <= 0 || sz > chunkSize {
				return false
			}
			if off != offsets[id] { // strictly sequential per file
				return false
			}
			offsets[id] += int64(sz)
		}
		if chunks != c.total {
			return false
		}
		for i, f := range m {
			if offsets[i] != f.Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: staging accounting never goes negative and Used+Free == Cap
// whenever occupancy is within capacity.
func TestQuickStagingAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStaging(int64(1 + rng.Intn(1<<16)))
		var held []Chunk
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 {
				n := rng.Intn(2048)
				// Only Put when it cannot block forever in this
				// single-goroutine test: the guard mirrors Put's exact
				// block condition (buffer empty, or the chunk fits).
				// Note Free() is NOT a safe proxy — after an oversized
				// chunk was admitted into an empty buffer, Used() > Cap()
				// makes Free() zero yet a zero-length Put would still
				// block.
				if s.Used() == 0 || s.Used()+int64(n) <= s.Cap() {
					s.Put(Chunk{Data: make([]byte, n)})
				}
			} else if c, ok, _ := s.TryGet(); ok {
				held = append(held, c)
			}
			if s.Used() < 0 || s.Len() < 0 {
				return false
			}
			if s.Used() <= s.Cap() && s.Used()+s.Free() != s.Cap() {
				return false
			}
		}
		_ = held
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
