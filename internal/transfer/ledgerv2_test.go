package transfer

import (
	"bytes"
	"testing"

	"automdt/internal/fsim"
	"automdt/internal/workload"
)

// assertLedgersEqual compares two ledgers' full observable state:
// header, per-file bitmaps and committed bytes, per-chunk sums, and the
// running totals. It is the oracle for every persist/reload test.
func assertLedgersEqual(t *testing.T, want, got *Ledger) {
	t.Helper()
	if got.SessionID != want.SessionID || got.ChunkBytes != want.ChunkBytes || got.HasSums != want.HasSums {
		t.Fatalf("header mismatch: got {%s %d %v} want {%s %d %v}",
			got.SessionID, got.ChunkBytes, got.HasSums, want.SessionID, want.ChunkBytes, want.HasSums)
	}
	if got.CommittedBytes() != want.CommittedBytes() {
		t.Fatalf("CommittedBytes %d want %d", got.CommittedBytes(), want.CommittedBytes())
	}
	if got.CommittedChunks() != want.CommittedChunks() {
		t.Fatalf("CommittedChunks %d want %d", got.CommittedChunks(), want.CommittedChunks())
	}
	if len(got.Files) != len(want.Files) {
		t.Fatalf("%d files want %d", len(got.Files), len(want.Files))
	}
	for i, wf := range want.Files {
		gf := got.Files[i]
		if gf.Name != wf.Name || gf.Size != wf.Size || gf.Committed != wf.Committed {
			t.Fatalf("file %d: got {%s %d %d} want {%s %d %d}",
				i, gf.Name, gf.Size, gf.Committed, wf.Name, wf.Size, wf.Committed)
		}
		n := want.chunks(wf.Size)
		for c := 0; c < n; c++ {
			ws := wf.Bitmap != nil && bitSet(wf.Bitmap, c)
			gs := gf.Bitmap != nil && bitSet(gf.Bitmap, c)
			if ws != gs {
				t.Fatalf("file %d chunk %d: committed=%v want %v", i, c, gs, ws)
			}
			if ws && want.HasSums && gf.Sums[c] != wf.Sums[c] {
				t.Fatalf("file %d chunk %d: sum %#x want %#x", i, c, gf.Sums[c], wf.Sums[c])
			}
		}
	}
}

func TestLedgerV2EncodeDecodeRoundTrip(t *testing.T) {
	m := ledgerManifest()
	for _, sums := range []bool{true, false} {
		l := NewLedger("v2-rt", 64<<10, m, sums)
		l.Commit(0, 0, 64<<10, 0x11)
		l.Commit(0, 256<<10, 17, 0x22)
		l.Commit(1, 0, 64<<10, 0x33)
		l.Invalidate(0, 0, 1)
		data := l.EncodeV2()
		if LedgerSchema(data) != 2 {
			t.Fatalf("schema sniffed as %d", LedgerSchema(data))
		}
		got, err := DecodeLedger(data)
		if err != nil {
			t.Fatalf("sums=%v: %v", sums, err)
		}
		assertLedgersEqual(t, l, got)
		if err := got.Matches(m, 64<<10); err != nil {
			t.Fatal(err)
		}
	}
}

// Flipping any byte of a v2 snapshot must fail the whole-document CRC
// (or, for flips inside the trailer, the same check from the other
// side) — a corrupt snapshot never half-loads.
func TestLedgerV2DecodeRejectsCorruption(t *testing.T) {
	l := NewLedger("v2-corrupt", 32<<10, ledgerManifest(), true)
	l.Commit(0, 0, 32<<10, 0xAB)
	data := l.EncodeV2()
	for off := 0; off < len(data); off++ {
		mut := bytes.Clone(data)
		mut[off] ^= 0x01
		if _, err := DecodeLedger(mut); err == nil {
			t.Fatalf("flip at %d accepted", off)
		}
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeLedger(data[:cut]); err == nil {
			t.Fatalf("truncation to %d accepted", cut)
		}
	}
}

func TestJournalReplayReproducesState(t *testing.T) {
	m := ledgerManifest()
	live := NewLedger("v2-journal", 64<<10, m, true)
	snap := live.EncodeV2()
	journal := live.JournalHeader()

	live.Commit(0, 0, 64<<10, 1)
	live.Commit(0, 64<<10, 64<<10, 2)
	live.Commit(1, 0, 64<<10, 3)
	journal = append(journal, live.AppendSince()...)
	live.Invalidate(0, 64<<10, 64<<10)
	live.Commit(0, 256<<10, 17, 4)
	journal = append(journal, live.AppendSince()...)

	got, err := DecodeLedger(snap)
	if err != nil {
		t.Fatal(err)
	}
	if applied := got.ReplayJournal(journal); applied != 5 {
		t.Fatalf("applied %d records want 5 (4 commits + 1 invalidation)", applied)
	}
	got.AppendSince() // replay re-records ops; drop them like a compaction would
	live.AppendSince()
	assertLedgersEqual(t, live, got)
}

// A journal whose generation doesn't match the snapshot — compaction
// leftovers after a crash between the snapshot rename and the journal
// truncate — must be ignored wholesale, never replayed onto the wrong
// base.
func TestJournalReplayRejectsGenerationMismatch(t *testing.T) {
	m := ledgerManifest()
	l := NewLedger("v2-gen", 64<<10, m, true)
	l.EncodeV2()
	stale := l.JournalHeader()
	l.Commit(0, 0, 64<<10, 9)
	stale = append(stale, l.AppendSince()...)

	l.EncodeV2() // compaction: new generation
	fresh, err := DecodeLedger(l.EncodeV2())
	if err != nil {
		t.Fatal(err)
	}
	if applied := fresh.ReplayJournal(stale); applied != 0 {
		t.Fatalf("stale journal applied %d records", applied)
	}
	if applied := fresh.ReplayJournal(nil); applied != 0 {
		t.Fatal("nil journal applied records")
	}
}

// A torn tail — the partial record of a crash mid-append — must
// truncate replay at the last valid record, and corrupting any byte of
// the tail record must discard that record, never apply it.
func TestJournalReplayTruncatesTornTail(t *testing.T) {
	m := ledgerManifest()
	build := func() (*Ledger, []byte, []byte) {
		l := NewLedger("v2-torn", 64<<10, m, true)
		snap := l.EncodeV2()
		j := l.JournalHeader()
		l.Commit(0, 0, 64<<10, 1)
		l.Commit(0, 64<<10, 64<<10, 2)
		j = append(j, l.AppendSince()...)
		return l, snap, j
	}
	_, snap, journal := build()
	for cut := journalHeaderLen; cut < len(journal); cut++ {
		got, err := DecodeLedger(snap)
		if err != nil {
			t.Fatal(err)
		}
		applied := got.ReplayJournal(journal[:cut])
		if applied > 1 {
			t.Fatalf("cut %d: %d records from a torn journal", cut, applied)
		}
		// The second commit (chunk 1) lives in the tail record; a torn
		// tail must never resurrect it.
		if got.Done(0, 64<<10) {
			t.Fatalf("cut %d: torn record resurrected chunk 1", cut)
		}
	}
	for off := journalHeaderLen; off < len(journal); off++ {
		got, err := DecodeLedger(snap)
		if err != nil {
			t.Fatal(err)
		}
		mut := bytes.Clone(journal)
		mut[off] ^= 0x01
		got.ReplayJournal(mut)
		if got.CommittedChunks() > 2 {
			t.Fatalf("flip at %d: corrupt journal grew the ledger", off)
		}
	}
}

// LoadSessionLedger folds the persisted journal into the snapshot —
// through a real DirStore, exactly the files a crashed receiver leaves.
func TestLoadSessionLedgerFoldsJournal(t *testing.T) {
	dir := t.TempDir()
	ds, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const session = "fold-journal"
	m := workload.Manifest{{Name: "x.bin", Size: 256 << 10}}
	live := NewLedger(session, 64<<10, m, true)
	if err := ds.SaveLedger(session, live.EncodeV2()); err != nil {
		t.Fatal(err)
	}
	live.Commit(0, 0, 64<<10, 0xA)
	live.Commit(0, 128<<10, 64<<10, 0xB)
	recs := append(live.JournalHeader(), live.AppendSince()...)
	if err := ds.AppendLedger(session, recs); err != nil {
		t.Fatal(err)
	}

	got, err := LoadSessionLedger(ds, session)
	if err != nil {
		t.Fatal(err)
	}
	got.AppendSince()
	live.AppendSince()
	assertLedgersEqual(t, live, got)
}
