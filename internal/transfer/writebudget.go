package transfer

import (
	"sync"

	"automdt/internal/metrics"
	"automdt/internal/rate"
)

// writeArbiter divides an endpoint's write-stage budget
// (Config.WriteBudgetMbps) max-min fair across its active sessions. Each
// session owns a private token bucket; on every membership change the
// arbiter resets every bucket's rate to budget/n, so a greedy
// high-priority session with many write threads still cannot take more
// than its fair share of the shared disks — the per-session bucket, not
// thread count, is the binding constraint.
//
// This is deliberately receiver-side: the sender's optimizer tunes
// thread counts for its own goodput and knows nothing about sibling
// sessions, so fairness has to be enforced where the contention is.
type writeArbiter struct {
	budgetMbps float64
	chunk      int

	mu         sync.Mutex
	members    map[string]*rate.Limiter
	rebalances int64
}

// newWriteArbiter returns nil when no budget is configured — callers
// treat a nil arbiter as "unarbitrated".
func newWriteArbiter(budgetMbps float64, chunk int) *writeArbiter {
	if budgetMbps <= 0 {
		return nil
	}
	return &writeArbiter{
		budgetMbps: budgetMbps,
		chunk:      chunk,
		members:    make(map[string]*rate.Limiter),
	}
}

// join registers a session and returns its budget bucket, rebalancing
// every member to the new equal split.
func (a *writeArbiter) join(session string) *rate.Limiter {
	a.mu.Lock()
	defer a.mu.Unlock()
	lim, ok := a.members[session]
	if !ok {
		lim = rate.Unlimited()
		a.members[session] = lim
		a.rebalanceLocked()
	}
	return lim
}

// leave unregisters a session and redistributes its share to the
// remaining members.
func (a *writeArbiter) leave(session string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.members[session]; !ok {
		return
	}
	delete(a.members, session)
	a.rebalanceLocked()
}

// rebalanceLocked sets every member's bucket to budget/n with a 20 ms
// (or one-chunk) burst, mirroring newLimiter's shaping discipline.
// Caller holds mu.
func (a *writeArbiter) rebalanceLocked() {
	n := len(a.members)
	if n == 0 {
		return
	}
	a.rebalances++
	share := mbpsToBytesPerSec(a.budgetMbps / float64(n))
	burst := share * 0.02
	if burst < float64(a.chunk) {
		burst = float64(a.chunk)
	}
	for _, lim := range a.members {
		lim.SetRateBurst(share, burst)
	}
}

// shareMbps returns the current per-session share.
func (a *writeArbiter) shareMbps() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.members) == 0 {
		return a.budgetMbps
	}
	return a.budgetMbps / float64(len(a.members))
}

// snapshotInto appends the arbiter's gauges to an endpoint snapshot.
func (a *writeArbiter) snapshotInto(snap *metrics.Snapshot) {
	a.mu.Lock()
	n := len(a.members)
	rebalances := a.rebalances
	a.mu.Unlock()
	share := a.budgetMbps
	if n > 0 {
		share = a.budgetMbps / float64(n)
	}
	snap.Add("automdt_endpoint_write_budget_mbps", a.budgetMbps)
	snap.Add("automdt_endpoint_write_budget_sessions", float64(n))
	snap.Add("automdt_endpoint_write_budget_share_mbps", share)
	snap.Add("automdt_endpoint_write_budget_rebalances_total", float64(rebalances))
}
