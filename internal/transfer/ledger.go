package transfer

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"

	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

// ledgerSchema is the JSON (v1) ledger document schema. Schema 2 is the
// binary snapshot + append-only journal encoding in ledgerv2.go;
// DecodeLedger sniffs which one it was handed, so a receiver reads both
// and discards anything else rather than guessing.
const ledgerSchema = 1

// Ledger is a session's chunk ledger: per file, a bitmap of chunk ranges
// committed to the destination store, plus (when the session runs with
// checksums) the per-chunk CRC-32C sums that make committed ranges
// re-verifiable after a restart. It is the control-plane document behind
// resumable transfers — the receiver maintains and persists it, the
// Welcome handshake advertises it, and the sender plans only the ranges
// it does not cover. Safe for concurrent use.
type Ledger struct {
	mu sync.Mutex

	SessionID  string
	ChunkBytes int
	// HasSums reports whether per-chunk CRCs are recorded (checksummed
	// sessions). Without sums a resume trusts the bitmap after a size
	// check only.
	HasSums bool
	Files   []*FileLedger

	// committed is the running sum of per-file Committed bytes, kept by
	// Commit/Invalidate/ApplyWire so the write pool's completion check
	// is O(1) instead of an O(#files) scan per chunk.
	committed int64
	// pending records every mutation since the last AppendSince, in
	// order, so a persist tick can journal just the delta instead of
	// re-serializing the whole document.
	pending []ledgerOp
	// gen identifies the most recent v2 snapshot encoding of this ledger;
	// journal records are only replayed over the snapshot they extend.
	gen uint64
}

// ledgerOp is one recorded ledger mutation: a chunk commit (commit true,
// lo names the chunk, sum its CRC) or a chunk-range invalidation
// ([lo, hi)).
type ledgerOp struct {
	file   uint32
	lo, hi uint32
	sum    uint32
	commit bool
}

// FileLedger is one file's committed-chunk state.
type FileLedger struct {
	Name      string
	Size      int64
	Committed int64
	// Bitmap marks committed chunks, LSB-first; nil until first commit.
	Bitmap []uint64
	// Sums holds per-chunk CRC-32C values, valid where Bitmap is set.
	Sums []uint32
}

// NewLedger creates an empty ledger for the manifest.
func NewLedger(session string, chunkBytes int, m workload.Manifest, withSums bool) *Ledger {
	l := &Ledger{
		SessionID:  session,
		ChunkBytes: chunkBytes,
		HasSums:    withSums,
		Files:      make([]*FileLedger, len(m)),
	}
	for i, f := range m {
		l.Files[i] = &FileLedger{Name: f.Name, Size: f.Size}
	}
	return l
}

// NewSessionID returns a fresh random session identifier, valid for any
// fsim.LedgerStore backend.
func NewSessionID() string {
	var b [8]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		panic(fmt.Sprintf("transfer: session id entropy: %v", err))
	}
	return "s-" + hex.EncodeToString(b[:])
}

// chunks returns how many chunks tile size bytes.
func (l *Ledger) chunks(size int64) int {
	cb := int64(l.ChunkBytes)
	return int((size + cb - 1) / cb)
}

// chunkLen returns the payload length of chunk idx in a file of the
// given size.
func (l *Ledger) chunkLen(size int64, idx int) int64 {
	cb := int64(l.ChunkBytes)
	n := size - int64(idx)*cb
	if n > cb {
		n = cb
	}
	return n
}

// ensure sizes f's bitmap and sums lazily.
func (l *Ledger) ensure(f *FileLedger) {
	if f.Bitmap != nil {
		return
	}
	n := l.chunks(f.Size)
	f.Bitmap = make([]uint64, (n+63)/64)
	if l.HasSums {
		f.Sums = make([]uint32, n)
	}
}

func bitSet(bm []uint64, i int) bool { return bm[i/64]&(1<<(i%64)) != 0 }

// Done reports whether the chunk at (fileID, off) is committed.
func (l *Ledger) Done(fileID uint32, off int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(fileID) >= len(l.Files) {
		return false
	}
	f := l.Files[fileID]
	if f.Bitmap == nil || off < 0 || off >= f.Size {
		return false
	}
	return bitSet(f.Bitmap, int(off/int64(l.ChunkBytes)))
}

// Commit marks the chunk at (fileID, off) of length n committed with the
// given payload CRC. It reports whether the chunk was newly committed
// (false for duplicates and out-of-range requests), so duplicate frames
// are never double-counted.
func (l *Ledger) Commit(fileID uint32, off int64, n int, sum uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(fileID) >= len(l.Files) {
		return false
	}
	f := l.Files[fileID]
	cb := int64(l.ChunkBytes)
	if off < 0 || off%cb != 0 || off >= f.Size {
		return false
	}
	idx := int(off / cb)
	if int64(n) != l.chunkLen(f.Size, idx) {
		return false // partial or misaligned write is not a chunk commit
	}
	l.ensure(f)
	if bitSet(f.Bitmap, idx) {
		return false
	}
	f.Bitmap[idx/64] |= 1 << (idx % 64)
	if l.HasSums {
		f.Sums[idx] = sum
	}
	f.Committed += int64(n)
	l.committed += int64(n)
	l.pending = append(l.pending, ledgerOp{file: fileID, lo: uint32(idx), sum: sum, commit: true})
	return true
}

// Invalidate clears every committed chunk overlapping [off, off+n),
// returning how many chunks were cleared. The cleared ranges will be
// re-planned by the next resume.
func (l *Ledger) Invalidate(fileID uint32, off, n int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(fileID) >= len(l.Files) || n <= 0 {
		return 0
	}
	f := l.Files[fileID]
	if f.Bitmap == nil {
		return 0
	}
	cb := int64(l.ChunkBytes)
	lo := int(off / cb)
	hi := l.chunks(min(off+n, f.Size))
	cleared := 0
	for i := max(lo, 0); i < hi; i++ {
		if bitSet(f.Bitmap, i) {
			f.Bitmap[i/64] &^= 1 << (i % 64)
			clen := l.chunkLen(f.Size, i)
			f.Committed -= clen
			l.committed -= clen
			cleared++
		}
	}
	if cleared > 0 {
		l.pending = append(l.pending, ledgerOp{file: fileID, lo: uint32(max(lo, 0)), hi: uint32(hi)})
	}
	return cleared
}

// InvalidateFile clears a whole file's committed state, returning how
// many chunks were cleared.
func (l *Ledger) InvalidateFile(fileID uint32) int {
	if int(fileID) >= len(l.Files) {
		return 0
	}
	return l.Invalidate(fileID, 0, l.Files[fileID].Size)
}

// CommittedBytes returns the committed payload volume across all files.
func (l *Ledger) CommittedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed
}

// FileCommitted returns one file's committed payload bytes.
func (l *Ledger) FileCommitted(fileID uint32) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(fileID) >= len(l.Files) {
		return 0
	}
	return l.Files[fileID].Committed
}

// FileComplete reports whether every chunk of the file is committed.
func (l *Ledger) FileComplete(fileID uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(fileID) >= len(l.Files) {
		return false
	}
	f := l.Files[fileID]
	return f.Committed == f.Size
}

// FileCRC combines the per-chunk sums of a complete file, in order, into
// the whole-file CRC-32C. ok is false when sums are not recorded or the
// file is incomplete. The sums are copied out under the lock and folded
// outside it, so a long fold never stalls concurrent commits.
func (l *Ledger) FileCRC(fileID uint32) (crc uint32, ok bool) {
	l.mu.Lock()
	if !l.HasSums || int(fileID) >= len(l.Files) {
		l.mu.Unlock()
		return 0, false
	}
	f := l.Files[fileID]
	if f.Committed != f.Size {
		l.mu.Unlock()
		return 0, false
	}
	sums := append([]uint32(nil), f.Sums[:l.chunks(f.Size)]...)
	size := f.Size
	l.mu.Unlock()
	return wire.FoldChunkCRCs(sums, int64(l.ChunkBytes), size), true
}

// MatchesManifest reports whether the ledger describes the same dataset
// (names and sizes), the precondition for resuming from it. Chunk
// geometry is the ledger's own: a resumed session adopts the persisted
// ChunkBytes, so a sender config change cannot orphan committed ranges.
func (l *Ledger) MatchesManifest(m workload.Manifest) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.Files) != len(m) {
		return fmt.Errorf("transfer: ledger has %d files, manifest %d", len(l.Files), len(m))
	}
	for i, f := range m {
		if l.Files[i].Name != f.Name || l.Files[i].Size != f.Size {
			return fmt.Errorf("transfer: ledger file %d is %s/%d, manifest %s/%d",
				i, l.Files[i].Name, l.Files[i].Size, f.Name, f.Size)
		}
	}
	return nil
}

// Matches reports whether the ledger describes the same dataset and
// chunk geometry.
func (l *Ledger) Matches(m workload.Manifest, chunkBytes int) error {
	if l.ChunkBytes != chunkBytes {
		return fmt.Errorf("transfer: ledger chunk size %d != session %d", l.ChunkBytes, chunkBytes)
	}
	return l.MatchesManifest(m)
}

// WireStates exports the committed state for the Welcome handshake,
// omitting files with nothing committed.
func (l *Ledger) WireStates() []wire.FileState {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []wire.FileState
	for i, f := range l.Files {
		if f.Committed == 0 {
			continue
		}
		out = append(out, wire.FileState{
			FileID:         uint32(i),
			CommittedBytes: f.Committed,
			Bitmap:         append([]uint64(nil), f.Bitmap...),
		})
	}
	return out
}

// ApplyWire imports advertised committed state into an empty ledger (the
// sender's planning view; sums are unknown on this side).
func (l *Ledger) ApplyWire(states []wire.FileState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, st := range states {
		if int(st.FileID) >= len(l.Files) {
			continue
		}
		f := l.Files[st.FileID]
		n := l.chunks(f.Size)
		words := (n + 63) / 64
		if len(st.Bitmap) != words {
			continue // geometry mismatch; treat as nothing committed
		}
		f.Bitmap = append([]uint64(nil), st.Bitmap...)
		// Mask tail bits beyond the last chunk, then recount from the
		// bitmap rather than trusting the advertised byte total.
		if rem := n % 64; rem != 0 && words > 0 {
			f.Bitmap[words-1] &= (1 << rem) - 1
		}
		l.committed -= f.Committed
		f.Committed = 0
		for i := 0; i < n; i++ {
			if bitSet(f.Bitmap, i) {
				f.Committed += l.chunkLen(f.Size, i)
			}
		}
		l.committed += f.Committed
	}
}

// CommittedChunks counts committed chunks across all files.
func (l *Ledger) CommittedChunks() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, f := range l.Files {
		for _, w := range f.Bitmap {
			n += int64(bits.OnesCount64(w))
		}
	}
	return n
}

// ledgerDoc is the persisted JSON shape.
type ledgerDoc struct {
	Schema     int           `json:"schema"`
	Session    string        `json:"session"`
	ChunkBytes int           `json:"chunk_bytes"`
	HasSums    bool          `json:"has_sums"`
	Files      []ledgerEntry `json:"files"`
}

type ledgerEntry struct {
	Name   string   `json:"name"`
	Size   int64    `json:"size"`
	Bitmap []uint64 `json:"bitmap,omitempty"`
	Sums   []uint32 `json:"sums,omitempty"`
}

// Encode serializes the ledger for an fsim.LedgerStore.
func (l *Ledger) Encode() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	doc := ledgerDoc{
		Schema:     ledgerSchema,
		Session:    l.SessionID,
		ChunkBytes: l.ChunkBytes,
		HasSums:    l.HasSums,
		Files:      make([]ledgerEntry, len(l.Files)),
	}
	for i, f := range l.Files {
		doc.Files[i] = ledgerEntry{Name: f.Name, Size: f.Size, Bitmap: f.Bitmap, Sums: f.Sums}
	}
	return json.Marshal(doc)
}

// DecodeLedger parses a persisted ledger document — sniffing the
// schema, so both the JSON v1 document and the binary v2 snapshot load
// — recomputing committed byte counts from the bitmaps.
func DecodeLedger(data []byte) (*Ledger, error) {
	if LedgerSchema(data) == 2 {
		return decodeLedgerV2(data)
	}
	var doc ledgerDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("transfer: decode ledger: %w", err)
	}
	if doc.Schema != ledgerSchema {
		return nil, fmt.Errorf("transfer: ledger schema %d (want %d)", doc.Schema, ledgerSchema)
	}
	if doc.ChunkBytes <= 0 {
		return nil, errors.New("transfer: ledger has no chunk size")
	}
	l := &Ledger{
		SessionID:  doc.Session,
		ChunkBytes: doc.ChunkBytes,
		HasSums:    doc.HasSums,
		Files:      make([]*FileLedger, len(doc.Files)),
	}
	for i, e := range doc.Files {
		f := &FileLedger{Name: e.Name, Size: e.Size, Bitmap: e.Bitmap, Sums: e.Sums}
		n := l.chunks(f.Size)
		if f.Bitmap != nil {
			if len(f.Bitmap) != (n+63)/64 || (doc.HasSums && len(f.Sums) != n) {
				return nil, fmt.Errorf("transfer: ledger file %q has inconsistent geometry", e.Name)
			}
			if rem := n % 64; rem != 0 {
				f.Bitmap[len(f.Bitmap)-1] &= (1 << rem) - 1
			}
			for c := 0; c < n; c++ {
				if bitSet(f.Bitmap, c) {
					f.Committed += l.chunkLen(f.Size, c)
				}
			}
		}
		l.Files[i] = f
		l.committed += f.Committed
	}
	return l, nil
}

// AppendSince drains the mutations recorded since the last call,
// encoded as v2 journal records ready to append to the session journal
// (persist-on-tick support). It returns nil when nothing changed. The
// records extend the ledger's most recent v2 snapshot; replaying them
// over that snapshot — or over any later one, since re-applying an
// in-order prefix is idempotent — reproduces the live state.
//
// Encoding happens under the lock (a tick's worth of records costs
// microseconds) so the pending slice's capacity can be reused: the
// commit hot path then never re-grows it from nil between ticks.
func (l *Ledger) AppendSince() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) == 0 {
		return nil
	}
	buf := make([]byte, 0, journalRecordMax*len(l.pending))
	for _, op := range l.pending {
		buf = appendJournalRecord(buf, op)
	}
	if cap(l.pending) > 1<<16 {
		// A journal replay can momentarily record millions of ops;
		// don't pin that much backing array for the session's lifetime.
		l.pending = nil
	} else {
		l.pending = l.pending[:0]
	}
	return buf
}

// VerifyAgainst re-checks every committed range against the destination
// store and clears what no longer holds: a missing or resized file loses
// its whole ledger entry, and (when sums are recorded) each committed
// chunk is read back and its CRC compared, so a corrupt region
// invalidates just that ledger range. It returns the surviving committed
// byte count and the number of chunk ranges cleared.
func (l *Ledger) VerifyAgainst(store fsim.Store) (kept int64, cleared int) {
	type span struct {
		fileID uint32
		name   string
		size   int64
	}
	l.mu.Lock()
	files := make([]span, len(l.Files))
	for i, f := range l.Files {
		files[i] = span{uint32(i), f.Name, f.Size}
	}
	hasSums := l.HasSums
	l.mu.Unlock()

	st, canStat := store.(fsim.Stater)
	buf := make([]byte, l.ChunkBytes)
	for _, f := range files {
		if l.FileCommitted(f.fileID) == 0 {
			continue
		}
		if canStat {
			size, err := st.Stat(f.name)
			if err != nil || size != f.size {
				cleared += l.InvalidateFile(f.fileID)
				continue
			}
		}
		if !hasSums {
			continue // size check is all we can do
		}
		r, err := store.Open(f.name, f.size)
		if err != nil {
			cleared += l.InvalidateFile(f.fileID)
			continue
		}
		n := l.chunks(f.size)
		for idx := 0; idx < n; idx++ {
			off := int64(idx) * int64(l.ChunkBytes)
			if !l.Done(f.fileID, off) {
				continue
			}
			clen := l.chunkLen(f.size, idx)
			chunk := buf[:clen]
			if _, err := r.ReadAt(chunk, off); err != nil && err != io.EOF {
				cleared += l.Invalidate(f.fileID, off, clen)
				continue
			}
			l.mu.Lock()
			want := l.Files[f.fileID].Sums[idx]
			l.mu.Unlock()
			if wire.PayloadCRC(chunk) != want {
				cleared += l.Invalidate(f.fileID, off, clen)
			}
		}
		r.Close()
	}
	if cleared > 0 {
		metrics.ResumeReplayedAdd(int64(cleared))
	}
	return l.CommittedBytes(), cleared
}
