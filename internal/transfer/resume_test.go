package transfer

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"automdt/internal/fsim"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

// removeStoreFile deletes a destination file out from under a ledger.
func removeStoreFile(t *testing.T, root, name string) error {
	t.Helper()
	return os.Remove(filepath.Join(root, name))
}

// corruptStoreFile flips one byte of a destination file.
func corruptStoreFile(t *testing.T, root, name string, off int64) {
	t.Helper()
	p := filepath.Join(root, name)
	f, err := os.OpenFile(p, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// loadSessionLedger reads the persisted ledger (snapshot + journal)
// straight from the store.
func loadSessionLedger(t *testing.T, ls fsim.LedgerStore, session string) *Ledger {
	t.Helper()
	l, err := LoadSessionLedger(ls, session)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// runReceiver starts a single-session receiver on loopback and returns
// it with its ServeN error channel.
func runReceiver(t *testing.T, ctx context.Context, cfg Config, dst fsim.Store) (*Receiver, chan error) {
	t.Helper()
	recv := NewReceiver(cfg, dst)
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- recv.ServeN(ctx, 1) }()
	return recv, errCh
}

// The tentpole acceptance test: a transfer killed mid-flight resumes
// from the persisted ledger against the same DirStore and completes
// while re-sending less than 10% of the bytes the first attempt had
// already committed — counted on the wire, not inferred.
func TestResumeAfterReceiverKill(t *testing.T) {
	dir := t.TempDir()
	const session = "e2e-kill-resume"
	m := workload.LargeFiles(4, 2<<20) // 8 MiB
	total := m.TotalBytes()
	src := fsim.NewSyntheticStore()

	cfg := testConfig()
	cfg.SessionID = session
	cfg.ProbeInterval = 25 * time.Millisecond // frequent ledger persistence
	cfg.InitialThreads = 4
	cfg.Shaping.LinkMbps = 200 // ~25 MB/s so the kill lands mid-flight

	// Attempt 1: kill the receiver once the ledger shows real progress.
	dst1, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rctx, rcancel := context.WithCancel(context.Background())
	recv, recvErr := runReceiver(t, rctx, cfg, dst1)
	go func() {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if l, err := LoadSessionLedger(dst1, session); err == nil && l.CommittedBytes() > total/4 {
				rcancel() // kill the receiver process mid-transfer
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		rcancel()
	}()
	send := &Sender{Cfg: cfg, Store: src, Manifest: m}
	ctx1, cancel1 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel1()
	if _, err := send.Run(ctx1, recv.DataAddr(), recv.CtrlAddr()); err == nil {
		t.Fatal("sender survived receiver death")
	}
	<-recvErr
	rcancel()

	dstAfterKill, err := fsim.NewDirStore(dir) // fresh store value = fresh process
	if err != nil {
		t.Fatal(err)
	}
	committed1 := loadSessionLedger(t, dstAfterKill, session).CommittedBytes()
	if committed1 <= 0 || committed1 >= total {
		t.Fatalf("first attempt committed %d of %d; kill did not land mid-flight", committed1, total)
	}

	// Attempt 2: restart against the same directory, same session, no
	// shaping — the sender must plan only the missing ranges.
	cfg2 := cfg
	cfg2.Shaping = Shaping{}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	recv2, recvErr2 := runReceiver(t, ctx2, cfg2, dstAfterKill)
	send2 := &Sender{Cfg: cfg2, Store: src, Manifest: m}
	res, err := send2.Run(ctx2, recv2.DataAddr(), recv2.CtrlAddr())
	if err != nil {
		t.Fatal(err)
	}
	if rerr := <-recvErr2; rerr != nil {
		t.Fatal(rerr)
	}

	if !res.Resumed || res.SessionID != session {
		t.Fatalf("second run did not resume: %+v", res)
	}
	if res.SkippedBytes != committed1 {
		t.Fatalf("skipped %d, ledger had %d committed", res.SkippedBytes, committed1)
	}
	missing := total - committed1
	// Acceptance: re-sent bytes (wire bytes beyond the missing ranges)
	// stay under 10% of what was already committed.
	if resent := res.WireBytes - missing; resent < 0 || resent > committed1/10 {
		t.Fatalf("wire bytes %d for %d missing: re-sent %d > 10%% of committed %d",
			res.WireBytes, missing, resent, committed1)
	}

	// The session completed: ledger gone, every byte on disk correct.
	if _, err := dstAfterKill.LoadLedger(session); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ledger should be removed after completion, got %v", err)
	}
	for _, f := range m {
		got, err := os.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, f.Size)
		fsim.FillContent(f.Name, 0, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s corrupt after resume", f.Name)
		}
	}
}

// A corrupt committed region must be caught by resume-time read-back
// verification and invalidate just that ledger range: the second run
// re-sends the corrupted chunk (plus the missing tail) and produces a
// correct file.
func TestResumeRevalidatesCorruptRegion(t *testing.T) {
	dir := t.TempDir()
	const session = "e2e-corrupt-region"
	m := workload.LargeFiles(2, 1<<20)
	src := fsim.NewSyntheticStore()

	cfg := testConfig()
	cfg.SessionID = session
	cfg.ProbeInterval = 25 * time.Millisecond
	cfg.Shaping.LinkMbps = 100
	// The kill poller waits for the third chunk of file 0 to commit, so
	// commits must land chunk by chunk; kio's coalesced frames would
	// commit whole runs at once and race the window shut.
	cfg.KioMode = "off"

	dst1, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rctx, rcancel := context.WithCancel(context.Background())
	recv, recvErr := runReceiver(t, rctx, cfg, dst1)
	go func() {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if l, err := LoadSessionLedger(dst1, session); err == nil && l.FileCommitted(0) >= 3*int64(cfg.ChunkBytes) {
				rcancel()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		rcancel()
	}()
	send := &Sender{Cfg: cfg, Store: src, Manifest: m}
	ctx1, cancel1 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel1()
	if _, err := send.Run(ctx1, recv.DataAddr(), recv.CtrlAddr()); err == nil {
		t.Fatal("sender survived receiver death")
	}
	<-recvErr

	dst2, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	before := loadSessionLedger(t, dst2, session)
	if !before.Done(0, 0) {
		t.Skip("first chunk not committed before the kill; nothing to corrupt")
	}
	// Flip a byte inside the first committed chunk of file 0.
	corruptStoreFile(t, dir, m[0].Name, 100)

	cfg2 := cfg
	cfg2.Shaping = Shaping{}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	recv2, recvErr2 := runReceiver(t, ctx2, cfg2, dst2)
	send2 := &Sender{Cfg: cfg2, Store: src, Manifest: m}
	res, err := send2.Run(ctx2, recv2.DataAddr(), recv2.CtrlAddr())
	if err != nil {
		t.Fatal(err)
	}
	if rerr := <-recvErr2; rerr != nil {
		t.Fatal(rerr)
	}
	// The corrupted chunk must NOT have been skipped: skipped < committed.
	if res.SkippedBytes >= before.CommittedBytes() {
		t.Fatalf("corrupt chunk was trusted: skipped %d of %d committed",
			res.SkippedBytes, before.CommittedBytes())
	}
	for _, f := range m {
		got, err := os.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, f.Size)
		fsim.FillContent(f.Name, 0, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s corrupt after resumed repair", f.Name)
		}
	}
}

// A fully committed session resumed again must complete instantly with
// zero bytes on the wire.
func TestResumeAlreadyCompleteSendsNothing(t *testing.T) {
	dir := t.TempDir()
	const session = "e2e-noop-resume"
	m := workload.LargeFiles(2, 256<<10)
	src := fsim.NewSyntheticStore()
	cfg := testConfig()
	cfg.SessionID = session

	dst, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Loopback(context.Background(), cfg, m, src, dst, nil); err != nil {
		t.Fatal(err)
	}
	// Completion removes the ledger, so a re-run is a fresh full
	// transfer. Simulate a crash that lost only the final cleanup by
	// rebuilding the ledger as fully committed.
	l := NewLedger(session, cfg.ChunkBytes, m, true)
	buf := make([]byte, cfg.ChunkBytes)
	for fi, f := range m {
		for off := int64(0); off < f.Size; off += int64(cfg.ChunkBytes) {
			end := off + int64(cfg.ChunkBytes)
			if end > f.Size {
				end = f.Size
			}
			chunk := buf[:end-off]
			fsim.FillContent(f.Name, off, chunk)
			l.Commit(uint32(fi), off, int(end-off), wire.PayloadCRC(chunk))
		}
	}
	data, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.SaveLedger(session, data); err != nil {
		t.Fatal(err)
	}

	res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.WireBytes != 0 || res.SkippedBytes != m.TotalBytes() {
		t.Fatalf("no-op resume sent data: %+v", res)
	}
}

// A persisted ledger pins the session's chunk geometry: resuming with a
// different configured ChunkBytes must still honour the committed
// ranges (planned at the ledger's chunk size) instead of starting over.
func TestResumeSurvivesChunkSizeChange(t *testing.T) {
	dir := t.TempDir()
	const session = "e2e-chunk-pin"
	m := workload.LargeFiles(2, 512<<10)
	src := fsim.NewSyntheticStore()
	cfg := testConfig() // 64 KiB chunks
	cfg.SessionID = session

	dst, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Persist a half-committed ledger at the original 64 KiB geometry.
	l := NewLedger(session, cfg.ChunkBytes, m, true)
	buf := make([]byte, cfg.ChunkBytes)
	w, err := dst.Create(m[0].Name, m[0].Size)
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < m[0].Size; off += int64(cfg.ChunkBytes) {
		chunk := buf[:min(int64(cfg.ChunkBytes), m[0].Size-off)]
		fsim.FillContent(m[0].Name, off, chunk)
		if _, err := w.WriteAt(chunk, off); err != nil {
			t.Fatal(err)
		}
		l.Commit(0, off, len(chunk), wire.PayloadCRC(chunk))
	}
	w.Close()
	data, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.SaveLedger(session, data); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.ChunkBytes = 128 << 10 // sender config changed between attempts
	res, err := Loopback(context.Background(), cfg2, m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.SkippedBytes != m[0].Size {
		t.Fatalf("chunk-size change lost the ledger: %+v", res)
	}
	if res.WireBytes != m[1].Size {
		t.Fatalf("wire bytes %d want %d (only the uncommitted file)", res.WireBytes, m[1].Size)
	}
}

// Cancellation at any phase — including between the control handshake
// and the data dial — must return every arena lease and leave the
// sender's goroutines unblocked (the aborted Loopback returns at all).
func TestLoopbackCancelReleasesLeases(t *testing.T) {
	m := workload.LargeFiles(4, 2<<20)
	for _, delay := range []time.Duration{0, 5 * time.Millisecond, 60 * time.Millisecond} {
		arena := NewArena(256 << 20)
		cfg := testConfig()
		cfg.Arena = arena
		cfg.Shaping.LinkMbps = 80 // slow enough that cancellation lands mid-flight
		src, dst := fsim.NewSyntheticStore(), fsim.NewSyntheticStore()
		ctx, cancel := context.WithCancel(context.Background())
		if delay == 0 {
			cancel()
		} else {
			time.AfterFunc(delay, cancel)
		}
		_, err := Loopback(ctx, cfg, m, src, dst, nil)
		cancel()
		if err == nil {
			t.Fatalf("delay %v: cancelled transfer succeeded", delay)
		}
		if st := arena.Stats(); st.InUseBytes != 0 {
			t.Fatalf("delay %v: %d arena bytes still leased after aborted Loopback (stats %+v)",
				delay, st.InUseBytes, st)
		}
	}
}
