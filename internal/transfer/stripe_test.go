package transfer

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"automdt/internal/fsim"
	"automdt/internal/workload"
)

// Conns=1 is the degenerate striping case: one slot, one socket, every
// chunk in rotation order — byte-identical behaviour to the unstriped
// default. Both runs must verify content and put exactly the manifest's
// payload on the wire, with nothing re-sent.
func TestStripedOneConnByteParity(t *testing.T) {
	m := workload.Mixed(12<<20, 3<<10, 700<<10, rand.New(rand.NewSource(42)))
	run := func(conns int) *Result {
		cfg := testConfig()
		cfg.Conns = conns
		src := fsim.NewSyntheticStore()
		dst := fsim.NewSyntheticStore()
		dst.Verify = true
		res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
		if err != nil {
			t.Fatalf("conns=%d: %v", conns, err)
		}
		return res
	}
	plain := run(0)
	one := run(1)
	if plain.Bytes != m.TotalBytes() || one.Bytes != plain.Bytes {
		t.Fatalf("payload bytes: plain=%d one-conn=%d want %d", plain.Bytes, one.Bytes, m.TotalBytes())
	}
	if plain.WireBytes != one.WireBytes {
		t.Fatalf("wire bytes differ: plain=%d one-conn=%d", plain.WireBytes, one.WireBytes)
	}
	if one.WireBytes != m.TotalBytes() {
		t.Fatalf("one-conn wire bytes %d, want exactly the manifest's %d", one.WireBytes, m.TotalBytes())
	}
	if plain.ResentBytes != 0 || one.ResentBytes != 0 {
		t.Fatalf("healthy runs re-sent bytes: plain=%d one-conn=%d", plain.ResentBytes, one.ResentBytes)
	}
}

// A 4-way striped session dials four preambled data connections, fans
// them into one receiver, and still verifies content end to end with no
// recovery traffic.
func TestStripedMultiConnTransfer(t *testing.T) {
	cfg := testConfig()
	cfg.Conns = 4
	var mu sync.Mutex
	seen := map[int]bool{}
	cfg.Hooks.OnDataConn = func(index int, conn net.Conn) {
		mu.Lock()
		seen[index] = true
		mu.Unlock()
	}
	m := workload.LargeFiles(8, 2<<20)
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	dst.Verify = true
	res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != m.TotalBytes() {
		t.Fatalf("transferred %d bytes want %d", res.Bytes, m.TotalBytes())
	}
	if res.ResentBytes != 0 {
		t.Fatalf("healthy striped run re-sent %d bytes", res.ResentBytes)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4 {
		t.Fatalf("dialed %d distinct data connections, want 4 (%v)", len(seen), seen)
	}
}

// Killing one of four striped connections mid-transfer must not fail the
// session: the surviving connections drain, recovery pulls the
// receiver's ledger, and only the dead connection's uncommitted in-flight
// chunks are re-sent — under 10% of the payload, not a full restart.
func TestStripedConnFailureRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.Conns = 4
	// Slow the data plane enough that the kill lands mid-flight.
	cfg.Shaping.NetPerStreamMbps = 200

	var mu sync.Mutex
	var victim net.Conn
	cfg.Hooks.OnDataConn = func(index int, conn net.Conn) {
		mu.Lock()
		if index == 1 && victim == nil {
			victim = conn
		}
		mu.Unlock()
	}
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.After(10 * time.Second)
		for {
			mu.Lock()
			c := victim
			mu.Unlock()
			if c != nil {
				time.Sleep(30 * time.Millisecond) // let some frames flow first
				c.Close()
				return
			}
			select {
			case <-deadline:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	m := workload.LargeFiles(16, 2<<20) // 32 MB
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	dst.Verify = true
	res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	mu.Lock()
	hadVictim := victim != nil
	mu.Unlock()
	if !hadVictim {
		t.Fatal("connection 1 was never dialed; kill did not happen")
	}
	if res.Bytes != m.TotalBytes() {
		t.Fatalf("transferred %d bytes want %d", res.Bytes, m.TotalBytes())
	}
	if res.ResentBytes >= res.Bytes/10 {
		t.Fatalf("recovery re-sent %d of %d bytes (≥10%%): not a targeted re-plan", res.ResentBytes, res.Bytes)
	}
	if res.WireBytes != res.Bytes+res.ResentBytes {
		t.Fatalf("wire bytes %d ≠ payload %d + resent %d", res.WireBytes, res.Bytes, res.ResentBytes)
	}
}

// When every data connection dies and cannot be re-dialed, the sender
// fails the attempt instead of hanging.
func TestStripedAllConnsDeadFails(t *testing.T) {
	cs := newConnSet(2, func(int) (net.Conn, error) { return nil, context.DeadlineExceeded }, nil)
	c := cs.pick(-1)
	if c == nil {
		t.Fatal("fresh set has no slot")
	}
	cs.markDead(c)
	c2 := cs.pick(-1)
	if c2 == nil || c2 == c {
		t.Fatalf("pick after one death returned %v", c2)
	}
	cs.markDead(c2)
	if got := cs.pick(-1); got != nil {
		t.Fatalf("pick with every slot dead returned %v, want nil", got)
	}
}

// Shrinking the live prefix retires slots from rotation; growing it
// exposes them again without redialing the survivors.
func TestConnSetResize(t *testing.T) {
	cs := newConnSet(3, func(int) (net.Conn, error) { return nil, nil }, nil)
	picked := map[int]bool{}
	for i := 0; i < 6; i++ {
		picked[cs.pick(-1).index] = true
	}
	if len(picked) != 3 {
		t.Fatalf("3-wide rotation hit %d slots", len(picked))
	}
	cs.setWant(1)
	for i := 0; i < 4; i++ {
		if idx := cs.pick(-1).index; idx != 0 {
			t.Fatalf("1-wide rotation picked slot %d", idx)
		}
	}
	cs.setWant(4)
	picked = map[int]bool{}
	for i := 0; i < 8; i++ {
		picked[cs.pick(-1).index] = true
	}
	if len(picked) != 4 {
		t.Fatalf("4-wide rotation hit %d slots", len(picked))
	}
}

// A worker's hint pins it to one slot while that slot lives, and falls
// back to live slots once it dies.
func TestConnSetWorkerAffinity(t *testing.T) {
	cs := newConnSet(3, func(int) (net.Conn, error) { return nil, nil }, nil)
	for i := 0; i < 5; i++ {
		if idx := cs.pick(7).index; idx != 7%3 {
			t.Fatalf("hint 7 picked slot %d, want %d", idx, 7%3)
		}
	}
	cs.markDead(cs.pick(7))
	for i := 0; i < 4; i++ {
		c := cs.pick(7)
		if c == nil || c.index == 7%3 {
			t.Fatalf("dead hinted slot still picked: %v", c)
		}
	}
}
