package transfer

// Kernel-assisted fast-path tests: the kio and portable data planes
// must be interchangeable on the wire. Each cross-path combination
// moves real files (DirStore at both ends, so sendfile/pwritev engage
// where the platform has them) and must land byte-identical content
// whichever side runs the fast path.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"automdt/internal/fsim"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

// materializeDir writes the manifest's synthetic content into a fresh
// DirStore so the transfer moves real on-disk bytes.
func materializeDir(t *testing.T, dir string, m workload.Manifest) *fsim.DirStore {
	t.Helper()
	store, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m {
		w, err := store.Create(f.Name, f.Size)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64<<10)
		for off := int64(0); off < f.Size; off += int64(len(buf)) {
			n := int64(len(buf))
			if f.Size-off < n {
				n = f.Size - off
			}
			fsim.FillContent(f.Name, off, buf[:n])
			if _, err := w.WriteAt(buf[:n], off); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// TestCrossPathKioPortable runs every asymmetric kio pairing in both
// checksum modes: a kio sender against a portable receiver and the
// reverse must be wire-compatible and byte-identical to the source.
func TestCrossPathKioPortable(t *testing.T) {
	cases := []struct {
		name             string
		sendKio, recvKio string
		checksums        bool
	}{
		// kio=off sender ↔ kio=on receiver: coalesced commits and
		// vectored flushes against a portable frame stream.
		{"portable-send_kio-recv_crc", "off", "on", true},
		{"portable-send_kio-recv_nocrc", "off", "on", false},
		// kio=on sender ↔ kio=off receiver: batched reads and vectored
		// frame batches (and, without checksums, sendfile payloads)
		// against a portable chunk-at-a-time receiver.
		{"kio-send_portable-recv_crc", "on", "off", true},
		{"kio-send_portable-recv_nocrc", "on", "off", false},
		// Both ends fast: the full negotiated path.
		{"kio-both_nocrc", "on", "on", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := workload.LargeFiles(3, 1<<20+7) // odd tails cross chunk grid
			src := materializeDir(t, t.TempDir(), m)
			dstDir := t.TempDir()
			dst, err := fsim.NewDirStore(dstDir)
			if err != nil {
				t.Fatal(err)
			}

			cfgRecv := testConfig()
			cfgRecv.KioMode = tc.recvKio
			cfgRecv.DisableChecksums = !tc.checksums
			cfgSend := testConfig()
			cfgSend.KioMode = tc.sendKio
			cfgSend.DisableChecksums = !tc.checksums
			// Resumable session, so the persisted ledger can be compared
			// against what the portable path would have recorded.
			cfgSend.SessionID = "cross-" + tc.name

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			recv := NewReceiver(cfgRecv, dst)
			var sessionDone SessionResult
			recv.OnSessionDone = func(sr SessionResult) { sessionDone = sr }
			if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			recvErr := make(chan error, 1)
			go func() { recvErr <- recv.ServeN(ctx, 1) }()
			send := &Sender{Cfg: cfgSend, Store: src, Manifest: m}
			res, err := send.Run(ctx, recv.DataAddr(), recv.CtrlAddr())
			if err != nil {
				t.Fatal(err)
			}
			if rerr := <-recvErr; rerr != nil {
				t.Fatal(rerr)
			}
			if res.WireBytes != m.TotalBytes() {
				t.Fatalf("wire bytes %d, want %d", res.WireBytes, m.TotalBytes())
			}
			// Ledger state must be what the portable path records:
			// however frames were coalesced, the session ends with every
			// byte ledger-committed — per-chunk commits, since the
			// checksummed variants verify each FileSum against the
			// ledger-folded CRCs before reporting done — and the
			// completed session's persisted ledger cleaned up.
			if sessionDone.Err != nil {
				t.Fatalf("session result: %v", sessionDone.Err)
			}
			if sessionDone.CommittedBytes != m.TotalBytes() {
				t.Fatalf("ledger committed %d bytes, want %d",
					sessionDone.CommittedBytes, m.TotalBytes())
			}
			if _, err := dst.LoadLedger(cfgSend.SessionID); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("completed session left a persisted ledger (err %v)", err)
			}
			for _, f := range m {
				got, err := os.ReadFile(filepath.Join(dstDir, f.Name))
				if err != nil {
					t.Fatal(err)
				}
				want := make([]byte, f.Size)
				fsim.FillContent(f.Name, 0, want)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s differs from source after %s", f.Name, tc.name)
				}
				if g, w := wire.PayloadCRC(got), wire.PayloadCRC(want); g != w {
					t.Fatalf("%s CRC %08x, want %08x", f.Name, g, w)
				}
			}
		})
	}
}

// nextRun must coalesce adjacent planned chunks up to the byte cap,
// stop at file boundaries, and break runs at resume-skipped chunks.
func TestChunkerNextRunCoalescing(t *testing.T) {
	m := workload.Manifest{
		{Name: "a", Size: 256}, // chunks at 0,64,128,192
		{Name: "b", Size: 100}, // chunks at 0,64(36-byte tail)
	}
	skip := NewLedger("run-test", 64, m, false)
	skip.Commit(0, 128, 64, 0) // a[128:192] already committed

	c := newChunker(m, 64, skip)
	type run struct {
		fid    uint32
		off, n int64
		pieces int
	}
	var got []run
	for {
		fid, off, n, pieces, ok := c.nextRun(1 << 20)
		if !ok {
			break
		}
		got = append(got, run{fid, off, n, pieces})
	}
	want := []run{
		{0, 0, 128, 2},  // run ends at the skipped chunk
		{0, 192, 64, 1}, // resumes past it, ends at file boundary
		{1, 0, 100, 2},  // whole of b, tail included
	}
	if len(got) != len(want) {
		t.Fatalf("runs %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// A cap below one chunk degenerates to single-chunk runs.
	c = newChunker(m, 64, nil)
	if _, _, n, pieces, ok := c.nextRun(0); !ok || n != 64 || pieces != 1 {
		t.Fatalf("uncapped degenerate run n=%d pieces=%d ok=%v", n, pieces, ok)
	}
	// A cap of two chunks stops mid-file.
	c = newChunker(m, 64, nil)
	if _, _, n, pieces, ok := c.nextRun(128); !ok || n != 128 || pieces != 2 {
		t.Fatalf("capped run n=%d pieces=%d ok=%v", n, pieces, ok)
	}
}

// TryGetN must drain up to max staged chunks without blocking, keep
// accounting exact, and report closure only when the buffer is empty.
func TestStagingTryGetN(t *testing.T) {
	s := NewStaging(1 << 20)
	for i := 0; i < 5; i++ {
		if !s.Put(Chunk{FileID: 1, Offset: int64(i) * 64, Data: make([]byte, 64)}) {
			t.Fatal("staging closed early")
		}
	}
	batch, closed := s.TryGetN(nil, 3)
	if closed || len(batch) != 3 {
		t.Fatalf("first drain got %d closed=%v, want 3 false", len(batch), closed)
	}
	for i, c := range batch {
		if c.Offset != int64(i)*64 {
			t.Fatalf("chunk %d offset %d, want FIFO order", i, c.Offset)
		}
	}
	batch, closed = s.TryGetN(batch[:0], 10)
	if closed || len(batch) != 2 {
		t.Fatalf("second drain got %d closed=%v, want 2 false", len(batch), closed)
	}
	if got := s.Used(); got != 0 {
		t.Fatalf("staging holds %d bytes after full drain", got)
	}
	s.Close()
	if batch, closed = s.TryGetN(batch[:0], 1); !closed || len(batch) != 0 {
		t.Fatalf("drained closed staging got %d closed=%v, want 0 true", len(batch), closed)
	}

	// Kernel-owned chunks carry no payload slice; their declared size
	// must drive the buffer accounting all the same.
	s2 := NewStaging(100)
	if !s2.Put(Chunk{FileID: 1, Kio: true, N: 100}) {
		t.Fatal("kio chunk rejected")
	}
	if got := s2.Used(); got != 100 {
		t.Fatalf("kio chunk accounted %d bytes, want 100", got)
	}
	if batch, _ = s2.TryGetN(nil, 8); len(batch) != 1 || !batch[0].Kio || batch[0].N != 100 {
		t.Fatalf("kio chunk drained as %+v", batch)
	}
	if got := s2.Used(); got != 0 {
		t.Fatalf("kio drain left %d bytes accounted", got)
	}
}
