package transfer

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"automdt/internal/fsim"
	"automdt/internal/workload"
)

// Full disk-to-disk transfer through the engine: real source files, real
// destination files, byte-for-byte comparison.
func TestLoopbackDiskToDisk(t *testing.T) {
	srcDir := t.TempDir()
	dstDir := t.TempDir()
	src, err := fsim.NewDirStore(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := fsim.NewDirStore(dstDir)
	if err != nil {
		t.Fatal(err)
	}

	// Create source files with synthetic content, including a nested path
	// and odd sizes.
	m := workload.Manifest{
		{Name: "a.bin", Size: 300<<10 + 7},
		{Name: "nested/b.bin", Size: 64 << 10},
		{Name: "tiny.bin", Size: 3},
	}
	for _, f := range m {
		w, err := src.Create(f.Name, f.Size)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, f.Size)
		fsim.FillContent(f.Name, 0, buf)
		if _, err := w.WriteAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		w.Close()
	}

	cfg := testConfig()
	res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != m.TotalBytes() {
		t.Fatalf("bytes=%d want %d", res.Bytes, m.TotalBytes())
	}
	for _, f := range m {
		want, err := os.ReadFile(filepath.Join(srcDir, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dstDir, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs after transfer (%d vs %d bytes)", f.Name, len(want), len(got))
		}
	}
}

// Transfers survive empty manifests and zero-length files.
func TestLoopbackDegenerateManifests(t *testing.T) {
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	// A manifest with only an empty file: nothing to move, must complete
	// immediately rather than hang.
	m := workload.Manifest{{Name: "empty", Size: 0}}
	res, err := Loopback(context.Background(), testConfig(), m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 0 {
		t.Fatalf("bytes=%d", res.Bytes)
	}
}
