package transfer

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"automdt/internal/fsim"
	"automdt/internal/workload"
)

// crashStore wraps a DirStore and simulates a receiver process dying at
// one precise point in the ledger persistence protocol. Once the crash
// point trips, the receiver's context is cancelled and every later
// control-plane write is refused — the "process" is dead, whatever the
// still-unwinding goroutines try. Data-plane writes are left alone:
// chunks that reached the disk but not the ledger are the safe
// direction (they are re-sent, never trusted).
type crashStore struct {
	*fsim.DirStore
	mode string // "torn-append", "compact-nosave", "compact-noreset"
	// armAfter is how many journal appends must succeed before the
	// crash point arms, so the kill lands mid-transfer with real
	// progress journaled.
	armAfter int32
	appends  atomic.Int32
	tripped  atomic.Bool
	dead     atomic.Bool
	kill     context.CancelFunc
}

var errCrashed = errors.New("crash injection: receiver is dead")

func (c *crashStore) trip() {
	c.tripped.Store(true)
	c.dead.Store(true)
	c.kill()
}

func (c *crashStore) AppendLedger(session string, data []byte) error {
	if c.dead.Load() {
		return errCrashed
	}
	n := c.appends.Add(1)
	if c.mode == "torn-append" && n > c.armAfter && !c.tripped.Load() {
		// The process dies mid-write: half the delta reaches the
		// journal, tearing the record at the cut.
		c.DirStore.AppendLedger(session, data[:len(data)/2])
		c.trip()
		return errCrashed
	}
	return c.DirStore.AppendLedger(session, data)
}

func (c *crashStore) SaveLedger(session string, data []byte) error {
	if c.dead.Load() {
		return errCrashed
	}
	armed := c.appends.Load() > c.armAfter && !c.tripped.Load()
	switch {
	case c.mode == "compact-nosave" && armed:
		// Death before the snapshot rename: the previous snapshot and
		// the journal survive untouched.
		c.trip()
		return errCrashed
	case c.mode == "compact-noreset" && armed:
		// The fresh snapshot lands, then death before the journal
		// truncate: the stale journal (older generation) survives next
		// to the new snapshot and must be ignored on resume.
		err := c.DirStore.SaveLedger(session, data)
		c.trip()
		return err
	}
	return c.DirStore.SaveLedger(session, data)
}

func (c *crashStore) ResetJournal(session string) error {
	if c.dead.Load() {
		return errCrashed
	}
	return c.DirStore.ResetJournal(session)
}

func (c *crashStore) RemoveLedger(session string) error {
	if c.dead.Load() {
		return errCrashed
	}
	return c.DirStore.RemoveLedger(session)
}

// TestCrashRecoveryAtInjectedPoints kills the receiver at each fragile
// point of the snapshot+journal protocol — mid-journal-append (a torn
// record on disk), mid-compaction before the snapshot rename, and
// between the snapshot rename and the journal truncate — then resumes
// against the surviving files and requires: the persisted state always
// loads (a torn record is truncated, never trusted), the resume
// re-sends less than 10% of the bytes the ledger had committed, and the
// final dataset is byte-correct.
func TestCrashRecoveryAtInjectedPoints(t *testing.T) {
	for _, mode := range []string{"torn-append", "compact-nosave", "compact-noreset"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			session := "crash-" + mode
			m := workload.LargeFiles(4, 2<<20) // 8 MiB
			total := m.TotalBytes()
			src := fsim.NewSyntheticStore()

			cfg := testConfig()
			cfg.SessionID = session
			cfg.ProbeInterval = 10 * time.Millisecond // frequent journal appends
			cfg.InitialThreads = 4
			cfg.Shaping.LinkMbps = 150 // keep the crash point mid-flight
			// The injection counts journal appends, so commits must trickle
			// in across many probe ticks; kio's coalesced frames would land
			// them in a handful of lumps and close the mid-flight window.
			// The ledger protocol under test is data-plane agnostic.
			cfg.KioMode = "off"
			if mode != "torn-append" {
				// Tiny floor: the journal outgrows the (near-empty)
				// snapshot almost immediately, so a compaction follows
				// the arming appends within a tick or two.
				cfg.LedgerCompactBytes = 1
			}

			inner, err := fsim.NewDirStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			rctx, rcancel := context.WithCancel(context.Background())
			defer rcancel()
			cs := &crashStore{DirStore: inner, mode: mode, armAfter: 3, kill: rcancel}
			recv := NewReceiver(cfg, cs)
			if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			recvErr := make(chan error, 1)
			go func() { recvErr <- recv.ServeN(rctx, 1) }()

			send := &Sender{Cfg: cfg, Store: src, Manifest: m}
			ctx1, cancel1 := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel1()
			if _, err := send.Run(ctx1, recv.DataAddr(), recv.CtrlAddr()); err == nil {
				t.Fatal("sender survived the injected receiver crash")
			}
			<-recvErr
			if !cs.tripped.Load() {
				t.Fatalf("crash point %q never tripped; injection did not land", mode)
			}

			// A fresh process view of the wreckage: the persisted state
			// must load cleanly whatever the crash tore.
			after, err := fsim.NewDirStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			wreck, err := LoadSessionLedger(after, session)
			if err != nil {
				t.Fatalf("persisted state unreadable after %s: %v", mode, err)
			}
			committed := wreck.CommittedBytes()
			if committed <= 0 || committed >= total {
				t.Fatalf("committed %d of %d; crash did not land mid-flight", committed, total)
			}

			// Resume against the surviving files and finish the job.
			cfg2 := cfg
			cfg2.Shaping = Shaping{}
			cfg2.LedgerCompactBytes = 0
			ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel2()
			recv2, recvErr2 := runReceiver(t, ctx2, cfg2, after)
			send2 := &Sender{Cfg: cfg2, Store: src, Manifest: m}
			res, err := send2.Run(ctx2, recv2.DataAddr(), recv2.CtrlAddr())
			if err != nil {
				t.Fatal(err)
			}
			if rerr := <-recvErr2; rerr != nil {
				t.Fatal(rerr)
			}
			if !res.Resumed || res.SessionID != session {
				t.Fatalf("second run did not resume: %+v", res)
			}
			if res.SkippedBytes != committed {
				// The receiver must trust exactly what a fresh load
				// trusts — no more (a torn record resurrected), no less
				// (valid records dropped).
				t.Fatalf("receiver skipped %d, persisted state held %d", res.SkippedBytes, committed)
			}
			missing := total - committed
			if resent := res.WireBytes - missing; resent < 0 || resent > committed/10 {
				t.Fatalf("wire bytes %d for %d missing: re-sent %d > 10%% of committed %d",
					res.WireBytes, missing, resent, committed)
			}

			if _, err := after.LoadLedger(session); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("ledger should be removed after completion, got %v", err)
			}
			for _, f := range m {
				got, err := os.ReadFile(filepath.Join(dir, f.Name))
				if err != nil {
					t.Fatal(err)
				}
				want := make([]byte, f.Size)
				fsim.FillContent(f.Name, 0, want)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s corrupt after crash recovery", f.Name)
				}
			}
		})
	}
}
