package transfer

import (
	"context"
	"fmt"

	"automdt/internal/env"
	"automdt/internal/fsim"
	"automdt/internal/workload"
)

// Loopback runs a complete sender→receiver transfer in-process over
// 127.0.0.1 TCP, returning the sender-side result. It is the harness used
// by tests, benchmarks, and examples to evaluate optimizers on the
// emulated testbed.
func Loopback(ctx context.Context, cfg Config, m workload.Manifest,
	src, dst fsim.Store, ctrl env.Controller) (*Result, error) {

	recv := NewReceiver(cfg, dst)
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return nil, err
	}
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	recvErr := make(chan error, 1)
	go func() { recvErr <- recv.ServeN(rctx, 1) }()

	send := &Sender{Cfg: cfg, Store: src, Manifest: m, Controller: ctrl}
	res, err := send.Run(ctx, recv.DataAddr(), recv.CtrlAddr())
	if err != nil {
		// A sender that dies before its session negotiated leaves the
		// receiver with nothing to fail; cancel it rather than waiting on
		// the outer ctx (session teardown still persists the ledger).
		rcancel()
		<-recvErr
		return nil, err
	}
	if rerr := <-recvErr; rerr != nil {
		return res, fmt.Errorf("transfer: receiver: %w", rerr)
	}
	return res, nil
}
