package transfer

import (
	"context"
	"fmt"

	"automdt/internal/env"
	"automdt/internal/fsim"
	"automdt/internal/workload"
)

// Loopback runs a complete sender→receiver transfer in-process over
// 127.0.0.1 TCP, returning the sender-side result. It is the harness used
// by tests, benchmarks, and examples to evaluate optimizers on the
// emulated testbed.
func Loopback(ctx context.Context, cfg Config, m workload.Manifest,
	src, dst fsim.Store, ctrl env.Controller) (*Result, error) {

	recv := NewReceiver(cfg, dst)
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return nil, err
	}
	recvErr := make(chan error, 1)
	go func() { recvErr <- recv.ServeN(ctx, 1) }()

	send := &Sender{Cfg: cfg, Store: src, Manifest: m, Controller: ctrl}
	res, err := send.Run(ctx, recv.DataAddr(), recv.CtrlAddr())
	if err != nil {
		<-recvErr // receiver is done or failing; surface the sender error
		return nil, err
	}
	if rerr := <-recvErr; rerr != nil {
		return res, fmt.Errorf("transfer: receiver: %w", rerr)
	}
	return res, nil
}
