package transfer

import (
	"sync"
)

// Chunk is one unit of file data moving through the pipeline. When the
// payload was leased from an Arena, Buf carries the lease: putting the
// chunk into a Staging buffer transfers ownership to the consumer, which
// must call Release exactly once when done with Data. A nil Buf (tests,
// ad-hoc callers) makes Release a no-op and leaves the payload to the GC.
type Chunk struct {
	FileID uint32
	Offset int64
	Data   []byte
	Buf    *Buf
	// Sum is the payload CRC-32C computed by the sender's read stage,
	// carried along so the frame writer never re-hashes the chunk. The
	// receiver deliberately ignores it: its ledger records a fresh hash
	// taken at the write stage, keeping file verification end-to-end.
	// Zero and meaningless when the session runs unchecksummed.
	Sum uint32
	// Kio marks a kernel-owned chunk: the payload stays in the source
	// file and never enters userspace. Data and Buf are nil — the arena
	// never sees the bytes — and N carries the payload length for
	// capacity accounting; the network stage emits the frame header from
	// userspace and sendfile(2)s the payload range straight into the
	// socket.
	Kio bool
	// N is the payload length of a kernel-owned chunk (len(Data)
	// otherwise).
	N int
}

// size returns the chunk's payload length regardless of where the bytes
// live (userspace Data or a kernel-owned on-disk range).
func (c *Chunk) size() int64 {
	if c.Kio {
		return int64(c.N)
	}
	return int64(len(c.Data))
}

// Release returns the chunk's arena lease, if any. Safe to call more
// than once on the same Chunk value (the second call is a no-op).
func (c *Chunk) Release() {
	if c.Buf != nil {
		c.Buf.Release()
		c.Buf = nil
	}
}

// Staging is a bounded FIFO of chunks with byte-based capacity
// accounting. Put blocks while the buffer is full (the "sender buffer
// full" condition of Fig. 1); Get blocks while it is empty. Closing wakes
// all waiters.
type Staging struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	capBytes int64
	used     int64
	q        []Chunk
	head     int
	closed   bool
}

// NewStaging creates a staging buffer holding up to capBytes of chunk
// payload.
func NewStaging(capBytes int64) *Staging {
	s := &Staging{capBytes: capBytes}
	s.notFull = sync.NewCond(&s.mu)
	s.notEmpty = sync.NewCond(&s.mu)
	return s
}

// Put appends a chunk, blocking until capacity is available. A chunk
// larger than the whole capacity is admitted when the buffer is empty so
// oversized chunks cannot deadlock. Put reports false if the staging
// buffer was closed.
func (s *Staging) Put(c Chunk) bool {
	n := c.size()
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed && s.used+n > s.capBytes && s.used > 0 {
		s.notFull.Wait()
	}
	if s.closed {
		return false
	}
	s.q = append(s.q, c)
	s.used += n
	s.notEmpty.Signal()
	return true
}

// Get removes the oldest chunk, blocking until one is available. It
// reports false when the buffer is closed and drained.
func (s *Staging) Get() (Chunk, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.q)-s.head == 0 && !s.closed {
		s.notEmpty.Wait()
	}
	if len(s.q)-s.head == 0 {
		return Chunk{}, false
	}
	c := s.q[s.head]
	s.q[s.head] = Chunk{} // release for GC
	s.head++
	if s.head == len(s.q) {
		s.q = s.q[:0]
		s.head = 0
	}
	s.used -= c.size()
	s.notFull.Broadcast()
	return c, true
}

// TryGet removes the oldest chunk without blocking. ok reports whether a
// chunk was returned; closed reports that the buffer is closed and fully
// drained. Worker loops that must respond to stop signals use TryGet in
// a poll loop instead of the blocking Get.
func (s *Staging) TryGet() (c Chunk, ok bool, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.q)-s.head == 0 {
		return Chunk{}, false, s.closed
	}
	c = s.q[s.head]
	s.q[s.head] = Chunk{}
	s.head++
	if s.head == len(s.q) {
		s.q = s.q[:0]
		s.head = 0
	}
	s.used -= c.size()
	s.notFull.Broadcast()
	return c, true, false
}

// TryGetN removes up to max oldest chunks without blocking, appending
// them to dst and returning the extended slice. closed reports that the
// buffer is closed and fully drained. The kio network and write stages
// drain batches — adjacent chunks popped together can share one
// vectored frame write or one pwritev flush.
func (s *Staging) TryGetN(dst []Chunk, max int) (out []Chunk, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.q)-s.head == 0 {
		return dst, s.closed
	}
	for max > 0 && len(s.q)-s.head > 0 {
		c := s.q[s.head]
		s.q[s.head] = Chunk{}
		s.head++
		s.used -= c.size()
		dst = append(dst, c)
		max--
	}
	if s.head == len(s.q) {
		s.q = s.q[:0]
		s.head = 0
	}
	s.notFull.Broadcast()
	return dst, false
}

// Close marks the buffer closed; pending Gets drain remaining chunks,
// pending and future Puts fail.
func (s *Staging) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.notFull.Broadcast()
	s.notEmpty.Broadcast()
}

// ReleaseRemaining drains any queued chunks and returns their arena
// leases. Engines call it after their worker pools shut down so an
// aborted transfer cannot strand leased buffers.
func (s *Staging) ReleaseRemaining() {
	for {
		c, ok, _ := s.TryGet()
		if !ok {
			return
		}
		c.Release()
	}
}

// Used returns the occupied payload bytes.
func (s *Staging) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Free returns the remaining capacity in bytes (never negative).
func (s *Staging) Free() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used >= s.capBytes {
		return 0
	}
	return s.capBytes - s.used
}

// Cap returns the configured capacity in bytes.
func (s *Staging) Cap() int64 { return s.capBytes }

// Len returns the number of queued chunks.
func (s *Staging) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.q) - s.head
}
