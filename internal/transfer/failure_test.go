package transfer

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"automdt/internal/fsim"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

// failingStore wraps a store and fails writes after a byte budget.
type failingStore struct {
	inner  fsim.Store
	budget int64
}

func (f *failingStore) Open(name string, size int64) (fsim.FileReader, error) {
	return f.inner.Open(name, size)
}

func (f *failingStore) Create(name string, size int64) (fsim.FileWriter, error) {
	w, err := f.inner.Create(name, size)
	if err != nil {
		return nil, err
	}
	return &failingWriter{inner: w, store: f}, nil
}

type failingWriter struct {
	inner fsim.FileWriter
	store *failingStore
}

func (w *failingWriter) WriteAt(p []byte, off int64) (int, error) {
	w.store.budget -= int64(len(p))
	if w.store.budget < 0 {
		return 0, errors.New("disk full (injected)")
	}
	return w.inner.WriteAt(p, off)
}

func (w *failingWriter) Close() error { return w.inner.Close() }

// A destination-side write failure must surface on the sender as a
// receiver error, not hang the transfer.
func TestReceiverWriteFailurePropagates(t *testing.T) {
	src := fsim.NewSyntheticStore()
	dst := &failingStore{inner: fsim.NewSyntheticStore(), budget: 1 << 20}
	cfg := testConfig()
	m := workload.LargeFiles(8, 1<<20) // 8 MB, fails after ~1 MB
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	_, err := Loopback(ctx, cfg, m, src, dst, nil)
	if err == nil {
		t.Fatal("expected failure")
	}
	if ctx.Err() != nil {
		t.Fatalf("transfer hung until timeout instead of failing fast: %v", err)
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("error lost its cause: %v", err)
	}
}

// A source-side read failure must abort the transfer with the cause.
type failingReadStore struct{ fsim.Store }

func (f *failingReadStore) Open(name string, size int64) (fsim.FileReader, error) {
	return nil, fmt.Errorf("permission denied (injected) for %s", name)
}

func TestSenderReadFailurePropagates(t *testing.T) {
	src := &failingReadStore{Store: fsim.NewSyntheticStore()}
	dst := fsim.NewSyntheticStore()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	_, err := Loopback(ctx, testConfig(), workload.LargeFiles(2, 1<<20), src, dst, nil)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "permission denied") {
		t.Fatalf("error lost its cause: %v", err)
	}
}

// Garbage on the data port must not corrupt or wedge the receiver's
// session with the real sender.
func TestReceiverSurvivesGarbageConnection(t *testing.T) {
	dst := fsim.NewSyntheticStore()
	dst.Verify = true
	recv := NewReceiver(testConfig(), dst)
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	recvErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	go func() { recvErr <- recv.ServeN(ctx, 1) }()

	src := fsim.NewSyntheticStore()
	m := workload.LargeFiles(4, 512<<10)
	send := &Sender{Cfg: testConfig(), Store: src, Manifest: m}

	// Open a rogue connection that sends a clean end marker (a stray
	// prober, for example) while the real transfer runs.
	rogue, err := net.Dial("tcp", recv.DataAddr())
	if err != nil {
		t.Fatal(err)
	}
	wire.WriteEnd(rogue)
	rogue.Close()

	res, err := send.Run(ctx, recv.DataAddr(), recv.CtrlAddr())
	if err != nil {
		t.Fatal(err)
	}
	if rerr := <-recvErr; rerr != nil {
		t.Fatal(rerr)
	}
	if res.Bytes != m.TotalBytes() || len(dst.Errors()) != 0 {
		t.Fatalf("transfer corrupted by rogue connection: bytes=%d errs=%v", res.Bytes, dst.Errors())
	}
}

// A frame addressed to a nonexistent file id must fail the receiver
// session (and therefore the sender) rather than panic.
func TestReceiverRejectsUnknownFileID(t *testing.T) {
	dst := fsim.NewSyntheticStore()
	recv := NewReceiver(testConfig(), dst)
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	recvErr := make(chan error, 1)
	go func() { recvErr <- recv.ServeN(ctx, 1) }()

	ctrlRaw, err := net.Dial("tcp", recv.CtrlAddr())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := wire.NewConn(ctrlRaw)
	defer ctrl.Close()
	if err := ctrl.Send(wire.Message{Hello: &wire.Hello{
		Files:      []wire.FileInfo{{Name: "only", Size: 1 << 20}},
		ChunkBytes: 64 << 10,
		MaxWriters: 4,
	}}); err != nil {
		t.Fatal(err)
	}
	data, err := net.Dial("tcp", recv.DataAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	if err := wire.WriteFrame(data, wire.Frame{FileID: 99, Offset: 0, Data: make([]byte, 16)}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-recvErr:
		if err == nil {
			t.Fatal("receiver accepted frame for unknown file")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("receiver did not fail on bad frame")
	}
}

// Killing the receiver process mid-transfer must error the sender out
// promptly (control channel severed).
func TestSenderDetectsReceiverDeath(t *testing.T) {
	dst := fsim.NewSyntheticStore()
	cfg := testConfig()
	cfg.Shaping.LinkMbps = 50 // slow so the transfer is mid-flight
	recv := NewReceiver(cfg, dst)
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	rctx, rcancel := context.WithCancel(context.Background())
	go recv.Serve(rctx)

	src := fsim.NewSyntheticStore()
	m := workload.LargeFiles(4, 2<<20)
	send := &Sender{Cfg: cfg, Store: src, Manifest: m}
	go func() {
		time.Sleep(300 * time.Millisecond)
		rcancel() // kill the receiver mid-transfer
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := send.Run(ctx, recv.DataAddr(), recv.CtrlAddr())
	if err == nil {
		t.Fatal("sender did not notice receiver death")
	}
	if ctx.Err() != nil {
		t.Fatal("sender hung until test timeout")
	}
}
