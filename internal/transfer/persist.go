package transfer

import (
	"sync"

	"automdt/internal/fsim"
)

// ledgerPersister owns one session's ledger persistence: journaled
// O(delta) appends on every probe tick when the store implements
// fsim.LedgerAppender, full-snapshot rewrites when it only implements
// fsim.LedgerStore, and compaction — folding the journal into a fresh
// snapshot — once the journal outgrows max(compactBytes, last snapshot
// size), which bounds both replay time and write amplification at
// roughly 2×. All methods serialize on one mutex, so a tick, the
// CRC-mismatch path, and the teardown persist can never interleave
// writes.
//
// Store errors never fail the session (the ledger is an optimization —
// a lost save only costs the next resume some re-sent bytes), but they
// are never silently forgotten either: records drained from the ledger
// stay in carry until some write durably holds them, and a torn journal
// (failed append) forces compaction — retried every tick — before any
// further append, because records landing after a tear are unreachable
// to replay.
type ledgerPersister struct {
	mu      sync.Mutex
	l       *Ledger
	store   fsim.LedgerStore
	app     fsim.LedgerAppender
	session string
	// compactBytes is the journal-growth floor before compaction;
	// negative disables size-triggered compaction entirely.
	compactBytes int64

	// carry holds encoded journal records drained from the ledger that
	// no durable write has covered yet (a failed append or compaction).
	// They are re-attempted, in order, on every tick until a journal
	// append or a snapshot lands.
	carry []byte
	// torn marks a journal whose tail may hold a partial record (an
	// append errored): appending past the tear would be wasted — replay
	// truncates there — so only a fresh snapshot recovers.
	torn bool

	journalLen  int64 // appended since the last successful compaction
	snapshotLen int64 // size of the last snapshot written
	// headerPending marks that the next append must open the journal
	// with the current snapshot generation's header.
	headerPending bool
	done          bool // session completed; never write again
	enabled       bool
}

// newLedgerPersister builds the persister for one session. store is the
// destination store; persistence is disabled (every method a no-op)
// unless it implements fsim.LedgerStore and the session is resumable.
func newLedgerPersister(l *Ledger, store fsim.Store, session string, resumable bool, compactBytes int64) *ledgerPersister {
	p := &ledgerPersister{l: l, session: session, compactBytes: compactBytes}
	if ls, ok := store.(fsim.LedgerStore); ok && resumable {
		p.store = ls
		p.enabled = true
		p.app, _ = store.(fsim.LedgerAppender)
	}
	return p
}

// tick persists the delta since the last call: an fsync'd journal
// append on appender stores (compacting when the journal has outgrown
// its threshold), a full v2 snapshot otherwise. No-change ticks write
// nothing.
func (p *ledgerPersister) tick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.enabled || p.done {
		return
	}
	p.carry = append(p.carry, p.l.AppendSince()...)
	if len(p.carry) == 0 && !p.torn {
		return
	}
	if p.app == nil || p.torn {
		p.compactLocked()
		return
	}
	recs := p.carry
	if p.headerPending {
		recs = append(p.l.JournalHeader(), recs...)
	}
	if err := p.app.AppendLedger(p.session, recs); err != nil {
		// The journal may now be torn mid-record; carry keeps the
		// drained delta and a fresh snapshot (atomic rename) plus
		// journal reset recovers cleanly. Until one lands, every tick
		// retries compaction rather than appending past the tear.
		p.torn = true
		p.compactLocked()
		return
	}
	p.carry = nil
	p.headerPending = false
	p.journalLen += int64(len(recs))
	threshold := max(p.compactBytes, p.snapshotLen)
	if p.compactBytes >= 0 && p.journalLen > threshold {
		p.compactLocked()
	}
}

// compact writes a fresh v2 snapshot and resets the journal. The first
// compaction of a session migrates a v1 JSON document in place (the
// store drops the old document when the binary one lands).
func (p *ledgerPersister) compact() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.enabled || p.done {
		return
	}
	p.compactLocked()
}

func (p *ledgerPersister) compactLocked() {
	// Drain before encoding: the snapshot below is taken after the
	// drain, so it covers every drained op's effect (ops landing
	// between drain and encode stay pending and re-journal later —
	// idempotent on replay). On save failure carry keeps the drained
	// records for the next attempt.
	p.carry = append(p.carry, p.l.AppendSince()...)
	data := p.l.EncodeV2()
	if err := p.store.SaveLedger(p.session, data); err != nil {
		// EncodeV2 already rotated the in-memory generation, and — for
		// the opening compaction — no header matching the on-disk
		// snapshot may exist at all, so anything appended now would be
		// unreachable to replay. Treat the journal as torn: ticks keep
		// retrying compaction (carry in hand) until a snapshot lands.
		p.torn = true
		return
	}
	p.snapshotLen = int64(len(data))
	p.carry = nil // folded into the snapshot
	p.torn = false
	if p.app != nil {
		if err := p.app.ResetJournal(p.session); err == nil {
			p.journalLen = 0
		} else {
			// The journal still opens with a dead generation, so any
			// record appended to it is unreachable to replay — exactly
			// the torn condition: keep compacting every tick (the
			// snapshot carries the state) until a reset lands.
			p.torn = true
		}
	}
	p.headerPending = true
}

// markDone flips the persister into its terminal state: the session
// completed and its ledger was removed, and no later tick — the
// teardown defer in particular — may resurrect it.
func (p *ledgerPersister) markDone() {
	p.mu.Lock()
	p.done = true
	p.mu.Unlock()
}
