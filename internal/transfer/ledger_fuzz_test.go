package transfer

import (
	"bytes"
	"testing"

	"automdt/internal/workload"
)

// fuzzManifest is the fixed dataset shape behind both ledger fuzzers.
func fuzzManifest() workload.Manifest {
	return workload.Manifest{
		{Name: "f0.bin", Size: 256<<10 + 17},
		{Name: "f1.bin", Size: 64 << 10},
		{Name: "empty", Size: 0},
	}
}

// FuzzLedgerV2Decode feeds arbitrary bytes to the schema-sniffing
// ledger decoder: corrupt or truncated snapshots (either schema) must
// error — never panic, never over-allocate — and anything accepted must
// survive a v2 re-encode/re-decode byte-for-byte in observable state.
func FuzzLedgerV2Decode(f *testing.F) {
	m := fuzzManifest()
	empty := NewLedger("fz-empty", 64<<10, m, true)
	f.Add(empty.EncodeV2())
	part := NewLedger("fz-part", 64<<10, m, true)
	part.Commit(0, 0, 64<<10, 0x1111)
	part.Commit(0, 256<<10, 17, 0x2222)
	part.Commit(1, 0, 64<<10, 0x3333)
	f.Add(part.EncodeV2())
	nosums := NewLedger("fz-nosums", 64<<10, m, false)
	nosums.Commit(1, 0, 64<<10, 0)
	f.Add(nosums.EncodeV2())
	if v1, err := part.Encode(); err == nil {
		f.Add(v1)
	}
	full := part.EncodeV2()
	f.Add(full[:len(full)/2])
	f.Add(full[:len(full)-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := DecodeLedger(data)
		if err != nil {
			return
		}
		re, err := DecodeLedger(l.EncodeV2())
		if err != nil {
			t.Fatalf("re-decode of accepted ledger failed: %v", err)
		}
		if re.SessionID != l.SessionID || re.ChunkBytes != l.ChunkBytes ||
			re.HasSums != l.HasSums || len(re.Files) != len(l.Files) ||
			re.CommittedBytes() != l.CommittedBytes() ||
			re.CommittedChunks() != l.CommittedChunks() {
			t.Fatalf("round trip drifted: %+v != %+v", re, l)
		}
		for i, wf := range l.Files {
			gf := re.Files[i]
			if gf.Name != wf.Name || gf.Size != wf.Size ||
				gf.Committed != wf.Committed || !bytes.Equal(u64bytes(gf.Bitmap), u64bytes(wf.Bitmap)) {
				t.Fatalf("file %d drifted in round trip", i)
			}
		}
	})
}

// u64bytes flattens a bitmap for comparison (nil and empty compare
// equal, which is the semantic the ledger wants).
func u64bytes(ws []uint64) []byte {
	var out []byte
	for _, w := range ws {
		for i := 0; i < 64; i += 8 {
			out = append(out, byte(w>>i))
		}
	}
	return out
}

// FuzzJournalReplay replays arbitrary journal bytes over a half-
// committed base ledger: replay must never panic, a corrupt or torn
// suffix must truncate cleanly at the last valid record, and whatever
// state results must stay internally consistent — committed-byte
// accounting must match the bitmaps exactly (re-derived by an
// encode/decode round trip), so a forged journal can never resurrect
// bytes the bitmaps don't back.
func FuzzJournalReplay(f *testing.F) {
	m := fuzzManifest()
	base := func() *Ledger {
		l := NewLedger("fz-journal", 64<<10, m, true)
		l.EncodeV2() // pin a generation so valid seed journals can match
		l.Commit(0, 0, 64<<10, 0xAA)
		l.Commit(1, 0, 64<<10, 0xBB)
		l.AppendSince()
		return l
	}
	l0 := base()
	valid := l0.JournalHeader()
	l0.Commit(0, 64<<10, 64<<10, 0xCC)
	l0.Invalidate(0, 0, 64<<10)
	valid = append(valid, l0.AppendSince()...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:journalHeaderLen+1])
	mut := bytes.Clone(valid)
	mut[journalHeaderLen+2] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, journal []byte) {
		l := base()
		gen := l.gen // the fuzzed bytes rarely guess it; graft it in when long enough
		if len(journal) >= journalHeaderLen && bytes.Equal(journal[0:4], journalMagic[:]) {
			grafted := bytes.Clone(journal)
			copy(grafted[4:12], l.JournalHeader()[4:12])
			journal = grafted
			_ = gen
		}
		l.ReplayJournal(journal)
		// Accounting invariant: a decode recomputes committed bytes and
		// chunks from the bitmaps alone; replay must have kept the live
		// counters in exact agreement.
		re, err := DecodeLedger(l.EncodeV2())
		if err != nil {
			t.Fatalf("post-replay ledger does not re-encode: %v", err)
		}
		if re.CommittedBytes() != l.CommittedBytes() || re.CommittedChunks() != l.CommittedChunks() {
			t.Fatalf("replay corrupted accounting: bytes %d vs %d, chunks %d vs %d",
				l.CommittedBytes(), re.CommittedBytes(), l.CommittedChunks(), re.CommittedChunks())
		}
		// Sums must be recorded for every committed chunk (FileCRC
		// folds them; a resurrected chunk without a real sum would
		// poison end-to-end verification silently).
		for i := range l.Files {
			if l.Files[i].Committed > 0 && l.Files[i].Sums == nil {
				t.Fatalf("file %d committed %d bytes with no sums", i, l.Files[i].Committed)
			}
		}
	})
}
