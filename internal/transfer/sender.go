package transfer

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"automdt/internal/env"
	"automdt/internal/flight"
	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

// Result summarizes a completed transfer.
type Result struct {
	// Duration is the wall time from Run start to receiver completion.
	Duration time.Duration
	// Bytes is the payload volume transferred by this run (for a resumed
	// session: the dataset minus the ranges the ledger already covered).
	Bytes int64
	// AvgMbps is the end-to-end goodput over the transferred bytes.
	AvgMbps float64
	// Controller names the optimizer that drove the run.
	Controller string
	// SessionID is the negotiated session identity.
	SessionID string
	// Resumed reports whether the receiver's ledger covered part of the
	// dataset before this run started.
	Resumed bool
	// SkippedBytes is the committed volume the planner skipped — data
	// that never crossed the wire again.
	SkippedBytes int64
	// WireBytes is the payload volume actually sent on the data
	// connections by this run (the figure the resume e2e test bounds).
	WireBytes int64
	// ResentBytes is the payload volume re-sent by striping recovery
	// after a data connection died mid-transfer: the lost chunks that had
	// to cross the wire again on a surviving connection.
	ResentBytes int64
	// Recorder holds the per-tick concurrency and throughput traces
	// (series: cc_read, cc_conns, cc_streams, cc_net, cc_write, thr_read,
	// thr_net, thr_write), the raw material for the paper's figures.
	Recorder *metrics.Recorder
}

// errRunDone marks a data-plane operation that failed only because the
// receiver already confirmed completion — a benign race, not an error.
var errRunDone = errors.New("transfer: run already complete")

// errConnClosedByPeer is the cause recorded when the read-side death
// watch — not a failed write — notices a data connection is gone.
var errConnClosedByPeer = errors.New("transfer: data connection closed by peer")

// kioRunChunks bounds a kio read run in chunks: 16 is 4 MiB at the
// default chunk size, an exact arena size class, so a run's lease
// wastes nothing.
const kioRunChunks = 16

// sendBatchChunks bounds how many staged chunks a kio network worker
// drains per iteration: the batch shares one vectored frame write and
// one rate-limiter reservation.
const sendBatchChunks = 8

// isKioRefusal classifies data-plane errors that mean "this file or
// filesystem cannot be spliced" rather than "the connection died".
func isKioRefusal(err error) bool {
	return errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOSYS) ||
		errors.Is(err, syscall.EOPNOTSUPP)
}

// Sender is the source-side engine: a resizable read pool stages chunks
// from the source store into a bounded buffer, and a resizable network
// pool ships them over parallel TCP connections. Each probe interval the
// Controller observes the state (thread counts, per-stage throughputs,
// free buffer space at both ends — exactly the §IV-D-1 state) and
// reassigns the concurrency tuple.
type Sender struct {
	Cfg        Config
	Store      fsim.Store
	Manifest   workload.Manifest
	Controller env.Controller // nil keeps InitialThreads fixed

	// forceProto, when > 0, advertises that protocol generation in the
	// Hello instead of wire.ProtoVersion. Tests use it to emulate older
	// peers against a multi-session endpoint.
	forceProto int

	mu         sync.Mutex
	err        error
	errSymptom bool
	lastStatus wire.Status
}

// fail records a root-cause error: the first one wins and overrides a
// previously recorded connection symptom.
func (s *Sender) fail(err error) { s.failWith(err, false) }

// failSymptom records a data/control-plane plumbing error (connection
// reset, dial failure). Symptoms lose to a root cause reported later —
// when the receiver dies mid-transfer, the sender's sockets fail with
// resets before the control channel delivers the receiver's actual
// error, and the actual error is the one worth surfacing.
func (s *Sender) failSymptom(err error) { s.failWith(err, true) }

func (s *Sender) failWith(err error, symptom bool) {
	s.mu.Lock()
	if err != nil && (s.err == nil || (s.errSymptom && !symptom)) {
		s.err = err
		s.errSymptom = symptom
	}
	s.mu.Unlock()
}

func (s *Sender) errIsSymptom() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err != nil && s.errSymptom
}

// Err returns the first fatal sender-side error.
func (s *Sender) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Sender) status() wire.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastStatus
}

// chunker hands out sequential chunk references over the manifest,
// skipping ranges the session ledger already covers (skip may be nil for
// a fresh plan).
type chunker struct {
	mu    sync.Mutex
	files workload.Manifest
	chunk int64
	skip  *Ledger
	fi    int
	off   int64
	total int64 // planned (non-skipped) chunk count
}

func newChunker(m workload.Manifest, chunkBytes int, skip *Ledger) *chunker {
	c := &chunker{files: m, chunk: int64(chunkBytes), skip: skip}
	for _, f := range m {
		c.total += (f.Size + c.chunk - 1) / c.chunk
	}
	if skip != nil {
		c.total -= skip.CommittedChunks()
	}
	return c
}

// next returns the next planned chunk reference, or ok=false when
// exhausted.
func (c *chunker) next() (fileID uint32, off int64, n int, ok bool) {
	fid, off64, n64, _, ok := c.nextRun(0)
	return fid, off64, int(n64), ok
}

// nextRun returns the next planned contiguous run: one or more adjacent
// chunks of a single file, none skipped by the resume ledger, totalling
// at most maxBytes (maxBytes below one chunk degenerates to next()'s
// single-chunk behavior). The kio read stage leases and reads a whole
// run at once — one ReadAt and one CRC-32C pass over pieces chunks
// instead of pieces of each.
func (c *chunker) nextRun(maxBytes int64) (fileID uint32, off int64, n int64, pieces int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for c.fi < len(c.files) && c.off >= c.files[c.fi].Size {
			c.fi++
			c.off = 0
		}
		if c.fi >= len(c.files) {
			return 0, 0, 0, 0, false
		}
		f := c.files[c.fi]
		size := c.chunk
		if c.off+size > f.Size {
			size = f.Size - c.off
		}
		fileID, off = uint32(c.fi), c.off
		c.off += size
		if c.skip != nil && c.skip.Done(fileID, off) {
			continue // committed in a previous attempt; not re-read
		}
		n, pieces = size, 1
		// Extend through adjacent planned chunks while they fit. A skipped
		// chunk ends the run: the wire frame must stay one unbroken range.
		for c.off < f.Size {
			size = c.chunk
			if c.off+size > f.Size {
				size = f.Size - c.off
			}
			if n+size > maxBytes {
				break
			}
			if c.skip != nil && c.skip.Done(fileID, c.off) {
				break
			}
			n += size
			pieces++
			c.off += size
		}
		return fileID, off, n, pieces, true
	}
}

// fileSummer accumulates per-chunk CRCs on the sender and yields each
// file's combined end-to-end CRC-32C once every chunk of that file has
// been read this session. Files partially covered by a resumed ledger
// are not summed (their committed chunks are never re-read); their
// integrity rests on the receiver's ledger sums, which were verified by
// read-back when the session resumed.
type fileSummer struct {
	chunk int64
	mu    sync.Mutex
	files []sumState
}

type sumState struct {
	size int64
	sums []uint32 // nil when the file is not summable this session
	got  int
}

func newFileSummer(m workload.Manifest, chunkBytes int, resume *Ledger) *fileSummer {
	fs := &fileSummer{chunk: int64(chunkBytes), files: make([]sumState, len(m))}
	for i, f := range m {
		n := int((f.Size + fs.chunk - 1) / fs.chunk)
		st := sumState{size: f.Size}
		if n > 0 && (resume == nil || resume.FileCommitted(uint32(i)) == 0) {
			st.sums = make([]uint32, n)
		}
		fs.files[i] = st
	}
	return fs
}

// expected returns how many FileSum messages this session will emit.
func (fs *fileSummer) expected() int {
	n := 0
	for i := range fs.files {
		if fs.files[i].sums != nil {
			n++
		}
	}
	return n
}

// add records one chunk's CRC. When the chunk completes its file, the
// whole-file CRC (per-chunk sums folded in order through CombineCRC) is
// returned with done=true.
func (fs *fileSummer) add(fileID uint32, off int64, sum uint32) (crc uint32, done bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := &fs.files[fileID]
	if st.sums == nil {
		return 0, false
	}
	st.sums[off/fs.chunk] = sum
	st.got++
	if st.got < len(st.sums) {
		return 0, false
	}
	return wire.FoldChunkCRCs(st.sums, fs.chunk, st.size), true
}

// Run executes the transfer against a receiver listening at the given
// data and control addresses, returning when the receiver confirms
// completion.
func (s *Sender) Run(ctx context.Context, dataAddr, ctrlAddr string) (res *Result, err error) {
	cfg := s.Cfg.WithDefaults()
	if h := cfg.Hooks.OnStart; h != nil {
		h()
	}
	if h := cfg.Hooks.OnDone; h != nil {
		defer func() { h(res, err) }()
	}
	// A session id the destination store would reject must fail loudly
	// here, not silently degrade to a non-resumable transfer.
	if cfg.SessionID != "" && !fsim.ValidSessionID(cfg.SessionID) {
		return nil, fmt.Errorf("transfer: invalid session id %q (want [A-Za-z0-9._-], ≤128 chars)", cfg.SessionID)
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ctrlRaw, err := net.Dial("tcp", ctrlAddr)
	if err != nil {
		return nil, fmt.Errorf("transfer: dial control: %w", err)
	}
	if cfg.WrapConn != nil {
		ctrlRaw = cfg.WrapConn("ctrl", ctrlRaw)
	}
	ctrl := wire.NewConn(ctrlRaw)
	defer ctrl.Close()
	// A cancelled caller context must unblock every control-channel
	// operation — in particular the synchronous Welcome wait below, where
	// a sender would otherwise hang between the control handshake and the
	// first data dial. The watch is on the parent only: an internal
	// failure (cancel()) must keep the channel open so the receiver's
	// root-cause report can still land.
	stopCtrlWatch := context.AfterFunc(parent, func() { ctrl.Close() })
	defer stopCtrlWatch()

	checksums := cfg.checksums()
	files := make([]wire.FileInfo, len(s.Manifest))
	for i, f := range s.Manifest {
		files[i] = wire.FileInfo{Name: f.Name, Size: f.Size}
	}
	helloProto := wire.ProtoVersion
	if s.forceProto > 0 {
		helloProto = s.forceProto
	}
	if err := ctrl.Send(wire.Message{Hello: &wire.Hello{
		Files:            files,
		ChunkBytes:       cfg.ChunkBytes,
		MaxWriters:       cfg.MaxThreads,
		InitialWriters:   cfg.InitialThreads,
		ReceiverBufBytes: cfg.ReceiverBufBytes,
		ProtoVersion:     helloProto,
		SessionID:        cfg.SessionID,
		Checksums:        checksums,
		Kio:              cfg.kioEnabled(),
	}}); err != nil {
		return nil, fmt.Errorf("transfer: send hello: %w", err)
	}

	// Versioned negotiation: the receiver answers with its chunk ledger,
	// from which this run plans only the missing ranges. A deadline turns
	// the one unrecoverable mixed-version pairing — a v0 receiver that
	// will never send a Welcome, only statuses — into a clear error
	// instead of a silent indefinite hang. A fresh session's Welcome
	// arrives within one RTT of the Hello; a resume first re-reads and
	// re-hashes every committed byte at the destination, so the deadline
	// scales with how much data a ledger could cover.
	welcomeTimeout := 30 * time.Second
	if cfg.SessionID != "" {
		welcomeTimeout = 10 * time.Minute
	}
	hsTimer := time.AfterFunc(welcomeTimeout, func() { ctrl.Close() })
	var welcome *wire.Welcome
	for welcome == nil {
		m, err := ctrl.Recv()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if !hsTimer.Stop() {
				return nil, fmt.Errorf("transfer: no Welcome within %v — receiver speaks protocol 0? upgrade receivers before senders", welcomeTimeout)
			}
			return nil, fmt.Errorf("transfer: handshake: %w", err)
		}
		if m.Status != nil && m.Status.Error != "" {
			hsTimer.Stop()
			return nil, fmt.Errorf("transfer: receiver: %s", m.Status.Error)
		}
		welcome = m.Welcome
	}
	hsTimer.Stop()
	chunkBytes := cfg.ChunkBytes
	if welcome.ChunkBytes > 0 {
		chunkBytes = welcome.ChunkBytes // a resumed ledger pins the geometry
	}
	// Multi-session demux (protocol ≥ 2): every data connection must open
	// with the endpoint's routing token, or its frames land nowhere.
	negotiated := welcome.ProtoVersion
	dataToken := welcome.DataToken
	if negotiated >= 2 && dataToken == "" {
		return nil, fmt.Errorf("transfer: receiver negotiated protocol %d but sent no data token", negotiated)
	}

	total := s.Manifest.TotalBytes()
	var resume *Ledger
	var skipped int64
	if len(welcome.Ledger) > 0 {
		resume = NewLedger(welcome.SessionID, chunkBytes, s.Manifest, false)
		resume.ApplyWire(welcome.Ledger)
		skipped = resume.CommittedBytes()
	}
	sess := Session{
		ID:           welcome.SessionID,
		Resumed:      skipped > 0,
		TotalBytes:   total,
		SkippedBytes: skipped,
	}
	if h := cfg.Hooks.OnSession; h != nil {
		h(sess)
	}
	planned := total - skipped

	// Kernel-assisted I/O plan. kio alone batches work without changing
	// the wire: runs of adjacent chunks are leased, read, and CRC'd
	// together, and per-chunk frames go out in one vectored write per
	// batch. kioFrames (the receiver advertised the capability) further
	// coalesces each run into a single multi-chunk frame, which the
	// receiver splits back into per-chunk ledger commits. On
	// unchecksummed file-backed transfers, runs become kernel-owned:
	// the payload never enters userspace — the network stage emits the
	// header and sendfile(2)s the range. kioBroken latches a runtime
	// refusal (filesystem without sendfile support) and drops the
	// session back to buffered sends.
	kio := cfg.kioEnabled()
	kioFrames := kio && welcome.Kio
	var kioBroken atomic.Bool
	runBytes := int64(chunkBytes)
	if kioFrames {
		runBytes = int64(chunkBytes) * kioRunChunks
		if runBytes > wire.MaxChunk {
			runBytes = wire.MaxChunk
		}
	}

	staging := NewStaging(cfg.SenderBufBytes)
	src := newChunker(s.Manifest, chunkBytes, resume)

	// End-to-end file sums: announced as reads complete, closed out with
	// a SumsDone marker so the receiver knows when commit-time
	// verification can conclude.
	var summer *fileSummer
	var sumsDoneOnce sync.Once
	sendSumsDone := func() {}
	if checksums {
		summer = newFileSummer(s.Manifest, chunkBytes, resume)
		expect := summer.expected()
		sendSumsDone = func() {
			sumsDoneOnce.Do(func() {
				// Send errors here are symptoms of a dying session; the
				// data plane surfaces the root cause.
				ctrl.Send(wire.Message{SumsDone: &wire.SumsDone{Files: expect}})
			})
		}
	}

	// Per-file reader cache.
	readers := make([]fsim.FileReader, len(s.Manifest))
	var readerMu sync.Mutex
	readerFor := func(id uint32) (fsim.FileReader, error) {
		readerMu.Lock()
		defer readerMu.Unlock()
		if readers[id] == nil {
			r, err := s.Store.Open(s.Manifest[id].Name, s.Manifest[id].Size)
			if err != nil {
				return nil, err
			}
			readers[id] = r
		}
		return readers[id], nil
	}
	defer func() {
		readerMu.Lock()
		for _, r := range readers {
			if r != nil {
				r.Close()
			}
		}
		readerMu.Unlock()
	}()

	var readCounter, netCounter metrics.Counter
	var netTotal, resentTotal atomic.Int64
	var chunksStaged atomic.Int64
	arena := cfg.arena()
	readPerThread := newLimiterSet(cfg.Shaping.ReadPerThreadMbps, cfg.ChunkBytes)
	readAgg := newLimiter(cfg.Shaping.ReadAggMbps, cfg.ChunkBytes)
	netPerStream := newLimiterSet(cfg.Shaping.NetPerStreamMbps, cfg.ChunkBytes)
	link := newLimiter(cfg.Shaping.LinkMbps, cfg.ChunkBytes)

	// kioOwnedFile reports whether a file's runs can be kernel-owned:
	// unchecksummed session, kio enabled and not runtime-refused, and a
	// source reader exposing a raw descriptor for sendfile (DirStore's
	// *os.File does; synthetic stores don't).
	kioOwnedFile := func(id uint32) bool {
		if !kio || checksums || kioBroken.Load() {
			return false
		}
		r, err := readerFor(id)
		if err != nil {
			return false // the buffered read path surfaces the error
		}
		_, ok := r.(syscall.Conn)
		return ok
	}

	readPool := NewPool(func(stop <-chan struct{}, id int) {
		lim := readPerThread.get(id)
		var sums []uint32
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			default:
			}
			fileID, off, n64, pieces, ok := src.nextRun(runBytes)
			if !ok {
				return
			}
			n := int(n64)
			if err := lim.WaitN(ctx, n); err != nil {
				return
			}
			if err := readAgg.WaitN(ctx, n); err != nil {
				return
			}
			if kioOwnedFile(fileID) {
				// Kernel-owned run: no lease, no read, no copy. The network
				// stage emits the header and sendfile(2)s the range straight
				// from the source file into the socket.
				if !staging.Put(Chunk{FileID: fileID, Offset: off, Kio: true, N: n}) {
					return
				}
				if chunksStaged.Add(int64(pieces)) == src.total {
					sendSumsDone()
					staging.Close() // all chunks staged; network drains the rest
				}
				continue
			}
			r, err := readerFor(fileID)
			if err != nil {
				s.fail(err)
				cancel()
				return
			}
			// One arena lease per run (a run is a single chunk outside kio),
			// full and tail sizes alike; the lease rides the chunk through
			// staging and is released by the network worker after the frame
			// hits the wire.
			buf := arena.Get(n)
			span := flight.StageStart()
			if _, err := r.ReadAt(buf.Bytes(), off); err != nil {
				buf.Release()
				s.fail(fmt.Errorf("transfer: read %s@%d: %w", s.Manifest[fileID].Name, off, err))
				cancel()
				return
			}
			flight.StageEnd(flight.StageRead, span)
			wire.CountIOOps(1)
			readCounter.Add(n64)
			var sum uint32
			if checksums {
				// Hash the whole run in one pass. The per-chunk sums feed
				// the file fold (and, on the receiver, per-chunk ledger
				// entries); the frame checksum is their combination, so the
				// run is never hashed twice.
				sums = wire.BatchCRC(sums[:0], buf.Bytes(), chunkBytes)
				for i, cs := range sums {
					if crc, done := summer.add(fileID, off+int64(i)*int64(chunkBytes), cs); done {
						ctrl.Send(wire.Message{FileSum: &wire.FileSum{FileID: fileID, CRC: crc}})
					}
				}
				if len(sums) == 1 {
					sum = sums[0]
				} else {
					sum = wire.FoldChunkCRCs(sums, int64(chunkBytes), n64)
				}
			}
			if !staging.Put(Chunk{FileID: fileID, Offset: off, Data: buf.Bytes(), Buf: buf, Sum: sum}) {
				buf.Release()
				return
			}
			if chunksStaged.Add(int64(pieces)) == src.total {
				sendSumsDone()
				staging.Close() // all chunks staged; network drains the rest
			}
		}
	})
	if src.total == 0 {
		// Nothing left to plan (empty dataset or a fully committed
		// resume): close the intake so the data plane drains to the end
		// markers immediately.
		sendSumsDone()
		staging.Close()
	}

	// doneCh closes when the receiver confirms completion. Declared before
	// the data plane because every dial and recovery path consults it.
	doneCh := make(chan struct{})
	var doneOnce sync.Once

	// Striped data plane: the chunk stream fans out over a resizable set
	// of parallel data connections. dialData carries the listener-race
	// retry the single-conn engine had: the receiver closes its data
	// listener the moment the transfer completes, so a dial prompted by a
	// late grow can lose that race without anything being wrong.
	dialData := func(index int) (net.Conn, error) {
		var lastErr error
		for attempt := 0; attempt < 5; attempt++ {
			if attempt > 0 {
				select {
				case <-doneCh:
					return nil, errRunDone
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(time.Duration(attempt) * 5 * time.Millisecond):
				}
			}
			conn, err := net.Dial("tcp", dataAddr)
			if err != nil {
				lastErr = err
				continue
			}
			if cfg.WrapConn != nil {
				conn = cfg.WrapConn("data", conn)
			}
			if negotiated >= 2 {
				// One preamble per connection, before the first frame; the
				// endpoint demux routes the stream to this session by token.
				if err := wire.WriteDataPreamble(conn, dataToken); err != nil {
					conn.Close()
					lastErr = err
					continue
				}
			}
			return conn, nil
		}
		select {
		case <-doneCh:
			return nil, errRunDone
		default:
		}
		return nil, fmt.Errorf("transfer: dial data: %w", lastErr)
	}
	// Peers below protocol 2 get no data preamble, so the receiver has
	// nothing to demux striped connections by: force one.
	initialConns := cfg.Conns
	if negotiated < 2 {
		initialConns = 1
	}
	conns := newConnSet(initialConns, dialData, cfg.Hooks.OnDataConn)

	// Mid-transfer ledger pulls (protocol ≥ 3): when a striped connection
	// dies, recovery asks the receiver which chunks already committed so
	// only the truly lost ones are re-sent. Replies are routed back to
	// their waiting pull by sequence number.
	var pullMu sync.Mutex
	pullWaiters := make(map[uint64]chan []wire.FileState)
	var pullSeq uint64
	pullLedger := func() ([]wire.FileState, error) {
		pullMu.Lock()
		pullSeq++
		seq := pullSeq
		ch := make(chan []wire.FileState, 1)
		pullWaiters[seq] = ch
		pullMu.Unlock()
		defer func() {
			pullMu.Lock()
			delete(pullWaiters, seq)
			pullMu.Unlock()
		}()
		if err := ctrl.Send(wire.Message{LedgerPull: &wire.LedgerPull{Seq: seq}}); err != nil {
			return nil, err
		}
		select {
		case states := <-ch:
			return states, nil
		case <-doneCh:
			return nil, errRunDone
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return nil, errors.New("transfer: ledger pull timed out")
		}
	}

	// sendFrame stripes one frame across the live connections: a write
	// failure retires the failed connection, hands its sent history to a
	// recovery goroutine, and retries the in-hand frame on a surviving
	// connection. Only a session with no live connection left fails.
	var recoverWG sync.WaitGroup
	var sendFrame func(f wire.Frame, hint int) error
	var recoverConn func(c *dataConn, cause error)
	// spawnRecovery starts a recovery goroutine unless the run is already
	// winding down — the read-side death watch can fire while closeAll
	// tears the sockets down, after recoverWG has been waited on.
	var recMu sync.Mutex
	var recClosed bool
	spawnRecovery := func(c *dataConn, cause error) {
		recMu.Lock()
		defer recMu.Unlock()
		if recClosed {
			return
		}
		recoverWG.Add(1)
		go recoverConn(c, cause)
	}
	sendFrame = func(f wire.Frame, hint int) error {
		for {
			c := conns.pick(hint)
			if c == nil {
				return errConnsExhausted
			}
			err := conns.write(c, f)
			if err == nil {
				return nil
			}
			if errors.Is(err, errRunDone) {
				return err
			}
			if conns.markDead(c) {
				spawnRecovery(c, err)
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
	}
	// recoverConn re-plans a dead connection's in-flight chunks: pull the
	// receiver's ledger (protocol ≥ 3; older peers re-send the full
	// history and rely on receiver-side duplicate dropping), subtract the
	// committed chunks, re-read the rest straight from the source store,
	// and re-stripe them over the surviving connections. The staged data
	// plane is untouched — recovery bypasses the staging buffer, which
	// may already be closed by the time a loss is noticed.
	recoverConn = func(c *dataConn, cause error) {
		defer recoverWG.Done()
		history := c.takeHistory()
		lost := history
		if negotiated >= 3 && len(history) > 0 {
			states, err := pullLedger()
			switch {
			case err == nil:
				committed := NewLedger(sess.ID, chunkBytes, s.Manifest, false)
				committed.ApplyWire(states)
				kept := history[:0]
				for _, cr := range history {
					// A kio frame spans several chunks; the run is lost
					// unless every piece committed (the receiver drops the
					// committed pieces of a re-sent run).
					done := true
					for p := int64(0); p < int64(cr.n); p += int64(chunkBytes) {
						if !committed.Done(cr.fileID, cr.off+p) {
							done = false
							break
						}
					}
					if !done {
						kept = append(kept, cr)
					}
				}
				lost = kept
			case errors.Is(err, errRunDone) || ctx.Err() != nil:
				return
			default:
				// A failed pull on a live session falls back to re-sending
				// the whole history; the receiver's ledger drops duplicates.
			}
		}
		if flight.Active() {
			var bytes int64
			for _, cr := range lost {
				bytes += int64(cr.n)
			}
			flight.Record(flight.Event{
				Source: "sender:" + sess.ID,
				Kind:   flight.KindReplan,
				Chosen: flight.Alt{Score: float64(bytes)},
				Note: fmt.Sprintf("conn %d lost (%v): %d in-flight sends, %d still uncommitted",
					c.index, cause, len(history), len(lost)),
			})
		}
		for _, cr := range lost {
			select {
			case <-doneCh:
				return
			case <-ctx.Done():
				return
			default:
			}
			r, err := readerFor(cr.fileID)
			if err != nil {
				s.fail(err)
				cancel()
				return
			}
			buf := arena.Get(int(cr.n))
			if _, err := r.ReadAt(buf.Bytes(), cr.off); err != nil {
				buf.Release()
				s.fail(fmt.Errorf("transfer: re-read %s@%d after connection loss: %w",
					s.Manifest[cr.fileID].Name, cr.off, err))
				cancel()
				return
			}
			f := wire.Frame{FileID: cr.fileID, Offset: cr.off, Data: buf.Bytes()}
			if checksums {
				f.Checksum, f.Sum, f.SumKnown = true, wire.PayloadCRC(buf.Bytes()), true
			}
			err = sendFrame(f, -1)
			n := int64(len(f.Data))
			buf.Release()
			if err != nil {
				if errors.Is(err, errRunDone) {
					return
				}
				if errors.Is(err, errConnsExhausted) {
					// Every connection vanishing at once is also how a
					// completed session looks from the data plane: the
					// receiver confirms Done on the control channel and
					// closes its data sockets, and the death watch can see
					// the closes before the control reader delivers the
					// Done. Give that report a moment before failing.
					select {
					case <-doneCh:
						return
					case <-ctx.Done():
						return
					case <-time.After(500 * time.Millisecond):
					}
				}
				s.fail(fmt.Errorf("transfer: data connection %d lost (%v) and re-plan failed: %w",
					c.index, cause, err))
				cancel()
				return
			}
			netTotal.Add(n)
			resentTotal.Add(n)
		}
	}

	// Arm the read-side death watch: a receiver that drops a data
	// connection (checksum failure, injected fault) after every pending
	// write already drained into the socket buffer leaves no later write
	// to fail, so without the watch the lost in-flight chunks would never
	// be re-planned and the session would stall waiting for commits.
	conns.onDead = func(c *dataConn) {
		if conns.markDead(c) {
			spawnRecovery(c, errConnClosedByPeer)
		}
	}

	// sendFrameBatch stripes a batch of frames as one vectored write on
	// one connection, with sendFrame's retry discipline: a write failure
	// retires the connection and the whole batch retries on a survivor
	// (the receiver drops any duplicate that did land).
	sendFrameBatch := func(frames []wire.Frame, hint int) error {
		if len(frames) == 0 {
			return nil
		}
		for {
			c := conns.pick(hint)
			if c == nil {
				return errConnsExhausted
			}
			err := conns.writeBatch(c, frames)
			if err == nil {
				return nil
			}
			if errors.Is(err, errRunDone) {
				return err
			}
			if conns.markDead(c) {
				spawnRecovery(c, err)
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
	}

	// resendBuffered ships a kernel-owned chunk through the buffered
	// path after a sendfile refusal: read the range into a lease and
	// send a plain frame (kernel-owned chunks only exist unchecksummed).
	resendBuffered := func(ch Chunk, hint int) error {
		r, err := readerFor(ch.FileID)
		if err != nil {
			return err
		}
		buf := arena.Get(ch.N)
		if _, err := r.ReadAt(buf.Bytes(), ch.Offset); err != nil {
			buf.Release()
			return fmt.Errorf("transfer: read %s@%d: %w", s.Manifest[ch.FileID].Name, ch.Offset, err)
		}
		wire.CountIOOps(1)
		err = sendFrame(wire.Frame{FileID: ch.FileID, Offset: ch.Offset, Data: buf.Bytes()}, hint)
		buf.Release()
		return err
	}

	// sendKio emits a kernel-owned chunk: header from userspace, payload
	// by sendfile. A capability refusal before any byte hits the wire
	// falls back to the buffered path (and latches kioBroken so the read
	// stage stops planning kernel-owned runs); a refusal mid-frame
	// desyncs the stream, so the connection is retired and recovery
	// re-plans it like any other write failure.
	sendKio := func(ch Chunk, hint int) error {
		r, err := readerFor(ch.FileID)
		if err != nil {
			return err
		}
		fileSrc, ok := r.(syscall.Conn)
		if !ok {
			kioBroken.Store(true)
			return resendBuffered(ch, hint)
		}
		for {
			c := conns.pick(hint)
			if c == nil {
				return errConnsExhausted
			}
			err := conns.writeKio(c, ch.FileID, ch.Offset, ch.N, fileSrc)
			if err == nil {
				return nil
			}
			if errors.Is(err, errRunDone) {
				return err
			}
			if errors.Is(err, wire.ErrKioUnsupported) {
				// Nothing was written on the slot; take the buffered path.
				kioBroken.Store(true)
				return resendBuffered(ch, hint)
			}
			if isKioRefusal(err) {
				kioBroken.Store(true)
			}
			if conns.markDead(c) {
				spawnRecovery(c, err)
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
	}

	// The kio network stage drains batches so adjacent frames share one
	// vectored write; outside kio the drain is a single chunk and the
	// wire path is the untouched portable one. A shaped network stage
	// also stays chunk-at-a-time: rate-bound sends gain nothing from
	// syscall batching, and batching would lump the paced writes into
	// end-of-window bursts.
	drain := 1
	if kio && cfg.Shaping.NetPerStreamMbps <= 0 && cfg.Shaping.LinkMbps <= 0 {
		drain = sendBatchChunks
	}

	netPool := NewPool(func(stop <-chan struct{}, id int) {
		lim := netPerStream.get(id)
		poll := newPollTimer()
		defer poll.stop()
		var batch []Chunk
		var frames []wire.Frame
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			default:
			}
			var closed bool
			batch, closed = staging.TryGetN(batch[:0], drain)
			if len(batch) == 0 {
				if closed {
					return
				}
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case <-poll.after(2 * time.Millisecond):
				}
				continue
			}
			// Reserve shaping tokens chunk by chunk (not one batch-sized
			// debt) so a shaped link paces a batched sender the same as a
			// portable one; only the writes are batched.
			var total int64
			aborted := false
			for i := range batch {
				sz := int(batch[i].size())
				if err := lim.WaitN(ctx, sz); err != nil {
					aborted = true
					break
				}
				if err := link.WaitN(ctx, sz); err != nil {
					aborted = true
					break
				}
				total += int64(sz)
			}
			if aborted { // limiter wait cancelled: the run is coming down
				for i := range batch {
					batch[i].Release()
				}
				return
			}
			span := flight.StageStart()
			frames = frames[:0]
			var err error
			for i := range batch {
				ch := &batch[i]
				if ch.Kio {
					if err = sendFrameBatch(frames, id); err != nil {
						break
					}
					frames = frames[:0]
					if err = sendKio(*ch, id); err != nil {
						break
					}
					continue
				}
				frames = append(frames, wire.Frame{
					FileID: ch.FileID, Offset: ch.Offset, Data: ch.Data,
					Checksum: checksums, Sum: ch.Sum, SumKnown: checksums,
				})
			}
			if err == nil {
				err = sendFrameBatch(frames, id)
			}
			flight.StageEnd(flight.StageNet, span)
			for i := range batch {
				batch[i].Release()
			}
			if err != nil {
				if errors.Is(err, errRunDone) {
					return
				}
				s.failSymptom(fmt.Errorf("transfer: send frame: %w", err))
				cancel()
				return
			}
			netCounter.Add(total)
			netTotal.Add(total)
		}
	})
	// Cleanup order matters: closing the staging buffer first wakes
	// readers blocked in Put so the pool shutdowns cannot deadlock. Once
	// both pools have exited, any chunks stranded in staging (aborted
	// transfer) return their arena leases. Connections close only after
	// every recovery has wound down — a close at a frame boundary reads
	// as a clean end-of-stream at the receiver, so no EndStream marker is
	// needed (one would wrongly end a shared connection that recovery
	// might still write to).
	defer conns.closeAll()
	defer func() {
		staging.Close()
		readPool.Shutdown()
		netPool.Shutdown()
		staging.ReleaseRemaining()
	}()
	// Recovery goroutines may outlive the workers that spawned them; they
	// must finish (or observe completion/cancellation) before the reader
	// cache and the connections go away. Disarm spawning first (LIFO):
	// the death watch fires for every socket closeAll tears down, and a
	// recovery started after the Wait would race the teardown.
	defer recoverWG.Wait()
	defer func() {
		recMu.Lock()
		recClosed = true
		recMu.Unlock()
	}()

	// Control reader: receiver statuses and completion. ctrlDone lets the
	// shutdown path wait for a final receiver-reported root cause before
	// surfacing a connection symptom.
	ctrlDone := make(chan struct{})
	go func() {
		defer close(ctrlDone)
		for {
			m, err := ctrl.Recv()
			if err != nil {
				select {
				case <-doneCh:
				default:
					s.failSymptom(fmt.Errorf("transfer: control channel: %w", err))
					cancel()
				}
				return
			}
			if m.LedgerState != nil {
				// Route a ledger-pull reply to its waiting recovery.
				pullMu.Lock()
				if ch, ok := pullWaiters[m.LedgerState.Seq]; ok {
					ch <- m.LedgerState.Ledger
				}
				pullMu.Unlock()
				continue
			}
			if m.Status == nil {
				continue
			}
			s.mu.Lock()
			s.lastStatus = *m.Status
			s.mu.Unlock()
			if m.Status.Error != "" {
				s.fail(fmt.Errorf("transfer: receiver: %s", m.Status.Error))
				cancel()
				return
			}
			if m.Status.Done {
				doneOnce.Do(func() { close(doneCh) })
				return
			}
		}
	}()

	// Initial tuple: Conns connections each carrying InitialThreads
	// streams (Conns defaults to 1, reproducing the legacy single-socket
	// start), InitialThreads readers and writers.
	readPool.Resize(cfg.InitialThreads)
	streams := cfg.InitialThreads
	netPool.Resize(conns.size() * streams)
	writers := cfg.InitialThreads

	rec := metrics.NewRecorder()
	start := time.Now()
	ticker := time.NewTicker(cfg.ProbeInterval)
	defer ticker.Stop()

	record := func() env.State {
		now := time.Since(start).Seconds()
		st := s.status()
		dt := cfg.ProbeInterval.Seconds()
		state := env.State{
			N: [env.StageCount]int{
				env.StageRead:    readPool.Size(),
				env.StageConns:   conns.size(),
				env.StageStreams: streams,
				env.StageWrite:   writers,
			},
			Throughput: env.ThroughputVec(
				bytesToMb(readCounter.Reset())/dt,
				bytesToMb(netCounter.Reset())/dt,
				st.WriteMbps,
			),
			SenderFree:   bytesToMb(staging.Free()),
			ReceiverFree: bytesToMb(st.BufFree),
		}
		rec.Series("cc_read").Record(now, float64(state.N[env.StageRead]))
		rec.Series("cc_conns").Record(now, float64(state.N[env.StageConns]))
		rec.Series("cc_streams").Record(now, float64(state.N[env.StageStreams]))
		rec.Series("cc_net").Record(now, float64(netPool.Size()))
		rec.Series("cc_write").Record(now, float64(state.N[env.StageWrite]))
		rec.Series("thr_read").Record(now, state.Throughput[env.StageRead])
		rec.Series("thr_net").Record(now, state.Throughput[env.StageConns])
		rec.Series("thr_write").Record(now, state.Throughput[env.StageWrite])
		if h := cfg.Hooks.OnTick; h != nil {
			h(state)
		}
		if h := cfg.Hooks.OnProgress; h != nil {
			h(st.CommittedBytes, total)
		}
		return state
	}

	ctrlName := "fixed"
	if s.Controller != nil {
		ctrlName = s.Controller.Name()
	}

	// The flight wrap is decided once per run (one atomic load), so a
	// disabled recorder adds nothing to the probe loop. The source is
	// keyed by session ID: a resumed attempt appends to the prior
	// attempt's ring and continues its cumulative regret.
	decider := s.Controller
	if decider != nil && flight.Active() {
		decider = flight.WrapController(decider, flight.Default(), "ctrl:"+sess.ID, env.DefaultK, 0)
	}

	for {
		select {
		case <-ctx.Done():
			if s.errIsSymptom() {
				// The data plane failed with a plumbing error. The usual
				// cause is the receiver dying, and its control channel
				// status names why; give that report a moment to land.
				select {
				case <-ctrlDone:
				case <-time.After(500 * time.Millisecond):
				}
			}
			if err := s.Err(); err != nil {
				return nil, err
			}
			return nil, ctx.Err()
		case <-doneCh:
			record()
			d := time.Since(start)
			return &Result{
				Duration:     d,
				Bytes:        planned,
				AvgMbps:      bytesToMb(planned) / d.Seconds(),
				Controller:   ctrlName,
				SessionID:    sess.ID,
				Resumed:      sess.Resumed,
				SkippedBytes: skipped,
				WireBytes:    netTotal.Load(),
				ResentBytes:  resentTotal.Load(),
				Recorder:     rec,
			}, s.Err()
		case <-ticker.C:
			state := record()
			if decider == nil {
				continue
			}
			act := decider.Decide(state).Clamp(cfg.MaxThreads)
			if negotiated < 2 {
				act.N[env.StageConns] = 1 // nothing to demux striped conns by
			}
			readPool.Resize(act.N[env.StageRead])
			conns.setWant(act.N[env.StageConns])
			streams = act.N[env.StageStreams]
			netPool.Resize(act.N[env.StageConns] * streams)
			if act.N[env.StageWrite] != writers {
				writers = act.N[env.StageWrite]
				if err := ctrl.Send(wire.Message{SetWriters: &wire.SetWriters{N: writers}}); err != nil {
					// The receiver tears the control channel down the
					// moment it confirms completion, so a probe tick can
					// lose this race and hit a reset on a finished
					// transfer. Give the control reader a moment to
					// deliver the final Done before calling it a failure.
					select {
					case <-doneCh:
					case <-ctrlDone:
						select {
						case <-doneCh:
						default:
							s.failSymptom(fmt.Errorf("transfer: send SetWriters: %w", err))
							cancel()
						}
					case <-time.After(500 * time.Millisecond):
						s.failSymptom(fmt.Errorf("transfer: send SetWriters: %w", err))
						cancel()
					}
				}
			}
		}
	}
}
