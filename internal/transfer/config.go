package transfer

import (
	"net"
	"sync"
	"time"

	"automdt/internal/env"
	"automdt/internal/rate"
	"automdt/internal/wire"
)

// Shaping configures the emulated testbed's rate caps in Mbps. Zero
// values mean unshaped. Per-thread caps emulate the paper's per-TCP-stream
// throttles (§V-B-1); aggregate caps emulate link and storage bandwidth.
type Shaping struct {
	ReadPerThreadMbps  float64
	NetPerStreamMbps   float64
	WritePerThreadMbps float64
	ReadAggMbps        float64
	LinkMbps           float64
	WriteAggMbps       float64
}

// Hooks observe one transfer's lifecycle. All callbacks are optional and
// are invoked synchronously from the sender's control loop, so they must
// be fast and must not call back into the engine. The scheduler
// (internal/sched) uses them to track per-job progress and to feed the
// budget arbiter live state.
type Hooks struct {
	// OnStart runs once when Sender.Run begins, before any connection is
	// made.
	OnStart func()
	// OnSession runs once after the control handshake with the
	// negotiated session: its identity and how much of the dataset the
	// receiver's ledger already covers.
	OnSession func(Session)
	// OnTick runs every probe interval with the freshly observed state
	// (thread counts, per-stage throughputs, free buffer space).
	OnTick func(State)
	// OnProgress runs every probe interval with the receiver-reported
	// committed byte count (including ranges inherited by a resume) and
	// the dataset total.
	OnProgress func(committed, total int64)
	// OnDataConn runs after each striped data connection is dialed and
	// preambled, with its slot index and the live socket. Failure tests
	// use it to kill one connection of a striped transfer mid-flight.
	OnDataConn func(index int, conn net.Conn)
	// OnDone runs exactly once when Sender.Run returns, with Run's
	// result and error. Key success on err == nil: when the receiver
	// completed but a sender-side error was recorded, both are non-nil.
	OnDone func(*Result, error)
}

// Session describes a negotiated transfer session, delivered to
// Hooks.OnSession right after the control handshake.
type Session struct {
	// ID is the session identity (the ledger key at the receiver).
	ID string
	// Resumed reports whether the receiver advertised committed ranges
	// from a previous attempt.
	Resumed bool
	// TotalBytes is the dataset size.
	TotalBytes int64
	// SkippedBytes is the committed volume the sender will not re-read
	// or re-send.
	SkippedBytes int64
}

// State re-exports env.State so hook signatures don't force callers to
// import internal/env separately.
type State = env.State

// Config parameterizes both ends of the transfer engine.
type Config struct {
	// ChunkBytes is the pipeline chunk size. Default 256 KiB.
	ChunkBytes int
	// SenderBufBytes and ReceiverBufBytes are the staging capacities.
	// Default 64 MiB each.
	SenderBufBytes   int64
	ReceiverBufBytes int64
	// MaxThreads bounds each stage's pool. Default 32.
	MaxThreads int
	// ProbeInterval is the control/metrics tick. Default 250 ms.
	ProbeInterval time.Duration
	// InitialThreads is the starting concurrency for all stages.
	// Default 1.
	InitialThreads int
	// Conns is the starting number of parallel data connections the
	// sender stripes its chunks across (the controller's conns dimension;
	// each connection carries InitialThreads network streams at start). A
	// controller resizes it every probe interval like the thread pools.
	// Default 1 — the legacy single-socket data plane. Peers below
	// protocol 2 force one connection regardless.
	Conns int
	// SessionID names a resumable session. When set, the receiver
	// persists a chunk ledger through the destination store (if it
	// implements fsim.LedgerStore) and a later run with the same ID and
	// manifest resumes where the interrupted one stopped. Empty means a
	// one-shot transfer. The scheduler assigns one per job so retries
	// resume instead of restarting.
	SessionID string
	// DisableChecksums turns off integrity verification: the per-frame
	// CRC-32C on the wire, the per-chunk sums recorded in the session
	// ledger, and the end-to-end per-file CRC check at commit. Checksums
	// are ON by default (the paper's Globus runs disabled verification;
	// production DTNs should not).
	DisableChecksums bool
	// MaxSessions is the receiver endpoint's admission cap: how many
	// transfer sessions one Receiver serves concurrently. Sessions beyond
	// the cap are rejected at the handshake with a clear error instead of
	// being queued. Default 64.
	MaxSessions int
	// LedgerCompactBytes is the receiver's journal-compaction floor: a
	// session's append-only ledger journal is folded into a fresh binary
	// snapshot once it outgrows max(LedgerCompactBytes, last snapshot
	// size), bounding both resume replay time and steady-state write
	// amplification (≈2×). Zero means the 1 MiB default; negative
	// disables size-triggered compaction (the journal still folds at
	// session start).
	LedgerCompactBytes int64
	// LedgerTTL is the receiver's stale-session GC horizon: ledgers whose
	// last write is older than this are removed when the endpoint starts
	// serving (counted in automdt_resume_ledgers_expired_total), so
	// long-lived destination directories don't accumulate the control
	// state of sessions that were abandoned rather than resumed. Zero
	// means the 30-day default; negative disables expiry.
	LedgerTTL time.Duration
	// KioMode selects the kernel-assisted I/O fast path: "auto" (the
	// default; on wherever the platform supports it), "on", or "off".
	// When enabled, the sender batches contiguous chunk runs — one read,
	// one CRC-32C pass, coalesced frames when the receiver advertises
	// kio — and sendfile(2)s unmodified on-disk ranges on unchecksummed
	// file-backed transfers; the receiver flushes adjacent chunks with
	// one pwritev(2) per batch. "off" (and any non-Linux build) keeps
	// the portable per-chunk path, byte-for-byte identical on the wire.
	KioMode string
	// Shaping holds the emulated rate caps.
	Shaping Shaping
	// WriteBudgetMbps is the receiver endpoint's arbitrated write-stage
	// budget: when positive, the endpoint splits this many Mbps max-min
	// fair (equal shares, rebalanced on every session join/leave) across
	// its active sessions, so one greedy high-thread session cannot
	// starve siblings on the shared destination disks. Zero leaves the
	// write stage unarbitrated. Unlike Shaping.WriteAggMbps — one bucket
	// all sessions race for — the budget gives each session its own
	// bucket sized to its fair share.
	WriteBudgetMbps float64
	// Hooks observe the transfer lifecycle (job-scoped; optional).
	Hooks Hooks
	// WrapConn, when set, wraps every connection the sender dials —
	// kind "ctrl" for the control channel, "data" for each striped data
	// connection (wrapped before the preamble, so the whole stream is
	// covered). It is the fault-injection seam the chaos harness shapes,
	// kills, and partitions through; returning the conn unchanged is
	// always safe. A wrapper that does not implement syscall.Conn
	// automatically disables the kio zero-copy path for that connection.
	WrapConn func(kind string, c net.Conn) net.Conn
	// Arena supplies the chunk buffers for both engine ends. nil uses the
	// process-wide Default() arena, which is what lets back-to-back
	// transfers (and the scheduler's job churn) run allocation-free after
	// warmup. Inject a dedicated arena to isolate a transfer's memory.
	Arena *Arena
}

// arena resolves the configured arena, falling back to the process-wide
// default.
func (c Config) arena() *Arena {
	if c.Arena != nil {
		return c.Arena
	}
	return Default()
}

// checksums reports whether the session verifies integrity (the default).
func (c Config) checksums() bool { return !c.DisableChecksums }

// kioEnabled resolves KioMode against the platform capability: true for
// "on"/"auto" (the default) where the build carries the kernel-assisted
// path, false for "off" or any non-Linux build.
func (c Config) kioEnabled() bool {
	return c.KioMode != "off" && wire.KioAvailable()
}

// WithDefaults returns cfg with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 256 << 10
	}
	if c.SenderBufBytes <= 0 {
		c.SenderBufBytes = 64 << 20
	}
	if c.ReceiverBufBytes <= 0 {
		c.ReceiverBufBytes = 64 << 20
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 32
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.InitialThreads <= 0 {
		c.InitialThreads = 1
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.LedgerTTL == 0 {
		c.LedgerTTL = 30 * 24 * time.Hour
	}
	if c.LedgerCompactBytes == 0 {
		c.LedgerCompactBytes = 1 << 20
	}
	if c.KioMode == "" {
		c.KioMode = "auto"
	}
	return c
}

// mbpsToBytesPerSec converts a Mbps figure to bytes per second.
func mbpsToBytesPerSec(mbps float64) float64 { return mbps * 1e6 / 8 }

// bytesToMb converts a byte count to megabits.
func bytesToMb(b int64) float64 { return float64(b) * 8 / 1e6 }

// newLimiter builds a token bucket for a Mbps cap with a burst of 20 ms
// worth of tokens (or one chunk, whichever is larger) so rate shaping
// stays tight even on short transfers. A zero cap yields an unlimited
// limiter.
func newLimiter(mbps float64, chunkBytes int) *rate.Limiter {
	if mbps <= 0 {
		return rate.Unlimited()
	}
	bps := mbpsToBytesPerSec(mbps)
	burst := bps * 0.02
	if burst < float64(chunkBytes) {
		burst = float64(chunkBytes)
	}
	return rate.NewLimiter(bps, burst)
}

// limiterSet lazily creates per-slot limiters sharing one Mbps cap. Safe
// for concurrent use.
type limiterSet struct {
	mbps  float64
	chunk int

	mu   sync.Mutex
	lims []*rate.Limiter
}

func newLimiterSet(mbps float64, chunk int) *limiterSet {
	return &limiterSet{mbps: mbps, chunk: chunk}
}

// get returns the limiter for slot id, creating limiters up to id on
// first use.
func (s *limiterSet) get(id int) *rate.Limiter {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.lims) <= id {
		s.lims = append(s.lims, newLimiter(s.mbps, s.chunk))
	}
	return s.lims[id]
}
