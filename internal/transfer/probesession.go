package transfer

import (
	"context"
	"fmt"
	"sync"
	"time"

	"automdt/internal/env"
	"automdt/internal/fsim"
	"automdt/internal/workload"
)

// ProbeSession drives the live engine as a probe.Runner: it starts an
// open-ended transfer over loopback (or any receiver) and lets callers
// measure the per-stage throughput of arbitrary concurrency tuples — the
// §IV-A exploration-and-logging phase executed against the real data
// path instead of the simulator.
type ProbeSession struct {
	interval time.Duration
	ctrl     *probeController
	cancel   context.CancelFunc
	done     chan struct{}
	err      error
	mu       sync.Mutex
}

// probeController pins the engine to an externally requested tuple and
// records the latest observed state.
type probeController struct {
	mu   sync.Mutex
	want env.Action
	last env.State
	seen int
}

func (p *probeController) Name() string { return "probe" }

func (p *probeController) Decide(s env.State) env.Action {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.last = s
	p.seen++
	return p.want
}

func (p *probeController) set(a env.Action) {
	p.mu.Lock()
	p.want = a
	p.mu.Unlock()
}

func (p *probeController) state() (env.State, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last, p.seen
}

// NewProbeSession starts a loopback probe transfer: a synthetic source
// large enough to outlast the exploration run, a synthetic sink, and the
// given engine configuration (whose Shaping defines the emulated path).
// Close the session when profiling is done.
func NewProbeSession(ctx context.Context, cfg Config) (*ProbeSession, error) {
	cfg = cfg.WithDefaults()
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	// An effectively endless dataset: probing stops long before this.
	manifest := workload.LargeFiles(1024, 1<<30)

	ctx, cancel := context.WithCancel(ctx)
	pc := &probeController{want: env.ActionOf(1, 1, 1, 1)}
	ps := &ProbeSession{
		interval: cfg.ProbeInterval,
		ctrl:     pc,
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	recv := NewReceiver(cfg, dst)
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		cancel()
		return nil, err
	}
	go func() { recv.Serve(ctx) }()
	send := &Sender{Cfg: cfg, Store: src, Manifest: manifest, Controller: pc}
	go func() {
		defer close(ps.done)
		_, err := send.Run(ctx, recv.DataAddr(), recv.CtrlAddr())
		if err != nil && ctx.Err() == nil {
			ps.mu.Lock()
			ps.err = err
			ps.mu.Unlock()
		}
	}()
	return ps, nil
}

// Probe implements probe.Runner: apply the stage tuple, wait for the
// engine to settle (two probe intervals), and report the measured
// physical stage rates in Mbps.
func (ps *ProbeSession) Probe(a env.Action) (tr, tn, tw float64) {
	ps.ctrl.set(a)
	_, before := ps.ctrl.state()
	deadline := time.Now().Add(10 * ps.interval)
	// Wait until at least two fresh controller observations arrive with
	// the new tuple in effect.
	for {
		time.Sleep(ps.interval / 2)
		st, seen := ps.ctrl.state()
		if seen >= before+3 || time.Now().After(deadline) {
			return st.Throughput[env.StageRead], st.Throughput[env.StageConns],
				st.Throughput[env.StageWrite]
		}
	}
}

// Err returns a fatal engine error, if any occurred.
func (ps *ProbeSession) Err() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.err
}

// Close terminates the probe transfer and waits for the engine to wind
// down.
func (ps *ProbeSession) Close() error {
	ps.cancel()
	select {
	case <-ps.done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("transfer: probe session did not shut down in time")
	}
	return ps.Err()
}
