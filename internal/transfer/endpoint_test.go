package transfer

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

// gauge extracts one sample value from a snapshot by name and optional
// single label value.
func gauge(t *testing.T, snap metrics.Snapshot, name, labelValue string) float64 {
	t.Helper()
	for _, s := range snap.Samples() {
		if s.Name != name {
			continue
		}
		if labelValue == "" || (len(s.Labels) > 0 && s.Labels[0].Value == labelValue) {
			return s.Value
		}
	}
	t.Fatalf("no sample %s{%s}", name, labelValue)
	return 0
}

// The tentpole acceptance test: one Receiver.Serve endpoint completes
// nine concurrent sessions from distinct senders — eight protocol-2
// peers plus one forced protocol-1 legacy peer — while one session is
// killed mid-run and resumed against the same endpoint. Sibling sessions
// must complete unperturbed and per-session ledgers must never
// cross-contaminate.
func TestEndpointServesConcurrentSessions(t *testing.T) {
	dir := t.TempDir()
	dst, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	cfg.ProbeInterval = 25 * time.Millisecond // frequent ledger persistence
	cfg.InitialThreads = 2
	recv := NewReceiver(cfg, dst)
	done := make(chan SessionResult, 64)
	recv.OnSessionDone = func(r SessionResult) { done <- r }
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	srvCtx, srvCancel := context.WithCancel(context.Background())
	defer srvCancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- recv.Serve(srvCtx) }()

	const peers = 9
	const killed = 0 // session killed mid-run and resumed
	const legacy = 1 // forced protocol-1 peer
	session := func(i int) string { return fmt.Sprintf("sess-%02d", i) }
	manifests := make([]workload.Manifest, peers)
	for i := range manifests {
		n, size := 3, int64(512<<10)
		if i == killed {
			n, size = 4, 2<<20 // big enough for the kill to land mid-flight
		}
		var m workload.Manifest
		for j := 0; j < n; j++ {
			// Per-session name prefixes: the endpoint shares one store, so
			// tenants namespace their files.
			m = append(m, workload.File{Name: fmt.Sprintf("s%02d/f%d.dat", i, j), Size: size})
		}
		manifests[i] = m
	}
	killTotal := manifests[killed].TotalBytes()

	// Kill the victim's sender once its persisted ledger shows real
	// progress — a mid-dataset death of one tenant among nine.
	killCtx, kill := context.WithCancel(context.Background())
	defer kill()
	go func() {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if l, err := LoadSessionLedger(dst, session(killed)); err == nil && l.CommittedBytes() > killTotal/4 {
				kill()
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		kill()
	}()

	var wg sync.WaitGroup
	errs := make([]error, peers)
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scfg := cfg
			scfg.SessionID = session(i)
			ctx := context.Background()
			if i == killed {
				scfg.Shaping.LinkMbps = 200 // ~25 MB/s so the kill lands mid-flight
				ctx = killCtx
			}
			send := &Sender{Cfg: scfg, Store: fsim.NewSyntheticStore(), Manifest: manifests[i]}
			if i == legacy {
				send.forceProto = 1
			}
			runCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
			_, errs[i] = send.Run(runCtx, recv.DataAddr(), recv.CtrlAddr())
		}(i)
	}
	wg.Wait()

	if errs[killed] == nil {
		t.Fatal("killed sender completed; the kill did not land mid-flight")
	}
	for i := 0; i < peers; i++ {
		if i != killed && errs[i] != nil {
			t.Fatalf("sibling session %d failed alongside the killed one: %v", i, errs[i])
		}
	}

	// Collect every session's receiver-side result (the victim's arrives
	// when its teardown finishes persisting the ledger).
	results := make(map[string]SessionResult, peers)
	timeout := time.After(30 * time.Second)
	for len(results) < peers {
		select {
		case r := <-done:
			results[r.SessionID] = r
		case <-timeout:
			t.Fatalf("only %d of %d session results arrived", len(results), peers)
		}
	}
	for i := 0; i < peers; i++ {
		r, ok := results[session(i)]
		if !ok {
			t.Fatalf("no receiver-side result for %s", session(i))
		}
		if i == killed {
			if r.Err == nil {
				t.Fatal("killed session reported success at the receiver")
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("receiver failed sibling %s: %v", r.SessionID, r.Err)
		}
		want := wire.ProtoVersion
		if i == legacy {
			want = 1
		}
		if r.Proto != want {
			t.Fatalf("session %s negotiated protocol %d, want %d", r.SessionID, r.Proto, want)
		}
	}

	// Ledger isolation: the victim's persisted ledger describes exactly
	// its own namespaced files — nothing leaked in from the eight
	// sessions that shared the endpoint.
	l, err := LoadSessionLedger(dst, session(killed))
	if err != nil {
		t.Fatalf("killed session left no ledger to resume from: %v", err)
	}
	if err := l.MatchesManifest(manifests[killed]); err != nil {
		t.Fatalf("killed session's ledger cross-contaminated: %v", err)
	}
	for _, f := range l.Files {
		if !strings.HasPrefix(f.Name, fmt.Sprintf("s%02d/", killed)) {
			t.Fatalf("foreign file %q in session ledger", f.Name)
		}
	}
	committed := l.CommittedBytes()
	if committed <= 0 || committed >= killTotal {
		t.Fatalf("victim committed %d of %d; kill did not land mid-flight", committed, killTotal)
	}
	// Completed siblings must have dropped their ledgers.
	for i := 0; i < peers; i++ {
		if i == killed {
			continue
		}
		if _, err := dst.LoadLedger(session(i)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("completed session %s still has a ledger (err=%v)", session(i), err)
		}
	}

	// Resume the victim against the SAME still-running endpoint.
	rcfg := cfg
	rcfg.SessionID = session(killed)
	resumeCtx, cancelResume := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelResume()
	send := &Sender{Cfg: rcfg, Store: fsim.NewSyntheticStore(), Manifest: manifests[killed]}
	res, err := send.Run(resumeCtx, recv.DataAddr(), recv.CtrlAddr())
	if err != nil {
		t.Fatalf("resume against live endpoint failed: %v", err)
	}
	if !res.Resumed || res.SkippedBytes <= 0 {
		t.Fatalf("second run did not resume the ledger: %+v", res)
	}
	if _, err := dst.LoadLedger(session(killed)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("resumed session's ledger not removed on completion (err=%v)", err)
	}

	// Every destination byte of every tenant is correct.
	for i, m := range manifests {
		for _, f := range m {
			got, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(f.Name)))
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			want := make([]byte, f.Size)
			fsim.FillContent(f.Name, 0, want)
			if !bytes.Equal(got, want) {
				t.Fatalf("session %d: %s corrupt", i, f.Name)
			}
		}
	}

	snap := recv.MetricsSnapshot()
	if got := gauge(t, snap, "automdt_endpoint_sessions_total", "admitted"); got != peers+1 {
		t.Fatalf("admitted %v sessions, want %d", got, peers+1)
	}
	if got := gauge(t, snap, "automdt_endpoint_sessions_total", "completed"); got != peers {
		t.Fatalf("completed %v sessions, want %d", got, peers)
	}
	if got := gauge(t, snap, "automdt_endpoint_sessions_total", "failed"); got != 1 {
		t.Fatalf("failed %v sessions, want 1", got)
	}

	srvCancel()
	<-serveErr
}

// helloConn opens a raw control connection and sends a Hello, returning
// the connection for reply inspection.
func helloConn(t *testing.T, addr string, h wire.Hello) *wire.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(raw)
	if err := c.Send(wire.Message{Hello: &h}); err != nil {
		t.Fatal(err)
	}
	return c
}

// recvReply reads control messages until a Welcome or an errored Status
// arrives.
func recvReply(t *testing.T, c *wire.Conn) wire.Message {
	t.Helper()
	for {
		m, err := c.Recv()
		if err != nil {
			t.Fatalf("control channel died before a reply: %v", err)
		}
		if m.Welcome != nil || (m.Status != nil && m.Status.Error != "") {
			return m
		}
	}
}

// Admission cap: sessions beyond Config.MaxSessions are rejected at the
// handshake with a clear error, not queued or dropped.
func TestEndpointAdmissionCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSessions = 2
	recv := NewReceiver(cfg, fsim.NewSyntheticStore())
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	go recv.Serve(ctx)

	hello := wire.Hello{
		Files:        []wire.FileInfo{{Name: "pin.dat", Size: 1 << 20}},
		ChunkBytes:   64 << 10,
		ProtoVersion: wire.ProtoVersion,
	}
	// Two admitted sessions pin the cap (no data flows, so they stay
	// active); the third Hello must bounce.
	for i := 0; i < 2; i++ {
		c := helloConn(t, recv.CtrlAddr(), hello)
		defer c.Close()
		if m := recvReply(t, c); m.Welcome == nil {
			t.Fatalf("session %d rejected below the cap: %+v", i, m)
		}
	}
	c := helloConn(t, recv.CtrlAddr(), hello)
	defer c.Close()
	m := recvReply(t, c)
	if m.Status == nil || !strings.Contains(m.Status.Error, "capacity") {
		t.Fatalf("third session not rejected with a capacity error: %+v", m)
	}
	if got := gauge(t, recv.MetricsSnapshot(), "automdt_endpoint_sessions_total", "rejected"); got != 1 {
		t.Fatalf("rejected gauge %v, want 1", got)
	}
}

// Pre-v2 peers send no data preamble, so their connections are
// indistinguishable: the endpoint serves exactly one at a time and
// rejects a second with a clear error.
func TestEndpointSingleLegacySlot(t *testing.T) {
	recv := NewReceiver(testConfig(), fsim.NewSyntheticStore())
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	go recv.Serve(ctx)

	hello := wire.Hello{
		Files:        []wire.FileInfo{{Name: "pin.dat", Size: 1 << 20}},
		ChunkBytes:   64 << 10,
		ProtoVersion: 1,
	}
	first := helloConn(t, recv.CtrlAddr(), hello)
	defer first.Close()
	if m := recvReply(t, first); m.Welcome == nil {
		t.Fatalf("first legacy session rejected: %+v", m)
	}
	second := helloConn(t, recv.CtrlAddr(), hello)
	defer second.Close()
	if m := recvReply(t, second); m.Status == nil || !strings.Contains(m.Status.Error, "pre-v2") {
		t.Fatalf("second legacy session not rejected: %+v", m)
	}
}

// A retried attempt races its predecessor's teardown: the sender is
// gone but the session still holds the ledger key until the receiver
// notices the dead control channel. The retry's Hello must be admitted
// once the teardown finishes, not bounced with "already active".
func TestEndpointRetryReclaimsSessionKey(t *testing.T) {
	cfg := testConfig()
	// A long probe interval proves teardown is driven by control-channel
	// death detection, not the status tick.
	cfg.ProbeInterval = 2 * time.Second
	recv := NewReceiver(cfg, fsim.NewSyntheticStore())
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	go recv.Serve(ctx)

	hello := wire.Hello{
		Files:        []wire.FileInfo{{Name: "r.dat", Size: 1 << 20}},
		ChunkBytes:   64 << 10,
		ProtoVersion: wire.ProtoVersion,
		SessionID:    "retry-me",
	}
	first := helloConn(t, recv.CtrlAddr(), hello)
	if m := recvReply(t, first); m.Welcome == nil {
		t.Fatalf("first attempt rejected: %+v", m)
	}
	first.Close() // the attempt dies; its session must release the key

	second := helloConn(t, recv.CtrlAddr(), hello)
	defer second.Close()
	if m := recvReply(t, second); m.Welcome == nil {
		t.Fatalf("retry bounced instead of reclaiming the session: %+v", m)
	}
}

// A data connection carrying an unknown routing token must be closed
// without admitting a single frame.
func TestEndpointRejectsUnknownToken(t *testing.T) {
	recv := NewReceiver(testConfig(), fsim.NewSyntheticStore())
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	go recv.Serve(ctx)

	conn, err := net.Dial("tcp", recv.DataAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteDataPreamble(conn, wire.NewDataToken()); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("endpoint kept a connection with an unknown token open")
	}
}

// Stale session ledgers — in both the per-session-directory and the
// legacy flat layout — are expired when the endpoint starts serving;
// fresh ledgers survive.
func TestEndpointExpiresStaleLedgers(t *testing.T) {
	dir := t.TempDir()
	dst, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-60 * 24 * time.Hour)
	if err := dst.SaveLedger("stale-dir", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(filepath.Join(dir, ".automdt", "stale-dir", "ledger.json"), old, old); err != nil {
		t.Fatal(err)
	}
	flat := filepath.Join(dir, ".automdt", "stale-flat.ledger")
	if err := os.WriteFile(flat, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(flat, old, old); err != nil {
		t.Fatal(err)
	}
	if err := dst.SaveLedger("fresh", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}

	recv := NewReceiver(testConfig(), dst) // default 30-day TTL
	if err := recv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // GC runs before the accept loop; the endpoint exits at once
	recv.Serve(ctx)

	if _, err := dst.LoadLedger("stale-dir"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale per-session ledger survived GC (err=%v)", err)
	}
	if _, err := dst.LoadLedger("stale-flat"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale flat-layout ledger survived GC (err=%v)", err)
	}
	if _, err := dst.LoadLedger("fresh"); err != nil {
		t.Fatalf("fresh ledger expired: %v", err)
	}
	if got := gauge(t, recv.MetricsSnapshot(), "automdt_endpoint_ledgers_expired_total", ""); got != 2 {
		t.Fatalf("expired gauge %v, want 2", got)
	}
}
