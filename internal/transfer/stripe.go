package transfer

// Striped data plane: one transfer session fans its chunks out over a
// resizable set of parallel data connections (the controller's conns
// dimension n_c), each opening with the session's protocol ≥ 2 preamble.
// Network workers (the streams-per-connection dimension n_s; n_c·n_s of
// them in total) share the connections — a per-connection mutex
// serializes frame writes — so the two dimensions resize independently:
// growing streams adds workers, growing conns adds sockets for them to
// rotate across. The receiver fans every connection of a session into
// the same staging/commit path, so striping changes nothing about
// resume, ledger, or checksum semantics.

import (
	"errors"
	"net"
	"sync"
	"syscall"

	"automdt/internal/wire"
)

// chunkRef names one chunk that crossed (or should cross) the wire.
type chunkRef struct {
	fileID uint32
	off    int64
	n      int32
}

// dataConn is one striped data connection slot. The socket is dialed
// lazily by the first worker that picks the slot; its mutex serializes
// the dial and every frame write. sent is the slot's chunk history — the
// candidate loss set a recovery re-plans when the connection dies.
type dataConn struct {
	index int

	mu   sync.Mutex
	conn net.Conn
	fw   wire.FrameWriter
	sent []chunkRef

	// dead is guarded by the owning connSet's mutex, not mu, so pick can
	// skip dead slots without taking each slot's write lock.
	dead bool
}

// takeHistory drains a dead slot's sent history for recovery.
func (c *dataConn) takeHistory() []chunkRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.sent
	c.sent = nil
	return h
}

// errConnsExhausted reports that no live data connection remains; only
// then does a striped sender fail the attempt.
var errConnsExhausted = errors.New("transfer: every data connection is dead")

// connSet is a session's striped connection pool.
type connSet struct {
	dial   func(index int) (net.Conn, error) // dial + preamble; retries internally
	onConn func(index int, conn net.Conn)    // Hooks.OnDataConn, may be nil
	onDead func(c *dataConn)                 // read-side death watch, may be nil

	mu    sync.Mutex
	conns []*dataConn
	want  int    // live prefix length (the controller's n_c)
	next  uint64 // rotation cursor
}

func newConnSet(want int, dial func(int) (net.Conn, error), onConn func(int, net.Conn)) *connSet {
	if want < 1 {
		want = 1
	}
	return &connSet{dial: dial, onConn: onConn, want: want}
}

// setWant resizes the live prefix. Growth exposes fresh slots (dialed on
// first pick); shrinking retires slots beyond the prefix without closing
// them — their kernel buffers keep draining, and a later grow reuses
// them.
func (cs *connSet) setWant(n int) {
	if n < 1 {
		n = 1
	}
	cs.mu.Lock()
	cs.want = n
	cs.mu.Unlock()
}

// size returns the configured live-prefix length.
func (cs *connSet) size() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.want
}

// pick returns a connection slot. A non-negative hint (the calling
// worker's id) pins the worker to one slot while it lives — affinity
// keeps each socket's frame stream batched and avoids every worker
// contending on every slot's write lock — and workers spread evenly
// because ids are assigned densely. With a negative hint, or when the
// hinted slot is dead, it falls back to rotation over live slots in the
// prefix, then any live retired slot, and returns nil only when no live
// slot exists.
func (cs *connSet) pick(hint int) *dataConn {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for len(cs.conns) < cs.want {
		cs.conns = append(cs.conns, &dataConn{index: len(cs.conns)})
	}
	if hint >= 0 {
		if c := cs.conns[hint%cs.want]; !c.dead {
			return c
		}
	}
	for try := 0; try < cs.want; try++ {
		c := cs.conns[int(cs.next)%cs.want]
		cs.next++
		if !c.dead {
			return c
		}
	}
	for _, c := range cs.conns {
		if !c.dead {
			return c
		}
	}
	return nil
}

// markDead retires a failed slot permanently and closes its socket. It
// reports whether this call was the one that killed it, so exactly one
// caller runs the slot's recovery.
func (cs *connSet) markDead(c *dataConn) bool {
	cs.mu.Lock()
	if c.dead {
		cs.mu.Unlock()
		return false
	}
	c.dead = true
	cs.mu.Unlock()
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
	return true
}

// ensure dials slot c's socket on first use (c.mu held by the caller)
// and arms its read-side death watch: the sender never receives on a
// data connection, so a returning Read means the peer closed or reset
// the stream — or the slot was retired locally, which onDead must treat
// as a no-op. The watch is how a receiver-side close (e.g. a checksum
// failure on a frame that already left the sender's buffers) surfaces
// when no later write exists to fail.
func (cs *connSet) ensure(c *dataConn) error {
	if c.conn != nil {
		return nil
	}
	conn, err := cs.dial(c.index)
	if err != nil {
		return err
	}
	c.conn = conn
	if cs.onConn != nil {
		cs.onConn(c.index, conn)
	}
	if cs.onDead != nil {
		go func() {
			var b [1]byte
			conn.Read(b[:]) //nolint:errcheck // any return means the conn is gone
			cs.onDead(c)
		}()
	}
	return nil
}

// write sends one frame on slot c, dialing the socket on first use, and
// records the chunk in the slot's history once it is on the wire.
func (cs *connSet) write(c *dataConn, f wire.Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := cs.ensure(c); err != nil {
		return err
	}
	if err := c.fw.Write(c.conn, f); err != nil {
		return err
	}
	c.sent = append(c.sent, chunkRef{fileID: f.FileID, off: f.Offset, n: int32(len(f.Data))})
	return nil
}

// writeBatch sends a batch of frames on slot c as one vectored write
// (header and payload iovecs of every frame in a single writev),
// dialing the socket on first use and recording each chunk in the
// slot's history once the batch is on the wire.
func (cs *connSet) writeBatch(c *dataConn, frames []wire.Frame) error {
	if len(frames) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := cs.ensure(c); err != nil {
		return err
	}
	if err := c.fw.WriteBatch(c.conn, frames); err != nil {
		return err
	}
	for _, f := range frames {
		c.sent = append(c.sent, chunkRef{fileID: f.FileID, off: f.Offset, n: int32(len(f.Data))})
	}
	return nil
}

// writeKio sends one kernel-owned frame on slot c: the header from
// userspace, then the n payload bytes by sendfile straight from src
// into the socket. Returns wire.ErrKioUnsupported — with nothing
// written, so the slot stays usable — when either descriptor is
// unavailable; any error after the header desyncs the stream and the
// caller must retire the slot.
func (cs *connSet) writeKio(c *dataConn, fileID uint32, off int64, n int, src syscall.Conn) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := cs.ensure(c); err != nil {
		return err
	}
	sock, ok := c.conn.(syscall.Conn)
	if !ok {
		return wire.ErrKioUnsupported
	}
	if _, err := src.SyscallConn(); err != nil {
		return wire.ErrKioUnsupported
	}
	if err := c.fw.WriteKioHeader(c.conn, fileID, off, n); err != nil {
		return err
	}
	if err := wire.SendfilePayload(sock, src, off, n); err != nil {
		return err
	}
	c.sent = append(c.sent, chunkRef{fileID: fileID, off: off, n: int32(n)})
	return nil
}

// closeAll retires every slot and closes every dialed socket (end of
// run; all writes are done, and a close at a frame boundary reads as a
// clean end-of-stream at the receiver).
func (cs *connSet) closeAll() {
	cs.mu.Lock()
	conns := append([]*dataConn(nil), cs.conns...)
	for _, c := range conns {
		c.dead = true
	}
	cs.mu.Unlock()
	for _, c := range conns {
		c.mu.Lock()
		if c.conn != nil {
			c.conn.Close()
		}
		c.mu.Unlock()
	}
}
