package transfer

import (
	"context"
	"testing"
	"time"

	"automdt/internal/env"
	"automdt/internal/fsim"
	"automdt/internal/marlin"
	"automdt/internal/static"
	"automdt/internal/workload"
)

func testConfig() Config {
	return Config{
		ChunkBytes:       64 << 10,
		SenderBufBytes:   4 << 20,
		ReceiverBufBytes: 4 << 20,
		MaxThreads:       16,
		ProbeInterval:    50 * time.Millisecond,
		InitialThreads:   2,
	}
}

func TestChunkerCoversManifestExactly(t *testing.T) {
	m := workload.Manifest{
		{Name: "a", Size: 100},
		{Name: "b", Size: 64},
		{Name: "c", Size: 1},
	}
	c := newChunker(m, 64, nil)
	var total int64
	counts := map[uint32]int64{}
	for {
		id, off, n, ok := c.next()
		if !ok {
			break
		}
		if n <= 0 || n > 64 {
			t.Fatalf("chunk size %d", n)
		}
		if off != counts[id] {
			t.Fatalf("file %d: offset %d want %d (sequential)", id, off, counts[id])
		}
		counts[id] += int64(n)
		total += int64(n)
	}
	if total != m.TotalBytes() {
		t.Fatalf("chunked %d bytes want %d", total, m.TotalBytes())
	}
	if c.total != 2+1+1 {
		t.Fatalf("total chunks %d want 4", c.total)
	}
	if counts[0] != 100 || counts[1] != 64 || counts[2] != 1 {
		t.Fatalf("per-file coverage %v", counts)
	}
}

func TestChunkerSkipsEmptyFiles(t *testing.T) {
	m := workload.Manifest{
		{Name: "empty", Size: 0},
		{Name: "a", Size: 10},
	}
	c := newChunker(m, 64, nil)
	id, _, n, ok := c.next()
	if !ok || id != 1 || n != 10 {
		t.Fatalf("got id=%d n=%d ok=%v", id, n, ok)
	}
	if _, _, _, ok := c.next(); ok {
		t.Fatal("chunker should be exhausted")
	}
}

// End-to-end loopback transfer with a fixed controller and content
// verification.
func TestLoopbackTransferIntegrity(t *testing.T) {
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	dst.Verify = true
	m := workload.LargeFiles(8, 512<<10)

	res, err := Loopback(context.Background(), testConfig(), m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != m.TotalBytes() {
		t.Fatalf("bytes=%d want %d", res.Bytes, m.TotalBytes())
	}
	if dst.TotalWritten() != m.TotalBytes() {
		t.Fatalf("written=%d want %d", dst.TotalWritten(), m.TotalBytes())
	}
	if errs := dst.Errors(); len(errs) != 0 {
		t.Fatalf("corruption detected: %v", errs[0])
	}
	if res.AvgMbps <= 0 {
		t.Fatalf("AvgMbps=%v", res.AvgMbps)
	}
}

func TestLoopbackMixedDatasetOddSizes(t *testing.T) {
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	dst.Verify = true
	// Odd sizes exercise partial-chunk paths.
	m := workload.Manifest{
		{Name: "tiny", Size: 1},
		{Name: "odd", Size: 64<<10 + 17},
		{Name: "exact", Size: 128 << 10},
		{Name: "sub", Size: 63},
	}
	res, err := Loopback(context.Background(), testConfig(), m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != m.TotalBytes() || dst.TotalWritten() != m.TotalBytes() {
		t.Fatalf("bytes=%d written=%d want %d", res.Bytes, dst.TotalWritten(), m.TotalBytes())
	}
	if len(dst.Errors()) != 0 {
		t.Fatalf("corruption: %v", dst.Errors()[0])
	}
}

func TestLoopbackWithChecksums(t *testing.T) {
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	dst.Verify = true
	cfg := testConfig()
	if cfg.DisableChecksums {
		t.Fatal("checksums should be the default")
	}
	m := workload.LargeFiles(6, 512<<10)
	res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != m.TotalBytes() || len(dst.Errors()) != 0 {
		t.Fatalf("checksummed transfer failed: bytes=%d errs=%v", res.Bytes, dst.Errors())
	}
}

func TestLoopbackChecksumsDisabled(t *testing.T) {
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	dst.Verify = true
	cfg := testConfig()
	cfg.DisableChecksums = true
	m := workload.LargeFiles(6, 512<<10)
	res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != m.TotalBytes() || len(dst.Errors()) != 0 {
		t.Fatalf("unchecksummed transfer failed: bytes=%d errs=%v", res.Bytes, dst.Errors())
	}
}

func TestLoopbackWithRateShaping(t *testing.T) {
	if testing.Short() {
		t.Skip("timed test skipped in -short mode")
	}
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	cfg := testConfig()
	// Cap the link at 200 Mbps = 25 MB/s. 8 MB should take ≳0.3s.
	cfg.Shaping.LinkMbps = 200
	cfg.InitialThreads = 4
	m := workload.LargeFiles(4, 2<<20)
	start := time.Now()
	res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 250*time.Millisecond {
		t.Fatalf("transfer finished in %v; link shaping not effective", elapsed)
	}
	// Goodput must not exceed the link cap by more than burst slack.
	if res.AvgMbps > 260 {
		t.Fatalf("goodput %v Mbps exceeds 200 Mbps cap", res.AvgMbps)
	}
}

func TestLoopbackControllerTracesRecorded(t *testing.T) {
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	cfg := testConfig()
	cfg.Shaping.LinkMbps = 400 // slow it down so several ticks happen
	m := workload.LargeFiles(6, 2<<20)
	res, err := Loopback(context.Background(), cfg, m, src, dst, static.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cc_read", "cc_net", "cc_write", "thr_read", "thr_net", "thr_write"} {
		s := res.Recorder.Series(name)
		if s.Len() == 0 {
			t.Fatalf("series %s empty", name)
		}
	}
	// Static controller must pin concurrency at 4 after the first tick.
	pts := res.Recorder.Series("cc_read").Points()
	last := pts[len(pts)-1]
	if last.V != 4 {
		t.Fatalf("static controller: final cc_read=%v want 4", last.V)
	}
	if res.Controller != "static" {
		t.Fatalf("controller name %q", res.Controller)
	}
}

func TestLoopbackWithMarlinController(t *testing.T) {
	if testing.Short() {
		t.Skip("timed test skipped in -short mode")
	}
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	dst.Verify = true
	cfg := testConfig()
	cfg.Shaping = Shaping{
		ReadPerThreadMbps:  100,
		NetPerStreamMbps:   150,
		WritePerThreadMbps: 200,
		LinkMbps:           800,
	}
	m := workload.LargeFiles(8, 2<<20)
	res, err := Loopback(context.Background(), cfg, m, src, dst, marlin.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(dst.Errors()) != 0 {
		t.Fatalf("corruption under dynamic resizing: %v", dst.Errors()[0])
	}
	// Marlin must have moved concurrency off the initial value.
	vs := res.Recorder.Series("cc_read").Values()
	moved := false
	for _, v := range vs {
		if v != vs[0] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("marlin never adjusted concurrency")
	}
}

func TestLoopbackContextCancellation(t *testing.T) {
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	cfg := testConfig()
	cfg.Shaping.LinkMbps = 10 // painfully slow: 10 Mb/s
	m := workload.LargeFiles(4, 4<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err := Loopback(ctx, cfg, m, src, dst, nil)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestDynamicResizeMidTransfer(t *testing.T) {
	// A controller that ramps all stages up and down repeatedly to stress
	// pool resizing under load.
	src := fsim.NewSyntheticStore()
	dst := fsim.NewSyntheticStore()
	dst.Verify = true
	cfg := testConfig()
	cfg.ProbeInterval = 20 * time.Millisecond
	cfg.Shaping.LinkMbps = 600
	m := workload.LargeFiles(8, 2<<20)
	step := 0
	ctrl := controllerFunc(func(s env.State) env.Action {
		step++
		n := 1 + (step*3)%10
		return env.ActionOf(n, 1+n%3, 11-n, n)
	})
	_, err := Loopback(context.Background(), cfg, m, src, dst, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if dst.TotalWritten() != m.TotalBytes() {
		t.Fatalf("written=%d want %d", dst.TotalWritten(), m.TotalBytes())
	}
	if len(dst.Errors()) != 0 {
		t.Fatalf("corruption under churn: %v", dst.Errors()[0])
	}
}

// controllerFunc adapts a function to env.Controller.
type controllerFunc func(env.State) env.Action

func (f controllerFunc) Name() string                  { return "test" }
func (f controllerFunc) Decide(s env.State) env.Action { return f(s) }

func TestMarlinDecideBootstrapsUpward(t *testing.T) {
	o := marlin.New()
	s := env.State{N: [env.StageCount]int{1, 1, 1, 1}, Throughput: env.StageVec{10, 10, 10, 10}}
	a := o.Decide(s)
	for i, n := range a.N {
		if n != 2 {
			t.Fatalf("stage %d: bootstrap action %d want 2", i, n)
		}
	}
}

func TestMarlinReversesOnUtilityDrop(t *testing.T) {
	o := marlin.New()
	// Step 1: bootstrap from n=4.
	o.Decide(env.State{N: [env.StageCount]int{4, 4, 4, 4}, Throughput: env.StageVec{100, 100, 100, 100}})
	// Step 2: we moved to n=5 and throughput collapsed → utility drop →
	// next decision must go below 5.
	a := o.Decide(env.State{N: [env.StageCount]int{5, 5, 5, 5}, Throughput: env.StageVec{20, 20, 20, 20}})
	for i, n := range a.N {
		if n >= 5 {
			t.Fatalf("stage %d: no reversal after utility drop (n=%d)", i, n)
		}
	}
}

func TestStaticControllerIgnoresState(t *testing.T) {
	c := static.New(4)
	a := c.Decide(env.State{Throughput: env.ThroughputVec(1, 2, 3)})
	if a != env.ActionOf(4, 4, 1, 4) {
		t.Fatalf("static action %v", a.N)
	}
	if static.New(0).Concurrency != 1 {
		t.Fatal("zero concurrency should clamp to 1")
	}
}

func TestMonolithicWrapperCouplesStages(t *testing.T) {
	inner := controllerFunc(func(env.State) env.Action {
		return env.ActionOf(2, 1, 9, 5)
	})
	mono := &static.Monolithic{Inner: inner}
	a := mono.Decide(env.State{})
	if a != env.ActionOf(9, 9, 1, 9) {
		t.Fatalf("monolithic action %v want all 9", a.N)
	}
}
