package transfer

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"automdt/internal/fsim"
	"automdt/internal/workload"
)

func TestArenaClassRounding(t *testing.T) {
	a := NewArena(64 << 20)
	cases := []struct {
		n    int
		want int64
	}{
		{1, 4 << 10},
		{4 << 10, 4 << 10},
		{4<<10 + 1, 16 << 10},
		{9 << 10, 16 << 10}, // a 9 KiB tail chunk leases the 16 KiB class
		{256 << 10, 256 << 10},
		{1 << 20, 1 << 20},
		{16 << 20, 16 << 20},
	}
	for _, c := range cases {
		b := a.Get(c.n)
		if b.Len() != c.n {
			t.Fatalf("Get(%d): Len=%d", c.n, b.Len())
		}
		if int64(cap(b.full)) != c.want {
			t.Fatalf("Get(%d): class size %d, want %d", c.n, cap(b.full), c.want)
		}
		b.Release()
	}
}

func TestArenaReuseAcrossSizesInClass(t *testing.T) {
	a := NewArena(64 << 20)
	b1 := a.Get(256 << 10)
	p1 := &b1.full[0]
	b1.Release()
	// A tail-sized request from the same class must reuse the buffer the
	// full-sized chunk just returned.
	b2 := a.Get(200 << 10)
	if &b2.full[0] != p1 {
		t.Fatal("tail-chunk Get did not reuse the pooled class buffer")
	}
	if st := a.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	b2.Release()
}

func TestArenaRefcount(t *testing.T) {
	a := NewArena(64 << 20)
	b := a.Get(1 << 10)
	b.Retain()
	b.Release()
	if st := a.Stats(); st.InUseBytes == 0 {
		t.Fatal("buffer returned to pool while a reference was live")
	}
	b.Release()
	if st := a.Stats(); st.InUseBytes != 0 || st.PooledBytes != 4<<10 {
		t.Fatalf("after final release: inUse=%d pooled=%d", st.InUseBytes, st.PooledBytes)
	}
}

func TestArenaOverReleasePanics(t *testing.T) {
	a := NewArena(64 << 20)
	b := a.Get(10)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

func TestArenaOversizeAndOverflowUntracked(t *testing.T) {
	a := NewArena(8 << 10) // tiny capacity
	big := a.Get(32 << 20) // beyond the largest class
	if big.arena != nil {
		t.Fatal("oversize buffer must be untracked")
	}
	big.Release()

	b1 := a.Get(4 << 10) // fills capacity (4 KiB class, 8 KiB cap)
	b2 := a.Get(8 << 10) // 16 KiB class would exceed cap → untracked
	if b2.arena != nil {
		t.Fatal("over-capacity Get must fall back to an untracked buffer")
	}
	st := a.Stats()
	if st.Overflow != 2 {
		t.Fatalf("overflow=%d, want 2", st.Overflow)
	}
	if st.InUseBytes != 4<<10 {
		t.Fatalf("inUse=%d, want %d", st.InUseBytes, 4<<10)
	}
	b1.Release()
	b2.Release()
}

func TestArenaSetCapacitySheds(t *testing.T) {
	a := NewArena(64 << 20)
	b := a.Get(1 << 20)
	a.SetCapacity(0)
	b.Release() // over the new bound: shed to GC, not pooled
	if st := a.Stats(); st.PooledBytes != 0 || st.InUseBytes != 0 {
		t.Fatalf("after shrink+release: inUse=%d pooled=%d, want 0/0", st.InUseBytes, st.PooledBytes)
	}
	a.SetCapacity(-5)
	if a.Capacity() != 0 {
		t.Fatalf("negative capacity not clamped: %d", a.Capacity())
	}
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena(4 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := a.Get(1 + (seed+i)%(300<<10))
				b.Bytes()[0] = byte(i)
				b.Release()
			}
		}(g * 37)
	}
	wg.Wait()
	if st := a.Stats(); st.InUseBytes != 0 {
		t.Fatalf("leaked leases: inUse=%d", st.InUseBytes)
	}
}

func TestArenaSnapshotText(t *testing.T) {
	a := NewArena(1 << 20)
	b := a.Get(4 << 10)
	defer b.Release()
	text := a.Snapshot().Text()
	for _, want := range []string{
		`automdt_arena_capacity_bytes 1.048576e+06`,
		`automdt_arena_bytes{state="in_use"} 4096`,
		`automdt_arena_gets_total{kind="miss"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, text)
		}
	}
}

func TestChunkReleaseIdempotent(t *testing.T) {
	a := NewArena(1 << 20)
	b := a.Get(100)
	c := Chunk{Data: b.Bytes(), Buf: b}
	c.Release()
	c.Release() // second call must be a no-op, not an over-release panic
	if st := a.Stats(); st.InUseBytes != 0 {
		t.Fatalf("inUse=%d after release", st.InUseBytes)
	}
}

// The end-to-end lifecycle invariant: after any number of loopback
// transfers every lease is back in the arena, and steady-state transfers
// are served from the free lists.
func TestArenaLoopbackLifecycle(t *testing.T) {
	a := NewArena(512 << 20)
	cfg := Config{ChunkBytes: 64 << 10, MaxThreads: 8, InitialThreads: 4, Arena: a}
	m := workload.LargeFiles(4, 1<<20)
	var warmMisses int64
	for i := 0; i < 3; i++ {
		src, dst := fsim.NewSyntheticStore(), fsim.NewSyntheticStore()
		if _, err := Loopback(context.Background(), cfg, m, src, dst, nil); err != nil {
			t.Fatal(err)
		}
		st := a.Stats()
		if st.InUseBytes != 0 {
			t.Fatalf("run %d leaked leases: inUse=%d", i, st.InUseBytes)
		}
		if i == 0 {
			warmMisses = st.Misses
		}
	}
	st := a.Stats()
	// A later run can momentarily hold more concurrent leases than the
	// warm-up run did: worker scheduling varies, and the (default)
	// checksummed read stage holds each lease through a CRC pass, which
	// deepens the pipeline noticeably under the race detector. Allow a
	// modest number of extra tracked allocations — what must not happen
	// is per-chunk allocation (64 chunks/run × 2 post-warmup runs here).
	if st.Misses > warmMisses+20 {
		t.Fatalf("steady-state runs allocated per chunk: misses %d → %d", warmMisses, st.Misses)
	}
	if st.Hits == 0 {
		t.Fatal("no pool hits recorded")
	}
}

// An aborted transfer (receiver dies mid-flight) must also return every
// lease once both ends have wound down.
func TestArenaLeaseReturnOnFailure(t *testing.T) {
	a := NewArena(512 << 20)
	cfg := Config{ChunkBytes: 64 << 10, MaxThreads: 4, InitialThreads: 2, Arena: a}
	src := fsim.NewSyntheticStore()
	dst := &failingStore{inner: fsim.NewSyntheticStore(), budget: 256 << 10}
	m := workload.LargeFiles(4, 1<<20)
	if _, err := Loopback(context.Background(), cfg, m, src, dst, nil); err == nil {
		t.Fatal("expected failure")
	}
	if st := a.Stats(); st.InUseBytes != 0 {
		t.Fatalf("failed transfer leaked leases: inUse=%d", st.InUseBytes)
	}
}

// Regression: a write failure with a tiny receiver staging buffer parks
// the data-connection readers in Staging.Put (the write pool is already
// gone); receiver shutdown must close staging before waiting on those
// readers or Serve deadlocks forever.
func TestReceiverShutdownWithReadersBlockedInPut(t *testing.T) {
	a := NewArena(512 << 20)
	cfg := Config{
		ChunkBytes: 64 << 10, MaxThreads: 4, InitialThreads: 4, Arena: a,
		// Staging holds only two chunks: the sender outruns the failing
		// writer immediately and readers block in Put.
		ReceiverBufBytes: 128 << 10,
	}
	src := fsim.NewSyntheticStore()
	dst := &failingStore{inner: fsim.NewSyntheticStore(), budget: 128 << 10}
	m := workload.LargeFiles(4, 2<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := Loopback(ctx, cfg, m, src, dst, nil); err == nil {
		t.Fatal("expected failure")
	}
	if ctx.Err() != nil {
		t.Fatal("receiver shutdown deadlocked until the test timeout")
	}
	if st := a.Stats(); st.InUseBytes != 0 {
		t.Fatalf("leaked leases: inUse=%d", st.InUseBytes)
	}
}

func TestArenaTrim(t *testing.T) {
	a := NewArena(64 << 20)
	held := a.Get(1 << 20)
	b := a.Get(256 << 10)
	b.Release()
	a.Trim()
	st := a.Stats()
	if st.PooledBytes != 0 {
		t.Fatalf("pooled=%d after Trim", st.PooledBytes)
	}
	if st.InUseBytes != 1<<20 {
		t.Fatalf("Trim touched leased buffers: inUse=%d", st.InUseBytes)
	}
	held.Release() // pools again after Trim
	if st := a.Stats(); st.PooledBytes != 1<<20 {
		t.Fatalf("post-Trim release not pooled: %d", st.PooledBytes)
	}
}
