package transfer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/wire"
)

// Receiver is the destination-side engine: it accepts parallel data
// connections, stages incoming chunks in a bounded buffer, and flushes
// them to the destination store with a resizable write pool whose size is
// commanded by the sender over the control channel.
type Receiver struct {
	Cfg   Config
	Store fsim.Store

	dataLn net.Listener
	ctrlLn net.Listener

	mu   sync.Mutex
	err  error
	done chan struct{}
}

// NewReceiver creates a receiver writing into store.
func NewReceiver(cfg Config, store fsim.Store) *Receiver {
	return &Receiver{Cfg: cfg.WithDefaults(), Store: store, done: make(chan struct{})}
}

// Listen binds the data and control listeners on the given host (use
// "127.0.0.1:0" style addresses for tests). Call before Serve.
func (r *Receiver) Listen(dataAddr, ctrlAddr string) error {
	var err error
	r.dataLn, err = net.Listen("tcp", dataAddr)
	if err != nil {
		return fmt.Errorf("transfer: listen data: %w", err)
	}
	r.ctrlLn, err = net.Listen("tcp", ctrlAddr)
	if err != nil {
		r.dataLn.Close()
		return fmt.Errorf("transfer: listen control: %w", err)
	}
	return nil
}

// DataAddr returns the bound data listener address.
func (r *Receiver) DataAddr() string { return r.dataLn.Addr().String() }

// CtrlAddr returns the bound control listener address.
func (r *Receiver) CtrlAddr() string { return r.ctrlLn.Addr().String() }

func (r *Receiver) fail(err error) {
	r.mu.Lock()
	if r.err == nil && err != nil {
		r.err = err
	}
	r.mu.Unlock()
}

// Err returns the first fatal error, if any.
func (r *Receiver) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Serve handles exactly one transfer session and returns when the
// transfer completes or fails. It must be called after Listen.
func (r *Receiver) Serve(ctx context.Context) error {
	defer close(r.done)
	defer r.dataLn.Close()
	defer r.ctrlLn.Close()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Control connection first: it carries the session parameters.
	ctrlRaw, err := r.ctrlLn.Accept()
	if err != nil {
		return fmt.Errorf("transfer: accept control: %w", err)
	}
	ctrl := wire.NewConn(ctrlRaw)
	defer ctrl.Close()

	hello, err := ctrl.Recv()
	if err != nil || hello.Hello == nil {
		return fmt.Errorf("transfer: bad hello (err=%v)", err)
	}
	h := hello.Hello

	bufCap := r.Cfg.ReceiverBufBytes
	if h.ReceiverBufBytes > 0 {
		bufCap = h.ReceiverBufBytes
	}
	staging := NewStaging(bufCap)
	defer staging.Close()

	var total int64
	writers := make([]fsim.FileWriter, len(h.Files))
	var writerMu sync.Mutex
	writerFor := func(id uint32) (fsim.FileWriter, error) {
		if int(id) >= len(h.Files) {
			return nil, fmt.Errorf("transfer: frame for unknown file id %d", id)
		}
		writerMu.Lock()
		defer writerMu.Unlock()
		if writers[id] == nil {
			w, err := r.Store.Create(h.Files[id].Name, h.Files[id].Size)
			if err != nil {
				return nil, err
			}
			writers[id] = w
		}
		return writers[id], nil
	}
	defer func() {
		writerMu.Lock()
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
		writerMu.Unlock()
	}()
	for _, f := range h.Files {
		total += f.Size
	}

	arena := r.Cfg.arena()

	// Data connection acceptor: one reader goroutine per connection. Each
	// reader leases frame payloads from the arena (full and tail sizes
	// alike) and transfers the lease to the write pool through staging.
	// Connections are tracked so shutdown can force readers off their
	// blocking reads and wait for every lease to be handed over or
	// released before Serve returns.
	var readerWG sync.WaitGroup
	var connsMu sync.Mutex
	var conns []net.Conn
	connsClosed := false
	go func() {
		for {
			conn, err := r.dataLn.Accept()
			if err != nil {
				return // listener closed on shutdown
			}
			// Registration and readerWG.Add happen under the same lock
			// the shutdown path takes before readerWG.Wait: a connection
			// either registers first (and is closed by shutdown, bounding
			// its reader) or finds the session closed and never spawns a
			// reader at all. Accept can win a race against dataLn.Close
			// and deliver one last conn, so this check is load-bearing.
			connsMu.Lock()
			if connsClosed {
				connsMu.Unlock()
				conn.Close()
				continue
			}
			conns = append(conns, conn)
			readerWG.Add(1)
			connsMu.Unlock()
			go func() {
				defer readerWG.Done()
				defer conn.Close()
				var pending *Buf
				alloc := func(n int) []byte {
					pending = arena.Get(n)
					return pending.Bytes()
				}
				var fr wire.FrameReader
				for {
					pending = nil
					f, err := fr.Read(conn, alloc)
					if err != nil {
						if pending != nil {
							pending.Release()
						}
						if !errors.Is(err, io.EOF) {
							r.fail(err)
							cancel()
						}
						return
					}
					if !staging.Put(Chunk{FileID: f.FileID, Offset: f.Offset, Data: f.Data, Buf: pending}) {
						if pending != nil {
							pending.Release()
						}
						return
					}
				}
			}()
		}
	}()

	// Write pool.
	var written atomic.Int64
	var writeCounter metrics.Counter
	perThread := newLimiterSet(r.Cfg.Shaping.WritePerThreadMbps, r.Cfg.ChunkBytes)
	agg := newLimiter(r.Cfg.Shaping.WriteAggMbps, r.Cfg.ChunkBytes)
	writeDone := make(chan struct{})
	var writeOnce sync.Once
	if total == 0 {
		// Nothing to move: the session is complete as soon as it starts.
		writeOnce.Do(func() { close(writeDone) })
	}
	pool := NewPool(func(stop <-chan struct{}, id int) {
		lim := perThread.get(id)
		poll := newPollTimer()
		defer poll.stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			default:
			}
			c, ok, closed := staging.TryGet()
			if closed {
				return
			}
			if !ok {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case <-poll.after(2 * time.Millisecond):
				}
				continue
			}
			if err := lim.WaitN(ctx, len(c.Data)); err != nil {
				c.Release()
				return
			}
			if err := agg.WaitN(ctx, len(c.Data)); err != nil {
				c.Release()
				return
			}
			w, err := writerFor(c.FileID)
			if err != nil {
				c.Release()
				r.fail(err)
				cancel()
				return
			}
			_, err = w.WriteAt(c.Data, c.Offset)
			n := int64(len(c.Data))
			// The arena lease ends only once the write has committed (or
			// failed): this is the last stage of the chunk lifecycle.
			c.Release()
			if err != nil {
				r.fail(err)
				cancel()
				return
			}
			writeCounter.Add(n)
			if written.Add(n) >= total {
				writeOnce.Do(func() { close(writeDone) })
			}
		}
	})
	n := h.InitialWriters
	if n <= 0 {
		n = r.Cfg.InitialThreads
	}
	pool.Resize(n)
	// Shutdown discipline: stop the intake first (listener, then every
	// data connection, then wait for the readers those connections fed),
	// close staging so a reader still mid-Put fails and releases its own
	// lease, stop the write pool, and only then drain what's left. After
	// this defer runs, every arena lease this session took is returned.
	defer func() {
		r.dataLn.Close()
		connsMu.Lock()
		connsClosed = true
		for _, c := range conns {
			c.Close()
		}
		connsMu.Unlock()
		// Close staging BEFORE waiting on the readers: closing the conns
		// only unblocks readers parked in a socket read, while a reader
		// blocked in Put on a full staging buffer (write pool already
		// gone on cancellation) only wakes when staging closes — waiting
		// first would deadlock Serve forever.
		staging.Close()
		readerWG.Wait()
		pool.Shutdown()
		staging.ReleaseRemaining()
	}()

	// Control loop: periodic status out, SetWriters commands in.
	cmds := make(chan wire.Message, 8)
	go func() {
		for {
			m, err := ctrl.Recv()
			if err != nil {
				return
			}
			select {
			case cmds <- m:
			case <-ctx.Done():
				return
			}
		}
	}()

	ticker := time.NewTicker(r.Cfg.ProbeInterval)
	defer ticker.Stop()
	sendStatus := func(done bool) error {
		wBytes := writeCounter.Reset()
		mbps := bytesToMb(wBytes) / r.Cfg.ProbeInterval.Seconds()
		st := wire.Status{
			WrittenBytes: written.Load(),
			BufUsed:      staging.Used(),
			BufFree:      staging.Free(),
			WriteMbps:    mbps,
			Writers:      pool.Size(),
			Done:         done,
		}
		if e := r.Err(); e != nil {
			st.Error = e.Error()
		}
		return ctrl.Send(wire.Message{Status: &st})
	}

	for {
		select {
		case <-ctx.Done():
			sendStatus(false)
			return r.Err()
		case <-writeDone:
			if err := sendStatus(true); err != nil {
				return err
			}
			return r.Err()
		case m := <-cmds:
			if m.SetWriters != nil {
				n := m.SetWriters.N
				if n > r.Cfg.MaxThreads {
					n = r.Cfg.MaxThreads
				}
				if n < 1 {
					n = 1
				}
				pool.Resize(n)
			}
		case <-ticker.C:
			if err := sendStatus(false); err != nil {
				return err
			}
		}
	}
}
