package transfer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

// Receiver is the destination-side engine: it accepts parallel data
// connections, stages incoming chunks in a bounded buffer, and flushes
// them to the destination store with a resizable write pool whose size is
// commanded by the sender over the control channel. Each session keeps a
// chunk ledger of committed ranges; when the destination store can
// persist ledgers (fsim.LedgerStore) and the sender names a session, the
// ledger survives process restarts and the next attempt resumes instead
// of starting over.
type Receiver struct {
	Cfg   Config
	Store fsim.Store

	dataLn net.Listener
	ctrlLn net.Listener

	mu   sync.Mutex
	err  error
	done chan struct{}
}

// NewReceiver creates a receiver writing into store.
func NewReceiver(cfg Config, store fsim.Store) *Receiver {
	return &Receiver{Cfg: cfg.WithDefaults(), Store: store, done: make(chan struct{})}
}

// Listen binds the data and control listeners on the given host (use
// "127.0.0.1:0" style addresses for tests). Call before Serve.
func (r *Receiver) Listen(dataAddr, ctrlAddr string) error {
	var err error
	r.dataLn, err = net.Listen("tcp", dataAddr)
	if err != nil {
		return fmt.Errorf("transfer: listen data: %w", err)
	}
	r.ctrlLn, err = net.Listen("tcp", ctrlAddr)
	if err != nil {
		r.dataLn.Close()
		return fmt.Errorf("transfer: listen control: %w", err)
	}
	return nil
}

// DataAddr returns the bound data listener address.
func (r *Receiver) DataAddr() string { return r.dataLn.Addr().String() }

// CtrlAddr returns the bound control listener address.
func (r *Receiver) CtrlAddr() string { return r.ctrlLn.Addr().String() }

func (r *Receiver) fail(err error) {
	r.mu.Lock()
	if r.err == nil && err != nil {
		r.err = err
	}
	r.mu.Unlock()
}

// Err returns the first fatal error, if any.
func (r *Receiver) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// sumChecker tracks the sender-announced end-to-end file CRCs and which
// of them have been verified against the ledger.
type sumChecker struct {
	mu       sync.Mutex
	expected map[uint32]uint32
	checked  map[uint32]bool
	finished bool // SumsDone received
	want     int  // announced FileSum count
	got      int
}

func newSumChecker() *sumChecker {
	return &sumChecker{expected: make(map[uint32]uint32), checked: make(map[uint32]bool)}
}

// drained reports whether every announced sum has arrived.
func (c *sumChecker) drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finished && c.got >= c.want
}

// pending returns the announced files not yet verified.
func (c *sumChecker) pending() []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ids []uint32
	for id := range c.expected {
		if !c.checked[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// Serve handles exactly one transfer session and returns when the
// transfer completes or fails. It must be called after Listen.
func (r *Receiver) Serve(ctx context.Context) error {
	defer close(r.done)
	defer r.dataLn.Close()
	defer r.ctrlLn.Close()

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// A cancelled caller context must unblock the accepts and control
	// reads below, not just the steady-state loops. The watch is on the
	// parent only: an internal failure (cancel()) must keep the control
	// channel alive long enough to report the root cause to the sender.
	stopLnWatch := context.AfterFunc(parent, func() {
		r.dataLn.Close()
		r.ctrlLn.Close()
	})
	defer stopLnWatch()

	// Control connection first: it carries the session parameters.
	ctrlRaw, err := r.ctrlLn.Accept()
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("transfer: accept control: %w", err)
	}
	ctrl := wire.NewConn(ctrlRaw)
	defer ctrl.Close()
	stopCtrlWatch := context.AfterFunc(parent, func() { ctrl.Close() })
	defer stopCtrlWatch()

	hello, err := ctrl.Recv()
	if err != nil || hello.Hello == nil {
		return fmt.Errorf("transfer: bad hello (err=%v)", err)
	}
	h := hello.Hello

	// Versioned negotiation: speak the lower of the two generations. A
	// v0 sender ignores the Welcome and the ledger machinery degrades to
	// the old one-shot behaviour.
	proto := h.ProtoVersion
	if proto > wire.ProtoVersion {
		proto = wire.ProtoVersion
	}

	manifest := make(workload.Manifest, len(h.Files))
	var total int64
	for i, f := range h.Files {
		manifest[i] = workload.File{Name: f.Name, Size: f.Size}
		total += f.Size
	}
	chunkBytes := h.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = r.Cfg.ChunkBytes
	}

	// Session ledger: reload a persisted one when the store supports it
	// and the sender named a session, re-verifying every committed range
	// against the destination (a missing file or corrupt region loses
	// just its ledger entry) before advertising it.
	session := h.SessionID
	if session == "" {
		session = NewSessionID()
	}
	ledger := NewLedger(session, chunkBytes, manifest, h.Checksums)
	ls, canPersist := r.Store.(fsim.LedgerStore)
	resumable := canPersist && h.SessionID != "" && fsim.ValidSessionID(h.SessionID)
	if resumable {
		if data, err := ls.LoadLedger(session); err == nil {
			old, derr := DecodeLedger(data)
			if derr == nil && old.MatchesManifest(manifest) == nil && old.HasSums == h.Checksums {
				if kept, _ := old.VerifyAgainst(r.Store); kept > 0 {
					metrics.ResumeSessionInc()
					metrics.ResumeSkippedAdd(kept)
				}
				ledger = old
				// The persisted ledger pins the session's chunk
				// geometry: the Welcome advertises its chunk size and
				// the sender plans with it, so a changed sender config
				// cannot orphan the committed ranges.
				chunkBytes = old.ChunkBytes
			}
		}
	}
	// sessionDone flips once the session completed and its ledger was
	// removed; the deferred persist must not resurrect it. persistMu
	// serializes writers (ticker, CRC-mismatch path, shutdown defer) so
	// two saves can never interleave on the store's temp file.
	var sessionDone atomic.Bool
	var persistMu sync.Mutex
	persist := func() {
		persistMu.Lock()
		defer persistMu.Unlock()
		if !resumable || sessionDone.Load() || !ledger.takeDirty() {
			return
		}
		if data, err := ledger.Encode(); err == nil {
			ls.SaveLedger(session, data)
		}
	}
	persist() // verification may have cleared ranges

	if proto >= 1 {
		if err := ctrl.Send(wire.Message{Welcome: &wire.Welcome{
			ProtoVersion: proto,
			SessionID:    session,
			ChunkBytes:   chunkBytes,
			Ledger:       ledger.WireStates(),
		}}); err != nil {
			return fmt.Errorf("transfer: send welcome: %w", err)
		}
	}

	bufCap := r.Cfg.ReceiverBufBytes
	if h.ReceiverBufBytes > 0 {
		bufCap = h.ReceiverBufBytes
	}
	staging := NewStaging(bufCap)
	defer staging.Close()

	writers := make([]fsim.FileWriter, len(h.Files))
	var writerMu sync.Mutex
	writerFor := func(id uint32) (fsim.FileWriter, error) {
		if int(id) >= len(h.Files) {
			return nil, fmt.Errorf("transfer: frame for unknown file id %d", id)
		}
		writerMu.Lock()
		defer writerMu.Unlock()
		if writers[id] == nil {
			w, err := r.Store.Create(h.Files[id].Name, h.Files[id].Size)
			if err != nil {
				return nil, err
			}
			writers[id] = w
		}
		return writers[id], nil
	}
	defer func() {
		writerMu.Lock()
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
		writerMu.Unlock()
	}()

	arena := r.Cfg.arena()

	// Data connection acceptor: one reader goroutine per connection. Each
	// reader leases frame payloads from the arena (full and tail sizes
	// alike) and transfers the lease to the write pool through staging.
	// Connections are tracked so shutdown can force readers off their
	// blocking reads and wait for every lease to be handed over or
	// released before Serve returns.
	var readerWG sync.WaitGroup
	var connsMu sync.Mutex
	var conns []net.Conn
	connsClosed := false
	go func() {
		for {
			conn, err := r.dataLn.Accept()
			if err != nil {
				return // listener closed on shutdown
			}
			// Registration and readerWG.Add happen under the same lock
			// the shutdown path takes before readerWG.Wait: a connection
			// either registers first (and is closed by shutdown, bounding
			// its reader) or finds the session closed and never spawns a
			// reader at all. Accept can win a race against dataLn.Close
			// and deliver one last conn, so this check is load-bearing.
			connsMu.Lock()
			if connsClosed {
				connsMu.Unlock()
				conn.Close()
				continue
			}
			conns = append(conns, conn)
			readerWG.Add(1)
			connsMu.Unlock()
			go func() {
				defer readerWG.Done()
				defer conn.Close()
				var pending *Buf
				alloc := func(n int) []byte {
					pending = arena.Get(n)
					return pending.Bytes()
				}
				var fr wire.FrameReader
				for {
					pending = nil
					f, err := fr.Read(conn, alloc)
					if err != nil {
						if pending != nil {
							pending.Release()
						}
						if !errors.Is(err, io.EOF) {
							r.fail(err)
							cancel()
						}
						return
					}
					// The ledger sum is deliberately NOT the wire CRC:
					// the write stage re-hashes the payload at commit, so
					// corruption between frame verification and the disk
					// write (staging memory, a premature buffer reuse)
					// still trips the sender-vs-receiver FileSum compare.
					if !staging.Put(Chunk{FileID: f.FileID, Offset: f.Offset, Data: f.Data, Buf: pending}) {
						if pending != nil {
							pending.Release()
						}
						return
					}
				}
			}()
		}
	}()

	// End-to-end file verification state (checksummed sessions).
	chk := newSumChecker()
	// checkFile verifies one announced file once it is fully committed:
	// the ledger's per-chunk sums are folded into the whole-file CRC and
	// compared against the sender's. A mismatch invalidates exactly that
	// file's ledger range — the next resume replans it — and fails the
	// session. A file is marked checked only AFTER the verdict lands:
	// finishSession re-verifies anything still pending, so a mismatch
	// discovered by a write worker can never race session completion
	// into reporting success (duplicate concurrent verifications are
	// harmless — same sums, same verdict, idempotent invalidation).
	checkFile := func(fileID uint32) {
		chk.mu.Lock()
		want, announced := chk.expected[fileID]
		if !announced || chk.checked[fileID] || !ledger.FileComplete(fileID) {
			chk.mu.Unlock()
			return
		}
		chk.mu.Unlock()
		got, ok := ledger.FileCRC(fileID)
		if !ok {
			return
		}
		if got != want {
			n := ledger.InvalidateFile(fileID)
			metrics.ResumeInvalidatedAdd(int64(n))
			persist()
			r.fail(fmt.Errorf("transfer: end-to-end CRC mismatch on %s: got %#x want %#x (%d-chunk ledger range invalidated)",
				manifest[fileID].Name, got, want, n))
			cancel()
		}
		chk.mu.Lock()
		chk.checked[fileID] = true
		chk.mu.Unlock()
	}

	// Write pool. Completion is ledger-driven: the session is done when
	// every chunk — freshly written or inherited from a resumed ledger —
	// is committed.
	var written atomic.Int64
	var writeCounter metrics.Counter
	perThread := newLimiterSet(r.Cfg.Shaping.WritePerThreadMbps, r.Cfg.ChunkBytes)
	agg := newLimiter(r.Cfg.Shaping.WriteAggMbps, r.Cfg.ChunkBytes)
	writeDone := make(chan struct{})
	var writeOnce sync.Once
	if ledger.CommittedBytes() >= total {
		// Nothing to move (empty dataset, or a resume that was already
		// complete): the session is done as soon as it starts.
		writeOnce.Do(func() { close(writeDone) })
	}
	pool := NewPool(func(stop <-chan struct{}, id int) {
		lim := perThread.get(id)
		poll := newPollTimer()
		defer poll.stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			default:
			}
			c, ok, closed := staging.TryGet()
			if closed {
				return
			}
			if !ok {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case <-poll.after(2 * time.Millisecond):
				}
				continue
			}
			if ledger.Done(c.FileID, c.Offset) {
				// Duplicate of a committed chunk (resume overlap or a
				// replayed frame): drop it without touching the disk.
				c.Release()
				continue
			}
			if err := lim.WaitN(ctx, len(c.Data)); err != nil {
				c.Release()
				return
			}
			if err := agg.WaitN(ctx, len(c.Data)); err != nil {
				c.Release()
				return
			}
			w, err := writerFor(c.FileID)
			if err != nil {
				c.Release()
				r.fail(err)
				cancel()
				return
			}
			_, err = w.WriteAt(c.Data, c.Offset)
			n := int64(len(c.Data))
			fileID, offset := c.FileID, c.Offset
			var sum uint32
			if h.Checksums {
				// Hash at the last stage before the lease is returned:
				// this sum reflects what actually reached the store, so
				// the FileSum compare is end-to-end, not an echo of the
				// already-verified wire CRC.
				sum = wire.PayloadCRC(c.Data)
			}
			// The arena lease ends only once the write has committed (or
			// failed): this is the last stage of the chunk lifecycle.
			c.Release()
			if err != nil {
				r.fail(err)
				cancel()
				return
			}
			writeCounter.Add(n)
			written.Add(n)
			if ledger.Commit(fileID, offset, int(n), sum) {
				if h.Checksums {
					checkFile(fileID)
				}
				if ledger.CommittedBytes() >= total {
					writeOnce.Do(func() { close(writeDone) })
				}
			}
		}
	})
	n := h.InitialWriters
	if n <= 0 {
		n = r.Cfg.InitialThreads
	}
	pool.Resize(n)
	// Shutdown discipline: stop the intake first (listener, then every
	// data connection, then wait for the readers those connections fed),
	// close staging so a reader still mid-Put fails and releases its own
	// lease, stop the write pool, and only then drain what's left. After
	// this defer runs, every arena lease this session took is returned,
	// and the ledger's latest state is persisted so the next attempt can
	// resume from it.
	defer func() {
		r.dataLn.Close()
		connsMu.Lock()
		connsClosed = true
		for _, c := range conns {
			c.Close()
		}
		connsMu.Unlock()
		// Close staging BEFORE waiting on the readers: closing the conns
		// only unblocks readers parked in a socket read, while a reader
		// blocked in Put on a full staging buffer (write pool already
		// gone on cancellation) only wakes when staging closes — waiting
		// first would deadlock Serve forever.
		staging.Close()
		readerWG.Wait()
		pool.Shutdown()
		staging.ReleaseRemaining()
		persist()
	}()

	// Control loop: periodic status out; SetWriters commands and session
	// sums in.
	cmds := make(chan wire.Message, 8)
	go func() {
		for {
			m, err := ctrl.Recv()
			if err != nil {
				return
			}
			select {
			case cmds <- m:
			case <-ctx.Done():
				return
			}
		}
	}()

	ticker := time.NewTicker(r.Cfg.ProbeInterval)
	defer ticker.Stop()
	sendStatus := func(done bool) error {
		wBytes := writeCounter.Reset()
		mbps := bytesToMb(wBytes) / r.Cfg.ProbeInterval.Seconds()
		st := wire.Status{
			WrittenBytes:   written.Load(),
			CommittedBytes: ledger.CommittedBytes(),
			BufUsed:        staging.Used(),
			BufFree:        staging.Free(),
			WriteMbps:      mbps,
			Writers:        pool.Size(),
			Done:           done,
		}
		if e := r.Err(); e != nil {
			st.Error = e.Error()
		}
		return ctrl.Send(wire.Message{Status: &st})
	}

	handleCmd := func(m wire.Message) {
		switch {
		case m.SetWriters != nil:
			n := m.SetWriters.N
			if n > r.Cfg.MaxThreads {
				n = r.Cfg.MaxThreads
			}
			if n < 1 {
				n = 1
			}
			pool.Resize(n)
		case m.FileSum != nil:
			chk.mu.Lock()
			chk.expected[m.FileSum.FileID] = m.FileSum.CRC
			chk.got++
			chk.mu.Unlock()
			checkFile(m.FileSum.FileID)
		case m.SumsDone != nil:
			chk.mu.Lock()
			chk.finished = true
			chk.want = m.SumsDone.Files
			chk.mu.Unlock()
		}
	}

	// finishSession concludes a fully committed session: verify every
	// announced file sum, then either persist the (invalidated) ledger
	// and fail, or drop the ledger and confirm completion. A checksummed
	// session whose sums never fully arrived (lost control messages)
	// still completes — the data passed the per-frame CRCs — but the
	// degradation is counted, and the ledger is kept instead of removed
	// so re-running the session can still verify retroactively.
	finishSession := func() error {
		unverified := h.Checksums && proto >= 1 && !chk.drained()
		if unverified {
			metrics.ResumeUnverifiedInc()
		}
		for _, id := range chk.pending() {
			checkFile(id)
		}
		if e := r.Err(); e != nil {
			persist()
			sendStatus(false)
			return e
		}
		if unverified {
			persist()
		}
		sessionDone.Store(true)
		if resumable && !unverified {
			ls.RemoveLedger(session)
		}
		if err := sendStatus(true); err != nil {
			return err
		}
		return nil
	}

	// waitDone is nil-ed after firing so the select can keep serving
	// control messages while late FileSums drain (the control and data
	// channels are separate TCP connections, so the last sums can trail
	// the last frame).
	waitDone := writeDone
	var sumGrace <-chan time.Time
	for {
		select {
		case <-ctx.Done():
			sendStatus(false)
			return r.Err()
		case <-waitDone:
			waitDone = nil
			if h.Checksums && proto >= 1 && !chk.drained() {
				// Generous: the happy path completes via cmds the moment
				// the trailing sums land, so the grace only bounds how
				// long a genuinely lost SumsDone can stall completion.
				sumGrace = time.After(30 * time.Second)
				continue
			}
			return finishSession()
		case <-sumGrace:
			return finishSession() // sender never closed out its sums; verify what arrived
		case m := <-cmds:
			handleCmd(m)
			if waitDone == nil && chk.drained() {
				return finishSession()
			}
		case <-ticker.C:
			persist()
			if err := sendStatus(false); err != nil {
				return err
			}
		}
	}
}
