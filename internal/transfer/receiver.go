package transfer

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"automdt/internal/flight"
	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/rate"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

// Receiver is the destination-side endpoint: one control listener and one
// data listener serving many concurrent transfer sessions. Each control
// connection negotiates one session; data connections are demultiplexed
// to their session by the token carried in the protocol ≥ 2 preamble
// (pre-v2 peers, which send no preamble, route to the endpoint's single
// legacy session slot). Every session owns its own staging buffer, write
// pool, and chunk ledger, so one session's failure or teardown cannot
// disturb its siblings. Admission is capped by Config.MaxSessions, and
// stale session ledgers older than Config.LedgerTTL are expired when the
// endpoint starts serving.
// commitBatchChunks caps the receiver's adaptive write batch: at most
// this many staged chunks drain together into one vectored flush.
const commitBatchChunks = 16

type Receiver struct {
	Cfg   Config
	Store fsim.Store
	// OnSessionDone, when set before Serve, observes every session as it
	// ends. It is called from the session's goroutine and must not block.
	OnSessionDone func(SessionResult)

	dataLn net.Listener
	ctrlLn net.Listener

	mu      sync.Mutex
	err     error
	closed  bool
	byToken map[string]*rsession
	byID    map[string]*rsession
	legacy  *rsession // the active pre-v2 session, owning un-preambled data conns
	pending map[net.Conn]struct{}

	active    int
	admitted  int64
	rejected  int64
	completed int64
	failed    int64
	expired   int64

	// arb splits Cfg.WriteBudgetMbps across active sessions; nil when no
	// budget is configured.
	arb *writeArbiter

	gcOnce sync.Once
	// fatal is closed when an acceptor dies outside shutdown, so serve
	// can stop blocking and surface the endpoint-fatal error.
	fatalOnce sync.Once
	fatal     chan struct{}
}

// errSessionBusy marks an admission conflict that resolves itself once
// the previous holder's teardown finishes; handleControl retries these
// briefly instead of rejecting outright.
var errSessionBusy = errors.New("session busy")

// SessionResult summarizes one session served by the endpoint.
type SessionResult struct {
	SessionID string
	// Proto is the negotiated protocol generation.
	Proto int
	// Resumed reports whether the session picked up a persisted ledger.
	Resumed bool
	// CommittedBytes is the ledger-committed volume when the session
	// ended (the full dataset for a completed session).
	CommittedBytes int64
	// Err is the session's outcome: nil for a completed transfer.
	Err error
}

// rsession is one live transfer session at the endpoint. The demux
// routes data connections into it; the session's run loop owns the rest
// of its state as locals.
type rsession struct {
	id      string
	token   string // data-preamble routing key; empty below protocol 2
	proto   int
	staging *Staging
	arena   *Arena
	ledger  atomic.Pointer[Ledger] // set once resume state is known; for gauges
	// resumed is written by runSession and read by handleControl after
	// runSession returns (same goroutine), so it needs no lock.
	resumed bool

	mu          sync.Mutex
	err         error
	cancel      context.CancelFunc // set by runSession; may lag early data conns
	conns       []net.Conn
	connsClosed bool
	readerWG    sync.WaitGroup
}

// setCancel installs the session's cancel function once the run loop has
// a context. A legacy peer's data connections can be routed before that,
// so abort must tolerate a not-yet-installed cancel.
func (s *rsession) setCancel(fn context.CancelFunc) {
	s.mu.Lock()
	s.cancel = fn
	s.mu.Unlock()
}

// abort cancels the session's run loop, if it has started. An abort that
// races the start is not lost: the failure is already recorded via fail,
// and the run loop surfaces it on its first status tick.
func (s *rsession) abort() {
	s.mu.Lock()
	fn := s.cancel
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func (s *rsession) fail(err error) {
	s.mu.Lock()
	if s.err == nil && err != nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Err returns the session's first fatal error, if any.
func (s *rsession) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// addConn registers a routed data connection and spawns its reader: the
// reader leases frame payloads from the session's arena and transfers
// the lease to the write pool through the session staging buffer. rd is
// the demuxed stream (for legacy peers it replays the sniffed bytes
// ahead of the socket).
func (s *rsession) addConn(conn net.Conn, rd io.Reader) {
	s.mu.Lock()
	if s.connsClosed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns = append(s.conns, conn)
	s.readerWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.readerWG.Done()
		defer conn.Close()
		var pending *Buf
		alloc := func(n int) []byte {
			pending = s.arena.Get(n)
			return pending.Bytes()
		}
		var fr wire.FrameReader
		for {
			pending = nil
			f, err := fr.Read(rd, alloc)
			if err != nil {
				if pending != nil {
					pending.Release()
				}
				if !errors.Is(err, io.EOF) {
					// A protocol ≥ 3 sender stripes the session across
					// several data connections and survives losing one: it
					// pulls the ledger and re-plans the lost chunks over the
					// survivors. Losing this connection is therefore the
					// sender's to repair, not a session failure. Older
					// senders abort themselves on connection loss, so for
					// them the error is surfaced here.
					if s.proto >= 3 {
						return
					}
					s.fail(err)
					s.abort()
				}
				return
			}
			// The ledger sum is deliberately NOT the wire CRC: the write
			// stage re-hashes the payload at commit, so corruption between
			// frame verification and the disk write (staging memory, a
			// premature buffer reuse) still trips the sender-vs-receiver
			// FileSum compare.
			if !s.staging.Put(Chunk{FileID: f.FileID, Offset: f.Offset, Data: f.Data, Buf: pending}) {
				if pending != nil {
					pending.Release()
				}
				return
			}
		}
	}()
}

// closeConns closes every registered data connection and refuses new
// registrations; teardown then waits on readerWG.
func (s *rsession) closeConns() {
	s.mu.Lock()
	s.connsClosed = true
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// NewReceiver creates a receiver endpoint writing into store.
func NewReceiver(cfg Config, store fsim.Store) *Receiver {
	cfg = cfg.WithDefaults()
	return &Receiver{
		Cfg:     cfg,
		Store:   store,
		byToken: make(map[string]*rsession),
		byID:    make(map[string]*rsession),
		pending: make(map[net.Conn]struct{}),
		fatal:   make(chan struct{}),
		arb:     newWriteArbiter(cfg.WriteBudgetMbps, cfg.ChunkBytes),
	}
}

// Listen binds the data and control listeners on the given host (use
// "127.0.0.1:0" style addresses for tests). Call before Serve.
func (r *Receiver) Listen(dataAddr, ctrlAddr string) error {
	var err error
	r.dataLn, err = net.Listen("tcp", dataAddr)
	if err != nil {
		return fmt.Errorf("transfer: listen data: %w", err)
	}
	r.ctrlLn, err = net.Listen("tcp", ctrlAddr)
	if err != nil {
		r.dataLn.Close()
		return fmt.Errorf("transfer: listen control: %w", err)
	}
	return nil
}

// DataAddr returns the bound data listener address.
func (r *Receiver) DataAddr() string { return r.dataLn.Addr().String() }

// CtrlAddr returns the bound control listener address.
func (r *Receiver) CtrlAddr() string { return r.ctrlLn.Addr().String() }

func (r *Receiver) fail(err error) {
	r.mu.Lock()
	if r.err == nil && err != nil {
		r.err = err
	}
	r.mu.Unlock()
}

// acceptFailed records an endpoint-fatal accept error and wakes serve so
// the endpoint shuts down instead of blocking as a silently dead
// listener. Accept errors after shutdown (the listener was closed
// deliberately) are the normal exit path and not recorded.
func (r *Receiver) acceptFailed(which string, err error) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if !closed {
		r.fail(fmt.Errorf("transfer: accept %s: %w", which, err))
		r.fatalOnce.Do(func() { close(r.fatal) })
	}
}

// Err returns the first endpoint-fatal error, if any. Per-session
// failures are reported through session results, not here.
func (r *Receiver) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Serve runs the endpoint until ctx is cancelled: it accepts control
// connections, negotiates one session per connection, and demultiplexes
// data connections across the live sessions. It must be called after
// Listen. On cancellation every session is torn down (persisting its
// ledger) before Serve returns ctx.Err().
func (r *Receiver) Serve(ctx context.Context) error { return r.serve(ctx, 0) }

// ServeN serves like Serve but returns once n sessions have finished
// (completed or failed — handshake rejections don't count), reporting
// the first session error if any. ServeN(ctx, 1) is the single-session
// receiver contract that Loopback and the CLI's one-shot recv mode use.
func (r *Receiver) ServeN(ctx context.Context, n int) error { return r.serve(ctx, n) }

func (r *Receiver) serve(ctx context.Context, maxDone int) error {
	r.gcOnce.Do(r.expireStaleLedgers)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	results := make(chan error)

	// Data acceptor: every connection gets a demux goroutine that sniffs
	// the preamble (or its absence) and routes the stream to its session.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := r.dataLn.Accept()
			if err != nil {
				r.acceptFailed("data", err)
				return
			}
			if !r.trackPending(conn) {
				conn.Close()
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.demux(ctx, conn)
			}()
		}
	}()

	// Control acceptor: one session negotiation per connection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := r.ctrlLn.Accept()
			if err != nil {
				r.acceptFailed("control", err)
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.handleControl(ctx, conn, results)
			}()
		}
	}()

	var firstErr error
	done := 0
	for {
		select {
		case <-ctx.Done():
			r.shutdown()
			cancel()
			wg.Wait()
			return ctx.Err()
		case <-r.fatal:
			r.shutdown()
			cancel()
			wg.Wait()
			return r.Err()
		case err := <-results:
			done++
			if firstErr == nil {
				firstErr = err
			}
			if maxDone > 0 && done >= maxDone {
				r.shutdown()
				cancel()
				wg.Wait()
				return firstErr
			}
		}
	}
}

// shutdown stops the intake: listeners closed, un-routed data
// connections closed, new admissions refused. Idempotent.
func (r *Receiver) shutdown() {
	r.mu.Lock()
	r.closed = true
	pending := make([]net.Conn, 0, len(r.pending))
	for c := range r.pending {
		pending = append(pending, c)
	}
	r.mu.Unlock()
	r.dataLn.Close()
	r.ctrlLn.Close()
	for _, c := range pending {
		c.Close()
	}
}

// trackPending registers a data connection awaiting demux so shutdown
// can force its preamble read off the socket. Reports false when the
// endpoint is already closed.
func (r *Receiver) trackPending(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.pending[conn] = struct{}{}
	return true
}

func (r *Receiver) untrackPending(conn net.Conn) {
	r.mu.Lock()
	delete(r.pending, conn)
	r.mu.Unlock()
}

// demux routes one data connection: a protocol ≥ 2 preamble names the
// session by token; anything else is a pre-v2 frame stream owned by the
// endpoint's single legacy session. The sniffed bytes of a legacy stream
// are replayed ahead of the socket so no frame data is lost.
func (r *Receiver) demux(ctx context.Context, conn net.Conn) {
	defer r.untrackPending(conn)
	// Snapshot the legacy slot up front: an un-preambled connection that
	// arrived while a legacy session was live belongs to THAT session. If
	// it is gone by the time the first bytes land, the stream is stale
	// and must be dropped — never routed into a successor session.
	r.mu.Lock()
	legacyAt := r.legacy
	r.mu.Unlock()
	var first [4]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		conn.Close()
		return
	}
	if first == wire.PreambleMagic {
		var tok [wire.DataTokenBytes]byte
		if _, err := io.ReadFull(conn, tok[:]); err != nil {
			conn.Close()
			return
		}
		r.mu.Lock()
		sess := r.byToken[hex.EncodeToString(tok[:])]
		r.mu.Unlock()
		if sess == nil {
			conn.Close() // unknown or stale token: never admit the frames
			return
		}
		sess.addConn(conn, conn)
		return
	}
	// No preamble: a legacy (v0/v1) peer's frame stream, with the sniffed
	// bytes replayed ahead of the socket.
	legacyRd := io.MultiReader(bytes.NewReader(first[:]), conn)
	if legacyAt != nil {
		r.mu.Lock()
		sess := r.legacy
		r.mu.Unlock()
		if sess != legacyAt {
			conn.Close() // the owning session ended; stale stream
			return
		}
		sess.addConn(conn, legacyRd)
		return
	}
	// No legacy session existed when the connection arrived. Only a v0
	// peer can produce this: it dials its data connections right after
	// sending Hello, so its session's registration may still be in
	// flight on the control channel (a v1 peer dials only after its
	// Welcome, by which time its session is registered and the snapshot
	// above is non-nil). Wait briefly for the registration rather than
	// resetting the peer's data plane — but route only into a proto-0
	// session; handing the stream to anything newer could only be
	// mis-attribution.
	for wait := 0; ; wait++ {
		r.mu.Lock()
		sess, closed := r.legacy, r.closed
		r.mu.Unlock()
		if sess != nil {
			if sess.proto == 0 {
				sess.addConn(conn, legacyRd)
			} else {
				conn.Close()
			}
			return
		}
		if closed || ctx.Err() != nil || wait >= 1000 {
			conn.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// handleControl negotiates and runs one session on a freshly accepted
// control connection.
func (r *Receiver) handleControl(ctx context.Context, raw net.Conn, results chan<- error) {
	ctrl := wire.NewConn(raw)
	// A cancelled endpoint context must unblock the Hello read and every
	// later control operation. The watch is on the endpoint context, not
	// the session's own cancel: an internal session failure must keep the
	// channel alive long enough to report the root cause to the sender.
	stopWatch := context.AfterFunc(ctx, func() { ctrl.Close() })
	defer stopWatch()

	m, err := ctrl.Recv()
	if err != nil || m.Hello == nil {
		ctrl.Close() // not a session: garbage or a vanished peer
		return
	}
	sess, reject := r.admit(m.Hello)
	// A retried attempt can race the previous attempt's teardown: the
	// sender is gone, but its session still holds the ledger key for up
	// to a control-channel-death detection plus a persist. Wait out that
	// window instead of burning the retry.
	for deadline := time.Now().Add(5 * time.Second); reject != nil &&
		errors.Is(reject, errSessionBusy) &&
		time.Now().Before(deadline) && ctx.Err() == nil; {
		time.Sleep(25 * time.Millisecond)
		sess, reject = r.admit(m.Hello)
	}
	if reject != nil {
		r.mu.Lock()
		r.rejected++
		r.mu.Unlock()
		ctrl.Send(wire.Message{Status: &wire.Status{Error: reject.Error()}})
		ctrl.Close()
		return
	}
	err = r.runSession(ctx, sess, ctrl, m.Hello)
	res := SessionResult{
		SessionID: sess.id,
		Proto:     sess.proto,
		Resumed:   sess.resumed,
		Err:       err,
	}
	if l := sess.ledger.Load(); l != nil {
		res.CommittedBytes = l.CommittedBytes()
	}
	r.release(sess, err)
	if h := r.OnSessionDone; h != nil {
		h(res)
	}
	select {
	case results <- err:
	case <-ctx.Done():
	}
}

// admit applies the endpoint's admission rules to a Hello and registers
// the resulting session: the MaxSessions cap, one pre-v2 session at a
// time (their data connections are indistinguishable), and no two live
// sessions sharing a ledger key. It also creates the session's staging
// buffer up front, because a legacy peer's data connections can arrive
// before the session's run loop starts.
func (r *Receiver) admit(h *wire.Hello) (*rsession, error) {
	proto := h.ProtoVersion
	if proto > wire.ProtoVersion {
		proto = wire.ProtoVersion
	}
	session := h.SessionID
	if session == "" {
		session = NewSessionID()
	}
	bufCap := r.Cfg.ReceiverBufBytes
	if h.ReceiverBufBytes > 0 {
		bufCap = h.ReceiverBufBytes
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errors.New("transfer: endpoint shutting down")
	}
	if r.active >= r.Cfg.MaxSessions {
		return nil, fmt.Errorf("transfer: endpoint at session capacity (%d)", r.Cfg.MaxSessions)
	}
	if _, ok := r.byID[session]; ok {
		// Checked before the legacy slot so a pre-v2 retry of its own
		// session reports busy (retryable) rather than slot-taken.
		return nil, fmt.Errorf("transfer: session %q is already active on this endpoint: %w", session, errSessionBusy)
	}
	if proto < 2 && r.legacy != nil {
		return nil, fmt.Errorf("transfer: endpoint already serves a pre-v2 session (%s); one legacy peer at a time", r.legacy.id)
	}
	sess := &rsession{
		id:      session,
		proto:   proto,
		staging: NewStaging(bufCap),
		arena:   r.Cfg.arena(),
	}
	if proto >= 2 {
		sess.token = wire.NewDataToken()
		r.byToken[sess.token] = sess
	} else {
		r.legacy = sess
	}
	r.byID[session] = sess
	r.active++
	r.admitted++
	return sess, nil
}

// release unregisters a finished session and records its outcome.
func (r *Receiver) release(sess *rsession, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byID, sess.id)
	if sess.token != "" {
		delete(r.byToken, sess.token)
	}
	if r.legacy == sess {
		r.legacy = nil
	}
	r.active--
	if err == nil {
		r.completed++
	} else {
		r.failed++
	}
}

// expireStaleLedgers removes session ledgers whose last write is older
// than Config.LedgerTTL — the abandoned sessions of a long-lived
// destination, which would otherwise accumulate forever. Runs once, when
// the endpoint starts serving.
func (r *Receiver) expireStaleLedgers() {
	ttl := r.Cfg.LedgerTTL
	if ttl <= 0 {
		return
	}
	lister, ok := r.Store.(fsim.LedgerLister)
	ls, ok2 := r.Store.(fsim.LedgerStore)
	if !ok || !ok2 {
		return
	}
	infos, err := lister.ListLedgers()
	if err != nil {
		return
	}
	var n int64
	for _, info := range infos {
		if info.Age > ttl && ls.RemoveLedger(info.Session) == nil {
			n++
		}
	}
	if n > 0 {
		metrics.ResumeExpiredAdd(n)
		r.mu.Lock()
		r.expired += n
		r.mu.Unlock()
	}
}

// MetricsSnapshot exports the endpoint's gauges in the shared text
// format: admission counters, the active-session gauge, and per-session
// committed bytes and staging occupancy.
func (r *Receiver) MetricsSnapshot() metrics.Snapshot {
	r.mu.Lock()
	sessions := make([]*rsession, 0, len(r.byID))
	for _, s := range r.byID {
		sessions = append(sessions, s)
	}
	active, admitted, rejected := r.active, r.admitted, r.rejected
	completed, failed, expired := r.completed, r.failed, r.expired
	r.mu.Unlock()

	var snap metrics.Snapshot
	snap.Add("automdt_endpoint_sessions_active", float64(active))
	snap.Add("automdt_endpoint_sessions_total", float64(admitted), metrics.L("event", "admitted"))
	snap.Add("automdt_endpoint_sessions_total", float64(rejected), metrics.L("event", "rejected"))
	snap.Add("automdt_endpoint_sessions_total", float64(completed), metrics.L("event", "completed"))
	snap.Add("automdt_endpoint_sessions_total", float64(failed), metrics.L("event", "failed"))
	snap.Add("automdt_endpoint_ledgers_expired_total", float64(expired))
	if r.arb != nil {
		r.arb.snapshotInto(&snap)
	}
	for _, s := range sessions {
		id := metrics.L("session", s.id)
		snap.Add("automdt_endpoint_session_proto", float64(s.proto), id)
		snap.Add("automdt_endpoint_session_staging_used_bytes", float64(s.staging.Used()), id)
		if l := s.ledger.Load(); l != nil {
			snap.Add("automdt_endpoint_session_committed_bytes", float64(l.CommittedBytes()), id)
		}
	}
	return snap
}

// sumChecker tracks the sender-announced end-to-end file CRCs and which
// of them have been verified against the ledger.
type sumChecker struct {
	mu       sync.Mutex
	expected map[uint32]uint32
	checked  map[uint32]bool
	finished bool // SumsDone received
	want     int  // announced FileSum count
	got      int
}

func newSumChecker() *sumChecker {
	return &sumChecker{expected: make(map[uint32]uint32), checked: make(map[uint32]bool)}
}

// drained reports whether every announced sum has arrived.
func (c *sumChecker) drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finished && c.got >= c.want
}

// pending returns the announced files not yet verified.
func (c *sumChecker) pending() []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ids []uint32
	for id := range c.expected {
		if !c.checked[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// runSession executes one admitted session to completion or failure: the
// Welcome handshake, the session-scoped write pool draining the staging
// buffer the demuxed readers fill, ledger persistence, and end-to-end
// file verification. It returns when the transfer completes, the session
// fails, or the endpoint context is cancelled; its teardown releases
// every arena lease the session took and persists the ledger's final
// state without touching any sibling session.
func (r *Receiver) runSession(parent context.Context, sess *rsession, ctrl *wire.Conn, h *wire.Hello) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	sess.setCancel(cancel)
	if sess.Err() != nil {
		cancel() // an early data connection already failed the session
	}
	defer ctrl.Close()
	// Intake teardown, registered before any early return (a failed
	// Welcome send, say) can fire: data connections may already be routed
	// into this session — a legacy peer's arrive with its Hello still in
	// flight — and their readers and arena leases must not outlive it.
	// The main teardown defer below repeats these steps before the write
	// pool shuts down; every one of them is idempotent, so running both
	// is harmless.
	defer func() {
		sess.closeConns()
		sess.staging.Close()
		sess.readerWG.Wait()
		sess.staging.ReleaseRemaining()
	}()

	proto := sess.proto
	manifest := make(workload.Manifest, len(h.Files))
	var total int64
	for i, f := range h.Files {
		manifest[i] = workload.File{Name: f.Name, Size: f.Size}
		total += f.Size
	}
	chunkBytes := h.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = r.Cfg.ChunkBytes
	}

	// Session ledger: reload a persisted one when the store supports it
	// and the sender named a session, re-verifying every committed range
	// against the destination (a missing file or corrupt region loses
	// just its ledger entry) before advertising it.
	session := sess.id
	ledger := NewLedger(session, chunkBytes, manifest, h.Checksums)
	ls, canPersist := r.Store.(fsim.LedgerStore)
	resumable := canPersist && h.SessionID != "" && fsim.ValidSessionID(h.SessionID)
	if resumable {
		// LoadSessionLedger folds the append-only journal into the
		// snapshot (a torn or generation-mismatched journal truncates
		// to its last valid record) before anything is decided.
		if old, derr := LoadSessionLedger(ls, session); derr == nil &&
			old.MatchesManifest(manifest) == nil && old.HasSums == h.Checksums {
			if kept, _ := old.VerifyAgainst(r.Store); kept > 0 {
				metrics.ResumeSessionInc()
				metrics.ResumeSkippedAdd(kept)
				sess.resumed = true
			}
			ledger = old
			// The persisted ledger pins the session's chunk
			// geometry: the Welcome advertises its chunk size and
			// the sender plans with it, so a changed sender config
			// cannot orphan the committed ranges.
			chunkBytes = old.ChunkBytes
		}
	}
	sess.ledger.Store(ledger)
	// The persister owns all ledger writes for the session: journaled
	// O(delta) appends per probe tick, compaction, and the final
	// teardown persist. The opening compaction snapshots the
	// verification-adjusted state, folds any replayed journal away, and
	// migrates a v1 JSON document to the v2 binary layout in place.
	persister := newLedgerPersister(ledger, r.Store, session, resumable, r.Cfg.LedgerCompactBytes)
	persister.compact()
	persist := persister.tick

	if proto >= 1 {
		if err := ctrl.Send(wire.Message{Welcome: &wire.Welcome{
			ProtoVersion: proto,
			SessionID:    session,
			ChunkBytes:   chunkBytes,
			Ledger:       ledger.WireStates(),
			DataToken:    sess.token,
			// Advertising kio invites coalesced multi-chunk frames, which
			// the write path below splits back into per-chunk commits.
			Kio: r.Cfg.kioEnabled(),
		}}); err != nil {
			return fmt.Errorf("transfer: send welcome: %w", err)
		}
	}

	staging := sess.staging

	writers := make([]fsim.FileWriter, len(h.Files))
	var writerMu sync.Mutex
	writerFor := func(id uint32) (fsim.FileWriter, error) {
		if int(id) >= len(h.Files) {
			return nil, fmt.Errorf("transfer: frame for unknown file id %d", id)
		}
		writerMu.Lock()
		defer writerMu.Unlock()
		if writers[id] == nil {
			w, err := r.Store.Create(h.Files[id].Name, h.Files[id].Size)
			if err != nil {
				return nil, err
			}
			writers[id] = w
		}
		return writers[id], nil
	}
	defer func() {
		writerMu.Lock()
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
		writerMu.Unlock()
	}()

	// End-to-end file verification state (checksummed sessions).
	chk := newSumChecker()
	// checkFile verifies one announced file once it is fully committed:
	// the ledger's per-chunk sums are folded into the whole-file CRC and
	// compared against the sender's. A mismatch invalidates exactly that
	// file's ledger range — the next resume replans it — and fails the
	// session. A file is marked checked only AFTER the verdict lands:
	// finishSession re-verifies anything still pending, so a mismatch
	// discovered by a write worker can never race session completion
	// into reporting success (duplicate concurrent verifications are
	// harmless — same sums, same verdict, idempotent invalidation).
	checkFile := func(fileID uint32) {
		chk.mu.Lock()
		want, announced := chk.expected[fileID]
		if !announced || chk.checked[fileID] || !ledger.FileComplete(fileID) {
			chk.mu.Unlock()
			return
		}
		chk.mu.Unlock()
		got, ok := ledger.FileCRC(fileID)
		if !ok {
			return
		}
		if got != want {
			n := ledger.InvalidateFile(fileID)
			metrics.ResumeInvalidatedAdd(int64(n))
			persist()
			sess.fail(fmt.Errorf("transfer: end-to-end CRC mismatch on %s: got %#x want %#x (%d-chunk ledger range invalidated)",
				manifest[fileID].Name, got, want, n))
			cancel()
		}
		chk.mu.Lock()
		chk.checked[fileID] = true
		chk.mu.Unlock()
	}

	// Write pool. Completion is ledger-driven: the session is done when
	// every chunk — freshly written or inherited from a resumed ledger —
	// is committed.
	var written atomic.Int64
	var writeCounter metrics.Counter
	perThread := newLimiterSet(r.Cfg.Shaping.WritePerThreadMbps, r.Cfg.ChunkBytes)
	agg := newLimiter(r.Cfg.Shaping.WriteAggMbps, r.Cfg.ChunkBytes)
	// The arbitrated budget bucket: the session's max-min fair share of
	// the endpoint's write budget, resized by the arbiter as siblings
	// come and go.
	budget := rate.Unlimited()
	if r.arb != nil {
		budget = r.arb.join(sess.id)
		defer r.arb.leave(sess.id)
	}
	writeDone := make(chan struct{})
	var writeOnce sync.Once
	if ledger.CommittedBytes() >= total {
		// Nothing to move (empty dataset, or a resume that was already
		// complete): the session is done as soon as it starts.
		writeOnce.Do(func() { close(writeDone) })
	}
	// chunkCommitted reports whether every ledger chunk a staged payload
	// covers is already committed (a staged chunk spans several when a
	// kio sender coalesced a run into one frame).
	chunkCommitted := func(c *Chunk) bool {
		for off := c.Offset; off < c.Offset+int64(len(c.Data)); off += int64(chunkBytes) {
			if !ledger.Done(c.FileID, off) {
				return false
			}
		}
		return true
	}
	// commitPrefix splits the first limit written bytes of a payload back
	// into per-chunk ledger commits (limit < len(Data) after a short
	// write: only the pieces wholly on disk commit). Each piece is hashed
	// at this last stage before the lease is returned: the sum reflects
	// what actually reached the store, so the FileSum compare is
	// end-to-end, not an echo of the already-verified wire CRC.
	commitPrefix := func(c *Chunk, limit int) {
		if limit > len(c.Data) {
			limit = len(c.Data)
		}
		data, offset := c.Data, c.Offset
		for len(data) > 0 {
			n := chunkBytes
			if len(data) < n {
				n = len(data)
			}
			if n > limit {
				return // the rest of the payload never reached the store
			}
			limit -= n
			if !ledger.Done(c.FileID, offset) {
				var sum uint32
				if h.Checksums {
					sum = wire.PayloadCRC(data[:n])
				}
				if ledger.Commit(c.FileID, offset, n, sum) {
					if h.Checksums {
						checkFile(c.FileID)
					}
					if ledger.CommittedBytes() >= total {
						writeOnce.Do(func() { close(writeDone) })
					}
				}
			}
			data = data[n:]
			offset += int64(n)
		}
	}
	// kioBatch turns on the vectored flush: adjacent staged chunks drain
	// together and land with one pwritev when the destination file
	// exposes a raw descriptor. Off (or for a destination without
	// descriptors), every chunk takes the portable one-WriteAt path.
	// Shaped write stages keep chunk-at-a-time flushes: a rate-bound
	// stage gains nothing from syscall batching, and batching would lump
	// the paced writes into end-of-window bursts.
	kioBatch := r.Cfg.kioEnabled() &&
		r.Cfg.Shaping.WritePerThreadMbps <= 0 && r.Cfg.Shaping.WriteAggMbps <= 0 &&
		r.Cfg.WriteBudgetMbps <= 0
	// flushGroup writes one adjacent same-file group and reports how many
	// leading bytes are durably on disk — on a short write or mid-group
	// error the caller still commits the chunk-grid pieces inside that
	// prefix, so the failure loses no resume granularity. A pwritev
	// refusal (no descriptor) falls back to per-chunk WriteAt —
	// positioned writes are idempotent, so a partially applied vector is
	// simply rewritten.
	flushGroup := func(w fsim.FileWriter, group []Chunk, iovs [][]byte) (int64, error) {
		if kioBatch && len(group) > 1 {
			if fd, ok := w.(syscall.Conn); ok {
				iovs = iovs[:0]
				for i := range group {
					iovs = append(iovs, group[i].Data)
				}
				written, err := wire.Pwritev(fd, iovs, group[0].Offset)
				if err == nil || !errors.Is(err, wire.ErrKioUnsupported) {
					return written, err
				}
			}
		}
		var written int64
		for i := range group {
			wire.CountIOOps(1)
			n, err := w.WriteAt(group[i].Data, group[i].Offset)
			written += int64(n)
			if err != nil {
				return written, err
			}
			if n < len(group[i].Data) {
				return written, io.ErrShortWrite
			}
		}
		return written, nil
	}
	var pool *Pool
	pool = NewPool(func(stop <-chan struct{}, id int) {
		lim := perThread.get(id)
		poll := newPollTimer()
		defer poll.stop()
		var batch []Chunk
		var iovs [][]byte
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			default:
			}
			// Batch size adapts to the env's write-stage dimension: a
			// deep backlog shared over few writers drains in large
			// vectors, a keeping-up pool degenerates to chunk-at-a-time.
			k := 1
			if kioBatch {
				if w := pool.Size(); w > 0 {
					k = 1 + staging.Len()/w
				}
				if k > commitBatchChunks {
					k = commitBatchChunks
				}
			}
			var closed bool
			batch, closed = staging.TryGetN(batch[:0], k)
			if len(batch) == 0 {
				if closed {
					return
				}
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case <-poll.after(2 * time.Millisecond):
				}
				continue
			}
			// Drop duplicates of committed chunks (resume overlap or a
			// replayed frame) without touching the disk.
			keep := batch[:0]
			for i := range batch {
				if chunkCommitted(&batch[i]) {
					batch[i].Release()
					continue
				}
				keep = append(keep, batch[i])
			}
			batch = keep
			if len(batch) == 0 {
				continue
			}
			// Reserve shaping tokens chunk by chunk so a shaped write
			// stage paces a batched flush the same as per-chunk writes.
			aborted := false
			for i := range batch {
				sz := len(batch[i].Data)
				if err := lim.WaitN(ctx, sz); err != nil {
					aborted = true
					break
				}
				if err := agg.WaitN(ctx, sz); err != nil {
					aborted = true
					break
				}
				if err := budget.WaitN(ctx, sz); err != nil {
					aborted = true
					break
				}
			}
			if aborted { // limiter wait cancelled: the session is coming down
				for i := range batch {
					batch[i].Release()
				}
				return
			}
			// Flush adjacent same-file groups, then split each written
			// payload into per-chunk commits. The arena lease ends only
			// once its chunk has committed (or failed): the commit path
			// re-hashes the payload, so the buffer must still be live.
			i := 0
			for i < len(batch) {
				j := i + 1
				for j < len(batch) &&
					batch[j].FileID == batch[i].FileID &&
					batch[j].Offset == batch[j-1].Offset+int64(len(batch[j-1].Data)) {
					j++
				}
				group := batch[i:j]
				var wrote int64
				w, err := writerFor(group[0].FileID)
				if err == nil {
					span := flight.StageStart()
					wrote, err = flushGroup(w, group, iovs)
					flight.StageEnd(flight.StageWrite, span)
				}
				// Commit every chunk-grid piece inside the durably written
				// prefix — a short write or mid-group failure must not
				// forfeit ledger granularity, or a retry would re-send
				// bytes that are already on disk.
				for d := range group {
					c := &group[d]
					lim := int64(len(c.Data))
					if lim > wrote {
						lim = wrote
					}
					if lim > 0 {
						commitPrefix(c, int(lim))
						writeCounter.Add(lim)
						written.Add(lim)
					}
					wrote -= lim
					c.Release()
				}
				if err != nil {
					for i = j; i < len(batch); i++ {
						batch[i].Release()
					}
					sess.fail(err)
					cancel()
					return
				}
				i = j
			}
		}
	})
	n := h.InitialWriters
	if n <= 0 {
		n = r.Cfg.InitialThreads
	}
	pool.Resize(n)
	// Shutdown discipline: stop this session's intake first (every data
	// connection, then wait for the readers those connections fed), close
	// staging so a reader still mid-Put fails and releases its own lease,
	// stop the write pool, and only then drain what's left. After this
	// defer runs, every arena lease this session took is returned, and
	// the ledger's latest state is persisted so the next attempt can
	// resume from it. Sibling sessions and the endpoint listeners are
	// untouched.
	defer func() {
		sess.closeConns()
		// Close staging BEFORE waiting on the readers: closing the conns
		// only unblocks readers parked in a socket read, while a reader
		// blocked in Put on a full staging buffer (write pool already
		// gone on cancellation) only wakes when staging closes — waiting
		// first would deadlock the session forever.
		staging.Close()
		sess.readerWG.Wait()
		pool.Shutdown()
		staging.ReleaseRemaining()
		persist()
	}()

	// Control loop: periodic status out; SetWriters commands and session
	// sums in. A dead control channel ends the session immediately: the
	// sender can neither steer nor learn the outcome without it, and a
	// prompt teardown frees the session's ledger key for the retry that
	// typically follows (after completion the cancel is a no-op).
	cmds := make(chan wire.Message, 8)
	go func() {
		for {
			m, err := ctrl.Recv()
			if err != nil {
				cancel()
				return
			}
			select {
			case cmds <- m:
			case <-ctx.Done():
				return
			}
		}
	}()

	ticker := time.NewTicker(r.Cfg.ProbeInterval)
	defer ticker.Stop()
	sendStatus := func(done bool) error {
		wBytes := writeCounter.Reset()
		mbps := bytesToMb(wBytes) / r.Cfg.ProbeInterval.Seconds()
		st := wire.Status{
			WrittenBytes:   written.Load(),
			CommittedBytes: ledger.CommittedBytes(),
			BufUsed:        staging.Used(),
			BufFree:        staging.Free(),
			WriteMbps:      mbps,
			Writers:        pool.Size(),
			Done:           done,
		}
		if e := sess.Err(); e != nil {
			st.Error = e.Error()
		}
		return ctrl.Send(wire.Message{Status: &st})
	}

	handleCmd := func(m wire.Message) {
		switch {
		case m.SetWriters != nil:
			n := m.SetWriters.N
			if n > r.Cfg.MaxThreads {
				n = r.Cfg.MaxThreads
			}
			if n < 1 {
				n = 1
			}
			pool.Resize(n)
		case m.FileSum != nil:
			chk.mu.Lock()
			chk.expected[m.FileSum.FileID] = m.FileSum.CRC
			chk.got++
			chk.mu.Unlock()
			checkFile(m.FileSum.FileID)
		case m.SumsDone != nil:
			chk.mu.Lock()
			chk.finished = true
			chk.want = m.SumsDone.Files
			chk.mu.Unlock()
		case m.LedgerPull != nil:
			// Striping recovery (protocol ≥ 3): answer with the current
			// committed state so the sender re-plans only the chunks this
			// endpoint never got. A send error here is a dying control
			// channel, which ends the session through its own path.
			ctrl.Send(wire.Message{LedgerState: &wire.LedgerState{
				Seq:    m.LedgerPull.Seq,
				Ledger: ledger.WireStates(),
			}})
		}
	}

	// finishSession concludes a fully committed session: verify every
	// announced file sum, then either persist the (invalidated) ledger
	// and fail, or drop the ledger and confirm completion. A checksummed
	// session whose sums never fully arrived (lost control messages)
	// still completes — the data passed the per-frame CRCs — but the
	// degradation is counted, and the ledger is kept instead of removed
	// so re-running the session can still verify retroactively.
	finishSession := func() error {
		unverified := h.Checksums && proto >= 1 && !chk.drained()
		if unverified {
			metrics.ResumeUnverifiedInc()
		}
		for _, id := range chk.pending() {
			checkFile(id)
		}
		if e := sess.Err(); e != nil {
			persist()
			sendStatus(false)
			return e
		}
		if unverified {
			persist()
		}
		persister.markDone()
		if resumable && !unverified {
			ls.RemoveLedger(session)
		}
		if err := sendStatus(true); err != nil {
			return err
		}
		return nil
	}

	// waitDone is nil-ed after firing so the select can keep serving
	// control messages while late FileSums drain (the control and data
	// channels are separate TCP connections, so the last sums can trail
	// the last frame).
	waitDone := writeDone
	var sumGrace <-chan time.Time
	for {
		select {
		case <-ctx.Done():
			sendStatus(false)
			if e := sess.Err(); e != nil {
				return e
			}
			return ctx.Err()
		case <-waitDone:
			waitDone = nil
			if h.Checksums && proto >= 1 && !chk.drained() {
				// Generous: the happy path completes via cmds the moment
				// the trailing sums land, so the grace only bounds how
				// long a genuinely lost SumsDone can stall completion.
				sumGrace = time.After(30 * time.Second)
				continue
			}
			return finishSession()
		case <-sumGrace:
			return finishSession() // sender never closed out its sums; verify what arrived
		case m := <-cmds:
			handleCmd(m)
			if waitDone == nil && chk.drained() {
				return finishSession()
			}
		case <-ticker.C:
			persist()
			if err := sendStatus(false); err != nil {
				return err
			}
		}
	}
}
