package transfer

import (
	"strings"
	"testing"

	"automdt/internal/fsim"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

func ledgerManifest() workload.Manifest {
	return workload.Manifest{
		{Name: "a.bin", Size: 256<<10 + 17}, // 5 chunks at 64 KiB, odd tail
		{Name: "b.bin", Size: 64 << 10},     // exactly one chunk
		{Name: "empty", Size: 0},
	}
}

func TestLedgerCommitAccounting(t *testing.T) {
	m := ledgerManifest()
	l := NewLedger("s1", 64<<10, m, true)
	if l.CommittedBytes() != 0 || l.CommittedChunks() != 0 {
		t.Fatal("fresh ledger not empty")
	}
	if !l.Commit(0, 0, 64<<10, 0xAA) {
		t.Fatal("first commit rejected")
	}
	if l.Commit(0, 0, 64<<10, 0xAA) {
		t.Fatal("duplicate commit accepted")
	}
	if !l.Done(0, 0) || l.Done(0, 64<<10) {
		t.Fatal("Done bitmap wrong")
	}
	// Tail chunk of a.bin: 17 bytes at offset 256 KiB.
	if l.Commit(0, 256<<10, 64<<10, 0) {
		t.Fatal("wrong-length tail commit accepted")
	}
	if !l.Commit(0, 256<<10, 17, 0xBB) {
		t.Fatal("tail commit rejected")
	}
	// Misaligned and out-of-range commits must be rejected.
	if l.Commit(0, 13, 64<<10, 0) || l.Commit(9, 0, 64<<10, 0) || l.Commit(0, 1<<40, 64<<10, 0) {
		t.Fatal("bogus commit accepted")
	}
	if got := l.CommittedBytes(); got != 64<<10+17 {
		t.Fatalf("CommittedBytes=%d", got)
	}
	if l.FileComplete(0) {
		t.Fatal("incomplete file reported complete")
	}
	if !l.FileComplete(2) {
		t.Fatal("empty file must be trivially complete")
	}
}

func TestLedgerEncodeDecodeRoundTrip(t *testing.T) {
	m := ledgerManifest()
	l := NewLedger("s1", 64<<10, m, true)
	l.Commit(0, 64<<10, 64<<10, 0x11)
	l.Commit(0, 256<<10, 17, 0x22)
	l.Commit(1, 0, 64<<10, 0x33)
	data, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLedger(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SessionID != "s1" || got.ChunkBytes != 64<<10 || !got.HasSums {
		t.Fatalf("header lost: %+v", got)
	}
	if got.CommittedBytes() != l.CommittedBytes() {
		t.Fatalf("committed %d != %d", got.CommittedBytes(), l.CommittedBytes())
	}
	if !got.Done(0, 64<<10) || got.Done(0, 0) || !got.Done(1, 0) {
		t.Fatal("bitmap lost in round trip")
	}
	if err := got.Matches(m, 64<<10); err != nil {
		t.Fatal(err)
	}
	if err := got.Matches(m, 32<<10); err == nil {
		t.Fatal("chunk-size mismatch accepted")
	}
	m2 := append(workload.Manifest{}, m...)
	m2[0].Size++
	if err := got.Matches(m2, 64<<10); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := DecodeLedger([]byte(`{"schema":99}`)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("bad schema accepted: %v", err)
	}
}

func TestLedgerWireRoundTrip(t *testing.T) {
	m := ledgerManifest()
	l := NewLedger("s1", 64<<10, m, true)
	l.Commit(0, 0, 64<<10, 1)
	l.Commit(0, 128<<10, 64<<10, 2)
	states := l.WireStates()
	if len(states) != 1 || states[0].FileID != 0 || states[0].CommittedBytes != 128<<10 {
		t.Fatalf("states: %+v", states)
	}
	view := NewLedger("s1", 64<<10, m, false)
	view.ApplyWire(states)
	if view.CommittedBytes() != 128<<10 || !view.Done(0, 0) || view.Done(0, 64<<10) || !view.Done(0, 128<<10) {
		t.Fatalf("applied view wrong: committed=%d", view.CommittedBytes())
	}
	// A hostile bitmap with tail bits beyond the last chunk must not
	// inflate the committed count.
	view2 := NewLedger("s1", 64<<10, m, false)
	view2.ApplyWire([]wire.FileState{{FileID: 1, CommittedBytes: 1 << 40, Bitmap: []uint64{^uint64(0)}}})
	if got := view2.CommittedBytes(); got != 64<<10 {
		t.Fatalf("tail bits inflated committed to %d", got)
	}
}

func TestLedgerInvalidate(t *testing.T) {
	m := ledgerManifest()
	l := NewLedger("s1", 64<<10, m, true)
	for off := int64(0); off < 256<<10; off += 64 << 10 {
		l.Commit(0, off, 64<<10, 7)
	}
	l.Commit(0, 256<<10, 17, 7)
	if !l.FileComplete(0) {
		t.Fatal("file 0 should be complete")
	}
	if n := l.Invalidate(0, 64<<10, 2*64<<10); n != 2 {
		t.Fatalf("cleared %d chunks want 2", n)
	}
	if l.Done(0, 64<<10) || l.Done(0, 128<<10) || !l.Done(0, 0) || !l.Done(0, 192<<10) {
		t.Fatal("wrong chunks cleared")
	}
	if n := l.InvalidateFile(0); n != 3 {
		t.Fatalf("InvalidateFile cleared %d want 3", n)
	}
	if l.CommittedBytes() != 0 {
		t.Fatalf("committed %d after full invalidation", l.CommittedBytes())
	}
}

func TestLedgerFileCRCMatchesWholeFile(t *testing.T) {
	const chunk = 8 << 10
	m := workload.Manifest{{Name: "f.bin", Size: 3*chunk + 123}}
	l := NewLedger("s1", chunk, m, true)
	whole := make([]byte, m[0].Size)
	fsim.FillContent("f.bin", 0, whole)
	for off := int64(0); off < m[0].Size; off += chunk {
		end := off + chunk
		if end > m[0].Size {
			end = m[0].Size
		}
		l.Commit(0, off, int(end-off), wire.PayloadCRC(whole[off:end]))
	}
	crc, ok := l.FileCRC(0)
	if !ok {
		t.Fatal("FileCRC not available on complete file")
	}
	if want := wire.PayloadCRC(whole); crc != want {
		t.Fatalf("combined %#x want %#x", crc, want)
	}
}

// VerifyAgainst must keep ranges whose bytes still match, drop a file
// that disappeared, and drop exactly the chunks that were corrupted.
func TestLedgerVerifyAgainstStore(t *testing.T) {
	const chunk = 4 << 10
	m := workload.Manifest{
		{Name: "good.bin", Size: 3 * chunk},
		{Name: "gone.bin", Size: chunk},
		{Name: "corrupt.bin", Size: 2 * chunk},
	}
	dir := t.TempDir()
	ds, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLedger("s1", chunk, m, true)
	buf := make([]byte, chunk)
	for fi, f := range m {
		w, err := ds.Create(f.Name, f.Size)
		if err != nil {
			t.Fatal(err)
		}
		for off := int64(0); off < f.Size; off += chunk {
			fsim.FillContent(f.Name, off, buf)
			if _, err := w.WriteAt(buf, off); err != nil {
				t.Fatal(err)
			}
			l.Commit(uint32(fi), off, chunk, wire.PayloadCRC(buf))
		}
		w.Close()
	}
	// Lose one file entirely, corrupt one chunk of another.
	if err := removeStoreFile(t, dir, "gone.bin"); err != nil {
		t.Fatal(err)
	}
	corruptStoreFile(t, dir, "corrupt.bin", chunk+5)

	kept, cleared := l.VerifyAgainst(ds)
	if want := int64(3*chunk + chunk); kept != want { // good.bin + first chunk of corrupt.bin
		t.Fatalf("kept %d want %d (cleared %d)", kept, want, cleared)
	}
	if cleared != 2 { // gone.bin (1 chunk) + corrupt.bin chunk 1
		t.Fatalf("cleared %d ranges want 2", cleared)
	}
	if !l.Done(2, 0) || l.Done(2, chunk) || l.Done(1, 0) {
		t.Fatal("wrong ranges survived verification")
	}
}
