package transfer

import (
	"context"
	"strings"
	"testing"

	"automdt/internal/fsim"
	"automdt/internal/metrics"
	"automdt/internal/workload"
)

func TestWriteArbiterEqualSplit(t *testing.T) {
	a := newWriteArbiter(120, 1<<20)
	if a == nil {
		t.Fatal("arbiter nil for positive budget")
	}
	l1 := a.join("s1")
	if got := a.shareMbps(); got != 120 {
		t.Fatalf("share with 1 member = %v, want 120", got)
	}
	wantRate := mbpsToBytesPerSec(120)
	if got := l1.Rate(); got != wantRate {
		t.Fatalf("s1 rate = %v, want %v", got, wantRate)
	}

	l2 := a.join("s2")
	a.join("s3")
	if got := a.shareMbps(); got != 40 {
		t.Fatalf("share with 3 members = %v, want 40", got)
	}
	wantRate = mbpsToBytesPerSec(40)
	if l1.Rate() != wantRate || l2.Rate() != wantRate {
		t.Fatalf("rates after 3-way split = %v, %v, want %v", l1.Rate(), l2.Rate(), wantRate)
	}

	// Leaves redistribute to the survivors.
	a.leave("s2")
	a.leave("s2") // double-leave: no-op
	wantRate = mbpsToBytesPerSec(60)
	if l1.Rate() != wantRate {
		t.Fatalf("s1 rate after leave = %v, want %v", l1.Rate(), wantRate)
	}

	// Rejoin returns the same bucket.
	if a.join("s1") != l1 {
		t.Fatal("join of existing member returned a new bucket")
	}
}

func TestWriteArbiterDisabled(t *testing.T) {
	if a := newWriteArbiter(0, 1<<20); a != nil {
		t.Fatal("arbiter non-nil for zero budget")
	}
	if a := newWriteArbiter(-5, 1<<20); a != nil {
		t.Fatal("arbiter non-nil for negative budget")
	}
}

func TestWriteArbiterSnapshot(t *testing.T) {
	a := newWriteArbiter(80, 1<<20)
	a.join("s1")
	a.join("s2")
	var snap metrics.Snapshot
	a.snapshotInto(&snap)
	got := map[string]float64{}
	for _, s := range snap.Samples() {
		got[s.Name] = s.Value
	}
	if got["automdt_endpoint_write_budget_mbps"] != 80 {
		t.Errorf("budget gauge = %v, want 80", got["automdt_endpoint_write_budget_mbps"])
	}
	if got["automdt_endpoint_write_budget_sessions"] != 2 {
		t.Errorf("sessions gauge = %v, want 2", got["automdt_endpoint_write_budget_sessions"])
	}
	if got["automdt_endpoint_write_budget_share_mbps"] != 40 {
		t.Errorf("share gauge = %v, want 40", got["automdt_endpoint_write_budget_share_mbps"])
	}
	if got["automdt_endpoint_write_budget_rebalances_total"] != 2 {
		t.Errorf("rebalances = %v, want 2", got["automdt_endpoint_write_budget_rebalances_total"])
	}
}

// TestWriteBudgetEndToEnd drives one budgeted session over loopback and
// asserts the transfer stays byte-correct with the budget bucket in the
// write pool — the wiring from Config.WriteBudgetMbps through the
// arbiter to the per-chunk WaitN.
func TestWriteBudgetEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.WriteBudgetMbps = 4000 // generous: exercises the path, not the pacing
	m := workload.LargeFiles(4, 1<<20)
	src, dst := fsim.NewSyntheticStore(), fsim.NewSyntheticStore()
	dst.Verify = true
	res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
	if err != nil {
		t.Fatalf("budgeted loopback run: %v", err)
	}
	if res.Bytes != 4<<20 {
		t.Fatalf("transferred %d bytes, want %d", res.Bytes, int64(4<<20))
	}
	if errs := dst.Errors(); len(errs) > 0 {
		t.Fatalf("store verification errors: %v", errs)
	}
}

// TestWriteBudgetGaugesOnSnapshot asserts a budgeted endpoint exports
// the automdt_endpoint_write_budget_* gauges.
func TestWriteBudgetGaugesOnSnapshot(t *testing.T) {
	cfg := testConfig()
	cfg.WriteBudgetMbps = 100
	r := NewReceiver(cfg, fsim.NewSyntheticStore())
	text := r.MetricsSnapshot().Text()
	for _, want := range []string{
		"automdt_endpoint_write_budget_mbps",
		"automdt_endpoint_write_budget_sessions",
		"automdt_endpoint_write_budget_share_mbps",
		"automdt_endpoint_write_budget_rebalances_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, text)
		}
	}
	// Unbudgeted endpoints must not grow new series.
	r2 := NewReceiver(testConfig(), fsim.NewSyntheticStore())
	if strings.Contains(r2.MetricsSnapshot().Text(), "write_budget") {
		t.Fatal("unbudgeted endpoint exports write-budget gauges")
	}
}
