package transfer

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"automdt/internal/fsim"
	"automdt/internal/wire"
	"automdt/internal/workload"
)

// persistV1Session recreates what the schema-1 code path left on disk:
// a half-committed JSON ledger document plus the data file backing its
// committed ranges. Returns the committed byte count.
func persistV1Session(t *testing.T, dst *fsim.DirStore, session string, cfg Config, m workload.Manifest) int64 {
	t.Helper()
	l := NewLedger(session, cfg.ChunkBytes, m, true)
	buf := make([]byte, cfg.ChunkBytes)
	w, err := dst.Create(m[0].Name, m[0].Size)
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < m[0].Size; off += int64(cfg.ChunkBytes) {
		chunk := buf[:min(int64(cfg.ChunkBytes), m[0].Size-off)]
		fsim.FillContent(m[0].Name, off, chunk)
		if _, err := w.WriteAt(chunk, off); err != nil {
			t.Fatal(err)
		}
		l.Commit(0, off, len(chunk), wire.PayloadCRC(chunk))
	}
	w.Close()
	data, err := l.Encode() // schema-1 JSON, exactly what old builds saved
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.SaveLedger(session, data); err != nil {
		t.Fatal(err)
	}
	return l.CommittedBytes()
}

// A session persisted by the schema-1 code path resumes under v2,
// migrates in place at the first save — the binary snapshot replaces
// the JSON document while the session is still running — completes, and
// leaves nothing behind.
func TestV1LedgerMigratesToV2OnResume(t *testing.T) {
	dir := t.TempDir()
	const session = "migrate-v1"
	m := workload.LargeFiles(2, 512<<10)
	src := fsim.NewSyntheticStore()
	cfg := testConfig()
	cfg.SessionID = session
	cfg.Shaping.LinkMbps = 120 // slow enough to observe the mid-run layout

	dst, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	committed := persistV1Session(t, dst, session, cfg, m)
	jsonPath := filepath.Join(dir, ".automdt", session, "ledger.json")
	binPath := filepath.Join(dir, ".automdt", session, "ledger.bin")
	if _, err := os.Stat(jsonPath); err != nil {
		t.Fatalf("v1 fixture not at the JSON path: %v", err)
	}

	// Watch the session directory while the resume runs: the v2
	// snapshot must appear and the JSON document must be gone while the
	// transfer is still in flight (migration happens at the first save,
	// not at completion).
	migrated := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(migrated)
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			_, binErr := os.Stat(binPath)
			_, jsonErr := os.Stat(jsonPath)
			if binErr == nil && os.IsNotExist(jsonErr) {
				return
			}
		}
	}()

	res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.SkippedBytes != committed {
		t.Fatalf("resume across the schema upgrade failed: %+v (want %d skipped)", res, committed)
	}
	select {
	case <-migrated:
	default:
		t.Fatal("migration to the v2 layout was never observed mid-run")
	}
	// Completion removes every layout's files.
	if _, err := dst.LoadLedger(session); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("ledger survived completion: %v", err)
	}
	if entries, err := os.ReadDir(filepath.Join(dir, ".automdt")); err == nil && len(entries) != 0 {
		t.Fatalf("control-state residue after completion: %v", entries)
	}
	for _, f := range m {
		got, err := os.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, f.Size)
		fsim.FillContent(f.Name, 0, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s corrupt after migrated resume", f.Name)
		}
	}
}

// Ledgers written by the oldest builds at the flat
// .automdt/<session>.ledger path still load and resume; the migrated
// session cleans the flat file up too.
func TestLegacyFlatPathLedgerStillResumes(t *testing.T) {
	dir := t.TempDir()
	const session = "legacy-flat"
	m := workload.LargeFiles(2, 256<<10)
	src := fsim.NewSyntheticStore()
	cfg := testConfig()
	cfg.SessionID = session

	dst, err := fsim.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	committed := persistV1Session(t, dst, session, cfg, m)
	// Relocate the document to the flat legacy path.
	jsonPath := filepath.Join(dir, ".automdt", session, "ledger.json")
	flatPath := filepath.Join(dir, ".automdt", session+".ledger")
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(flatPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(jsonPath); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Dir(jsonPath))

	l, err := LoadSessionLedger(dst, session)
	if err != nil || l.CommittedBytes() != committed {
		t.Fatalf("flat-path ledger unreadable: %v (committed %d want %d)", err, l.CommittedBytes(), committed)
	}
	res, err := Loopback(context.Background(), cfg, m, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.SkippedBytes != committed {
		t.Fatalf("flat-path resume failed: %+v", res)
	}
	if _, err := os.Stat(flatPath); !os.IsNotExist(err) {
		t.Fatalf("legacy flat ledger survived: %v", err)
	}
}
