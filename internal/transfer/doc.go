// Package transfer implements the modular data transfer engine of
// AutoMDT (§III): independent, dynamically resizable worker pools for
// the read, network, and write stages, connected through bounded
// in-memory staging buffers (the application-level /dev/shm analogue)
// and real TCP data connections. A pluggable env.Controller reassigns
// the concurrency tuple every probe interval, which is how the PPO
// agent, the Marlin baseline, and the static baseline all drive the same
// engine.
//
// The two engine halves are Sender (source side: read pool → staging →
// network pool) and Receiver (destination side: demux → per-session
// staging → write pool). A Receiver is a multi-session endpoint: one
// control listener and one data listener serve many concurrent sessions,
// demultiplexed by the token in each data connection's wire-protocol
// preamble, with a per-endpoint admission cap (Config.MaxSessions) and
// fully isolated per-session teardown. Loopback wires both halves
// together in-process for tests, benchmarks, and examples.
//
// Chunk buffers come from a size-classed, reference-counted Arena — the
// single allocation point of the hot path — and ride from stage to stage
// by ownership transfer, so steady-state transfers make zero per-chunk
// allocations.
//
// Sessions are resumable: each keeps a chunk Ledger (per-file committed
// bitmaps plus per-chunk CRC-32C sums) that the destination store
// persists via fsim.LedgerStore, advertises on the Welcome handshake,
// and re-verifies by read-back before trusting after a restart.
// Persistence is incremental: a probe tick appends only the chunk
// commits and invalidations since the last tick to an fsync'd
// append-only journal (schema 2, O(delta) per tick), periodically
// compacted into a fresh binary snapshot; schema-1 JSON documents are
// still read and migrate in place on the first save. Stale ledgers are
// expired by age when an endpoint starts serving (Config.LedgerTTL).
//
// See docs/ARCHITECTURE.md for the subsystem map and data-path diagram,
// and docs/PROTOCOL.md for the wire formats and the ledger schemas.
package transfer
