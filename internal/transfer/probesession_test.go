package transfer

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"automdt/internal/env"
	"automdt/internal/probe"
)

func TestProbeSessionMeasuresShapedPath(t *testing.T) {
	if testing.Short() {
		t.Skip("timed test skipped in -short mode")
	}
	cfg := Config{
		ChunkBytes:     64 << 10,
		MaxThreads:     8,
		InitialThreads: 1,
		ProbeInterval:  50 * time.Millisecond,
		Shaping: Shaping{
			ReadPerThreadMbps:  100,
			NetPerStreamMbps:   100,
			WritePerThreadMbps: 100,
			LinkMbps:           400,
		},
	}
	ps, err := NewProbeSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	// With 4 threads per stage at 100 Mbps per thread, each stage should
	// measure in the few-hundred-Mbps range once flowing. A probe
	// snapshot counts whole chunks per 50 ms window, so on a loaded
	// machine (notably under -race) any single window can read zero or
	// double for one stage; sample until every stage has produced an
	// in-range positive reading. A stage that never flows, or only ever
	// reads past the shaped ceiling, still times out and fails.
	var okR, okN, okW, tr, tn, tw float64
	deadline := time.Now().Add(15 * time.Second)
	for okR == 0 || okN == 0 || okW == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no in-range flow on every stage: got %v %v %v (last probe %v %v %v)",
				okR, okN, okW, tr, tn, tw)
		}
		tr, tn, tw = ps.Probe(env.ActionOf(4, 2, 2, 4))
		if tr > 0 && tr <= 600 {
			okR = tr
		}
		if tn > 0 && tn <= 600 {
			okN = tn
		}
		if tw > 0 && tw <= 600 {
			okW = tw
		}
	}
	if err := ps.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestProbeSessionFeedsExplore(t *testing.T) {
	if testing.Short() {
		t.Skip("timed test skipped in -short mode")
	}
	cfg := Config{
		ChunkBytes:     64 << 10,
		MaxThreads:     8,
		InitialThreads: 1,
		ProbeInterval:  40 * time.Millisecond,
		Shaping: Shaping{
			ReadPerThreadMbps:  80,
			NetPerStreamMbps:   160,
			WritePerThreadMbps: 200,
			LinkMbps:           800,
		},
	}
	ps, err := NewProbeSession(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	p, err := probe.Explore(ps, rand.New(rand.NewSource(3)),
		probe.Options{Steps: 12, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bottleneck <= 0 || p.Rmax <= 0 {
		t.Fatalf("degenerate profile: %s", p)
	}
	for i, tpt := range p.TPT {
		if tpt <= 0 {
			t.Fatalf("stage %d TPT %v", i, tpt)
		}
	}
}
