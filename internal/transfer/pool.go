package transfer

import (
	"sync"
	"time"
)

// pollTimer is a reusable timer for worker poll loops. The old
// per-iteration time.After allocated a timer and channel on every empty
// poll — hundreds of allocations per transfer under a 2 ms poll
// interval. With go ≥ 1.23 semantics, Reset without a drain is safe.
type pollTimer struct {
	t *time.Timer
}

func newPollTimer() *pollTimer { return &pollTimer{} }

// after arms the timer for d and returns its channel.
func (p *pollTimer) after(d time.Duration) <-chan time.Time {
	if p.t == nil {
		p.t = time.NewTimer(d)
	} else {
		p.t.Reset(d)
	}
	return p.t.C
}

// stop disarms the timer.
func (p *pollTimer) stop() {
	if p.t != nil {
		p.t.Stop()
	}
}

// Pool is a dynamically resizable worker pool. Each worker runs the work
// function with a stop channel that is closed when the pool shrinks below
// the worker's slot or shuts down; workers must return promptly once stop
// is closed. Slots are identified by a small integer id so the engine can
// attach per-thread resources (e.g. per-stream rate limiters).
type Pool struct {
	mu    sync.Mutex
	stops []chan struct{}
	wg    sync.WaitGroup
	work  func(stop <-chan struct{}, id int)
}

// NewPool creates a pool with zero workers.
func NewPool(work func(stop <-chan struct{}, id int)) *Pool {
	return &Pool{work: work}
}

// Resize grows or shrinks the pool to n workers. Shrinking closes the
// highest-numbered slots first; it does not wait for them to exit.
func (p *Pool) Resize(n int) {
	if n < 0 {
		n = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.stops) > n {
		last := len(p.stops) - 1
		close(p.stops[last])
		p.stops = p.stops[:last]
	}
	for len(p.stops) < n {
		stop := make(chan struct{})
		id := len(p.stops)
		p.stops = append(p.stops, stop)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.work(stop, id)
		}()
	}
}

// Size returns the current target worker count.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.stops)
}

// Shutdown stops all workers and waits for them to exit.
func (p *Pool) Shutdown() {
	p.Resize(0)
	p.wg.Wait()
}

// Wait blocks until every started worker has returned (without stopping
// them). Useful after the work source is exhausted.
func (p *Pool) Wait() { p.wg.Wait() }
