package transfer

import (
	"fmt"
	"math/rand"
	"testing"

	"automdt/internal/workload"
)

// TestLedgerPersistReloadProperty drives a ledger through long random
// sequences of Commit / Invalidate / InvalidateFile, interleaved with
// persistence round trips through every supported encoding — the v1
// JSON document, the v2 binary snapshot, and the v2 snapshot + journal
// pair maintained exactly the way the receiver's persister maintains it
// (delta appends per tick, occasional compaction) — and demands each
// reload reproduce the in-memory ledger exactly: bitmaps, per-chunk
// CRCs, per-file committed bytes, and the running totals.
func TestLedgerPersistReloadProperty(t *testing.T) {
	const chunk = 4 << 10
	m := workload.Manifest{
		{Name: "a.bin", Size: 37*chunk + 123}, // odd tail
		{Name: "b.bin", Size: chunk},          // single chunk
		{Name: "c.bin", Size: 64 * chunk},     // several bitmap words
		{Name: "empty", Size: 0},
	}
	for seed := int64(0); seed < 6; seed++ {
		for _, sums := range []bool{true, false} {
			t.Run(fmt.Sprintf("seed=%d/sums=%v", seed, sums), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				live := NewLedger("prop", chunk, m, sums)

				// The journaled replica mirrors what lands on a store:
				// a snapshot plus the records appended since.
				snapshot := live.EncodeV2()
				journal := live.JournalHeader()

				reloadAll := func(step int) {
					t.Helper()
					// v1 document.
					v1, err := live.Encode()
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					got1, err := DecodeLedger(v1)
					if err != nil {
						t.Fatalf("step %d: v1 decode: %v", step, err)
					}
					assertLedgersEqual(t, live, got1)
					// v2 snapshot. EncodeV2 rotates the generation, so
					// re-pair the journal header with the *persisted*
					// snapshot, not this probe — decode the probe only.
					got2, err := DecodeLedger(live.EncodeV2())
					if err != nil {
						t.Fatalf("step %d: v2 decode: %v", step, err)
					}
					assertLedgersEqual(t, live, got2)
					// v2 snapshot + journal replay.
					got3, err := DecodeLedger(snapshot)
					if err != nil {
						t.Fatalf("step %d: snapshot decode: %v", step, err)
					}
					got3.ReplayJournal(journal)
					got3.AppendSince() // replay re-records; discard like compaction
					assertLedgersEqual(t, live, got3)
				}

				for step := 0; step < 400; step++ {
					fileID := uint32(rng.Intn(len(m)))
					f := m[fileID]
					nChunks := int((f.Size + chunk - 1) / chunk)
					switch op := rng.Intn(10); {
					case op < 6: // commit a random chunk
						if nChunks == 0 {
							continue
						}
						idx := rng.Intn(nChunks)
						off := int64(idx) * chunk
						clen := min(int64(chunk), f.Size-off)
						live.Commit(fileID, off, int(clen), rng.Uint32())
					case op < 8: // invalidate a random range
						if nChunks == 0 {
							continue
						}
						lo := rng.Intn(nChunks)
						span := 1 + rng.Intn(4)
						live.Invalidate(fileID, int64(lo)*chunk, int64(span)*chunk)
					case op < 9:
						live.InvalidateFile(fileID)
					default: // a bogus commit the ledger must reject untracked
						live.Commit(fileID, 13, chunk, 1)
						live.Commit(uint32(len(m)+3), 0, chunk, 1)
					}

					// Tick: drain the delta into the journal (the
					// persister's steady-state path).
					if recs := live.AppendSince(); recs != nil {
						journal = append(journal, recs...)
					}
					if rng.Intn(23) == 0 { // compaction
						snapshot = live.EncodeV2()
						journal = live.JournalHeader()
					}
					if rng.Intn(9) == 0 {
						reloadAll(step)
					}
				}
				reloadAll(400)

				// And the wire round trip (what a resume advertises)
				// must agree with the final state on committed ranges.
				view := NewLedger("prop", chunk, m, false)
				view.ApplyWire(live.WireStates())
				if view.CommittedBytes() != live.CommittedBytes() {
					t.Fatalf("wire view committed %d want %d", view.CommittedBytes(), live.CommittedBytes())
				}
			})
		}
	}
}
