package transfer

import (
	"errors"
	"testing"

	"automdt/internal/fsim"
	"automdt/internal/workload"
)

// flakyLedgerStore wraps a SyntheticStore and fails a configurable
// number of journal appends and snapshot saves — an ENOSPC-shaped
// outage that tears the journal and then clears up.
type flakyLedgerStore struct {
	*fsim.SyntheticStore
	failAppends int
	failSaves   int
	failResets  int
}

func (f *flakyLedgerStore) ResetJournal(session string) error {
	if f.failResets > 0 {
		f.failResets--
		return errors.New("flaky: reset failed")
	}
	return f.SyntheticStore.ResetJournal(session)
}

func (f *flakyLedgerStore) AppendLedger(session string, data []byte) error {
	if f.failAppends > 0 {
		f.failAppends--
		// Half the delta lands before the failure: a genuinely torn
		// journal, not a clean no-op.
		f.SyntheticStore.AppendLedger(session, data[:len(data)/2])
		return errors.New("flaky: append failed")
	}
	return f.SyntheticStore.AppendLedger(session, data)
}

func (f *flakyLedgerStore) SaveLedger(session string, data []byte) error {
	if f.failSaves > 0 {
		f.failSaves--
		return errors.New("flaky: save failed")
	}
	return f.SyntheticStore.SaveLedger(session, data)
}

// A store outage in the middle of journaled persistence must not lose
// acknowledged state once the store recovers: the delta drained during
// the failed append is carried, appends never resume past the torn
// record, and the first successful compaction makes the full ledger
// durable again.
func TestPersisterRecoversFromStoreOutage(t *testing.T) {
	const session = "flaky-outage"
	m := workload.Manifest{{Name: "f.bin", Size: 1 << 20}} // 16 chunks at 64 KiB
	store := &flakyLedgerStore{SyntheticStore: fsim.NewSyntheticStore()}
	l := NewLedger(session, 64<<10, m, true)
	p := newLedgerPersister(l, store, session, true, 1<<20)
	p.compact() // session start: empty snapshot

	commit := func(idx int) {
		if !l.Commit(0, int64(idx)*64<<10, 64<<10, uint32(idx)) {
			t.Fatalf("commit %d rejected", idx)
		}
	}
	commit(0)
	commit(1)
	p.tick() // healthy append

	// Outage: the next tick's append tears the journal, and the
	// recovery compaction fails too.
	store.failAppends = 1
	store.failSaves = 1
	commit(2)
	commit(3)
	p.tick()

	// Store still down for one more compaction attempt: ticks must keep
	// retrying compaction (never appending past the tear) without
	// dropping the carried delta.
	store.failSaves = 1
	commit(4)
	p.tick()

	// Store recovers; the next tick's compaction lands everything.
	commit(5)
	p.tick()

	got, err := LoadSessionLedger(store, session)
	if err != nil {
		t.Fatal(err)
	}
	if got.CommittedBytes() != l.CommittedBytes() {
		t.Fatalf("recovered state lost commits: %d want %d (outage swallowed the carried delta)",
			got.CommittedBytes(), l.CommittedBytes())
	}
	for idx := 0; idx < 6; idx++ {
		if !got.Done(0, int64(idx)*64<<10) {
			t.Fatalf("chunk %d lost across the outage", idx)
		}
	}
}

// A failed journal reset leaves the file opening with a dead
// generation, where replay ignores everything: the persister must keep
// compacting — never appending acknowledged records behind the dead
// header — until a reset lands.
func TestPersisterTreatsFailedResetAsTorn(t *testing.T) {
	const session = "flaky-reset"
	m := workload.Manifest{{Name: "f.bin", Size: 1 << 20}}
	store := &flakyLedgerStore{SyntheticStore: fsim.NewSyntheticStore()}
	l := NewLedger(session, 64<<10, m, true)

	// A stale journal from a previous generation is already on disk.
	store.AppendLedger(session, append(l.JournalHeader(), 0xFF, 0xFF))

	p := newLedgerPersister(l, store, session, true, 1<<20)
	store.failResets = 1
	p.compact() // snapshot lands, reset fails: journal head is now dead

	// Each commit must stay recoverable after every tick, even while
	// the only working path is compaction.
	for idx := 0; idx < 3; idx++ {
		if !l.Commit(0, int64(idx)*64<<10, 64<<10, uint32(idx)) {
			t.Fatalf("commit %d rejected", idx)
		}
		p.tick()
		got, err := LoadSessionLedger(store, session)
		if err != nil {
			t.Fatal(err)
		}
		if got.CommittedBytes() != l.CommittedBytes() {
			t.Fatalf("after commit %d: recoverable state %d want %d (records appended behind a dead journal header)",
				idx, got.CommittedBytes(), l.CommittedBytes())
		}
	}
}

// When the opening compaction's snapshot save fails, there is no
// on-disk header pairing a journal to the (stale) on-disk snapshot:
// ticks must retry compaction instead of appending records that replay
// could never reach.
func TestPersisterRetriesFailedOpeningCompaction(t *testing.T) {
	const session = "flaky-open"
	m := workload.Manifest{{Name: "f.bin", Size: 1 << 20}}
	store := &flakyLedgerStore{SyntheticStore: fsim.NewSyntheticStore()}

	// A previous process left a fully compacted session: snapshot on
	// disk, journal reset.
	prev := NewLedger(session, 64<<10, m, true)
	prev.Commit(0, 0, 64<<10, 0xA)
	store.SaveLedger(session, prev.EncodeV2())

	l, err := LoadSessionLedger(store, session)
	if err != nil {
		t.Fatal(err)
	}
	p := newLedgerPersister(l, store, session, true, 1<<20)
	store.failSaves = 1
	p.compact() // opening compaction fails: disk still holds the old generation

	l.Commit(0, 64<<10, 64<<10, 0xB)
	p.tick() // must retry the snapshot, not append an unreachable record
	got, err := LoadSessionLedger(store, session)
	if err != nil {
		t.Fatal(err)
	}
	if got.CommittedBytes() != l.CommittedBytes() {
		t.Fatalf("recoverable state %d want %d (records appended with no reachable header)",
			got.CommittedBytes(), l.CommittedBytes())
	}
}

// After a resume replays the journal, the opening compaction must fold
// the replayed ops into the snapshot and NOT re-journal them: the first
// post-resume tick appends only genuinely new work.
func TestPersisterDoesNotRejournalReplayedOps(t *testing.T) {
	const session = "replay-no-rejournal"
	m := workload.Manifest{{Name: "f.bin", Size: 1 << 20}}
	store := fsim.NewSyntheticStore()

	// A previous "process" left a snapshot + journal behind.
	prev := NewLedger(session, 64<<10, m, true)
	store.SaveLedger(session, prev.EncodeV2())
	header := prev.JournalHeader()
	for idx := 0; idx < 8; idx++ {
		prev.Commit(0, int64(idx)*64<<10, 64<<10, uint32(idx))
	}
	store.AppendLedger(session, append(header, prev.AppendSince()...))

	// Resume: load + replay, then the persister's opening compaction.
	l, err := LoadSessionLedger(store, session)
	if err != nil {
		t.Fatal(err)
	}
	p := newLedgerPersister(l, store, session, true, 1<<20)
	p.compact()
	if j, _ := store.LoadJournal(session); len(j) != 0 {
		t.Fatalf("journal not reset by the opening compaction: %d bytes", len(j))
	}

	// First post-resume tick: one new commit → the journal must hold
	// the header plus exactly one record, not the 8 replayed ones.
	l.Commit(0, 8*64<<10, 64<<10, 99)
	p.tick()
	j, _ := store.LoadJournal(session)
	one := len(appendJournalRecord(nil, ledgerOp{file: 0, lo: 8, sum: 99, commit: true}))
	if want := journalHeaderLen + one; len(j) != want {
		t.Fatalf("post-resume journal is %d bytes, want %d (replayed ops re-journaled)", len(j), want)
	}
}
