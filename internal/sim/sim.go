// Package sim implements the lightweight I/O–network dynamics simulator
// of AutoMDT (Algorithm 1 of the paper). It emulates one second of
// modular transfer activity per Step call using a priority queue of
// (time, threadType) tasks instead of real threads, tracking the
// application-level staging buffers at the sender and receiver.
//
// The simulator is initialized with per-thread throughputs (TPT), aggregate
// bandwidths, and buffer capacities measured during the exploration and
// logging phase (internal/probe), and is what makes offline PPO training
// possible: it replicates the buffer dynamics of Figure 1 — reads stall
// when the sender buffer fills, network transfers need sender data and
// receiver space, writes need receiver data — so the agent can learn the
// coupled dynamics without touching a production network.
//
// Units: data volumes are megabits (Mb) and rates are megabits per second
// (Mbps), matching the paper's reporting.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Stage identifies one of the three pipeline operations.
type Stage int

// The three pipeline stages of a modular transfer.
const (
	Read Stage = iota
	Network
	Write
)

// String returns the lowercase stage name.
func (s Stage) String() string {
	switch s {
	case Read:
		return "read"
	case Network:
		return "network"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Config describes the emulated end-to-end path.
type Config struct {
	// TPT holds the per-thread throughput of each stage in Mbps
	// (the maximum rate a single thread achieves).
	TPT [3]float64
	// Bandwidth holds the aggregate capacity of each stage in Mbps; a
	// stage's total rate is min(n·TPT, Bandwidth). Zero means unlimited.
	Bandwidth [3]float64
	// ConnMbps is the per-connection ceiling of the network stage in
	// Mbps: with n_c data connections the aggregate network rate is
	// additionally capped at n_c·ConnMbps regardless of how many streams
	// are multiplexed over each connection — the single-socket ceiling
	// that striping exists to lift. Zero means uncapped (legacy
	// single-connection dynamics where only Bandwidth binds).
	ConnMbps float64
	// SenderBufCap and ReceiverBufCap are staging buffer capacities
	// in Mb (the tmpfs staging directories of the DTNs).
	SenderBufCap   float64
	ReceiverBufCap float64
	// ChunkMb is the volume moved by one task execution. Defaults to 8 Mb
	// (1 MB) if zero.
	ChunkMb float64
	// StepDuration is the simulated wall time per Step in seconds.
	// Defaults to 1.
	StepDuration float64
	// RetryDelay is the ϵ re-queue delay for blocked tasks in seconds.
	// Defaults to 2 ms.
	RetryDelay float64
	// Jitter, if positive, perturbs each task's effective rate uniformly
	// by ±Jitter fraction, using the Rand source. This roughens the
	// simulator during training so the policy does not overfit to exact
	// dynamics. Typical value: 0.05.
	Jitter float64
	// Rand is the randomness source for jitter. May be nil when Jitter
	// is zero.
	Rand *rand.Rand
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ChunkMb <= 0 {
		out.ChunkMb = 8
	}
	if out.StepDuration <= 0 {
		out.StepDuration = 1
	}
	if out.RetryDelay <= 0 {
		out.RetryDelay = 0.002
	}
	return out
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	for s := Read; s <= Write; s++ {
		if c.TPT[s] <= 0 {
			return fmt.Errorf("sim: TPT[%s] must be positive, got %v", s, c.TPT[s])
		}
		if c.Bandwidth[s] < 0 {
			return fmt.Errorf("sim: Bandwidth[%s] must be non-negative, got %v", s, c.Bandwidth[s])
		}
	}
	if c.SenderBufCap <= 0 || c.ReceiverBufCap <= 0 {
		return fmt.Errorf("sim: buffer capacities must be positive (sender %v, receiver %v)",
			c.SenderBufCap, c.ReceiverBufCap)
	}
	return nil
}

// Result reports one simulated step.
type Result struct {
	// Throughput holds the achieved per-stage rates in Mbps, normalized
	// by the step duration.
	Throughput [3]float64
	// SenderBufUsed and ReceiverBufUsed are staging occupancies in Mb at
	// the end of the step.
	SenderBufUsed   float64
	ReceiverBufUsed float64
	// SenderBufFree and ReceiverBufFree are the corresponding free space
	// amounts — the key state signal of §IV-D-1.
	SenderBufFree   float64
	ReceiverBufFree float64
}

// Simulator is the event-driven dynamics model. It is not safe for
// concurrent use; each training goroutine should own its own instance.
type Simulator struct {
	cfg Config

	senderBuf   float64
	receiverBuf float64

	q taskQueue
}

// New creates a simulator from cfg. It panics if cfg is invalid; call
// cfg.Validate first when handling untrusted input.
func New(cfg Config) *Simulator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Simulator{cfg: cfg.withDefaults()}
}

// Config returns the simulator's (defaulted) configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Reset empties both staging buffers.
func (s *Simulator) Reset() {
	s.senderBuf = 0
	s.receiverBuf = 0
}

// SetBuffers overrides the staging occupancies, clamping to capacity.
// Used to randomize initial conditions between training episodes.
func (s *Simulator) SetBuffers(sender, receiver float64) {
	s.senderBuf = math.Max(0, math.Min(sender, s.cfg.SenderBufCap))
	s.receiverBuf = math.Max(0, math.Min(receiver, s.cfg.ReceiverBufCap))
}

// Buffers returns the current sender and receiver staging occupancies.
func (s *Simulator) Buffers() (sender, receiver float64) {
	return s.senderBuf, s.receiverBuf
}

// SetBandwidth changes a stage's aggregate capacity at runtime, emulating
// background traffic or a sysadmin re-throttle mid-transfer. Zero means
// unlimited.
func (s *Simulator) SetBandwidth(st Stage, mbps float64) {
	if mbps < 0 {
		mbps = 0
	}
	s.cfg.Bandwidth[st] = mbps
}

// SetConnMbps changes the per-connection network ceiling at runtime.
// Zero disables the cap.
func (s *Simulator) SetConnMbps(mbps float64) {
	if mbps < 0 {
		mbps = 0
	}
	s.cfg.ConnMbps = mbps
}

// SetTPT changes a stage's per-thread throughput at runtime (e.g. I/O
// contention from a co-located job). The value must be positive.
func (s *Simulator) SetTPT(st Stage, mbps float64) {
	if mbps > 0 {
		s.cfg.TPT[st] = mbps
	}
}

// task is one scheduled thread work item.
type task struct {
	t     float64
	stage Stage
	seq   int
}

// taskQueue is a min-heap ordered by time, then sequence for determinism.
type taskQueue []task

func (q taskQueue) Len() int { return len(q) }
func (q taskQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q taskQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *taskQueue) Push(x any)   { *q = append(*q, x.(task)) }
func (q *taskQueue) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// effectiveRate returns a single thread's rate for the stage given n
// concurrent threads: near-linear scaling capped by the aggregate
// bandwidth share and, for the network stage, by the striped
// per-connection ceiling (conns·ConnMbps split across the n streams).
func (s *Simulator) effectiveRate(st Stage, n, conns int) float64 {
	r := s.cfg.TPT[st]
	if bw := s.cfg.Bandwidth[st]; bw > 0 && n > 0 {
		r = math.Min(r, bw/float64(n))
	}
	if st == Network && s.cfg.ConnMbps > 0 && n > 0 && conns > 0 {
		r = math.Min(r, s.cfg.ConnMbps*float64(conns)/float64(n))
	}
	if s.cfg.Jitter > 0 && s.cfg.Rand != nil {
		r *= 1 + s.cfg.Jitter*(2*s.cfg.Rand.Float64()-1)
	}
	return r
}

// Step simulates cfg.StepDuration seconds of transfer with the given
// concurrency tuple ⟨n_r, n_c, n_s, n_w⟩ (GET_UTILITY of Algorithm 1,
// minus the reward computation, which belongs to the environment): nr
// read threads, nc data connections carrying ns streams each (so the
// network stage runs nc·ns workers whose aggregate rate is additionally
// capped at nc·ConnMbps), and nw write threads. Counts are clamped to
// be non-negative. Buffer state persists across steps.
func (s *Simulator) Step(nr, nc, ns, nw int) Result {
	cfg := &s.cfg
	tEnd := cfg.StepDuration
	var moved [3]float64

	nc = max(0, nc)
	nn := nc * max(0, ns)

	s.q = s.q[:0]
	seq := 0
	schedule := func(st Stage, count int) {
		for i := 0; i < count; i++ {
			s.q = append(s.q, task{t: 0, stage: st, seq: seq})
			seq++
		}
	}
	schedule(Read, max(0, nr))
	schedule(Network, nn)
	schedule(Write, max(0, nw))
	heap.Init(&s.q)

	counts := [3]int{max(0, nr), nn, max(0, nw)}
	const tiny = 1e-9

	for s.q.Len() > 0 {
		tk := heap.Pop(&s.q).(task)
		t := tk.t

		// TASK(t, threadType): attempt one chunk move.
		var avail float64
		switch tk.stage {
		case Read:
			avail = cfg.SenderBufCap - s.senderBuf
		case Network:
			avail = math.Min(s.senderBuf, cfg.ReceiverBufCap-s.receiverBuf)
		case Write:
			avail = s.receiverBuf
		}
		var tNext float64
		if avail <= tiny {
			// Blocked: retry after ϵ.
			tNext = t + cfg.RetryDelay
		} else {
			chunk := math.Min(cfg.ChunkMb, avail)
			rate := s.effectiveRate(tk.stage, counts[tk.stage], nc)
			dTask := chunk / rate
			if t+dTask > tEnd {
				// Partial completion at the step boundary.
				frac := (tEnd - t) / dTask
				chunk *= frac
				dTask = tEnd - t
			}
			moved[tk.stage] += chunk
			switch tk.stage {
			case Read:
				s.senderBuf = math.Min(cfg.SenderBufCap, s.senderBuf+chunk)
			case Network:
				s.senderBuf = math.Max(0, s.senderBuf-chunk)
				s.receiverBuf = math.Min(cfg.ReceiverBufCap, s.receiverBuf+chunk)
			case Write:
				s.receiverBuf = math.Max(0, s.receiverBuf-chunk)
			}
			tNext = t + dTask + tiny
		}
		if tNext < tEnd {
			heap.Push(&s.q, task{t: tNext, stage: tk.stage, seq: seq})
			seq++
		}
	}

	res := Result{
		SenderBufUsed:   s.senderBuf,
		ReceiverBufUsed: s.receiverBuf,
		SenderBufFree:   cfg.SenderBufCap - s.senderBuf,
		ReceiverBufFree: cfg.ReceiverBufCap - s.receiverBuf,
	}
	for st := Read; st <= Write; st++ {
		res.Throughput[st] = moved[st] / tEnd
	}
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
