package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// baseConfig mirrors the paper's read-bottleneck scenario (§V-B-1):
// per-stream caps 80/160/200 Mbps on a 1 Gbps link.
func baseConfig() Config {
	return Config{
		TPT:            [3]float64{80, 160, 200},
		Bandwidth:      [3]float64{1000, 1000, 1000},
		SenderBufCap:   500,
		ReceiverBufCap: 500,
		ChunkMb:        8,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := baseConfig()
	bad.TPT[Network] = 0
	if bad.Validate() == nil {
		t.Fatal("zero TPT should fail validation")
	}
	bad = baseConfig()
	bad.SenderBufCap = 0
	if bad.Validate() == nil {
		t.Fatal("zero buffer capacity should fail validation")
	}
	bad = baseConfig()
	bad.Bandwidth[Read] = -1
	if bad.Validate() == nil {
		t.Fatal("negative bandwidth should fail validation")
	}
}

func TestStageString(t *testing.T) {
	if Read.String() != "read" || Network.String() != "network" || Write.String() != "write" {
		t.Fatal("stage names wrong")
	}
	if Stage(9).String() != "stage(9)" {
		t.Fatal("unknown stage formatting")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestSingleReadThreadApproachesTPT(t *testing.T) {
	s := New(baseConfig())
	r := s.Step(1, 1, 0, 0)
	// One read thread at 80 Mbps into an empty 500 Mb buffer: ~80 Mb moved.
	if r.Throughput[Read] < 75 || r.Throughput[Read] > 85 {
		t.Fatalf("read throughput %v want ≈80", r.Throughput[Read])
	}
	if r.Throughput[Network] != 0 || r.Throughput[Write] != 0 {
		t.Fatalf("idle stages moved data: %v", r.Throughput)
	}
	if math.Abs(r.SenderBufUsed-r.Throughput[Read]) > 1e-6 {
		t.Fatalf("buffer occupancy %v != moved %v", r.SenderBufUsed, r.Throughput[Read])
	}
}

func TestNearLinearScalingUpToBandwidth(t *testing.T) {
	cfg := baseConfig()
	cfg.SenderBufCap = 1e9 // never fills
	s := New(cfg)
	r4 := s.Step(4, 1, 0, 0)
	if r4.Throughput[Read] < 300 || r4.Throughput[Read] > 330 {
		t.Fatalf("4 threads: %v want ≈320", r4.Throughput[Read])
	}
	s.Reset()
	// 20 threads × 80 Mbps = 1600 > 1000 Mbps cap: aggregate should cap.
	r20 := s.Step(20, 1, 0, 0)
	if r20.Throughput[Read] < 950 || r20.Throughput[Read] > 1050 {
		t.Fatalf("20 threads: %v want ≈1000 (bandwidth cap)", r20.Throughput[Read])
	}
}

func TestReadsBlockWhenSenderBufferFull(t *testing.T) {
	cfg := baseConfig()
	cfg.SenderBufCap = 40 // 5 chunks
	s := New(cfg)
	r := s.Step(10, 1, 0, 0)
	if r.SenderBufUsed != 40 {
		t.Fatalf("sender buffer should be full: %v", r.SenderBufUsed)
	}
	if r.Throughput[Read] > 41 {
		t.Fatalf("reads should stall at capacity, moved %v Mb", r.Throughput[Read])
	}
	// A second step moves nothing: buffer still full.
	r2 := s.Step(10, 1, 0, 0)
	if r2.Throughput[Read] > 1e-9 {
		t.Fatalf("full buffer still admitted %v Mb", r2.Throughput[Read])
	}
}

func TestNetworkNeedsSenderDataAndReceiverSpace(t *testing.T) {
	s := New(baseConfig())
	// Empty sender buffer: network moves nothing.
	r := s.Step(0, 1, 5, 0)
	if r.Throughput[Network] != 0 {
		t.Fatalf("network moved %v from empty sender buffer", r.Throughput[Network])
	}
	// Fill sender buffer, then network can move.
	s.SetBuffers(400, 0)
	r = s.Step(0, 1, 2, 0)
	if r.Throughput[Network] < 300 {
		t.Fatalf("network throughput %v want ≈320", r.Throughput[Network])
	}
	// Full receiver buffer: network blocked.
	s.SetBuffers(400, 500)
	r = s.Step(0, 1, 2, 0)
	if r.Throughput[Network] > 1e-9 {
		t.Fatalf("network moved %v into full receiver buffer", r.Throughput[Network])
	}
}

func TestWriteDrainsReceiverBuffer(t *testing.T) {
	s := New(baseConfig())
	s.SetBuffers(0, 300)
	r := s.Step(0, 1, 0, 1)
	if r.Throughput[Write] < 190 || r.Throughput[Write] > 210 {
		t.Fatalf("write throughput %v want ≈200", r.Throughput[Write])
	}
	if math.Abs(r.ReceiverBufUsed-(300-r.Throughput[Write])) > 1e-6 {
		t.Fatalf("receiver occupancy inconsistent: %v", r.ReceiverBufUsed)
	}
}

func TestPipelineSteadyStateMatchesBottleneck(t *testing.T) {
	// Optimal counts for the read-bottleneck scenario: 13/7/5 (paper §V-B-1)
	// → all stages ≈1 Gbps... actually 13×80=1040→cap 1000, 7×160=1120→1000,
	// 5×200=1000. End-to-end should approach 1000 Mbps after warm-up.
	s := New(baseConfig())
	var last Result
	for i := 0; i < 12; i++ {
		last = s.Step(13, 1, 7, 5)
	}
	if last.Throughput[Write] < 850 {
		t.Fatalf("steady-state write throughput %v want ≳900", last.Throughput[Write])
	}
	if last.Throughput[Network] < 850 {
		t.Fatalf("steady-state network throughput %v", last.Throughput[Network])
	}
}

func TestBottleneckDeterminesEndToEnd(t *testing.T) {
	// Network is the bottleneck: caps 205/75/195 with optimal 5/14/5
	// (paper's network-bottleneck scenario). With fewer network threads
	// the write stage can only see what the network delivers.
	cfg := Config{
		TPT:            [3]float64{205, 75, 195},
		Bandwidth:      [3]float64{1000, 1000, 1000},
		SenderBufCap:   500,
		ReceiverBufCap: 500,
		ChunkMb:        8,
	}
	s := New(cfg)
	var last Result
	for i := 0; i < 12; i++ {
		last = s.Step(5, 1, 4, 5) // under-provisioned network: 4×75=300
	}
	if last.Throughput[Write] > 360 {
		t.Fatalf("write %v should be limited by network ≈300", last.Throughput[Write])
	}
	s.Reset()
	for i := 0; i < 12; i++ {
		last = s.Step(5, 1, 14, 5) // 14×75=1050 → cap 1000
	}
	if last.Throughput[Write] < 800 {
		t.Fatalf("write %v should approach 1000 with enough network threads", last.Throughput[Write])
	}
}

func TestZeroThreadsMoveNothing(t *testing.T) {
	s := New(baseConfig())
	r := s.Step(0, 1, 0, 0)
	if r.Throughput[Read] != 0 || r.Throughput[Network] != 0 || r.Throughput[Write] != 0 {
		t.Fatalf("no threads but throughput %v", r.Throughput)
	}
	// Negative counts are clamped to zero.
	r = s.Step(-3, 1, -1, -2)
	if r.Throughput[Read] != 0 {
		t.Fatal("negative thread counts should clamp to zero")
	}
}

func TestBufferStatePersistsAcrossSteps(t *testing.T) {
	s := New(baseConfig())
	s.Step(5, 1, 0, 0)
	sender1, _ := s.Buffers()
	s.Step(0, 1, 0, 0)
	sender2, _ := s.Buffers()
	if sender1 != sender2 {
		t.Fatalf("buffer changed with no threads: %v → %v", sender1, sender2)
	}
	s.Reset()
	sr, rr := s.Buffers()
	if sr != 0 || rr != 0 {
		t.Fatal("Reset did not clear buffers")
	}
}

func TestSetBuffersClamps(t *testing.T) {
	s := New(baseConfig())
	s.SetBuffers(1e9, -5)
	sr, rr := s.Buffers()
	if sr != 500 || rr != 0 {
		t.Fatalf("SetBuffers clamp broken: %v %v", sr, rr)
	}
}

func TestDeterminismWithoutJitter(t *testing.T) {
	a, b := New(baseConfig()), New(baseConfig())
	for i := 0; i < 5; i++ {
		ra := a.Step(7, 1, 5, 3)
		rb := b.Step(7, 1, 5, 3)
		if ra != rb {
			t.Fatalf("step %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestJitterPerturbsButStaysClose(t *testing.T) {
	cfg := baseConfig()
	cfg.Jitter = 0.05
	cfg.Rand = rand.New(rand.NewSource(42))
	s := New(cfg)
	r := s.Step(1, 1, 0, 0)
	if r.Throughput[Read] < 70 || r.Throughput[Read] > 90 {
		t.Fatalf("jittered throughput %v wildly off 80", r.Throughput[Read])
	}
}

// Conservation property: across any step sequence, data read ≥ data
// transferred ≥ data written, and buffers account exactly for the
// differences.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(baseConfig())
		var read, net, wrote float64
		for i := 0; i < 6; i++ {
			r := s.Step(rng.Intn(15), 1+rng.Intn(4), rng.Intn(8), rng.Intn(15))
			read += r.Throughput[Read]
			net += r.Throughput[Network]
			wrote += r.Throughput[Write]
			sender, receiver := s.Buffers()
			if sender < -1e-6 || receiver < -1e-6 ||
				sender > 500+1e-6 || receiver > 500+1e-6 {
				return false
			}
			if math.Abs((read-net)-sender) > 1e-4 {
				return false
			}
			if math.Abs((net-wrote)-receiver) > 1e-4 {
				return false
			}
		}
		return read+1e-9 >= net && net+1e-9 >= wrote
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Monotonicity property: steady-state end-to-end throughput with counts
// (n,n,n) is non-decreasing in n up to the bandwidth cap region.
func TestMonotoneInConcurrency(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 8; n++ {
		s := New(baseConfig())
		var last Result
		for i := 0; i < 10; i++ {
			last = s.Step(n, 1, n, n)
		}
		if last.Throughput[Write] < prev-20 { // allow small event noise
			t.Fatalf("throughput dropped from %v to %v at n=%d", prev, last.Throughput[Write], n)
		}
		prev = last.Throughput[Write]
	}
}

func TestRuntimeMutators(t *testing.T) {
	cfg := baseConfig()
	cfg.SenderBufCap = 1e9
	s := New(cfg)
	r := s.Step(4, 1, 0, 0)
	if r.Throughput[Read] < 300 {
		t.Fatalf("baseline read %v", r.Throughput[Read])
	}
	// Halve the read per-thread rate: same threads, half the throughput.
	s.SetTPT(Read, 40)
	r = s.Step(4, 1, 0, 0)
	if r.Throughput[Read] > 200 {
		t.Fatalf("SetTPT not applied: %v", r.Throughput[Read])
	}
	// Cap the aggregate read bandwidth below the thread sum.
	s.SetTPT(Read, 80)
	s.SetBandwidth(Read, 100)
	r = s.Step(4, 1, 0, 0)
	if r.Throughput[Read] > 130 {
		t.Fatalf("SetBandwidth not applied: %v", r.Throughput[Read])
	}
	// Invalid mutations are ignored / clamped.
	s.SetTPT(Read, -5)
	s.SetBandwidth(Read, -1)
	if s.Config().TPT[Read] != 80 || s.Config().Bandwidth[Read] != 0 {
		t.Fatalf("invalid mutation handling: %+v", s.Config())
	}
}

// TestConnCeilingBindsNetwork exercises the v3 striping knob: with a
// 100 Mbps per-connection ceiling, network throughput is bounded by
// ConnMbps·conns no matter how many streams share each connection.
func TestConnCeilingBindsNetwork(t *testing.T) {
	cfg := Config{
		TPT:            [3]float64{200, 150, 200},
		Bandwidth:      [3]float64{1000, 1000, 1000},
		ConnMbps:       100,
		SenderBufCap:   500,
		ReceiverBufCap: 500,
		ChunkMb:        8,
	}
	s := New(cfg)
	// One connection, ten streams: 10×150=1500 per-stream, 1000 link cap,
	// but the single socket caps at 100 Mbps.
	s.SetBuffers(400, 0)
	r := s.Step(0, 1, 10, 0)
	if r.Throughput[Network] > 110 {
		t.Fatalf("1 conn × 10 streams moved %v, want ≤ ~100 (conn ceiling)", r.Throughput[Network])
	}
	// Ten connections, one stream each: the ceiling lifts to 1000.
	s.Reset()
	s.SetBuffers(500, 0)
	r = s.Step(0, 10, 1, 0)
	if r.Throughput[Network] < 400 {
		t.Fatalf("10 conns × 1 stream moved only %v", r.Throughput[Network])
	}
}

// TestConnCeilingZeroMeansUncapped checks the default: no ConnMbps, and
// conns×streams is just the total network concurrency.
func TestConnCeilingZeroMeansUncapped(t *testing.T) {
	a, b := New(baseConfig()), New(baseConfig())
	a.SetBuffers(400, 0)
	b.SetBuffers(400, 0)
	ra := a.Step(0, 1, 6, 0)
	rb := b.Step(0, 2, 3, 0)
	if math.Abs(ra.Throughput[Network]-rb.Throughput[Network]) > 1e-9 {
		t.Fatalf("uncapped: 1×6 (%v) should equal 2×3 (%v)", ra.Throughput[Network], rb.Throughput[Network])
	}
}

func BenchmarkStep(b *testing.B) {
	s := New(baseConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Step(13, 1, 7, 5)
	}
}
