package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"automdt/internal/tensor"
)

// ParamList groups arbitrary parameter tensors so they can be saved,
// loaded, and copied with the Module-based helpers. Forward is the
// identity; ParamList exists purely for parameter management (e.g. a PPO
// agent checkpointing its policy and value networks together).
type ParamList []*tensor.Tensor

// Forward implements Module as the identity.
func (p ParamList) Forward(x *tensor.Tensor) *tensor.Tensor { return x }

// Params implements Module.
func (p ParamList) Params() []*tensor.Tensor { return p }

// snapshot is the gob wire format for a parameter checkpoint.
type snapshot struct {
	Params [][]float64
}

// SaveParams writes the parameter data of m to w in gob format.
func SaveParams(w io.Writer, m Module) error {
	ps := m.Params()
	s := snapshot{Params: make([][]float64, len(ps))}
	for i, p := range ps {
		s.Params[i] = append([]float64(nil), p.Data...)
	}
	return gob.NewEncoder(w).Encode(&s)
}

// LoadParams reads a checkpoint written by SaveParams into m's
// parameters. The module must have the same architecture (same parameter
// count and sizes) as the one that was saved.
func LoadParams(r io.Reader, m Module) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	ps := m.Params()
	if len(s.Params) != len(ps) {
		return fmt.Errorf("nn: checkpoint has %d parameter tensors, module has %d", len(s.Params), len(ps))
	}
	for i, p := range ps {
		if len(s.Params[i]) != p.Len() {
			return fmt.Errorf("nn: parameter %d size mismatch: checkpoint %d, module %d", i, len(s.Params[i]), p.Len())
		}
		copy(p.Data, s.Params[i])
	}
	return nil
}

// SaveParamsFile writes a checkpoint to the named file.
func SaveParamsFile(path string, m Module) error {
	var buf bytes.Buffer
	if err := SaveParams(&buf, m); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadParamsFile reads a checkpoint from the named file.
func LoadParamsFile(path string, m Module) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return LoadParams(bytes.NewReader(b), m)
}

// CopyParams copies parameter values from src to dst. Both modules must
// share the same architecture. Used to maintain the "old policy" π_θold
// in PPO.
func CopyParams(dst, src Module) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: module parameter count mismatch: %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if dp[i].Len() != sp[i].Len() {
			return fmt.Errorf("nn: parameter %d size mismatch: %d vs %d", i, dp[i].Len(), sp[i].Len())
		}
		copy(dp[i].Data, sp[i].Data)
	}
	return nil
}
