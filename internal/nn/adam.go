package nn

import (
	"math"

	"automdt/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba) over a fixed set of
// parameter tensors, as used by Algorithm 2 of the paper.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	MaxNorm float64 // if >0, global gradient-norm clipping threshold

	params []*tensor.Tensor
	m      [][]float64
	v      [][]float64
	t      int
}

// NewAdam creates an Adam optimizer with the standard moment decay rates
// (0.9, 0.999) and the given learning rate.
func NewAdam(params []*tensor.Tensor, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, p.Len())
		a.v[i] = make([]float64, p.Len())
	}
	return a
}

// ZeroGrad clears the gradients of all managed parameters.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// GradNorm returns the global L2 norm of all parameter gradients.
func (a *Adam) GradNorm() float64 {
	s := 0.0
	for _, p := range a.params {
		for _, g := range p.Grad {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// Step applies one Adam update using the gradients currently accumulated
// on the parameters. If MaxNorm is set, gradients are first rescaled so
// their global norm does not exceed it.
func (a *Adam) Step() {
	scale := 1.0
	if a.MaxNorm > 0 {
		if n := a.GradNorm(); n > a.MaxNorm {
			scale = a.MaxNorm / (n + 1e-12)
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j] * scale
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			p.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}
