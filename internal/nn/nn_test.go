package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"automdt/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(4, 3, rng)
	y := l.Forward(tensor.Zeros(5, 4))
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("got shape %v", y.Shape())
	}
	if len(l.Params()) != 2 {
		t.Fatalf("linear should expose 2 params")
	}
}

func TestLinearXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(64, 64, rng)
	limit := math.Sqrt(6.0 / 128.0)
	for _, w := range l.W.Data {
		if math.Abs(w) > limit {
			t.Fatalf("weight %v outside Xavier bound %v", w, limit)
		}
	}
	for _, b := range l.B.Data {
		if b != 0 {
			t.Fatal("bias should start at zero")
		}
	}
}

func TestResidualBlockPreservesShapeAndSkips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rb := NewResidualBlock(8, rng)
	x := tensor.Full(0.5, 2, 8)
	y := rb.Forward(x)
	if y.Rows() != 2 || y.Cols() != 8 {
		t.Fatalf("shape %v", y.Shape())
	}
	// Zero out both linear layers: output must equal input via the skip
	// (the second layer-norm of a zero vector is the norm bias, zero).
	for _, p := range append(rb.Fc1.Params(), rb.Fc2.Params()...) {
		for i := range p.Data {
			p.Data[i] = 0
		}
	}
	y = rb.Forward(x)
	for i := range y.Data {
		if math.Abs(y.Data[i]-x.Data[i]) > 1e-12 {
			t.Fatalf("skip connection broken: %v vs %v", y.Data[i], x.Data[i])
		}
	}
}

func TestTanhResidualBlockSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rb := NewTanhResidualBlock(6, rng)
	for _, p := range rb.Params() {
		for i := range p.Data {
			p.Data[i] = 0
		}
	}
	x := tensor.Full(0.25, 3, 6)
	y := rb.Forward(x)
	for i := range y.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("tanh residual skip broken")
		}
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSequential(NewLinear(3, 8, rng), Tanh{}, NewLinear(8, 2, rng))
	y := s.Forward(tensor.Zeros(4, 3))
	if y.Rows() != 4 || y.Cols() != 2 {
		t.Fatalf("shape %v", y.Shape())
	}
	if len(s.Params()) != 4 {
		t.Fatalf("want 4 params got %d", len(s.Params()))
	}
}

// Train a tiny residual MLP on a nonlinear regression task; Adam should
// drive the loss down by >90%.
func TestAdamConvergesOnRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewSequential(
		NewLinear(2, 16, rng), Tanh{},
		NewResidualBlock(16, rng),
		NewLinear(16, 1, rng),
	)
	const n = 64
	x := tensor.Zeros(n, 2)
	y := tensor.Zeros(n, 1)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, math.Sin(2*a)+0.5*b*b)
	}
	opt := NewAdam(net.Params(), 1e-2)
	loss := func() *tensor.Tensor {
		return tensor.Mean(tensor.Square(tensor.Sub(net.Forward(x), y)))
	}
	first := loss().Item()
	for i := 0; i < 300; i++ {
		opt.ZeroGrad()
		loss().Backward()
		opt.Step()
	}
	last := loss().Item()
	if last > first*0.1 {
		t.Fatalf("Adam failed to converge: first=%v last=%v", first, last)
	}
}

func TestAdamGradClipping(t *testing.T) {
	p := tensor.New([]float64{0}, 1).Param()
	opt := NewAdam([]*tensor.Tensor{p}, 0.1)
	opt.MaxNorm = 1
	p.Grad = []float64{100}
	if got := opt.GradNorm(); got != 100 {
		t.Fatalf("GradNorm=%v", got)
	}
	opt.Step()
	// With clipping, first Adam step magnitude is ~lr regardless of raw
	// gradient size; without clipping it is also ~lr (Adam normalizes),
	// so instead verify the moment buffers saw the clipped gradient.
	if math.Abs(opt.m[0][0]-0.1) > 1e-9 { // beta1=0.9 → m = 0.1*g_clipped = 0.1*1
		t.Fatalf("moment buffer %v suggests clipping not applied", opt.m[0][0])
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// With constant gradient g, the bias-corrected first Adam step is
	// exactly lr·g/(|g|+eps) ≈ lr·sign(g).
	p := tensor.New([]float64{1}, 1).Param()
	opt := NewAdam([]*tensor.Tensor{p}, 0.01)
	p.Grad = []float64{5}
	opt.Step()
	if math.Abs((1-p.Data[0])-0.01) > 1e-6 {
		t.Fatalf("first step moved %v want ≈0.01", 1-p.Data[0])
	}
}

func TestAdamSkipsNilGradients(t *testing.T) {
	a := tensor.New([]float64{1}, 1).Param()
	b := tensor.New([]float64{2}, 1).Param()
	opt := NewAdam([]*tensor.Tensor{a, b}, 0.1)
	a.Grad = []float64{1}
	// b has no gradient; Step must not touch it or panic.
	opt.Step()
	if b.Data[0] != 2 {
		t.Fatalf("parameter without gradient moved to %v", b.Data[0])
	}
	if a.Data[0] == 1 {
		t.Fatal("parameter with gradient did not move")
	}
}

func TestGaussianLogProbMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mean := tensor.FromRows([][]float64{{0.5, -1}, {2, 0}})
	std := tensor.New([]float64{0.7, 1.3}, 2)
	act := tensor.FromRows([][]float64{{0.1, -0.5}, {2.5, 0.2}})
	lp := GaussianLogProb(mean, std, act)
	for i := 0; i < 2; i++ {
		want := 0.0
		for j := 0; j < 2; j++ {
			m, s, a := mean.At(i, j), std.Data[j], act.At(i, j)
			want += -0.5*math.Pow((a-m)/s, 2) - math.Log(s) - 0.5*math.Log(2*math.Pi)
		}
		if math.Abs(lp.Data[i]-want) > 1e-12 {
			t.Fatalf("row %d logprob=%v want %v", i, lp.Data[i], want)
		}
	}
	_ = rng
}

func TestGaussianEntropyClosedForm(t *testing.T) {
	std := tensor.New([]float64{1, 2}, 2)
	got := GaussianEntropy(std).Item()
	want := 0.0
	for _, s := range []float64{1, 2} {
		want += math.Log(s) + 0.5*math.Log(2*math.Pi*math.E)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("entropy=%v want %v", got, want)
	}
}

func TestGaussianHeadSampleStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := NewGaussianHead(3, 2, math.Log(0.5), rng)
	feat := tensor.Zeros(1, 3)
	mean, std := h.MeanStd(feat)
	const n = 4000
	sum := make([]float64, 2)
	sumSq := make([]float64, 2)
	for i := 0; i < n; i++ {
		a := h.Sample(feat, rng)
		for j := range a {
			sum[j] += a[j]
			sumSq[j] += a[j] * a[j]
		}
	}
	for j := 0; j < 2; j++ {
		m := sum[j] / n
		v := sumSq[j]/n - m*m
		if math.Abs(m-mean.Data[j]) > 0.05 {
			t.Fatalf("sample mean %v far from %v", m, mean.Data[j])
		}
		if math.Abs(math.Sqrt(v)-std.Data[j]) > 0.05 {
			t.Fatalf("sample std %v far from %v", math.Sqrt(v), std.Data[j])
		}
	}
}

func TestLogStdClampRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := NewGaussianHead(2, 1, 10 /* absurdly large */, rng)
	_, std := h.MeanStd(tensor.Zeros(1, 2))
	if std.Data[0] > math.Exp(h.LogStdMax)+1e-9 {
		t.Fatalf("std %v exceeds clamp e^%v", std.Data[0], h.LogStdMax)
	}
}

func TestCategoricalHeadSamplesAllActions(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := NewCategoricalHead(2, 4, rng)
	feat := tensor.Zeros(1, 2)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[c.Sample(feat, rng)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("categorical sampling too degenerate: %v", seen)
	}
	for a := range seen {
		if a < 0 || a >= 4 {
			t.Fatalf("action %d out of range", a)
		}
	}
}

func TestCategoricalEntropyUniformIsLogN(t *testing.T) {
	lp := tensor.Full(math.Log(0.25), 2, 4)
	got := CategoricalEntropy(lp).Item()
	if math.Abs(got-math.Log(4)) > 1e-12 {
		t.Fatalf("entropy=%v want %v", got, math.Log(4))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := NewSequential(NewLinear(3, 5, rng), Tanh{}, NewLinear(5, 2, rng))
	dst := NewSequential(NewLinear(3, 5, rng), Tanh{}, NewLinear(5, 2, rng))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	x := tensor.Full(0.3, 1, 3)
	a, b := src.Forward(x), dst.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded model differs from saved model")
		}
	}
}

func TestLoadParamsArchMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := NewLinear(3, 5, rng)
	dst := NewLinear(3, 6, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst); err == nil {
		t.Fatal("expected error for architecture mismatch")
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := NewLinear(2, 2, rng)
	dst := NewLinear(2, 2, rng)
	if err := CopyParams(dst, src); err != nil {
		t.Fatal(err)
	}
	for i := range src.W.Data {
		if dst.W.Data[i] != src.W.Data[i] {
			t.Fatal("CopyParams did not copy weights")
		}
	}
	// Mutating src afterwards must not affect dst.
	src.W.Data[0] += 1
	if dst.W.Data[0] == src.W.Data[0] {
		t.Fatal("CopyParams aliases data")
	}
}

func TestGradientFlowsThroughWholeNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewSequential(
		NewLinear(4, 8, rng), Tanh{},
		NewResidualBlock(8, rng),
		NewTanhResidualBlock(8, rng),
		NewLinear(8, 1, rng),
	)
	x := tensor.Full(0.1, 2, 4)
	loss := tensor.Mean(tensor.Square(net.Forward(x)))
	loss.Backward()
	for i, p := range net.Params() {
		if p.Grad == nil {
			t.Fatalf("param %d got no gradient", i)
		}
	}
}
