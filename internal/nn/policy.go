package nn

import (
	"math"
	"math/rand"

	"automdt/internal/tensor"
)

// log(2π), used by Gaussian log-densities.
const log2Pi = 1.8378770664093453

// GaussianHead turns a feature vector into the mean of a diagonal
// Gaussian action distribution; the log standard deviation is a trainable
// state-independent parameter clamped to [LogStdMin, LogStdMax] as
// described in §IV-D-3 of the paper.
type GaussianHead struct {
	Mean      *Linear
	LogStd    *tensor.Tensor // (actionDim), trainable
	LogStdMin float64
	LogStdMax float64
}

// NewGaussianHead creates a Gaussian policy head mapping dim features to
// actionDim action means, with initial log-std init.
func NewGaussianHead(dim, actionDim int, initLogStd float64, rng *rand.Rand) *GaussianHead {
	return &GaussianHead{
		Mean:      NewLinear(dim, actionDim, rng),
		LogStd:    tensor.Full(initLogStd, actionDim).Param(),
		LogStdMin: -4,
		LogStdMax: 1,
	}
}

// Params returns the trainable parameters of the head.
func (g *GaussianHead) Params() []*tensor.Tensor {
	return append(g.Mean.Params(), g.LogStd)
}

// MeanStd returns the action mean (batch, actionDim) and the per-dimension
// standard deviation (actionDim) as autograd tensors.
func (g *GaussianHead) MeanStd(features *tensor.Tensor) (mean, std *tensor.Tensor) {
	return g.Mean.Forward(features), g.Std()
}

// Std returns the per-dimension standard deviation (actionDim), which is
// state-independent: exp(clamp(logStd)).
func (g *GaussianHead) Std() *tensor.Tensor {
	return tensor.Exp(tensor.Clamp(g.LogStd, g.LogStdMin, g.LogStdMax))
}

// Sample draws one action from N(mean, std) for a single-row feature
// tensor, returning the action vector. It performs no autograd bookkeeping.
func (g *GaussianHead) Sample(features *tensor.Tensor, rng *rand.Rand) []float64 {
	mean, std := g.MeanStd(features)
	a := make([]float64, mean.Cols())
	for j := range a {
		a[j] = mean.Data[j] + std.Data[j%std.Len()]*rng.NormFloat64()
	}
	return a
}

// GaussianLogProb computes per-sample log-densities of actions (B,D) under
// the diagonal Gaussian with mean (B,D) and std (D), returning (B,1). All
// operations are differentiable.
func GaussianLogProb(mean, std, actions *tensor.Tensor) *tensor.Tensor {
	z := tensor.Div(tensor.Sub(actions, mean), std)
	perDim := tensor.Scale(tensor.Square(z), -0.5)
	logStd := tensor.Log(std)
	perDim = tensor.Sub(perDim, logStd)            // broadcast (D) over (B,D)
	perDim = tensor.AddScalar(perDim, -0.5*log2Pi) // constant term
	return tensor.SumRows(perDim)                  // (B,1)
}

// GaussianEntropy returns the summed differential entropy of the diagonal
// Gaussian with the given std vector: Σ_d (log σ_d + ½log(2πe)),
// as a rank-0 tensor (identical for every batch row).
func GaussianEntropy(std *tensor.Tensor) *tensor.Tensor {
	h := tensor.AddScalar(tensor.Log(std), 0.5*(log2Pi+1))
	return tensor.Sum(h)
}

// CategoricalHead maps features to logits over a discrete action set. It
// backs the discrete-action-space ablation of Fig. 4.
type CategoricalHead struct {
	Logits *Linear
}

// NewCategoricalHead creates a categorical policy head with n actions.
func NewCategoricalHead(dim, n int, rng *rand.Rand) *CategoricalHead {
	return &CategoricalHead{Logits: NewLinear(dim, n, rng)}
}

// Params returns the trainable parameters of the head.
func (c *CategoricalHead) Params() []*tensor.Tensor { return c.Logits.Params() }

// LogProbs returns per-row log-probabilities (B,N).
func (c *CategoricalHead) LogProbs(features *tensor.Tensor) *tensor.Tensor {
	return tensor.LogSoftmax(c.Logits.Forward(features))
}

// Sample draws an action index from the categorical distribution for a
// single-row feature tensor.
func (c *CategoricalHead) Sample(features *tensor.Tensor, rng *rand.Rand) int {
	lp := c.LogProbs(features)
	u := rng.Float64()
	acc := 0.0
	for j := 0; j < lp.Cols(); j++ {
		acc += math.Exp(lp.Data[j])
		if u <= acc {
			return j
		}
	}
	return lp.Cols() - 1
}

// CategoricalEntropy returns the mean entropy of the rows of logProbs.
func CategoricalEntropy(logProbs *tensor.Tensor) *tensor.Tensor {
	p := tensor.Exp(logProbs)
	perRow := tensor.SumRows(tensor.Mul(p, logProbs)) // Σ p log p, (B,1)
	return tensor.Neg(tensor.Mean(perRow))
}
