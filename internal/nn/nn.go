// Package nn provides the neural-network building blocks used by
// AutoMDT's PPO agent: linear layers, layer normalization, activations,
// the residual blocks described in §IV-D of the paper, a sequential
// container, Gaussian and categorical policy heads, and the Adam
// optimizer. Everything is built on internal/tensor's autograd.
package nn

import (
	"math"
	"math/rand"

	"automdt/internal/tensor"
)

// Module is a differentiable computation with trainable parameters.
type Module interface {
	// Forward applies the module to a rank-2 input (batch, features).
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameter tensors.
	Params() []*tensor.Tensor
}

// Linear is a fully connected layer: y = x@W + b.
type Linear struct {
	W *tensor.Tensor // (in, out)
	B *tensor.Tensor // (out)
}

// NewLinear creates a linear layer with Xavier/Glorot-uniform initialized
// weights and zero bias, using rng for reproducibility.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	w := tensor.Zeros(in, out)
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return &Linear{W: w.Param(), B: tensor.Zeros(out).Param()}
}

// Forward implements Module.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.Add(tensor.MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// LayerNorm normalizes over the feature dimension with learned gain/bias.
type LayerNorm struct {
	Gain *tensor.Tensor
	Bias *tensor.Tensor
	Eps  float64
}

// NewLayerNorm creates a layer normalization over dim features.
func NewLayerNorm(dim int) *LayerNorm {
	return &LayerNorm{
		Gain: tensor.Full(1, dim).Param(),
		Bias: tensor.Zeros(dim).Param(),
		Eps:  1e-5,
	}
}

// Forward implements Module.
func (l *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.LayerNorm(x, l.Gain, l.Bias, l.Eps)
}

// Params implements Module.
func (l *LayerNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Gain, l.Bias} }

// Tanh is a parameter-free hyperbolic tangent activation module.
type Tanh struct{}

// Forward implements Module.
func (Tanh) Forward(x *tensor.Tensor) *tensor.Tensor { return tensor.Tanh(x) }

// Params implements Module.
func (Tanh) Params() []*tensor.Tensor { return nil }

// ReLU is a parameter-free rectified linear activation module.
type ReLU struct{}

// Forward implements Module.
func (ReLU) Forward(x *tensor.Tensor) *tensor.Tensor { return tensor.ReLU(x) }

// Params implements Module.
func (ReLU) Params() []*tensor.Tensor { return nil }

// Sequential chains modules, feeding each output to the next input.
type Sequential struct {
	Layers []Module
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Module) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Module.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Params implements Module.
func (s *Sequential) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ResidualBlock is the policy-network residual block from §IV-D-3: two
// linear transformations interleaved with layer normalization and ReLU
// activations, plus a skip connection adding the input to the output.
type ResidualBlock struct {
	Fc1   *Linear
	Norm1 *LayerNorm
	Fc2   *Linear
	Norm2 *LayerNorm
}

// NewResidualBlock creates a width-preserving residual block.
func NewResidualBlock(dim int, rng *rand.Rand) *ResidualBlock {
	return &ResidualBlock{
		Fc1:   NewLinear(dim, dim, rng),
		Norm1: NewLayerNorm(dim),
		Fc2:   NewLinear(dim, dim, rng),
		Norm2: NewLayerNorm(dim),
	}
}

// Forward implements Module.
func (r *ResidualBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := tensor.ReLU(r.Norm1.Forward(r.Fc1.Forward(x)))
	h = r.Norm2.Forward(r.Fc2.Forward(h))
	return tensor.Add(h, x)
}

// Params implements Module.
func (r *ResidualBlock) Params() []*tensor.Tensor {
	ps := r.Fc1.Params()
	ps = append(ps, r.Norm1.Params()...)
	ps = append(ps, r.Fc2.Params()...)
	ps = append(ps, r.Norm2.Params()...)
	return ps
}

// TanhResidualBlock is the value-network residual block from §IV-D-4: two
// sequential linear layers with Tanh activations and a skip connection.
type TanhResidualBlock struct {
	Fc1 *Linear
	Fc2 *Linear
}

// NewTanhResidualBlock creates a width-preserving tanh residual block.
func NewTanhResidualBlock(dim int, rng *rand.Rand) *TanhResidualBlock {
	return &TanhResidualBlock{Fc1: NewLinear(dim, dim, rng), Fc2: NewLinear(dim, dim, rng)}
}

// Forward implements Module.
func (r *TanhResidualBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := tensor.Tanh(r.Fc1.Forward(x))
	h = tensor.Tanh(r.Fc2.Forward(h))
	return tensor.Add(h, x)
}

// Params implements Module.
func (r *TanhResidualBlock) Params() []*tensor.Tensor {
	return append(r.Fc1.Params(), r.Fc2.Params()...)
}
