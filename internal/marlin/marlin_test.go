package marlin

import (
	"math"
	"testing"

	"automdt/internal/core"
	"automdt/internal/env"
	"automdt/internal/metrics"
	"automdt/internal/sim"
)

func state(n [env.StageCount]int, t env.StageVec) env.State {
	return env.State{N: n, Throughput: t, SenderFree: 100, ReceiverFree: 100}
}

// uniform builds a state with the same concurrency and throughput on
// every dimension, the symmetric fixture the hill-climb tests use.
func uniform(n int, tp float64) env.State {
	return state(
		[env.StageCount]int{n, n, n, n},
		env.StageVec{tp, tp, tp, tp},
	)
}

func TestDefaults(t *testing.T) {
	o := New()
	if o.K != env.DefaultK || o.MaxStep != 4 || o.Tol != 0.01 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Name() != "marlin" {
		t.Fatalf("name %q", o.Name())
	}
}

func TestBootstrapProbesUp(t *testing.T) {
	o := New()
	a := o.Decide(uniform(3, 100))
	if a.N != [env.StageCount]int{4, 4, 4, 4} {
		t.Fatalf("bootstrap %v", a.N)
	}
}

func TestAccelerationOnImprovement(t *testing.T) {
	o := New()
	o.Decide(uniform(2, 100))
	// We moved +1 and throughput doubled: keep direction, double step.
	a := o.Decide(uniform(3, 220))
	for i, n := range a.N {
		if n != 5 { // 3 + dir(+1)·step(2)
			t.Fatalf("stage %d: %d want 5 (accelerated)", i, n)
		}
	}
}

func TestStepCapRespected(t *testing.T) {
	o := New()
	o.MaxStep = 2
	o.Decide(uniform(2, 100))
	o.Decide(uniform(3, 250))      // step 2
	a := o.Decide(uniform(5, 500)) // step would be 4, capped 2
	for i, n := range a.N {
		if n != 7 {
			t.Fatalf("stage %d: %d want 7 (cap 2)", i, n)
		}
	}
}

func TestFlatGradientKeepsProbing(t *testing.T) {
	o := New()
	o.Decide(uniform(5, 100))
	// +1 threads, essentially unchanged utility → probe up by 1.
	a := o.Decide(uniform(6, 101.5))
	for i, n := range a.N {
		if n != 7 {
			t.Fatalf("stage %d: %d want 7 (flat probe)", i, n)
		}
	}
}

func TestHoldPacing(t *testing.T) {
	o := New()
	o.Hold = 3
	s := uniform(4, 100)
	a1 := o.Decide(s) // acts
	if a1.N == s.N {
		t.Fatal("first decision should act")
	}
	// Next two decisions hold the configuration.
	s2 := state(a1.N, env.StageVec{120, 120, 120, 120})
	if a := o.Decide(s2); a.N != s2.N {
		t.Fatalf("hold tick changed threads: %v", a.N)
	}
	if a := o.Decide(s2); a.N != s2.N {
		t.Fatal("second hold tick changed threads")
	}
	// Third decision acts again.
	if a := o.Decide(s2); a.N == s2.N {
		t.Fatal("post-hold decision should act")
	}
}

func TestResetClearsState(t *testing.T) {
	o := New()
	o.Hold = 2
	o.Decide(uniform(4, 100))
	o.Reset()
	// After reset the optimizer bootstraps again (acts immediately).
	a := o.Decide(uniform(4, 100))
	if a.N != [env.StageCount]int{5, 5, 5, 5} {
		t.Fatalf("post-reset bootstrap %v", a.N)
	}
}

func TestActionsNeverBelowOne(t *testing.T) {
	o := New()
	o.Decide(uniform(1, 10))
	// Utility collapse → reversal, but floor at 1.
	a := o.Decide(uniform(2, 0.01))
	for i, n := range a.N {
		if n < 1 {
			t.Fatalf("stage %d went to %d", i, n)
		}
	}
}

func TestJointGDDefaults(t *testing.T) {
	j := NewJointGD()
	if j.Name() != "joint-gd" || j.Step0 != 3 || j.Decay != 0.90 {
		t.Fatalf("%+v", j)
	}
}

func TestJointGDStepDecaysToFrozen(t *testing.T) {
	j := NewJointGD()
	s := uniform(5, 100)
	prev := s
	var lastAct env.Action
	frozen := false
	for i := 0; i < 60; i++ {
		lastAct = j.Decide(prev)
		prev = state(lastAct.N, env.StageVec{100, 100, 100, 100})
		if i > 40 && lastAct.N == prev.N {
			frozen = true
		}
	}
	_ = lastAct
	if !frozen {
		t.Fatal("joint GD step never decayed to zero movement")
	}
}

// The §III story end-to-end: on a pipeline where the buffers start empty,
// joint GD must end far below what the bottleneck allows, while the
// simple Marlin hill climbers keep making progress.
func TestJointGDStallsOnWanPipeline(t *testing.T) {
	cfg := sim.Config{
		TPT:            [3]float64{2800, 1250, 2400},
		Bandwidth:      [3]float64{26000, 25000, 26000},
		SenderBufCap:   12000,
		ReceiverBufCap: 12000,
		ChunkMb:        64,
	}
	run := func(ctrl env.Controller) float64 {
		st := &core.SimTransfer{Cfg: cfg, Controller: ctrl, TotalMb: 400_000,
			MaxTicks: 600, MaxThreads: 32}
		r := st.Run()
		// steady-state end-to-end rate over the last half
		vs := r.Rec.Series("thr_e2e").Values()
		return metrics.Summarize(vs[len(vs)/2:]).Mean
	}
	joint := run(NewJointGD())
	marlin := run(New())
	if joint > 0.6*marlin {
		t.Fatalf("joint GD (%.0f Mbps) not clearly stalled vs Marlin (%.0f Mbps)", joint, marlin)
	}
	if math.IsNaN(joint) || joint <= 0 {
		t.Fatalf("joint GD rate %v", joint)
	}
}
