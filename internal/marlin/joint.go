package marlin

import (
	"math"

	"automdt/internal/env"
)

// JointGD is the joint multivariate gradient-descent optimizer whose
// failure motivates AutoMDT (§III): the three concurrency values are
// optimized together against the *total* utility U = Σ tᵢ/k^{nᵢ} using
// finite-difference partial derivatives and a conventional decaying step
// size.
//
// The failure mode the paper describes emerges naturally: early in the
// transfer the staging buffers are empty, so probes of the network and
// write concurrency show zero or negative utility change (there is
// nothing to move yet) while read probes look great. Gradient descent
// therefore pours its large early steps into read concurrency and backs
// the others off. By the time the sender buffer fills — when network and
// write concurrency *should* rise — the step size has decayed below one
// thread and the optimizer is frozen in the local optimum, "never
// recovering".
type JointGD struct {
	// K is the utility penalty base (default env.DefaultK).
	K float64
	// Step0 is the initial step size in threads (default 3).
	Step0 float64
	// Decay is the per-decision multiplicative step decay (default 0.90).
	Decay float64

	step    float64
	coord   int // round-robin probe coordinate
	prevN   [3]int
	prevU   float64
	dir     [3]int
	haveObs bool
}

// NewJointGD creates the joint gradient-descent ablation controller.
func NewJointGD() *JointGD {
	return &JointGD{K: env.DefaultK, Step0: 3, Decay: 0.90}
}

// Name implements env.Controller.
func (j *JointGD) Name() string { return "joint-gd" }

// Decide implements env.Controller.
func (j *JointGD) Decide(s env.State) env.Action {
	k := j.K
	if k <= 0 {
		k = env.DefaultK
	}
	u := env.Utility(s.Throughput, s.Threads, k)

	var a env.Action
	a.Threads = s.Threads
	if !j.haveObs {
		j.haveObs = true
		j.step = j.Step0
		j.dir = [3]int{1, 1, 1}
		// First probe: perturb coordinate 0 (read).
		a.Threads[0] += int(math.Round(j.step))
	} else {
		// Attribute the utility change to the coordinate we probed.
		i := j.coord
		dn := s.Threads[i] - j.prevN[i]
		if dn != 0 {
			g := (u - j.prevU) / float64(dn)
			if g > 0 {
				j.dir[i] = sign(dn)
			} else {
				j.dir[i] = -sign(dn)
			}
		}
		// Decay the step (standard 1/t-style cooling); once it rounds to
		// zero the coordinate is frozen — the "never recovers" regime.
		j.step *= j.Decay
		j.coord = (j.coord + 1) % 3
		d := int(math.Round(j.step))
		a.Threads[j.coord] += j.dir[j.coord] * d
	}
	j.prevN = s.Threads
	j.prevU = u
	return a.Clamp(1 << 30)
}

// ScoredAlternatives implements env.AlternativeScorer: holding steady,
// and probing the current coordinate in the opposite direction — the two
// moves the finite-difference step implicitly rejected. Call after
// Decide for the same state; coord and dir reflect the probe just taken.
func (j *JointGD) ScoredAlternatives(s env.State) []env.ScoredAction {
	k := j.K
	if k <= 0 {
		k = env.DefaultK
	}
	out := []env.ScoredAction{{
		Action: env.Action{Threads: s.Threads},
		Score:  env.Utility(s.Throughput, s.Threads, k),
		Label:  "hold",
	}}
	if j.haveObs {
		if d := int(math.Round(j.step)); d > 0 {
			t := s.Threads
			t[j.coord] -= j.dir[j.coord] * d
			if t[j.coord] >= 1 {
				out = append(out, env.ScoredAction{
					Action: env.Action{Threads: t},
					Score:  env.Utility(s.Throughput, t, k),
					Label:  "probe-reverse",
				})
			}
		}
	}
	return out
}

func sign(n int) int {
	if n < 0 {
		return -1
	}
	return 1
}
