package marlin

import (
	"math"

	"automdt/internal/env"
)

// JointGD is the joint multivariate gradient-descent optimizer whose
// failure motivates AutoMDT (§III): the concurrency dimensions are
// optimized together against the *total* utility U = Σ tᵢ/k^{nᵢ} using
// finite-difference partial derivatives and a conventional decaying step
// size, round-robining over the four dimensions ⟨read, conns, streams,
// write⟩.
//
// The failure mode the paper describes emerges naturally: early in the
// transfer the staging buffers are empty, so probes of the network and
// write concurrency show zero or negative utility change (there is
// nothing to move yet) while read probes look great. Gradient descent
// therefore pours its large early steps into read concurrency and backs
// the others off. By the time the sender buffer fills — when network and
// write concurrency *should* rise — the step size has decayed below one
// thread and the optimizer is frozen in the local optimum, "never
// recovering".
type JointGD struct {
	// K is the utility penalty base (default env.DefaultK).
	K float64
	// Step0 is the initial step size in threads (default 3).
	Step0 float64
	// Decay is the per-decision multiplicative step decay (default 0.90).
	Decay float64

	step    float64
	coord   env.Stage // round-robin probe coordinate
	prevN   [env.StageCount]int
	prevU   float64
	dir     [env.StageCount]int
	haveObs bool
}

// NewJointGD creates the joint gradient-descent ablation controller.
func NewJointGD() *JointGD {
	return &JointGD{K: env.DefaultK, Step0: 3, Decay: 0.90}
}

// Name implements env.Controller.
func (j *JointGD) Name() string { return "joint-gd" }

// Decide implements env.Controller.
func (j *JointGD) Decide(s env.State) env.Action {
	k := j.K
	if k <= 0 {
		k = env.DefaultK
	}
	u := env.Utility(s.Throughput, env.Action{N: s.N}, k)

	var a env.Action
	a.N = s.N
	if !j.haveObs {
		j.haveObs = true
		j.step = j.Step0
		for i := range j.dir {
			j.dir[i] = 1
		}
		// First probe: perturb coordinate 0 (read).
		a.N[env.StageRead] += int(math.Round(j.step))
	} else {
		// Attribute the utility change to the coordinate we probed.
		i := j.coord
		dn := s.N[i] - j.prevN[i]
		if dn != 0 {
			g := (u - j.prevU) / float64(dn)
			if g > 0 {
				j.dir[i] = sign(dn)
			} else {
				j.dir[i] = -sign(dn)
			}
		}
		// Decay the step (standard 1/t-style cooling); once it rounds to
		// zero the coordinate is frozen — the "never recovers" regime.
		j.step *= j.Decay
		j.coord = (j.coord + 1) % env.StageCount
		d := int(math.Round(j.step))
		a.N[j.coord] += j.dir[j.coord] * d
	}
	j.prevN = s.N
	j.prevU = u
	return a.Clamp(1 << 30)
}

// ScoredAlternatives implements env.AlternativeScorer: holding steady,
// and probing the current coordinate in the opposite direction — the two
// moves the finite-difference step implicitly rejected. Call after
// Decide for the same state; coord and dir reflect the probe just taken.
func (j *JointGD) ScoredAlternatives(s env.State) []env.ScoredAction {
	k := j.K
	if k <= 0 {
		k = env.DefaultK
	}
	out := []env.ScoredAction{{
		Action: env.Action{N: s.N},
		Score:  env.Utility(s.Throughput, env.Action{N: s.N}, k),
		Label:  "hold",
	}}
	if j.haveObs {
		if d := int(math.Round(j.step)); d > 0 {
			t := s.N
			t[j.coord] -= j.dir[j.coord] * d
			if t[j.coord] >= 1 {
				out = append(out, env.ScoredAction{
					Action: env.Action{N: t},
					Score:  env.Utility(s.Throughput, env.Action{N: t}, k),
					Label:  "probe-reverse",
				})
			}
		}
	}
	return out
}

func sign(n int) int {
	if n < 0 {
		return -1
	}
	return 1
}
