// Package marlin reimplements the Marlin baseline (Arifuzzaman & Arslan,
// ICS'23) as described in §II–III of the AutoMDT paper: a modular
// transfer optimizer that tunes each concurrency dimension with
// *independent* single-variable gradient-descent (hill climbing)
// optimizers over the per-dimension utility uᵢ = tᵢ/k^{nᵢ}. With the
// striped data plane there are four such climbers — read, conns,
// streams-per-conn, and write — the network climbers sharing the observed
// network rate.
//
// Because each optimizer ignores the buffer coupling between stages
// (Fig. 1), the estimated gradients are polluted by the other stages'
// moves; the paper attributes Marlin's instability and slow convergence
// to exactly this, and this implementation reproduces that behaviour.
package marlin

import (
	"math"

	"automdt/internal/env"
)

// Optimizer is the independent-hill-climbers controller, one climber per
// stage dimension.
type Optimizer struct {
	// K is the utility penalty base (default env.DefaultK).
	K float64
	// MaxStep caps the per-decision concurrency change (default 4).
	MaxStep int
	// Tol is the relative utility-change threshold below which the
	// gradient is treated as flat (default 0.01).
	Tol float64
	// Hold is the number of probe intervals each configuration is held
	// before the next gradient estimate (default 1). Marlin needs 3–5 s
	// of stable metrics per configuration on real systems (§IV), so the
	// experiment harness uses Hold=3 with 1 s ticks.
	Hold int

	stages  [env.StageCount]stageState
	holdCnt int
}

type stageState struct {
	prevN   int
	prevU   float64
	dir     int
	step    int
	haveObs bool
}

// New creates a Marlin optimizer with the paper-matching defaults.
func New() *Optimizer {
	return &Optimizer{K: env.DefaultK, MaxStep: 4, Tol: 0.01}
}

// Name implements env.Controller.
func (o *Optimizer) Name() string { return "marlin" }

func (o *Optimizer) k() float64 {
	if o.K <= 0 {
		return env.DefaultK
	}
	return o.K
}

func (o *Optimizer) maxStep() int {
	if o.MaxStep <= 0 {
		return 4
	}
	return o.MaxStep
}

func (o *Optimizer) tol() float64 {
	if o.Tol <= 0 {
		return 0.01
	}
	return o.Tol
}

// Decide implements env.Controller. Each dimension independently
// estimates the sign of dU/dn from its last move and hill-climbs
// accordingly.
func (o *Optimizer) Decide(s env.State) env.Action {
	if o.Hold > 1 {
		if o.holdCnt > 0 {
			o.holdCnt--
			return env.Action{N: s.N}.Clamp(1 << 30)
		}
		o.holdCnt = o.Hold - 1
	}
	var a env.Action
	for i := env.Stage(0); i < env.StageCount; i++ {
		n := s.N[i]
		u := s.Throughput[i] / math.Pow(o.k(), float64(n))
		st := &o.stages[i]

		next := n
		switch {
		case !st.haveObs:
			// Bootstrap: probe upward.
			st.dir, st.step = +1, 1
			next = n + 1
		default:
			dn := n - st.prevN
			du := u - st.prevU
			rel := 0.0
			if st.prevU > 0 {
				rel = du / st.prevU
			} else if du > 0 {
				rel = 1
			}
			switch {
			case dn == 0:
				// Our previous request was clamped or unchanged; probe in
				// the current direction.
				next = n + st.dir
			case rel > o.tol():
				// Utility moved with the step: keep going, accelerate.
				if (du > 0) == (dn > 0) {
					st.dir = +1
				} else {
					st.dir = -1
				}
				st.step *= 2
				if st.step > o.maxStep() {
					st.step = o.maxStep()
				}
				next = n + st.dir*st.step
			case rel < -o.tol():
				// Utility moved against the step: reverse, slow down.
				if (du > 0) == (dn > 0) {
					st.dir = +1
				} else {
					st.dir = -1
				}
				st.step = 1
				next = n + st.dir*st.step
			default:
				// Flat gradient: small probe upward to keep exploring.
				next = n + st.dir
			}
		}
		st.prevN, st.prevU, st.haveObs = n, u, true
		a.N[i] = next
	}
	return a.Clamp(1 << 30) // engine clamps to its own MaxThreads
}

// ScoredAlternatives implements env.AlternativeScorer: the counter-moves
// each hill climber weighed against its chosen direction — holding the
// current tuple, and reversing any dimension's current direction — scored
// by the same utility the climbers maximize. Call after Decide for the
// same state; the directions reflect the latest gradient estimates.
func (o *Optimizer) ScoredAlternatives(s env.State) []env.ScoredAction {
	k := o.k()
	out := make([]env.ScoredAction, 0, int(env.StageCount)+1)
	out = append(out, env.ScoredAction{
		Action: env.Action{N: s.N},
		Score:  env.Utility(s.Throughput, env.Action{N: s.N}, k),
		Label:  "hold",
	})
	for i := env.Stage(0); i < env.StageCount; i++ {
		st := o.stages[i]
		if !st.haveObs || st.dir == 0 || st.step == 0 {
			continue
		}
		t := s.N
		t[i] -= st.dir * st.step
		if t[i] < 1 {
			continue
		}
		out = append(out, env.ScoredAction{
			Action: env.Action{N: t},
			Score:  env.Utility(s.Throughput, env.Action{N: t}, k),
			Label:  "reverse:" + i.String(),
		})
	}
	return out
}

// Reset clears optimizer state so the instance can drive a fresh run.
func (o *Optimizer) Reset() {
	o.stages = [env.StageCount]stageState{}
	o.holdCnt = 0
}
