package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram is a lock-free, log-bucketed latency histogram in the HDR
// style: buckets grow geometrically (histSubBuckets per power of two), so
// relative error is bounded (<≈19% per bucket) across nine decades while
// the whole structure stays a fixed few hundred atomic counters. Observe
// is a single atomic increment plus two float adds — cheap enough for the
// transfer data path to call per chunk — and readers (Quantile, Export)
// never block writers.
//
// The flight recorder uses one Histogram per pipeline stage seam
// (read/net/write service time, scheduler queue wait), exported as
// `<name>{quantile="..."}` samples in the Snapshot text format.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

const (
	// histMin is the smallest distinguishable value in seconds (1 µs);
	// everything below lands in bucket 0.
	histMin = 1e-6
	// histSubBuckets is the resolution per octave: 8 sub-buckets ≈ 9%
	// worst-case relative quantile error.
	histSubBuckets = 8
	// histOctaves spans histMin..histMin*2^27 ≈ 134 s; larger values
	// clamp into the last bucket.
	histOctaves = 27
	histBuckets = histOctaves*histSubBuckets + 1
)

// histIndex maps a value in seconds to its bucket.
func histIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	i := int(math.Log2(v/histMin) * histSubBuckets)
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	return i + 1
}

// histValue returns the representative (upper-bound) value of a bucket.
func histValue(i int) float64 {
	if i == 0 {
		return histMin
	}
	return histMin * math.Exp2(float64(i)/histSubBuckets)
}

// Observe records one value (seconds). Negative values count as zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values in seconds.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns the q-quantile (0..1) as the upper bound of the bucket
// the rank falls in, or 0 for an empty histogram. Concurrent Observes may
// shift the result by at most the in-flight samples.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return histValue(i)
		}
	}
	return histValue(histBuckets - 1)
}

// Reset zeroes the histogram. Not atomic against concurrent Observes:
// samples landing mid-reset may survive or vanish, which is acceptable
// for the debug/trace use this serves.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// histQuantiles are the quantiles exported for every histogram.
var histQuantiles = []struct {
	q     float64
	label string
}{{0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}}

// AddHistogram appends a histogram's samples in the Prometheus summary
// style: `name{quantile="0.5"}`, plus name_count and name_sum.
func (s *Snapshot) AddHistogram(name string, h *Histogram, labels ...Label) {
	for _, q := range histQuantiles {
		ql := append(append([]Label(nil), labels...), L("quantile", q.label))
		s.Add(name, h.Quantile(q.q), ql...)
	}
	s.Add(name+"_count", float64(h.Count()), labels...)
	s.Add(name+"_sum", h.Sum(), labels...)
}
