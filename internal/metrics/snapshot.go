package metrics

import (
	"fmt"
	"strings"
)

// Label is one key=value dimension attached to a Sample.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Sample is one exported metric value: a name, optional labels, and a
// float value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Snapshot is an ordered collection of samples representing a system's
// state at one instant. It renders to the Prometheus text exposition
// style (`name{key="value"} 1.5` lines), which is what the scheduler
// daemon serves at /metrics and what cmd/automdt-bench writes with
// -metrics.
type Snapshot struct {
	samples []Sample
}

// Add appends a sample.
func (s *Snapshot) Add(name string, value float64, labels ...Label) {
	s.samples = append(s.samples, Sample{Name: name, Labels: labels, Value: value})
}

// Merge appends every sample of other, preserving order.
func (s *Snapshot) Merge(other Snapshot) {
	s.samples = append(s.samples, other.samples...)
}

// Samples returns the samples in insertion order.
func (s Snapshot) Samples() []Sample {
	return append([]Sample(nil), s.samples...)
}

// Len returns the number of samples.
func (s Snapshot) Len() int { return len(s.samples) }

// labelEscaper escapes backslash, double quote, and newline per the
// Prometheus text format. Replacers are safe for concurrent use.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// Text renders the snapshot as name/value lines, one sample per line:
//
//	automdt_sched_jobs{state="running"} 3
//	automdt_sched_budget{stage="read"} 16
//
// Values render with %g so integers stay integral.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, smp := range s.samples {
		b.WriteString(smp.Name)
		if len(smp.Labels) > 0 {
			b.WriteByte('{')
			for i, l := range smp.Labels {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%s=\"%s\"", l.Key, escapeLabel(l.Value))
			}
			b.WriteByte('}')
		}
		fmt.Fprintf(&b, " %g\n", smp.Value)
	}
	return b.String()
}

// Snapshot summarizes every series of the recorder into samples: for each
// series `<prefix><name>_last`, `<prefix><name>_mean`, and
// `<prefix><name>_max`. Used to export a finished run's traces in the
// same text format as live gauges.
func (r *Recorder) Snapshot(prefix string, labels ...Label) Snapshot {
	var snap Snapshot
	for _, name := range r.Names() {
		sum := Summarize(r.Series(name).Values())
		if sum.N == 0 {
			continue
		}
		snap.Add(prefix+name+"_last", r.Series(name).Last().V, labels...)
		snap.Add(prefix+name+"_mean", sum.Mean, labels...)
		snap.Add(prefix+name+"_max", sum.Max, labels...)
		snap.Add(prefix+name+"_p99", sum.P99, labels...)
	}
	return snap
}
