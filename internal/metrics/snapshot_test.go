package metrics

import (
	"strings"
	"testing"
)

func TestSnapshotText(t *testing.T) {
	var s Snapshot
	s.Add("jobs_active", 3)
	s.Add("job_mbps", 912.5, L("job", "7"), L("ctrl", "automdt"))
	got := s.Text()
	want := "jobs_active 3\n" +
		"job_mbps{job=\"7\",ctrl=\"automdt\"} 912.5\n"
	if got != want {
		t.Fatalf("Text:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotLabelEscaping(t *testing.T) {
	var s Snapshot
	s.Add("m", 1, L("name", "a\"b\\c\nd"))
	got := s.Text()
	want := `m{name="a\"b\\c\nd"} 1` + "\n"
	if got != want {
		t.Fatalf("Text = %q, want %q", got, want)
	}
}

func TestSnapshotMergeAndSamples(t *testing.T) {
	var a, b Snapshot
	a.Add("x", 1)
	b.Add("y", 2)
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
	got := a.Samples()
	if got[0].Name != "x" || got[1].Name != "y" {
		t.Fatalf("Samples order = %v", got)
	}
}

func TestRecorderSnapshot(t *testing.T) {
	r := NewRecorder()
	r.Series("thr").Record(0, 100)
	r.Series("thr").Record(1, 300)
	r.Series("empty") // created but never recorded: skipped
	snap := r.Snapshot("run_", L("job", "1"))
	txt := snap.Text()
	for _, want := range []string{
		`run_thr_last{job="1"} 300`,
		`run_thr_mean{job="1"} 200`,
		`run_thr_max{job="1"} 300`,
		`run_thr_p99{job="1"} 298`,
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, txt)
		}
	}
	if strings.Contains(txt, "empty") {
		t.Errorf("empty series should be skipped:\n%s", txt)
	}
}
