package metrics

import (
	"encoding/csv"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(5)
	if c.Load() != 15 {
		t.Fatalf("Load=%d", c.Load())
	}
	if c.Reset() != 15 || c.Load() != 0 {
		t.Fatal("Reset broken")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 16000 {
		t.Fatalf("lost updates: %d", c.Load())
	}
}

func TestSeriesRecordAndQuery(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 5; i++ {
		s.Record(float64(i), float64(i*i))
	}
	if s.Len() != 5 {
		t.Fatalf("Len=%d", s.Len())
	}
	if last := s.Last(); last.T != 4 || last.V != 16 {
		t.Fatalf("Last=%v", last)
	}
	vs := s.Values()
	if len(vs) != 5 || vs[3] != 9 {
		t.Fatalf("Values=%v", vs)
	}
}

func TestTimeToReach(t *testing.T) {
	s := NewSeries("cc")
	for i, v := range []float64{1, 3, 7, 13, 13} {
		s.Record(float64(i), v)
	}
	if got := s.TimeToReach(13); got != 3 {
		t.Fatalf("TimeToReach(13)=%v", got)
	}
	if got := s.TimeToReach(20); got != -1 {
		t.Fatalf("TimeToReach(20)=%v want -1", got)
	}
}

func TestStability(t *testing.T) {
	s := NewSeries("cc")
	for i, v := range []float64{0, 5, 10, 10, 10, 10} {
		s.Record(float64(i), v)
	}
	if got := s.Stability(10); got != 0 {
		t.Fatalf("stable series Stability=%v", got)
	}
	if got := s.Stability(99); !math.IsInf(got, 1) {
		t.Fatalf("unreached target should be +Inf, got %v", got)
	}
}

func TestSummarize(t *testing.T) {
	sm := Summarize([]float64{1, 2, 3, 4, 5})
	if sm.N != 5 || sm.Mean != 3 || sm.Min != 1 || sm.Max != 5 || sm.P50 != 3 {
		t.Fatalf("summary=%+v", sm)
	}
	if math.Abs(sm.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std=%v", sm.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sm := Summarize([]float64{0, 10})
	if sm.P50 != 5 {
		t.Fatalf("P50=%v want 5", sm.P50)
	}
}

func TestRecorderSeriesCreationAndOrder(t *testing.T) {
	r := NewRecorder()
	r.Series("b").Record(0, 1)
	r.Series("a").Record(0, 2)
	r.Series("b").Record(1, 3)
	names := r.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names=%v", names)
	}
}

func TestRecorderCSV(t *testing.T) {
	r := NewRecorder()
	r.Series("x").Record(0, 1)
	r.Series("x").Record(1, 2)
	r.Series("y").Record(0, 3)
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv rows=%d: %q", len(lines), csv)
	}
	if lines[0] != "t,x,y" {
		t.Fatalf("header=%q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1.000,2.0000,") {
		t.Fatalf("row 2=%q", lines[2])
	}
}

func TestSummarizeP99(t *testing.T) {
	vs := make([]float64, 101) // 0..100: P99 interpolates exactly to 99
	for i := range vs {
		vs[i] = float64(i)
	}
	sm := Summarize(vs)
	if sm.P99 != 99 {
		t.Fatalf("P99=%v, want 99", sm.P99)
	}
	if sm.P95 != 95 {
		t.Fatalf("P95=%v, want 95", sm.P95)
	}
	if Summarize(nil).P99 != 0 {
		t.Fatal("empty P99 should be 0")
	}
}

func TestRecorderCSVRaggedRoundTrip(t *testing.T) {
	// Series of different lengths: every row must still have the full
	// column count, with explicit NaN filling the short columns, and the
	// output must round-trip through a strict CSV parser.
	r := NewRecorder()
	r.Series("x").Record(0, 1)
	r.Series("x").Record(1, 2)
	r.Series("x").Record(2, 3)
	r.Series("y").Record(0, 9)
	rows, err := csv.NewReader(strings.NewReader(r.CSV())).ReadAll()
	if err != nil {
		t.Fatalf("strict CSV parse failed: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows=%d, want header+3", len(rows))
	}
	for i, row := range rows {
		if len(row) != 3 {
			t.Fatalf("row %d has %d fields, want 3: %v", i, len(row), row)
		}
	}
	// Rows 2 and 3 have no y sample: the cell must parse as NaN, not be
	// an empty string.
	for _, row := range rows[2:] {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("missing cell %q does not parse as a float: %v", row[2], err)
		}
		if !math.IsNaN(v) {
			t.Fatalf("missing cell parsed to %v, want NaN", v)
		}
	}
	if rows[1][2] != "9.0000" {
		t.Fatalf("present y cell=%q", rows[1][2])
	}
}

// Property: mean lies within [min, max] and P50 within [min, max].
func TestQuickSummaryBounds(t *testing.T) {
	f := func(vs []float64) bool {
		// Filter non-finite inputs that quick may generate.
		// Filter values whose sum could overflow float64.
		clean := vs[:0]
		for _, v := range vs {
			if !math.IsNaN(v) && math.Abs(v) < 1e300 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.P50 >= s.Min-1e-9 && s.P50 <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
