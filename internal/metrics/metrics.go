// Package metrics provides throughput counters, time-series traces, and
// summary statistics for transfer experiments. The experiment harness uses
// it to record the per-second concurrency and throughput series that
// reproduce the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing byte counter safe for concurrent
// use. The transfer engine keeps one per stage (read, network, write).
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by n bytes.
func (c *Counter) Add(n int64) { c.n.Add(n) }

// Load returns the current total.
func (c *Counter) Load() int64 { return c.n.Load() }

// Reset zeroes the counter and returns the previous value.
func (c *Counter) Reset() int64 { return c.n.Swap(0) }

// Point is one sample of a time series.
type Point struct {
	T float64 // seconds since the start of the experiment
	V float64
}

// Series is a named, append-only time series. Safe for concurrent use.
type Series struct {
	Name string

	mu  sync.Mutex
	pts []Point
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Record appends a sample.
func (s *Series) Record(t, v float64) {
	s.mu.Lock()
	s.pts = append(s.pts, Point{T: t, V: v})
	s.mu.Unlock()
}

// Points returns a copy of the samples in insertion order.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.pts...)
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pts)
}

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pts) == 0 {
		return Point{}
	}
	return s.pts[len(s.pts)-1]
}

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := make([]float64, len(s.pts))
	for i, p := range s.pts {
		vs[i] = p.V
	}
	return vs
}

// Summary holds descriptive statistics of a sample set.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	P50, P95  float64
	P99       float64
}

// Summarize computes descriptive statistics over vs.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range vs {
		s.Mean += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean /= float64(len(vs))
	for _, v := range vs {
		d := v - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(vs)))
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile returns the q-quantile of sorted values by linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TimeToReach returns the earliest sample time at which the series value
// reaches or exceeds target, or -1 if it never does. This is how the
// paper reports convergence speed ("reaches 13 TCP streams within 6 s").
func (s *Series) TimeToReach(target float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pts {
		if p.V >= target {
			return p.T
		}
	}
	return -1
}

// Stability returns the standard deviation of the series after the first
// time it reaches target (a proxy for the paper's stability claims), or
// +Inf if target is never reached.
func (s *Series) Stability(target float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := -1
	for i, p := range s.pts {
		if p.V >= target {
			start = i
			break
		}
	}
	if start < 0 {
		return math.Inf(1)
	}
	var tail []float64
	for _, p := range s.pts[start:] {
		tail = append(tail, p.V)
	}
	return Summarize(tail).Std
}

// Recorder owns a set of named series for one experiment run.
type Recorder struct {
	mu     sync.Mutex
	series map[string]*Series
	order  []string
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns (creating if necessary) the series with the given name.
func (r *Recorder) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(name)
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// Names returns the series names in creation order.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// CSV renders all series as aligned columns (time of the first series)
// suitable for plotting. Series are sampled by index, not resampled by
// time; callers that record once per tick get aligned rows.
func (r *Recorder) CSV() string {
	names := r.Names()
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("t")
	cols := make([][]Point, len(names))
	maxLen := 0
	for i, n := range names {
		fmt.Fprintf(&b, ",%s", n)
		cols[i] = r.Series(n).Points()
		if len(cols[i]) > maxLen {
			maxLen = len(cols[i])
		}
	}
	b.WriteByte('\n')
	for row := 0; row < maxLen; row++ {
		t := math.NaN()
		for _, c := range cols {
			if row < len(c) {
				t = c[row].T
				break
			}
		}
		fmt.Fprintf(&b, "%.3f", t)
		for _, c := range cols {
			if row < len(c) {
				fmt.Fprintf(&b, ",%.4f", c[row].V)
			} else {
				// An explicit NaN keeps every row the same width; a bare
				// trailing comma reads as a ragged row to strict parsers.
				b.WriteString(",NaN")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
