package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile=%v, want 0", q)
	}
}

func TestHistogramObserveAndSum(t *testing.T) {
	var h Histogram
	vals := []float64{0.001, 0.002, 0.010, 0.100, 1.5}
	want := 0.0
	for _, v := range vals {
		h.Observe(v)
		want += v
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count=%d", h.Count())
	}
	if math.Abs(h.Sum()-want) > 1e-12 {
		t.Fatalf("sum=%v, want %v", h.Sum(), want)
	}
}

func TestHistogramQuantileBoundedError(t *testing.T) {
	// Log bucketing guarantees each quantile comes back as its bucket's
	// upper bound: never below the true value, and within one sub-bucket
	// ratio (2^{1/8} ≈ 9%) above it.
	var h Histogram
	const n = 1000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) * 1e-3) // 1 ms .. 1 s uniform
	}
	ratio := math.Exp2(1.0 / histSubBuckets)
	for _, tc := range []struct{ q, truth float64 }{
		{0.50, 0.500},
		{0.95, 0.950},
		{0.99, 0.990},
	} {
		got := h.Quantile(tc.q)
		if got < tc.truth*0.999 || got > tc.truth*ratio*1.001 {
			t.Fatalf("q%.2f=%v, want within [%v, %v]", tc.q, got, tc.truth, tc.truth*ratio)
		}
	}
}

func TestHistogramClampsExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-5)   // negative counts as zero
	h.Observe(1e-9) // below histMin → bucket 0
	h.Observe(1e6)  // far beyond the last octave → last bucket
	if h.Count() != 3 {
		t.Fatalf("count=%d", h.Count())
	}
	if q := h.Quantile(0.01); q != histMin {
		t.Fatalf("low quantile=%v, want histMin %v", q, histMin)
	}
	if q := h.Quantile(1.0); q != histValue(histBuckets-1) {
		t.Fatalf("max quantile=%v, want last bucket %v", q, histValue(histBuckets-1))
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(0.5)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost observations: %d", h.Count())
	}
	if math.Abs(h.Sum()-workers*per*0.001) > 1e-6 {
		t.Fatalf("CAS sum lost updates: %v", h.Sum())
	}
}

func TestSnapshotAddHistogram(t *testing.T) {
	var h Histogram
	h.Observe(0.010)
	h.Observe(0.020)
	var snap Snapshot
	snap.AddHistogram("automdt_stage_read_seconds", &h, L("stage", "read"))
	text := snap.Text()
	for _, want := range []string{
		`automdt_stage_read_seconds{stage="read",quantile="0.5"}`,
		`automdt_stage_read_seconds{stage="read",quantile="0.95"}`,
		`automdt_stage_read_seconds{stage="read",quantile="0.99"}`,
		`automdt_stage_read_seconds_count{stage="read"} 2`,
		`automdt_stage_read_seconds_sum{stage="read"} 0.03`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, text)
		}
	}
}
