package metrics

import "sync/atomic"

// Process-wide resumable-session counters. The receiver engine is the
// authority on what was skipped or replayed, so it increments these; the
// scheduler daemon merges ResumeSnapshot into its /metrics page.
var (
	resumeSessions    atomic.Int64 // sessions that resumed a prior ledger
	resumeSkipped     atomic.Int64 // bytes found committed and not re-sent
	resumeReplayed    atomic.Int64 // chunk ranges re-sent after verification cleared them
	resumeInvalidated atomic.Int64 // ledger ranges invalidated by CRC mismatch
	resumeUnverified  atomic.Int64 // sessions completed with sums missing
	resumeExpired     atomic.Int64 // stale ledgers removed by age-based GC
)

// ResumeSessionInc records one session resumed from a persisted ledger.
func ResumeSessionInc() { resumeSessions.Add(1) }

// ResumeSkippedAdd records payload bytes a resume skipped (already
// committed, not re-sent).
func ResumeSkippedAdd(n int64) { resumeSkipped.Add(n) }

// ResumeReplayedAdd records chunk ranges that were committed in a prior
// attempt but failed read-back verification and will cross the wire
// again.
func ResumeReplayedAdd(ranges int64) { resumeReplayed.Add(ranges) }

// ResumeInvalidatedAdd records ledger ranges invalidated because the
// end-to-end file CRC disagreed with the sender's.
func ResumeInvalidatedAdd(ranges int64) { resumeInvalidated.Add(ranges) }

// ResumeUnverifiedInc records a checksummed session that completed
// without receiving every announced file sum (verification degraded to
// "verify what arrived") — zero in healthy operation, so worth alerting
// on.
func ResumeUnverifiedInc() { resumeUnverified.Add(1) }

// ResumeExpiredAdd records session ledgers removed by the receiver's
// age-based GC: sessions that were abandoned in a long-lived destination
// instead of being resumed or completed.
func ResumeExpiredAdd(n int64) { resumeExpired.Add(n) }

// ResumeSnapshot exports the resume counters in the shared text format.
func ResumeSnapshot() Snapshot {
	var snap Snapshot
	snap.Add("automdt_resume_sessions_total", float64(resumeSessions.Load()))
	snap.Add("automdt_resume_bytes_skipped_total", float64(resumeSkipped.Load()))
	snap.Add("automdt_resume_ranges_replayed_total", float64(resumeReplayed.Load()))
	snap.Add("automdt_resume_ranges_invalidated_total", float64(resumeInvalidated.Load()))
	snap.Add("automdt_resume_sessions_unverified_total", float64(resumeUnverified.Load()))
	snap.Add("automdt_resume_ledgers_expired_total", float64(resumeExpired.Load()))
	return snap
}
