package rl

import (
	"math/rand"

	"automdt/internal/env"
	"automdt/internal/nn"
	"automdt/internal/tensor"
)

// DiscreteAgent is the discrete-action-space PPO variant used for the
// Fig. 4 ablation. Its training loop mirrors Algorithm 2 with categorical
// heads instead of the Gaussian head; the paper reports that it fails to
// converge because the four-dimensional discrete concurrency space is
// too large for the simple state representation.
type DiscreteAgent struct {
	Cfg    NetConfig
	Policy *DiscretePolicy
	Value  *ValueNet

	oldPolicy *DiscretePolicy
	rng       *rand.Rand
}

// NewDiscreteAgent builds a discrete PPO agent.
func NewDiscreteAgent(cfg NetConfig, seed int64) *DiscreteAgent {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	a := &DiscreteAgent{
		Cfg:       cfg,
		Policy:    NewDiscretePolicy(cfg, rng),
		Value:     NewValueNet(cfg, rng),
		oldPolicy: NewDiscretePolicy(cfg, rng),
		rng:       rng,
	}
	a.syncOld()
	return a
}

func (a *DiscreteAgent) allParams() nn.ParamList {
	return append(nn.ParamList{}, append(a.Policy.Params(), a.Value.Params()...)...)
}

func (a *DiscreteAgent) syncOld() {
	if err := nn.CopyParams(modOf(a.oldPolicy), modOf(a.Policy)); err != nil {
		panic(err)
	}
}

// discreteRollout is one episode of experience with integer actions.
type discreteRollout struct {
	states  [][]float64
	actions [][env.StageCount]int
	rewards []float64
	rawSum  float64
}

func (a *DiscreteAgent) collect(e env.Environment, m int, scale float64) discreteRollout {
	var ro discreteRollout
	rate, buf := e.Scales()
	maxT := e.MaxThreads()
	s := e.Reset()
	for step := 0; step < m; step++ {
		vec := s.Vector(maxT, rate, buf)
		tuple := a.Policy.Sample(vec, a.rng)
		act := env.Action{N: tuple}.Clamp(maxT)
		next, r := e.Step(act)
		ro.states = append(ro.states, vec)
		ro.actions = append(ro.actions, act.N)
		ro.rewards = append(ro.rewards, r/scale)
		ro.rawSum += r
		s = next
	}
	return ro
}

func (a *DiscreteAgent) update(ro discreteRollout, opt *nn.Adam, cfg TrainConfig) {
	n := len(ro.states)
	states := tensor.FromRows(ro.states)

	returns := make([]float64, n)
	g := 0.0
	for t := n - 1; t >= 0; t-- {
		g = ro.rewards[t] + cfg.Gamma*g
		returns[t] = g
	}
	returnsT := tensor.New(append([]float64(nil), returns...), n, 1)
	oldLP := a.oldPolicy.LogProb(states, ro.actions).Clone()

	for epoch := 0; epoch < cfg.UpdateEpochs; epoch++ {
		opt.ZeroGrad()
		newLP := a.Policy.LogProb(states, ro.actions)
		values := a.Value.Forward(states)
		adv := tensor.Sub(returnsT, values.Detach().Clone())

		ratio := tensor.Exp(tensor.Sub(newLP, oldLP))
		surr1 := tensor.Mul(ratio, adv)
		surr2 := tensor.Mul(tensor.Clamp(ratio, 1-cfg.Clip, 1+cfg.Clip), adv)
		actorLoss := tensor.Neg(tensor.Mean(tensor.Min(surr1, surr2)))
		criticLoss := tensor.Scale(tensor.Mean(tensor.Square(tensor.Sub(returnsT, values))), cfg.CriticCoef)
		entropy := a.Policy.Entropy(states)

		loss := tensor.Sub(tensor.Add(actorLoss, criticLoss), tensor.Scale(entropy, cfg.EntropyCoef))
		loss.Backward()
		opt.Step()
	}
	a.syncOld()
}

// Train runs the Algorithm 2 loop with the discrete policy.
func (a *DiscreteAgent) Train(e env.Environment, cfg TrainConfig) *TrainResult {
	cfg = cfg.withDefaults()
	if cfg.Seed != 0 {
		a.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	opt := nn.NewAdam(a.allParams(), cfg.LR)
	opt.MaxNorm = 5

	res := &TrainResult{ConvergedAt: -1}
	target := cfg.ConvergeFrac * cfg.Rmax * float64(cfg.StepsPerEpisode)
	best := 0.0
	stagnant := 0
	for ep := 0; ep < cfg.Episodes; ep++ {
		ro := a.collect(e, cfg.StepsPerEpisode, cfg.RewardScale)
		a.update(ro, opt, cfg)
		res.EpisodeRewards = append(res.EpisodeRewards, ro.rawSum)
		res.Episodes = ep + 1
		if ro.rawSum > best {
			best = ro.rawSum
			stagnant = 0
		} else {
			stagnant++
		}
		if cfg.Rmax > 0 && best >= target {
			if res.ConvergedAt < 0 {
				res.ConvergedAt = ep
			}
			if stagnant >= cfg.StagnantLimit {
				res.Converged = true
				break
			}
		}
	}
	res.BestReward = best
	return res
}
