package rl

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"automdt/internal/env"
	"automdt/internal/metrics"
	"automdt/internal/sim"
	"automdt/internal/tensor"
)

// tinyNet keeps unit tests fast.
func tinyNet() NetConfig {
	return NetConfig{Hidden: 32, PolicyBlocks: 1, ValueBlocks: 1, MaxActions: 16}
}

func testEnv(seed int64) *env.SimEnv {
	s := sim.New(sim.Config{
		TPT:            [3]float64{80, 160, 200},
		Bandwidth:      [3]float64{1000, 1000, 1000},
		SenderBufCap:   500,
		ReceiverBufCap: 500,
		ChunkMb:        8,
	})
	e := env.NewSimEnv(s, rand.New(rand.NewSource(seed)))
	e.MaxThreadsN = 16
	return e
}

func TestGaussianPolicyShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewGaussianPolicy(tinyNet(), rng)
	states := tensor.Zeros(4, env.StateDim)
	mean, std := p.MeanStd(states)
	if mean.Rows() != 4 || mean.Cols() != env.ActionDim {
		t.Fatalf("mean shape %v", mean.Shape())
	}
	if std.Len() != env.ActionDim {
		t.Fatalf("std len %d", std.Len())
	}
	lp := p.LogProb(states, tensor.Zeros(4, env.ActionDim))
	if lp.Rows() != 4 || lp.Cols() != 1 {
		t.Fatalf("logprob shape %v", lp.Shape())
	}
	if p.Entropy().Len() != 1 {
		t.Fatal("entropy should be scalar")
	}
}

func TestGaussianPolicySampleFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewGaussianPolicy(tinyNet(), rng)
	for i := 0; i < 20; i++ {
		a := p.Sample(make([]float64, env.StateDim), rng)
		if len(a) != env.ActionDim {
			t.Fatalf("sample len %d", len(a))
		}
		for _, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite sample %v", a)
			}
		}
	}
}

func TestDiscretePolicySampleRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDiscretePolicy(tinyNet(), rng)
	for i := 0; i < 50; i++ {
		a := d.Sample(make([]float64, env.StateDim), rng)
		for _, n := range a {
			if n < 1 || n > 16 {
				t.Fatalf("discrete action %v out of [1,16]", a)
			}
		}
	}
}

func TestDiscreteLogProbNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDiscretePolicy(tinyNet(), rng)
	states := tensor.Zeros(3, env.StateDim)
	lp := d.LogProb(states, [][env.StageCount]int{{1, 2, 3, 4}, {4, 5, 6, 7}, {16, 1, 8, 2}})
	if lp.Rows() != 3 {
		t.Fatalf("shape %v", lp.Shape())
	}
	for _, v := range lp.Data {
		if v > 0 {
			t.Fatalf("log-probability %v > 0", v)
		}
	}
}

func TestAgentSaveLoadRoundTrip(t *testing.T) {
	a := NewAgent(tinyNet(), 5)
	b := NewAgent(tinyNet(), 6)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	states := tensor.Zeros(2, env.StateDim)
	ma, _ := a.Policy.MeanStd(states)
	mb, _ := b.Policy.MeanStd(states)
	for i := range ma.Data {
		if ma.Data[i] != mb.Data[i] {
			t.Fatal("loaded agent differs")
		}
	}
}

func TestActReturnsValidAction(t *testing.T) {
	a := NewAgent(tinyNet(), 7)
	e := testEnv(7)
	s := e.Reset()
	for i := 0; i < 10; i++ {
		act := a.Act(s, e)
		for _, n := range act.N {
			if n < 1 || n > e.MaxThreads() {
				t.Fatalf("action %v out of range", act.N)
			}
		}
	}
}

// The central learning test: a small agent trained briefly on the
// simulator must substantially outperform a random policy.
func TestTrainImprovesOverRandomPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	e := testEnv(11)

	// Random-policy baseline: mean episode utility over 200 episodes.
	rng := rand.New(rand.NewSource(12))
	randomTotal := 0.0
	const baselineEpisodes = 200
	for ep := 0; ep < baselineEpisodes; ep++ {
		e.Reset()
		for m := 0; m < 10; m++ {
			act := env.ActionOf(1+rng.Intn(16), 1+rng.Intn(16), 1+rng.Intn(16), 1+rng.Intn(16))
			_, r := e.Step(act)
			randomTotal += r
		}
	}
	randomMean := randomTotal / baselineEpisodes

	agent := NewAgent(tinyNet(), 13)
	res := agent.Train(e, TrainConfig{
		Episodes:        1000,
		StepsPerEpisode: 10,
		LR:              1e-3,
		UpdateEpochs:    4,    // faster than the paper's single update; test budget
		Rmax:            2550, // b≈1000 × Σ k^-n* for n*=[13,7,5]
		StagnantLimit:   1e9,  // don't early-stop in this test
		Seed:            14,
	})
	if len(res.EpisodeRewards) != res.Episodes {
		t.Fatalf("reward series length %d != episodes %d", len(res.EpisodeRewards), res.Episodes)
	}
	lastMean := metrics.Summarize(res.EpisodeRewards[res.Episodes-100:]).Mean
	if lastMean < randomMean*1.1 {
		t.Fatalf("trained reward %.0f not ≥1.1× random %.0f", lastMean, randomMean)
	}
	// Learning converges fast with UpdateEpochs=4; compare against the
	// very first episodes (pre-learning policy).
	firstMean := metrics.Summarize(res.EpisodeRewards[:20]).Mean
	if lastMean <= firstMean {
		t.Fatalf("no learning: first-20 %.0f, last-100 %.0f", firstMean, lastMean)
	}
}

func TestTrainConvergenceEarlyStop(t *testing.T) {
	// A trivially rewarding environment: every episode immediately beats
	// Rmax, so training should stop after StagnantLimit stagnant episodes.
	e := testEnv(21)
	agent := NewAgent(tinyNet(), 22)
	res := agent.Train(e, TrainConfig{
		Episodes:        500,
		StepsPerEpisode: 5,
		Rmax:            1, // absurdly low target → immediate convergence
		StagnantLimit:   20,
		Seed:            23,
	})
	if !res.Converged {
		t.Fatal("expected convergence with trivial Rmax")
	}
	if res.Episodes >= 500 {
		t.Fatal("early stop did not trigger")
	}
	if res.ConvergedAt < 0 {
		t.Fatal("ConvergedAt not set")
	}
}

func TestRestoreBest(t *testing.T) {
	e := testEnv(31)
	agent := NewAgent(tinyNet(), 32)
	agent.Train(e, TrainConfig{Episodes: 30, StepsPerEpisode: 5, Rmax: 2700, StagnantLimit: 1e9, Seed: 33})
	if agent.best == nil {
		t.Fatal("no best checkpoint recorded")
	}
	// Corrupt the live policy, restore, and check it matches best.
	for _, p := range agent.Policy.Params() {
		for i := range p.Data {
			p.Data[i] = 99
		}
	}
	agent.RestoreBest()
	all := agent.allParams()
	for i, p := range all {
		for j := range p.Data {
			if p.Data[j] != agent.best[i].Data[j] {
				t.Fatal("RestoreBest did not restore parameters")
			}
		}
	}
}

func TestDiscreteAgentTrainsWithoutCrashing(t *testing.T) {
	e := testEnv(41)
	agent := NewDiscreteAgent(tinyNet(), 42)
	res := agent.Train(e, TrainConfig{Episodes: 20, StepsPerEpisode: 5, Rmax: 2700, StagnantLimit: 1e9, Seed: 43})
	if res.Episodes != 20 {
		t.Fatalf("episodes %d", res.Episodes)
	}
	for _, r := range res.EpisodeRewards {
		if math.IsNaN(r) {
			t.Fatal("NaN episode reward")
		}
	}
}

func TestActMeanIsDeterministic(t *testing.T) {
	a := NewAgent(tinyNet(), 51)
	vec := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	first := a.ActMean(vec, 16)
	for i := 0; i < 5; i++ {
		if got := a.ActMean(vec, 16); got != first {
			t.Fatalf("ActMean varied: %v vs %v", got, first)
		}
	}
	for _, n := range first.N {
		if n < 1 || n > 16 {
			t.Fatalf("ActMean out of range: %v", first.N)
		}
	}
}

func TestActVecSamplesVary(t *testing.T) {
	a := NewAgent(tinyNet(), 52)
	vec := make([]float64, env.StateDim)
	seen := map[env.Action]bool{}
	for i := 0; i < 50; i++ {
		seen[a.ActVec(vec, 16)] = true
	}
	if len(seen) < 2 {
		t.Fatal("sampled actions never varied; exploration broken")
	}
}

func TestOOBPenaltyDefaultAndDisable(t *testing.T) {
	c := TrainConfig{}.withDefaults()
	if c.OOBPenalty != 0.5 {
		t.Fatalf("OOBPenalty default %v", c.OOBPenalty)
	}
	c2 := TrainConfig{OOBPenalty: -1}.withDefaults()
	if c2.OOBPenalty != -1 {
		t.Fatalf("OOBPenalty disable overridden: %v", c2.OOBPenalty)
	}
}

func TestTrainConfigDefaults(t *testing.T) {
	c := TrainConfig{}.withDefaults()
	if c.Episodes != 30000 || c.StepsPerEpisode != 10 || c.Gamma != 0.99 ||
		c.Clip != 0.2 || c.EntropyCoef != 0.1 || c.CriticCoef != 0.5 ||
		c.StagnantLimit != 1000 || c.ConvergeFrac != 0.9 {
		t.Fatalf("defaults: %+v", c)
	}
	c2 := TrainConfig{Rmax: 50}.withDefaults()
	if c2.RewardScale != 50 {
		t.Fatalf("RewardScale default should track Rmax, got %v", c2.RewardScale)
	}
}

func TestNetConfigDefaultsMatchPaper(t *testing.T) {
	c := NetConfig{}.withDefaults()
	if c.Hidden != 256 || c.PolicyBlocks != 3 || c.ValueBlocks != 2 {
		t.Fatalf("paper architecture defaults wrong: %+v", c)
	}
}
