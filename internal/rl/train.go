package rl

import (
	"fmt"
	"io"
	"math/rand"

	"automdt/internal/env"
	"automdt/internal/nn"
	"automdt/internal/tensor"
)

// TrainConfig parameterizes Algorithm 2.
type TrainConfig struct {
	// Episodes is the maximum episode count N. The paper caps at 30000.
	Episodes int
	// StepsPerEpisode is M; the paper uses 10.
	StepsPerEpisode int
	// Gamma is the discount factor γ.
	Gamma float64
	// Clip is the PPO clipping threshold ϵ.
	Clip float64
	// LR is the Adam learning rate α.
	LR float64
	// EntropyCoef weights the entropy bonus (paper: 0.1).
	EntropyCoef float64
	// CriticCoef weights the value loss (paper: 0.5).
	CriticCoef float64
	// UpdateEpochs is the number of gradient updates per episode over the
	// collected batch. Algorithm 2 performs one.
	UpdateEpochs int
	// Rmax is the theoretical maximum *per-step* reward from the probe
	// phase; the episode-level target is StepsPerEpisode·Rmax.
	Rmax float64
	// ConvergeFrac is the fraction of the episode-level maximum that
	// counts as converged (paper: 0.9).
	ConvergeFrac float64
	// StagnantLimit is the number of non-improving episodes to wait after
	// convergence before stopping (paper: 1000).
	StagnantLimit int
	// RewardScale divides raw rewards before learning so returns are
	// O(1). If zero it defaults to Rmax (when set) or 1.
	RewardScale float64
	// OOBPenalty is the coefficient of the quadratic training penalty on
	// raw (pre-clamp) actions outside the normalized range [0, 1]. The
	// production rule rounds and clamps actions (§IV-F), which erases the
	// utility gradient once the policy mean drifts past the bound; this
	// penalty keeps the mean inside the actionable range. Applied to the
	// scaled reward during training only. Default 0.5; set negative to
	// disable.
	OOBPenalty float64
	// Seed drives action sampling and environment resets.
	Seed int64
	// Progress, if non-nil, receives one line every ProgressEvery
	// episodes.
	Progress      io.Writer
	ProgressEvery int
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Episodes <= 0 {
		c.Episodes = 30000
	}
	if c.StepsPerEpisode <= 0 {
		c.StepsPerEpisode = 10
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.Clip == 0 {
		c.Clip = 0.2
	}
	if c.LR == 0 {
		c.LR = 3e-4
	}
	if c.EntropyCoef == 0 {
		c.EntropyCoef = 0.1
	}
	if c.CriticCoef == 0 {
		c.CriticCoef = 0.5
	}
	if c.UpdateEpochs <= 0 {
		c.UpdateEpochs = 1
	}
	if c.ConvergeFrac == 0 {
		c.ConvergeFrac = 0.9
	}
	if c.StagnantLimit <= 0 {
		c.StagnantLimit = 1000
	}
	if c.RewardScale <= 0 {
		if c.Rmax > 0 {
			c.RewardScale = c.Rmax
		} else {
			c.RewardScale = 1
		}
	}
	if c.OOBPenalty == 0 {
		c.OOBPenalty = 0.5
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 1000
	}
	return c
}

// TrainResult reports a training run.
type TrainResult struct {
	// EpisodeRewards holds the raw (unscaled) total reward of every
	// episode, the series plotted in Fig. 4.
	EpisodeRewards []float64
	// Episodes is the number of episodes actually run.
	Episodes int
	// Converged reports whether the Algorithm 2 convergence criterion
	// fired before the episode cap.
	Converged bool
	// BestReward is the best raw episode reward seen.
	BestReward float64
	// ConvergedAt is the episode index at which the 90%·Rmax threshold
	// was first reached, or -1.
	ConvergedAt int
}

// Agent couples the policy and value networks with their optimizer state.
type Agent struct {
	Cfg    NetConfig
	Policy *GaussianPolicy
	Value  *ValueNet

	// oldPolicy holds π_θold for the PPO ratio.
	oldPolicy *GaussianPolicy
	// best holds the best checkpoint parameters (policy then value).
	best nn.ParamList
	rng  *rand.Rand
}

// NewAgent builds a PPO agent with freshly initialized networks.
func NewAgent(cfg NetConfig, seed int64) *Agent {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	a := &Agent{
		Cfg:       cfg,
		Policy:    NewGaussianPolicy(cfg, rng),
		Value:     NewValueNet(cfg, rng),
		oldPolicy: NewGaussianPolicy(cfg, rng),
		rng:       rng,
	}
	a.syncOld()
	return a
}

// allParams returns policy+value parameters, in stable order.
func (a *Agent) allParams() nn.ParamList {
	return append(nn.ParamList{}, append(a.Policy.Params(), a.Value.Params()...)...)
}

func (a *Agent) syncOld() {
	if err := nn.CopyParams(modOf(a.oldPolicy), modOf(a.Policy)); err != nil {
		panic(err)
	}
}

// modOf adapts anything with Params to nn.Module for the copy helpers.
func modOf(p interface{ Params() []*tensor.Tensor }) nn.Module {
	return nn.ParamList(p.Params())
}

// Save writes a checkpoint of the agent's current parameters.
func (a *Agent) Save(w io.Writer) error { return nn.SaveParams(w, a.allParams()) }

// Load restores a checkpoint written by Save into the agent.
func (a *Agent) Load(r io.Reader) error {
	if err := nn.LoadParams(r, a.allParams()); err != nil {
		return err
	}
	a.syncOld()
	return nil
}

// RestoreBest copies the best-seen checkpoint (tracked during Train) into
// the live networks. No-op if training has not run.
func (a *Agent) RestoreBest() {
	if a.best == nil {
		return
	}
	if err := nn.CopyParams(a.allParams(), a.best); err != nil {
		panic(err)
	}
	a.syncOld()
}

// Act samples a concurrency action for the given environment state,
// applying the §IV-F production rule: sample from the Gaussian, round,
// clamp to [1, maxThreads].
func (a *Agent) Act(s env.State, e env.Environment) env.Action {
	rate, buf := e.Scales()
	return a.ActVec(s.Vector(e.MaxThreads(), rate, buf), e.MaxThreads())
}

// ActVec is Act for callers that assemble the normalized state vector
// themselves (e.g. the live-engine controller in internal/core).
func (a *Agent) ActVec(vec []float64, maxThreads int) env.Action {
	raw := a.Policy.Sample(vec, a.rng)
	// The policy outputs normalized thread counts; rescale to [0,max].
	for i := range raw {
		raw[i] *= float64(maxThreads)
	}
	return env.FromContinuous(raw, maxThreads)
}

// ActMean is ActVec with the distribution mean instead of a sample — the
// deterministic deployment mode. A fully annealed policy's samples
// concentrate at the mean anyway; with shorter training budgets the mean
// avoids residual exploration noise during production transfers.
func (a *Agent) ActMean(vec []float64, maxThreads int) env.Action {
	mean, _ := a.Policy.MeanStd(tensor.New(append([]float64(nil), vec...), 1, len(vec)))
	raw := append([]float64(nil), mean.Data...)
	for i := range raw {
		raw[i] *= float64(maxThreads)
	}
	return env.FromContinuous(raw, maxThreads)
}

// rollout is one episode's collected experience.
type rollout struct {
	states  [][]float64
	actions [][]float64 // raw continuous samples, normalized units
	rewards []float64   // scaled
	rawSum  float64     // unscaled episode reward
}

// collect runs one episode of M steps in e under the current policy.
func (a *Agent) collect(e env.Environment, m int, scale, oobPenalty float64) rollout {
	var ro rollout
	rate, buf := e.Scales()
	maxT := e.MaxThreads()
	s := e.Reset()
	for step := 0; step < m; step++ {
		vec := s.Vector(maxT, rate, buf)
		raw := a.Policy.Sample(vec, a.rng)
		scaled := make([]float64, len(raw))
		oob := 0.0
		for i := range raw {
			scaled[i] = raw[i] * float64(maxT)
			if raw[i] < 0 {
				oob += raw[i] * raw[i]
			} else if raw[i] > 1 {
				oob += (raw[i] - 1) * (raw[i] - 1)
			}
		}
		act := env.FromContinuous(scaled, maxT)
		next, r := e.Step(act)
		shaped := r / scale
		if oobPenalty > 0 {
			shaped -= oobPenalty * oob
		}
		ro.states = append(ro.states, vec)
		ro.actions = append(ro.actions, raw)
		ro.rewards = append(ro.rewards, shaped)
		ro.rawSum += r
		s = next
	}
	return ro
}

// update performs the Algorithm 2 policy/value update on one rollout.
func (a *Agent) update(ro rollout, opt *nn.Adam, cfg TrainConfig) {
	n := len(ro.states)
	states := tensor.FromRows(ro.states)
	actions := tensor.FromRows(ro.actions)

	// Discounted returns Gt = rt + γ·G_{t+1}.
	returns := make([]float64, n)
	g := 0.0
	for t := n - 1; t >= 0; t-- {
		g = ro.rewards[t] + cfg.Gamma*g
		returns[t] = g
	}
	returnsT := tensor.New(append([]float64(nil), returns...), n, 1)

	// Old-policy log-probs (no gradient).
	oldLP := a.oldPolicy.LogProb(states, actions).Clone()

	for epoch := 0; epoch < cfg.UpdateEpochs; epoch++ {
		opt.ZeroGrad()

		newLP := a.Policy.LogProb(states, actions)
		values := a.Value.Forward(states)

		// Advantages At = Gt − V(st); treated as constants for the actor.
		adv := tensor.Sub(returnsT, values.Detach().Clone())

		ratio := tensor.Exp(tensor.Sub(newLP, oldLP))
		surr1 := tensor.Mul(ratio, adv)
		surr2 := tensor.Mul(tensor.Clamp(ratio, 1-cfg.Clip, 1+cfg.Clip), adv)
		actorLoss := tensor.Neg(tensor.Mean(tensor.Min(surr1, surr2)))

		criticLoss := tensor.Scale(tensor.Mean(tensor.Square(tensor.Sub(returnsT, values))), cfg.CriticCoef)
		entropy := a.Policy.Entropy()

		loss := tensor.Sub(tensor.Add(actorLoss, criticLoss), tensor.Scale(entropy, cfg.EntropyCoef))
		loss.Backward()
		opt.Step()
	}
	a.syncOld()
}

// Train runs Algorithm 2 against e and returns the learning curve. The
// agent's live networks end at the final episode; call RestoreBest to
// load the best checkpoint (as the production phase does).
func (a *Agent) Train(e env.Environment, cfg TrainConfig) *TrainResult {
	cfg = cfg.withDefaults()
	if cfg.Seed != 0 {
		a.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	opt := nn.NewAdam(a.allParams(), cfg.LR)
	opt.MaxNorm = 5

	res := &TrainResult{ConvergedAt: -1}
	targetEpisode := cfg.ConvergeFrac * cfg.Rmax * float64(cfg.StepsPerEpisode)
	best := 0.0
	stagnant := 0

	for ep := 0; ep < cfg.Episodes; ep++ {
		ro := a.collect(e, cfg.StepsPerEpisode, cfg.RewardScale, cfg.OOBPenalty)
		a.update(ro, opt, cfg)

		res.EpisodeRewards = append(res.EpisodeRewards, ro.rawSum)
		res.Episodes = ep + 1
		if ro.rawSum > best {
			best = ro.rawSum
			stagnant = 0
			a.best = cloneParams(a.allParams())
		} else {
			stagnant++
		}
		if cfg.Rmax > 0 && best >= targetEpisode {
			if res.ConvergedAt < 0 {
				res.ConvergedAt = ep
			}
			if stagnant >= cfg.StagnantLimit {
				res.Converged = true
				res.Episodes = ep + 1
				break
			}
		}
		if cfg.Progress != nil && (ep+1)%cfg.ProgressEvery == 0 {
			fmt.Fprintf(cfg.Progress, "episode %d: reward %.1f (best %.1f, target %.1f)\n",
				ep+1, ro.rawSum, best, targetEpisode)
		}
	}
	res.BestReward = best
	return res
}

func cloneParams(ps nn.ParamList) nn.ParamList {
	out := make(nn.ParamList, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out
}
