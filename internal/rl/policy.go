// Package rl implements the Proximal Policy Optimization agent of
// AutoMDT (§IV-D and Algorithm 2): a continuous Gaussian policy over the
// concurrency tuple ⟨n_r, n_c, n_s, n_w⟩ with the residual policy/value
// network architectures the paper describes, plus the discrete-action
// variant used as the failed ablation of Fig. 4.
package rl

import (
	"math"
	"math/rand"

	"automdt/internal/env"
	"automdt/internal/nn"
	"automdt/internal/tensor"
)

// NetConfig sizes the policy and value networks. The zero value is
// replaced by the paper's architecture: 256-wide embedding, three
// residual blocks in the policy trunk, two tanh residual blocks in the
// value trunk.
type NetConfig struct {
	StateDim     int
	ActionDim    int
	Hidden       int
	PolicyBlocks int
	ValueBlocks  int
	// InitLogStd is the starting log standard deviation of the Gaussian
	// head; the default of log(5) explores a wide range of thread counts.
	InitLogStd float64
	// MaxActions is the number of discrete choices per dimension for the
	// discrete policy (thread counts 1..MaxActions).
	MaxActions int
}

func (c NetConfig) withDefaults() NetConfig {
	if c.StateDim <= 0 {
		c.StateDim = env.StateDim
	}
	if c.ActionDim <= 0 {
		c.ActionDim = env.ActionDim
	}
	if c.Hidden <= 0 {
		c.Hidden = 256
	}
	if c.PolicyBlocks <= 0 {
		c.PolicyBlocks = 3
	}
	if c.ValueBlocks <= 0 {
		c.ValueBlocks = 2
	}
	if c.InitLogStd == 0 {
		// Actions are normalized by maxThreads, so an initial σ of 0.3
		// explores roughly a third of the concurrency range.
		c.InitLogStd = math.Log(0.3)
	}
	if c.MaxActions <= 0 {
		c.MaxActions = 32
	}
	return c
}

// GaussianPolicy is the §IV-D-3 policy network: a linear embedding with
// tanh, a stack of residual blocks (linear/LayerNorm/ReLU with skip), a
// tanh, and a linear mean head, together with a trainable clamped log-std.
type GaussianPolicy struct {
	Trunk *nn.Sequential
	Head  *nn.GaussianHead
}

// NewGaussianPolicy builds the policy network.
func NewGaussianPolicy(cfg NetConfig, rng *rand.Rand) *GaussianPolicy {
	cfg = cfg.withDefaults()
	layers := []nn.Module{nn.NewLinear(cfg.StateDim, cfg.Hidden, rng), nn.Tanh{}}
	for i := 0; i < cfg.PolicyBlocks; i++ {
		layers = append(layers, nn.NewResidualBlock(cfg.Hidden, rng))
	}
	layers = append(layers, nn.Tanh{})
	head := nn.NewGaussianHead(cfg.Hidden, cfg.ActionDim, cfg.InitLogStd, rng)
	// In normalized action units, bound σ to [e^-3, e^0.7]≈[0.05, 2] so
	// exploration can neither collapse nor swamp the concurrency range.
	head.LogStdMin, head.LogStdMax = -3, 0.7
	return &GaussianPolicy{
		Trunk: nn.NewSequential(layers...),
		Head:  head,
	}
}

// MeanStd returns the Gaussian action distribution parameters for a batch
// of states.
func (p *GaussianPolicy) MeanStd(states *tensor.Tensor) (mean, std *tensor.Tensor) {
	return p.Head.MeanStd(p.Trunk.Forward(states))
}

// Sample draws a continuous action for a single state vector.
func (p *GaussianPolicy) Sample(state []float64, rng *rand.Rand) []float64 {
	return p.Head.Sample(p.Trunk.Forward(tensor.New(append([]float64(nil), state...), 1, len(state))), rng)
}

// LogProb returns per-sample log-densities (B,1) of actions under the
// current policy.
func (p *GaussianPolicy) LogProb(states, actions *tensor.Tensor) *tensor.Tensor {
	mean, std := p.MeanStd(states)
	return nn.GaussianLogProb(mean, std, actions)
}

// Entropy returns the (state-independent) summed action entropy.
func (p *GaussianPolicy) Entropy() *tensor.Tensor {
	return nn.GaussianEntropy(p.Head.Std())
}

// Params implements nn.Module's parameter enumeration.
func (p *GaussianPolicy) Params() []*tensor.Tensor {
	return append(p.Trunk.Params(), p.Head.Params()...)
}

// Forward implements nn.Module (returns the action mean).
func (p *GaussianPolicy) Forward(x *tensor.Tensor) *tensor.Tensor {
	mean, _ := p.MeanStd(x)
	return mean
}

// ValueNet is the §IV-D-4 value network: linear embedding with tanh, two
// tanh residual blocks, and a scalar head.
type ValueNet struct {
	Net *nn.Sequential
}

// NewValueNet builds the critic.
func NewValueNet(cfg NetConfig, rng *rand.Rand) *ValueNet {
	cfg = cfg.withDefaults()
	layers := []nn.Module{nn.NewLinear(cfg.StateDim, cfg.Hidden, rng), nn.Tanh{}}
	for i := 0; i < cfg.ValueBlocks; i++ {
		layers = append(layers, nn.NewTanhResidualBlock(cfg.Hidden, rng))
	}
	layers = append(layers, nn.NewLinear(cfg.Hidden, 1, rng))
	return &ValueNet{Net: nn.NewSequential(layers...)}
}

// Forward implements nn.Module, returning (B,1) value estimates.
func (v *ValueNet) Forward(states *tensor.Tensor) *tensor.Tensor {
	return v.Net.Forward(states)
}

// Params implements nn.Module.
func (v *ValueNet) Params() []*tensor.Tensor { return v.Net.Params() }

// DiscretePolicy is the discrete-action-space ablation (§V-A, Fig. 4).
// The paper defines "the concurrency values directly as actions"; in the
// discrete formulation that is a single categorical distribution over
// every concurrency tuple ⟨n_r, n_c, n_s, n_w⟩ ∈ [1, MaxActions]⁴ — a
// MaxActions⁴-way choice. This combinatorial action space is exactly why
// the discrete agent "failed miserably": the paper notes it would need a
// far richer state space and far longer training to work, and the extra
// connection dimension makes it another MaxActions× worse.
type DiscretePolicy struct {
	Trunk *nn.Sequential
	Head  *nn.CategoricalHead
	// MaxActions is the per-dimension concurrency bound; the joint space
	// has MaxActions^StageCount actions.
	MaxActions int
}

// NewDiscretePolicy builds the discrete variant.
func NewDiscretePolicy(cfg NetConfig, rng *rand.Rand) *DiscretePolicy {
	cfg = cfg.withDefaults()
	layers := []nn.Module{nn.NewLinear(cfg.StateDim, cfg.Hidden, rng), nn.Tanh{}}
	for i := 0; i < cfg.PolicyBlocks; i++ {
		layers = append(layers, nn.NewResidualBlock(cfg.Hidden, rng))
	}
	layers = append(layers, nn.Tanh{})
	n := cfg.MaxActions
	joint := 1
	for i := 0; i < env.ActionDim; i++ {
		joint *= n
	}
	return &DiscretePolicy{
		Trunk:      nn.NewSequential(layers...),
		Head:       nn.NewCategoricalHead(cfg.Hidden, joint, rng),
		MaxActions: cfg.MaxActions,
	}
}

// encode maps a 1-based concurrency tuple to its joint action index.
func (d *DiscretePolicy) encode(a [env.StageCount]int) int {
	n := d.MaxActions
	idx := 0
	for _, v := range a {
		idx = idx*n + (v - 1)
	}
	return idx
}

// decode maps a joint action index back to the 1-based tuple.
func (d *DiscretePolicy) decode(idx int) [env.StageCount]int {
	n := d.MaxActions
	var a [env.StageCount]int
	for i := len(a) - 1; i >= 0; i-- {
		a[i] = idx%n + 1
		idx /= n
	}
	return a
}

// Sample draws a concurrency tuple (1-based) for a single state.
func (d *DiscretePolicy) Sample(state []float64, rng *rand.Rand) [env.StageCount]int {
	f := d.Trunk.Forward(tensor.New(append([]float64(nil), state...), 1, len(state)))
	return d.decode(d.Head.Sample(f, rng))
}

// LogProb returns the joint log-probability (B,1) of 1-based action
// tuples under the current policy.
func (d *DiscretePolicy) LogProb(states *tensor.Tensor, actions [][env.StageCount]int) *tensor.Tensor {
	f := d.Trunk.Forward(states)
	idx := make([]int, len(actions))
	for j, a := range actions {
		idx[j] = d.encode(a)
	}
	return tensor.GatherCols(d.Head.LogProbs(f), idx)
}

// Entropy returns the mean entropy of the joint distribution over a batch
// of states.
func (d *DiscretePolicy) Entropy(states *tensor.Tensor) *tensor.Tensor {
	return nn.CategoricalEntropy(d.Head.LogProbs(d.Trunk.Forward(states)))
}

// Params implements nn.Module's parameter enumeration.
func (d *DiscretePolicy) Params() []*tensor.Tensor {
	return append(d.Trunk.Params(), d.Head.Params()...)
}

// Forward implements nn.Module (returns trunk features).
func (d *DiscretePolicy) Forward(x *tensor.Tensor) *tensor.Tensor {
	return d.Trunk.Forward(x)
}
