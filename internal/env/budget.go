package env

import "sync"

// BudgetCap wraps a Controller and clamps every decision to a per-stage
// concurrency cap that an external arbiter may lower or raise at any time
// (internal/sched splits a host-wide worker budget across concurrent
// transfers this way). The wrapped controller still optimizes freely; the
// cap is a hard ceiling applied after Decide, so budget enforcement never
// depends on the controller cooperating.
//
// A nil inner controller yields a pass-through policy that simply holds
// the current thread counts, clamped to the cap — budget enforcement over
// otherwise fixed concurrency.
//
// BudgetCap is safe for concurrent use: the transfer engine calls Decide
// from its control loop while the arbiter calls SetCap from another
// goroutine.
type BudgetCap struct {
	inner Controller

	mu      sync.Mutex
	cap     [StageCount]int
	onClamp func(s State, wanted, got Action, caps [StageCount]int)
}

// NewBudgetCap wraps inner with the given initial per-stage caps. Caps
// below 1 are raised to 1: a live transfer can never run a stage with
// zero workers.
func NewBudgetCap(inner Controller, caps [StageCount]int) *BudgetCap {
	b := &BudgetCap{inner: inner}
	b.SetCap(caps)
	return b
}

// SetCap replaces the per-stage caps. Values below 1 are raised to 1.
// The new caps apply from the next Decide call.
func (b *BudgetCap) SetCap(caps [StageCount]int) {
	for i := range caps {
		if caps[i] < 1 {
			caps[i] = 1
		}
	}
	b.mu.Lock()
	b.cap = caps
	b.mu.Unlock()
}

// OnClamp installs a callback invoked (from Decide's caller goroutine)
// whenever the cap actually binds — the inner decision wanted more
// workers than the budget allowed. The scheduler uses it to record
// arbiter-starvation evidence in the flight recorder without env
// depending on that package. Pass nil to remove. Apply-before-first-use:
// installing it concurrently with Decide is not synchronized.
func (b *BudgetCap) OnClamp(fn func(s State, wanted, got Action, caps [StageCount]int)) {
	b.onClamp = fn
}

// Cap returns the current per-stage caps.
func (b *BudgetCap) Cap() [StageCount]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap
}

// Name implements Controller.
func (b *BudgetCap) Name() string {
	if b.inner == nil {
		return "budget"
	}
	return b.inner.Name() + "+budget"
}

// Decide implements Controller: it delegates to the inner controller and
// clamps each stage's concurrency into [1, cap].
func (b *BudgetCap) Decide(s State) Action {
	var a Action
	if b.inner != nil {
		a = b.inner.Decide(s)
	} else {
		a = Action{N: s.N}
	}
	caps := b.Cap()
	wanted := a
	clamped := false
	for i := range a.N {
		if a.N[i] < 1 {
			a.N[i] = 1
		}
		if a.N[i] > caps[i] {
			a.N[i] = caps[i]
			clamped = true
		}
	}
	if clamped && b.onClamp != nil {
		b.onClamp(s, wanted, a, caps)
	}
	return a
}
