package env

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"automdt/internal/sim"
)

func simFor(t *testing.T) *sim.Simulator {
	t.Helper()
	return sim.New(sim.Config{
		TPT:            [3]float64{80, 160, 200},
		Bandwidth:      [3]float64{1000, 1000, 1000},
		SenderBufCap:   500,
		ReceiverBufCap: 500,
		ChunkMb:        8,
	})
}

func TestStageNames(t *testing.T) {
	want := [StageCount]string{"read", "conns", "streams", "write"}
	if got := StageNames(); got != want {
		t.Fatalf("StageNames=%v want %v", got, want)
	}
}

func TestUtilityMatchesFormula(t *testing.T) {
	tp := StageVec{800, 900, 900, 1000}
	a := ActionOf(10, 2, 5, 7)
	want := 800/math.Pow(1.02, 10) + 900/math.Pow(1.02, 2) +
		900/math.Pow(1.02, 5) + 1000/math.Pow(1.02, 7)
	if got := Utility(tp, a, 1.02); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Utility=%v want %v", got, want)
	}
}

func TestUtilityPenalizesConcurrency(t *testing.T) {
	tp := ThroughputVec(1000, 1000, 1000)
	low := Utility(tp, ActionOf(5, 1, 5, 5), 1.02)
	high := Utility(tp, ActionOf(30, 6, 5, 30), 1.02)
	if high >= low {
		t.Fatalf("same throughput with more workers should score lower: %v vs %v", high, low)
	}
}

func TestUtilityChargesConnsDimension(t *testing.T) {
	// Same total network concurrency (6 workers), same throughput: the
	// conns-heavy split must score lower because each extra socket is
	// penalized on its own dimension.
	tp := ThroughputVec(800, 600, 700)
	lean := Utility(tp, ActionOf(5, 1, 6, 5), DefaultK)
	heavy := Utility(tp, ActionOf(5, 6, 1, 5), DefaultK)
	// k^-1 + k^-6 == k^-6 + k^-1: symmetric splits tie exactly.
	if math.Abs(lean-heavy) > 1e-9 {
		t.Fatalf("symmetric conns/streams splits should tie: %v vs %v", lean, heavy)
	}
	balanced := Utility(tp, ActionOf(5, 2, 3, 5), DefaultK)
	if balanced <= lean {
		t.Fatalf("2×3 split should beat 1×6: %v vs %v", balanced, lean)
	}
}

func TestUtilityKControlsAggressiveness(t *testing.T) {
	tp := ThroughputVec(1000, 1000, 1000)
	a := ActionOf(20, 4, 5, 20)
	gentle := Utility(tp, a, 1.001)
	harsh := Utility(tp, a, 1.2)
	if harsh >= gentle {
		t.Fatalf("larger k should penalize more: k=1.2 %v vs k=1.001 %v", harsh, gentle)
	}
}

func TestActionOf(t *testing.T) {
	a := ActionOf(3, 4, 5, 6)
	if a.N[StageRead] != 3 || a.N[StageConns] != 4 ||
		a.N[StageStreams] != 5 || a.N[StageWrite] != 6 {
		t.Fatalf("ActionOf order wrong: %v", a.N)
	}
}

func TestActionClamp(t *testing.T) {
	a := ActionOf(0, 50, 7, -2).Clamp(32)
	if a.N != [StageCount]int{1, 32, 7, 1} {
		t.Fatalf("Clamp=%v", a.N)
	}
	// Exactly-at-bound values pass through untouched.
	b := ActionOf(1, 32, 1, 32).Clamp(32)
	if b.N != [StageCount]int{1, 32, 1, 32} {
		t.Fatalf("boundary Clamp=%v", b.N)
	}
}

func TestActionNetWorkers(t *testing.T) {
	if n := ActionOf(9, 4, 5, 9).NetWorkers(); n != 20 {
		t.Fatalf("NetWorkers=%d want 20", n)
	}
	if n := ActionOf(9, 1, 7, 9).NetWorkers(); n != 7 {
		t.Fatalf("single-conn NetWorkers=%d want 7", n)
	}
}

func TestFromContinuousRoundsAndClamps(t *testing.T) {
	a := FromContinuous([]float64{6.4, 6.6, -3, 2.5}, 32)
	if a.N != [StageCount]int{6, 7, 1, 3} {
		t.Fatalf("FromContinuous=%v", a.N)
	}
	a = FromContinuous([]float64{100, 0.2, 31.5, -100}, 32)
	if a.N != [StageCount]int{32, 1, 32, 1} {
		t.Fatalf("FromContinuous=%v", a.N)
	}
}

func TestFromContinuousShortSlice(t *testing.T) {
	// Raw slices shorter than ActionDim clamp the missing trailing
	// dimensions to 1 instead of panicking — an old 3-dim policy head
	// degrades to single-connection behaviour.
	a := FromContinuous([]float64{6.6, 3.2}, 32)
	if a.N != [StageCount]int{7, 3, 1, 1} {
		t.Fatalf("short-slice FromContinuous=%v", a.N)
	}
	a = FromContinuous(nil, 32)
	if a.N != [StageCount]int{1, 1, 1, 1} {
		t.Fatalf("nil-slice FromContinuous=%v", a.N)
	}
	// Longer slices ignore the extra components.
	a = FromContinuous([]float64{2, 3, 4, 5, 99, 98}, 32)
	if a.N != [StageCount]int{2, 3, 4, 5} {
		t.Fatalf("long-slice FromContinuous=%v", a.N)
	}
}

func TestStateVectorNormalization(t *testing.T) {
	s := State{
		N:            [StageCount]int{8, 16, 32, 8},
		Throughput:   StageVec{500, 1000, 1000, 250},
		SenderFree:   250,
		ReceiverFree: 500,
	}
	v := s.Vector(32, 1000, 500)
	want := []float64{0.25, 0.5, 1, 0.25, 0.5, 1, 1, 0.25, 0.5, 1}
	if len(v) != StateDim {
		t.Fatalf("vector length %d want %d", len(v), StateDim)
	}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("v[%d]=%v want %v", i, v[i], want[i])
		}
	}
}

func TestSimEnvResetRandomizes(t *testing.T) {
	e := NewSimEnv(simFor(t), rand.New(rand.NewSource(1)))
	s1 := e.Reset()
	s2 := e.Reset()
	if s1.N == s2.N {
		// Extremely unlikely with 32^4 combinations; retry once.
		s2 = e.Reset()
		if s1.N == s2.N {
			t.Fatalf("Reset not randomizing concurrency: %v", s1.N)
		}
	}
	for _, s := range []State{s1, s2} {
		for i := Stage(0); i < StageCount; i++ {
			if s.N[i] < 1 || s.N[i] > e.MaxThreads() {
				t.Fatalf("reset concurrency %d out of range", s.N[i])
			}
		}
	}
}

func TestSimEnvStepRewardIsUtility(t *testing.T) {
	e := NewSimEnv(simFor(t), rand.New(rand.NewSource(2)))
	e.Reset()
	a := ActionOf(5, 1, 5, 5)
	s, r := e.Step(a)
	want := Utility(s.Throughput, a, DefaultK)
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("reward %v != utility %v", r, want)
	}
	if s.N != a.N {
		t.Fatalf("state concurrency %v != action %v", s.N, a.N)
	}
}

func TestSimEnvScales(t *testing.T) {
	e := NewSimEnv(simFor(t), nil)
	rate, buf := e.Scales()
	if buf != 500 {
		t.Fatalf("bufScale=%v", buf)
	}
	// Read stage: min(80*32, 1000)=1000; all stages 1000 → 1000.
	if rate != 1000 {
		t.Fatalf("rateScale=%v want 1000", rate)
	}
}

func TestSimEnvScalesConnCap(t *testing.T) {
	cfg := sim.Config{
		TPT:            [3]float64{200, 150, 200},
		Bandwidth:      [3]float64{1000, 1000, 1000},
		ConnMbps:       100,
		SenderBufCap:   500,
		ReceiverBufCap: 500,
		ChunkMb:        8,
	}
	e := NewSimEnv(sim.New(cfg), nil)
	e.MaxThreadsN = 8
	// Network aggregate: min(150·8, 1000, 100·8) = 800 < other stages.
	if rate, _ := e.Scales(); rate != 800 {
		t.Fatalf("rateScale=%v want 800 (conn ceiling binds)", rate)
	}
}

func TestSimEnvMaxThreadsDefault(t *testing.T) {
	e := &SimEnv{Sim: simFor(t)}
	if e.MaxThreads() != 32 {
		t.Fatalf("default MaxThreads=%d", e.MaxThreads())
	}
}

func TestTheoreticalMaxReward(t *testing.T) {
	got := TheoreticalMaxReward(1000, ActionOf(13, 1, 7, 5), 1.02)
	want := 1000*math.Pow(1.02, -13) + 1000*math.Pow(1.02, -1) +
		1000*math.Pow(1.02, -7) + 1000*math.Pow(1.02, -5)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Rmax=%v want %v", got, want)
	}
}

// Property: utility is monotonically non-increasing in each dimension's
// concurrency for fixed throughput, and increasing in throughput for
// fixed concurrency.
func TestQuickUtilityMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tp StageVec
		var a Action
		for i := range tp {
			tp[i] = rng.Float64() * 1000
			a.N[i] = 1 + rng.Intn(30)
		}
		base := Utility(tp, a, DefaultK)
		for i := Stage(0); i < StageCount; i++ {
			more := a
			more.N[i]++
			if Utility(tp, more, DefaultK) > base {
				return false
			}
			faster := tp
			faster[i] += 100
			if Utility(faster, a, DefaultK) < base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The optimal concurrency under the utility (with full pipeline) should
// sit near n*: sweep uniform concurrency (one connection) and check the
// maximizer region.
func TestUtilityOptimumNearNStar(t *testing.T) {
	e := NewSimEnv(simFor(t), nil)
	bestN, bestU := 0, -1.0
	for n := 1; n <= 32; n++ {
		e.Sim.Reset()
		var u float64
		for i := 0; i < 8; i++ { // settle
			_, u = e.Step(ActionOf(n, 1, n, n))
		}
		if u > bestU {
			bestU, bestN = u, n
		}
	}
	// Uniform sweep: bottleneck is read (80 Mbps/thread, 1000 cap →
	// n*_r = 13). The utility optimum should be near 13 (within ±3).
	if bestN < 10 || bestN > 16 {
		t.Fatalf("uniform-concurrency optimum at n=%d, expected ≈13", bestN)
	}
}
