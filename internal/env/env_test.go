package env

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"automdt/internal/sim"
)

func simFor(t *testing.T) *sim.Simulator {
	t.Helper()
	return sim.New(sim.Config{
		TPT:            [3]float64{80, 160, 200},
		Bandwidth:      [3]float64{1000, 1000, 1000},
		SenderBufCap:   500,
		ReceiverBufCap: 500,
		ChunkMb:        8,
	})
}

func TestUtilityMatchesFormula(t *testing.T) {
	tp := [3]float64{800, 900, 1000}
	n := [3]int{10, 5, 7}
	want := 800/math.Pow(1.02, 10) + 900/math.Pow(1.02, 5) + 1000/math.Pow(1.02, 7)
	if got := Utility(tp, n, 1.02); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Utility=%v want %v", got, want)
	}
}

func TestUtilityPenalizesConcurrency(t *testing.T) {
	tp := [3]float64{1000, 1000, 1000}
	low := Utility(tp, [3]int{5, 5, 5}, 1.02)
	high := Utility(tp, [3]int{30, 30, 30}, 1.02)
	if high >= low {
		t.Fatalf("same throughput with more threads should score lower: %v vs %v", high, low)
	}
}

func TestUtilityKControlsAggressiveness(t *testing.T) {
	tp := [3]float64{1000, 1000, 1000}
	n := [3]int{20, 20, 20}
	gentle := Utility(tp, n, 1.001)
	harsh := Utility(tp, n, 1.2)
	if harsh >= gentle {
		t.Fatalf("larger k should penalize more: k=1.2 %v vs k=1.001 %v", harsh, gentle)
	}
}

func TestActionClamp(t *testing.T) {
	a := Action{Threads: [3]int{0, 50, 7}}.Clamp(32)
	if a.Threads != [3]int{1, 32, 7} {
		t.Fatalf("Clamp=%v", a.Threads)
	}
}

func TestFromContinuousRoundsAndClamps(t *testing.T) {
	a := FromContinuous([]float64{6.4, 6.6, -3}, 32)
	if a.Threads != [3]int{6, 7, 1} {
		t.Fatalf("FromContinuous=%v", a.Threads)
	}
	a = FromContinuous([]float64{100, 0.2, 31.5}, 32)
	if a.Threads != [3]int{32, 1, 32} {
		t.Fatalf("FromContinuous=%v", a.Threads)
	}
}

func TestStateVectorNormalization(t *testing.T) {
	s := State{
		Threads:      [3]int{8, 16, 32},
		Throughput:   [3]float64{500, 1000, 250},
		SenderFree:   250,
		ReceiverFree: 500,
	}
	v := s.Vector(32, 1000, 500)
	want := []float64{0.25, 0.5, 1, 0.5, 1, 0.25, 0.5, 1}
	if len(v) != StateDim {
		t.Fatalf("vector length %d want %d", len(v), StateDim)
	}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("v[%d]=%v want %v", i, v[i], want[i])
		}
	}
}

func TestSimEnvResetRandomizes(t *testing.T) {
	e := NewSimEnv(simFor(t), rand.New(rand.NewSource(1)))
	s1 := e.Reset()
	s2 := e.Reset()
	if s1.Threads == s2.Threads {
		// Extremely unlikely with 32^3 combinations; retry once.
		s2 = e.Reset()
		if s1.Threads == s2.Threads {
			t.Fatalf("Reset not randomizing threads: %v", s1.Threads)
		}
	}
	for _, s := range []State{s1, s2} {
		for i := 0; i < 3; i++ {
			if s.Threads[i] < 1 || s.Threads[i] > e.MaxThreads() {
				t.Fatalf("reset thread count %d out of range", s.Threads[i])
			}
		}
	}
}

func TestSimEnvStepRewardIsUtility(t *testing.T) {
	e := NewSimEnv(simFor(t), rand.New(rand.NewSource(2)))
	e.Reset()
	a := Action{Threads: [3]int{5, 5, 5}}
	s, r := e.Step(a)
	want := Utility(s.Throughput, a.Threads, DefaultK)
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("reward %v != utility %v", r, want)
	}
	if s.Threads != a.Threads {
		t.Fatalf("state threads %v != action %v", s.Threads, a.Threads)
	}
}

func TestSimEnvScales(t *testing.T) {
	e := NewSimEnv(simFor(t), nil)
	rate, buf := e.Scales()
	if buf != 500 {
		t.Fatalf("bufScale=%v", buf)
	}
	// Read stage: min(80*32, 1000)=1000; all stages 1000 → 1000.
	if rate != 1000 {
		t.Fatalf("rateScale=%v want 1000", rate)
	}
}

func TestSimEnvMaxThreadsDefault(t *testing.T) {
	e := &SimEnv{Sim: simFor(t)}
	if e.MaxThreads() != 32 {
		t.Fatalf("default MaxThreads=%d", e.MaxThreads())
	}
}

func TestTheoreticalMaxReward(t *testing.T) {
	got := TheoreticalMaxReward(1000, [3]int{13, 7, 5}, 1.02)
	want := 1000*math.Pow(1.02, -13) + 1000*math.Pow(1.02, -7) + 1000*math.Pow(1.02, -5)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Rmax=%v want %v", got, want)
	}
}

// Property: utility is monotonically non-increasing in each thread count
// for fixed throughput, and increasing in throughput for fixed threads.
func TestQuickUtilityMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := [3]float64{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		n := [3]int{1 + rng.Intn(30), 1 + rng.Intn(30), 1 + rng.Intn(30)}
		base := Utility(tp, n, DefaultK)
		for i := 0; i < 3; i++ {
			more := n
			more[i]++
			if Utility(tp, more, DefaultK) > base {
				return false
			}
			faster := tp
			faster[i] += 100
			if Utility(faster, n, DefaultK) < base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The optimal concurrency under the utility (with full pipeline) should
// sit near n*: sweep uniform concurrency and check the maximizer region.
func TestUtilityOptimumNearNStar(t *testing.T) {
	e := NewSimEnv(simFor(t), nil)
	bestN, bestU := 0, -1.0
	for n := 1; n <= 32; n++ {
		e.Sim.Reset()
		var u float64
		for i := 0; i < 8; i++ { // settle
			_, u = e.Step(Action{Threads: [3]int{n, n, n}})
		}
		if u > bestU {
			bestU, bestN = u, n
		}
	}
	// Uniform sweep: bottleneck is read (80 Mbps/thread, 1000 cap →
	// n*_r = 13). The utility optimum should be near 13 (within ±3).
	if bestN < 10 || bestN > 16 {
		t.Fatalf("uniform-concurrency optimum at n=%d, expected ≈13", bestN)
	}
}
