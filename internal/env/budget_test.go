package env

import (
	"sync"
	"testing"
)

// wantAll is a greedy controller that always asks for n on every stage
// dimension.
type wantAll struct{ n int }

func (w wantAll) Name() string { return "greedy" }
func (w wantAll) Decide(State) Action {
	return Action{N: [StageCount]int{w.n, w.n, w.n, w.n}}
}

func TestBudgetCapClampsInner(t *testing.T) {
	b := NewBudgetCap(wantAll{n: 32}, [StageCount]int{4, 3, 7, 2})
	a := b.Decide(State{})
	if a.N != [StageCount]int{4, 3, 7, 2} {
		t.Fatalf("Decide = %v, want clamped to caps [4 3 7 2]", a.N)
	}
	b.SetCap([StageCount]int{10, 10, 10, 10})
	if a := b.Decide(State{}); a.N != [StageCount]int{10, 10, 10, 10} {
		t.Fatalf("after raise, Decide = %v, want [10 10 10 10]", a.N)
	}
}

func TestBudgetCapFloorsAtOne(t *testing.T) {
	b := NewBudgetCap(wantAll{n: 0}, [StageCount]int{0, -3, 5, 0})
	if c := b.Cap(); c != [StageCount]int{1, 1, 5, 1} {
		t.Fatalf("Cap = %v, want floors raised to 1", c)
	}
	if a := b.Decide(State{}); a.N != [StageCount]int{1, 1, 1, 1} {
		t.Fatalf("Decide = %v, want at least one worker per stage", a.N)
	}
}

func TestBudgetCapNilInnerHoldsState(t *testing.T) {
	b := NewBudgetCap(nil, [StageCount]int{8, 8, 8, 8})
	if b.Name() != "budget" {
		t.Fatalf("Name = %q", b.Name())
	}
	st := State{N: [StageCount]int{3, 2, 12, 5}}
	if a := b.Decide(st); a.N != [StageCount]int{3, 2, 8, 5} {
		t.Fatalf("Decide = %v, want current concurrency clamped to cap", a.N)
	}
}

func TestBudgetCapName(t *testing.T) {
	b := NewBudgetCap(wantAll{n: 1}, [StageCount]int{1, 1, 1, 1})
	if b.Name() != "greedy+budget" {
		t.Fatalf("Name = %q, want greedy+budget", b.Name())
	}
}

func TestBudgetCapOnClampFiresOnlyWhenCapBinds(t *testing.T) {
	b := NewBudgetCap(wantAll{n: 9}, [StageCount]int{4, 20, 20, 20})
	var calls int
	var gotWanted, gotGot Action
	var gotCaps [StageCount]int
	b.OnClamp(func(s State, wanted, got Action, caps [StageCount]int) {
		calls++
		gotWanted, gotGot, gotCaps = wanted, got, caps
	})
	st := State{N: [StageCount]int{1, 1, 1, 1}}
	b.Decide(st)
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
	if gotWanted.N != [StageCount]int{9, 9, 9, 9} {
		t.Fatalf("wanted=%v", gotWanted.N)
	}
	if gotGot.N != [StageCount]int{4, 9, 9, 9} {
		t.Fatalf("got=%v", gotGot.N)
	}
	if gotCaps != [StageCount]int{4, 20, 20, 20} {
		t.Fatalf("caps=%v", gotCaps)
	}
	// Raise the cap above the demand: the callback must stay silent.
	b.SetCap([StageCount]int{20, 20, 20, 20})
	b.Decide(st)
	if calls != 1 {
		t.Fatalf("unclamped decision fired the callback (calls=%d)", calls)
	}
	// The <1 floor is not a budget clamp: a controller asking for zero
	// workers is floored, but that is not arbiter starvation.
	floored := NewBudgetCap(wantAll{n: 0}, [StageCount]int{8, 8, 8, 8})
	floored.OnClamp(func(State, Action, Action, [StageCount]int) { t.Fatal("floor fired OnClamp") })
	floored.Decide(st)
	// Removing the callback stops delivery.
	b.SetCap([StageCount]int{1, 1, 1, 1})
	b.OnClamp(nil)
	b.Decide(st)
	if calls != 1 {
		t.Fatalf("removed callback still fired (calls=%d)", calls)
	}
}

// TestBudgetCapConcurrent exercises SetCap racing Decide under -race.
func TestBudgetCapConcurrent(t *testing.T) {
	b := NewBudgetCap(wantAll{n: 32}, [StageCount]int{1, 1, 1, 1})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			b.SetCap([StageCount]int{1 + i%8, 1 + i%3, 1 + i%4, 1 + i%2})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			a := b.Decide(State{})
			for s := Stage(0); s < StageCount; s++ {
				if a.N[s] < 1 || a.N[s] > 8 {
					t.Errorf("decision %v outside any cap ever set", a.N)
					return
				}
			}
		}
	}()
	wg.Wait()
}
