package env

import (
	"sync"
	"testing"
)

// wantAll is a greedy controller that always asks for n on every stage.
type wantAll struct{ n int }

func (w wantAll) Name() string        { return "greedy" }
func (w wantAll) Decide(State) Action { return Action{Threads: [3]int{w.n, w.n, w.n}} }

func TestBudgetCapClampsInner(t *testing.T) {
	b := NewBudgetCap(wantAll{n: 32}, [3]int{4, 7, 2})
	a := b.Decide(State{})
	if a.Threads != [3]int{4, 7, 2} {
		t.Fatalf("Decide = %v, want clamped to caps [4 7 2]", a.Threads)
	}
	b.SetCap([3]int{10, 10, 10})
	if a := b.Decide(State{}); a.Threads != [3]int{10, 10, 10} {
		t.Fatalf("after raise, Decide = %v, want [10 10 10]", a.Threads)
	}
}

func TestBudgetCapFloorsAtOne(t *testing.T) {
	b := NewBudgetCap(wantAll{n: 0}, [3]int{0, -3, 5})
	if c := b.Cap(); c != [3]int{1, 1, 5} {
		t.Fatalf("Cap = %v, want floors raised to 1", c)
	}
	if a := b.Decide(State{}); a.Threads != [3]int{1, 1, 1} {
		t.Fatalf("Decide = %v, want at least one worker per stage", a.Threads)
	}
}

func TestBudgetCapNilInnerHoldsState(t *testing.T) {
	b := NewBudgetCap(nil, [3]int{8, 8, 8})
	if b.Name() != "budget" {
		t.Fatalf("Name = %q", b.Name())
	}
	st := State{Threads: [3]int{3, 12, 5}}
	if a := b.Decide(st); a.Threads != [3]int{3, 8, 5} {
		t.Fatalf("Decide = %v, want current threads clamped to cap", a.Threads)
	}
}

func TestBudgetCapName(t *testing.T) {
	b := NewBudgetCap(wantAll{n: 1}, [3]int{1, 1, 1})
	if b.Name() != "greedy+budget" {
		t.Fatalf("Name = %q, want greedy+budget", b.Name())
	}
}

func TestBudgetCapOnClampFiresOnlyWhenCapBinds(t *testing.T) {
	b := NewBudgetCap(wantAll{n: 9}, [3]int{4, 20, 20})
	var calls int
	var gotWanted, gotGot Action
	var gotCaps [3]int
	b.OnClamp(func(s State, wanted, got Action, caps [3]int) {
		calls++
		gotWanted, gotGot, gotCaps = wanted, got, caps
	})
	st := State{Threads: [3]int{1, 1, 1}}
	b.Decide(st)
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
	if gotWanted.Threads != [3]int{9, 9, 9} {
		t.Fatalf("wanted=%v", gotWanted.Threads)
	}
	if gotGot.Threads != [3]int{4, 9, 9} {
		t.Fatalf("got=%v", gotGot.Threads)
	}
	if gotCaps != [3]int{4, 20, 20} {
		t.Fatalf("caps=%v", gotCaps)
	}
	// Raise the cap above the demand: the callback must stay silent.
	b.SetCap([3]int{20, 20, 20})
	b.Decide(st)
	if calls != 1 {
		t.Fatalf("unclamped decision fired the callback (calls=%d)", calls)
	}
	// The <1 floor is not a budget clamp: a controller asking for zero
	// workers is floored, but that is not arbiter starvation.
	floored := NewBudgetCap(wantAll{n: 0}, [3]int{8, 8, 8})
	floored.OnClamp(func(State, Action, Action, [3]int) { t.Fatal("floor fired OnClamp") })
	floored.Decide(st)
	// Removing the callback stops delivery.
	b.SetCap([3]int{1, 1, 1})
	b.OnClamp(nil)
	b.Decide(st)
	if calls != 1 {
		t.Fatalf("removed callback still fired (calls=%d)", calls)
	}
}

// TestBudgetCapConcurrent exercises SetCap racing Decide under -race.
func TestBudgetCapConcurrent(t *testing.T) {
	b := NewBudgetCap(wantAll{n: 32}, [3]int{1, 1, 1})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			b.SetCap([3]int{1 + i%8, 1 + i%4, 1 + i%2})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			a := b.Decide(State{})
			for s := 0; s < 3; s++ {
				if a.Threads[s] < 1 || a.Threads[s] > 8 {
					t.Errorf("decision %v outside any cap ever set", a.Threads)
					return
				}
			}
		}
	}()
	wg.Wait()
}
